#!/usr/bin/env bash
# Nightly chaos soak: run the fault-injection and stress suites under TSan
# with a randomized-but-logged seed, many times in a row.
#
#   scripts/soak.sh                 # random seed, 10 rounds
#   scripts/soak.sh 1234            # fixed seed (reproduce a nightly failure)
#   SCAFFE_SOAK_ROUNDS=3 scripts/soak.sh
#
# The seed feeds SCAFFE_SOAK_SEED, which the chaos tests read to derive their
# fault schedules (victim rank, crash iteration, message-delay RNG). Each
# round perturbs the seed so one invocation covers many schedules. The seed
# is printed up front and by the tests themselves — paste it back as $1 to
# replay the exact failing schedule.
#
# TSan is the right sanitizer for soak: the fault paths (abort broadcast,
# heartbeat suspicion, credit starvation, mid-collective crashes) are where
# rank threads, the monitor thread, and the SC-OBR helper interleave worst.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
rounds="${SCAFFE_SOAK_ROUNDS:-10}"
seed="${1:-$(( (RANDOM << 15) ^ RANDOM ))}"

echo "==> chaos soak: seed=${seed} rounds=${rounds} (rerun: scripts/soak.sh ${seed})"

cmake -B build-tsan -S . -DSCAFFE_SANITIZE=thread
cmake --build build-tsan -j "${jobs}" --target fault_test stress_test

# Keep the math pool serial under TSan (same rationale as check.sh): rank
# threads already multiply, and determinism is unaffected.
for (( round = 0; round < rounds; round++ )); do
  round_seed=$(( seed + round * 7919 ))
  echo "==> soak round $(( round + 1 ))/${rounds}: SCAFFE_SOAK_SEED=${round_seed}"
  SCAFFE_THREADS=1 SCAFFE_SOAK_SEED="${round_seed}" ./build-tsan/tests/fault_test
  SCAFFE_THREADS=1 SCAFFE_SOAK_SEED="${round_seed}" ./build-tsan/tests/stress_test
done

echo "==> soak passed: seed=${seed} rounds=${rounds}"
