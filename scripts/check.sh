#!/usr/bin/env bash
# Full verification: build + test four times — plain, Release (-O2), under
# TSan, and under ASan+UBSan — plus a smoke run of the transport benchmark.
#
#   scripts/check.sh            # all passes
#   scripts/check.sh --fast     # plain pass only
#
# The TSan pass exists because the interesting subsystems here are threaded
# (scmpi rank threads, the SC-OBR helper thread, the math pool, fault-injected
# delays, the posted-receive claim protocol); a green plain run is not
# evidence of race-freedom. The ASan+UBSan pass covers the memory/UB side:
# buffer math in the kernels and the generation/context/tag arithmetic of the
# elastic runtime. The Release pass catches optimizer-dependent bugs the -O0
# legs hide, and the bench smoke proves bench_transport stays runnable.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run_pass() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@"
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}"
  echo "==> ctest ${dir}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_pass build

if [[ "${fast}" -eq 0 ]]; then
  run_pass build-release -DCMAKE_BUILD_TYPE=Release

  echo "==> bench_transport smoke (build-release)"
  (cd build-release && SCAFFE_BENCH_SMOKE=1 ./bench/bench_transport)

  # Fusion ablation smoke: proves the bench stays runnable, writes
  # BENCH_fusion.json, and (via SCAFFE_FUSION_ASSERT) fails the check if
  # bucket-fused SC-OBR regresses past the unfused baseline by >25%.
  echo "==> ablation_bucket_fusion smoke (build-release)"
  (cd build-release && SCAFFE_BENCH_SMOKE=1 SCAFFE_FUSION_ASSERT=1 ./bench/ablation_bucket_fusion)

  # Schedule crossover smoke: writes BENCH_schedules.json at the 64-rank DES
  # point and (via SCAFFE_SCHED_ASSERT) fails the check if the double binary
  # tree loses to the flat binomial pair or the topology ring loses to the
  # flat chain pair there.
  echo "==> ablation_schedules smoke (build-release)"
  (cd build-release && SCAFFE_BENCH_SMOKE=1 SCAFFE_SCHED_ASSERT=1 ./bench/ablation_schedules)

  # Backpressure smoke: incast against a slow consumer, flow-controlled vs
  # legacy unbounded mailbox. Writes BENCH_backpressure.json and (via
  # SCAFFE_BACKPRESSURE_ASSERT) fails the check unless the flow arm's peak
  # mailbox occupancy stays within SCAFFE_MAILBOX_BYTES while the legacy arm
  # demonstrably exceeds it.
  echo "==> bench_backpressure smoke (build-release)"
  (cd build-release && SCAFFE_BENCH_SMOKE=1 SCAFFE_BACKPRESSURE_ASSERT=1 ./bench/bench_backpressure)

  # Sample-store smoke: LMDB-direct vs store-fed reader scaling plus the
  # registry's steady-state behaviour under the exchange. Writes
  # BENCH_datastore.json and (via SCAFFE_DATASTORE_ASSERT) fails the check
  # unless the store survives >=160 readers where direct dies at 64, the
  # steady-state registry miss counter stays flat, and the hit rate is >=99%.
  echo "==> bench_datastore smoke (build-release)"
  (cd build-release && SCAFFE_BENCH_SMOKE=1 SCAFFE_DATASTORE_ASSERT=1 ./bench/bench_datastore)

  # Recovery smoke: crash/shrink/rejoin timings plus the health plane's
  # detection-latency rows. Writes BENCH_recovery.json and (via
  # SCAFFE_RECOVERY_ASSERT) fails the check unless heartbeat suspicion beats
  # the recv-timeout deadline by >=5x and Rejoin heals back to the full world.
  echo "==> bench_recovery smoke (build-release)"
  (cd build-release && SCAFFE_BENCH_SMOKE=1 SCAFFE_RECOVERY_ASSERT=1 ./bench/bench_recovery)

  # Multi-rank tests multiply SCAFFE_THREADS by the rank count; keep the math
  # pool serial under the sanitizers so runtimes stay sane. Determinism is
  # unaffected.
  SCAFFE_THREADS=1 run_pass build-tsan -DSCAFFE_SANITIZE=thread
  SCAFFE_THREADS=1 run_pass build-asan -DSCAFFE_SANITIZE=address
fi

echo "==> all checks passed"
