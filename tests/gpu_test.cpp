#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "gpu/buffer.h"
#include "gpu/device.h"
#include "gpu/kernels.h"
#include "gpu/stream.h"
#include "util/bytes.h"

namespace scaffe::gpu {
namespace {

using util::kMiB;

TEST(Device, TracksAllocations) {
  Device device(0, 100 * kMiB);
  EXPECT_EQ(device.allocated(), 0u);
  device.charge(40 * kMiB);
  EXPECT_EQ(device.allocated(), 40 * kMiB);
  EXPECT_EQ(device.available(), 60 * kMiB);
  device.refund(40 * kMiB);
  EXPECT_EQ(device.allocated(), 0u);
}

TEST(Device, ThrowsOnOom) {
  Device device(3, 10 * kMiB);
  device.charge(8 * kMiB);
  try {
    device.charge(4 * kMiB);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    EXPECT_EQ(e.device(), 3);
    EXPECT_EQ(e.requested(), 4 * kMiB);
    EXPECT_EQ(e.available(), 2 * kMiB);
  }
}

TEST(Device, PeakTracksHighWater) {
  Device device(0, 100 * kMiB);
  device.charge(30 * kMiB);
  device.charge(30 * kMiB);
  device.refund(60 * kMiB);
  device.charge(10 * kMiB);
  EXPECT_EQ(device.peak_allocated(), 60 * kMiB);
}

TEST(DeviceBuffer, RaiiRefunds) {
  Device device(0, 10 * kMiB);
  {
    DeviceBuffer<float> buffer(device, kMiB);  // 4 MiB
    EXPECT_EQ(device.allocated(), 4 * kMiB);
    EXPECT_EQ(buffer.size(), kMiB);
    EXPECT_TRUE(buffer.valid());
  }
  EXPECT_EQ(device.allocated(), 0u);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  Device device(0, 10 * kMiB);
  DeviceBuffer<float> a(device, 1024);
  a[0] = 7.0f;
  DeviceBuffer<float> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b[0], 7.0f);
  EXPECT_EQ(device.allocated(), 1024 * sizeof(float));
}

TEST(DeviceBuffer, OomPropagates) {
  Device device(0, kMiB);
  EXPECT_THROW(DeviceBuffer<float>(device, kMiB), OutOfMemoryError);
  EXPECT_EQ(device.allocated(), 0u);  // failed alloc charges nothing
}

TEST(DeviceBuffer, ZeroAndSubspan) {
  Device device(0, kMiB);
  DeviceBuffer<float> buffer(device, 100);
  fill(3.0f, buffer.span());
  buffer.zero();
  EXPECT_EQ(buffer[50], 0.0f);
  auto sub = buffer.subspan(10, 5);
  EXPECT_EQ(sub.size(), 5u);
  sub[0] = 1.0f;
  EXPECT_EQ(buffer[10], 1.0f);
}

TEST(Kernels, Axpy) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_EQ(y, (std::vector<float>{12, 24, 36}));
}

TEST(Kernels, Accumulate) {
  std::vector<float> src{1, 1, 1};
  std::vector<float> acc{1, 2, 3};
  accumulate(src, acc);
  EXPECT_EQ(acc, (std::vector<float>{2, 3, 4}));
}

TEST(Kernels, CopyScaleFill) {
  std::vector<float> src{1, 2, 3};
  std::vector<float> dst(3, 0.0f);
  copy(src, dst);
  EXPECT_EQ(dst, src);
  scale(3.0f, dst);
  EXPECT_EQ(dst, (std::vector<float>{3, 6, 9}));
  fill(-1.0f, dst);
  EXPECT_EQ(dst, (std::vector<float>{-1, -1, -1}));
}

TEST(Kernels, SumAndDot) {
  std::vector<float> x{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(sum(x), 10.0);
  std::vector<float> y{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(dot(x, y), 10.0);
}

TEST(Kernels, SgdUpdateMatchesCaffeSemantics) {
  std::vector<float> param{1.0f};
  std::vector<float> grad{0.5f};
  std::vector<float> momentum{0.2f};
  // v = 0.9*0.2 - 0.1*(0.5 + 0.01*1.0) = 0.18 - 0.051 = 0.129
  sgd_update(param, grad, momentum, 0.1f, 0.9f, 0.01f);
  EXPECT_NEAR(momentum[0], 0.129f, 1e-6f);
  EXPECT_NEAR(param[0], 1.129f, 1e-6f);
}

TEST(Kernels, SgdZeroMomentumIsPlainSgd) {
  std::vector<float> param{2.0f};
  std::vector<float> grad{1.0f};
  std::vector<float> momentum{0.0f};
  sgd_update(param, grad, momentum, 0.5f, 0.0f, 0.0f);
  EXPECT_NEAR(param[0], 1.5f, 1e-6f);
}

TEST(Stream, ExecutesInOrder) {
  Stream stream;
  std::vector<int> order;
  std::mutex mutex;
  for (int i = 0; i < 16; ++i) {
    stream.enqueue([&, i] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    });
  }
  stream.synchronize();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, SynchronizeWaitsForCompletion) {
  Stream stream;
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) stream.enqueue([&] { counter.fetch_add(1); });
  stream.synchronize();
  EXPECT_EQ(counter.load(), 8);
  EXPECT_EQ(stream.completed(), 8u);
}

TEST(Stream, EventFiresAfterPrecedingWork) {
  Stream stream;
  std::atomic<bool> ran{false};
  stream.enqueue([&] { ran.store(true); });
  Event event = stream.record();
  event.wait();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(event.complete());
}

TEST(Stream, EventNotCompleteBeforeWork) {
  Stream stream;
  std::atomic<bool> release{false};
  stream.enqueue([&] {
    while (!release.load()) std::this_thread::yield();
  });
  Event event = stream.record();
  EXPECT_FALSE(event.complete());
  release.store(true);
  event.wait();
  EXPECT_TRUE(event.complete());
}

TEST(Stream, LaunchKernelsThroughStream) {
  Stream stream;
  std::vector<float> a(1000, 1.0f);
  std::vector<float> b(1000, 2.0f);
  launch_accumulate(stream, a, b);
  launch_copy(stream, b, a);
  stream.synchronize();
  EXPECT_EQ(a[500], 3.0f);
}

TEST(Stream, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    Stream stream;
    for (int i = 0; i < 32; ++i) stream.enqueue([&] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace scaffe::gpu
