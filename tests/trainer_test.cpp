#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>

#include "core/trainer.h"
#include "data/dataset.h"
#include "dl/snapshot.h"
#include "gpu/memcpy.h"
#include "models/zoo.h"

namespace scaffe::core {
namespace {

data::SyntheticImageDataset tiny_dataset() {
  return data::SyntheticImageDataset(256, 1, 1, 6, 3);
}

NetSpecFactory mlp_factory() {
  return [](int batch) { return models::mlp_netspec(batch, 6, 8, 3); };
}

TEST(Trainer, RunsAndReportsOnAllVariants) {
  for (Variant variant : {Variant::SCB, Variant::SCOB, Variant::SCOBR}) {
    auto dataset = tiny_dataset();
    data::ImageDataBackend backend(dataset);
    std::mutex mutex;
    TrainerReport root_report;

    mpi::Runtime runtime(4);
    runtime.run([&](mpi::Comm& comm) {
      TrainerConfig config;
      config.iterations = 8;
      config.global_batch = 16;
      config.scaffe.variant = variant;
      config.scaffe.reduce = ReduceAlgo::cb(2);
      config.solver.base_lr = 0.05f;
      Trainer trainer(comm, backend, dataset.sample_floats(), mlp_factory(), config);
      EXPECT_EQ(trainer.shard_batch(), 4);
      const TrainerReport report = trainer.run();
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        root_report = report;
      }
    });

    EXPECT_EQ(root_report.iterations, 8) << variant_name(variant);
    EXPECT_EQ(root_report.samples_trained, 8u * 16u);
    EXPECT_EQ(root_report.root_losses.size(), 8u);
    EXPECT_LT(root_report.root_losses.back(), root_report.root_losses.front() * 1.5f);
  }
}

TEST(Trainer, WeakScalingKeepsPerRankBatch) {
  auto dataset = tiny_dataset();
  data::ImageDataBackend backend(dataset);
  mpi::Runtime runtime(2);
  runtime.run([&](mpi::Comm& comm) {
    TrainerConfig config;
    config.iterations = 2;
    config.global_batch = 8;  // per GPU under weak scaling
    config.scaling = Scaling::Weak;
    Trainer trainer(comm, backend, dataset.sample_floats(), mlp_factory(), config);
    EXPECT_EQ(trainer.shard_batch(), 8);
    const TrainerReport report = trainer.run();
    if (comm.rank() == 0) {
      EXPECT_EQ(report.samples_trained, 2u * 8u * 2u);
    }
  });
}

TEST(Trainer, RejectsIndivisibleBatch) {
  auto dataset = tiny_dataset();
  data::ImageDataBackend backend(dataset);
  mpi::Runtime runtime(3);
  EXPECT_THROW(runtime.run([&](mpi::Comm& comm) {
    TrainerConfig config;
    config.global_batch = 16;  // not divisible by 3
    Trainer trainer(comm, backend, dataset.sample_floats(), mlp_factory(), config);
  }),
               std::runtime_error);
}

TEST(Trainer, WritesSnapshotsAtRoot) {
  const std::string path =
      std::filesystem::temp_directory_path() / "scaffe_trainer_snapshot.bin";
  std::filesystem::remove(path);

  auto dataset = tiny_dataset();
  data::ImageDataBackend backend(dataset);
  mpi::Runtime runtime(2);
  runtime.run([&](mpi::Comm& comm) {
    TrainerConfig config;
    config.iterations = 6;
    config.global_batch = 8;
    config.snapshot_every = 3;
    config.snapshot_path = path;
    Trainer trainer(comm, backend, dataset.sample_floats(), mlp_factory(), config);
    const TrainerReport report = trainer.run();
    if (comm.rank() == 0) {
      EXPECT_EQ(report.snapshots_written, 2);
    }
  });

  // The snapshot is loadable and sized for the model.
  dl::Net net(models::mlp_netspec(4, 6, 8, 3));
  EXPECT_NO_THROW(dl::load_params(net, path));
  std::filesystem::remove(path);
}

TEST(CopyStats, TracksDirections) {
  gpu::CopyStats::reset();
  std::vector<float> host(64, 1.0f);
  std::vector<float> device(64, 0.0f);
  gpu::memcpy_sync(device, host, gpu::CopyKind::HostToDevice);
  EXPECT_EQ(gpu::CopyStats::bytes(gpu::CopyKind::HostToDevice), 64 * sizeof(float));
  EXPECT_EQ(gpu::CopyStats::bytes(gpu::CopyKind::DeviceToHost), 0u);
  EXPECT_EQ(device[5], 1.0f);

  gpu::Stream stream;
  gpu::memcpy_async(stream, host, device, gpu::CopyKind::DeviceToHost);
  stream.synchronize();
  EXPECT_EQ(gpu::CopyStats::bytes(gpu::CopyKind::DeviceToHost), 64 * sizeof(float));
  EXPECT_STREQ(gpu::copy_kind_name(gpu::CopyKind::PeerToPeer), "P2P");
  gpu::CopyStats::reset();
  EXPECT_EQ(gpu::CopyStats::bytes(gpu::CopyKind::HostToDevice), 0u);
}

}  // namespace
}  // namespace scaffe::core
