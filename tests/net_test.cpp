#include <gtest/gtest.h>

#include "net/cluster.h"
#include "net/cost_model.h"
#include "net/topology.h"
#include "util/bytes.h"

namespace scaffe::net {
namespace {

using util::kMiB;

TEST(Cluster, PresetsMatchPaperTestbeds) {
  const ClusterSpec a = ClusterSpec::cluster_a();
  EXPECT_EQ(a.nodes, 12);
  EXPECT_EQ(a.gpus_per_node, 16);
  EXPECT_EQ(a.total_gpus(), 192);  // 12 nodes x 8 K80 cards x 2 devices

  const ClusterSpec b = ClusterSpec::cluster_b();
  EXPECT_EQ(b.nodes, 20);
  EXPECT_EQ(b.gpus_per_node, 2);
  EXPECT_EQ(b.total_gpus(), 40);
}

TEST(Cluster, ScaleOutPresetsReachTenTwentyFourGpus) {
  // Both DES scale-out presets must fit the full 1024-rank sweep.
  const ClusterSpec fat = ClusterSpec::multi_rail_fat_tree();
  EXPECT_EQ(fat.nodes, 64);
  EXPECT_EQ(fat.gpus_per_node, 16);
  EXPECT_EQ(fat.total_gpus(), 1024);
  EXPECT_EQ(fat.ib_rails, 2);  // dual-rail: two concurrent inter-node sends

  const ClusterSpec nv = ClusterSpec::nvlink_dense_node();
  EXPECT_EQ(nv.nodes, 128);
  EXPECT_EQ(nv.gpus_per_node, 8);
  EXPECT_EQ(nv.total_gpus(), 1024);
  EXPECT_EQ(nv.ib_rails, 1);
  // The preset's point: NVLink-class peer links dwarf PCIe P2P.
  EXPECT_GT(nv.pcie_p2p.bw_gbs, 3 * ClusterSpec::cluster_a().pcie_p2p.bw_gbs);
  EXPECT_EQ(nv.pcie_concurrency, 8);

  // Legacy presets default to a single rail.
  EXPECT_EQ(ClusterSpec::cluster_a().ib_rails, 1);
  EXPECT_EQ(ClusterSpec::cluster_b().ib_rails, 1);
}

TEST(Cluster, EdrFasterThanFdr) {
  EXPECT_GT(ClusterSpec::cluster_b().ib.bw_gbs, ClusterSpec::cluster_a().ib.bw_gbs);
}

TEST(LinkSpec, XferScalesWithBytes) {
  LinkSpec link{10.0, 1000};
  const auto t1 = link.xfer(10 * kMiB);
  const auto t2 = link.xfer(20 * kMiB);
  EXPECT_GT(t2, t1);
  // Latency subtracted, serialization should double.
  EXPECT_NEAR(static_cast<double>(t2 - 1000) / static_cast<double>(t1 - 1000), 2.0, 0.01);
}

TEST(Topology, BlockPlacement) {
  Topology topo(ClusterSpec::cluster_a(), 160);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(15), 0);
  EXPECT_EQ(topo.node_of(16), 1);
  EXPECT_EQ(topo.node_of(159), 9);
  EXPECT_EQ(topo.local_gpu_of(17), 1);
  EXPECT_EQ(topo.nodes_used(), 10);
}

TEST(Topology, PathClassification) {
  Topology topo(ClusterSpec::cluster_a(), 64);
  EXPECT_EQ(topo.path(3, 3), Path::SameGpu);
  EXPECT_EQ(topo.path(0, 15), Path::IntraNode);
  EXPECT_EQ(topo.path(0, 16), Path::InterNode);
  EXPECT_EQ(topo.path(31, 16), Path::IntraNode);
}

TEST(Topology, PartialLastNode) {
  Topology topo(ClusterSpec::cluster_a(), 20);
  EXPECT_EQ(topo.nodes_used(), 2);
  EXPECT_EQ(topo.node_of(19), 1);
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModel model_{ClusterSpec::cluster_a()};
};

TEST_F(CostModelTest, GdrBeatsHostStagingForSmallInterNode) {
  // At tiny sizes latency dominates: GDR's direct path must win.
  EXPECT_LT(model_.msg_time(64, Path::InterNode, Staging::Gdr),
            model_.msg_time(64, Path::InterNode, Staging::HostPipelined));
}

TEST_F(CostModelTest, PipelinedBeatsGdrForLargeInterNode) {
  // Kepler GDR reads cap at ~3 GB/s; the pipelined host path sustains more.
  EXPECT_GT(model_.msg_time(64 * kMiB, Path::InterNode, Staging::Gdr),
            model_.msg_time(64 * kMiB, Path::InterNode, Staging::HostPipelined));
}

TEST_F(CostModelTest, HostSyncSlowestForLargeMessages) {
  const std::size_t bytes = 64 * kMiB;
  EXPECT_GT(model_.msg_time(bytes, Path::InterNode, Staging::HostSync),
            model_.msg_time(bytes, Path::InterNode, Staging::HostPipelined));
}

TEST_F(CostModelTest, MonotonicInBytes) {
  for (Staging staging : {Staging::Gdr, Staging::HostPipelined, Staging::HostSync}) {
    util::TimeNs prev = 0;
    for (std::size_t bytes = 4; bytes <= 256 * kMiB; bytes *= 16) {
      const util::TimeNs t = model_.msg_time(bytes, Path::InterNode, staging);
      EXPECT_GE(t, prev) << staging_name(staging) << " at " << bytes;
      prev = t;
    }
  }
}

TEST_F(CostModelTest, GpuReduceFasterThanCpuForLargeBuffers) {
  // Section 3.4: 256 MB reductions need GPU kernels, not CPU loops.
  const std::size_t bytes = 256 * kMiB;
  EXPECT_LT(model_.reduce(bytes, ExecSpace::Gpu), model_.reduce(bytes, ExecSpace::Host));
}

TEST_F(CostModelTest, CpuReduceFasterForTinyBuffers) {
  // Kernel launch overhead dominates tiny GPU reductions — the reason MPI
  // runtimes traditionally reduced 16-64 B buffers on the CPU.
  EXPECT_GT(model_.reduce(64, ExecSpace::Gpu), model_.reduce(64, ExecSpace::Host));
}

TEST_F(CostModelTest, IntraNodeFasterThanInterNode) {
  const std::size_t bytes = 8 * kMiB;
  EXPECT_LT(model_.msg_time(bytes, Path::IntraNode, Staging::Gdr),
            model_.msg_time(bytes, Path::InterNode, Staging::Gdr));
}

TEST_F(CostModelTest, ComputeScalesWithFlops) {
  const auto t1 = model_.gpu_compute(1e9);
  const auto t2 = model_.gpu_compute(2e9);
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, 2 * t1 + model_.kernel_launch() + 1);
}

TEST_F(CostModelTest, GdrDisabledFallsBackToPipelined) {
  ClusterSpec spec = ClusterSpec::cluster_a();
  spec.gdr_enabled = false;
  CostModel no_gdr(spec);
  EXPECT_EQ(no_gdr.effective_bw_gbs(Path::InterNode, Staging::Gdr),
            no_gdr.effective_bw_gbs(Path::InterNode, Staging::HostPipelined));
}

TEST_F(CostModelTest, SenderBusyIncludesOverhead) {
  EXPECT_GE(model_.sender_busy(0, Path::InterNode, Staging::Gdr),
            ClusterSpec::cluster_a().mpi_overhead);
}

}  // namespace
}  // namespace scaffe::net
