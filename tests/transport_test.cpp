// Tests for the zero-copy rendezvous / pooled eager transport:
//  - util::MemoryRegistry size-class reuse, shard hit/miss counters, budget
//    cap, trim, and concurrent checkout (exercised under TSan by check.sh),
//  - TransportError diagnostics on size mismatches,
//  - the symmetric-sendrecv-above-eager-limit deadlock regression,
//  - bitwise parity of eager vs rendezvous and tuned vs legacy transports on
//    a deterministic training-style allreduce loop,
//  - large bcast/reduce correctness through the shared-payload multi-send and
//    fused receive-reduce paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mpi/comm.h"
#include "mpi/transport_tuner.h"
#include "util/memory_registry.h"
#include "util/fault.h"

namespace scaffe::mpi {
namespace {

// --- MemoryRegistry ---------------------------------------------------------

TEST(MemoryRegistry, SizeClassesArePowersOfTwoWithFloor) {
  EXPECT_EQ(util::MemoryRegistry::size_class(0), 64u);
  EXPECT_EQ(util::MemoryRegistry::size_class(1), 64u);
  EXPECT_EQ(util::MemoryRegistry::size_class(64), 64u);
  EXPECT_EQ(util::MemoryRegistry::size_class(65), 128u);
  EXPECT_EQ(util::MemoryRegistry::size_class(4096), 4096u);
  EXPECT_EQ(util::MemoryRegistry::size_class(4097), 8192u);
}

TEST(MemoryRegistry, ReusesBlocksWithinSizeClassFromLocalShard) {
  util::MemoryRegistry registry;
  std::byte* first = nullptr;
  {
    util::MemBlock block = registry.acquire(1000);  // class 1024
    EXPECT_EQ(block.capacity(), 1024u);
    EXPECT_EQ(block.size(), 1000u);
    first = block.data();
  }
  util::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.recycled(), 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.cached_bytes, 1024u);
  {
    // Same class, different requested size: must reuse the cached block —
    // from this thread's own shard, with no global lock taken.
    util::MemBlock block = registry.acquire(600);
    EXPECT_EQ(block.data(), first);
    EXPECT_EQ(block.capacity(), 1024u);
  }
  stats = registry.stats();
  EXPECT_EQ(stats.local_hits, 1u);
  EXPECT_EQ(stats.global_hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(MemoryRegistry, DistinctClassesDoNotShareBlocks) {
  util::MemoryRegistry registry;
  { util::MemBlock a = registry.acquire(100); }  // class 128 cached
  util::MemBlock b = registry.acquire(4000);     // class 4096: miss
  util::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.recycled(), 0u);
  EXPECT_EQ(stats.cached_bytes, 128u);
}

TEST(MemoryRegistry, TrimReleasesCache) {
  util::MemoryRegistry registry;
  { util::MemBlock a = registry.acquire(1 << 16); }
  EXPECT_GT(registry.stats().cached_bytes, 0u);
  registry.trim();
  EXPECT_EQ(registry.stats().cached_bytes, 0u);
  // Next acquire is a miss again (cache is empty, counters persist).
  util::MemBlock b = registry.acquire(1 << 16);
  EXPECT_EQ(registry.stats().misses, 2u);
}

TEST(MemoryRegistry, BudgetBoundsRetainedBytes) {
  util::MemoryRegistry registry(/*budget_bytes=*/1024);
  { util::MemBlock a = registry.acquire(1024); }
  EXPECT_EQ(registry.stats().cached_bytes, 1024u);
  { util::MemBlock b = registry.acquire(512); }  // release would exceed budget
  EXPECT_EQ(registry.stats().cached_bytes, 1024u);  // freed to heap instead
}

TEST(MemoryRegistry, TracksLiveAndPeakBytes) {
  util::MemoryRegistry registry;
  {
    util::MemBlock a = registry.acquire(1024);
    util::MemBlock b = registry.acquire(2048);
    EXPECT_EQ(registry.stats().live_bytes, 3072u);
  }
  util::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.live_bytes, 0u);
  EXPECT_EQ(stats.peak_live_bytes, 3072u);
}

TEST(MemoryRegistry, HeapBlocksBypassTheRegistry) {
  util::MemBlock block = util::MemBlock::heap(100);
  EXPECT_TRUE(block.valid());
  EXPECT_FALSE(block.recycled());
  EXPECT_EQ(block.size(), 100u);
  // Destruction must not touch any registry — nothing to assert beyond no
  // crash, which ASan/TSan legs turn into a hard failure.
}

TEST(MemoryRegistry, ReservePreStocksGlobalShard) {
  util::MemoryRegistry registry;
  registry.reserve(6000, 4);  // class 8192
  util::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.cached_bytes, 4u * 8192u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.recycled(), 0u);
  // Reserved blocks serve transfer acquires without a miss.
  util::MemBlock block = registry.acquire(8000, util::BlockRoute::kTransfer);
  EXPECT_TRUE(block.recycled());
  stats = registry.stats();
  EXPECT_EQ(stats.global_hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(MemoryRegistry, ReserveRespectsBudget) {
  util::MemoryRegistry registry(/*budget_bytes=*/2 * 8192);
  registry.reserve(8192, 16);  // would be 128 KiB; budget caps it
  EXPECT_LE(registry.stats().cached_bytes, 2u * 8192u);
}

TEST(MemoryRegistry, TransferBlocksRecycleThroughGlobalShard) {
  util::MemoryRegistry registry;
  // Released on this thread, but transfer-routed: must bypass the local
  // shard so any thread (a producer) can reacquire it.
  { util::MemBlock block = registry.acquire(1024, util::BlockRoute::kTransfer); }
  util::MemBlock again = registry.acquire(1024, util::BlockRoute::kTransfer);
  EXPECT_TRUE(again.recycled());
  util::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.global_hits, 1u);
  EXPECT_EQ(stats.local_hits, 0u);
}

TEST(MemoryRegistry, FlushLocalShardSpillsToGlobal) {
  util::MemoryRegistry registry;
  { util::MemBlock a = registry.acquire(1024); }  // cached in this shard
  registry.flush_local_shard();
  EXPECT_EQ(registry.stats().cached_bytes, 0u);
}

TEST(MemoryRegistry, CrossThreadReleaseReachesGlobalShard) {
  util::MemoryRegistry registry;
  util::MemBlock block = registry.acquire(1 << 12);
  std::thread releaser([&registry, moved = std::move(block)]() mutable {
    util::MemBlock local = std::move(moved);
    // Released on this thread: lands in its shard, drained to the global
    // shard when the thread exits.
  });
  releaser.join();
  EXPECT_EQ(registry.stats().cached_bytes, std::size_t{1} << 12);
  util::MemBlock again = registry.acquire(1 << 12);
  EXPECT_TRUE(again.recycled());
  EXPECT_EQ(registry.stats().global_hits, 1u);
}

TEST(MemoryRegistry, ConcurrentCheckoutIsRaceFree) {
  util::MemoryRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIters; ++i) {
        util::MemBlock block = registry.acquire(static_cast<std::size_t>(64 + 37 * t + i));
        // Touch the block so TSan sees the data race if recycling ever hands
        // one buffer to two threads at once.
        std::memset(block.data(), t, block.size());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  util::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.recycled() + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MemoryRegistry, EightThreadMixedClassHammerKeepsAccountingExact) {
  // The TSan workhorse: eight threads churn four size classes through their
  // local shards while handing every fourth block to a neighbour through a
  // shared rack (cross-thread release → global shard). Run under
  // -fsanitize=thread this proves the lock-free fast path never hands one
  // buffer to two threads; the accounting identities below prove no block is
  // lost or double-counted under contention.
  util::MemoryRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  constexpr std::size_t kClasses[] = {64, 1 << 10, 1 << 12, 1 << 16};

  std::mutex rack_mutex;
  std::vector<util::MemBlock> rack;  // blocks released by a different thread

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t bytes = kClasses[(t + i) % std::size(kClasses)];
        util::MemBlock block = registry.acquire(bytes);
        EXPECT_GE(block.size(), bytes);
        std::memset(block.data(), t, block.size());
        if ((i & 3) == 0) {
          // Defer the release to whichever thread drains the rack.
          std::lock_guard<std::mutex> lock(rack_mutex);
          rack.push_back(std::move(block));
          continue;
        }
        if ((i & 7) == 1) {
          std::lock_guard<std::mutex> lock(rack_mutex);
          rack.clear();  // release blocks acquired by other threads
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  rack.clear();

  const util::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.recycled() + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.live_bytes, 0u);  // everything went back
  registry.trim();
  EXPECT_EQ(registry.stats().cached_bytes, 0u);
}

// --- TransportError ---------------------------------------------------------

TEST(Transport, SizeMismatchThrowsTypedError) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> four(4, 1.0f);
      comm.send<float>(four, 1, 3);
    } else {
      std::vector<float> two(2);
      try {
        comm.recv<float>(two, 0, 3);
        FAIL() << "expected TransportError";
      } catch (const TransportError& error) {
        EXPECT_EQ(error.src(), 0);
        EXPECT_EQ(error.tag(), 3);
        EXPECT_EQ(error.context(), comm.context());
        EXPECT_EQ(error.expected_bytes(), 2 * sizeof(float));
        EXPECT_EQ(error.actual_bytes(), 4 * sizeof(float));
      }
    }
  });
}

TEST(Transport, RecvAnySizeMismatchThrowsTypedError) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> four(4, 1.0f);
      comm.send<float>(four, 1, 9);
    } else {
      std::vector<float> two(2);
      try {
        comm.recv_any<float>(two, 9);
        FAIL() << "expected TransportError";
      } catch (const TransportError& error) {
        EXPECT_EQ(error.src(), kAnySource);
        EXPECT_EQ(error.tag(), 9);
        EXPECT_EQ(error.expected_bytes(), 2 * sizeof(float));
        EXPECT_EQ(error.actual_bytes(), 4 * sizeof(float));
      }
    }
  });
}

// TransportError stays catchable as the std::runtime_error it replaced.
TEST(Transport, TransportErrorIsARuntimeError) {
  const TransportError error(/*context=*/7, /*src=*/1, /*tag=*/2,
                             /*expected_bytes=*/8, /*actual_bytes=*/16);
  const std::runtime_error& base = error;
  EXPECT_NE(std::string(base.what()).find("size mismatch"), std::string::npos);
}

// --- rendezvous deadlock regression -----------------------------------------

// Symmetric exchange far above the eager limit: the legacy failure mode is a
// sender blocking for a matching receive while its peer does the same. The
// rendezvous path never blocks the sender, so this must complete. A receive
// deadline converts a regression into TimeoutError instead of a hung test.
TEST(Transport, SymmetricSendrecvAboveEagerLimitDoesNotDeadlock) {
  Runtime runtime(2);
  runtime.set_recv_timeout(std::chrono::milliseconds(20000));
  runtime.set_eager_limit(1024);  // force the rendezvous path
  constexpr std::size_t kCount = 1 << 18;  // 1 MiB of floats, >> eager limit
  runtime.run([](Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<float> outgoing(kCount, static_cast<float>(comm.rank() + 1));
    std::vector<float> incoming(kCount);
    comm.sendrecv<float>(outgoing, peer, incoming, peer, 5);
    EXPECT_EQ(incoming.front(), static_cast<float>(peer + 1));
    EXPECT_EQ(incoming.back(), static_cast<float>(peer + 1));
  });
}

// --- eager/rendezvous parity -------------------------------------------------

// Deterministic training-style loop: every rank contributes a distinct
// gradient, allreduce sums it, ranks apply an update, repeat. Returns rank
// 0's final parameters.
std::vector<float> run_training_loop(Runtime& runtime, std::size_t count, int steps) {
  std::vector<float> result;
  runtime.run([&](Comm& comm) {
    std::vector<float> params(count, 0.5f);
    std::vector<float> grads(count);
    for (int step = 0; step < steps; ++step) {
      for (std::size_t i = 0; i < count; ++i) {
        grads[i] = 0.001f * static_cast<float>((comm.rank() + 1) * (step + 1)) +
                   0.01f * static_cast<float>(i % 17) + params[i] * 0.1f;
      }
      comm.allreduce(grads);
      for (std::size_t i = 0; i < count; ++i) {
        params[i] -= 0.01f * grads[i] / static_cast<float>(comm.size());
      }
    }
    if (comm.rank() == 0) result = params;
  });
  return result;
}

TEST(Transport, EagerAndRendezvousProduceBitwiseIdenticalResults) {
  constexpr int kRanks = 4;
  constexpr std::size_t kCount = 3000;  // 12 KB messages
  constexpr int kSteps = 5;

  Runtime eager(kRanks);
  eager.set_eager_limit(std::size_t{1} << 30);  // everything eager
  const std::vector<float> eager_params = run_training_loop(eager, kCount, kSteps);

  Runtime rendezvous(kRanks);
  rendezvous.set_eager_limit(0);  // everything rendezvous
  const std::vector<float> rendezvous_params =
      run_training_loop(rendezvous, kCount, kSteps);

  ASSERT_EQ(eager_params.size(), rendezvous_params.size());
  EXPECT_EQ(0, std::memcmp(eager_params.data(), rendezvous_params.data(),
                           eager_params.size() * sizeof(float)));
}

TEST(Transport, TunedAndLegacyProduceBitwiseIdenticalResults) {
  constexpr int kRanks = 4;
  constexpr std::size_t kCount = 3000;
  constexpr int kSteps = 5;

  Runtime tuned(kRanks);
  tuned.set_transport_mode(TransportMode::Tuned);
  tuned.set_eager_limit(4096);  // messages straddle the crossover
  const std::vector<float> tuned_params = run_training_loop(tuned, kCount, kSteps);

  Runtime legacy(kRanks);
  legacy.set_transport_mode(TransportMode::Legacy);
  legacy.set_eager_limit(4096);
  const std::vector<float> legacy_params =
      run_training_loop(legacy, kCount, kSteps);

  ASSERT_EQ(tuned_params.size(), legacy_params.size());
  EXPECT_EQ(0, std::memcmp(tuned_params.data(), legacy_params.data(),
                           tuned_params.size() * sizeof(float)));
}

// --- large-message collectives through the new paths --------------------------

// Root's binomial-bcast program is a run of Sends of the whole buffer: this
// exercises the shared-payload multi-send (one materialization, N receivers).
TEST(Transport, LargeBcastSharesOnePayloadAcrossReceivers) {
  Runtime runtime(8);
  runtime.set_eager_limit(1024);
  constexpr std::size_t kCount = 1 << 16;  // 256 KiB, rendezvous
  runtime.run([](Comm& comm) {
    std::vector<float> data(kCount);
    if (comm.rank() == 2) {
      for (std::size_t i = 0; i < kCount; ++i) data[i] = static_cast<float>(i % 251);
    }
    comm.bcast(data, 2);
    EXPECT_EQ(data[0], 0.0f);
    EXPECT_EQ(data[250], 250.0f);
    EXPECT_EQ(data[kCount - 1], static_cast<float>((kCount - 1) % 251));
  });
}

// Intermediate binomial-reduce ranks run fused receive-reduce; the result
// must still be the exact sum of every rank's contribution.
TEST(Transport, LargeReduceThroughFusedRecvReduce) {
  constexpr int kRanks = 8;
  Runtime runtime(kRanks);
  runtime.set_eager_limit(1024);
  constexpr std::size_t kCount = 1 << 15;
  runtime.run([](Comm& comm) {
    std::vector<float> data(kCount, static_cast<float>(comm.rank() + 1));
    comm.reduce(data, 0);
    if (comm.rank() == 0) {
      const float expected = static_cast<float>(kRanks * (kRanks + 1) / 2);
      EXPECT_EQ(data.front(), expected);
      EXPECT_EQ(data[kCount / 2], expected);
      EXPECT_EQ(data.back(), expected);
    }
  });
}

// Explicit point-to-point fused reduce: accumulator keeps its own value.
TEST(Transport, RecvReduceAccumulatesInPlace) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    std::vector<float> data{1.0f, 2.0f, 3.0f};
    if (comm.rank() == 0) {
      comm.send<float>(data, 1, 11);
    } else {
      std::vector<float> acc{10.0f, 20.0f, 30.0f};
      comm.recv_reduce(acc, 0, 11);
      EXPECT_EQ(acc[0], 11.0f);
      EXPECT_EQ(acc[1], 22.0f);
      EXPECT_EQ(acc[2], 33.0f);
    }
  });
}

// recv_reduce with a rendezvous sender that arrives AFTER the receiver posts:
// the accumulate runs straight out of the sender's buffer.
TEST(Transport, PostedRecvReduceMatchesLateSender) {
  Runtime runtime(2);
  runtime.set_eager_limit(0);  // rendezvous even for small payloads
  runtime.run([](Comm& comm) {
    std::vector<float> data(1024, 2.0f);
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      comm.send<float>(data, 1, 13);
    } else {
      std::vector<float> acc(1024, 5.0f);
      comm.recv_reduce(acc, 0, 13);  // posts first, sender fills directly
      EXPECT_EQ(acc.front(), 7.0f);
      EXPECT_EQ(acc.back(), 7.0f);
    }
  });
}

// Posted receives must not overtake queued mail for the same key: a first
// (mismatched-size) message stays ahead of a second exact-size one.
TEST(Transport, PostedReceiveDoesNotOvertakeQueuedMail) {
  Runtime runtime(2);
  runtime.set_eager_limit(0);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      // Let rank 1 post its receive first.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::vector<float> first(8, 1.0f);
      std::vector<float> second(4, 2.0f);
      comm.send<float>(first, 1, 17);   // size mismatch: cannot claim, queued
      comm.send<float>(second, 1, 17);  // matches the post, but `first` is
                                        // queued ahead — must NOT claim
    } else {
      std::vector<float> incoming(4);
      // The first message in sender order has 8 floats: the mismatch must be
      // diagnosed, not silently skipped by a claim of the second message.
      EXPECT_THROW(comm.recv<float>(incoming, 0, 17), TransportError);
    }
  });
}

// Zero-length messages ride every path without touching null spans.
TEST(Transport, ZeroLengthMessages) {
  Runtime runtime(2);
  for (const std::size_t limit : {std::size_t{0}, std::size_t{1} << 20}) {
    runtime.set_eager_limit(limit);
    runtime.run([](Comm& comm) {
      std::span<const float> empty;
      if (comm.rank() == 0) {
        comm.send<float>(empty, 1, 19);
      } else {
        std::vector<float> incoming;
        comm.recv<float>(std::span<float>(incoming), 0, 19);
      }
    });
  }
}

// --- SCAFFE_EAGER_LIMIT parsing ----------------------------------------------

/// Scoped env override (tests run serially within a binary).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(EagerLimitEnv, UnsetUsesBuiltInDefault) {
  EnvGuard guard("SCAFFE_EAGER_LIMIT", nullptr);
  EXPECT_EQ(TransportConfig::default_eager_limit(), std::size_t{64} << 10);
  EXPECT_FALSE(TransportConfig::default_eager_auto());
}

TEST(EagerLimitEnv, ParsesByteSizes) {
  {
    EnvGuard guard("SCAFFE_EAGER_LIMIT", "128K");
    EXPECT_EQ(TransportConfig::default_eager_limit(), std::size_t{128} << 10);
  }
  {
    EnvGuard guard("SCAFFE_EAGER_LIMIT", "0");  // everything rendezvous
    EXPECT_EQ(TransportConfig::default_eager_limit(), 0u);
  }
}

TEST(EagerLimitEnv, ClampsToMaximum) {
  EnvGuard guard("SCAFFE_EAGER_LIMIT", "512G");
  EXPECT_EQ(TransportConfig::default_eager_limit(), TransportConfig::kMaxEagerLimit);
}

TEST(EagerLimitEnv, MalformedValuesThrowConfigError) {
  for (const char* bad : {"abc", "-5", "12Q", ""}) {
    EnvGuard guard("SCAFFE_EAGER_LIMIT", bad);
    try {
      (void)TransportConfig::default_eager_limit();
      FAIL() << "expected ConfigError for \"" << bad << "\"";
    } catch (const ConfigError& error) {
      EXPECT_EQ(error.knob(), "SCAFFE_EAGER_LIMIT");
      EXPECT_EQ(error.value(), bad);
      EXPECT_NE(std::string(error.what()).find("SCAFFE_EAGER_LIMIT"), std::string::npos);
    }
  }
}

TEST(EagerLimitEnv, AutoIsRecognizedNotParsed) {
  EnvGuard guard("SCAFFE_EAGER_LIMIT", "auto");
  EXPECT_TRUE(TransportConfig::default_eager_auto());
  // The static default stays the built-in; the measured value is installed
  // by Runtime (see resolve_auto_eager_limit).
  EXPECT_EQ(TransportConfig::default_eager_limit(), std::size_t{64} << 10);
}

// --- transport auto-tuning ----------------------------------------------------

TEST(TransportTuner, PickCrossoverFindsFirstRendezvousWin) {
  TransportCalibration calibration;
  calibration.points = {
      {4 << 10, 10.0, 4.0},    // eager wins
      {32 << 10, 8.0, 7.0},    // eager wins
      {128 << 10, 6.0, 9.0},   // rendezvous wins first here
      {512 << 10, 5.0, 11.0},
  };
  EXPECT_EQ(calibration.pick_crossover(), std::size_t{128} << 10);
}

TEST(TransportTuner, PickCrossoverClampsIntoBand) {
  TransportCalibration low;
  low.points = {{1 << 10, 1.0, 5.0}};  // rendezvous "wins" at 1 KiB: noise
  EXPECT_EQ(low.pick_crossover(), kCrossoverLo);

  TransportCalibration never;
  never.points = {{4 << 10, 10.0, 4.0}, {16 << 20, 10.0, 4.0}};  // never wins
  EXPECT_EQ(never.pick_crossover(), kCrossoverHi);

  TransportCalibration empty;
  EXPECT_EQ(empty.pick_crossover(), kCrossoverHi);
}

TEST(TransportTuner, SaveLoadRoundTrip) {
  TransportCalibration calibration;
  calibration.points = {{4096, 3.25, 1.5}, {65536, 2.0, 2.5}};
  const std::string path = "test_calibration_roundtrip.json";
  ASSERT_TRUE(save_calibration(calibration, path));
  const TransportCalibration loaded = load_calibration(path);
  ASSERT_EQ(loaded.points.size(), 2u);
  EXPECT_EQ(loaded.points[0].bytes, 4096u);
  EXPECT_NEAR(loaded.points[0].eager_gbps, 3.25, 1e-6);
  EXPECT_NEAR(loaded.points[0].rendezvous_gbps, 1.5, 1e-6);
  EXPECT_EQ(loaded.points[1].bytes, 65536u);
  std::remove(path.c_str());
}

TEST(TransportTuner, LoadMissingOrBadFileYieldsEmpty) {
  EXPECT_TRUE(load_calibration("no_such_calibration_file.json").empty());
  const std::string path = "test_calibration_bad.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  std::fputs("{\"unrelated\": true}\n", out);
  std::fclose(out);
  EXPECT_TRUE(load_calibration(path).empty());
  std::remove(path.c_str());
}

TEST(TransportTuner, ResolveAutoReusesPersistedCalibration) {
  // A persisted file short-circuits measurement entirely: resolve must
  // return its crossover without spawning a calibration runtime.
  TransportCalibration calibration;
  calibration.points = {{64 << 10, 9.0, 5.0}, {128 << 10, 5.0, 9.0}};
  const std::string path = "test_calibration_resolve.json";
  ASSERT_TRUE(save_calibration(calibration, path));
  EXPECT_EQ(resolve_auto_eager_limit(path), std::size_t{128} << 10);
  std::remove(path.c_str());
}

TEST(TransportTuner, MeasureSweepsTheBandAndClearsGuard) {
  const TransportCalibration calibration = measure_transport_calibration(/*iters=*/2);
  ASSERT_FALSE(calibration.empty());
  EXPECT_EQ(calibration.points.front().bytes, std::size_t{4} << 10);
  EXPECT_EQ(calibration.points.back().bytes, std::size_t{1} << 20);
  for (const CalibrationPoint& point : calibration.points) {
    EXPECT_GT(point.eager_gbps, 0.0);
    EXPECT_GT(point.rendezvous_gbps, 0.0);
  }
  EXPECT_FALSE(calibration_in_progress());
  const std::size_t crossover = calibration.pick_crossover();
  EXPECT_GE(crossover, kCrossoverLo);
  EXPECT_LE(crossover, kCrossoverHi);
}

// --- collective tag-slot capacity ---------------------------------------------

// Unfused SC-OBR keeps one ireduce outstanding per parameter layer;
// GoogLeNet-class profiles exceed 100 layers. Two live collectives must never
// alias a tag slot — distinct per-collective sizes make any aliasing fail
// loudly as a TransportError size mismatch.
TEST(CollectiveTags, ManyOutstandingCollectivesDoNotAliasSlots) {
  constexpr int kOutstanding = 100;
  mpi::Runtime runtime(4);
  runtime.run([](Comm& comm) {
    std::vector<std::vector<float>> buffers(kOutstanding);
    std::vector<Request> requests;
    requests.reserve(kOutstanding);
    for (int i = 0; i < kOutstanding; ++i) {
      buffers[i].assign(static_cast<std::size_t>(8 + i), static_cast<float>(i + 1));
      requests.push_back(comm.ireduce(buffers[i], 0));
    }
    Comm::waitall(requests);
    if (comm.rank() == 0) {
      for (int i = 0; i < kOutstanding; ++i) {
        EXPECT_EQ(buffers[i].front(), 4.0f * static_cast<float>(i + 1)) << i;
        EXPECT_EQ(buffers[i].back(), 4.0f * static_cast<float>(i + 1)) << i;
      }
    }
  });
}

// --- pre-posted irecv ---------------------------------------------------------

// irecv now registers the destination at CALL time: a rendezvous sender that
// shows up before wait()/test() claims the posted buffer directly.
TEST(PostedIrecv, LateSenderFillsPostedBuffer) {
  Runtime runtime(2);
  runtime.set_eager_limit(0);  // rendezvous only
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::vector<float> data(2048, 3.5f);
      comm.send<float>(data, 1, 21);
    } else {
      std::vector<float> incoming(2048);
      Request request = comm.irecv<float>(incoming, 0, 21);  // posted now
      request.wait();
      EXPECT_EQ(incoming.front(), 3.5f);
      EXPECT_EQ(incoming.back(), 3.5f);
    }
  });
}

TEST(PostedIrecv, TestPollsWithoutBlocking) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      std::vector<float> data(16, 1.0f);
      comm.send<float>(data, 1, 23);
    } else {
      std::vector<float> incoming(16);
      Request request = comm.irecv<float>(incoming, 0, 23);
      // Poll until complete; test() must never throw TimeoutError.
      while (!request.test()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      EXPECT_EQ(incoming[7], 1.0f);
    }
  });
}

TEST(PostedIrecv, AbandonedRequestIsSafe) {
  // Dropping an irecv without wait()/test() must deregister the posted
  // buffer cleanly even when mail arrives afterwards (the abandoned-posted
  // path); the next recv for the tag still sees the message.
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> data(64, 2.0f);
      comm.send<float>(data, 1, 27);
    } else {
      {
        std::vector<float> incoming(64);
        Request request = comm.irecv<float>(incoming, 0, 27);
        // Dropped without completion.
      }
      std::vector<float> incoming(64);
      comm.recv<float>(incoming, 0, 27);
      EXPECT_EQ(incoming.front(), 2.0f);
    }
  });
}

// --- SCAFFE_MSG_CRC eager-payload integrity ----------------------------------

TEST(MsgCrcEnv, UnsetAndOffDisable) {
  {
    EnvGuard guard("SCAFFE_MSG_CRC", nullptr);
    EXPECT_FALSE(TransportConfig::default_msg_crc());
  }
  for (const char* off : {"0", "off"}) {
    EnvGuard guard("SCAFFE_MSG_CRC", off);
    EXPECT_FALSE(TransportConfig::default_msg_crc());
  }
}

TEST(MsgCrcEnv, OnEnables) {
  for (const char* on : {"1", "on"}) {
    EnvGuard guard("SCAFFE_MSG_CRC", on);
    EXPECT_TRUE(TransportConfig::default_msg_crc());
  }
}

TEST(MsgCrcEnv, MalformedValuesThrowConfigError) {
  for (const char* bad : {"yes", "2", ""}) {
    EnvGuard guard("SCAFFE_MSG_CRC", bad);
    try {
      (void)TransportConfig::default_msg_crc();
      FAIL() << "expected ConfigError for \"" << bad << "\"";
    } catch (const ConfigError& error) {
      EXPECT_EQ(error.knob(), "SCAFFE_MSG_CRC");
      EXPECT_EQ(error.value(), bad);
    }
  }
}

// Baseline for the integrity guarantee: with the CRC plane off, an injected
// payload flip is silently delivered — exactly the failure SCAFFE_MSG_CRC
// exists to catch.
TEST(MsgCrc, CorruptionWithoutCrcIsDeliveredSilently) {
  Runtime runtime(2);
  util::ScopedFaultPlan scope(util::FaultPlan(7).corrupt_payload(0, 1, 1));
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> data(8, 1.0f);
      comm.send<float>(data, 1, 3);
    } else {
      // Receive late so the eager message is materialized into the queue —
      // this test targets the queued-payload flip; the posted-claim fill has
      // its own corruption tests below.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::vector<float> data(8);
      comm.recv<float>(data, 0, 3);
      // The flip lands at byte size/2 = 16, i.e. inside data[4].
      EXPECT_NE(data[4], 1.0f);
      EXPECT_EQ(data[0], 1.0f);
    }
  });
  EXPECT_EQ(util::FaultInjector::instance().stats().corruptions, 1u);
}

// With SCAFFE_MSG_CRC on, the same corrupted eager message is rejected with
// a typed IntegrityError naming the exchange — never handed to the
// application.
TEST(MsgCrc, CorruptedEagerMessageRejectedWithIntegrityError) {
  Runtime runtime(2);
  runtime.world().transport.msg_crc.store(true);
  util::ScopedFaultPlan scope(util::FaultPlan(7).corrupt_payload(0, 1, 1));
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> data(8, 1.0f);
      comm.send<float>(data, 1, 3);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::vector<float> data(8);
      try {
        comm.recv<float>(data, 0, 3);
        FAIL() << "expected IntegrityError";
      } catch (const IntegrityError& error) {
        EXPECT_EQ(error.src(), 0);
        EXPECT_EQ(error.tag(), 3);
        EXPECT_EQ(error.context(), comm.context());
        EXPECT_EQ(error.bytes(), 8 * sizeof(float));
        EXPECT_NE(error.expected_crc(), error.actual_crc());
      }
    }
  });
  EXPECT_EQ(util::FaultInjector::instance().stats().corruptions, 1u);
}

// The other delivery path: a POSTED claim filled directly by the sender
// (irecv first, payload second). The flip lands during the claim fill, the
// receiver re-checksums the destination buffer, and wait() surfaces the same
// typed IntegrityError the queued path gets — claims are no longer outside
// the CRC plane's reach.
TEST(MsgCrc, CorruptedClaimFillRejectedWithIntegrityError) {
  Runtime runtime(2);
  runtime.world().transport.msg_crc.store(true);
  runtime.set_eager_limit(0);  // rendezvous: the sender fills the posted claim
  util::ScopedFaultPlan scope(util::FaultPlan(7).corrupt_payload(0, 1, 1));
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      // Wait for the claim to exist before sending, so delivery is
      // deterministically the claim-fill path, never the queue.
      std::vector<float> flag(1);
      comm.recv<float>(flag, 1, 8);
      std::vector<float> data(8, 1.0f);
      comm.send<float>(data, 1, 9);
    } else {
      std::vector<float> incoming(8);
      Request request = comm.irecv<float>(incoming, 0, 9);
      std::vector<float> flag(1, 1.0f);
      comm.send<float>(flag, 0, 8);
      try {
        request.wait();
        FAIL() << "expected IntegrityError from the claim fill";
      } catch (const IntegrityError& error) {
        EXPECT_EQ(error.src(), 0);
        EXPECT_EQ(error.tag(), 9);
        EXPECT_EQ(error.context(), comm.context());
        EXPECT_EQ(error.bytes(), 8 * sizeof(float));
        EXPECT_NE(error.expected_crc(), error.actual_crc());
      }
    }
  });
  EXPECT_EQ(util::FaultInjector::instance().stats().corruptions, 1u);
}

// Baseline for the claim path, mirroring the queued-path baseline above:
// with the CRC plane off the claim fill delivers the flipped bytes silently.
TEST(MsgCrc, CorruptedClaimFillWithoutCrcIsDeliveredSilently) {
  Runtime runtime(2);
  runtime.set_eager_limit(0);
  util::ScopedFaultPlan scope(util::FaultPlan(7).corrupt_payload(0, 1, 1));
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> flag(1);
      comm.recv<float>(flag, 1, 8);
      std::vector<float> data(8, 1.0f);
      comm.send<float>(data, 1, 9);
    } else {
      std::vector<float> incoming(8);
      Request request = comm.irecv<float>(incoming, 0, 9);
      std::vector<float> flag(1, 1.0f);
      comm.send<float>(flag, 0, 8);
      request.wait();
      // The flip lands at byte size/2 = 16, i.e. inside incoming[4].
      EXPECT_NE(incoming[4], 1.0f);
      EXPECT_EQ(incoming[0], 1.0f);
    }
  });
  EXPECT_EQ(util::FaultInjector::instance().stats().corruptions, 1u);
}

// An uncorrupted stream under SCAFFE_MSG_CRC must be byte-for-byte the same
// traffic, just verified: stamping is overhead, not a behaviour change.
TEST(MsgCrc, CleanTrafficPassesVerification) {
  Runtime runtime(2);
  runtime.world().transport.msg_crc.store(true);
  runtime.run([](Comm& comm) {
    std::vector<float> data(64);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i);
      comm.send<float>(data, 1, 5);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      comm.recv<float>(data, 0, 5);
      for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(data[i], static_cast<float>(i));
      }
    }
  });
}

// --- unified mpi::Error hierarchy ---------------------------------------------

// Every typed failure shares the {context, src, tag, generation} base plus
// the restartable()/suspect() policy hooks, so supervisors can select a
// victim without special-casing concrete types.
TEST(ErrorHierarchy, TypedErrorsShareTheCommonBase) {
  const TimeoutError timeout(/*context=*/7, /*src=*/2, /*tag=*/3,
                             std::chrono::milliseconds(100), /*generation=*/4);
  const BackpressureError backpressure(/*context=*/7, /*src=*/1, /*dst=*/0, /*tag=*/3,
                                       /*message_bytes=*/4096,
                                       std::chrono::milliseconds(100), FlowDiagnostics{},
                                       /*generation=*/4);
  const TransportError transport(/*context=*/7, /*src=*/2, /*tag=*/3,
                                 /*expected_bytes=*/8, /*actual_bytes=*/16);
  const ConfigError config("SCAFFE_X", "bogus", "(expected a number)");
  const SuspectError suspect(/*context=*/7, /*rank=*/2, /*world_rank=*/5,
                             /*last_seq=*/11, std::chrono::milliseconds(120),
                             /*generation=*/4);
  const IntegrityError integrity(/*context=*/7, /*src=*/2, /*tag=*/3, /*generation=*/4,
                                 /*expected_crc=*/1, /*actual_crc=*/2, /*bytes=*/32);

  const Error* errors[] = {&timeout, &backpressure, &transport, &suspect, &integrity};
  for (const Error* error : errors) EXPECT_EQ(error->context(), 7) << error->what();
  EXPECT_EQ(config.context(), -1);  // config failures have no exchange origin
  // Deadline-class and integrity failures are restartable and name their
  // suspect as a communicator rank; protocol/config failures are terminal.
  EXPECT_TRUE(timeout.restartable());
  EXPECT_EQ(timeout.suspect(), 2);
  EXPECT_TRUE(backpressure.restartable());
  EXPECT_EQ(backpressure.suspect(), -1);  // dst is a world rank, not comm rank
  EXPECT_FALSE(transport.restartable());
  EXPECT_EQ(transport.suspect(), -1);
  EXPECT_FALSE(config.restartable());
  EXPECT_TRUE(suspect.restartable());
  EXPECT_EQ(suspect.suspect(), 2);
  EXPECT_EQ(suspect.world_rank(), 5);
  EXPECT_TRUE(integrity.restartable());
  EXPECT_EQ(integrity.suspect(), 2);
  // An any-source timeout cannot name a suspect.
  const TimeoutError any(/*context=*/7, kAnySource, /*tag=*/3,
                         std::chrono::milliseconds(100));
  EXPECT_EQ(any.suspect(), -1);
  EXPECT_EQ(suspect.generation(), 4u);
}

TEST(PostedIrecv, EagerSizeMismatchDiagnosedAtCompletion) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> four(4, 1.0f);
      comm.send<float>(four, 1, 29);
    } else {
      std::vector<float> two(2);
      Request request = comm.irecv<float>(two, 0, 29);
      EXPECT_THROW(request.wait(), TransportError);
    }
  });
}

}  // namespace
}  // namespace scaffe::mpi
