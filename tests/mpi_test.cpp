#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <numeric>
#include <thread>
#include <vector>

#include "coll/algorithms.h"
#include "gpu/device.h"
#include "gpu/kernels.h"
#include "mpi/comm.h"

namespace scaffe::mpi {
namespace {

TEST(Runtime, RunsAllRanks) {
  Runtime runtime(4);
  std::atomic<int> visited{0};
  runtime.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 4);
    visited.fetch_add(1);
  });
  EXPECT_EQ(visited.load(), 4);
}

TEST(Runtime, PropagatesExceptions) {
  Runtime runtime(2);
  EXPECT_THROW(runtime.run([](Comm& comm) {
    if (comm.rank() == 1) throw std::runtime_error("rank 1 failed");
  }),
               std::runtime_error);
}

TEST(Runtime, ReusableAcrossRuns) {
  Runtime runtime(2);
  for (int iteration = 0; iteration < 3; ++iteration) {
    runtime.run([&](Comm& comm) {
      std::vector<float> v(4, static_cast<float>(comm.rank() + 1));
      comm.allreduce(v);
      EXPECT_EQ(v[0], 3.0f);
    });
  }
}

TEST(PointToPoint, SendRecvRoundTrip) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    std::vector<float> buffer{1.0f, 2.0f, 3.0f};
    if (comm.rank() == 0) {
      comm.send<float>(buffer, 1, 7);
    } else {
      std::vector<float> incoming(3);
      comm.recv<float>(incoming, 0, 7);
      EXPECT_EQ(incoming, buffer);
    }
  });
}

TEST(PointToPoint, TagsMatchOutOfOrder) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> a{1.0f};
      std::vector<float> b{2.0f};
      comm.send<float>(a, 1, 10);
      comm.send<float>(b, 1, 20);
    } else {
      std::vector<float> v(1);
      comm.recv<float>(v, 0, 20);  // receives the later tag first
      EXPECT_EQ(v[0], 2.0f);
      comm.recv<float>(v, 0, 10);
      EXPECT_EQ(v[0], 1.0f);
    }
  });
}

TEST(PointToPoint, IsendIrecv) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> data{5.0f};
      Request request = comm.isend<float>(data, 1, 3);
      EXPECT_TRUE(request.test());
      request.wait();
    } else {
      std::vector<float> data(1, 0.0f);
      Request request = comm.irecv<float>(data, 0, 3);
      request.wait();
      EXPECT_EQ(data[0], 5.0f);
    }
  });
}

TEST(PointToPoint, IrecvTestPollsWithoutBlocking) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 1) {
      std::vector<float> data(1, 0.0f);
      Request request = comm.irecv<float>(data, 0, 1);
      // Polling before any send must not block or complete.
      (void)request.test();
      comm.barrier();  // rank 0 sends before the barrier
      while (!request.test()) {
      }
      EXPECT_EQ(data[0], 9.0f);
    } else {
      std::vector<float> data{9.0f};
      comm.send<float>(data, 1, 1);
      comm.barrier();
    }
  });
}

TEST(PointToPoint, EmptyMessage) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    std::vector<float> empty;
    if (comm.rank() == 0) {
      comm.send<float>(empty, 1, 0);
    } else {
      comm.recv<float>(std::span<float>(empty), 0, 0);
    }
  });
}

TEST(PointToPoint, SizeMismatchThrows) {
  Runtime runtime(2);
  EXPECT_THROW(runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> data{1.0f, 2.0f};
      comm.send<float>(data, 1, 0);
    } else {
      std::vector<float> data(1);
      comm.recv<float>(data, 0, 0);
    }
  }),
               std::runtime_error);
}

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, Bcast) {
  Runtime runtime(GetParam());
  runtime.run([](Comm& comm) {
    std::vector<float> data(33, comm.rank() == 0 ? 4.5f : 0.0f);
    comm.bcast(data, 0);
    for (float v : data) EXPECT_EQ(v, 4.5f);
  });
}

TEST_P(CollectiveSweep, BcastNonzeroRoot) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    const int root = p - 1;
    std::vector<float> data(8, comm.rank() == root ? 1.25f : 0.0f);
    comm.bcast(data, root);
    EXPECT_EQ(data[3], 1.25f);
  });
}

TEST_P(CollectiveSweep, ReduceSumsAtRoot) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> data(17, static_cast<float>(comm.rank() + 1));
    comm.reduce(data, 0);
    if (comm.rank() == 0) {
      const float expected = static_cast<float>(p * (p + 1) / 2);
      for (float v : data) EXPECT_EQ(v, expected);
    }
  });
}

TEST_P(CollectiveSweep, AllreduceEverywhere) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> data(9, 2.0f);
    comm.allreduce(data);
    for (float v : data) EXPECT_EQ(v, 2.0f * static_cast<float>(p));
  });
}

TEST_P(CollectiveSweep, BarrierOrdersPhases) {
  Runtime runtime(GetParam());
  std::atomic<int> phase_one{0};
  std::atomic<bool> violated{false};
  const int p = GetParam();
  runtime.run([&, p](Comm& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    if (phase_one.load() != p) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(CollectiveSweep, GatherConcatenatesInRankOrder) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> mine(2, static_cast<float>(comm.rank()));
    std::vector<float> gathered = comm.gather(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(2 * p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(2 * r)], static_cast<float>(r));
      }
    }
  });
}

TEST_P(CollectiveSweep, AllgatherEverywhere) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> mine{static_cast<float>(comm.rank() * 10)};
    std::vector<float> all = comm.allgather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], 10.0f * r);
  });
}

TEST_P(CollectiveSweep, ScatterDistributesBlocks) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> source;
    if (comm.rank() == 0) {
      source.resize(static_cast<std::size_t>(3 * p));
      std::iota(source.begin(), source.end(), 0.0f);
    }
    std::vector<float> block = comm.scatter(source, 0);
    ASSERT_EQ(block.size(), 3u);
    EXPECT_EQ(block[0], static_cast<float>(3 * comm.rank()));
  });
}

TEST_P(CollectiveSweep, IbcastOverlapsAndCompletes) {
  Runtime runtime(GetParam());
  runtime.run([](Comm& comm) {
    std::vector<float> data(1024, comm.rank() == 0 ? 3.0f : 0.0f);
    Request request = comm.ibcast(data, 0);
    // "Computation" while communication progresses in the background.
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) acc += i * 0.5;
    EXPECT_GT(acc, 0.0);
    request.wait();
    EXPECT_EQ(data[512], 3.0f);
  });
}

TEST_P(CollectiveSweep, IreduceCompletesWithSum) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> data(256, 1.0f);
    Request request = comm.ireduce(data, 0);
    request.wait();
    if (comm.rank() == 0) { EXPECT_EQ(data[0], static_cast<float>(p)); }
  });
}

TEST_P(CollectiveSweep, MultipleOutstandingNbc) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<std::vector<float>> buffers(4);
    std::vector<Request> requests;
    for (int i = 0; i < 4; ++i) {
      buffers[static_cast<std::size_t>(i)].assign(64, static_cast<float>(i + 1));
      requests.push_back(comm.ireduce(buffers[static_cast<std::size_t>(i)], 0));
    }
    for (auto& request : requests) request.wait();
    if (comm.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(buffers[static_cast<std::size_t>(i)][0], static_cast<float>((i + 1) * p));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, CollectiveSweep, ::testing::Values(1, 2, 3, 4, 8, 13));

TEST(CommSplit, GroupsByColor) {
  Runtime runtime(6);
  runtime.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collective inside the sub-communicator.
    std::vector<float> data(4, 1.0f);
    sub.allreduce(data);
    EXPECT_EQ(data[0], 3.0f);
  });
}

TEST(CommSplit, KeyControlsOrdering) {
  Runtime runtime(4);
  runtime.run([](Comm& comm) {
    // Reverse the ordering with descending keys.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(CommSplit, SubCommIsolatedFromParent) {
  Runtime runtime(4);
  runtime.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 2, comm.rank());
    // Interleave parent and child collectives; tags/contexts must not clash.
    std::vector<float> a(8, 1.0f);
    std::vector<float> b(8, 2.0f);
    Request parent_reduce = comm.ireduce(a, 0);
    sub.allreduce(b);
    parent_reduce.wait();
    EXPECT_EQ(b[0], 4.0f);
    if (comm.rank() == 0) { EXPECT_EQ(a[0], 4.0f); }
  });
}

TEST(CommSplit, HierarchyLikeSection5) {
  // Leaders sub-communicator spanning "nodes": the two-level reduce layout.
  Runtime runtime(8);
  runtime.run([](Comm& comm) {
    const int chain = 4;
    Comm lower = comm.split(comm.rank() / chain, comm.rank());
    const bool leader = lower.rank() == 0;
    Comm upper = comm.split(leader ? 0 : 1, comm.rank());
    std::vector<float> grad(16, 1.0f);
    lower.reduce(grad, 0);
    if (leader) {
      upper.reduce(grad, 0);
      if (comm.rank() == 0) { EXPECT_EQ(grad[0], 8.0f); }
    }
  });
}

TEST(CommDup, IndependentContext) {
  Runtime runtime(3);
  runtime.run([](Comm& comm) {
    Comm copy = comm.dup();
    EXPECT_EQ(copy.rank(), comm.rank());
    EXPECT_EQ(copy.size(), comm.size());
    std::vector<float> data(4, 1.0f);
    copy.allreduce(data);
    EXPECT_EQ(data[0], 3.0f);
  });
}

TEST(ScheduleFactories, HierarchicalReduceInstallable) {
  Runtime runtime(8);
  runtime.run([](Comm& comm) {
    comm.set_reduce_factory([](int nranks, int root, std::size_t count) {
      if (root == 0 && nranks > 4) {
        return coll::hierarchical_reduce(nranks, count, 4, coll::LevelAlgo::Chain,
                                         coll::LevelAlgo::Binomial, 4);
      }
      return coll::binomial_reduce(nranks, root, count);
    });
    std::vector<float> data(128, 0.5f);
    comm.reduce(data, 0);
    if (comm.rank() == 0) { EXPECT_EQ(data[0], 4.0f); }
  });
}

TEST(ScheduleFactories, ChainBcastInstallable) {
  Runtime runtime(6);
  runtime.run([](Comm& comm) {
    comm.set_bcast_factory([](int nranks, int root, std::size_t count) {
      return coll::chain_bcast(nranks, root, count, 4);
    });
    std::vector<float> data(64, comm.rank() == 0 ? 7.0f : 0.0f);
    comm.bcast(data, 0);
    EXPECT_EQ(data[63], 7.0f);
  });
}

// --- abort propagation through non-blocking operations ------------------------
//
// MPI_Abort semantics must reach requests, not just blocked receives: after
// one rank fails, a peer's Request::wait() must raise AbortError, a
// Request::test() polling loop must raise instead of spinning forever, and
// the failing rank's original exception must win over the secondary
// AbortErrors it caused.

struct OriginalFailure : std::runtime_error {
  OriginalFailure() : std::runtime_error("original failure") {}
};

TEST(AbortPropagation, WaitAfterAbortRaisesAndOriginalErrorWins) {
  Runtime runtime(3);
  try {
    runtime.run([](Comm& comm) {
      if (comm.rank() == 0) {
        comm.barrier();
        throw OriginalFailure();
      }
      comm.barrier();
      // Never satisfied: rank 0 fails instead of sending.
      std::vector<float> data(1);
      Request request = comm.irecv<float>(data, 0, 77);
      request.wait();  // must raise AbortError, not hang
      FAIL() << "wait() returned after abort";
    });
    FAIL() << "run() returned despite a failing rank";
  } catch (const OriginalFailure&) {
    // rank 0's exception, not the secondary AbortError, surfaces.
  }
}

TEST(AbortPropagation, TestPollingLoopRaisesInsteadOfSpinning) {
  Runtime runtime(2);
  try {
    runtime.run([](Comm& comm) {
      if (comm.rank() == 0) {
        comm.barrier();
        throw OriginalFailure();
      }
      std::vector<float> data(1);
      Request request = comm.irecv<float>(data, 0, 12);
      comm.barrier();
      // Poll until completion: once the world aborts, test() must throw
      // AbortError — completing false forever would hang this loop.
      EXPECT_THROW(
          while (!request.test()) { std::this_thread::yield(); },
          AbortError);
      throw std::runtime_error("secondary observer failure");
    });
    FAIL() << "run() returned despite failing ranks";
  } catch (const OriginalFailure&) {
  } catch (const std::runtime_error& error) {
    // Either rank's *non-abort* exception may surface first (both are
    // original failures); a bare AbortError must not.
    EXPECT_STREQ(error.what(), "secondary observer failure");
  }
}

TEST(AbortPropagation, NonBlockingCollectiveWaitUnblocksOnAbort) {
  Runtime runtime(3);
  try {
    runtime.run([](Comm& comm) {
      if (comm.rank() == 2) {
        comm.barrier();
        throw OriginalFailure();
      }
      comm.barrier();
      std::vector<float> data(64, 1.0f);
      Request request = comm.ireduce(data, 0);  // rank 2 never participates
      request.wait();
    });
    FAIL() << "run() returned despite a failing rank";
  } catch (const OriginalFailure&) {
  }
}

TEST(AbortPropagation, BlockedCollectivePeersUnwindWithOriginalError) {
  // The original failing rank dies *inside* a collective window while peers
  // are blocked deep in schedule execution.
  Runtime runtime(4);
  EXPECT_THROW(runtime.run([](Comm& comm) {
                 if (comm.rank() == 3) throw OriginalFailure();
                 std::vector<float> data(256, 1.0f);
                 comm.allreduce(data);
               }),
               OriginalFailure);
}

TEST(CudaAware, DeviceBufferCollectives) {
  Runtime runtime(4);
  std::deque<gpu::Device> devices;
  for (int i = 0; i < 4; ++i) devices.emplace_back(i);
  runtime.run([&](Comm& comm) {
    gpu::Device& device = devices[static_cast<std::size_t>(comm.rank())];
    gpu::DeviceBuffer<float> buffer(device, 512);
    gpu::fill(1.0f, buffer.span());
    comm.allreduce(buffer);
    EXPECT_EQ(buffer[100], 4.0f);
    Request request = comm.ireduce(buffer, 0);
    request.wait();
  });
}

}  // namespace
}  // namespace scaffe::mpi
