#include <gtest/gtest.h>

#include <random>

#include "util/bytes.h"
#include "util/duration.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace scaffe::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(13);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.below(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(5);
  std::uniform_int_distribution<int> dist(0, 9);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(rng);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
  }
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(Stats, PercentileEmpty) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

TEST(Stats, Geomean) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({1.0, -1.0}), 0.0);
}

TEST(Bytes, Format) {
  EXPECT_EQ(fmt_bytes(4), "4B");
  EXPECT_EQ(fmt_bytes(16 * kKiB), "16KB");
  EXPECT_EQ(fmt_bytes(256 * kMiB), "256MB");
  EXPECT_EQ(fmt_bytes(kGiB + kGiB / 2), "1.5GB");
}

TEST(Bytes, Parse) {
  EXPECT_EQ(parse_bytes("4"), 4u);
  EXPECT_EQ(parse_bytes("16K"), 16 * kKiB);
  EXPECT_EQ(parse_bytes("16KB"), 16 * kKiB);
  EXPECT_EQ(parse_bytes("256M"), 256 * kMiB);
  EXPECT_EQ(parse_bytes("2g"), 2 * kGiB);
  EXPECT_EQ(parse_bytes(""), 0u);
  EXPECT_EQ(parse_bytes("abc"), 0u);
  EXPECT_EQ(parse_bytes("12X"), 0u);
}

TEST(Bytes, RoundTrip) {
  for (std::size_t v : {std::size_t{4}, 16 * kKiB, 4 * kMiB, 256 * kMiB}) {
    EXPECT_EQ(parse_bytes(fmt_bytes(v)), v);
  }
}

TEST(Duration, Format) {
  EXPECT_EQ(fmt_time(950), "950ns");
  EXPECT_EQ(fmt_time(12 * kUs), "12.00us");
  EXPECT_EQ(fmt_time(3 * kMs + kMs / 5), "3.20ms");
  EXPECT_EQ(fmt_time(kSec + 3 * kSec / 4), "1.75s");
  EXPECT_EQ(fmt_time(-12 * kUs), "-12.00us");
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(to_ms(from_ms(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_us(from_us(0.5)), 0.5);
  EXPECT_DOUBLE_EQ(to_sec(from_sec(1.25)), 1.25);
}

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "20000"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, Csv) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RaggedRows) {
  Table table({"a"});
  table.add_row({"1", "2", "3"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(Format, FmtDouble) {
  EXPECT_EQ(fmt_double(1.5), "1.5");
  EXPECT_EQ(fmt_double(2.0), "2");
  EXPECT_EQ(fmt_double(0.125, 3), "0.125");
}

TEST(Format, FmtSpeedup) { EXPECT_EQ(fmt_speedup(2.3), "2.3x"); }

}  // namespace
}  // namespace scaffe::util
