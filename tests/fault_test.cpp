// Fault-tolerance tests: deterministic fault injection, scmpi receive
// deadlines, crash-safe snapshots, and checkpoint-based recovery — capped by
// the chaos test, which trains under a seeded fault schedule and must land
// on parameters bitwise identical to the fault-free run.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"
#include "dl/snapshot.h"
#include "models/zoo.h"
#include "mpi/comm.h"
#include "mpi/health.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace scaffe {
namespace {

using namespace std::chrono_literals;

// --- FaultInjector unit behaviour -------------------------------------------

TEST(FaultInjector, InactiveByDefault) {
  auto& injector = util::FaultInjector::instance();
  injector.clear();
  EXPECT_FALSE(injector.active());
  const util::MessageFault fault = injector.on_message(0, 1, 7);
  EXPECT_FALSE(fault.drop);
  EXPECT_EQ(fault.delay.count(), 0);
  EXPECT_NO_THROW(injector.check_crash(0, 0));
  EXPECT_FALSE(injector.next_snapshot_write_fails());
}

TEST(FaultInjector, MessageDecisionsAreDeterministicInSendOrder) {
  auto& injector = util::FaultInjector::instance();

  auto collect = [&] {
    std::vector<bool> drops;
    util::ScopedFaultPlan scope(util::FaultPlan(42).drop_messages(0.5));
    for (int i = 0; i < 64; ++i) drops.push_back(injector.on_message(0, 1, i).drop);
    return drops;
  };
  const std::vector<bool> first = collect();
  const std::vector<bool> second = collect();
  EXPECT_EQ(first, second);
  // A 0.5 drop rate over 64 messages fires at least once each way.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  // Stats survive clear() (post-run inspection) and reset on install().
  EXPECT_GT(injector.stats().drops, 0u);
  util::ScopedFaultPlan fresh(util::FaultPlan(42));
  EXPECT_EQ(injector.stats().drops, 0u);
}

TEST(FaultInjector, CrashIsOneShot) {
  auto& injector = util::FaultInjector::instance();
  util::ScopedFaultPlan scope(util::FaultPlan(1).crash_rank(2, 5));
  EXPECT_NO_THROW(injector.check_crash(2, 4));
  EXPECT_NO_THROW(injector.check_crash(1, 5));
  EXPECT_THROW(injector.check_crash(2, 5), util::InjectedCrash);
  // Recovery re-executes iteration 5; the crash must not re-fire.
  EXPECT_NO_THROW(injector.check_crash(2, 5));
  EXPECT_EQ(injector.stats().crashes, 1u);
}

TEST(FaultInjector, RecoveryCrashEntriesAreOneShotPerWindow) {
  auto& injector = util::FaultInjector::instance();
  util::ScopedFaultPlan scope(util::FaultPlan(1)
                                  .crash_in_recovery(3, 1)
                                  .crash_in_recovery(2, 1)
                                  .crash_in_recovery(1, 2));
  // Window 1 drains its two one-shot entries, then goes quiet.
  std::vector<int> died;
  for (;;) {
    try {
      injector.check_recovery_crash(1);
      break;
    } catch (const util::InjectedCrash& crash) {
      EXPECT_TRUE(crash.during_recovery());
      EXPECT_EQ(crash.iteration(), 1);
      died.push_back(crash.rank());
    }
  }
  EXPECT_EQ(died, (std::vector<int>{3, 2}));
  EXPECT_NO_THROW(injector.check_recovery_crash(1));
  EXPECT_THROW(injector.check_recovery_crash(2), util::InjectedCrash);
  EXPECT_NO_THROW(injector.check_recovery_crash(2));
  EXPECT_EQ(injector.stats().crashes, 3u);
}

TEST(FaultInjector, SnapshotFailureBudgetIsConsumed) {
  auto& injector = util::FaultInjector::instance();
  util::ScopedFaultPlan scope(util::FaultPlan(1).fail_snapshot_writes(2));
  EXPECT_TRUE(injector.next_snapshot_write_fails());
  EXPECT_TRUE(injector.next_snapshot_write_fails());
  EXPECT_FALSE(injector.next_snapshot_write_fails());
  EXPECT_EQ(injector.stats().io_failures, 2u);
}

// --- scmpi receive deadlines --------------------------------------------------

TEST(Timeout, DeadlockedRecvFailsWithTimeoutError) {
  // Acceptance: a deliberately deadlocked p2p exchange must fail with a
  // typed TimeoutError within the configured deadline instead of hanging.
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(200ms);
  const auto start = std::chrono::steady_clock::now();
  try {
    runtime.run([](mpi::Comm& comm) {
      std::vector<float> buffer(4);
      // Both ranks receive, nobody sends: a classic deadlock.
      comm.recv<float>(buffer, 1 - comm.rank(), 99);
    });
    FAIL() << "deadlocked recv returned";
  } catch (const mpi::TimeoutError& error) {
    EXPECT_EQ(error.tag(), 99);
    EXPECT_GE(error.src(), 0);
    EXPECT_EQ(error.deadline(), 200ms);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 5s);  // well within ctest patience
}

TEST(Timeout, DroppedMessageTurnsIntoTimeout) {
  // Drop every message: the receive deadline converts the silent hang into
  // a TimeoutError naming the blocked (src, tag).
  util::ScopedFaultPlan scope(util::FaultPlan(7).drop_messages(1.0));
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(200ms);
  try {
    runtime.run([](mpi::Comm& comm) {
      std::vector<float> buffer{1.0f};
      if (comm.rank() == 0) {
        comm.send<float>(buffer, 1, 5);  // dropped by the plan
      } else {
        comm.recv<float>(buffer, 0, 5);  // never arrives
      }
    });
    FAIL() << "dropped message did not time out";
  } catch (const mpi::TimeoutError& error) {
    EXPECT_EQ(error.src(), 0);
    EXPECT_EQ(error.tag(), 5);
  }
}

TEST(Timeout, SatisfiedRecvIgnoresDeadline) {
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(5000ms);
  runtime.run([](mpi::Comm& comm) {
    std::vector<float> buffer{static_cast<float>(comm.rank())};
    if (comm.rank() == 0) {
      comm.send<float>(buffer, 1, 3);
    } else {
      comm.recv<float>(buffer, 0, 3);
      EXPECT_EQ(buffer[0], 0.0f);
    }
  });
}

TEST(Timeout, CollectivesInheritTheDeadline) {
  // One rank skips the collective: the others' reduce must time out rather
  // than hang the whole job.
  mpi::Runtime runtime(3);
  runtime.set_recv_timeout(200ms);
  EXPECT_THROW(runtime.run([](mpi::Comm& comm) {
                 if (comm.rank() == 2) return;  // deserter
                 std::vector<float> data(16, 1.0f);
                 comm.reduce(data, 0);
               }),
               mpi::TimeoutError);
}

// --- injected message faults under real training -----------------------------

TEST(MessageFaults, DelaysDoNotChangeTrainingResults) {
  // Delays reorder nothing the matcher can see: training values must be
  // bitwise identical with and without them.
  auto run_once = [] {
    data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
    data::ImageDataBackend backend(dataset);
    core::TrainerConfig config;
    config.iterations = 4;
    config.global_batch = 8;
    config.scaffe.variant = core::Variant::SCOB;
    return core::train_with_recovery(
        2, backend, dataset.sample_floats(),
        [](int batch) { return models::mlp_netspec(batch, 6, 8, 3); }, config);
  };

  const core::TrainerReport clean = run_once();
  util::ScopedFaultPlan scope(
      util::FaultPlan(11).delay_messages(0.2, std::chrono::microseconds(500)));
  const core::TrainerReport delayed = run_once();

  ASSERT_FALSE(clean.final_params.empty());
  EXPECT_EQ(clean.final_params, delayed.final_params);
  EXPECT_EQ(clean.root_losses, delayed.root_losses);
  EXPECT_GT(util::FaultInjector::instance().stats().delays, 0u);
}

// --- checkpoint-based recovery ------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("scaffe_fault_ckpt_" +
              std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()) +
              ".bin"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }

  core::TrainerConfig base_config() const {
    core::TrainerConfig config;
    config.iterations = 10;
    config.global_batch = 16;
    config.snapshot_every = 2;
    config.snapshot_path = path_;
    config.solver.base_lr = 0.05f;
    config.solver.momentum = 0.9f;
    return config;
  }

  core::NetSpecFactory factory() const {
    return [](int batch) { return models::mlp_netspec(batch, 6, 8, 3); };
  }

  std::string path_;
};

TEST_F(RecoveryTest, ChaosScheduleMatchesFaultFreeRunBitwise) {
  // The capstone: message delays + one rank crash + one snapshot I/O
  // failure, all seeded — training completes and the final parameters are
  // bitwise identical to the fault-free run.
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.scaffe.variant = core::Variant::SCOBR;  // exercise the helper-thread path
  config.recv_timeout_ms = 30000;                // backstop: fail typed, never hang

  const core::TrainerReport clean =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);
  ASSERT_FALSE(clean.final_params.empty());
  EXPECT_EQ(clean.recovery.restarts, 0);
  std::filesystem::remove(path_);

  util::ScopedFaultPlan scope(
      util::FaultPlan(2017)
          .delay_messages(0.05, std::chrono::microseconds(300))
          .crash_rank(1, 5)
          .fail_snapshot_writes(1));
  const core::TrainerReport chaotic =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);

  EXPECT_EQ(chaotic.recovery.restarts, 1);
  EXPECT_EQ(chaotic.recovery.resumed_iteration, 4);  // last snapshot before the crash
  EXPECT_GE(chaotic.recovery.faults_fired, 2u);      // >= the crash + the I/O failure
  const util::FaultStats stats = util::FaultInjector::instance().stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.io_failures, 1u);

  ASSERT_EQ(chaotic.final_params.size(), clean.final_params.size());
  EXPECT_EQ(chaotic.final_params, clean.final_params);  // bitwise identity
  // The recovered segment's losses equal the fault-free run's tail.
  ASSERT_EQ(chaotic.iterations, clean.iterations);
  const std::size_t resumed = static_cast<std::size_t>(chaotic.recovery.resumed_iteration);
  ASSERT_EQ(chaotic.root_losses.size() + resumed, clean.root_losses.size());
  for (std::size_t i = 0; i < chaotic.root_losses.size(); ++i) {
    EXPECT_EQ(chaotic.root_losses[i], clean.root_losses[resumed + i]) << i;
  }
}

TEST_F(RecoveryTest, CrashBeforeFirstSnapshotRestartsFromScratch) {
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.iterations = 6;

  const core::TrainerReport clean =
      core::train_with_recovery(2, backend, dataset.sample_floats(), factory(), config);
  std::filesystem::remove(path_);

  util::ScopedFaultPlan scope(util::FaultPlan(3).crash_rank(1, 1));
  const core::TrainerReport recovered =
      core::train_with_recovery(2, backend, dataset.sample_floats(), factory(), config);
  EXPECT_EQ(recovered.recovery.restarts, 1);
  EXPECT_EQ(recovered.recovery.resumed_iteration, 0);
  EXPECT_EQ(recovered.final_params, clean.final_params);
}

TEST_F(RecoveryTest, RestartBudgetExhaustionThrows) {
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.iterations = 4;
  config.snapshot_every = 0;  // no checkpoints: every restart begins at 0

  // The same rank crashes at iteration 1 of every attempt.
  util::ScopedFaultPlan scope(util::FaultPlan(5)
                                  .crash_rank(0, 1)
                                  .crash_rank(0, 1)
                                  .crash_rank(0, 1)
                                  .crash_rank(0, 1));
  EXPECT_THROW(core::train_with_recovery(2, backend, dataset.sample_floats(), factory(),
                                         config, /*max_restarts=*/2),
               std::runtime_error);
}

TEST_F(RecoveryTest, SnapshotWriteFailuresAreRetriedAndCounted) {
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.iterations = 4;

  util::ScopedFaultPlan scope(util::FaultPlan(9).fail_snapshot_writes(1));
  const core::TrainerReport report =
      core::train_with_recovery(2, backend, dataset.sample_floats(), factory(), config);
  EXPECT_EQ(report.recovery.restarts, 0);
  EXPECT_EQ(report.recovery.snapshot_write_retries, 1);
  EXPECT_EQ(report.snapshots_written, 2);
  // The finished file is a valid full checkpoint despite the turbulence.
  const auto info = dl::probe_snapshot(path_);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->iteration, 4);
  EXPECT_GT(info->state_count, 0u);
}

TEST_F(RecoveryTest, ExhaustedSnapshotRetriesSurfaceAsError) {
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.iterations = 2;

  // More failures than the writer's retry budget: the save throws, which is
  // a non-restartable error (the job can't checkpoint at all).
  util::ScopedFaultPlan scope(util::FaultPlan(9).fail_snapshot_writes(100));
  EXPECT_THROW(
      core::train_with_recovery(2, backend, dataset.sample_floats(), factory(), config),
      std::runtime_error);
}

TEST_F(RecoveryTest, MultiCrashScheduleSurvivesUnderRestart) {
  // Two distinct ranks die in two separate training attempts; each failure
  // costs one same-size restart and the trajectory still lands bitwise on
  // the fault-free parameters.
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.recv_timeout_ms = 30000;

  const core::TrainerReport clean =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);
  ASSERT_FALSE(clean.final_params.empty());
  std::filesystem::remove(path_);

  util::ScopedFaultPlan scope(util::FaultPlan(23).crash_rank(1, 3).crash_rank(3, 7));
  const core::TrainerReport recovered =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);
  EXPECT_EQ(recovered.recovery.restarts, 2);
  EXPECT_EQ(recovered.recovery.shrinks, 0);  // Restart policy: world size is kept
  EXPECT_EQ(recovered.recovery.final_world_size, 4);
  EXPECT_TRUE(recovered.recovery.dead_world_ranks.empty());
  EXPECT_EQ(recovered.recovery.resumed_iteration, 6);  // snapshot before crash at 7
  EXPECT_EQ(recovered.final_params, clean.final_params);
}

// --- elastic shrink (RecoveryPolicy::Shrink) ---------------------------------

TEST_F(RecoveryTest, ShrinkContinuesOnSurvivorsBitwiseEqualToFreshResumedRun) {
  // The elastic capstone: rank 1 of 4 dies at iteration 5 under Shrink. The
  // survivors {0,2,3} rebuild a 3-rank world in a new membership generation,
  // reshard, rescale gradient averaging to 1/3, and resume from the
  // iteration-4 checkpoint. The determinism contract says the result must be
  // bitwise identical to a FRESH 3-rank run resumed from that checkpoint.
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);

  // Reference prefix: a clean 4-rank run up to the checkpoint at iteration 4.
  core::TrainerConfig prefix = base_config();
  prefix.global_batch = 12;  // divisible by 4 and by the 3 survivors
  prefix.iterations = 4;
  core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), prefix);

  // Reference suffix: a fresh 3-rank world resumed from that checkpoint.
  core::TrainerConfig suffix = base_config();
  suffix.global_batch = 12;
  suffix.start_iteration = 4;
  const core::TrainerReport reference =
      core::train_with_recovery(3, backend, dataset.sample_floats(), factory(), suffix);
  ASSERT_FALSE(reference.final_params.empty());
  std::filesystem::remove(path_);

  core::TrainerConfig config = base_config();
  config.global_batch = 12;
  config.recovery = core::RecoveryPolicy::Shrink;
  config.recv_timeout_ms = 30000;
  util::ScopedFaultPlan scope(util::FaultPlan(31).crash_rank(1, 5));
  const core::TrainerReport shrunk =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);

  EXPECT_EQ(shrunk.recovery.restarts, 1);
  EXPECT_EQ(shrunk.recovery.shrinks, 1);
  EXPECT_EQ(shrunk.recovery.final_world_size, 3);
  EXPECT_EQ(shrunk.recovery.dead_world_ranks, (std::vector<int>{1}));
  EXPECT_EQ(shrunk.recovery.resumed_iteration, 4);
  EXPECT_GE(shrunk.recovery.final_generation, 2u);  // at least epoch 1 + rebuild

  ASSERT_EQ(shrunk.final_params.size(), reference.final_params.size());
  EXPECT_EQ(shrunk.final_params, reference.final_params);  // bitwise identity
  EXPECT_EQ(shrunk.root_losses, reference.root_losses);    // iterations 4..9
}

TEST_F(RecoveryTest, ShrinkRederivesDbtSchedulesThroughInstallCollectives) {
  // Chaos leg for the compiled schedule families: train under
  // SCAFFE_COLL_ALGO=dbt while rank 1 of 4 dies mid-run. The survivor world
  // re-enters install_collectives, which must re-derive the double binary
  // tree for 3 ranks (different tree shape, different tag sequences) — and
  // land bitwise identical to a fresh 3-rank DBT run resumed from the same
  // checkpoint.
  const char* saved = std::getenv("SCAFFE_COLL_ALGO");
  const std::string restore = saved != nullptr ? saved : "";
  ::setenv("SCAFFE_COLL_ALGO", "dbt", 1);

  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);

  core::TrainerConfig prefix = base_config();
  prefix.global_batch = 12;
  prefix.iterations = 4;
  core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), prefix);

  core::TrainerConfig suffix = base_config();
  suffix.global_batch = 12;
  suffix.start_iteration = 4;
  const core::TrainerReport reference =
      core::train_with_recovery(3, backend, dataset.sample_floats(), factory(), suffix);
  ASSERT_FALSE(reference.final_params.empty());
  std::filesystem::remove(path_);

  core::TrainerConfig config = base_config();
  config.global_batch = 12;
  config.recovery = core::RecoveryPolicy::Shrink;
  config.recv_timeout_ms = 30000;
  util::ScopedFaultPlan scope(util::FaultPlan(47).crash_rank(1, 5));
  const core::TrainerReport shrunk =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);

  if (saved != nullptr) {
    ::setenv("SCAFFE_COLL_ALGO", restore.c_str(), 1);
  } else {
    ::unsetenv("SCAFFE_COLL_ALGO");
  }

  EXPECT_EQ(shrunk.recovery.shrinks, 1);
  EXPECT_EQ(shrunk.recovery.final_world_size, 3);
  ASSERT_EQ(shrunk.final_params.size(), reference.final_params.size());
  EXPECT_EQ(shrunk.final_params, reference.final_params);  // bitwise identity
}

TEST_F(RecoveryTest, SecondCrashDuringRecoveryShrinksTheSurvivorSetFurther) {
  // Rank 1 dies at iteration 5; while the supervisor is rebuilding, rank 2
  // dies too (FaultPlan::crash_in_recovery). Both deaths land in the same
  // recovery window, so the job continues on {0,3} — and must still match a
  // fresh 2-rank run resumed from the same checkpoint, bitwise.
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);

  core::TrainerConfig prefix = base_config();
  prefix.global_batch = 12;
  prefix.iterations = 4;
  core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), prefix);

  core::TrainerConfig suffix = base_config();
  suffix.global_batch = 12;
  suffix.start_iteration = 4;
  const core::TrainerReport reference =
      core::train_with_recovery(2, backend, dataset.sample_floats(), factory(), suffix);
  ASSERT_FALSE(reference.final_params.empty());
  std::filesystem::remove(path_);

  core::TrainerConfig config = base_config();
  config.global_batch = 12;
  config.recovery = core::RecoveryPolicy::Shrink;
  config.recv_timeout_ms = 30000;
  util::ScopedFaultPlan scope(
      util::FaultPlan(37).crash_rank(1, 5).crash_in_recovery(2, 1));
  const core::TrainerReport shrunk =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);

  EXPECT_EQ(shrunk.recovery.restarts, 1);  // one recovery window absorbed both deaths
  EXPECT_EQ(shrunk.recovery.shrinks, 1);
  EXPECT_EQ(shrunk.recovery.final_world_size, 2);
  EXPECT_EQ(shrunk.recovery.dead_world_ranks, (std::vector<int>{1, 2}));
  EXPECT_EQ(shrunk.recovery.resumed_iteration, 4);
  EXPECT_EQ(shrunk.final_params, reference.final_params);
  EXPECT_EQ(shrunk.root_losses, reference.root_losses);
}

TEST_F(RecoveryTest, FusedBucketsDrainCleanlyThroughShrinkBitwise) {
  // Chaos leg for gradient bucket fusion: rank 1 of 4 dies at iteration 5
  // while SC-OBR is streaming fused buckets (a tiny bucket target forces
  // several in flight). The survivors' bucket reductions must drain into
  // typed timeouts — not hang on a half-reduced bucket — and the shrunk
  // 3-rank continuation must stay bitwise identical to a fresh 3-rank run
  // resumed from the same checkpoint with the same fusion config.
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);

  core::TrainerConfig prefix = base_config();
  prefix.global_batch = 12;
  prefix.iterations = 4;
  prefix.scaffe.variant = core::Variant::SCOBR;
  prefix.scaffe.fusion.enabled = true;
  prefix.scaffe.fusion.bucket_bytes = 128;  // ~32 floats: multiple buckets
  core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), prefix);

  core::TrainerConfig suffix = prefix;
  suffix.iterations = 10;
  suffix.start_iteration = 4;
  const core::TrainerReport reference =
      core::train_with_recovery(3, backend, dataset.sample_floats(), factory(), suffix);
  ASSERT_FALSE(reference.final_params.empty());
  std::filesystem::remove(path_);

  core::TrainerConfig config = prefix;
  config.iterations = 10;
  config.recovery = core::RecoveryPolicy::Shrink;
  config.recv_timeout_ms = 30000;
  util::ScopedFaultPlan scope(util::FaultPlan(43).crash_rank(1, 5));
  const core::TrainerReport shrunk =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);

  EXPECT_EQ(shrunk.recovery.restarts, 1);
  EXPECT_EQ(shrunk.recovery.shrinks, 1);
  EXPECT_EQ(shrunk.recovery.final_world_size, 3);
  EXPECT_EQ(shrunk.recovery.dead_world_ranks, (std::vector<int>{1}));
  EXPECT_EQ(shrunk.recovery.resumed_iteration, 4);
  ASSERT_EQ(shrunk.final_params.size(), reference.final_params.size());
  EXPECT_EQ(shrunk.final_params, reference.final_params);  // bitwise identity
  EXPECT_EQ(shrunk.root_losses, reference.root_losses);
}

TEST_F(RecoveryTest, ShrinkFallsBackToSameSizeRestartWhenBatchIndivisible) {
  // global_batch 16 cannot be divided across 3 survivors under strong
  // scaling, so Shrink falls back to a same-size restart (modelling a node
  // replacement) and the run finishes on all 4 ranks, bitwise clean.
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();  // global_batch = 16: 16 % 3 != 0
  config.recovery = core::RecoveryPolicy::Shrink;
  config.recv_timeout_ms = 30000;

  const core::TrainerReport clean =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);
  std::filesystem::remove(path_);

  util::ScopedFaultPlan scope(util::FaultPlan(41).crash_rank(1, 5));
  const core::TrainerReport recovered =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);
  EXPECT_EQ(recovered.recovery.restarts, 1);
  EXPECT_EQ(recovered.recovery.shrinks, 0);
  EXPECT_EQ(recovered.recovery.final_world_size, 4);
  EXPECT_TRUE(recovered.recovery.dead_world_ranks.empty());
  EXPECT_EQ(recovered.final_params, clean.final_params);
}

// --- backpressure chaos: overload + flow faults under real training -----------

/// Scoped env override for the mailbox budget (read at World construction).
class MailboxBudgetGuard {
 public:
  explicit MailboxBudgetGuard(const char* value) {
    if (const char* old = std::getenv("SCAFFE_MAILBOX_BYTES")) saved_ = old;
    ::setenv("SCAFFE_MAILBOX_BYTES", value, 1);
  }
  ~MailboxBudgetGuard() {
    if (!saved_.empty()) {
      ::setenv("SCAFFE_MAILBOX_BYTES", saved_.c_str(), 1);
    } else {
      ::unsetenv("SCAFFE_MAILBOX_BYTES");
    }
  }

 private:
  std::string saved_;
};

TEST(MessageFaults, OverloadedMailboxesDoNotChangeTrainingResults) {
  // The backpressure chaos leg: a starvation-tight 4 KiB mailbox budget plus
  // slow-receiver stalls, injected credit denials, and delayed CTS
  // notifications. Every sender repeatedly blocks for credit and every flow
  // fault fires — yet matching is by key, so the trained parameters must be
  // bitwise identical to the fault-free, unbounded run.
  auto run_once = [] {
    data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
    data::ImageDataBackend backend(dataset);
    core::TrainerConfig config;
    config.iterations = 4;
    config.global_batch = 8;
    config.scaffe.variant = core::Variant::SCOB;
    config.recv_timeout_ms = 30000;  // backstop: fail typed, never hang
    return core::train_with_recovery(
        2, backend, dataset.sample_floats(),
        [](int batch) { return models::mlp_netspec(batch, 6, 8, 3); }, config);
  };

  const core::TrainerReport clean = run_once();
  ASSERT_FALSE(clean.final_params.empty());

  MailboxBudgetGuard budget("4K");
  util::ScopedFaultPlan scope(util::FaultPlan(23)
                                  .stall_receiver(0, std::chrono::microseconds(300), 40)
                                  .stall_receiver(1, std::chrono::microseconds(300), 40)
                                  .starve_credits(0, 12)
                                  .starve_credits(1, 12)
                                  .delay_cts(0, std::chrono::microseconds(200), 12)
                                  .delay_cts(1, std::chrono::microseconds(200), 12));
  const core::TrainerReport overloaded = run_once();

  const util::FaultStats stats = util::FaultInjector::instance().stats();
  EXPECT_GT(stats.recv_stalls, 0u);
  EXPECT_GT(stats.credit_denials, 0u);

  ASSERT_EQ(overloaded.final_params.size(), clean.final_params.size());
  EXPECT_EQ(overloaded.final_params, clean.final_params);  // bitwise identity
  EXPECT_EQ(overloaded.root_losses, clean.root_losses);
}

TEST_F(RecoveryTest, ShrinkUnderTightMailboxBudgetStaysBitwise) {
  // Elastic shrink with flow control squeezed to 4 KiB per link: the crashed
  // epoch strands queued mail that holds nearly the whole window, so the
  // survivor generation only makes progress if begin_generation's purge
  // returns that credit. A leak here shows up as a 30 s TimeoutError, a
  // correctness bug as a bitwise mismatch against the fresh-resume reference.
  MailboxBudgetGuard budget("4K");
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);

  core::TrainerConfig prefix = base_config();
  prefix.global_batch = 12;
  prefix.iterations = 4;
  core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), prefix);

  core::TrainerConfig suffix = base_config();
  suffix.global_batch = 12;
  suffix.start_iteration = 4;
  const core::TrainerReport reference =
      core::train_with_recovery(3, backend, dataset.sample_floats(), factory(), suffix);
  ASSERT_FALSE(reference.final_params.empty());
  std::filesystem::remove(path_);

  core::TrainerConfig config = base_config();
  config.global_batch = 12;
  config.recovery = core::RecoveryPolicy::Shrink;
  config.recv_timeout_ms = 30000;
  util::ScopedFaultPlan scope(util::FaultPlan(53)
                                  .crash_rank(1, 5)
                                  .stall_receiver(0, std::chrono::microseconds(200), 30)
                                  .starve_credits(0, 8));
  const core::TrainerReport shrunk =
      core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), config);

  EXPECT_EQ(shrunk.recovery.shrinks, 1);
  EXPECT_EQ(shrunk.recovery.final_world_size, 3);
  ASSERT_EQ(shrunk.final_params.size(), reference.final_params.size());
  EXPECT_EQ(shrunk.final_params, reference.final_params);  // bitwise identity
  EXPECT_EQ(shrunk.root_losses, reference.root_losses);
}

// --- heartbeat health plane under training ------------------------------------

TEST(DetectionLatency, HeartbeatSuspicionBeatsRecvTimeoutDetection) {
  // Acceptance: the health plane flags a dead rank in O(heartbeat interval)
  // while the recv-timeout path must wait out its full deadline. Same silent
  // death (rank 1 deserts), two detection arms, >= 5x apart.
  mpi::Runtime runtime(4);

  // Arm 1: heartbeat suspicion (10ms interval x 4 misses = 40ms threshold).
  const auto hb_start = std::chrono::steady_clock::now();
  try {
    runtime.run([](mpi::Comm& comm) {
      if (comm.rank() == 1) return;  // silent death
      mpi::HealthConfig config;
      config.interval = std::chrono::milliseconds(10);
      config.miss_limit = 4;
      mpi::HealthMonitor monitor(comm, config);
      for (int i = 0; i < 5000; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        monitor.poll();
      }
      FAIL() << "deserter never suspected";
    });
    FAIL() << "expected SuspectError";
  } catch (const mpi::SuspectError& error) {
    EXPECT_EQ(error.rank(), 1);
  }
  const double heartbeat_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - hb_start)
                                  .count();

  // Arm 2: the same desertion detected only by the receive deadline.
  runtime.set_recv_timeout(2000ms);
  const auto to_start = std::chrono::steady_clock::now();
  try {
    runtime.run([](mpi::Comm& comm) {
      if (comm.rank() == 1) return;  // silent death
      std::vector<float> buffer(1);
      comm.recv<float>(buffer, 1, 7);  // blocked on the dead rank
    });
    FAIL() << "expected TimeoutError";
  } catch (const mpi::TimeoutError& error) {
    EXPECT_EQ(error.deadline(), 2000ms);
  }
  const double timeout_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - to_start)
                                .count();

  EXPECT_GE(timeout_ms, 5.0 * heartbeat_ms)
      << "heartbeat detection took " << heartbeat_ms << "ms vs recv-timeout "
      << timeout_ms << "ms";
}

TEST_F(RecoveryTest, HeartbeatCensoredRankIsSuspectedAndShrunkOut) {
  // A rank whose heartbeats are censored (wedged NIC: compute fine, health
  // plane dark) must be suspected, surfaced as the typed SuspectError, and
  // removed by Shrink — then the survivor world completes with its own
  // monitors running clean.
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.global_batch = 12;  // divisible by 4 and by the 3 survivors
  config.recovery = core::RecoveryPolicy::Shrink;
  config.recv_timeout_ms = 30000;
  config.health_monitor = true;
  mpi::HealthConfig health;
  health.interval = std::chrono::milliseconds(10);
  health.miss_limit = 5;  // 50ms of silence confirms
  health.straggler_factor = 1000;
  config.health = health;

  // Every rank's steps are slowed so the run outlives the suspicion
  // threshold; rank 1's heartbeats are dropped outright.
  util::ScopedFaultPlan scope(util::FaultPlan(61)
                                  .heartbeat_drop(1, 1000000)
                                  .slow_rank(0, std::chrono::microseconds(20000), 100)
                                  .slow_rank(1, std::chrono::microseconds(20000), 100)
                                  .slow_rank(2, std::chrono::microseconds(20000), 100)
                                  .slow_rank(3, std::chrono::microseconds(20000), 100));
  const core::TrainerReport report = core::train_with_recovery(
      4, backend, dataset.sample_floats(), factory(), config);

  EXPECT_GE(report.recovery.suspicions, 1);
  EXPECT_EQ(report.recovery.shrinks, 1);
  EXPECT_EQ(report.recovery.dead_world_ranks, (std::vector<int>{1}));
  EXPECT_EQ(report.recovery.final_world_size, 3);
  EXPECT_FALSE(report.final_params.empty());
  EXPECT_GT(util::FaultInjector::instance().stats().heartbeat_drops, 0u);
}

TEST_F(RecoveryTest, StragglerIsFlaggedInReportWithoutAborting) {
  // Acceptance: a slow-but-alive rank is reported, never evicted. Rank 1
  // stalls 20ms per step; its heartbeat-carried compute EWMA crosses
  // straggler_factor x the world median and the root's TrainerReport names
  // it — with zero restarts and the full world intact.
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.snapshot_every = 0;  // healthy run; no checkpoints needed
  // Pure-local gradient timing (no propagation wait folded in): the
  // straggler signal must separate the slow rank from its waiting peers.
  config.scaffe.aggregation = core::Aggregation::AllreduceSgd;
  config.health_monitor = true;
  mpi::HealthConfig health;
  health.interval = std::chrono::milliseconds(5);
  health.miss_limit = 1000;  // never suspect in this healthy-but-slow run
  health.straggler_factor = 3;
  config.health = health;

  util::ScopedFaultPlan scope(
      util::FaultPlan(67).slow_rank(1, std::chrono::microseconds(20000), 100));
  const core::TrainerReport report = core::train_with_recovery(
      4, backend, dataset.sample_floats(), factory(), config);

  EXPECT_EQ(report.recovery.restarts, 0);
  EXPECT_EQ(report.recovery.suspicions, 0);
  EXPECT_EQ(report.recovery.final_world_size, 4);
  EXPECT_EQ(report.health.suspected_world_rank, -1);
  EXPECT_NE(std::find(report.health.straggler_world_ranks.begin(),
                      report.health.straggler_world_ranks.end(), 1),
            report.health.straggler_world_ranks.end())
      << "the 20ms/step rank was not flagged";
  EXPECT_GT(report.health.heartbeats_received, 0u);
  EXPECT_GT(util::FaultInjector::instance().stats().slow_steps, 0u);
}

// --- elastic rejoin (RecoveryPolicy::Rejoin) ----------------------------------

TEST_F(RecoveryTest, RejoinHealsToFullWorldBitwiseAtOneAndEightThreads) {
  // The rejoin capstone: rank 1 of 4 dies at iteration 5 under Rejoin. The
  // survivors {0,2,3} resume from the iteration-4 checkpoint but run only to
  // the next boundary (6); there the full 4-rank world relaunches under a
  // fresh generation, rank 0 bcasts the boundary checkpoint (iteration +
  // params + momentum) to everyone, and the healed world finishes [6,10).
  // The result must be bitwise identical — final params AND momentum — to
  // an uninterrupted sequence of fresh runs resumed from the same
  // checkpoints, and invariant to the compute-thread count.
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);

  for (const int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    util::ThreadPool::set_global_threads(threads);
    std::filesystem::remove(path_);

    // Reference prefix: a clean 4-rank run to the checkpoint at iteration 4.
    core::TrainerConfig prefix = base_config();
    prefix.global_batch = 12;
    prefix.iterations = 4;
    core::train_with_recovery(4, backend, dataset.sample_floats(), factory(), prefix);

    // Reference middle: a fresh 3-rank world running exactly [4, 6).
    core::TrainerConfig middle = base_config();
    middle.global_batch = 12;
    middle.iterations = 6;
    middle.start_iteration = 4;
    core::train_with_recovery(3, backend, dataset.sample_floats(), factory(), middle);

    // Reference tail: a fresh full-size world resumed from the boundary.
    core::TrainerConfig tail = base_config();
    tail.global_batch = 12;
    tail.start_iteration = 6;
    const core::TrainerReport reference = core::train_with_recovery(
        4, backend, dataset.sample_floats(), factory(), tail);
    ASSERT_FALSE(reference.final_params.empty());
    ASSERT_FALSE(reference.final_state.empty());
    std::filesystem::remove(path_);

    core::TrainerConfig config = base_config();
    config.global_batch = 12;
    config.recovery = core::RecoveryPolicy::Rejoin;
    config.recv_timeout_ms = 30000;
    util::ScopedFaultPlan scope(util::FaultPlan(31).crash_rank(1, 5));
    const core::TrainerReport healed = core::train_with_recovery(
        4, backend, dataset.sample_floats(), factory(), config);

    EXPECT_EQ(healed.recovery.restarts, 1);
    EXPECT_EQ(healed.recovery.shrinks, 1);
    EXPECT_EQ(healed.recovery.rejoins, 1);
    EXPECT_EQ(healed.recovery.dead_world_ranks, (std::vector<int>{1}));
    EXPECT_EQ(healed.recovery.rejoined_world_ranks, (std::vector<int>{1}));
    EXPECT_EQ(healed.recovery.final_world_size, 4);
    EXPECT_EQ(healed.recovery.resumed_iteration, 6);
    EXPECT_GE(healed.recovery.final_generation, 3u);  // crash + shrink + heal

    // Bitwise acceptance: parameters AND momentum of the healed run equal
    // the uninterrupted reference resumed from the same checkpoint.
    ASSERT_EQ(healed.final_params.size(), reference.final_params.size());
    EXPECT_EQ(healed.final_params, reference.final_params);
    ASSERT_EQ(healed.final_state.size(), reference.final_state.size());
    EXPECT_EQ(healed.final_state, reference.final_state);
    EXPECT_EQ(healed.root_losses, reference.root_losses);  // iterations 6..9
  }
  util::ThreadPool::set_global_threads(1);  // leave the pool serial for later tests
}

TEST_F(RecoveryTest, RejoinFallsBackToShrinkSemanticsWithoutCheckpoints) {
  // With snapshots disabled there is no boundary to heal at: Rejoin must
  // degrade gracefully to Shrink behaviour (survivors run to completion).
  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.global_batch = 12;
  config.snapshot_every = 0;
  config.snapshot_path.clear();
  config.recovery = core::RecoveryPolicy::Rejoin;
  config.recv_timeout_ms = 30000;

  util::ScopedFaultPlan scope(util::FaultPlan(71).crash_rank(1, 5));
  const core::TrainerReport report = core::train_with_recovery(
      4, backend, dataset.sample_floats(), factory(), config);
  EXPECT_EQ(report.recovery.shrinks, 1);
  EXPECT_EQ(report.recovery.rejoins, 0);
  EXPECT_EQ(report.recovery.final_world_size, 3);
  EXPECT_EQ(report.recovery.resumed_iteration, 0);  // no checkpoint to resume
  EXPECT_FALSE(report.final_params.empty());
}

// --- eager payload integrity under training -----------------------------------

/// Scoped env override (tests run serially within a binary).
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~EnvVarGuard() {
    if (!saved_.empty()) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
};

TEST_F(RecoveryTest, CorruptedEagerPayloadIsRejectedAndRecoveredBitwise) {
  // Chaos pairing for SCAFFE_MSG_CRC: corrupt_payload flips one byte of the
  // first queued 0->1 message. With the CRC plane on, the receiver rejects
  // it with a typed IntegrityError — the poisoned gradient state is never
  // delivered — recovery restarts, and the final parameters are bitwise the
  // fault-free run's. Legacy transport pins every message to the queued
  // path so the corruption (and its detection) is deterministic.
  EnvVarGuard transport("SCAFFE_TRANSPORT", "legacy");
  EnvVarGuard crc("SCAFFE_MSG_CRC", "1");

  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.iterations = 6;
  config.recv_timeout_ms = 30000;

  const core::TrainerReport clean = core::train_with_recovery(
      2, backend, dataset.sample_floats(), factory(), config);
  ASSERT_FALSE(clean.final_params.empty());
  std::filesystem::remove(path_);

  util::ScopedFaultPlan scope(util::FaultPlan(73).corrupt_payload(0, 1, 1));
  const core::TrainerReport recovered = core::train_with_recovery(
      2, backend, dataset.sample_floats(), factory(), config);

  EXPECT_EQ(recovered.recovery.restarts, 1);
  EXPECT_EQ(recovered.recovery.timeouts, 1);  // IntegrityError counts here
  EXPECT_EQ(util::FaultInjector::instance().stats().corruptions, 1u);
  EXPECT_EQ(recovered.final_params, clean.final_params);  // poison never landed
  EXPECT_EQ(recovered.root_losses, clean.root_losses);
}

TEST_F(RecoveryTest, CorruptedRendezvousClaimIsRejectedAndRecoveredBitwise) {
  // Same chaos pairing, other delivery path: SCAFFE_EAGER_LIMIT=0 pins every
  // message to the rendezvous/posted-claim path, where the sender fills the
  // receiver's claimed buffer directly. The CRC plane re-checksums the filled
  // destination, so the flip still surfaces as a typed IntegrityError, the
  // supervisor restarts from the checkpoint, and the final parameters are
  // bitwise the fault-free run's — claim fills are inside CRC coverage too.
  EnvVarGuard eager("SCAFFE_EAGER_LIMIT", "0");
  EnvVarGuard crc("SCAFFE_MSG_CRC", "1");

  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.iterations = 6;
  config.recv_timeout_ms = 30000;

  const core::TrainerReport clean = core::train_with_recovery(
      2, backend, dataset.sample_floats(), factory(), config);
  ASSERT_FALSE(clean.final_params.empty());
  std::filesystem::remove(path_);

  util::ScopedFaultPlan scope(util::FaultPlan(73).corrupt_payload(0, 1, 1));
  const core::TrainerReport recovered = core::train_with_recovery(
      2, backend, dataset.sample_floats(), factory(), config);

  EXPECT_EQ(recovered.recovery.restarts, 1);
  EXPECT_EQ(recovered.recovery.timeouts, 1);  // IntegrityError counts here
  EXPECT_EQ(util::FaultInjector::instance().stats().corruptions, 1u);
  EXPECT_EQ(recovered.final_params, clean.final_params);  // poison never landed
  EXPECT_EQ(recovered.root_losses, clean.root_losses);
}

// --- randomized-but-logged chaos soak ------------------------------------------

TEST_F(RecoveryTest, ChaosSoakSeedFromEnv) {
  // Nightly soak entry point (scripts/soak.sh): the fault schedule derives
  // from SCAFFE_SOAK_SEED — randomized per soak run but printed, so any
  // failure replays exactly. For EVERY seed the chaos run must land bitwise
  // on the fault-free parameters.
  unsigned seed = 2017;
  if (const char* env = std::getenv("SCAFFE_SOAK_SEED")) {
    seed = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  std::printf("SCAFFE_SOAK_SEED=%u\n", seed);

  const int victim = 1 + static_cast<int>(seed % 3u);      // rank 1..3
  const int crash_iter = 2 + static_cast<int>(seed % 6u);  // iteration 2..7
  std::printf("soak schedule: crash rank %d at iteration %d\n", victim, crash_iter);

  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);
  core::TrainerConfig config = base_config();
  config.recv_timeout_ms = 30000;

  const core::TrainerReport clean = core::train_with_recovery(
      4, backend, dataset.sample_floats(), factory(), config);
  ASSERT_FALSE(clean.final_params.empty());
  std::filesystem::remove(path_);

  util::ScopedFaultPlan scope(
      util::FaultPlan(seed)
          .delay_messages(0.05, std::chrono::microseconds(300))
          .crash_rank(victim, crash_iter));
  const core::TrainerReport chaotic = core::train_with_recovery(
      4, backend, dataset.sample_floats(), factory(), config);

  EXPECT_EQ(chaotic.recovery.restarts, 1);
  EXPECT_EQ(chaotic.final_params, clean.final_params);
  EXPECT_EQ(chaotic.iterations, clean.iterations);
}

}  // namespace
}  // namespace scaffe
