#include <gtest/gtest.h>

#include <cmath>

#include "dl/gradient_check.h"
#include "dl/net.h"
#include "dl/solver.h"
#include "models/zoo.h"
#include "util/rng.h"

namespace scaffe::dl {
namespace {

/// Fills input blobs with deterministic pseudo-random data and labels.
void load_random_batch(Net& net, std::uint64_t seed, int classes) {
  util::Rng rng(seed);
  Blob& data = net.blob("data");
  for (float& v : data.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  Blob& label = net.blob("label");
  for (float& v : label.data()) v = static_cast<float>(rng.below(static_cast<std::uint64_t>(classes)));
}

TEST(Blob, ReshapeAndCount) {
  Blob blob({2, 3, 4});
  EXPECT_EQ(blob.count(), 24u);
  EXPECT_EQ(blob.num(), 2);
  EXPECT_EQ(blob.shape(1), 3);
  EXPECT_EQ(blob.shape_string(), "(2,3,4)");
  blob.reshape({5});
  EXPECT_EQ(blob.count(), 5u);
}

TEST(Blob, DiffIndependentOfData) {
  Blob blob({4});
  blob.data()[0] = 1.0f;
  blob.diff()[0] = 2.0f;
  blob.zero_diff();
  EXPECT_EQ(blob.data()[0], 1.0f);
  EXPECT_EQ(blob.diff()[0], 0.0f);
}

TEST(Net, BuildsAndShapesCifarQuick) {
  Net net(models::cifar10_quick_netspec(2));
  EXPECT_EQ(net.blob("conv1").shape(), (std::vector<int>{2, 32, 32, 32}));
  EXPECT_EQ(net.blob("pool1").shape(), (std::vector<int>{2, 32, 16, 16}));
  EXPECT_EQ(net.blob("ip2").shape(), (std::vector<int>{2, 10}));
  // Parameter count matches the published cifar10_quick definition.
  EXPECT_EQ(net.param_count(), 145578u);
}

TEST(Net, LayerParamRangesPartitionTheFlattenedVector) {
  Net net(models::cifar10_quick_netspec(1));
  const auto& ranges = net.layer_param_ranges();
  ASSERT_EQ(ranges.size(), net.num_layers());
  std::size_t expect_offset = 0;
  for (const auto& [offset, count] : ranges) {
    EXPECT_EQ(offset, expect_offset);
    expect_offset += count;
  }
  EXPECT_EQ(expect_offset, net.param_count());
}

TEST(Net, DeterministicInitialization) {
  Net a(models::cifar10_quick_netspec(1), 7);
  Net b(models::cifar10_quick_netspec(1), 7);
  std::vector<float> pa(a.param_count());
  std::vector<float> pb(b.param_count());
  a.flatten_params(pa);
  b.flatten_params(pb);
  EXPECT_EQ(pa, pb);

  Net c(models::cifar10_quick_netspec(1), 8);
  std::vector<float> pc(c.param_count());
  c.flatten_params(pc);
  EXPECT_NE(pa, pc);
}

TEST(Net, FlattenUnflattenRoundTrip) {
  Net net(models::mlp_netspec(2, 8, 16, 4));
  std::vector<float> params(net.param_count());
  net.flatten_params(params);
  std::vector<float> modified = params;
  for (float& v : modified) v += 1.0f;
  net.unflatten_params(modified);
  std::vector<float> check(net.param_count());
  net.flatten_params(check);
  EXPECT_EQ(check, modified);
}

TEST(Net, RejectsUnknownBottom) {
  NetSpec spec;
  spec.name = "bad";
  spec.inputs = {{"data", {1, 4}}, {"label", {1}}};
  spec.layers = {LayerSpec::inner_product("fc", "nonexistent", "fc", 2)};
  EXPECT_THROW(Net net(std::move(spec)), std::runtime_error);
}

TEST(Net, RejectsMultiConsumerWithoutSplit) {
  NetSpec spec;
  spec.name = "bad";
  spec.inputs = {{"data", {1, 4}}, {"label", {1}}};
  spec.layers = {LayerSpec::inner_product("fc1", "data", "fc1", 2),
                 LayerSpec::inner_product("fc2", "data", "fc2", 2)};
  EXPECT_THROW(Net net(std::move(spec)), std::runtime_error);
}

TEST(Net, ChargesDeviceMemoryAndFaults) {
  gpu::Device big(0, std::size_t{1} * util::kGiB);
  Net net(models::cifar10_quick_netspec(8), 1, &big);
  EXPECT_GT(net.charged_bytes(), 0u);
  EXPECT_EQ(big.allocated(), net.charged_bytes());

  gpu::Device tiny(1, 1 * util::kMiB);
  EXPECT_THROW(Net(models::cifar10_quick_netspec(8), 1, &tiny), gpu::OutOfMemoryError);
  EXPECT_EQ(tiny.allocated(), 0u);
}

TEST(Net, ForwardProducesFiniteLossAtChanceLevel) {
  Net net(models::cifar10_quick_netspec(4));
  load_random_batch(net, 3, 10);
  const float loss = net.forward();
  EXPECT_TRUE(std::isfinite(loss));
  // Untrained 10-way classifier: loss should sit within a few nats of
  // chance (ln 10 = 2.3); MSRA-initialized logits inflate it somewhat.
  EXPECT_GT(loss, 1.0f);
  EXPECT_LT(loss, 12.0f);
}

// --- gradient checks ---------------------------------------------------------
//
// Layer families are checked in shallow stacks (Caffe's own methodology):
// deep float32 stacks accumulate ReLU/max-pool kink crossings that break
// finite differences without indicating a gradient bug.

NetSpec shallow(std::vector<LayerSpec> layers, std::vector<int> data_shape) {
  NetSpec spec;
  spec.name = "shallow";
  spec.inputs = {{"data", std::move(data_shape)}, {"label", {2}}};
  const std::string last_top = layers.back().tops[0];
  layers.push_back(LayerSpec::softmax_loss("loss", last_top, "label", "loss"));
  spec.layers = std::move(layers);
  return spec;
}

GradientCheckResult checked(NetSpec spec, int classes = 4, std::uint64_t seed = 11) {
  Net net(std::move(spec), seed);
  net.set_iteration(0);
  load_random_batch(net, seed + 1, classes);
  // Floor of 2e-3: gradients below it sit at the float32 loss-difference
  // noise floor and are compared absolutely.
  GradientCheckResult params = check_gradients(net, 1e-2, 5e-2, 2e-3);
  if (!params.ok) return params;
  return check_input_gradients(net, "data", 1e-2, 5e-2, 2e-3);
}

TEST(GradientCheck, Mlp) {
  Net net(models::mlp_netspec(3, 6, 10, 4), 11);
  load_random_batch(net, 5, 4);
  const auto result = check_gradients(net, 1e-2, 5e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GradientCheck, MlpInputGradient) {
  Net net(models::mlp_netspec(3, 6, 10, 4), 11);
  load_random_batch(net, 5, 4);
  const auto result = check_input_gradients(net, "data", 1e-2, 5e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GradientCheck, Convolution) {
  const auto r = checked(shallow({LayerSpec::conv("c", "data", "c", 4, 3, 1, 1)}, {2, 3, 8, 8}));
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GradientCheck, ConvolutionStrided) {
  const auto r = checked(shallow({LayerSpec::conv("c", "data", "c", 4, 3, 2, 0)}, {2, 3, 9, 9}));
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GradientCheck, ConvMaxPool) {
  const auto r = checked(shallow({LayerSpec::conv("c", "data", "c", 4, 3, 1, 1),
                                  LayerSpec::pool("p", "c", "p", 2, 2, PoolMethod::Max)},
                                 {2, 3, 8, 8}));
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GradientCheck, ConvAvePool) {
  const auto r = checked(shallow({LayerSpec::conv("c", "data", "c", 4, 3, 1, 1),
                                  LayerSpec::pool("p", "c", "p", 3, 2, PoolMethod::Ave)},
                                 {2, 3, 8, 8}));
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GradientCheck, Relu) {
  const auto r = checked(shallow({LayerSpec::inner_product("f", "data", "f", 6),
                                  LayerSpec::relu("r", "f", "r")},
                                 {2, 8}));
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GradientCheck, Lrn) {
  const auto r = checked(shallow({LayerSpec::conv("c", "data", "c", 6, 3, 1, 1),
                                  LayerSpec::lrn("n", "c", "n")},
                                 {2, 3, 6, 6}));
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GradientCheck, Dropout) {
  // Dropout's mask is deterministic per iteration, so central differences
  // stay consistent across probes.
  const auto r = checked(shallow({LayerSpec::inner_product("f", "data", "f", 8),
                                  LayerSpec::dropout("d", "f", "d", 0.5f)},
                                 {2, 8}));
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GradientCheck, SplitConcat) {
  const auto r = checked(shallow({LayerSpec::split("sp", "data", {"a", "b"}),
                                  LayerSpec::inner_product("f1", "a", "f1", 4),
                                  LayerSpec::inner_product("f2", "b", "f2", 4),
                                  LayerSpec::concat("cc", {"f1", "f2"}, "cc")},
                                 {2, 8}));
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GradientCheck, SoftmaxIntermediate) {
  const auto r = checked(shallow({LayerSpec::inner_product("f", "data", "f", 6),
                                  LayerSpec::softmax("sm", "f", "sm"),
                                  LayerSpec::inner_product("g", "sm", "g", 4)},
                                 {2, 8}));
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GradientCheck, TinyInceptionConcatSplit) {
  // The full DAG at modest depth: uses a coarser tolerance because the pool
  // branch introduces kinks.
  Net net(models::tiny_inception_netspec(2), 19);
  load_random_batch(net, 11, 10);
  const auto result = check_gradients(net, 1e-2, 0.12, 2e-3);
  EXPECT_TRUE(result.ok) << result.detail;
}

// --- solver -----------------------------------------------------------------

TEST(Solver, LossDecreasesOnFixedBatch) {
  SolverConfig config;
  config.base_lr = 0.05f;
  config.momentum = 0.9f;
  SgdSolver solver(models::mlp_netspec(16, 8, 32, 4), config);

  util::Rng rng(31);
  std::vector<float> data(16 * 8);
  std::vector<float> labels(16);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<float>(rng.below(4));

  const float initial = solver.step(data, labels);
  solver.apply_update();
  float final_loss = initial;
  for (int it = 0; it < 60; ++it) {
    final_loss = solver.step(data, labels);
    solver.apply_update();
  }
  EXPECT_LT(final_loss, 0.5f * initial);
}

TEST(Solver, CifarQuickOverfitsTinySet) {
  SolverConfig config;
  config.base_lr = 0.01f;
  config.momentum = 0.9f;
  SgdSolver solver(models::cifar10_quick_netspec(4), config);

  util::Rng rng(37);
  std::vector<float> data(4 * 3 * 32 * 32);
  std::vector<float> labels(4);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<float>(i % 4);

  const float initial = solver.step(data, labels);
  solver.apply_update();
  float final_loss = initial;
  for (int it = 0; it < 30; ++it) {
    final_loss = solver.step(data, labels);
    solver.apply_update();
  }
  EXPECT_LT(final_loss, initial);
}

TEST(Solver, StepLrPolicyDecays) {
  SolverConfig config;
  config.base_lr = 0.1f;
  config.lr_policy = SolverConfig::LrPolicy::Step;
  config.gamma = 0.5f;
  config.step_size = 2;
  SgdSolver solver(models::mlp_netspec(2, 4, 4, 2), config);
  EXPECT_FLOAT_EQ(solver.learning_rate(), 0.1f);

  std::vector<float> data(2 * 4, 0.1f);
  std::vector<float> labels(2, 0.0f);
  for (int i = 0; i < 2; ++i) {
    solver.step(data, labels);
    solver.apply_update();
  }
  EXPECT_FLOAT_EQ(solver.learning_rate(), 0.05f);
}

TEST(Solver, WeightDecayShrinksParams) {
  SolverConfig config;
  config.base_lr = 0.1f;
  config.momentum = 0.0f;
  config.weight_decay = 0.1f;
  SgdSolver solver(models::mlp_netspec(2, 4, 4, 2), config);

  // With zero gradients, decay alone must shrink the parameter norm.
  solver.net().zero_param_diffs();
  std::vector<float> before(solver.net().param_count());
  solver.net().flatten_params(before);
  solver.apply_update();
  std::vector<float> after(solver.net().param_count());
  solver.net().flatten_params(after);

  double norm_before = 0.0;
  double norm_after = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    norm_before += static_cast<double>(before[i]) * before[i];
    norm_after += static_cast<double>(after[i]) * after[i];
  }
  EXPECT_LT(norm_after, norm_before);
}

TEST(Solver, BatchSizeMismatchThrows) {
  SgdSolver solver(models::mlp_netspec(2, 4, 4, 2), SolverConfig{});
  std::vector<float> wrong(3);
  std::vector<float> labels(2);
  EXPECT_THROW(solver.step(wrong, labels), std::runtime_error);
}

// --- data-parallel equivalence: the property S-Caffe training relies on -----

TEST(DataParallel, SummedShardGradientsEqualFullBatchGradient) {
  // Two replicas with identical seeds each process half the batch; the sum
  // of their diffs (scaled by 1/2) must equal the full-batch diffs.
  const int full_batch = 8;
  const int shard = 4;
  const int in_dim = 6;
  const int classes = 3;

  util::Rng rng(41);
  std::vector<float> data(static_cast<std::size_t>(full_batch * in_dim));
  std::vector<float> labels(static_cast<std::size_t>(full_batch));
  for (auto& v : data) v = static_cast<float>(rng.normal());
  for (auto& v : labels) v = static_cast<float>(rng.below(classes));

  SgdSolver reference(models::mlp_netspec(full_batch, in_dim, 8, classes), SolverConfig{});
  reference.step(data, labels);
  std::vector<float> full_grad(reference.net().param_count());
  reference.net().flatten_diffs(full_grad);

  std::vector<float> summed(reference.net().param_count(), 0.0f);
  for (int replica = 0; replica < 2; ++replica) {
    SgdSolver solver(models::mlp_netspec(shard, in_dim, 8, classes), SolverConfig{});
    const std::size_t offset = static_cast<std::size_t>(replica * shard);
    solver.step(std::span<const float>(data).subspan(offset * in_dim,
                                                     static_cast<std::size_t>(shard * in_dim)),
                std::span<const float>(labels).subspan(offset, static_cast<std::size_t>(shard)));
    std::vector<float> grad(solver.net().param_count());
    solver.net().flatten_diffs(grad);
    for (std::size_t i = 0; i < summed.size(); ++i) summed[i] += 0.5f * grad[i];
  }

  for (std::size_t i = 0; i < full_grad.size(); ++i) {
    EXPECT_NEAR(summed[i], full_grad[i], 1e-5f) << "param " << i;
  }
}

}  // namespace
}  // namespace scaffe::dl
