#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>
#include <string>

#include "coll/algorithms.h"
#include "coll/dbt.h"
#include "coll/extensions.h"
#include "coll/logical_executor.h"
#include "coll/schedule_graph.h"
#include "coll/sim_executor.h"
#include "coll/thread_executor.h"
#include "coll/topo_ring.h"
#include "coll/tuner.h"
#include "core/bucket_planner.h"
#include "core/coll_select.h"
#include "core/distributed_solver.h"
#include "models/zoo.h"
#include "net/cluster.h"
#include "net/topology.h"
#include "util/bytes.h"
#include "util/thread_pool.h"

namespace scaffe::coll {
namespace {

using util::kMiB;

struct KnomialCase {
  int nranks;
  int radix;
};

class KnomialSweep : public ::testing::TestWithParam<KnomialCase> {};

TEST_P(KnomialSweep, ReduceCorrect) {
  const auto& c = GetParam();
  EXPECT_EQ(check_semantics(knomial_reduce(c.nranks, 0, 100, c.radix)), "");
}

TEST_P(KnomialSweep, ReduceNonzeroRootCorrect) {
  const auto& c = GetParam();
  EXPECT_EQ(check_semantics(knomial_reduce(c.nranks, c.nranks / 2, 64, c.radix)), "");
}

TEST_P(KnomialSweep, BcastCorrect) {
  const auto& c = GetParam();
  EXPECT_EQ(check_semantics(knomial_bcast(c.nranks, 0, 100, c.radix)), "");
  EXPECT_EQ(check_semantics(knomial_bcast(c.nranks, c.nranks - 1, 50, c.radix)), "");
}

INSTANTIATE_TEST_SUITE_P(Shapes, KnomialSweep,
                         ::testing::Values(KnomialCase{1, 2}, KnomialCase{2, 2},
                                           KnomialCase{7, 2}, KnomialCase{8, 4},
                                           KnomialCase{9, 3}, KnomialCase{16, 4},
                                           KnomialCase{27, 3}, KnomialCase{30, 4},
                                           KnomialCase{64, 8}, KnomialCase{100, 5}));

TEST(Knomial, Radix2MatchesBinomialStructure) {
  // Radix-2 k-nomial is the binomial tree: same op multiset.
  const Schedule knomial = knomial_reduce(16, 0, 32, 2);
  const Schedule binomial = binomial_reduce(16, 0, 32);
  EXPECT_EQ(knomial.total_ops(), binomial.total_ops());
  EXPECT_EQ(knomial.total_bytes_sent(), binomial.total_bytes_sent());
}

TEST(Knomial, HigherRadixFewerRounds) {
  // Radix 4 at P=64: 3 rounds instead of 6 — the root receives more messages
  // but the tree is shallower; at small message sizes latency dominates and
  // fewer rounds should not be slower in the DES.
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const auto r2 = simulate_schedule(knomial_reduce(64, 0, 16, 2), cluster,
                                    ExecPolicy::hr_gdr());
  const auto r4 = simulate_schedule(knomial_reduce(64, 0, 16, 4), cluster,
                                    ExecPolicy::hr_gdr());
  EXPECT_GT(r2.root_finish, 0);
  EXPECT_GT(r4.root_finish, 0);
}

class ThreeLevelSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ThreeLevelSweep, Correct) {
  const auto [nranks, chain, mid] = GetParam();
  const Schedule schedule = three_level_reduce(nranks, 256, chain, mid, 4);
  EXPECT_EQ(check_semantics(schedule), "") << schedule.name;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ThreeLevelSweep,
                         ::testing::Values(std::tuple{1, 4, 4}, std::tuple{8, 2, 2},
                                           std::tuple{16, 4, 2}, std::tuple{32, 4, 4},
                                           std::tuple{60, 4, 4}, std::tuple{64, 8, 4},
                                           std::tuple{160, 16, 5}, std::tuple{100, 8, 3}));

TEST(ThreeLevel, PaperFutureWorkWinsAtVeryLargeScale) {
  // Section 5: "chain-of-chain combined with a top level binomial for very
  // large scale reductions". At 160 ranks and 256MB the three-level design
  // should be competitive with (here: beat) the flat binomial.
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 64 * kMiB;  // 256 MB of floats
  const auto three = simulate_schedule(three_level_reduce(160, count, 16, 5, 16), cluster,
                                       ExecPolicy::hr_gdr());
  const auto flat = simulate_schedule(binomial_reduce(160, 0, count), cluster,
                                      ExecPolicy::hr_gdr());
  EXPECT_LT(three.root_finish, flat.root_finish);
}

TEST(ThreeLevel, ThreadedExecutionMatchesSum) {
  const int nranks = 24;
  const std::size_t count = 512;
  const Schedule schedule = three_level_reduce(nranks, count, 4, 3, 4);
  std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks),
                                       std::vector<float>(count, 0.5f));
  std::vector<std::span<float>> spans;
  for (auto& v : data) spans.emplace_back(v);
  run_threaded(schedule, spans);
  EXPECT_EQ(data[0][100], 0.5f * nranks);
}

class RabenseifnerSweep : public ::testing::TestWithParam<int> {};

TEST_P(RabenseifnerSweep, Correct) {
  const int nranks = GetParam();
  EXPECT_EQ(check_semantics(rabenseifner_reduce(nranks, 256)), "");
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, RabenseifnerSweep, ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(Rabenseifner, RootReceivesFarLessThanBinomial) {
  // Bandwidth-optimality is on the critical path: the binomial root receives
  // log2(P) full buffers; the Rabenseifner root receives ~2 buffers total.
  const std::size_t count = 1 << 20;
  auto root_recv_bytes = [](const Schedule& schedule) {
    std::size_t bytes = 0;
    for (const Op& op : schedule.programs[0].ops) {
      if (op.kind != OpKind::Send) bytes += op.count * sizeof(float);
    }
    return bytes;
  };
  const std::size_t raben = root_recv_bytes(rabenseifner_reduce(64, count));
  const std::size_t tree = root_recv_bytes(binomial_reduce(64, 0, count));
  EXPECT_EQ(tree, 6 * count * sizeof(float));  // log2(64) full buffers
  EXPECT_LT(raben, 2 * count * sizeof(float)); // ~(1 - 1/P) + (1 - 1/P) buffers
}

TEST(Rabenseifner, FasterThanBinomialForHugeBuffersFewRanks) {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 16 * kMiB;
  const auto raben = simulate_schedule(rabenseifner_reduce(8, count), cluster,
                                       ExecPolicy::hr_gdr());
  const auto tree = simulate_schedule(binomial_reduce(8, 0, count), cluster,
                                      ExecPolicy::hr_gdr());
  EXPECT_LT(raben.root_finish, tree.root_finish);
}

TEST(Rabenseifner, UnevenBlockSizesStillCorrect) {
  // count not divisible by nranks: partition_chunks produces ragged blocks.
  EXPECT_EQ(check_semantics(rabenseifner_reduce(8, 257)), "");
  EXPECT_EQ(check_semantics(rabenseifner_reduce(16, 999)), "");
}

TEST(Figure7, LowerCommunicatorSpansTwoNodes) {
  // Figure 7's exact geometry: 4 GPUs per node, chain_size 8 => each lower
  // communicator spans two nodes; the upper binomial runs over the leaders.
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  cluster.gpus_per_node = 4;
  cluster.nodes = 4;
  const int nranks = 16;
  const std::size_t count = 1 << 21;  // 8 MB: the regime where chains win
  const Schedule schedule =
      hierarchical_reduce(nranks, count, 8, LevelAlgo::Chain, LevelAlgo::Binomial, 16);
  EXPECT_EQ(check_semantics(schedule), "");

  // The chain hop from rank 4 to rank 3 crosses a node boundary.
  const net::Topology topo(cluster, nranks);
  EXPECT_EQ(topo.path(4, 3), net::Path::InterNode);

  const auto result = simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr());
  EXPECT_GT(result.root_finish, 0);
  // And it should still beat the flat binomial for this large buffer.
  const auto flat =
      simulate_schedule(binomial_reduce(nranks, 0, count), cluster, ExecPolicy::hr_gdr());
  EXPECT_LT(result.root_finish, flat.root_finish);
}

TEST(Trace, DisabledByDefault) {
  const auto result = simulate_schedule(binomial_reduce(8, 0, 64),
                                        net::ClusterSpec::cluster_a(), ExecPolicy::hr_gdr());
  EXPECT_TRUE(result.trace.empty());
}

TEST(Trace, CapturesEveryOpWithSaneIntervals) {
  const Schedule schedule = chain_reduce(6, 0, 4096, 4);
  const auto result = simulate_schedule(schedule, net::ClusterSpec::cluster_a(),
                                        ExecPolicy::hr_gdr(), /*capture_trace=*/true);
  EXPECT_EQ(result.trace.size(), schedule.total_ops());
  for (const TraceEvent& event : result.trace) {
    EXPECT_GE(event.start, 0);
    EXPECT_LE(event.start, event.end);
    EXPECT_LE(event.end, result.total);
    EXPECT_GE(event.rank, 0);
    EXPECT_LT(event.rank, 6);
  }
}

TEST(Trace, SendBusyIntervalsOnSameNodeLinkDoNotExceedCapacity) {
  // pcie_concurrency transfers at a time per node: at any instant, at most
  // that many Send events of co-located ranks may overlap.
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const Schedule schedule = chain_reduce(8, 0, 1 << 16, 8);
  const auto result =
      simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr(), /*capture_trace=*/true);
  // Sweep-line over (start, +1)/(end, -1) boundaries: the maximum
  // instantaneous concurrency must respect the per-node link capacity.
  std::vector<std::pair<util::TimeNs, int>> boundaries;
  for (const TraceEvent& event : result.trace) {
    if (event.kind != OpKind::Send) continue;
    boundaries.emplace_back(event.start, +1);
    boundaries.emplace_back(event.end, -1);
  }
  std::sort(boundaries.begin(), boundaries.end());  // ends sort before starts at ties
  int current = 0;
  int peak = 0;
  for (const auto& [time, delta] : boundaries) {
    current += delta;
    peak = std::max(peak, current);
  }
  EXPECT_LE(peak, cluster.pcie_concurrency);
  EXPECT_GE(peak, 2);  // the pipeline genuinely uses concurrent links
}

// ---------------------------------------------------------------------------
// Gradient bucket fusion
// ---------------------------------------------------------------------------

TEST(BucketPlanner, PartitionsLayersExactly) {
  // 10 layers of 1000 floats (~4 KB each); 8 KB target => buckets of ~2.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::size_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    ranges.emplace_back(offset, 1000);
    offset += 1000;
  }
  const core::BucketPlanner planner(ranges, 8000);
  const auto& buckets = planner.buckets();
  ASSERT_GE(buckets.size(), 2u);
  EXPECT_EQ(buckets.front().first_layer, 0u);
  EXPECT_EQ(buckets.back().last_layer, 9u);
  std::size_t total = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    EXPECT_LE(buckets[b].first_layer, buckets[b].last_layer);
    if (b + 1 < buckets.size()) {
      EXPECT_EQ(buckets[b].last_layer + 1, buckets[b + 1].first_layer);
    }
    total += buckets[b].elems;
    for (std::size_t li = buckets[b].first_layer; li <= buckets[b].last_layer; ++li) {
      EXPECT_EQ(planner.bucket_of_layer(li), b);
    }
  }
  EXPECT_EQ(total, 10000u);
}

TEST(BucketPlanner, ReverseWalkPacksDeepLayersToTarget) {
  // Reverse packing: the deepest layers (produced first by backward) fill to
  // target; any partial leftover is the FRONT bucket.
  std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, 100}, {100, 1000}, {1100, 1000}, {2100, 1000}};
  const core::BucketPlanner planner(ranges, 2000 * sizeof(float));
  const auto& buckets = planner.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].elems, 1100u);  // layers 0-1: the partial leftover
  EXPECT_EQ(buckets[1].elems, 2000u);  // layers 2-3: packed to target
}

TEST(BucketPlanner, ZeroParamLayersMergeIntoNeighbours) {
  // Activation layers (ReLU, pool) hold no params; they must not create
  // empty buckets.
  std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, 0}, {0, 0}, {0, 500}, {500, 0}, {500, 500}};
  const core::BucketPlanner planner(ranges, 100);
  const auto& buckets = planner.buckets();
  EXPECT_EQ(buckets.front().first_layer, 0u);
  EXPECT_EQ(buckets.back().last_layer, 4u);
  for (const auto& bucket : buckets) EXPECT_GT(bucket.elems, 0u);
}

TEST(BucketPlanner, ResolveBucketBytes) {
  EXPECT_EQ(core::resolve_bucket_bytes(12345, 64 << 10), 12345u);  // explicit wins
  // Derived: 8x the eager limit, clamped to [256 KiB, 4 MiB].
  EXPECT_EQ(core::resolve_bucket_bytes(0, 64 << 10), std::size_t{512} << 10);
  EXPECT_EQ(core::resolve_bucket_bytes(0, 1 << 10), std::size_t{256} << 10);
  EXPECT_EQ(core::resolve_bucket_bytes(0, 16 << 20), std::size_t{4} << 20);
}

TEST(BucketPlanner, FusionConfigFromEnv) {
  const char* saved = std::getenv("SCAFFE_BUCKET_BYTES");
  const std::string restore = saved != nullptr ? saved : "";

  ::unsetenv("SCAFFE_BUCKET_BYTES");
  EXPECT_FALSE(core::fusion_config_from_env().enabled);

  ::setenv("SCAFFE_BUCKET_BYTES", "off", 1);
  EXPECT_FALSE(core::fusion_config_from_env().enabled);
  ::setenv("SCAFFE_BUCKET_BYTES", "0", 1);
  EXPECT_FALSE(core::fusion_config_from_env().enabled);

  ::setenv("SCAFFE_BUCKET_BYTES", "auto", 1);
  core::FusionConfig config = core::fusion_config_from_env();
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.bucket_bytes, 0u);  // resolved against the eager limit later

  ::setenv("SCAFFE_BUCKET_BYTES", "2M", 1);
  config = core::fusion_config_from_env();
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.bucket_bytes, std::size_t{2} << 20);

  ::setenv("SCAFFE_BUCKET_BYTES", "nope", 1);
  EXPECT_THROW(core::fusion_config_from_env(), mpi::ConfigError);

  if (saved != nullptr) {
    ::setenv("SCAFFE_BUCKET_BYTES", restore.c_str(), 1);
  } else {
    ::unsetenv("SCAFFE_BUCKET_BYTES");
  }
}

TEST(TuningTable, RecommendedBucketBytes) {
  TuningTable empty;
  EXPECT_EQ(empty.recommended_bucket_bytes(), util::kMiB);  // no boundary visible

  TuningTable table;
  table.add(TuningEntry{64 * util::kKiB, Candidate::binomial(), 10});
  table.add(TuningEntry{2 * util::kMiB, Candidate::flat_chain_cand(), 20});
  table.add(TuningEntry{std::numeric_limits<std::size_t>::max(),
                        Candidate::hier(LevelAlgo::Chain, LevelAlgo::Binomial, 8), 30});
  EXPECT_EQ(table.recommended_bucket_bytes(), 2 * util::kMiB);

  table.set_bucket_bytes(512 * util::kKiB);
  EXPECT_EQ(table.recommended_bucket_bytes(), 512 * util::kKiB);
}

TEST(TuningTable, RecommendedSegmentBytes) {
  // The topo-ring pipelining grain comes from the FIRST measured crossover
  // (where the small-message winner stops winning), clamped to [4 KiB,
  // 256 KiB]. Without a usable table — no calibration ran — the caller's
  // fallback (the eager limit) stands in unchanged.
  TuningTable empty;
  EXPECT_EQ(empty.recommended_segment_bytes(64 * util::kKiB), 64 * util::kKiB);

  TuningTable single;
  single.add(TuningEntry{std::numeric_limits<std::size_t>::max(),
                         Candidate::binomial(), 10});
  EXPECT_EQ(single.recommended_segment_bytes(7 * util::kKiB), 7 * util::kKiB);

  TuningTable table;
  table.add(TuningEntry{64 * util::kKiB, Candidate::binomial(), 10});
  table.add(TuningEntry{2 * util::kMiB, Candidate::flat_chain_cand(), 20});
  table.add(TuningEntry{std::numeric_limits<std::size_t>::max(),
                        Candidate::hier(LevelAlgo::Chain, LevelAlgo::Binomial, 8), 30});
  EXPECT_EQ(table.recommended_segment_bytes(1), 64 * util::kKiB);

  // Boundaries outside the band clamp instead of producing degenerate grains.
  TuningTable tiny;
  tiny.add(TuningEntry{512, Candidate::binomial(), 10});
  tiny.add(TuningEntry{std::numeric_limits<std::size_t>::max(),
                       Candidate::flat_chain_cand(), 20});
  EXPECT_EQ(tiny.recommended_segment_bytes(1), 4 * util::kKiB);

  TuningTable huge;
  huge.add(TuningEntry{8 * util::kMiB, Candidate::binomial(), 10});
  huge.add(TuningEntry{std::numeric_limits<std::size_t>::max(),
                       Candidate::flat_chain_cand(), 20});
  EXPECT_EQ(huge.recommended_segment_bytes(1), 256 * util::kKiB);
}

TEST(FusedChainReduce, SemanticsAndTensorAlignedChunks) {
  const FusedLayout layout = FusedLayout::pack({300, 0, 200, 500, 100, 400});
  EXPECT_EQ(layout.total, 1500u);
  const Schedule schedule = fused_chain_reduce(6, 0, layout, 4);
  EXPECT_EQ(check_semantics(schedule), "");

  // Every op's region must start and end on a tensor boundary.
  std::vector<std::size_t> boundaries = {0};
  for (std::size_t i = 0; i < layout.counts.size(); ++i) {
    boundaries.push_back(layout.offsets[i] + layout.counts[i]);
  }
  std::set<std::pair<std::size_t, std::size_t>> regions;
  for (const auto& program : schedule.programs) {
    for (const Op& op : program.ops) {
      EXPECT_NE(std::find(boundaries.begin(), boundaries.end(), op.offset),
                boundaries.end());
      EXPECT_NE(std::find(boundaries.begin(), boundaries.end(), op.offset + op.count),
                boundaries.end());
      regions.insert({op.offset, op.count});
    }
  }
  EXPECT_LE(regions.size(), 4u);  // at most max_chunks distinct pipeline chunks
}

TEST(FusedChainReduce, BitwiseMatchesPerTensorChainReduces) {
  // The fusion determinism cornerstone: one fused chain reduce over the
  // packed bucket is bitwise identical to separate chain reduces per tensor,
  // because each element's accumulation order (tail towards root) does not
  // depend on message extent or chunking.
  const int nranks = 5;
  const std::vector<std::size_t> counts = {257, 123, 400, 64};
  const FusedLayout layout = FusedLayout::pack(counts);

  auto fill = [&](std::vector<std::vector<float>>& data) {
    data.assign(static_cast<std::size_t>(nranks), std::vector<float>(layout.total));
    for (int r = 0; r < nranks; ++r) {
      for (std::size_t i = 0; i < layout.total; ++i) {
        data[static_cast<std::size_t>(r)][i] =
            0.001f * static_cast<float>((i * 31 + static_cast<std::size_t>(r) * 7) % 997) -
            0.3f;
      }
    }
  };

  std::vector<std::vector<float>> fused;
  fill(fused);
  {
    std::vector<std::span<float>> spans;
    for (auto& v : fused) spans.emplace_back(v);
    run_threaded(fused_chain_reduce(nranks, 0, layout, 3), spans);
  }

  std::vector<std::vector<float>> separate;
  fill(separate);
  for (std::size_t t = 0; t < counts.size(); ++t) {
    std::vector<std::vector<float>> tensor(static_cast<std::size_t>(nranks),
                                           std::vector<float>(counts[t]));
    for (int r = 0; r < nranks; ++r) {
      std::copy_n(separate[static_cast<std::size_t>(r)].begin() +
                      static_cast<std::ptrdiff_t>(layout.offsets[t]),
                  counts[t], tensor[static_cast<std::size_t>(r)].begin());
    }
    std::vector<std::span<float>> spans;
    for (auto& v : tensor) spans.emplace_back(v);
    run_threaded(chain_reduce(nranks, 0, counts[t], 2), spans);
    std::copy_n(tensor[0].begin(), counts[t],
                separate[0].begin() + static_cast<std::ptrdiff_t>(layout.offsets[t]));
  }

  EXPECT_EQ(0, std::memcmp(fused[0].data(), separate[0].data(),
                           layout.total * sizeof(float)));
}

TEST(RunThreaded, PrePostedReceivesAreBitwiseRepeatable) {
  // The posted-slot executor must produce identical bits run over run: the
  // receiver-first direct fill and the staged fallback are different code
  // paths for the same message, so the accumulation ORDER must not depend on
  // which path a message took.
  const int nranks = 8;
  const std::size_t count = 1024;
  const Schedule schedule = hierarchical_reduce(nranks, count, 4, LevelAlgo::Chain,
                                                LevelAlgo::Binomial, 8);
  std::vector<float> reference;
  for (int run = 0; run < 20; ++run) {
    std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks),
                                         std::vector<float>(count));
    for (int r = 0; r < nranks; ++r) {
      for (std::size_t i = 0; i < count; ++i) {
        data[static_cast<std::size_t>(r)][i] =
            0.01f * static_cast<float>((i * 13 + static_cast<std::size_t>(r)) % 101) - 0.5f;
      }
    }
    std::vector<std::span<float>> spans;
    for (auto& v : data) spans.emplace_back(v);
    run_threaded(schedule, spans);
    if (run == 0) {
      reference = data[0];
    } else {
      ASSERT_EQ(0, std::memcmp(reference.data(), data[0].data(), count * sizeof(float)))
          << "run " << run;
    }
  }
}

// Deep narrow MLP for fused-training parity: enough parameter layers that a
// small bucket target produces several buckets.
dl::NetSpec parity_net(int batch) {
  dl::NetSpec spec;
  spec.name = "parity_mlp";
  spec.inputs = {{"data", {batch, 8}}, {"label", {batch}}};
  std::string bottom = "data";
  for (int d = 0; d < 6; ++d) {
    const std::string fc = "fc" + std::to_string(d);
    const std::string act = "act" + std::to_string(d);
    spec.layers.push_back(dl::LayerSpec::inner_product(fc, bottom, fc, 16));
    spec.layers.push_back(dl::LayerSpec::relu(act, fc, act));
    bottom = act;
  }
  spec.layers.push_back(dl::LayerSpec::inner_product("cls", bottom, "cls", 3));
  spec.layers.push_back(dl::LayerSpec::softmax_loss("loss", "cls", "label", "loss"));
  return spec;
}

std::vector<float> train_parity_net(int nranks, core::ScaffeConfig config, int iterations) {
  const int shard = 4;
  std::vector<float> root_params;
  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    dl::SolverConfig solver_config;
    solver_config.base_lr = 0.05f;
    solver_config.seed = 11;
    core::DistributedSolver solver(comm, parity_net(shard), solver_config, config);

    std::vector<float> data(static_cast<std::size_t>(shard) * 8);
    std::vector<float> labels(static_cast<std::size_t>(shard));
    for (int iteration = 0; iteration < iterations; ++iteration) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = 0.05f * static_cast<float>(
                              (i * 17 + static_cast<std::size_t>(comm.rank()) * 3 +
                               static_cast<std::size_t>(iteration) * 7) %
                              59) -
                  1.0f;
      }
      for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = static_cast<float>((i + static_cast<std::size_t>(iteration)) % 3);
      }
      solver.train_iteration(data, labels);
    }
    if (comm.rank() == 0) {
      root_params.resize(solver.solver().net().param_count());
      solver.solver().net().flatten_params(root_params);
    }
  });
  return root_params;
}

class FusedParitySweep : public ::testing::TestWithParam<core::Variant> {};

TEST_P(FusedParitySweep, FusedTrainingBitwiseEqualsUnfused) {
  // Bucket fusion changes WHERE gradients are staged and HOW MANY collectives
  // carry them, but not any element's accumulation order — so the trained
  // parameters must match the unfused run bit for bit.
  core::ScaffeConfig unfused;
  unfused.variant = GetParam();
  unfused.reduce = core::ReduceAlgo::binomial();

  core::ScaffeConfig fused = unfused;
  fused.fusion.enabled = true;
  fused.fusion.bucket_bytes = 2048;  // several buckets over the parity net

  const std::vector<float> a = train_parity_net(4, unfused, 6);
  const std::vector<float> b = train_parity_net(4, fused, 6);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

TEST_P(FusedParitySweep, FusedTrainingBitwiseIdenticalAcrossThreadCounts) {
  // Determinism across math-pool widths: 1 thread vs 8 threads must produce
  // identical bits with fusion enabled (parallel_for splits preserve
  // per-element order; reductions are schedule-ordered).
  core::ScaffeConfig fused;
  fused.variant = GetParam();
  fused.reduce = core::ReduceAlgo::binomial();
  fused.fusion.enabled = true;
  fused.fusion.bucket_bytes = 2048;

  util::ThreadPool::set_global_threads(1);
  const std::vector<float> one = train_parity_net(4, fused, 6);
  util::ThreadPool::set_global_threads(8);
  const std::vector<float> eight = train_parity_net(4, fused, 6);
  util::ThreadPool::set_global_threads(1);  // leave the pool serial for later tests

  ASSERT_EQ(one.size(), eight.size());
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(0, std::memcmp(one.data(), eight.data(), one.size() * sizeof(float)));
}

INSTANTIATE_TEST_SUITE_P(Variants, FusedParitySweep,
                         ::testing::Values(core::Variant::SCOB, core::Variant::SCOBR),
                         [](const auto& info) {
                           return info.param == core::Variant::SCOB ? "SCOB" : "SCOBR";
                         });

// ---------------------------------------------------------------------------
// Schedule compiler (ScheduleGraph)
// ---------------------------------------------------------------------------

TEST(ScheduleGraph, CompilesTwoRankReduce) {
  ScheduleGraph graph("unit", CollectiveKind::Reduce, 2, 0, 8);
  graph.reduce(1, 0, 0, 0, 8);
  const Schedule schedule = graph.compile();
  EXPECT_EQ(validate_structure(schedule), "");
  ASSERT_EQ(schedule.programs.size(), 2u);
  ASSERT_EQ(schedule.programs[1].ops.size(), 1u);
  EXPECT_EQ(schedule.programs[1].ops[0].kind, OpKind::Send);
  ASSERT_EQ(schedule.programs[0].ops.size(), 1u);
  EXPECT_EQ(schedule.programs[0].ops[0].kind, OpKind::RecvReduce);
}

TEST(ScheduleGraph, RejectsMalformedEdges) {
  ScheduleGraph self("bad", CollectiveKind::Bcast, 4, 0, 8);
  self.copy(1, 1, 0, 0, 8);
  EXPECT_THROW(self.compile(), std::invalid_argument);

  ScheduleGraph range("bad", CollectiveKind::Bcast, 4, 0, 8);
  range.copy(0, 4, 0, 0, 8);
  EXPECT_THROW(range.compile(), std::invalid_argument);

  ScheduleGraph region("bad", CollectiveKind::Bcast, 4, 0, 8);
  region.copy(0, 1, 0, 4, 8);  // [4, 12) spills past count 8
  EXPECT_THROW(region.compile(), std::invalid_argument);
}

TEST(ScheduleGraph, TagsArePerPairSequenceNumbers) {
  // Three messages 0->1 at increasing steps plus one 0->2: the 0->1 pair
  // counts 0,1,2 while 0->2 starts over at 0. Per-pair sequencing is what
  // keeps the max tag far below the per-collective budget at 1024 ranks.
  ScheduleGraph graph("tags", CollectiveKind::Bcast, 3, 0, 4);
  graph.copy(0, 1, 0, 0, 4);
  graph.copy(0, 1, 1, 0, 4);
  graph.copy(0, 1, 2, 0, 4);
  graph.copy(0, 2, 3, 0, 4);
  const Schedule schedule = graph.compile();
  std::vector<int> pair01_tags;
  int pair02_tag = -1;
  for (const Op& op : schedule.programs[0].ops) {
    if (op.peer == 1) pair01_tags.push_back(op.tag);
    if (op.peer == 2) pair02_tag = op.tag;
  }
  EXPECT_EQ(pair01_tags, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(pair02_tag, 0);
}

TEST(ScheduleGraph, StepOrdersOpsWithinRank) {
  // Rank 1 receives at step 0 and forwards at step 1: the compiled program
  // must recv before send regardless of edge insertion order.
  ScheduleGraph graph("order", CollectiveKind::Bcast, 3, 0, 4);
  graph.copy(1, 2, 1, 0, 4);  // inserted first, happens second
  graph.copy(0, 1, 0, 0, 4);
  const Schedule schedule = graph.compile();
  ASSERT_EQ(schedule.programs[1].ops.size(), 2u);
  EXPECT_EQ(schedule.programs[1].ops[0].kind, OpKind::Recv);
  EXPECT_EQ(schedule.programs[1].ops[1].kind, OpKind::Send);
  EXPECT_EQ(check_semantics(schedule), "");
}

// ---------------------------------------------------------------------------
// Double binary tree
// ---------------------------------------------------------------------------

class DbtSweep : public ::testing::TestWithParam<int> {};

TEST_P(DbtSweep, ReduceCorrect) {
  const int nranks = GetParam();
  EXPECT_EQ(check_semantics(dbt_reduce(nranks, 0, 1000)), "");
}

TEST_P(DbtSweep, ReduceNonzeroRootCorrect) {
  const int nranks = GetParam();
  EXPECT_EQ(check_semantics(dbt_reduce(nranks, nranks / 2, 777)), "");
}

TEST_P(DbtSweep, BcastCorrect) {
  const int nranks = GetParam();
  EXPECT_EQ(check_semantics(dbt_bcast(nranks, 0, 1000)), "");
  EXPECT_EQ(check_semantics(dbt_bcast(nranks, nranks - 1, 333)), "");
}

TEST_P(DbtSweep, AllreduceCorrect) {
  const int nranks = GetParam();
  EXPECT_EQ(check_semantics(dbt_allreduce(nranks, 1000)), "");
}

TEST_P(DbtSweep, TinyBuffersFallBack) {
  const int nranks = GetParam();
  EXPECT_EQ(check_semantics(dbt_reduce(nranks, 0, 1)), "");
  EXPECT_EQ(check_semantics(dbt_bcast(nranks, 0, 1)), "");
  EXPECT_EQ(check_semantics(dbt_allreduce(nranks, 1)), "");
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DbtSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 17, 31, 32, 64, 100));

TEST(Dbt, EveryRankInteriorInAtMostOneTree) {
  // The load-balance invariant the two complementary trees exist for: a rank
  // with children in both trees would be a send bottleneck.
  for (int nranks : {2, 3, 4, 5, 6, 8, 12, 16, 17, 32, 33, 64, 100, 128}) {
    const detail::DoubleTree trees = detail::build_double_tree(nranks);
    std::vector<int> interior0(static_cast<std::size_t>(nranks), 0);
    std::vector<int> interior1(static_cast<std::size_t>(nranks), 0);
    for (int r = 0; r < nranks; ++r) {
      if (trees.parent0[static_cast<std::size_t>(r)] >= 0) {
        interior0[static_cast<std::size_t>(trees.parent0[static_cast<std::size_t>(r)])] = 1;
      }
      if (trees.parent1[static_cast<std::size_t>(r)] >= 0) {
        interior1[static_cast<std::size_t>(trees.parent1[static_cast<std::size_t>(r)])] = 1;
      }
    }
    for (int r = 0; r < nranks; ++r) {
      EXPECT_LE(interior0[static_cast<std::size_t>(r)] + interior1[static_cast<std::size_t>(r)],
                1)
          << "nranks " << nranks << " rank " << r;
    }
  }
}

TEST(Dbt, HalvesTheRootBottleneck) {
  // Each tree carries half the payload, so the root of either tree receives
  // ~count/2 elements per child instead of the binomial root's log2(P) full
  // buffers.
  const std::size_t count = 1 << 16;
  auto recv_floats = [](const Schedule& schedule, int rank) {
    std::size_t total = 0;
    for (const Op& op : schedule.programs[static_cast<std::size_t>(rank)].ops) {
      if (op.kind != OpKind::Send) total += op.count;
    }
    return total;
  };
  const std::size_t dbt_root = recv_floats(dbt_reduce(64, 0, count), 0);
  const std::size_t bin_root = recv_floats(binomial_reduce(64, 0, count), 0);
  EXPECT_EQ(bin_root, 6 * count);      // log2(64) full buffers
  EXPECT_LT(dbt_root, 2 * count);      // both halves + the final hop
}

// Integer-valued inputs add exactly in float regardless of association, so
// schedules with different accumulation trees must agree bit for bit.
std::vector<std::vector<float>> integer_inputs(int nranks, std::size_t count) {
  std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks),
                                       std::vector<float>(count));
  for (int r = 0; r < nranks; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      data[static_cast<std::size_t>(r)][i] =
          static_cast<float>((i * 7 + static_cast<std::size_t>(r) * 13) % 32);
    }
  }
  return data;
}

void run_threaded_on(const Schedule& schedule, std::vector<std::vector<float>>& data) {
  std::vector<std::span<float>> spans;
  for (auto& v : data) spans.emplace_back(v);
  run_threaded(schedule, spans);
}

class NewScheduleParity : public ::testing::TestWithParam<int> {};

TEST_P(NewScheduleParity, DbtReduceBitwiseMatchesBinomial) {
  const int nranks = GetParam();
  const std::size_t count = 800;
  auto dbt = integer_inputs(nranks, count);
  auto ref = dbt;
  run_threaded_on(dbt_reduce(nranks, 0, count, 4), dbt);
  run_threaded_on(binomial_reduce(nranks, 0, count), ref);
  EXPECT_EQ(0, std::memcmp(dbt[0].data(), ref[0].data(), count * sizeof(float)));
}

TEST_P(NewScheduleParity, DbtAllreduceBitwiseMatchesReduceBcast) {
  const int nranks = GetParam();
  const std::size_t count = 800;
  auto dbt = integer_inputs(nranks, count);
  auto ref = dbt;
  run_threaded_on(dbt_allreduce(nranks, count, 4), dbt);
  run_threaded_on(binomial_reduce(nranks, 0, count), ref);
  run_threaded_on(binomial_bcast(nranks, 0, count), ref);
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(0, std::memcmp(dbt[static_cast<std::size_t>(r)].data(),
                             ref[static_cast<std::size_t>(r)].data(), count * sizeof(float)))
        << "rank " << r;
  }
}

TEST_P(NewScheduleParity, TopoRingAllreduceBitwiseMatchesChainReference) {
  const int nranks = GetParam();
  const std::size_t count = 800;
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const net::Topology topo(cluster, nranks);
  auto ring = integer_inputs(nranks, count);
  auto ref = ring;
  run_threaded_on(topo_ring_allreduce(topo, count, 512), ring);
  run_threaded_on(chain_reduce(nranks, 0, count, 4), ref);
  run_threaded_on(chain_bcast(nranks, 0, count, 4), ref);
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(0, std::memcmp(ring[static_cast<std::size_t>(r)].data(),
                             ref[static_cast<std::size_t>(r)].data(), count * sizeof(float)))
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, NewScheduleParity, ::testing::Values(2, 5, 8, 16, 21));

TEST(NewScheduleDeterminism, DbtBitwiseIdenticalAcrossThreadCounts) {
  // Arbitrary (non-integer) floats: the schedule fixes the accumulation
  // order, so the math-pool width must not change a single bit.
  const int nranks = 12;
  const std::size_t count = 2048;
  auto fill = [&] {
    std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks),
                                         std::vector<float>(count));
    for (int r = 0; r < nranks; ++r) {
      for (std::size_t i = 0; i < count; ++i) {
        data[static_cast<std::size_t>(r)][i] =
            0.001f * static_cast<float>((i * 31 + static_cast<std::size_t>(r) * 7) % 997) -
            0.3f;
      }
    }
    return data;
  };
  util::ThreadPool::set_global_threads(1);
  auto one = fill();
  run_threaded_on(dbt_allreduce(nranks, count), one);
  util::ThreadPool::set_global_threads(8);
  auto eight = fill();
  run_threaded_on(dbt_allreduce(nranks, count), eight);
  util::ThreadPool::set_global_threads(1);
  for (int r = 0; r < nranks; ++r) {
    ASSERT_EQ(0, std::memcmp(one[static_cast<std::size_t>(r)].data(),
                             eight[static_cast<std::size_t>(r)].data(),
                             count * sizeof(float)))
        << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Topology-aware segmented ring
// ---------------------------------------------------------------------------

TEST(TopoRing, OrderCrossesEachNodeBoundaryOnce) {
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  cluster.gpus_per_node = 4;
  const int nranks = 16;  // 4 nodes x 4 GPUs
  const net::Topology topo(cluster, nranks);
  const std::vector<int> order = topology_ring_order(topo);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(nranks));
  int inter_node = 0;
  for (int i = 0; i < nranks; ++i) {
    const int a = order[static_cast<std::size_t>(i)];
    const int b = order[static_cast<std::size_t>((i + 1) % nranks)];
    if (topo.path(a, b) == net::Path::InterNode) ++inter_node;
  }
  EXPECT_EQ(inter_node, 4);  // one uplink per node, wraparound included
}

class TopoRingSweep : public ::testing::TestWithParam<int> {};

TEST_P(TopoRingSweep, ReduceBcastAllreduceCorrect) {
  const int nranks = GetParam();
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const net::Topology topo(cluster, nranks);
  EXPECT_EQ(check_semantics(topo_ring_reduce(topo, 0, 700, 4)), "");
  EXPECT_EQ(check_semantics(topo_ring_reduce(topo, nranks / 2, 700, 4)), "");
  EXPECT_EQ(check_semantics(topo_ring_bcast(topo, 0, 700, 4)), "");
  EXPECT_EQ(check_semantics(topo_ring_allreduce(topo, 700)), "");
  // Small segments force the pipelined multi-segment path.
  EXPECT_EQ(check_semantics(topo_ring_allreduce(topo, 700, 256)), "");
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TopoRingSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 31, 64));

// ---------------------------------------------------------------------------
// Ring edge cases (satellite: non-power-of-two and count < nranks)
// ---------------------------------------------------------------------------

TEST(RingAllreduce, NonPowerOfTwoChunkMath) {
  EXPECT_EQ(check_semantics(ring_allreduce(6, 1000)), "");
  EXPECT_EQ(check_semantics(ring_allreduce(7, 13)), "");
  EXPECT_EQ(check_semantics(ring_allreduce(9, 1001)), "");
}

TEST(RingAllreduce, CountSmallerThanRanksFallsBack) {
  // 5 elements across 8 ranks cannot be ring-partitioned; the schedule must
  // gracefully degrade to reduce+bcast instead of emitting empty segments.
  const Schedule schedule = ring_allreduce(8, 5);
  EXPECT_NE(schedule.name.find("fallback"), std::string::npos);
  EXPECT_EQ(schedule.kind, CollectiveKind::Allreduce);
  EXPECT_EQ(check_semantics(schedule), "");

  auto data = integer_inputs(8, 5);
  run_threaded_on(schedule, data);
  for (int r = 0; r < 8; ++r) {
    for (std::size_t i = 0; i < 5; ++i) {
      float expected = 0;
      for (int s = 0; s < 8; ++s) expected += static_cast<float>((i * 7 + s * 13) % 32);
      EXPECT_EQ(data[static_cast<std::size_t>(r)][i], expected);
    }
  }
}

TEST(TopoRing, CountSmallerThanRanksFallsBack) {
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const net::Topology topo(cluster, 16);
  const Schedule schedule = topo_ring_allreduce(topo, 7);
  EXPECT_NE(schedule.name.find("fallback"), std::string::npos);
  EXPECT_EQ(check_semantics(schedule), "");
}

// ---------------------------------------------------------------------------
// Tag budget (satellite: the 256-slot tag ring must never alias)
// ---------------------------------------------------------------------------

int max_schedule_tag(const Schedule& schedule) {
  int max_tag = -1;
  for (const auto& program : schedule.programs) {
    for (const Op& op : program.ops) max_tag = std::max(max_tag, op.tag);
  }
  return max_tag;
}

TEST(TagBudget, DbtAt1024RanksStaysInsidePerCollectiveStride) {
  // 1024 ranks, 16 chunks per half: the schedule that motivated per-pair tag
  // sequencing. validate_structure enforces the budget; the explicit max-tag
  // check documents how much headroom remains.
  const Schedule schedule = dbt_allreduce(1024, 1 << 20, 16);
  EXPECT_EQ(validate_structure(schedule), "");
  EXPECT_LT(max_schedule_tag(schedule), kMaxScheduleTags);
  EXPECT_LT(max_schedule_tag(schedule), 256);  // per-pair tags stay tiny
}

TEST(TagBudget, SegmentedTopoRingAt512RanksStaysInsideStride) {
  const net::ClusterSpec cluster = net::ClusterSpec::multi_rail_fat_tree();
  const net::Topology topo(cluster, 512);
  const Schedule schedule = topo_ring_allreduce(topo, 512 * 1024, util::kMiB);
  EXPECT_EQ(validate_structure(schedule), "");
  EXPECT_LT(max_schedule_tag(schedule), kMaxScheduleTags);
}

TEST(TagBudget, ValidateStructureRejectsOverflowingTag) {
  Schedule schedule = binomial_reduce(2, 0, 4);
  for (auto& program : schedule.programs) {
    for (Op& op : program.ops) op.tag = kMaxScheduleTags;
  }
  EXPECT_NE(validate_structure(schedule).find("budget"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Algorithm selection (SCAFFE_COLL_ALGO) and the tuned table cache
// ---------------------------------------------------------------------------

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    const char* current = std::getenv(name);
    if (current != nullptr) saved_ = current;
    had_ = current != nullptr;
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(CollSelect, EnvParsesEveryAlgorithm) {
  EnvGuard guard("SCAFFE_COLL_ALGO");
  ::unsetenv("SCAFFE_COLL_ALGO");
  EXPECT_EQ(core::coll_algo_from_env().algo, core::CollAlgo::Config);

  const std::vector<std::pair<const char*, core::CollAlgo>> cases = {
      {"config", core::CollAlgo::Config},   {"tuned", core::CollAlgo::Tuned},
      {"binomial", core::CollAlgo::Binomial}, {"bin", core::CollAlgo::Binomial},
      {"chain", core::CollAlgo::Chain},     {"cb", core::CollAlgo::CB},
      {"cc", core::CollAlgo::CC},           {"dbt", core::CollAlgo::Dbt},
      {"DBT", core::CollAlgo::Dbt},         {"ring", core::CollAlgo::Ring},
      {"topo-ring", core::CollAlgo::TopoRing}, {"topo_ring", core::CollAlgo::TopoRing},
  };
  for (const auto& [text, algo] : cases) {
    ::setenv("SCAFFE_COLL_ALGO", text, 1);
    EXPECT_EQ(core::coll_algo_from_env().algo, algo) << text;
  }

  ::setenv("SCAFFE_COLL_ALGO", "cb-16", 1);
  const core::CollAlgoChoice cb16 = core::coll_algo_from_env();
  EXPECT_EQ(cb16.algo, core::CollAlgo::CB);
  EXPECT_EQ(cb16.chain_size, 16);
  ::setenv("SCAFFE_COLL_ALGO", "cc-4", 1);
  EXPECT_EQ(core::coll_algo_from_env().chain_size, 4);

  for (const char* bad : {"rings", "cb-", "cb-abc", "cb-1", "dbtx", "42"}) {
    ::setenv("SCAFFE_COLL_ALGO", bad, 1);
    EXPECT_THROW(core::coll_algo_from_env(), mpi::ConfigError) << bad;
  }
}

TEST(CollSelect, EnvOverridesProgrammaticConfig) {
  EnvGuard guard("SCAFFE_COLL_ALGO");
  core::ScaffeConfig config;
  config.coll_algo = core::CollAlgo::Binomial;
  ::unsetenv("SCAFFE_COLL_ALGO");
  EXPECT_EQ(core::resolve_coll_algo(config).algo, core::CollAlgo::Binomial);
  ::setenv("SCAFFE_COLL_ALGO", "dbt", 1);
  EXPECT_EQ(core::resolve_coll_algo(config).algo, core::CollAlgo::Dbt);
}

TEST(CollSelect, TuningClusterGrowsWithWorldSize) {
  EXPECT_LE(8, net::ClusterSpec::cluster_b().total_gpus());
  EXPECT_EQ(core::tuning_cluster_for(8).name, net::ClusterSpec::cluster_b().name);
  EXPECT_EQ(core::tuning_cluster_for(160).name, net::ClusterSpec::cluster_a().name);
  EXPECT_EQ(core::tuning_cluster_for(1024).name,
            net::ClusterSpec::multi_rail_fat_tree().name);
  EXPECT_THROW(core::tuning_cluster_for(100000), std::runtime_error);
}

TEST(CollSelect, TunedTableIsCachedPerWorldSize) {
  const coll::TuningTable& a = core::tuned_table_for(8);
  const coll::TuningTable& b = core::tuned_table_for(8);
  EXPECT_EQ(&a, &b);  // second lookup must not re-run the DES sweep
  EXPECT_FALSE(a.empty());
}

TEST(CollSelect, InstalledDbtFactoryTrainsCorrectly) {
  // End-to-end through install_collectives: a full training run under the
  // env override, checked against single-rank training for convergence
  // sanity (DBT reassociates sums, so only approximate equality holds).
  EnvGuard guard("SCAFFE_COLL_ALGO");
  ::setenv("SCAFFE_COLL_ALGO", "dbt", 1);
  core::ScaffeConfig config;
  config.reduce = core::ReduceAlgo::binomial();
  const std::vector<float> dbt = train_parity_net(5, config, 4);
  ::setenv("SCAFFE_COLL_ALGO", "binomial", 1);
  const std::vector<float> ref = train_parity_net(5, config, 4);
  ASSERT_EQ(dbt.size(), ref.size());
  ASSERT_FALSE(dbt.empty());
  for (std::size_t i = 0; i < dbt.size(); ++i) {
    EXPECT_NEAR(dbt[i], ref[i], 1e-4f) << "param " << i;
  }
}

}  // namespace
}  // namespace scaffe::coll
