#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>
#include <string>

#include "coll/algorithms.h"
#include "coll/extensions.h"
#include "coll/logical_executor.h"
#include "coll/sim_executor.h"
#include "coll/thread_executor.h"
#include "coll/tuner.h"
#include "core/bucket_planner.h"
#include "core/distributed_solver.h"
#include "models/zoo.h"
#include "net/cluster.h"
#include "util/bytes.h"
#include "util/thread_pool.h"

namespace scaffe::coll {
namespace {

using util::kMiB;

struct KnomialCase {
  int nranks;
  int radix;
};

class KnomialSweep : public ::testing::TestWithParam<KnomialCase> {};

TEST_P(KnomialSweep, ReduceCorrect) {
  const auto& c = GetParam();
  EXPECT_EQ(check_semantics(knomial_reduce(c.nranks, 0, 100, c.radix)), "");
}

TEST_P(KnomialSweep, ReduceNonzeroRootCorrect) {
  const auto& c = GetParam();
  EXPECT_EQ(check_semantics(knomial_reduce(c.nranks, c.nranks / 2, 64, c.radix)), "");
}

TEST_P(KnomialSweep, BcastCorrect) {
  const auto& c = GetParam();
  EXPECT_EQ(check_semantics(knomial_bcast(c.nranks, 0, 100, c.radix)), "");
  EXPECT_EQ(check_semantics(knomial_bcast(c.nranks, c.nranks - 1, 50, c.radix)), "");
}

INSTANTIATE_TEST_SUITE_P(Shapes, KnomialSweep,
                         ::testing::Values(KnomialCase{1, 2}, KnomialCase{2, 2},
                                           KnomialCase{7, 2}, KnomialCase{8, 4},
                                           KnomialCase{9, 3}, KnomialCase{16, 4},
                                           KnomialCase{27, 3}, KnomialCase{30, 4},
                                           KnomialCase{64, 8}, KnomialCase{100, 5}));

TEST(Knomial, Radix2MatchesBinomialStructure) {
  // Radix-2 k-nomial is the binomial tree: same op multiset.
  const Schedule knomial = knomial_reduce(16, 0, 32, 2);
  const Schedule binomial = binomial_reduce(16, 0, 32);
  EXPECT_EQ(knomial.total_ops(), binomial.total_ops());
  EXPECT_EQ(knomial.total_bytes_sent(), binomial.total_bytes_sent());
}

TEST(Knomial, HigherRadixFewerRounds) {
  // Radix 4 at P=64: 3 rounds instead of 6 — the root receives more messages
  // but the tree is shallower; at small message sizes latency dominates and
  // fewer rounds should not be slower in the DES.
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const auto r2 = simulate_schedule(knomial_reduce(64, 0, 16, 2), cluster,
                                    ExecPolicy::hr_gdr());
  const auto r4 = simulate_schedule(knomial_reduce(64, 0, 16, 4), cluster,
                                    ExecPolicy::hr_gdr());
  EXPECT_GT(r2.root_finish, 0);
  EXPECT_GT(r4.root_finish, 0);
}

class ThreeLevelSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ThreeLevelSweep, Correct) {
  const auto [nranks, chain, mid] = GetParam();
  const Schedule schedule = three_level_reduce(nranks, 256, chain, mid, 4);
  EXPECT_EQ(check_semantics(schedule), "") << schedule.name;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ThreeLevelSweep,
                         ::testing::Values(std::tuple{1, 4, 4}, std::tuple{8, 2, 2},
                                           std::tuple{16, 4, 2}, std::tuple{32, 4, 4},
                                           std::tuple{60, 4, 4}, std::tuple{64, 8, 4},
                                           std::tuple{160, 16, 5}, std::tuple{100, 8, 3}));

TEST(ThreeLevel, PaperFutureWorkWinsAtVeryLargeScale) {
  // Section 5: "chain-of-chain combined with a top level binomial for very
  // large scale reductions". At 160 ranks and 256MB the three-level design
  // should be competitive with (here: beat) the flat binomial.
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 64 * kMiB;  // 256 MB of floats
  const auto three = simulate_schedule(three_level_reduce(160, count, 16, 5, 16), cluster,
                                       ExecPolicy::hr_gdr());
  const auto flat = simulate_schedule(binomial_reduce(160, 0, count), cluster,
                                      ExecPolicy::hr_gdr());
  EXPECT_LT(three.root_finish, flat.root_finish);
}

TEST(ThreeLevel, ThreadedExecutionMatchesSum) {
  const int nranks = 24;
  const std::size_t count = 512;
  const Schedule schedule = three_level_reduce(nranks, count, 4, 3, 4);
  std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks),
                                       std::vector<float>(count, 0.5f));
  std::vector<std::span<float>> spans;
  for (auto& v : data) spans.emplace_back(v);
  run_threaded(schedule, spans);
  EXPECT_EQ(data[0][100], 0.5f * nranks);
}

class RabenseifnerSweep : public ::testing::TestWithParam<int> {};

TEST_P(RabenseifnerSweep, Correct) {
  const int nranks = GetParam();
  EXPECT_EQ(check_semantics(rabenseifner_reduce(nranks, 256)), "");
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, RabenseifnerSweep, ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(Rabenseifner, RootReceivesFarLessThanBinomial) {
  // Bandwidth-optimality is on the critical path: the binomial root receives
  // log2(P) full buffers; the Rabenseifner root receives ~2 buffers total.
  const std::size_t count = 1 << 20;
  auto root_recv_bytes = [](const Schedule& schedule) {
    std::size_t bytes = 0;
    for (const Op& op : schedule.programs[0].ops) {
      if (op.kind != OpKind::Send) bytes += op.count * sizeof(float);
    }
    return bytes;
  };
  const std::size_t raben = root_recv_bytes(rabenseifner_reduce(64, count));
  const std::size_t tree = root_recv_bytes(binomial_reduce(64, 0, count));
  EXPECT_EQ(tree, 6 * count * sizeof(float));  // log2(64) full buffers
  EXPECT_LT(raben, 2 * count * sizeof(float)); // ~(1 - 1/P) + (1 - 1/P) buffers
}

TEST(Rabenseifner, FasterThanBinomialForHugeBuffersFewRanks) {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 16 * kMiB;
  const auto raben = simulate_schedule(rabenseifner_reduce(8, count), cluster,
                                       ExecPolicy::hr_gdr());
  const auto tree = simulate_schedule(binomial_reduce(8, 0, count), cluster,
                                      ExecPolicy::hr_gdr());
  EXPECT_LT(raben.root_finish, tree.root_finish);
}

TEST(Rabenseifner, UnevenBlockSizesStillCorrect) {
  // count not divisible by nranks: partition_chunks produces ragged blocks.
  EXPECT_EQ(check_semantics(rabenseifner_reduce(8, 257)), "");
  EXPECT_EQ(check_semantics(rabenseifner_reduce(16, 999)), "");
}

TEST(Figure7, LowerCommunicatorSpansTwoNodes) {
  // Figure 7's exact geometry: 4 GPUs per node, chain_size 8 => each lower
  // communicator spans two nodes; the upper binomial runs over the leaders.
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  cluster.gpus_per_node = 4;
  cluster.nodes = 4;
  const int nranks = 16;
  const std::size_t count = 1 << 21;  // 8 MB: the regime where chains win
  const Schedule schedule =
      hierarchical_reduce(nranks, count, 8, LevelAlgo::Chain, LevelAlgo::Binomial, 16);
  EXPECT_EQ(check_semantics(schedule), "");

  // The chain hop from rank 4 to rank 3 crosses a node boundary.
  const net::Topology topo(cluster, nranks);
  EXPECT_EQ(topo.path(4, 3), net::Path::InterNode);

  const auto result = simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr());
  EXPECT_GT(result.root_finish, 0);
  // And it should still beat the flat binomial for this large buffer.
  const auto flat =
      simulate_schedule(binomial_reduce(nranks, 0, count), cluster, ExecPolicy::hr_gdr());
  EXPECT_LT(result.root_finish, flat.root_finish);
}

TEST(Trace, DisabledByDefault) {
  const auto result = simulate_schedule(binomial_reduce(8, 0, 64),
                                        net::ClusterSpec::cluster_a(), ExecPolicy::hr_gdr());
  EXPECT_TRUE(result.trace.empty());
}

TEST(Trace, CapturesEveryOpWithSaneIntervals) {
  const Schedule schedule = chain_reduce(6, 0, 4096, 4);
  const auto result = simulate_schedule(schedule, net::ClusterSpec::cluster_a(),
                                        ExecPolicy::hr_gdr(), /*capture_trace=*/true);
  EXPECT_EQ(result.trace.size(), schedule.total_ops());
  for (const TraceEvent& event : result.trace) {
    EXPECT_GE(event.start, 0);
    EXPECT_LE(event.start, event.end);
    EXPECT_LE(event.end, result.total);
    EXPECT_GE(event.rank, 0);
    EXPECT_LT(event.rank, 6);
  }
}

TEST(Trace, SendBusyIntervalsOnSameNodeLinkDoNotExceedCapacity) {
  // pcie_concurrency transfers at a time per node: at any instant, at most
  // that many Send events of co-located ranks may overlap.
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const Schedule schedule = chain_reduce(8, 0, 1 << 16, 8);
  const auto result =
      simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr(), /*capture_trace=*/true);
  // Sweep-line over (start, +1)/(end, -1) boundaries: the maximum
  // instantaneous concurrency must respect the per-node link capacity.
  std::vector<std::pair<util::TimeNs, int>> boundaries;
  for (const TraceEvent& event : result.trace) {
    if (event.kind != OpKind::Send) continue;
    boundaries.emplace_back(event.start, +1);
    boundaries.emplace_back(event.end, -1);
  }
  std::sort(boundaries.begin(), boundaries.end());  // ends sort before starts at ties
  int current = 0;
  int peak = 0;
  for (const auto& [time, delta] : boundaries) {
    current += delta;
    peak = std::max(peak, current);
  }
  EXPECT_LE(peak, cluster.pcie_concurrency);
  EXPECT_GE(peak, 2);  // the pipeline genuinely uses concurrent links
}

// ---------------------------------------------------------------------------
// Gradient bucket fusion
// ---------------------------------------------------------------------------

TEST(BucketPlanner, PartitionsLayersExactly) {
  // 10 layers of 1000 floats (~4 KB each); 8 KB target => buckets of ~2.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::size_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    ranges.emplace_back(offset, 1000);
    offset += 1000;
  }
  const core::BucketPlanner planner(ranges, 8000);
  const auto& buckets = planner.buckets();
  ASSERT_GE(buckets.size(), 2u);
  EXPECT_EQ(buckets.front().first_layer, 0u);
  EXPECT_EQ(buckets.back().last_layer, 9u);
  std::size_t total = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    EXPECT_LE(buckets[b].first_layer, buckets[b].last_layer);
    if (b + 1 < buckets.size()) {
      EXPECT_EQ(buckets[b].last_layer + 1, buckets[b + 1].first_layer);
    }
    total += buckets[b].elems;
    for (std::size_t li = buckets[b].first_layer; li <= buckets[b].last_layer; ++li) {
      EXPECT_EQ(planner.bucket_of_layer(li), b);
    }
  }
  EXPECT_EQ(total, 10000u);
}

TEST(BucketPlanner, ReverseWalkPacksDeepLayersToTarget) {
  // Reverse packing: the deepest layers (produced first by backward) fill to
  // target; any partial leftover is the FRONT bucket.
  std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, 100}, {100, 1000}, {1100, 1000}, {2100, 1000}};
  const core::BucketPlanner planner(ranges, 2000 * sizeof(float));
  const auto& buckets = planner.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].elems, 1100u);  // layers 0-1: the partial leftover
  EXPECT_EQ(buckets[1].elems, 2000u);  // layers 2-3: packed to target
}

TEST(BucketPlanner, ZeroParamLayersMergeIntoNeighbours) {
  // Activation layers (ReLU, pool) hold no params; they must not create
  // empty buckets.
  std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, 0}, {0, 0}, {0, 500}, {500, 0}, {500, 500}};
  const core::BucketPlanner planner(ranges, 100);
  const auto& buckets = planner.buckets();
  EXPECT_EQ(buckets.front().first_layer, 0u);
  EXPECT_EQ(buckets.back().last_layer, 4u);
  for (const auto& bucket : buckets) EXPECT_GT(bucket.elems, 0u);
}

TEST(BucketPlanner, ResolveBucketBytes) {
  EXPECT_EQ(core::resolve_bucket_bytes(12345, 64 << 10), 12345u);  // explicit wins
  // Derived: 8x the eager limit, clamped to [256 KiB, 4 MiB].
  EXPECT_EQ(core::resolve_bucket_bytes(0, 64 << 10), std::size_t{512} << 10);
  EXPECT_EQ(core::resolve_bucket_bytes(0, 1 << 10), std::size_t{256} << 10);
  EXPECT_EQ(core::resolve_bucket_bytes(0, 16 << 20), std::size_t{4} << 20);
}

TEST(BucketPlanner, FusionConfigFromEnv) {
  const char* saved = std::getenv("SCAFFE_BUCKET_BYTES");
  const std::string restore = saved != nullptr ? saved : "";

  ::unsetenv("SCAFFE_BUCKET_BYTES");
  EXPECT_FALSE(core::fusion_config_from_env().enabled);

  ::setenv("SCAFFE_BUCKET_BYTES", "off", 1);
  EXPECT_FALSE(core::fusion_config_from_env().enabled);
  ::setenv("SCAFFE_BUCKET_BYTES", "0", 1);
  EXPECT_FALSE(core::fusion_config_from_env().enabled);

  ::setenv("SCAFFE_BUCKET_BYTES", "auto", 1);
  core::FusionConfig config = core::fusion_config_from_env();
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.bucket_bytes, 0u);  // resolved against the eager limit later

  ::setenv("SCAFFE_BUCKET_BYTES", "2M", 1);
  config = core::fusion_config_from_env();
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.bucket_bytes, std::size_t{2} << 20);

  ::setenv("SCAFFE_BUCKET_BYTES", "nope", 1);
  EXPECT_THROW(core::fusion_config_from_env(), mpi::ConfigError);

  if (saved != nullptr) {
    ::setenv("SCAFFE_BUCKET_BYTES", restore.c_str(), 1);
  } else {
    ::unsetenv("SCAFFE_BUCKET_BYTES");
  }
}

TEST(TuningTable, RecommendedBucketBytes) {
  TuningTable empty;
  EXPECT_EQ(empty.recommended_bucket_bytes(), util::kMiB);  // no boundary visible

  TuningTable table;
  table.add(TuningEntry{64 * util::kKiB, Candidate::binomial(), 10});
  table.add(TuningEntry{2 * util::kMiB, Candidate::flat_chain_cand(), 20});
  table.add(TuningEntry{std::numeric_limits<std::size_t>::max(),
                        Candidate::hier(LevelAlgo::Chain, LevelAlgo::Binomial, 8), 30});
  EXPECT_EQ(table.recommended_bucket_bytes(), 2 * util::kMiB);

  table.set_bucket_bytes(512 * util::kKiB);
  EXPECT_EQ(table.recommended_bucket_bytes(), 512 * util::kKiB);
}

TEST(FusedChainReduce, SemanticsAndTensorAlignedChunks) {
  const FusedLayout layout = FusedLayout::pack({300, 0, 200, 500, 100, 400});
  EXPECT_EQ(layout.total, 1500u);
  const Schedule schedule = fused_chain_reduce(6, 0, layout, 4);
  EXPECT_EQ(check_semantics(schedule), "");

  // Every op's region must start and end on a tensor boundary.
  std::vector<std::size_t> boundaries = {0};
  for (std::size_t i = 0; i < layout.counts.size(); ++i) {
    boundaries.push_back(layout.offsets[i] + layout.counts[i]);
  }
  std::set<std::pair<std::size_t, std::size_t>> regions;
  for (const auto& program : schedule.programs) {
    for (const Op& op : program.ops) {
      EXPECT_NE(std::find(boundaries.begin(), boundaries.end(), op.offset),
                boundaries.end());
      EXPECT_NE(std::find(boundaries.begin(), boundaries.end(), op.offset + op.count),
                boundaries.end());
      regions.insert({op.offset, op.count});
    }
  }
  EXPECT_LE(regions.size(), 4u);  // at most max_chunks distinct pipeline chunks
}

TEST(FusedChainReduce, BitwiseMatchesPerTensorChainReduces) {
  // The fusion determinism cornerstone: one fused chain reduce over the
  // packed bucket is bitwise identical to separate chain reduces per tensor,
  // because each element's accumulation order (tail towards root) does not
  // depend on message extent or chunking.
  const int nranks = 5;
  const std::vector<std::size_t> counts = {257, 123, 400, 64};
  const FusedLayout layout = FusedLayout::pack(counts);

  auto fill = [&](std::vector<std::vector<float>>& data) {
    data.assign(static_cast<std::size_t>(nranks), std::vector<float>(layout.total));
    for (int r = 0; r < nranks; ++r) {
      for (std::size_t i = 0; i < layout.total; ++i) {
        data[static_cast<std::size_t>(r)][i] =
            0.001f * static_cast<float>((i * 31 + static_cast<std::size_t>(r) * 7) % 997) -
            0.3f;
      }
    }
  };

  std::vector<std::vector<float>> fused;
  fill(fused);
  {
    std::vector<std::span<float>> spans;
    for (auto& v : fused) spans.emplace_back(v);
    run_threaded(fused_chain_reduce(nranks, 0, layout, 3), spans);
  }

  std::vector<std::vector<float>> separate;
  fill(separate);
  for (std::size_t t = 0; t < counts.size(); ++t) {
    std::vector<std::vector<float>> tensor(static_cast<std::size_t>(nranks),
                                           std::vector<float>(counts[t]));
    for (int r = 0; r < nranks; ++r) {
      std::copy_n(separate[static_cast<std::size_t>(r)].begin() +
                      static_cast<std::ptrdiff_t>(layout.offsets[t]),
                  counts[t], tensor[static_cast<std::size_t>(r)].begin());
    }
    std::vector<std::span<float>> spans;
    for (auto& v : tensor) spans.emplace_back(v);
    run_threaded(chain_reduce(nranks, 0, counts[t], 2), spans);
    std::copy_n(tensor[0].begin(), counts[t],
                separate[0].begin() + static_cast<std::ptrdiff_t>(layout.offsets[t]));
  }

  EXPECT_EQ(0, std::memcmp(fused[0].data(), separate[0].data(),
                           layout.total * sizeof(float)));
}

TEST(RunThreaded, PrePostedReceivesAreBitwiseRepeatable) {
  // The posted-slot executor must produce identical bits run over run: the
  // receiver-first direct fill and the staged fallback are different code
  // paths for the same message, so the accumulation ORDER must not depend on
  // which path a message took.
  const int nranks = 8;
  const std::size_t count = 1024;
  const Schedule schedule = hierarchical_reduce(nranks, count, 4, LevelAlgo::Chain,
                                                LevelAlgo::Binomial, 8);
  std::vector<float> reference;
  for (int run = 0; run < 20; ++run) {
    std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks),
                                         std::vector<float>(count));
    for (int r = 0; r < nranks; ++r) {
      for (std::size_t i = 0; i < count; ++i) {
        data[static_cast<std::size_t>(r)][i] =
            0.01f * static_cast<float>((i * 13 + static_cast<std::size_t>(r)) % 101) - 0.5f;
      }
    }
    std::vector<std::span<float>> spans;
    for (auto& v : data) spans.emplace_back(v);
    run_threaded(schedule, spans);
    if (run == 0) {
      reference = data[0];
    } else {
      ASSERT_EQ(0, std::memcmp(reference.data(), data[0].data(), count * sizeof(float)))
          << "run " << run;
    }
  }
}

// Deep narrow MLP for fused-training parity: enough parameter layers that a
// small bucket target produces several buckets.
dl::NetSpec parity_net(int batch) {
  dl::NetSpec spec;
  spec.name = "parity_mlp";
  spec.inputs = {{"data", {batch, 8}}, {"label", {batch}}};
  std::string bottom = "data";
  for (int d = 0; d < 6; ++d) {
    const std::string fc = "fc" + std::to_string(d);
    const std::string act = "act" + std::to_string(d);
    spec.layers.push_back(dl::LayerSpec::inner_product(fc, bottom, fc, 16));
    spec.layers.push_back(dl::LayerSpec::relu(act, fc, act));
    bottom = act;
  }
  spec.layers.push_back(dl::LayerSpec::inner_product("cls", bottom, "cls", 3));
  spec.layers.push_back(dl::LayerSpec::softmax_loss("loss", "cls", "label", "loss"));
  return spec;
}

std::vector<float> train_parity_net(int nranks, core::ScaffeConfig config, int iterations) {
  const int shard = 4;
  std::vector<float> root_params;
  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    dl::SolverConfig solver_config;
    solver_config.base_lr = 0.05f;
    solver_config.seed = 11;
    core::DistributedSolver solver(comm, parity_net(shard), solver_config, config);

    std::vector<float> data(static_cast<std::size_t>(shard) * 8);
    std::vector<float> labels(static_cast<std::size_t>(shard));
    for (int iteration = 0; iteration < iterations; ++iteration) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = 0.05f * static_cast<float>(
                              (i * 17 + static_cast<std::size_t>(comm.rank()) * 3 +
                               static_cast<std::size_t>(iteration) * 7) %
                              59) -
                  1.0f;
      }
      for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = static_cast<float>((i + static_cast<std::size_t>(iteration)) % 3);
      }
      solver.train_iteration(data, labels);
    }
    if (comm.rank() == 0) {
      root_params.resize(solver.solver().net().param_count());
      solver.solver().net().flatten_params(root_params);
    }
  });
  return root_params;
}

class FusedParitySweep : public ::testing::TestWithParam<core::Variant> {};

TEST_P(FusedParitySweep, FusedTrainingBitwiseEqualsUnfused) {
  // Bucket fusion changes WHERE gradients are staged and HOW MANY collectives
  // carry them, but not any element's accumulation order — so the trained
  // parameters must match the unfused run bit for bit.
  core::ScaffeConfig unfused;
  unfused.variant = GetParam();
  unfused.reduce = core::ReduceAlgo::binomial();

  core::ScaffeConfig fused = unfused;
  fused.fusion.enabled = true;
  fused.fusion.bucket_bytes = 2048;  // several buckets over the parity net

  const std::vector<float> a = train_parity_net(4, unfused, 6);
  const std::vector<float> b = train_parity_net(4, fused, 6);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

TEST_P(FusedParitySweep, FusedTrainingBitwiseIdenticalAcrossThreadCounts) {
  // Determinism across math-pool widths: 1 thread vs 8 threads must produce
  // identical bits with fusion enabled (parallel_for splits preserve
  // per-element order; reductions are schedule-ordered).
  core::ScaffeConfig fused;
  fused.variant = GetParam();
  fused.reduce = core::ReduceAlgo::binomial();
  fused.fusion.enabled = true;
  fused.fusion.bucket_bytes = 2048;

  util::ThreadPool::set_global_threads(1);
  const std::vector<float> one = train_parity_net(4, fused, 6);
  util::ThreadPool::set_global_threads(8);
  const std::vector<float> eight = train_parity_net(4, fused, 6);
  util::ThreadPool::set_global_threads(1);  // leave the pool serial for later tests

  ASSERT_EQ(one.size(), eight.size());
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(0, std::memcmp(one.data(), eight.data(), one.size() * sizeof(float)));
}

INSTANTIATE_TEST_SUITE_P(Variants, FusedParitySweep,
                         ::testing::Values(core::Variant::SCOB, core::Variant::SCOBR),
                         [](const auto& info) {
                           return info.param == core::Variant::SCOB ? "SCOB" : "SCOBR";
                         });

}  // namespace
}  // namespace scaffe::coll
