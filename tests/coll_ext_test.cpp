#include <gtest/gtest.h>

#include <algorithm>

#include "coll/algorithms.h"
#include "coll/extensions.h"
#include "coll/logical_executor.h"
#include "coll/sim_executor.h"
#include "coll/thread_executor.h"
#include "net/cluster.h"
#include "util/bytes.h"

namespace scaffe::coll {
namespace {

using util::kMiB;

struct KnomialCase {
  int nranks;
  int radix;
};

class KnomialSweep : public ::testing::TestWithParam<KnomialCase> {};

TEST_P(KnomialSweep, ReduceCorrect) {
  const auto& c = GetParam();
  EXPECT_EQ(check_semantics(knomial_reduce(c.nranks, 0, 100, c.radix)), "");
}

TEST_P(KnomialSweep, ReduceNonzeroRootCorrect) {
  const auto& c = GetParam();
  EXPECT_EQ(check_semantics(knomial_reduce(c.nranks, c.nranks / 2, 64, c.radix)), "");
}

TEST_P(KnomialSweep, BcastCorrect) {
  const auto& c = GetParam();
  EXPECT_EQ(check_semantics(knomial_bcast(c.nranks, 0, 100, c.radix)), "");
  EXPECT_EQ(check_semantics(knomial_bcast(c.nranks, c.nranks - 1, 50, c.radix)), "");
}

INSTANTIATE_TEST_SUITE_P(Shapes, KnomialSweep,
                         ::testing::Values(KnomialCase{1, 2}, KnomialCase{2, 2},
                                           KnomialCase{7, 2}, KnomialCase{8, 4},
                                           KnomialCase{9, 3}, KnomialCase{16, 4},
                                           KnomialCase{27, 3}, KnomialCase{30, 4},
                                           KnomialCase{64, 8}, KnomialCase{100, 5}));

TEST(Knomial, Radix2MatchesBinomialStructure) {
  // Radix-2 k-nomial is the binomial tree: same op multiset.
  const Schedule knomial = knomial_reduce(16, 0, 32, 2);
  const Schedule binomial = binomial_reduce(16, 0, 32);
  EXPECT_EQ(knomial.total_ops(), binomial.total_ops());
  EXPECT_EQ(knomial.total_bytes_sent(), binomial.total_bytes_sent());
}

TEST(Knomial, HigherRadixFewerRounds) {
  // Radix 4 at P=64: 3 rounds instead of 6 — the root receives more messages
  // but the tree is shallower; at small message sizes latency dominates and
  // fewer rounds should not be slower in the DES.
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const auto r2 = simulate_schedule(knomial_reduce(64, 0, 16, 2), cluster,
                                    ExecPolicy::hr_gdr());
  const auto r4 = simulate_schedule(knomial_reduce(64, 0, 16, 4), cluster,
                                    ExecPolicy::hr_gdr());
  EXPECT_GT(r2.root_finish, 0);
  EXPECT_GT(r4.root_finish, 0);
}

class ThreeLevelSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ThreeLevelSweep, Correct) {
  const auto [nranks, chain, mid] = GetParam();
  const Schedule schedule = three_level_reduce(nranks, 256, chain, mid, 4);
  EXPECT_EQ(check_semantics(schedule), "") << schedule.name;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ThreeLevelSweep,
                         ::testing::Values(std::tuple{1, 4, 4}, std::tuple{8, 2, 2},
                                           std::tuple{16, 4, 2}, std::tuple{32, 4, 4},
                                           std::tuple{60, 4, 4}, std::tuple{64, 8, 4},
                                           std::tuple{160, 16, 5}, std::tuple{100, 8, 3}));

TEST(ThreeLevel, PaperFutureWorkWinsAtVeryLargeScale) {
  // Section 5: "chain-of-chain combined with a top level binomial for very
  // large scale reductions". At 160 ranks and 256MB the three-level design
  // should be competitive with (here: beat) the flat binomial.
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 64 * kMiB;  // 256 MB of floats
  const auto three = simulate_schedule(three_level_reduce(160, count, 16, 5, 16), cluster,
                                       ExecPolicy::hr_gdr());
  const auto flat = simulate_schedule(binomial_reduce(160, 0, count), cluster,
                                      ExecPolicy::hr_gdr());
  EXPECT_LT(three.root_finish, flat.root_finish);
}

TEST(ThreeLevel, ThreadedExecutionMatchesSum) {
  const int nranks = 24;
  const std::size_t count = 512;
  const Schedule schedule = three_level_reduce(nranks, count, 4, 3, 4);
  std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks),
                                       std::vector<float>(count, 0.5f));
  std::vector<std::span<float>> spans;
  for (auto& v : data) spans.emplace_back(v);
  run_threaded(schedule, spans);
  EXPECT_EQ(data[0][100], 0.5f * nranks);
}

class RabenseifnerSweep : public ::testing::TestWithParam<int> {};

TEST_P(RabenseifnerSweep, Correct) {
  const int nranks = GetParam();
  EXPECT_EQ(check_semantics(rabenseifner_reduce(nranks, 256)), "");
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, RabenseifnerSweep, ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(Rabenseifner, RootReceivesFarLessThanBinomial) {
  // Bandwidth-optimality is on the critical path: the binomial root receives
  // log2(P) full buffers; the Rabenseifner root receives ~2 buffers total.
  const std::size_t count = 1 << 20;
  auto root_recv_bytes = [](const Schedule& schedule) {
    std::size_t bytes = 0;
    for (const Op& op : schedule.programs[0].ops) {
      if (op.kind != OpKind::Send) bytes += op.count * sizeof(float);
    }
    return bytes;
  };
  const std::size_t raben = root_recv_bytes(rabenseifner_reduce(64, count));
  const std::size_t tree = root_recv_bytes(binomial_reduce(64, 0, count));
  EXPECT_EQ(tree, 6 * count * sizeof(float));  // log2(64) full buffers
  EXPECT_LT(raben, 2 * count * sizeof(float)); // ~(1 - 1/P) + (1 - 1/P) buffers
}

TEST(Rabenseifner, FasterThanBinomialForHugeBuffersFewRanks) {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 16 * kMiB;
  const auto raben = simulate_schedule(rabenseifner_reduce(8, count), cluster,
                                       ExecPolicy::hr_gdr());
  const auto tree = simulate_schedule(binomial_reduce(8, 0, count), cluster,
                                      ExecPolicy::hr_gdr());
  EXPECT_LT(raben.root_finish, tree.root_finish);
}

TEST(Rabenseifner, UnevenBlockSizesStillCorrect) {
  // count not divisible by nranks: partition_chunks produces ragged blocks.
  EXPECT_EQ(check_semantics(rabenseifner_reduce(8, 257)), "");
  EXPECT_EQ(check_semantics(rabenseifner_reduce(16, 999)), "");
}

TEST(Figure7, LowerCommunicatorSpansTwoNodes) {
  // Figure 7's exact geometry: 4 GPUs per node, chain_size 8 => each lower
  // communicator spans two nodes; the upper binomial runs over the leaders.
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  cluster.gpus_per_node = 4;
  cluster.nodes = 4;
  const int nranks = 16;
  const std::size_t count = 1 << 21;  // 8 MB: the regime where chains win
  const Schedule schedule =
      hierarchical_reduce(nranks, count, 8, LevelAlgo::Chain, LevelAlgo::Binomial, 16);
  EXPECT_EQ(check_semantics(schedule), "");

  // The chain hop from rank 4 to rank 3 crosses a node boundary.
  const net::Topology topo(cluster, nranks);
  EXPECT_EQ(topo.path(4, 3), net::Path::InterNode);

  const auto result = simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr());
  EXPECT_GT(result.root_finish, 0);
  // And it should still beat the flat binomial for this large buffer.
  const auto flat =
      simulate_schedule(binomial_reduce(nranks, 0, count), cluster, ExecPolicy::hr_gdr());
  EXPECT_LT(result.root_finish, flat.root_finish);
}

TEST(Trace, DisabledByDefault) {
  const auto result = simulate_schedule(binomial_reduce(8, 0, 64),
                                        net::ClusterSpec::cluster_a(), ExecPolicy::hr_gdr());
  EXPECT_TRUE(result.trace.empty());
}

TEST(Trace, CapturesEveryOpWithSaneIntervals) {
  const Schedule schedule = chain_reduce(6, 0, 4096, 4);
  const auto result = simulate_schedule(schedule, net::ClusterSpec::cluster_a(),
                                        ExecPolicy::hr_gdr(), /*capture_trace=*/true);
  EXPECT_EQ(result.trace.size(), schedule.total_ops());
  for (const TraceEvent& event : result.trace) {
    EXPECT_GE(event.start, 0);
    EXPECT_LE(event.start, event.end);
    EXPECT_LE(event.end, result.total);
    EXPECT_GE(event.rank, 0);
    EXPECT_LT(event.rank, 6);
  }
}

TEST(Trace, SendBusyIntervalsOnSameNodeLinkDoNotExceedCapacity) {
  // pcie_concurrency transfers at a time per node: at any instant, at most
  // that many Send events of co-located ranks may overlap.
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const Schedule schedule = chain_reduce(8, 0, 1 << 16, 8);
  const auto result =
      simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr(), /*capture_trace=*/true);
  // Sweep-line over (start, +1)/(end, -1) boundaries: the maximum
  // instantaneous concurrency must respect the per-node link capacity.
  std::vector<std::pair<util::TimeNs, int>> boundaries;
  for (const TraceEvent& event : result.trace) {
    if (event.kind != OpKind::Send) continue;
    boundaries.emplace_back(event.start, +1);
    boundaries.emplace_back(event.end, -1);
  }
  std::sort(boundaries.begin(), boundaries.end());  // ends sort before starts at ties
  int current = 0;
  int peak = 0;
  for (const auto& [time, delta] : boundaries) {
    current += delta;
    peak = std::max(peak, current);
  }
  EXPECT_LE(peak, cluster.pcie_concurrency);
  EXPECT_GE(peak, 2);  // the pipeline genuinely uses concurrent links
}

}  // namespace
}  // namespace scaffe::coll
