// Randomized property tests: thousands of schedule configurations swept
// through the structural validator + logical oracle, and random composed
// collectives executed on threads. Seeds are fixed, so failures reproduce.
#include <gtest/gtest.h>

#include "coll/algorithms.h"
#include "coll/extensions.h"
#include "coll/logical_executor.h"
#include "coll/sim_executor.h"
#include "coll/thread_executor.h"
#include "net/cluster.h"
#include "util/rng.h"

namespace scaffe::coll {
namespace {

class ScheduleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleFuzz, RandomConfigurationsAllCorrect) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const int nranks = 1 + static_cast<int>(rng.below(48));
    const std::size_t count = 1 + rng.below(700);
    const int chunks = 1 + static_cast<int>(rng.below(12));
    const int chain = 1 + static_cast<int>(rng.below(12));
    const auto lower = rng.below(2) ? LevelAlgo::Chain : LevelAlgo::Binomial;
    const auto upper = rng.below(2) ? LevelAlgo::Chain : LevelAlgo::Binomial;
    const int root = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));

    Schedule schedule;
    switch (rng.below(8)) {
      case 0: schedule = binomial_reduce(nranks, root, count); break;
      case 1: schedule = chain_reduce(nranks, root, count, chunks); break;
      case 2: schedule = binomial_bcast(nranks, root, count); break;
      case 3: schedule = chain_bcast(nranks, root, count, chunks); break;
      case 4:
        schedule = hierarchical_reduce(nranks, count, chain, lower, upper, chunks);
        break;
      case 5:
        schedule = hierarchical_bcast(nranks, count, chain, lower, upper, chunks);
        break;
      case 6:
        schedule = knomial_reduce(nranks, root, count,
                                  2 + static_cast<int>(rng.below(6)));
        break;
      default:
        schedule = knomial_bcast(nranks, root, count,
                                 2 + static_cast<int>(rng.below(6)));
        break;
    }
    ASSERT_EQ(check_semantics(schedule), "")
        << schedule.name << " P=" << nranks << " count=" << count << " chain=" << chain
        << " chunks=" << chunks << " root=" << root;
  }
}

TEST_P(ScheduleFuzz, RandomCompositionsAllCorrect) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 15; ++trial) {
    const int nranks = 2 + static_cast<int>(rng.below(40));
    const std::size_t count = static_cast<std::size_t>(nranks) + rng.below(500);
    const int chain = 1 + static_cast<int>(rng.below(8));
    Schedule schedule;
    if (rng.below(2)) {
      schedule = reduce_bcast_allreduce(nranks, count, chain, LevelAlgo::Chain,
                                        LevelAlgo::Binomial,
                                        1 + static_cast<int>(rng.below(8)));
    } else {
      schedule = three_level_reduce(nranks, count, chain,
                                    1 + static_cast<int>(rng.below(5)),
                                    1 + static_cast<int>(rng.below(8)));
    }
    ASSERT_EQ(check_semantics(schedule), "")
        << schedule.name << " P=" << nranks << " count=" << count;
  }
}

TEST_P(ScheduleFuzz, SimulatedLatencyAlwaysPositiveAndDeterministic) {
  util::Rng rng(GetParam() ^ 0x5eed);
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  for (int trial = 0; trial < 8; ++trial) {
    const int nranks = 2 + static_cast<int>(rng.below(60));
    const std::size_t count = 16 + rng.below(1 << 16);
    const Schedule schedule = hierarchical_reduce(
        nranks, count, 1 + static_cast<int>(rng.below(16)), LevelAlgo::Chain,
        LevelAlgo::Binomial, 1 + static_cast<int>(rng.below(16)));
    const auto a = simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr());
    const auto b = simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr());
    EXPECT_GT(a.root_finish, 0);
    EXPECT_EQ(a.root_finish, b.root_finish);
    EXPECT_EQ(a.events, b.events);
  }
}

TEST_P(ScheduleFuzz, ThreadedExecutionMatchesOracle) {
  util::Rng rng(GetParam() ^ 0x7ead);
  for (int trial = 0; trial < 4; ++trial) {
    const int nranks = 2 + static_cast<int>(rng.below(10));
    const std::size_t count = 32 + rng.below(256);
    const Schedule schedule = hierarchical_reduce(
        nranks, count, 1 + static_cast<int>(rng.below(4)), LevelAlgo::Chain,
        LevelAlgo::Binomial, 1 + static_cast<int>(rng.below(4)));

    std::vector<std::vector<float>> inputs(static_cast<std::size_t>(nranks));
    for (auto& input : inputs) {
      input.resize(count);
      for (float& v : input) v = static_cast<float>(rng.below(16)) * 0.25f;
    }
    const LogicalResult oracle = run_logical(schedule, inputs);
    ASSERT_TRUE(oracle.ok) << oracle.error;

    std::vector<std::vector<float>> threaded = inputs;
    std::vector<std::span<float>> spans;
    for (auto& v : threaded) spans.emplace_back(v);
    run_threaded(schedule, spans);

    // Same schedule => same per-element addition order => identical floats.
    EXPECT_EQ(threaded[0], oracle.final_buffers[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace scaffe::coll
