#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "sim/trigger.h"

namespace scaffe::sim {
namespace {

Task delayer(Engine& eng, TimeNs dt, TimeNs& finished_at) {
  co_await eng.delay(dt);
  finished_at = eng.now();
}

TEST(Engine, DelayAdvancesTime) {
  Engine eng;
  TimeNs finished = -1;
  eng.spawn(delayer(eng, 100, finished));
  eng.run();
  EXPECT_EQ(finished, 100);
  EXPECT_EQ(eng.now(), 100);
}

TEST(Engine, ZeroDelayRuns) {
  Engine eng;
  TimeNs finished = -1;
  eng.spawn(delayer(eng, 0, finished));
  eng.run();
  EXPECT_EQ(finished, 0);
}

Task sequencer(Engine& eng, std::vector<int>& order, int id, TimeNs dt) {
  co_await eng.delay(dt);
  order.push_back(id);
}

TEST(Engine, EventsOrderedByTime) {
  Engine eng;
  std::vector<int> order;
  eng.spawn(sequencer(eng, order, 3, 30));
  eng.spawn(sequencer(eng, order, 1, 10));
  eng.spawn(sequencer(eng, order, 2, 20));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) eng.spawn(sequencer(eng, order, i, 42));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

Task nested_child(Engine& eng) { co_await eng.delay(7); }

Task nested_parent(Engine& eng, TimeNs& end) {
  co_await eng.delay(3);
  co_await nested_child(eng);
  end = eng.now();
}

TEST(Engine, ChildTaskJoins) {
  Engine eng;
  TimeNs end = -1;
  eng.spawn(nested_parent(eng, end));
  eng.run();
  EXPECT_EQ(end, 10);
}

Task thrower(Engine& eng) {
  co_await eng.delay(1);
  throw std::runtime_error("boom");
}

TEST(Engine, RootExceptionPropagates) {
  Engine eng;
  eng.spawn(thrower(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

Task catcher(Engine& eng, bool& caught) {
  try {
    co_await thrower(eng);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Engine, ChildExceptionCatchableInParent) {
  Engine eng;
  bool caught = false;
  eng.spawn(catcher(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine eng;
  TimeNs a = -1;
  TimeNs b = -1;
  eng.spawn(delayer(eng, 10, a));
  eng.spawn(delayer(eng, 100, b));
  EXPECT_FALSE(eng.run_until(50));
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, -1);
  EXPECT_TRUE(eng.run_until(1000));
  EXPECT_EQ(b, 100);
}

TEST(Engine, DeterministicEventCount) {
  auto run_once = [] {
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) eng.spawn(sequencer(eng, order, i, (i * 7) % 5));
    eng.run();
    return eng.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

Task chan_producer(Engine& eng, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await eng.delay(10);
    ch.send(i);
  }
}

Task chan_consumer(Engine& eng, Channel<int>& ch, int n, std::vector<TimeNs>& stamps) {
  for (int i = 0; i < n; ++i) {
    const int v = co_await ch.recv();
    EXPECT_EQ(v, i);
    stamps.push_back(eng.now());
  }
}

TEST(Channel, DeliversInOrderAtSendTime) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<TimeNs> stamps;
  eng.spawn(chan_producer(eng, ch, 3));
  eng.spawn(chan_consumer(eng, ch, 3, stamps));
  eng.run();
  EXPECT_EQ(stamps, (std::vector<TimeNs>{10, 20, 30}));
}

TEST(Channel, TryRecvNonBlocking) {
  Engine eng;
  Channel<int> ch(eng);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(5);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(Channel, BuffersWhenNoReceiver) {
  Engine eng;
  Channel<int> ch(eng);
  ch.send(0);
  ch.send(1);
  EXPECT_EQ(ch.pending(), 2u);
  std::vector<TimeNs> stamps;
  eng.spawn(chan_consumer(eng, ch, 2, stamps));
  eng.run();
  EXPECT_EQ(stamps, (std::vector<TimeNs>{0, 0}));
}

Task acquire_hold(Engine& eng, Resource& res, TimeNs hold, std::vector<TimeNs>& starts) {
  co_await res.acquire();
  starts.push_back(eng.now());
  co_await eng.delay(hold);
  res.release();
}

TEST(Resource, SerializesExclusiveHolders) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<TimeNs> starts;
  for (int i = 0; i < 3; ++i) eng.spawn(acquire_hold(eng, res, 10, starts));
  eng.run();
  EXPECT_EQ(starts, (std::vector<TimeNs>{0, 10, 20}));
  EXPECT_EQ(res.available(), 1);
}

TEST(Resource, CapacityTwoAllowsPairs) {
  Engine eng;
  Resource res(eng, 2);
  std::vector<TimeNs> starts;
  for (int i = 0; i < 4; ++i) eng.spawn(acquire_hold(eng, res, 10, starts));
  eng.run();
  EXPECT_EQ(starts, (std::vector<TimeNs>{0, 0, 10, 10}));
}

Task acquire_amount(Engine& eng, Resource& res, std::int64_t amount, TimeNs hold,
                    std::vector<int>& order, int id) {
  co_await res.acquire(amount);
  order.push_back(id);
  co_await eng.delay(hold);
  res.release(amount);
}

TEST(Resource, FifoPreventsStarvation) {
  Engine eng;
  Resource res(eng, 4);
  std::vector<int> order;
  // Big request queued first must not be starved by later small ones.
  eng.spawn(acquire_amount(eng, res, 4, 10, order, 0));
  eng.spawn(acquire_amount(eng, res, 4, 10, order, 1));
  eng.spawn(acquire_amount(eng, res, 1, 10, order, 2));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

Task scoped_holder(Engine& eng, Resource& res, TimeNs hold) {
  co_await res.acquire(3);
  ScopedHold guard(res, 3);
  co_await eng.delay(hold);
  // guard releases on scope exit
}

TEST(Resource, ScopedHoldReleases) {
  Engine eng;
  Resource res(eng, 3);
  eng.spawn(scoped_holder(eng, res, 5));
  eng.run();
  EXPECT_EQ(res.available(), 3);
}

Task trigger_waiter(Engine& eng, Trigger& trigger, TimeNs& woke) {
  co_await trigger.wait();
  woke = eng.now();
}

Task trigger_firer(Engine& eng, Trigger& trigger, TimeNs at) {
  co_await eng.delay(at);
  trigger.fire();
}

TEST(Trigger, WakesAllWaiters) {
  Engine eng;
  Trigger trigger(eng);
  TimeNs w1 = -1;
  TimeNs w2 = -1;
  eng.spawn(trigger_waiter(eng, trigger, w1));
  eng.spawn(trigger_waiter(eng, trigger, w2));
  eng.spawn(trigger_firer(eng, trigger, 42));
  eng.run();
  EXPECT_EQ(w1, 42);
  EXPECT_EQ(w2, 42);
}

TEST(Trigger, WaitAfterFirePassesImmediately) {
  Engine eng;
  Trigger trigger(eng);
  trigger.fire();
  TimeNs woke = -1;
  eng.spawn(trigger_waiter(eng, trigger, woke));
  eng.run();
  EXPECT_EQ(woke, 0);
}

Task latch_counter(Engine& eng, Latch& latch, TimeNs at) {
  co_await eng.delay(at);
  latch.count_down();
}

Task latch_waiter(Engine& eng, Latch& latch, TimeNs& woke) {
  co_await latch.wait();
  woke = eng.now();
}

TEST(Latch, ReleasesAtZero) {
  Engine eng;
  Latch latch(eng, 3);
  TimeNs woke = -1;
  eng.spawn(latch_waiter(eng, latch, woke));
  eng.spawn(latch_counter(eng, latch, 10));
  eng.spawn(latch_counter(eng, latch, 20));
  eng.spawn(latch_counter(eng, latch, 30));
  eng.run();
  EXPECT_EQ(woke, 30);
  EXPECT_EQ(latch.remaining(), 0);
}

TEST(Latch, ZeroCountStartsFired) {
  Engine eng;
  Latch latch(eng, 0);
  TimeNs woke = -1;
  eng.spawn(latch_waiter(eng, latch, woke));
  eng.run();
  EXPECT_EQ(woke, 0);
}

}  // namespace
}  // namespace scaffe::sim
