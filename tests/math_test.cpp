// Tests for the blocked SGEMM/GEMV math core and the thread-count
// determinism guarantees of the parallel functional substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dl/math.h"
#include "dl/net.h"
#include "gpu/kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace scaffe {
namespace {

std::vector<float> random_vec(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> out(count);
  for (float& v : out) v = static_cast<float>(rng.normal());
  return out;
}

/// Naive triple-loop reference, double accumulation.
void naive_gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
                const std::vector<float>& a, const std::vector<float>& b, float beta,
                std::vector<float>& c) {
  auto a_at = [&](int i, int p) { return trans_a ? a[static_cast<std::size_t>(p) * m + i]
                                                 : a[static_cast<std::size_t>(i) * k + p]; };
  auto b_at = [&](int p, int j) { return trans_b ? b[static_cast<std::size_t>(j) * k + p]
                                                 : b[static_cast<std::size_t>(p) * n + j]; };
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += static_cast<double>(a_at(i, p)) * b_at(p, j);
      const std::size_t idx = static_cast<std::size_t>(i) * n + j;
      const double base = beta == 0.0f ? 0.0 : static_cast<double>(beta) * c[idx];
      c[idx] = static_cast<float>(base + static_cast<double>(alpha) * acc);
    }
  }
}

struct GemmShape {
  int m, n, k;
};

// Odd shapes straddling the tile sizes (128-column/row panels, 4-wide
// register blocking), including non-multiples on every axis.
const GemmShape kShapes[] = {{1, 1, 1},   {3, 5, 7},    {17, 9, 33},  {32, 32, 32},
                             {33, 65, 129}, {64, 48, 257}, {5, 130, 131}, {129, 7, 4}};

TEST(SgemmTest, MatchesNaiveAcrossShapesAndTransposes) {
  util::ThreadPool::set_global_threads(4);
  for (const GemmShape& shape : kShapes) {
    const auto [m, n, k] = shape;
    for (const bool trans_a : {false, true}) {
      for (const bool trans_b : {false, true}) {
        const auto a = random_vec(static_cast<std::size_t>(m) * k, 11);
        const auto b = random_vec(static_cast<std::size_t>(k) * n, 23);
        std::vector<float> c = random_vec(static_cast<std::size_t>(m) * n, 37);
        std::vector<float> expect = c;
        dl::math::sgemm(trans_a, trans_b, m, n, k, 1.25f, a.data(), b.data(), 0.5f, c.data());
        naive_gemm(trans_a, trans_b, m, n, k, 1.25f, a, b, 0.5f, expect);
        for (std::size_t i = 0; i < c.size(); ++i) {
          ASSERT_NEAR(c[i], expect[i], 1e-3f)
              << "m=" << m << " n=" << n << " k=" << k << " ta=" << trans_a
              << " tb=" << trans_b << " i=" << i;
        }
      }
    }
  }
}

TEST(SgemmTest, BetaZeroOverwritesWithoutReading) {
  const int m = 9, n = 13, k = 5;
  const auto a = random_vec(static_cast<std::size_t>(m) * k, 3);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, 5);
  // Garbage (NaN) in C must not leak through beta == 0.
  std::vector<float> c(static_cast<std::size_t>(m) * n, std::nanf(""));
  std::vector<float> expect(c.size(), 0.0f);
  dl::math::sgemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  naive_gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, expect);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_NEAR(c[i], expect[i], 1e-3f) << i;
}

TEST(GemvTest, MatchesNaiveBothOrientations) {
  const int m = 37, n = 129;
  const auto a = random_vec(static_cast<std::size_t>(m) * n, 7);
  const auto x = random_vec(static_cast<std::size_t>(n), 9);
  const auto xt = random_vec(static_cast<std::size_t>(m), 13);

  std::vector<float> y = random_vec(static_cast<std::size_t>(m), 17);
  std::vector<float> y_ref = y;
  dl::math::gemv(false, m, n, 2.0f, a.data(), x.data(), 0.5f, y.data());
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += static_cast<double>(a[static_cast<std::size_t>(i) * n + j]) * x[static_cast<std::size_t>(j)];
    y_ref[static_cast<std::size_t>(i)] =
        static_cast<float>(0.5 * y_ref[static_cast<std::size_t>(i)] + 2.0 * acc);
  }
  for (int i = 0; i < m; ++i) ASSERT_NEAR(y[static_cast<std::size_t>(i)], y_ref[static_cast<std::size_t>(i)], 1e-3f) << i;

  std::vector<float> z(static_cast<std::size_t>(n), 1.0f);
  std::vector<float> z_ref = z;
  dl::math::gemv(true, m, n, 1.0f, a.data(), xt.data(), 1.0f, z.data());
  for (int j = 0; j < n; ++j) {
    double acc = 0.0;
    for (int i = 0; i < m; ++i) acc += static_cast<double>(a[static_cast<std::size_t>(i) * n + j]) * xt[static_cast<std::size_t>(i)];
    z_ref[static_cast<std::size_t>(j)] += static_cast<float>(acc);
  }
  for (int j = 0; j < n; ++j) ASSERT_NEAR(z[static_cast<std::size_t>(j)], z_ref[static_cast<std::size_t>(j)], 1e-3f) << j;
}

// --- direct vs im2col-GEMM conv parity (multithreaded pool active) ----------

dl::NetSpec conv_net(dl::ConvImpl impl) {
  dl::NetSpec spec;
  spec.name = "math_conv";
  spec.inputs = {{"data", {6, 3, 11, 11}}, {"label", {6}}};
  dl::LayerSpec conv = dl::LayerSpec::conv("c", "data", "c", 5, 3, 1, 1);
  conv.conv_impl = impl;
  spec.layers = {std::move(conv), dl::LayerSpec::softmax_loss("loss", "c", "label", "loss")};
  return spec;
}

void load_inputs(dl::Net& net, std::uint64_t seed) {
  util::Rng rng(seed);
  for (float& v : net.blob("data").data()) v = static_cast<float>(rng.normal());
  for (float& v : net.blob("label").data()) v = static_cast<float>(rng.below(5));
}

TEST(ConvParityTest, DirectAndGemmAgreeForwardBackward) {
  util::ThreadPool::set_global_threads(4);
  dl::Net direct(conv_net(dl::ConvImpl::Direct), 21);
  dl::Net gemm(conv_net(dl::ConvImpl::Im2colGemm), 21);
  load_inputs(direct, 5);
  load_inputs(gemm, 5);
  for (dl::Net* net : {&direct, &gemm}) {
    net->zero_param_diffs();
    net->forward();
    net->backward();
  }
  const auto ya = direct.blob("c").data();
  const auto yb = gemm.blob("c").data();
  ASSERT_EQ(ya.size(), yb.size());
  for (std::size_t i = 0; i < ya.size(); ++i) ASSERT_NEAR(ya[i], yb[i], 1e-4f) << "y " << i;

  std::vector<float> ga(direct.param_count());
  std::vector<float> gb(gemm.param_count());
  direct.flatten_diffs(ga);
  gemm.flatten_diffs(gb);
  for (std::size_t i = 0; i < ga.size(); ++i) ASSERT_NEAR(ga[i], gb[i], 1e-4f) << "dp " << i;

  const auto dxa = direct.blob("data").diff();
  const auto dxb = gemm.blob("data").diff();
  for (std::size_t i = 0; i < dxa.size(); ++i) ASSERT_NEAR(dxa[i], dxb[i], 1e-4f) << "dx " << i;
}

// --- thread-count determinism ----------------------------------------------

dl::NetSpec deterministic_net() {
  dl::NetSpec spec;
  spec.name = "det";
  spec.inputs = {{"data", {8, 3, 13, 13}}, {"label", {8}}};
  spec.layers = {
      dl::LayerSpec::conv("conv1", "data", "conv1", 8, 3, 1, 1),
      dl::LayerSpec::relu("relu1", "conv1", "conv1r"),
      dl::LayerSpec::pool("pool1", "conv1r", "pool1", 2, 2),
      dl::LayerSpec::inner_product("ip1", "pool1", "ip1", 10),
      dl::LayerSpec::softmax_loss("loss", "ip1", "label", "loss"),
  };
  return spec;
}

struct NetRun {
  float loss;
  std::vector<float> output;
  std::vector<float> param_diffs;
  std::vector<float> input_diff;
};

NetRun run_net_at(int threads) {
  util::ThreadPool::set_global_threads(threads);
  dl::Net net(deterministic_net(), 42);
  load_inputs(net, 9);
  for (float& v : net.blob("label").data()) v = std::min(v, 9.0f);
  net.zero_param_diffs();
  NetRun run;
  run.loss = net.forward();
  net.backward();
  const auto y = net.blob("ip1").data();
  run.output.assign(y.begin(), y.end());
  run.param_diffs.resize(net.param_count());
  net.flatten_diffs(run.param_diffs);
  const auto dx = net.blob("data").diff();
  run.input_diff.assign(dx.begin(), dx.end());
  return run;
}

TEST(DeterminismTest, NetForwardBackwardBitwiseIdenticalAcrossThreadCounts) {
  const NetRun one = run_net_at(1);
  const NetRun eight = run_net_at(8);
  util::ThreadPool::set_global_threads(1);
  EXPECT_EQ(one.loss, eight.loss);
  EXPECT_EQ(one.output, eight.output);          // bitwise: no tolerance
  EXPECT_EQ(one.param_diffs, eight.param_diffs);
  EXPECT_EQ(one.input_diff, eight.input_diff);
}

TEST(DeterminismTest, ParallelKernelsBitwiseIdenticalAcrossThreadCounts) {
  const std::size_t count = (std::size_t{1} << 18) + 353;  // above threshold, odd tail
  const auto grad = random_vec(count, 31);

  auto run = [&](int threads) {
    util::ThreadPool::set_global_threads(threads);
    std::vector<float> param = random_vec(count, 41);
    std::vector<float> momentum = random_vec(count, 43);
    gpu::sgd_update(param, grad, momentum, 0.01f, 0.9f, 0.0005f);
    gpu::axpy(0.5f, grad, param);
    gpu::scale(0.999f, param);
    return param;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  util::ThreadPool::set_global_threads(1);
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnceAndPropagatesExceptions) {
  util::ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];  // chunks are disjoint
  });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1) << i;

  EXPECT_THROW(pool.parallel_for(0, 100, 10,
                                 [](std::size_t begin, std::size_t) {
                                   if (begin == 50) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);

  // Nested calls run inline instead of deadlocking on the pool.
  std::vector<int> nested(64, 0);
  pool.parallel_for(0, 8, 1, [&](std::size_t outer_begin, std::size_t) {
    pool.parallel_for(0, 8, 1, [&](std::size_t inner_begin, std::size_t) {
      ++nested[outer_begin * 8 + inner_begin];
    });
  });
  for (std::size_t i = 0; i < nested.size(); ++i) ASSERT_EQ(nested[i], 1) << i;
}

}  // namespace
}  // namespace scaffe
