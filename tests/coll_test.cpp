#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "coll/algorithms.h"
#include "coll/exec_policy.h"
#include "coll/logical_executor.h"
#include "coll/program.h"
#include "coll/sim_executor.h"
#include "coll/thread_executor.h"
#include "coll/tuner.h"
#include "net/cluster.h"
#include "util/bytes.h"

namespace scaffe::coll {
namespace {

using util::kMiB;

// ---------------------------------------------------------------------------
// Chunk partitioning
// ---------------------------------------------------------------------------

TEST(PartitionChunks, ExactDivision) {
  const auto parts = partition_chunks(100, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& [offset, size] : parts) EXPECT_EQ(size, 25u);
  EXPECT_EQ(parts[3].first, 75u);
}

TEST(PartitionChunks, Remainder) {
  const auto parts = partition_chunks(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].second, 4u);
  EXPECT_EQ(parts[1].second, 3u);
  EXPECT_EQ(parts[2].second, 3u);
  // Contiguity and full coverage.
  std::size_t total = 0;
  std::size_t expect_offset = 0;
  for (const auto& [offset, size] : parts) {
    EXPECT_EQ(offset, expect_offset);
    expect_offset += size;
    total += size;
  }
  EXPECT_EQ(total, 10u);
}

TEST(PartitionChunks, MorePartsThanElementsClamps) {
  const auto parts = partition_chunks(3, 16);
  EXPECT_EQ(parts.size(), 3u);
}

TEST(PartitionChunks, OnePart) {
  const auto parts = partition_chunks(7, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], (std::pair<std::size_t, std::size_t>{0, 7}));
}

// ---------------------------------------------------------------------------
// Semantic correctness of every generator, swept over P (property tests)
// ---------------------------------------------------------------------------

class FlatAlgoSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlatAlgoSweep, BinomialReduceCorrect) {
  const int p = GetParam();
  EXPECT_EQ(check_semantics(binomial_reduce(p, 0, 100)), "");
}

TEST_P(FlatAlgoSweep, BinomialReduceNonzeroRoot) {
  const int p = GetParam();
  EXPECT_EQ(check_semantics(binomial_reduce(p, p / 2, 100)), "");
  EXPECT_EQ(check_semantics(binomial_reduce(p, p - 1, 33)), "");
}

TEST_P(FlatAlgoSweep, ChainReduceCorrect) {
  const int p = GetParam();
  for (int chunks : {1, 3, 8}) {
    EXPECT_EQ(check_semantics(chain_reduce(p, 0, 100, chunks)), "") << "chunks=" << chunks;
  }
}

TEST_P(FlatAlgoSweep, ChainReduceNonzeroRoot) {
  const int p = GetParam();
  EXPECT_EQ(check_semantics(chain_reduce(p, p - 1, 64, 4)), "");
}

TEST_P(FlatAlgoSweep, BinomialBcastCorrect) {
  const int p = GetParam();
  EXPECT_EQ(check_semantics(binomial_bcast(p, 0, 100)), "");
  EXPECT_EQ(check_semantics(binomial_bcast(p, p / 2, 100)), "");
}

TEST_P(FlatAlgoSweep, ChainBcastCorrect) {
  const int p = GetParam();
  for (int chunks : {1, 4}) {
    EXPECT_EQ(check_semantics(chain_bcast(p, 0, 100, chunks)), "");
  }
}

TEST_P(FlatAlgoSweep, RingAllreduceCorrect) {
  const int p = GetParam();
  EXPECT_EQ(check_semantics(ring_allreduce(p, 128)), "");
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, FlatAlgoSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 32, 40));

struct HierCase {
  int nranks;
  int chain_size;
  LevelAlgo lower;
  LevelAlgo upper;
};

class HierSweep : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierSweep, ReduceCorrect) {
  const auto& c = GetParam();
  const Schedule s = hierarchical_reduce(c.nranks, 256, c.chain_size, c.lower, c.upper, 4);
  EXPECT_EQ(check_semantics(s), "") << s.name;
}

TEST_P(HierSweep, BcastCorrect) {
  const auto& c = GetParam();
  const Schedule s = hierarchical_bcast(c.nranks, 256, c.chain_size, c.lower, c.upper, 4);
  EXPECT_EQ(check_semantics(s), "") << s.name;
}

TEST_P(HierSweep, ReduceBcastAllreduceCorrect) {
  const auto& c = GetParam();
  const Schedule s =
      reduce_bcast_allreduce(c.nranks, 256, c.chain_size, c.lower, c.upper, 4);
  EXPECT_EQ(check_semantics(s), "") << s.name;
}

INSTANTIATE_TEST_SUITE_P(
    Combos, HierSweep,
    ::testing::Values(HierCase{8, 4, LevelAlgo::Chain, LevelAlgo::Binomial},
                      HierCase{8, 4, LevelAlgo::Chain, LevelAlgo::Chain},
                      HierCase{16, 4, LevelAlgo::Chain, LevelAlgo::Binomial},
                      HierCase{16, 8, LevelAlgo::Chain, LevelAlgo::Chain},
                      HierCase{17, 4, LevelAlgo::Chain, LevelAlgo::Binomial},  // ragged
                      HierCase{30, 8, LevelAlgo::Chain, LevelAlgo::Chain},     // ragged
                      HierCase{32, 8, LevelAlgo::Binomial, LevelAlgo::Binomial},
                      HierCase{64, 16, LevelAlgo::Chain, LevelAlgo::Binomial},
                      HierCase{40, 2, LevelAlgo::Chain, LevelAlgo::Chain},
                      HierCase{9, 3, LevelAlgo::Binomial, LevelAlgo::Chain}));

TEST(Schedules, SingleRankIsEmpty) {
  EXPECT_EQ(binomial_reduce(1, 0, 10).total_ops(), 0u);
  EXPECT_EQ(chain_reduce(1, 0, 10, 4).total_ops(), 0u);
  EXPECT_EQ(hierarchical_reduce(1, 10, 8, LevelAlgo::Chain, LevelAlgo::Binomial, 4).total_ops(),
            0u);
}

TEST(Schedules, StructureValidatorCatchesBadPeer) {
  Schedule s;
  s.nranks = 2;
  s.count = 4;
  s.programs.resize(2);
  s.programs[0].send(5, 0, 0, 4);
  EXPECT_NE(validate_structure(s), "");
}

TEST(Schedules, StructureValidatorCatchesUnmatchedSend) {
  Schedule s;
  s.nranks = 2;
  s.count = 4;
  s.programs.resize(2);
  s.programs[0].send(1, 0, 0, 4);
  EXPECT_NE(validate_structure(s), "");
}

TEST(Schedules, StructureValidatorCatchesRangeOverflow) {
  Schedule s;
  s.nranks = 2;
  s.count = 4;
  s.programs.resize(2);
  s.programs[0].send(1, 0, 2, 4);  // [2, 6) > 4
  s.programs[1].recv(0, 0, 2, 4);
  EXPECT_NE(validate_structure(s), "");
}

TEST(Schedules, LogicalExecutorDetectsDeadlock) {
  // Two ranks that both receive first: structurally matched, but circular.
  Schedule s;
  s.nranks = 2;
  s.count = 1;
  s.programs.resize(2);
  s.programs[0].recv(1, 0, 0, 1);
  s.programs[0].send(1, 1, 0, 1);
  s.programs[1].recv(0, 1, 0, 1);
  s.programs[1].send(0, 0, 0, 1);
  EXPECT_EQ(validate_structure(s), "");
  const auto result = run_logical(s, {{1.0f}, {2.0f}});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("deadlock"), std::string::npos);
}

TEST(Schedules, BytesSentAccounting) {
  const Schedule s = binomial_reduce(4, 0, 100);
  // Ranks 1,2,3 each send 100 floats once.
  EXPECT_EQ(s.total_bytes_sent(), 3 * 100 * sizeof(float));
}

// ---------------------------------------------------------------------------
// Threaded executor agrees with the logical oracle
// ---------------------------------------------------------------------------

class ThreadedSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedSweep, ReduceMatchesSerialSum) {
  const int p = GetParam();
  const std::size_t count = 257;  // non-power-of-two on purpose
  const Schedule schedule = hierarchical_reduce(
      p, count, 4, LevelAlgo::Chain, LevelAlgo::Binomial, 3);

  std::vector<std::vector<float>> data(static_cast<std::size_t>(p));
  std::vector<std::span<float>> spans;
  std::vector<double> expected(count, 0.0);
  for (int r = 0; r < p; ++r) {
    auto& v = data[static_cast<std::size_t>(r)];
    v.resize(count);
    for (std::size_t e = 0; e < count; ++e) {
      v[e] = static_cast<float>((r + 1) * 0.25) + static_cast<float>(e % 7);
      expected[e] += v[e];
    }
    spans.emplace_back(v);
  }

  run_threaded(schedule, spans);
  for (std::size_t e = 0; e < count; ++e) {
    EXPECT_NEAR(data[0][e], expected[e], 1e-3) << "element " << e;
  }
}

TEST_P(ThreadedSweep, BcastDeliversEverywhere) {
  const int p = GetParam();
  const std::size_t count = 64;
  const Schedule schedule = binomial_bcast(p, 0, count);

  std::vector<std::vector<float>> data(static_cast<std::size_t>(p));
  std::vector<std::span<float>> spans;
  for (int r = 0; r < p; ++r) {
    data[static_cast<std::size_t>(r)].assign(count, r == 0 ? 42.0f : -1.0f);
    spans.emplace_back(data[static_cast<std::size_t>(r)]);
  }
  run_threaded(schedule, spans);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(data[static_cast<std::size_t>(r)][count / 2], 42.0f) << "rank " << r;
  }
}

TEST_P(ThreadedSweep, RingAllreduceEveryRankHasSum) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  const std::size_t count = 96;
  const Schedule schedule = ring_allreduce(p, count);

  std::vector<std::vector<float>> data(static_cast<std::size_t>(p));
  std::vector<std::span<float>> spans;
  for (int r = 0; r < p; ++r) {
    data[static_cast<std::size_t>(r)].assign(count, 1.0f);
    spans.emplace_back(data[static_cast<std::size_t>(r)]);
  }
  run_threaded(schedule, spans);
  for (int r = 0; r < p; ++r) {
    for (std::size_t e = 0; e < count; ++e) {
      EXPECT_EQ(data[static_cast<std::size_t>(r)][e], static_cast<float>(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, ThreadedSweep, ::testing::Values(1, 2, 3, 4, 8, 12, 16));

// ---------------------------------------------------------------------------
// DES executor: determinism, monotonicity, and the Section 5 cost model
// ---------------------------------------------------------------------------

TEST(SimExecutor, Deterministic) {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const Schedule schedule = hierarchical_reduce(64, 4 * kMiB / 4, 16, LevelAlgo::Chain,
                                                LevelAlgo::Binomial, 16);
  const auto a = simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr());
  const auto b = simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr());
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.rank_finish, b.rank_finish);
}

TEST(SimExecutor, LatencyMonotonicInMessageSize) {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  util::TimeNs prev = 0;
  for (std::size_t bytes = 1024; bytes <= 64 * kMiB; bytes *= 8) {
    const Schedule schedule = binomial_reduce(32, 0, bytes / 4);
    const auto r = simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr());
    EXPECT_GT(r.root_finish, prev) << bytes;
    prev = r.root_finish;
  }
}

TEST(SimExecutor, SingleRankFinishesInstantly) {
  const auto r = simulate_schedule(binomial_reduce(1, 0, 1024), net::ClusterSpec::cluster_a(),
                                   ExecPolicy::hr_gdr());
  EXPECT_EQ(r.total, 0);
}

TEST(SimExecutor, Section5ChainFormulaHolds) {
  // T(CC) = (n + P - 2) * t(c): doubling chunks at fixed size should approach
  // t(b) (serialization-bound), while few chunks cost ~ (P-1) extra stages.
  net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  cluster.mpi_overhead = 0;             // isolate the bandwidth term
  cluster.gpu.kernel_launch = 0;
  const int p = 8;
  const std::size_t count = 32 * kMiB / 4;

  const auto t2 = simulate_schedule(chain_reduce(p, 0, count, 2), cluster,
                                    ExecPolicy::hr_gdr());
  const auto t32 = simulate_schedule(chain_reduce(p, 0, count, 32), cluster,
                                     ExecPolicy::hr_gdr());
  // (2 + 6)/2 = 4.0 "chunk times" vs (32 + 6)/32 = 1.19: expect ~3.4x gap.
  const double ratio = static_cast<double>(t2.root_finish) / static_cast<double>(t32.root_finish);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(SimExecutor, ChainBeatsBinomialForLargeBuffersSmallP) {
  // Section 5: "for small P and large b, T(CC) << T(Bin)".
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 64 * kMiB / 4;
  const int p = 8;
  const auto chain = simulate_schedule(chain_reduce(p, 0, count, 32), cluster,
                                       ExecPolicy::hr_gdr());
  const auto bin = simulate_schedule(binomial_reduce(p, 0, count), cluster,
                                     ExecPolicy::hr_gdr());
  EXPECT_LT(chain.root_finish, bin.root_finish);
}

TEST(SimExecutor, BinomialBeatsChainForSmallBuffersLargeP) {
  // Section 5: "for large P and small b, T(CC) >> T(Bin)".
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 64;  // 256 B
  const int p = 64;
  const auto chain = simulate_schedule(chain_reduce(p, 0, count, 4), cluster,
                                       ExecPolicy::hr_gdr());
  const auto bin = simulate_schedule(binomial_reduce(p, 0, count), cluster,
                                     ExecPolicy::hr_gdr());
  EXPECT_LT(bin.root_finish, chain.root_finish);
}

TEST(SimExecutor, HierarchicalBeatsFlatAtScaleForLargeMessages) {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 64 * kMiB / 4;
  const int p = 160;
  const auto flat = simulate_schedule(binomial_reduce(p, 0, count), cluster,
                                      ExecPolicy::hr_gdr());
  const auto hier =
      simulate_schedule(hierarchical_reduce(p, count, 16, LevelAlgo::Chain,
                                            LevelAlgo::Binomial, 16),
                        cluster, ExecPolicy::hr_gdr());
  EXPECT_LT(hier.root_finish, flat.root_finish);
}

TEST(SimExecutor, OpenMpiPolicyFarSlowerAtLargeSizes) {
  // The Figure 12 gap: the segmented synchronous-staging CPU-reduce baseline
  // collapses at DL message sizes.
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const std::size_t count = 64 * kMiB / 4;
  const Schedule schedule = binomial_reduce(64, 0, count);
  const auto ours = simulate_schedule(
      hierarchical_reduce(64, count, 16, LevelAlgo::Chain, LevelAlgo::Binomial, 16), cluster,
      ExecPolicy::hr_gdr());
  const auto ompi = simulate_schedule(schedule, cluster, ExecPolicy::openmpi());
  EXPECT_GT(ompi.root_finish, 20 * ours.root_finish);
}

TEST(SimExecutor, AutoStagingNeverWorseThanEither) {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const net::CostModel cost(cluster);
  for (std::size_t bytes : {std::size_t{64}, 64 * util::kKiB, 16 * kMiB}) {
    const auto staging =
        resolve_staging(ExecPolicy::hr_gdr(), cost, net::Path::InterNode, bytes);
    const auto chosen = cost.msg_time(bytes, net::Path::InterNode, staging);
    EXPECT_LE(chosen, cost.msg_time(bytes, net::Path::InterNode, net::Staging::Gdr));
    EXPECT_LE(chosen,
              cost.msg_time(bytes, net::Path::InterNode, net::Staging::HostPipelined));
  }
}

// ---------------------------------------------------------------------------
// Tuner
// ---------------------------------------------------------------------------

TEST(Tuner, TableCoversAllSizesAndIsOrdered) {
  const auto table = hr_tune(net::ClusterSpec::cluster_a(), 32, ExecPolicy::hr_gdr());
  ASSERT_FALSE(table.empty());
  std::size_t prev = 0;
  for (const auto& entry : table.entries()) {
    EXPECT_GT(entry.max_bytes, prev);
    prev = entry.max_bytes;
  }
  EXPECT_EQ(table.entries().back().max_bytes, std::numeric_limits<std::size_t>::max());
}

TEST(Tuner, SmallMessagesPreferBinomialLargePreferChainLower) {
  const auto table = hr_tune(net::ClusterSpec::cluster_a(), 160, ExecPolicy::hr_gdr());
  const auto& small = table.choose(4);
  const auto& large = table.choose(256 * kMiB);
  // The exact winner is calibration-dependent, but the paper's trend must
  // hold: the large-message winner pipelines (chain lower level), and it
  // must differ from a flat binomial.
  EXPECT_FALSE(large.flat_binomial);
  EXPECT_NE(small.name, large.name);
}

TEST(Tuner, TunedNeverSlowerThanFixedCandidates) {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const ExecPolicy policy = ExecPolicy::hr_gdr();
  const int p = 64;
  const auto table = hr_tune(cluster, p, policy);
  for (std::size_t bytes : {std::size_t{1024}, kMiB, 128 * kMiB}) {
    const std::size_t count = bytes / 4;
    const auto tuned =
        simulate_schedule(hr_tuned_reduce(table, p, count), cluster, policy);
    for (const auto& candidate : default_candidates()) {
      if (!candidate.flat_binomial && !candidate.flat_chain && candidate.chain_size >= p)
        continue;
      const auto fixed =
          simulate_schedule(candidate.make_reduce(p, count), cluster, policy);
      // Allow slack: the tuned table was built on a coarse grid.
      EXPECT_LE(tuned.root_finish, fixed.root_finish * 11 / 10)
          << candidate.name << " at " << bytes;
    }
  }
}

TEST(Tuner, TunedScheduleStillCorrect) {
  const auto table = hr_tune(net::ClusterSpec::cluster_a(), 24, ExecPolicy::hr_gdr());
  for (std::size_t count : {std::size_t{64}, std::size_t{4096}, std::size_t{1 << 18}}) {
    EXPECT_EQ(check_semantics(hr_tuned_reduce(table, 24, count)), "");
  }
}

}  // namespace
}  // namespace scaffe::coll
