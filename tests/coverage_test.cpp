// Coverage for remaining thin spots: logging, cost-model additions (batch
// saturation, collective setup), model intensity metrics, policy/staging
// names, the logical executor's corruption detectors, and channel fan-in.
#include <gtest/gtest.h>

#include "coll/algorithms.h"
#include "coll/exec_policy.h"
#include "coll/logical_executor.h"
#include "coll/sim_executor.h"
#include "models/descriptors.h"
#include "net/cost_model.h"
#include "sim/channel.h"
#include "sim/engine.h"
#include "util/logging.h"

namespace scaffe {
namespace {

// --- logging -------------------------------------------------------------------

TEST(Logging, LevelGateWorks) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::Error);
  EXPECT_FALSE(util::detail::level_enabled(util::LogLevel::Debug));
  EXPECT_FALSE(util::detail::level_enabled(util::LogLevel::Info));
  EXPECT_TRUE(util::detail::level_enabled(util::LogLevel::Error));
  util::set_log_level(util::LogLevel::Trace);
  EXPECT_TRUE(util::detail::level_enabled(util::LogLevel::Debug));
  util::set_log_level(saved);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(util::level_name(util::LogLevel::Warn), "WARN");
  EXPECT_STREQ(util::level_name(util::LogLevel::Trace), "TRACE");
  EXPECT_STREQ(util::level_name(util::LogLevel::Off), "OFF");
}

TEST(Logging, MacroEmitsWithoutCrashing) {
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::Info);
  SCAFFE_LOG(Info) << "coverage ping " << 42;
  SCAFFE_LOG(Debug) << "suppressed " << 1;  // below threshold: not evaluated
  util::set_log_level(saved);
}

// --- cost model additions --------------------------------------------------------

TEST(CostModel, BatchSaturationCurve) {
  const net::GpuSpec gpu;  // half-saturation at batch 8
  EXPECT_NEAR(gpu.sustained_flops(8) / gpu.sustained_flops(), 0.5, 1e-9);
  EXPECT_GT(gpu.sustained_flops(256), 0.95 * gpu.sustained_flops());
  EXPECT_LT(gpu.sustained_flops(1), 0.2 * gpu.sustained_flops());
}

TEST(CostModel, BatchedComputeSlowerPerSampleAtTinyBatches) {
  const net::CostModel model(net::ClusterSpec::cluster_a());
  // Same total flops; the tiny batch underutilizes the device.
  EXPECT_GT(model.gpu_compute(1e9, 1), model.gpu_compute(1e9, 256));
}

TEST(CostModel, CollectiveSetupGrowsLogarithmically) {
  const net::CostModel model(net::ClusterSpec::cluster_a());
  EXPECT_EQ(model.collective_setup(1), 0);
  EXPECT_EQ(model.collective_setup(2), net::ClusterSpec::cluster_a().coll_setup);
  EXPECT_EQ(model.collective_setup(160), 8 * net::ClusterSpec::cluster_a().coll_setup);
}

TEST(CostModel, StagingNames) {
  EXPECT_STREQ(net::staging_name(net::Staging::Gdr), "GDR");
  EXPECT_STREQ(net::staging_name(net::Staging::HostPipelined), "HostPipelined");
  EXPECT_STREQ(net::staging_name(net::Staging::HostSync), "HostSync");
}

// --- model metrics ---------------------------------------------------------------

TEST(ModelDesc, CommIntensityFallsWithBatch) {
  const models::ModelDesc m = models::ModelDesc::googlenet();
  EXPECT_GT(m.comm_intensity(1), m.comm_intensity(64));
  EXPECT_GT(m.comm_intensity(64), 0.0);
}

TEST(ModelDesc, ActivationMemoryScalesModels) {
  // VGG16's activations dwarf CIFAR10-quick's — the OOM driver.
  EXPECT_GT(models::ModelDesc::vgg16().activation_bytes_per_sample(),
            50 * models::ModelDesc::cifar10_quick().activation_bytes_per_sample());
}

// --- exec policy presets -----------------------------------------------------------

TEST(ExecPolicy, PresetNames) {
  EXPECT_EQ(coll::ExecPolicy::hr_gdr().name, "HR");
  EXPECT_EQ(coll::ExecPolicy::mvapich2().name, "MV2");
  EXPECT_EQ(coll::ExecPolicy::openmpi().name, "OpenMPI");
}

TEST(ExecPolicy, OpenMpiSegmentationRaisesSenderBusy) {
  const net::CostModel cost(net::ClusterSpec::cluster_a());
  const coll::ExecPolicy plain = coll::ExecPolicy::mvapich2();
  const coll::ExecPolicy segmented = coll::ExecPolicy::openmpi();
  const std::size_t bytes = 1 << 20;
  EXPECT_GT(coll::policy_sender_busy(segmented, cost, net::Path::InterNode,
                                     net::Staging::HostSync, bytes),
            coll::policy_sender_busy(plain, cost, net::Path::InterNode,
                                     net::Staging::HostSync, bytes));
}

// --- logical executor corruption detectors -------------------------------------------

TEST(LogicalExecutor, DetectsUnconsumedMessages) {
  // A send with a matching recv... executed conditionally is impossible in
  // our per-rank programs; instead craft a schedule where rank 1 receives a
  // DIFFERENT message than rank 0 sent (tag mismatch on the wire order).
  coll::Schedule s;
  s.nranks = 3;
  s.count = 1;
  s.programs.resize(3);
  // 0 sends to 1 twice; 1 receives only once: second message is unconsumed.
  s.programs[0].send(1, 0, 0, 1);
  s.programs[0].send(1, 1, 0, 1);
  s.programs[1].recv(0, 0, 0, 1);
  // Balance structure with a dummy pair so the structural validator would
  // flag it; run_logical is the last line of defence.
  const auto result = coll::run_logical(s, {{1.0f}, {0.0f}, {0.0f}});
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unconsumed"), std::string::npos);
}

TEST(LogicalExecutor, RejectsWrongInputShapes) {
  const coll::Schedule s = coll::binomial_reduce(2, 0, 4);
  const auto wrong_count = coll::run_logical(s, {{1.0f}});
  EXPECT_FALSE(wrong_count.ok);
  const auto wrong_size = coll::run_logical(s, {{1.0f}, {1.0f}});
  EXPECT_FALSE(wrong_size.ok);
}

// --- channel fan-in -------------------------------------------------------------------

sim::Task fan_in_receiver(sim::Engine& eng, sim::Channel<int>& ch, int expect, long& sum) {
  for (int i = 0; i < expect; ++i) {
    sum += co_await ch.recv();
    (void)eng;
  }
}

sim::Task fan_in_sender(sim::Engine& eng, sim::Channel<int>& ch, int value, sim::TimeNs at) {
  co_await eng.delay(at);
  ch.send(value);
}

TEST(Channel, ManySendersOneReceiver) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  long sum = 0;
  eng.spawn(fan_in_receiver(eng, ch, 20, sum));
  for (int i = 1; i <= 20; ++i) eng.spawn(fan_in_sender(eng, ch, i, (i * 7) % 5));
  eng.run();
  EXPECT_EQ(sum, 210);
}

TEST(Channel, MultipleWaitingReceiversServedFifo) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  long first = 0;
  long second = 0;
  eng.spawn(fan_in_receiver(eng, ch, 1, first));
  eng.spawn(fan_in_receiver(eng, ch, 1, second));
  eng.spawn(fan_in_sender(eng, ch, 10, 5));
  eng.spawn(fan_in_sender(eng, ch, 20, 6));
  eng.run();
  EXPECT_EQ(first, 10);   // earliest waiter gets the earliest message
  EXPECT_EQ(second, 20);
}

}  // namespace
}  // namespace scaffe
