#include <gtest/gtest.h>

#include <mutex>

#include "core/distributed_solver.h"
#include "core/eval.h"
#include "data/dataset.h"
#include "models/zoo.h"
#include "mpi/comm.h"

namespace scaffe::core {
namespace {

/// Trains cifar10_quick for `iterations` with the given rank count (1 =
/// plain Caffe-style training) and returns the final flattened parameters.
std::vector<float> train(int nranks, int global_batch, int iterations) {
  const int shard = global_batch / nranks;
  data::SyntheticImageDataset dataset = data::SyntheticImageDataset::cifar10();

  std::vector<float> params;
  std::mutex mutex;
  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    dl::SolverConfig solver_config;
    solver_config.base_lr = 0.01f;
    solver_config.momentum = 0.9f;
    solver_config.seed = 11;
    ScaffeConfig config;
    config.variant = Variant::SCOBR;
    config.reduce = ReduceAlgo::binomial();
    DistributedSolver solver(comm, models::cifar10_quick_netspec(shard), solver_config,
                             config);

    std::vector<float> data(static_cast<std::size_t>(shard) * dataset.sample_floats());
    std::vector<float> labels(static_cast<std::size_t>(shard));
    for (int iteration = 0; iteration < iterations; ++iteration) {
      for (int i = 0; i < shard; ++i) {
        const auto index = static_cast<std::uint64_t>(iteration * global_batch +
                                                      comm.rank() * shard + i);
        const data::Sample sample = dataset.make_sample(index);
        std::copy(sample.image.begin(), sample.image.end(),
                  data.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(i) * dataset.sample_floats()));
        labels[static_cast<std::size_t>(i)] = static_cast<float>(sample.label);
      }
      solver.train_iteration(data, labels);
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      params.resize(solver.solver().net().param_count());
      solver.solver().net().flatten_params(params);
    }
  });
  return params;
}

EvalResult evaluate_params(const std::vector<float>& params, int samples) {
  dl::Net net(models::cifar10_quick_netspec(8, /*with_accuracy=*/true), 11);
  net.unflatten_params(params);
  return evaluate(net, data::SyntheticImageDataset::cifar10(), /*first_index=*/40'000,
                  samples);
}

TEST(Eval, ReportsAccuracyAndLoss) {
  dl::Net net(models::cifar10_quick_netspec(4, /*with_accuracy=*/true), 3);
  const EvalResult result = evaluate(net, data::SyntheticImageDataset::cifar10(), 0, 16);
  EXPECT_EQ(result.samples, 16);
  EXPECT_GE(result.accuracy, 0.0);
  EXPECT_LE(result.accuracy, 1.0);
  EXPECT_GT(result.avg_loss, 0.0);
}

TEST(Eval, UsesWholeBatchesOnly) {
  dl::Net net(models::cifar10_quick_netspec(8, /*with_accuracy=*/true), 3);
  const EvalResult result = evaluate(net, data::SyntheticImageDataset::cifar10(), 0, 20);
  EXPECT_EQ(result.samples, 16);  // 2 whole batches of 8
}

TEST(Eval, RejectsMismatchedDataset) {
  dl::Net net(models::cifar10_quick_netspec(4, true), 3);
  data::SyntheticImageDataset wrong(100, 1, 8, 8, 10);
  EXPECT_THROW(evaluate(net, wrong, 0, 8), std::runtime_error);
}

TEST(Eval, AccuracyParityBetweenCaffeAndScaffe) {
  // Section 6.2: "We observed no difference in accuracy between Caffe and
  // S-Caffe". Single-process large-batch training vs 4-way distributed
  // training over the same global batches must agree on held-out accuracy.
  const int iterations = 6;
  const std::vector<float> caffe_params = train(1, 16, iterations);
  const std::vector<float> scaffe_params = train(4, 16, iterations);

  const EvalResult caffe = evaluate_params(caffe_params, 64);
  const EvalResult scaffe = evaluate_params(scaffe_params, 64);
  EXPECT_EQ(caffe.samples, scaffe.samples);
  EXPECT_DOUBLE_EQ(caffe.accuracy, scaffe.accuracy);
  EXPECT_NEAR(caffe.avg_loss, scaffe.avg_loss, 1e-3);
}

TEST(Eval, TrainingImprovesHeldOutAccuracyOverChance) {
  // The synthetic dataset carries a label-correlated signal, so even a few
  // iterations must beat chance (10%) on held-out samples.
  const std::vector<float> params = train(2, 32, 12);
  const EvalResult result = evaluate_params(params, 64);
  EXPECT_GT(result.accuracy, 0.15);
}

}  // namespace
}  // namespace scaffe::core
