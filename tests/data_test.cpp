#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "data/backend.h"
#include "data/dataset.h"
#include "data/queue.h"
#include "data/reader.h"

namespace scaffe::data {
namespace {

TEST(Dataset, DeterministicSamples) {
  SyntheticImageDataset dataset = SyntheticImageDataset::cifar10();
  const Sample a = dataset.make_sample(123);
  const Sample b = dataset.make_sample(123);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.image, b.image);
  const Sample c = dataset.make_sample(124);
  EXPECT_NE(a.image, c.image);
}

TEST(Dataset, WrapsAroundSize) {
  SyntheticImageDataset dataset(100, 1, 2, 2, 4);
  const Sample a = dataset.make_sample(5);
  const Sample b = dataset.make_sample(105);
  EXPECT_EQ(a.image, b.image);
}

TEST(Dataset, ShapesAndLabels) {
  SyntheticImageDataset dataset = SyntheticImageDataset::cifar10();
  EXPECT_EQ(dataset.sample_floats(), 3u * 32 * 32);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Sample s = dataset.make_sample(i);
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, 10);
  }
}

TEST(BoundedQueue, PushPopFifo) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueue, BlocksProducerAtCapacity) {
  BoundedQueue<int> queue(1);
  queue.push(1);
  std::thread producer([&] { queue.push(2); });
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  producer.join();
}

TEST(BoundedQueue, CloseUnblocksEverything) {
  BoundedQueue<int> queue(1);
  std::thread consumer([&] { EXPECT_FALSE(queue.pop().has_value()); });
  queue.close();
  consumer.join();
  EXPECT_FALSE(queue.push(3));
}

TEST(LmdbBackend, SerializedReadsStillCorrect) {
  LmdbBackend backend(SyntheticImageDataset::cifar10());
  backend.attach_reader();
  const Sample s = backend.read(7);
  EXPECT_EQ(s.index, 7u);
  EXPECT_EQ(backend.reads(), 1u);
  backend.detach_reader();
}

TEST(LmdbBackend, RejectsMoreThan64Readers) {
  // Section 6.3: "LMDB does not scale for more than 64 parallel readers".
  LmdbBackend backend(SyntheticImageDataset::cifar10());
  for (int i = 0; i < 64; ++i) backend.attach_reader();
  EXPECT_THROW(backend.attach_reader(), ReaderLimitError);
  EXPECT_EQ(backend.attached(), 64);
  for (int i = 0; i < 64; ++i) backend.detach_reader();
}

TEST(LmdbBackend, ThroughputSaturatesThenDegrades) {
  LmdbBackend backend(SyntheticImageDataset::cifar10());
  const std::size_t bytes = SyntheticImageDataset::cifar10().sample_bytes();
  const double at1 = backend.aggregate_samples_per_sec(1, bytes);
  const double at16 = backend.aggregate_samples_per_sec(16, bytes);
  const double at48 = backend.aggregate_samples_per_sec(48, bytes);
  const double at64 = backend.aggregate_samples_per_sec(64, bytes);
  EXPECT_GT(at16, at1);
  EXPECT_LT(at48, at16);  // contention past the knee
  EXPECT_LT(at64, at48);
  EXPECT_EQ(backend.aggregate_samples_per_sec(65, bytes), 0.0);  // failure
}

TEST(ImageDataBackend, ScalesWithReadersUntilOstLimit) {
  net::StorageSpec storage;
  ImageDataBackend backend(SyntheticImageDataset::cifar10(), storage);
  const std::size_t bytes = SyntheticImageDataset::cifar10().sample_bytes();
  const double at1 = backend.aggregate_samples_per_sec(1, bytes);
  const double at40 = backend.aggregate_samples_per_sec(40, bytes);
  const double at160 = backend.aggregate_samples_per_sec(160, bytes);
  EXPECT_NEAR(at40 / at1, 40.0, 1e-6);
  // Saturates at the OST count, but never fails.
  EXPECT_NEAR(at160 / at1, static_cast<double>(storage.pfs_num_ost), 1e-6);
}

TEST(ImageDataBackend, BeatsLmdbAtScale) {
  // The Figure 8 reader story: S-Caffe-L (LMDB) dies past 64 readers while
  // ImageDataLayer over Lustre keeps scaling.
  const auto dataset = SyntheticImageDataset::imagenet_like();
  LmdbBackend lmdb(dataset);
  ImageDataBackend lustre(dataset);
  const std::size_t bytes = dataset.sample_bytes();
  EXPECT_GT(lustre.aggregate_samples_per_sec(128, bytes),
            lmdb.aggregate_samples_per_sec(64, bytes));
}

TEST(DataReader, ProducesCorrectlyShapedBatches) {
  SyntheticImageDataset dataset(1000, 1, 4, 4, 5);
  ImageDataBackend backend(dataset);
  DataReader reader(backend, 0, 1, 8, dataset.sample_floats());
  const Batch batch = reader.next();
  EXPECT_EQ(batch.data.size(), 8u * 16);
  EXPECT_EQ(batch.labels.size(), 8u);
  for (float label : batch.labels) {
    EXPECT_GE(label, 0.0f);
    EXPECT_LT(label, 5.0f);
  }
}

TEST(DataReader, StridedShardsPartitionTheDataset) {
  SyntheticImageDataset dataset(1000, 1, 2, 2, 5);
  ImageDataBackend backend(dataset);
  const int shards = 4;
  std::set<std::uint64_t> seen;
  for (int shard = 0; shard < shards; ++shard) {
    DataReader reader(backend, shard, shards, 3, dataset.sample_floats());
    const Batch batch = reader.next();
    // First batch of shard r covers indices r, r+4, r+8.
    EXPECT_EQ(batch.first_index, static_cast<std::uint64_t>(shard));
    for (int i = 0; i < 3; ++i) {
      seen.insert(static_cast<std::uint64_t>(shard + i * shards));
    }
    reader.stop();
  }
  EXPECT_EQ(seen.size(), 12u);  // disjoint coverage of 0..11
}

TEST(DataReader, ShardBatchesMatchDatasetContent) {
  SyntheticImageDataset dataset(100, 1, 2, 2, 3);
  ImageDataBackend backend(dataset);
  DataReader reader(backend, 1, 2, 2, dataset.sample_floats());
  const Batch batch = reader.next();
  // Shard 1 of 2 reads samples 1, 3.
  const Sample s1 = dataset.make_sample(1);
  const Sample s3 = dataset.make_sample(3);
  EXPECT_EQ(batch.labels[0], static_cast<float>(s1.label));
  EXPECT_EQ(batch.labels[1], static_cast<float>(s3.label));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.data[i], s1.image[i]);
    EXPECT_EQ(batch.data[4 + i], s3.image[i]);
  }
}

TEST(DataReader, PrefetchesInBackground) {
  SyntheticImageDataset dataset(1000, 1, 2, 2, 5);
  ImageDataBackend backend(dataset);
  DataReader reader(backend, 0, 1, 4, dataset.sample_floats(), /*queue_capacity=*/2);
  // Consume several batches; the reader keeps refilling.
  for (int i = 0; i < 5; ++i) {
    const Batch batch = reader.next();
    EXPECT_EQ(batch.labels.size(), 4u);
  }
  EXPECT_GE(reader.batches_produced(), 4u);
}

TEST(DataReader, ReshardAfterShrinkCoversRemainingStreamExactlyOnce) {
  // Elastic-shrink contract: when a 4-rank world shrinks to 3 at batch 2,
  // the survivors' readers are rebuilt with num_shards=3 and start_batch=2,
  // and together their next batches cover the remaining sample stream
  // (indices 24..35 for batch=4) exactly once — no gap, no double-read.
  SyntheticImageDataset dataset(1000, 1, 2, 2, 5);
  ImageDataBackend backend(dataset);
  const int shards = 3;
  const int batch_size = 4;
  const std::uint64_t start_batch = 2;
  std::set<std::uint64_t> seen;
  for (int shard = 0; shard < shards; ++shard) {
    DataReader reader(backend, shard, shards, batch_size, dataset.sample_floats(),
                      /*queue_capacity=*/4, /*shuffle_epoch_size=*/0,
                      /*shuffle_seed=*/2017, start_batch);
    const Batch batch = reader.next();
    // Shard r resumes at index r + start_batch * batch * num_shards.
    const std::uint64_t first =
        static_cast<std::uint64_t>(shard) + start_batch * batch_size * shards;
    EXPECT_EQ(batch.first_index, first);
    for (int i = 0; i < batch_size; ++i) {
      const std::uint64_t index = first + static_cast<std::uint64_t>(i) * shards;
      EXPECT_TRUE(seen.insert(index).second) << "index " << index << " read twice";
      // Content check: the strided sample really is dataset sample `index`.
      const Sample sample = dataset.make_sample(index);
      EXPECT_EQ(batch.labels[static_cast<std::size_t>(i)],
                static_cast<float>(sample.label));
    }
    reader.stop();
  }
  // 3 shards x 4 samples = the 12 consecutive indices 24..35.
  EXPECT_EQ(seen.size(), 12u);
  EXPECT_EQ(*seen.begin(), 24u);
  EXPECT_EQ(*seen.rbegin(), 35u);
}

TEST(DataReader, TooManyLmdbReadersThrowOnConstruction) {
  SyntheticImageDataset dataset(1000, 1, 2, 2, 5);
  LmdbBackend backend(dataset);
  std::vector<std::unique_ptr<DataReader>> readers;
  for (int i = 0; i < 64; ++i) {
    readers.push_back(
        std::make_unique<DataReader>(backend, i, 65, 1, dataset.sample_floats()));
  }
  EXPECT_THROW(DataReader(backend, 64, 65, 1, dataset.sample_floats()), ReaderLimitError);
}

}  // namespace
}  // namespace scaffe::data
