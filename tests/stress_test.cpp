// Stress and edge-case tests across the substrates: deep coroutine
// structures in the DES engine, heavy concurrent traffic through scmpi, and
// nested communicator hierarchies under load.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mpi/comm.h"
#include "util/rng.h"
#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace scaffe {
namespace {

// --- sim engine edge cases ---------------------------------------------------

sim::Task deep_chain(sim::Engine& eng, int depth) {
  if (depth == 0) {
    co_await eng.delay(1);
    co_return;
  }
  co_await deep_chain(eng, depth - 1);
}

TEST(SimStress, DeeplyNestedChildTasks) {
  sim::Engine eng;
  eng.spawn(deep_chain(eng, 500));
  eng.run();
  EXPECT_EQ(eng.now(), 1);
}

sim::Task spawner(sim::Engine& eng, std::atomic<int>& counter, int fanout) {
  for (int i = 0; i < fanout; ++i) {
    eng.spawn([](sim::Engine& e, std::atomic<int>& c) -> sim::Task {
      co_await e.delay(3);
      c.fetch_add(1);
    }(eng, counter));
  }
  co_await eng.delay(10);
}

TEST(SimStress, ManyConcurrentRootTasks) {
  sim::Engine eng;
  std::atomic<int> counter{0};
  eng.spawn(spawner(eng, counter, 2000));
  eng.run();
  EXPECT_EQ(counter.load(), 2000);
  EXPECT_EQ(eng.now(), 10);
}

sim::Task pipeline_stage(sim::Engine& eng, sim::Channel<int>& in, sim::Channel<int>& out,
                         int count) {
  for (int i = 0; i < count; ++i) {
    const int v = co_await in.recv();
    co_await eng.delay(2);
    out.send(v + 1);
  }
}

TEST(SimStress, LongChannelPipeline) {
  sim::Engine eng;
  constexpr int kStages = 50;
  constexpr int kItems = 20;
  std::vector<std::unique_ptr<sim::Channel<int>>> channels;
  for (int i = 0; i <= kStages; ++i) channels.push_back(std::make_unique<sim::Channel<int>>(eng));
  for (int s = 0; s < kStages; ++s) {
    eng.spawn(pipeline_stage(eng, *channels[static_cast<std::size_t>(s)],
                             *channels[static_cast<std::size_t>(s + 1)], kItems));
  }
  for (int i = 0; i < kItems; ++i) channels[0]->send(0);
  eng.run();
  for (int i = 0; i < kItems; ++i) {
    auto v = channels[kStages]->try_recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, kStages);
  }
  // Pipelined latency: (stages + items - 1) * stage_delay.
  EXPECT_EQ(eng.now(), (kStages + kItems - 1) * 2);
}

sim::Task resource_storm(sim::Engine& eng, sim::Resource& res, std::int64_t amount) {
  co_await res.acquire(amount);
  co_await eng.delay(1);
  res.release(amount);
}

TEST(SimStress, ResourceStormConservesCapacity) {
  sim::Engine eng;
  sim::Resource res(eng, 7);
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    eng.spawn(resource_storm(eng, res, 1 + static_cast<std::int64_t>(rng.below(7))));
  }
  eng.run();
  EXPECT_EQ(res.available(), 7);
  EXPECT_EQ(res.queue_length(), 0u);
}

// --- scmpi stress -------------------------------------------------------------

TEST(MpiStress, ManyInterleavedCollectives) {
  mpi::Runtime runtime(6);
  runtime.run([](mpi::Comm& comm) {
    for (int round = 0; round < 30; ++round) {
      std::vector<float> v(64, 1.0f);
      switch (round % 4) {
        case 0: comm.allreduce(v); break;
        case 1: comm.reduce(v, round % comm.size()); break;
        case 2: comm.bcast(v, round % comm.size()); break;
        default: comm.barrier(); break;
      }
    }
    std::vector<float> final_check(8, 1.0f);
    comm.allreduce(final_check);
    EXPECT_EQ(final_check[0], 6.0f);
  });
}

TEST(MpiStress, ConcurrentNbcFloodDrainsCleanly) {
  mpi::Runtime runtime(4);
  runtime.run([](mpi::Comm& comm) {
    std::vector<std::vector<float>> buffers(16);
    std::vector<mpi::Request> requests;
    for (int i = 0; i < 16; ++i) {
      buffers[static_cast<std::size_t>(i)].assign(128, static_cast<float>(i));
      requests.push_back(comm.ireduce(buffers[static_cast<std::size_t>(i)], 0));
    }
    mpi::Comm::waitall(requests);
    if (comm.rank() == 0) {
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(buffers[static_cast<std::size_t>(i)][0], 4.0f * static_cast<float>(i));
      }
    }
  });
}

TEST(MpiStress, NestedSplitsThreeLevels) {
  // 12 ranks -> 2 halves -> 3 triplet groups each -> collectives at every
  // level concurrently, mirroring the multi-level communicator design.
  mpi::Runtime runtime(12);
  runtime.run([](mpi::Comm& comm) {
    mpi::Comm half = comm.split(comm.rank() / 6, comm.rank());
    mpi::Comm triplet = half.split(half.rank() / 3, half.rank());
    EXPECT_EQ(half.size(), 6);
    EXPECT_EQ(triplet.size(), 3);

    std::vector<float> world_buf(16, 1.0f);
    std::vector<float> half_buf(16, 1.0f);
    std::vector<float> triple_buf(16, 1.0f);
    mpi::Request world_req = comm.iallreduce(world_buf);
    half.allreduce(half_buf);
    triplet.allreduce(triple_buf);
    world_req.wait();
    EXPECT_EQ(world_buf[0], 12.0f);
    EXPECT_EQ(half_buf[0], 6.0f);
    EXPECT_EQ(triple_buf[0], 3.0f);
  });
}

TEST(MpiStress, LargePayloadPointToPoint) {
  mpi::Runtime runtime(2);
  runtime.run([](mpi::Comm& comm) {
    const std::size_t count = 1 << 20;  // 4 MB
    if (comm.rank() == 0) {
      std::vector<float> data(count);
      std::iota(data.begin(), data.end(), 0.0f);
      comm.send<float>(data, 1, 0);
    } else {
      std::vector<float> data(count);
      comm.recv<float>(data, 0, 0);
      EXPECT_EQ(data[12345], 12345.0f);
      EXPECT_EQ(data[count - 1], static_cast<float>(count - 1));
    }
  });
}

TEST(MpiStress, ManyRanksBarrierStorm) {
  mpi::Runtime runtime(16);
  std::atomic<int> checkpoint{0};
  runtime.run([&](mpi::Comm& comm) {
    for (int i = 0; i < 10; ++i) {
      checkpoint.fetch_add(1);
      comm.barrier();
      EXPECT_EQ(checkpoint.load() % 16, 0) << "barrier leaked at round " << i;
      comm.barrier();
    }
  });
  EXPECT_EQ(checkpoint.load(), 160);
}

}  // namespace
}  // namespace scaffe
