// Tests for the Caffe-era feature extensions: sigmoid/tanh/eltwise layers,
// solver text configs, gradient clipping, epoch shuffling, and the
// CNMeM-style pool allocator.
#include <gtest/gtest.h>

#include <set>

#include "data/backend.h"
#include "data/reader.h"
#include "dl/gradient_check.h"
#include "dl/net.h"
#include "dl/netspec_text.h"
#include "dl/solver.h"
#include "dl/solver_text.h"
#include "gpu/pool_allocator.h"
#include "models/zoo.h"
#include "util/bytes.h"
#include "util/memory_registry.h"
#include "util/rng.h"

namespace scaffe {
namespace {

// --- new layers ----------------------------------------------------------------

dl::NetSpec activation_net(dl::LayerSpec activation) {
  dl::NetSpec spec;
  spec.name = "act";
  spec.inputs = {{"data", {2, 8}}, {"label", {2}}};
  spec.layers = {dl::LayerSpec::inner_product("f", "data", "f", 6), std::move(activation),
                 dl::LayerSpec::inner_product("g", "act_out", "g", 4),
                 dl::LayerSpec::softmax_loss("loss", "g", "label", "loss")};
  return spec;
}

void load_inputs(dl::Net& net) {
  util::Rng rng(5);
  for (float& v : net.blob("data").data()) v = static_cast<float>(rng.normal());
  for (float& v : net.blob("label").data()) v = static_cast<float>(rng.below(4));
}

TEST(NewLayers, SigmoidForwardRange) {
  dl::Net net(activation_net(dl::LayerSpec::sigmoid("s", "f", "act_out")), 3);
  load_inputs(net);
  net.forward();
  for (float v : net.blob("act_out").data()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(NewLayers, SigmoidGradient) {
  dl::Net net(activation_net(dl::LayerSpec::sigmoid("s", "f", "act_out")), 3);
  load_inputs(net);
  const auto r = dl::check_gradients(net, 1e-2, 5e-2, 2e-3);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(NewLayers, TanhGradient) {
  dl::Net net(activation_net(dl::LayerSpec::tanh("t", "f", "act_out")), 3);
  load_inputs(net);
  const auto r = dl::check_gradients(net, 1e-2, 5e-2, 2e-3);
  EXPECT_TRUE(r.ok) << r.detail;
}

dl::NetSpec residual_net() {
  // A residual block: split -> transform one path -> eltwise-sum join.
  dl::NetSpec spec;
  spec.name = "residual";
  spec.inputs = {{"data", {2, 8}}, {"label", {2}}};
  spec.layers = {
      dl::LayerSpec::inner_product("embed", "data", "embed", 8),
      dl::LayerSpec::split("sp", "embed", {"skip", "branch_in"}),
      dl::LayerSpec::inner_product("branch", "branch_in", "branch", 8),
      dl::LayerSpec::relu("branch_relu", "branch", "branch_out"),
      dl::LayerSpec::eltwise_sum("join", {"skip", "branch_out"}, "joined"),
      dl::LayerSpec::inner_product("head", "joined", "head", 4),
      dl::LayerSpec::softmax_loss("loss", "head", "label", "loss"),
  };
  return spec;
}

TEST(NewLayers, ResidualBlockGradient) {
  dl::Net net(residual_net(), 7);
  load_inputs(net);
  const auto r = dl::check_gradients(net, 1e-2, 5e-2, 2e-3);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(NewLayers, EltwiseSumForward) {
  dl::Net net(residual_net(), 7);
  load_inputs(net);
  net.forward();
  const auto skip = net.blob("skip").data();
  const auto branch = net.blob("branch_out").data();
  const auto joined = net.blob("joined").data();
  for (std::size_t i = 0; i < joined.size(); ++i) {
    EXPECT_FLOAT_EQ(joined[i], skip[i] + branch[i]);
  }
}

TEST(NewLayers, EltwiseRejectsShapeMismatch) {
  dl::NetSpec spec;
  spec.inputs = {{"data", {2, 8}}, {"label", {2}}};
  spec.layers = {dl::LayerSpec::split("sp", "data", {"a", "b"}),
                 dl::LayerSpec::inner_product("shrink", "b", "b4", 4),
                 dl::LayerSpec::eltwise_sum("join", {"a", "b4"}, "out")};
  EXPECT_THROW(dl::Net net(std::move(spec)), std::runtime_error);
}

TEST(NewLayers, TextFormatRoundTrip) {
  const std::string text = dl::netspec_to_text(residual_net());
  EXPECT_NE(text.find("eltwise_sum join skip branch_out -> joined"), std::string::npos);
  const dl::NetSpec reparsed = dl::parse_netspec(text);
  EXPECT_EQ(dl::netspec_to_text(reparsed), text);
  EXPECT_NO_THROW(dl::Net net(reparsed));
}

// --- solver text config + clipping ------------------------------------------------

TEST(SolverText, ParsesAllKeys) {
  const dl::SolverConfig config = dl::parse_solver_config(R"(
# hyper-parameters
base_lr: 0.01
momentum: 0.9
weight_decay: 0.004
lr_policy: step
gamma: 0.1
step_size: 1000
seed: 42
clip_gradients: 35
)");
  EXPECT_FLOAT_EQ(config.base_lr, 0.01f);
  EXPECT_FLOAT_EQ(config.momentum, 0.9f);
  EXPECT_FLOAT_EQ(config.weight_decay, 0.004f);
  EXPECT_EQ(config.lr_policy, dl::SolverConfig::LrPolicy::Step);
  EXPECT_FLOAT_EQ(config.gamma, 0.1f);
  EXPECT_EQ(config.step_size, 1000);
  EXPECT_EQ(config.seed, 42u);
  EXPECT_FLOAT_EQ(config.clip_gradients, 35.0f);
}

TEST(SolverText, RoundTrips) {
  dl::SolverConfig config;
  config.base_lr = 0.25f;
  config.clip_gradients = 10.0f;
  config.lr_policy = dl::SolverConfig::LrPolicy::Step;
  const dl::SolverConfig reparsed =
      dl::parse_solver_config(dl::solver_config_to_text(config));
  EXPECT_EQ(dl::solver_config_to_text(reparsed), dl::solver_config_to_text(config));
}

TEST(SolverText, RejectsUnknownKeyAndBadValue) {
  EXPECT_THROW(dl::parse_solver_config("learning_rate: 0.1\n"), std::runtime_error);
  EXPECT_THROW(dl::parse_solver_config("base_lr: fast\n"), std::runtime_error);
  EXPECT_THROW(dl::parse_solver_config("lr_policy: cosine\n"), std::runtime_error);
  EXPECT_THROW(dl::parse_solver_config("base_lr:\n"), std::runtime_error);
}

TEST(GradientClipping, RescalesLargeGradients) {
  dl::SolverConfig config;
  config.base_lr = 1.0f;
  config.momentum = 0.0f;
  config.clip_gradients = 1.0f;
  dl::SgdSolver solver(models::mlp_netspec(2, 4, 4, 2), config);

  // Force a huge gradient, then update: the applied step must be bounded by
  // the clip threshold (times lr).
  std::vector<float> before(solver.net().param_count());
  solver.net().flatten_params(before);
  std::vector<float> huge(solver.net().param_count(), 100.0f);
  solver.net().unflatten_diffs(huge);
  EXPECT_GT(solver.diff_l2_norm(), 1.0);
  solver.apply_update();
  std::vector<float> after(solver.net().param_count());
  solver.net().flatten_params(after);

  double step_norm_sq = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    const double d = static_cast<double>(after[i]) - before[i];
    step_norm_sq += d * d;
  }
  EXPECT_NEAR(std::sqrt(step_norm_sq), 1.0, 1e-3);  // = clip * lr
}

TEST(GradientClipping, SmallGradientsUntouched) {
  dl::SolverConfig clipped;
  clipped.momentum = 0.0f;
  clipped.clip_gradients = 1e6f;
  dl::SolverConfig plain = clipped;
  plain.clip_gradients = 0.0f;

  dl::SgdSolver a(models::mlp_netspec(2, 4, 4, 2), clipped);
  dl::SgdSolver b(models::mlp_netspec(2, 4, 4, 2), plain);
  std::vector<float> data(8, 0.5f);
  std::vector<float> labels(2, 1.0f);
  a.step(data, labels);
  a.apply_update();
  b.step(data, labels);
  b.apply_update();

  std::vector<float> pa(a.net().param_count());
  std::vector<float> pb(b.net().param_count());
  a.net().flatten_params(pa);
  b.net().flatten_params(pb);
  EXPECT_EQ(pa, pb);
}

// --- epoch shuffling ------------------------------------------------------------

TEST(Shuffle, PermutationIsBijectivePerEpoch) {
  data::SyntheticImageDataset dataset(64, 1, 1, 2, 3);
  data::ImageDataBackend backend(dataset);
  // One reader covering the whole epoch: batch = epoch size.
  data::DataReader reader(backend, 0, 1, 64, dataset.sample_floats(),
                          /*queue_capacity=*/2, /*shuffle_epoch_size=*/64);
  const data::Batch epoch0 = reader.next();
  const data::Batch epoch1 = reader.next();

  // Each epoch's labels must be a permutation of the sequential epoch's.
  std::multiset<float> sequential;
  for (std::uint64_t i = 0; i < 64; ++i) {
    sequential.insert(static_cast<float>(dataset.make_sample(i).label));
  }
  EXPECT_EQ(std::multiset<float>(epoch0.labels.begin(), epoch0.labels.end()), sequential);
  EXPECT_EQ(std::multiset<float>(epoch1.labels.begin(), epoch1.labels.end()), sequential);
  // And the two epochs should differ in order.
  EXPECT_NE(epoch0.labels, epoch1.labels);
}

TEST(Shuffle, ShardsStillPartitionTheEpoch) {
  data::SyntheticImageDataset dataset(60, 1, 1, 2, 5);
  data::ImageDataBackend backend(dataset);
  std::multiset<float> combined;
  for (int shard = 0; shard < 4; ++shard) {
    data::DataReader reader(backend, shard, 4, 15, dataset.sample_floats(), 2,
                            /*shuffle_epoch_size=*/60);
    const data::Batch batch = reader.next();
    combined.insert(batch.labels.begin(), batch.labels.end());
    reader.stop();
  }
  std::multiset<float> sequential;
  for (std::uint64_t i = 0; i < 60; ++i) {
    sequential.insert(static_cast<float>(dataset.make_sample(i).label));
  }
  EXPECT_EQ(combined, sequential);
}

// --- pool allocator --------------------------------------------------------------

TEST(PoolAllocator, ReusesFreedBlocks) {
  gpu::Device device(0, 10 * util::kMiB);
  util::MemoryRegistry registry;
  gpu::PoolAllocator pool(device, registry);
  float* first_ptr = nullptr;
  {
    gpu::PooledBuffer buffer = pool.acquire(1000);
    first_ptr = buffer.data();
    EXPECT_GE(buffer.capacity(), 1000u);
  }
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_GT(registry.stats().cached_bytes, 0u);
  {
    gpu::PooledBuffer buffer = pool.acquire(900);  // same 4096-byte size class
    EXPECT_EQ(buffer.data(), first_ptr);
  }
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(PoolAllocator, DeviceRefundedOnRelease) {
  gpu::Device device(0, 10 * util::kMiB);
  util::MemoryRegistry registry;
  gpu::PoolAllocator pool(device, registry);
  {
    gpu::PooledBuffer buffer = pool.acquire(1 << 16);
    EXPECT_GT(device.allocated(), 0u);
  }
  // The registry caches the block (no device charge for cached memory); the
  // device sees only live, handed-out blocks.
  EXPECT_EQ(device.allocated(), 0u);
  EXPECT_GT(registry.stats().cached_bytes, 0u);
  pool.trim();
  EXPECT_EQ(registry.stats().cached_bytes, 0u);
}

TEST(PoolAllocator, OomPropagatesFromDevice) {
  gpu::Device device(0, util::kMiB);
  util::MemoryRegistry registry;
  gpu::PoolAllocator pool(device, registry);
  EXPECT_THROW(pool.acquire(1 << 20), gpu::OutOfMemoryError);  // 4 MB block
  // A failed acquire must leave nothing charged or live.
  EXPECT_EQ(device.allocated(), 0u);
  EXPECT_EQ(registry.stats().live_bytes, 0u);
}

TEST(PoolAllocator, DistinctSizeClassesDontMix) {
  gpu::Device device(0, 10 * util::kMiB);
  util::MemoryRegistry registry;
  gpu::PoolAllocator pool(device, registry);
  { gpu::PooledBuffer small = pool.acquire(100); }
  gpu::PooledBuffer big = pool.acquire(10'000);
  EXPECT_EQ(pool.hits(), 0u);  // 512-byte-class block cannot satisfy 64 KiB class
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(PoolAllocator, MoveSemantics) {
  gpu::Device device(0, util::kMiB);
  util::MemoryRegistry registry;
  gpu::PoolAllocator pool(device, registry);
  gpu::PooledBuffer a = pool.acquire(64);
  gpu::PooledBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.span()[0] = 1.0f;
  a = std::move(b);  // move back
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.span()[0], 1.0f);
  EXPECT_EQ(device.allocated(), util::MemoryRegistry::size_class(64 * sizeof(float)));
}

}  // namespace
}  // namespace scaffe
