// Tests for the im2col+GEMM convolution path and the allreduce-SGD
// aggregation extension.
#include <gtest/gtest.h>

#include <mutex>

#include "core/distributed_solver.h"
#include "data/dataset.h"
#include "dl/gradient_check.h"
#include "dl/net.h"
#include "models/zoo.h"
#include "mpi/comm.h"
#include "util/rng.h"

namespace scaffe {
namespace {

// --- im2col + GEMM convolution --------------------------------------------------

dl::NetSpec conv_net(dl::ConvImpl impl, int kernel, int stride, int pad) {
  dl::NetSpec spec;
  spec.name = "conv_impl";
  spec.inputs = {{"data", {2, 3, 9, 9}}, {"label", {2}}};
  dl::LayerSpec conv = dl::LayerSpec::conv("c", "data", "c", 4, kernel, stride, pad);
  conv.conv_impl = impl;
  spec.layers = {std::move(conv), dl::LayerSpec::softmax_loss("loss", "c", "label", "loss")};
  return spec;
}

void load(dl::Net& net, std::uint64_t seed) {
  util::Rng rng(seed);
  for (float& v : net.blob("data").data()) v = static_cast<float>(rng.normal());
  for (float& v : net.blob("label").data()) v = static_cast<float>(rng.below(4));
}

struct ConvGeometry {
  int kernel;
  int stride;
  int pad;
};

class ConvImplSweep : public ::testing::TestWithParam<ConvGeometry> {};

TEST_P(ConvImplSweep, GemmForwardMatchesDirect) {
  const auto [kernel, stride, pad] = GetParam();
  dl::Net direct(conv_net(dl::ConvImpl::Direct, kernel, stride, pad), 7);
  dl::Net gemm(conv_net(dl::ConvImpl::Im2colGemm, kernel, stride, pad), 7);
  load(direct, 3);
  load(gemm, 3);
  direct.forward();
  gemm.forward();
  const auto a = direct.blob("c").data();
  const auto b = gemm.blob("c").data();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-4f) << i;  // op order differs; near-equal
  }
}

TEST_P(ConvImplSweep, GemmBackwardMatchesDirect) {
  const auto [kernel, stride, pad] = GetParam();
  dl::Net direct(conv_net(dl::ConvImpl::Direct, kernel, stride, pad), 7);
  dl::Net gemm(conv_net(dl::ConvImpl::Im2colGemm, kernel, stride, pad), 7);
  load(direct, 3);
  load(gemm, 3);
  for (dl::Net* net : {&direct, &gemm}) {
    net->zero_param_diffs();
    net->forward();
    net->backward();
  }
  std::vector<float> da(direct.param_count());
  std::vector<float> db(gemm.param_count());
  direct.flatten_diffs(da);
  gemm.flatten_diffs(db);
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_NEAR(da[i], db[i], 2e-4f) << i;
  }
  // Input gradients too (the col2im path).
  const auto dxa = direct.blob("data").diff();
  const auto dxb = gemm.blob("data").diff();
  for (std::size_t i = 0; i < dxa.size(); ++i) {
    EXPECT_NEAR(dxa[i], dxb[i], 2e-4f) << "dx " << i;
  }
}

TEST_P(ConvImplSweep, GemmPassesGradientCheck) {
  const auto [kernel, stride, pad] = GetParam();
  dl::Net net(conv_net(dl::ConvImpl::Im2colGemm, kernel, stride, pad), 7);
  load(net, 3);
  const auto r = dl::check_gradients(net, 1e-2, 5e-2, 2e-3);
  EXPECT_TRUE(r.ok) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvImplSweep,
                         ::testing::Values(ConvGeometry{3, 1, 1}, ConvGeometry{3, 2, 0},
                                           ConvGeometry{5, 1, 2}, ConvGeometry{1, 1, 0},
                                           ConvGeometry{3, 3, 1}));

// --- allreduce-SGD aggregation ----------------------------------------------------

struct AllreduceOutcome {
  std::vector<std::vector<float>> rank_params;  // every rank's final params
  std::vector<float> losses;
};

AllreduceOutcome run_allreduce(int nranks, int iterations, bool ring) {
  const int in_dim = 6;
  const int classes = 3;
  const int shard = 4;
  data::SyntheticImageDataset dataset(512, 1, 1, in_dim, classes);

  AllreduceOutcome outcome;
  outcome.rank_params.resize(static_cast<std::size_t>(nranks));
  std::mutex mutex;
  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    dl::SolverConfig solver_config;
    solver_config.base_lr = 0.05f;
    solver_config.seed = 5;
    core::ScaffeConfig config;
    config.aggregation = core::Aggregation::AllreduceSgd;
    config.ring_allreduce = ring;
    core::DistributedSolver solver(comm, models::mlp_netspec(shard, in_dim, 8, classes),
                                   solver_config, config);

    std::vector<float> data(static_cast<std::size_t>(shard * in_dim));
    std::vector<float> labels(static_cast<std::size_t>(shard));
    for (int iteration = 0; iteration < iterations; ++iteration) {
      for (int i = 0; i < shard; ++i) {
        const auto index = static_cast<std::uint64_t>(iteration * nranks * shard +
                                                      comm.rank() * shard + i);
        const data::Sample sample = dataset.make_sample(index);
        std::copy(sample.image.begin(), sample.image.end(),
                  data.begin() + static_cast<std::ptrdiff_t>(i * in_dim));
        labels[static_cast<std::size_t>(i)] = static_cast<float>(sample.label);
      }
      const auto result = solver.train_iteration(data, labels);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        outcome.losses.push_back(result.local_loss);
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    auto& params = outcome.rank_params[static_cast<std::size_t>(comm.rank())];
    params.resize(solver.solver().net().param_count());
    solver.solver().net().flatten_params(params);
  });
  return outcome;
}

TEST(AllreduceSgd, AllReplicasStayBitIdentical) {
  const AllreduceOutcome outcome = run_allreduce(4, 6, /*ring=*/false);
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(outcome.rank_params[static_cast<std::size_t>(r)], outcome.rank_params[0])
        << "rank " << r << " diverged";
  }
}

TEST(AllreduceSgd, RingVariantAlsoConverges) {
  const AllreduceOutcome tree = run_allreduce(4, 6, /*ring=*/false);
  const AllreduceOutcome ring = run_allreduce(4, 6, /*ring=*/true);
  // Different reduction orders: trajectories agree to float noise.
  ASSERT_EQ(tree.rank_params[0].size(), ring.rank_params[0].size());
  for (std::size_t i = 0; i < tree.rank_params[0].size(); ++i) {
    EXPECT_NEAR(tree.rank_params[0][i], ring.rank_params[0][i], 1e-4f);
  }
  // Ring replicas also stay identical to each other.
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(ring.rank_params[static_cast<std::size_t>(r)], ring.rank_params[0]);
  }
}

TEST(AllreduceSgd, LossDecreases) {
  const AllreduceOutcome outcome = run_allreduce(4, 20, /*ring=*/true);
  EXPECT_LT(outcome.losses.back(), outcome.losses.front());
}

}  // namespace
}  // namespace scaffe
