#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "coll/algorithms.h"
#include "mpi/comm.h"
#include "mpi/health.h"

namespace scaffe::mpi {
namespace {

using namespace std::chrono_literals;

TEST(Sendrecv, SymmetricExchange) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    std::vector<float> mine(4, static_cast<float>(comm.rank() + 1));
    std::vector<float> theirs(4, 0.0f);
    const int peer = 1 - comm.rank();
    comm.sendrecv<float>(mine, peer, theirs, peer, 9);
    EXPECT_EQ(theirs[0], static_cast<float>(peer + 1));
  });
}

TEST(Sendrecv, RingShift) {
  const int p = 5;
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> mine(1, static_cast<float>(comm.rank()));
    std::vector<float> incoming(1);
    const int right = (comm.rank() + 1) % p;
    const int left = (comm.rank() - 1 + p) % p;
    comm.sendrecv<float>(mine, right, incoming, left, 0);
    EXPECT_EQ(incoming[0], static_cast<float>(left));
  });
}

class IallreduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(IallreduceSweep, DefaultPathSumsEverywhere) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> data(64, 1.5f);
    Request request = comm.iallreduce(data);
    request.wait();
    EXPECT_EQ(data[10], 1.5f * static_cast<float>(p));
  });
}

TEST_P(IallreduceSweep, OverlapsWithOtherCollectives) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> a(32, 1.0f);
    std::vector<float> b(32, 2.0f);
    Request ra = comm.iallreduce(a);
    Request rb = comm.iallreduce(b);
    std::vector<Request> requests{ra, rb};
    Comm::waitall(requests);
    EXPECT_EQ(a[0], static_cast<float>(p));
    EXPECT_EQ(b[0], 2.0f * static_cast<float>(p));
  });
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, IallreduceSweep, ::testing::Values(1, 2, 4, 7));

TEST(AllreduceFactory, RingScheduleInstallable) {
  const int p = 4;
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    comm.set_allreduce_factory([](int nranks, int /*root*/, std::size_t count) {
      return coll::ring_allreduce(nranks, count);
    });
    std::vector<float> data(128, 0.25f);
    comm.allreduce(data);
    for (float v : data) EXPECT_EQ(v, 0.25f * static_cast<float>(p));
  });
}

TEST(AllreduceFactory, RingIallreduce) {
  const int p = 4;
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    comm.set_allreduce_factory([](int nranks, int /*root*/, std::size_t count) {
      return coll::ring_allreduce(nranks, count);
    });
    std::vector<float> data(64, 1.0f);
    Request request = comm.iallreduce(data);
    request.wait();
    EXPECT_EQ(data[32], static_cast<float>(p));
  });
}

TEST(Waitall, MixedRequestsComplete) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    std::vector<float> bc(16, comm.rank() == 0 ? 3.0f : 0.0f);
    std::vector<float> rd(16, 1.0f);
    std::vector<Request> requests;
    requests.push_back(comm.ibcast(bc, 0));
    requests.push_back(comm.ireduce(rd, 0));
    Comm::waitall(requests);
    EXPECT_EQ(bc[0], 3.0f);
    if (comm.rank() == 0) { EXPECT_EQ(rd[0], 2.0f); }
    EXPECT_TRUE(Comm::testall(requests));  // already complete
  });
}

TEST(Testall, PollsWithoutBlocking) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    std::vector<float> data(1 << 16, 1.0f);
    std::vector<Request> requests;
    requests.push_back(comm.iallreduce(data));
    while (!Comm::testall(requests)) {
    }
    EXPECT_EQ(data[0], 2.0f);
  });
}

TEST(RecvAny, MatchesAnySender) {
  Runtime runtime(4);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> v(1);
      std::vector<bool> seen(4, false);
      for (int i = 0; i < 3; ++i) {
        const int src = comm.recv_any<float>(v, 5);
        EXPECT_EQ(v[0], static_cast<float>(src));
        EXPECT_FALSE(seen[static_cast<std::size_t>(src)]) << "duplicate sender";
        seen[static_cast<std::size_t>(src)] = true;
      }
      EXPECT_FALSE(seen[0]);
    } else {
      std::vector<float> v{static_cast<float>(comm.rank())};
      comm.send<float>(v, 0, 5);
    }
  });
}

TEST(RecvAny, DoesNotStealOtherTags) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 1) {
      std::vector<float> a{1.0f};
      std::vector<float> b{2.0f};
      comm.send<float>(a, 0, 10);
      comm.send<float>(b, 0, 20);
    } else {
      std::vector<float> v(1);
      EXPECT_EQ(comm.recv_any<float>(v, 20), 1);
      EXPECT_EQ(v[0], 2.0f);
      EXPECT_EQ(comm.recv_any<float>(v, 10), 1);
      EXPECT_EQ(v[0], 1.0f);
    }
  });
}

TEST(RecvAny, SizeMismatchThrows) {
  Runtime runtime(2);
  EXPECT_THROW(runtime.run([](Comm& comm) {
    if (comm.rank() == 1) {
      std::vector<float> v{1.0f, 2.0f};
      comm.send<float>(v, 0, 0);
    } else {
      std::vector<float> v(1);
      comm.recv_any<float>(v, 0);
    }
  }),
               std::runtime_error);
}

TEST(Abort, FailingRankUnblocksPeersInsteadOfDeadlocking) {
  // Rank 1 dies before the collective; without MPI_Abort semantics every
  // other rank would block in its receive forever. The original exception
  // must surface, not the secondary AbortError unwinds.
  Runtime runtime(4);
  try {
    runtime.run([](Comm& comm) {
      if (comm.rank() == 1) throw std::logic_error("rank 1 exploded");
      std::vector<float> v(1 << 12, 1.0f);
      comm.allreduce(v);  // blocks on rank 1's contribution
    });
    FAIL() << "expected the failure to propagate";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "rank 1 exploded");
  }
}

TEST(Abort, OomDuringDistributedSetupDoesNotHang) {
  // The Figure 8 scenario in functional form: one rank cannot allocate its
  // model; the job must fail fast, not hang at the first broadcast.
  Runtime runtime(2);
  EXPECT_THROW(runtime.run([](Comm& comm) {
    if (comm.rank() == 1) {
      gpu::Device tiny(1, 1024);
      gpu::DeviceBuffer<float> too_big(tiny, 1 << 20);  // throws OOM
    }
    std::vector<float> v(64, 1.0f);
    comm.bcast(v, 0);
  }),
               gpu::OutOfMemoryError);
}

// --- membership generations / elastic worlds ---------------------------------

// Forges the mail a dead epoch could leave behind: correct (context, src,
// tag) for the receiver, but stamped with a previous generation.
Envelope stale_envelope(const Comm& comm, int tag, float value) {
  Envelope stale;
  stale.context = comm.context();
  stale.generation = comm.generation() - 1;
  stale.src = 0;
  stale.tag = tag;
  stale.payload.resize(sizeof(float));
  std::memcpy(stale.payload.data(), &value, sizeof(float));
  return stale;
}

TEST(Generations, StaleEpochMessageIsNeverDelivered) {
  // A stale-generation envelope with an otherwise perfect match arrives
  // FIRST; the receive must skip it and deliver the current-epoch message.
  Runtime runtime(2);
  runtime.set_recv_timeout(2000ms);
  runtime.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      runtime.world().mailboxes[1]->push(stale_envelope(comm, 7, -1.0f));
      std::vector<float> v{42.0f};
      comm.send<float>(v, 1, 7);
    } else {
      std::vector<float> v(1, 0.0f);
      comm.recv<float>(v, 0, 7);
      EXPECT_EQ(v[0], 42.0f);  // the poison value never surfaces
    }
  });
}

TEST(Generations, StaleOnlyMessageTimesOutInsteadOfMatching) {
  // Acceptance: no stale-epoch message can be delivered into a rebuilt
  // world. With ONLY dead-epoch mail pending, the receive must hit its
  // deadline rather than consume the stale envelope.
  Runtime runtime(2);
  runtime.set_recv_timeout(200ms);
  EXPECT_THROW(runtime.run([&](Comm& comm) {
                 if (comm.rank() == 0) {
                   runtime.world().mailboxes[1]->push(stale_envelope(comm, 9, -1.0f));
                 } else {
                   std::vector<float> v(1);
                   comm.recv<float>(v, 0, 9);
                 }
               }),
               TimeoutError);
}

TEST(Generations, BeginGenerationPurgesDeadEpochMail) {
  Runtime runtime(2);
  // Rank 0 sends mail rank 1 never receives: the epoch dies with it queued.
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> v{1.0f};
      comm.send<float>(v, 1, 3);
    }
  });
  EXPECT_EQ(runtime.generation(), 1u);
  // Opening the next epoch reclaims it (the fence already made it
  // unmatchable; the purge keeps mailboxes from accumulating dead mail).
  EXPECT_EQ(runtime.world().mailboxes[1]->purge_stale(runtime.generation() + 1), 1u);
  EXPECT_EQ(runtime.world().mailboxes[0]->purge_stale(runtime.generation() + 1), 0u);
}

TEST(Generations, EachRunIsANewEpochWithFreshContextSpace) {
  Runtime runtime(2);
  std::mutex mutex;
  std::vector<Generation> generations;
  std::vector<ContextId> contexts;
  for (int round = 0; round < 3; ++round) {
    runtime.run([&](Comm& comm) {
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        generations.push_back(comm.generation());
        contexts.push_back(comm.context());
      }
    });
  }
  EXPECT_EQ(generations, (std::vector<Generation>{1, 2, 3}));
  EXPECT_EQ(std::set<ContextId>(contexts.begin(), contexts.end()).size(), 3u);
}

TEST(RunMembers, SurvivorSubsetRenumbersRanksAndComputes) {
  // The shrink path: world {0,1,2,3} loses rank 1; survivors {0,2,3} run as
  // a dense 3-rank communicator whose world_rank() keeps stable identities.
  Runtime runtime(4);
  runtime.run_members({0, 2, 3}, [](Comm& comm) {
    EXPECT_EQ(comm.size(), 3);
    const std::vector<int> expected_world{0, 2, 3};
    EXPECT_EQ(comm.world_rank(), expected_world[static_cast<std::size_t>(comm.rank())]);
    std::vector<float> data(32, 1.0f);
    comm.allreduce(data);
    EXPECT_EQ(data[0], 3.0f);
  });
}

TEST(RunMembers, ValidatesMemberSets) {
  Runtime runtime(4);
  const auto body = [](Comm&) {};
  EXPECT_THROW(runtime.run_members({}, body), std::runtime_error);
  EXPECT_THROW(runtime.run_members({2, 1}, body), std::runtime_error);       // not ascending
  EXPECT_THROW(runtime.run_members({0, 0, 1}, body), std::runtime_error);    // duplicate
  EXPECT_THROW(runtime.run_members({0, 4}, body), std::runtime_error);       // out of range
  EXPECT_THROW(runtime.run_members({-1, 0}, body), std::runtime_error);      // negative
  EXPECT_NO_THROW(runtime.run_members({1, 3}, body));
}

TEST(ContextAudit, NoCollisionsAcrossSplitsDupsAndRebuilds) {
  // Regression for ContextId allocation after teardown+rebuild: identical
  // split/dup sequences in successive membership generations must land in
  // disjoint context space (the generation is woven into the base context,
  // and children derive from it). One representative per communicator —
  // members of the same group share a context BY DESIGN.
  Runtime runtime(4);
  std::mutex mutex;
  std::vector<ContextId> contexts;
  const auto record = [&](const Comm& comm) {
    std::lock_guard<std::mutex> lock(mutex);
    contexts.push_back(comm.context());
  };
  for (int generation = 0; generation < 2; ++generation) {
    runtime.run([&](Comm& comm) {
      if (comm.rank() == 0) record(comm);  // base communicator
      Comm half = comm.split(comm.rank() % 2, comm.rank());
      if (half.rank() == 0) record(half);  // 2 groups per generation
      Comm copy = half.dup();
      if (copy.rank() == 0) record(copy);  // 2 dups per generation
      // The split comm must actually work in isolation from its parent.
      std::vector<float> data(8, 1.0f);
      half.allreduce(data);
      EXPECT_EQ(data[0], 2.0f);
    });
  }
  ASSERT_EQ(contexts.size(), 10u);  // (1 base + 2 splits + 2 dups) x 2 generations
  EXPECT_EQ(std::set<ContextId>(contexts.begin(), contexts.end()).size(), contexts.size());
}

// --- heartbeat health plane ---------------------------------------------------

TEST(HealthPlane, HealthContextIsDisjointAndDeterministic) {
  const ContextId base = 12345;
  const ContextId health = HealthMonitor::health_context_for(base);
  EXPECT_EQ(health, HealthMonitor::health_context_for(base));  // pure function
  EXPECT_NE(health, base);
  EXPECT_GE(health, 0);  // context space is non-negative
  EXPECT_NE(HealthMonitor::health_context_for(base + 1), health);
}

TEST(HealthPlane, HeartbeatsFlowAndReportPopulates) {
  Runtime runtime(3);
  runtime.run([](Comm& comm) {
    comm.barrier();
    HealthConfig config;
    config.interval = std::chrono::milliseconds(5);
    config.miss_limit = 100;  // never suspect in this healthy run
    HealthMonitor monitor(comm, config);
    monitor.record_step(3.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    monitor.poll();  // healthy world: must not throw
    const HealthReport report = monitor.report();
    EXPECT_GT(report.heartbeats_sent, 0u);
    EXPECT_GT(report.heartbeats_received, 0u);
    EXPECT_EQ(report.suspected_world_rank, -1);
    ASSERT_EQ(report.peers.size(), 3u);
    for (const PeerHealth& peer : report.peers) {
      EXPECT_TRUE(peer.heard) << "no heartbeat from comm rank " << peer.rank;
      EXPECT_FALSE(peer.straggler);
    }
    comm.barrier();  // keep every monitor alive until all three are heard
  });
}

TEST(HealthPlane, SilentPeerSuspectedWithTypedError) {
  // Rank 2 deserts (returns without ever heartbeating): the survivors'
  // monitors must confirm suspicion of exactly that rank and surface the
  // typed SuspectError through poll(), not a bare AbortError.
  Runtime runtime(3);
  try {
    runtime.run([](Comm& comm) {
      if (comm.rank() == 2) return;  // silent death
      HealthConfig config;
      config.interval = std::chrono::milliseconds(10);
      config.miss_limit = 4;
      HealthMonitor monitor(comm, config);
      for (int i = 0; i < 1000; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        monitor.poll();
      }
      FAIL() << "rank " << comm.rank() << " never suspected the deserter";
    });
    FAIL() << "expected SuspectError";
  } catch (const SuspectError& error) {
    EXPECT_EQ(error.rank(), 2);
    EXPECT_EQ(error.world_rank(), 2);
    EXPECT_EQ(error.last_seq(), 0u);  // never heard at all
    EXPECT_TRUE(error.restartable());
    EXPECT_EQ(error.suspect(), 2);
    EXPECT_GT(error.silent_for().count(), 0);
  }
}

// Acceptance (elastic fencing): a heartbeat stamped with a dead epoch's
// generation can never feed a rebuilt world's monitor. The forged stale beat
// below carries seq 999; the monitor must still suspect the silent peer and
// report last_seq 0 — the zombie's heartbeat was invisible, not counted.
TEST(HealthPlane, StaleGenerationHeartbeatsAreInvisible) {
  Runtime runtime(2);
  runtime.run([](Comm&) {});  // burn generation 1 so generation-1 mail can exist
  try {
    runtime.run([&](Comm& comm) {
      if (comm.rank() != 0) return;  // rank 1 is silent in this epoch
      Envelope stale;
      stale.context = HealthMonitor::health_context_for(comm.context());
      stale.generation = comm.generation() - 1;
      stale.src = 1;
      stale.tag = HealthMonitor::kHeartbeatTag;
      struct {
        std::uint64_t seq;
        double latency;
      } beat{999, 1.0};
      stale.payload.resize(sizeof(beat));
      std::memcpy(stale.payload.data(), &beat, sizeof(beat));
      runtime.world().mailboxes[0]->push(std::move(stale));

      HealthConfig config;
      config.interval = std::chrono::milliseconds(5);
      config.miss_limit = 4;
      HealthMonitor monitor(comm, config);
      for (int i = 0; i < 1000; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        monitor.poll();
      }
      FAIL() << "stale heartbeat kept the dead peer alive";
    });
    FAIL() << "expected SuspectError";
  } catch (const SuspectError& error) {
    EXPECT_EQ(error.rank(), 1);
    EXPECT_EQ(error.last_seq(), 0u) << "the generation-fenced heartbeat was counted";
    EXPECT_EQ(error.generation(), 2u);
  }
}

TEST(HealthConfigEnv, KnobsParseThroughSharedParsers) {
  struct EnvGuard {
    EnvGuard(const char* name, const char* value) : name_(name) {
      if (const char* old = std::getenv(name)) saved_ = old;
      if (value != nullptr) {
        ::setenv(name, value, 1);
      } else {
        ::unsetenv(name);
      }
    }
    ~EnvGuard() {
      if (saved_.has_value()) {
        ::setenv(name_, saved_->c_str(), 1);
      } else {
        ::unsetenv(name_);
      }
    }
    const char* name_;
    std::optional<std::string> saved_;
  };
  {
    EnvGuard a("SCAFFE_HEARTBEAT_MS", nullptr);
    EnvGuard b("SCAFFE_HEARTBEAT_MISS_LIMIT", nullptr);
    EnvGuard c("SCAFFE_STRAGGLER_FACTOR", nullptr);
    const HealthConfig config = HealthConfig::from_env();
    EXPECT_EQ(config.interval, std::chrono::milliseconds(25));
    EXPECT_EQ(config.miss_limit, 4);
    EXPECT_EQ(config.straggler_factor, 4);
    EXPECT_EQ(config.suspicion_threshold(), std::chrono::milliseconds(100));
  }
  {
    EnvGuard a("SCAFFE_HEARTBEAT_MS", "10");
    EnvGuard b("SCAFFE_HEARTBEAT_MISS_LIMIT", "8");
    EnvGuard c("SCAFFE_STRAGGLER_FACTOR", "3");
    const HealthConfig config = HealthConfig::from_env();
    EXPECT_EQ(config.interval, std::chrono::milliseconds(10));
    EXPECT_EQ(config.miss_limit, 8);
    EXPECT_EQ(config.straggler_factor, 3);
    EXPECT_EQ(config.suspicion_threshold(), std::chrono::milliseconds(80));
  }
  {
    EnvGuard a("SCAFFE_HEARTBEAT_MS", "soon");
    try {
      (void)HealthConfig::from_env();
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& error) {
      EXPECT_EQ(error.knob(), "SCAFFE_HEARTBEAT_MS");
      EXPECT_EQ(error.value(), "soon");
    }
  }
}

TEST(Abort, RuntimeIsReusableAfterAbort) {
  Runtime runtime(2);
  EXPECT_THROW(runtime.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("boom");
    std::vector<float> v(8, 1.0f);
    comm.allreduce(v);
  }),
               std::runtime_error);
  // Fresh world per run: the aborted state does not leak.
  runtime.run([](Comm& comm) {
    std::vector<float> v(8, 1.0f);
    comm.allreduce(v);
    EXPECT_EQ(v[0], 2.0f);
  });
}

}  // namespace
}  // namespace scaffe::mpi
