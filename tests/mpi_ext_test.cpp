#include <gtest/gtest.h>

#include <vector>

#include "coll/algorithms.h"
#include "mpi/comm.h"

namespace scaffe::mpi {
namespace {

TEST(Sendrecv, SymmetricExchange) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    std::vector<float> mine(4, static_cast<float>(comm.rank() + 1));
    std::vector<float> theirs(4, 0.0f);
    const int peer = 1 - comm.rank();
    comm.sendrecv<float>(mine, peer, theirs, peer, 9);
    EXPECT_EQ(theirs[0], static_cast<float>(peer + 1));
  });
}

TEST(Sendrecv, RingShift) {
  const int p = 5;
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> mine(1, static_cast<float>(comm.rank()));
    std::vector<float> incoming(1);
    const int right = (comm.rank() + 1) % p;
    const int left = (comm.rank() - 1 + p) % p;
    comm.sendrecv<float>(mine, right, incoming, left, 0);
    EXPECT_EQ(incoming[0], static_cast<float>(left));
  });
}

class IallreduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(IallreduceSweep, DefaultPathSumsEverywhere) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> data(64, 1.5f);
    Request request = comm.iallreduce(data);
    request.wait();
    EXPECT_EQ(data[10], 1.5f * static_cast<float>(p));
  });
}

TEST_P(IallreduceSweep, OverlapsWithOtherCollectives) {
  const int p = GetParam();
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    std::vector<float> a(32, 1.0f);
    std::vector<float> b(32, 2.0f);
    Request ra = comm.iallreduce(a);
    Request rb = comm.iallreduce(b);
    std::vector<Request> requests{ra, rb};
    Comm::waitall(requests);
    EXPECT_EQ(a[0], static_cast<float>(p));
    EXPECT_EQ(b[0], 2.0f * static_cast<float>(p));
  });
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, IallreduceSweep, ::testing::Values(1, 2, 4, 7));

TEST(AllreduceFactory, RingScheduleInstallable) {
  const int p = 4;
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    comm.set_allreduce_factory([](int nranks, int /*root*/, std::size_t count) {
      return coll::ring_allreduce(nranks, count);
    });
    std::vector<float> data(128, 0.25f);
    comm.allreduce(data);
    for (float v : data) EXPECT_EQ(v, 0.25f * static_cast<float>(p));
  });
}

TEST(AllreduceFactory, RingIallreduce) {
  const int p = 4;
  Runtime runtime(p);
  runtime.run([p](Comm& comm) {
    comm.set_allreduce_factory([](int nranks, int /*root*/, std::size_t count) {
      return coll::ring_allreduce(nranks, count);
    });
    std::vector<float> data(64, 1.0f);
    Request request = comm.iallreduce(data);
    request.wait();
    EXPECT_EQ(data[32], static_cast<float>(p));
  });
}

TEST(Waitall, MixedRequestsComplete) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    std::vector<float> bc(16, comm.rank() == 0 ? 3.0f : 0.0f);
    std::vector<float> rd(16, 1.0f);
    std::vector<Request> requests;
    requests.push_back(comm.ibcast(bc, 0));
    requests.push_back(comm.ireduce(rd, 0));
    Comm::waitall(requests);
    EXPECT_EQ(bc[0], 3.0f);
    if (comm.rank() == 0) { EXPECT_EQ(rd[0], 2.0f); }
    EXPECT_TRUE(Comm::testall(requests));  // already complete
  });
}

TEST(Testall, PollsWithoutBlocking) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    std::vector<float> data(1 << 16, 1.0f);
    std::vector<Request> requests;
    requests.push_back(comm.iallreduce(data));
    while (!Comm::testall(requests)) {
    }
    EXPECT_EQ(data[0], 2.0f);
  });
}

TEST(RecvAny, MatchesAnySender) {
  Runtime runtime(4);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> v(1);
      std::vector<bool> seen(4, false);
      for (int i = 0; i < 3; ++i) {
        const int src = comm.recv_any<float>(v, 5);
        EXPECT_EQ(v[0], static_cast<float>(src));
        EXPECT_FALSE(seen[static_cast<std::size_t>(src)]) << "duplicate sender";
        seen[static_cast<std::size_t>(src)] = true;
      }
      EXPECT_FALSE(seen[0]);
    } else {
      std::vector<float> v{static_cast<float>(comm.rank())};
      comm.send<float>(v, 0, 5);
    }
  });
}

TEST(RecvAny, DoesNotStealOtherTags) {
  Runtime runtime(2);
  runtime.run([](Comm& comm) {
    if (comm.rank() == 1) {
      std::vector<float> a{1.0f};
      std::vector<float> b{2.0f};
      comm.send<float>(a, 0, 10);
      comm.send<float>(b, 0, 20);
    } else {
      std::vector<float> v(1);
      EXPECT_EQ(comm.recv_any<float>(v, 20), 1);
      EXPECT_EQ(v[0], 2.0f);
      EXPECT_EQ(comm.recv_any<float>(v, 10), 1);
      EXPECT_EQ(v[0], 1.0f);
    }
  });
}

TEST(RecvAny, SizeMismatchThrows) {
  Runtime runtime(2);
  EXPECT_THROW(runtime.run([](Comm& comm) {
    if (comm.rank() == 1) {
      std::vector<float> v{1.0f, 2.0f};
      comm.send<float>(v, 0, 0);
    } else {
      std::vector<float> v(1);
      comm.recv_any<float>(v, 0);
    }
  }),
               std::runtime_error);
}

TEST(Abort, FailingRankUnblocksPeersInsteadOfDeadlocking) {
  // Rank 1 dies before the collective; without MPI_Abort semantics every
  // other rank would block in its receive forever. The original exception
  // must surface, not the secondary AbortError unwinds.
  Runtime runtime(4);
  try {
    runtime.run([](Comm& comm) {
      if (comm.rank() == 1) throw std::logic_error("rank 1 exploded");
      std::vector<float> v(1 << 12, 1.0f);
      comm.allreduce(v);  // blocks on rank 1's contribution
    });
    FAIL() << "expected the failure to propagate";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "rank 1 exploded");
  }
}

TEST(Abort, OomDuringDistributedSetupDoesNotHang) {
  // The Figure 8 scenario in functional form: one rank cannot allocate its
  // model; the job must fail fast, not hang at the first broadcast.
  Runtime runtime(2);
  EXPECT_THROW(runtime.run([](Comm& comm) {
    if (comm.rank() == 1) {
      gpu::Device tiny(1, 1024);
      gpu::DeviceBuffer<float> too_big(tiny, 1 << 20);  // throws OOM
    }
    std::vector<float> v(64, 1.0f);
    comm.bcast(v, 0);
  }),
               gpu::OutOfMemoryError);
}

TEST(Abort, RuntimeIsReusableAfterAbort) {
  Runtime runtime(2);
  EXPECT_THROW(runtime.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("boom");
    std::vector<float> v(8, 1.0f);
    comm.allreduce(v);
  }),
               std::runtime_error);
  // Fresh world per run: the aborted state does not leak.
  runtime.run([](Comm& comm) {
    std::vector<float> v(8, 1.0f);
    comm.allreduce(v);
    EXPECT_EQ(v[0], 2.0f);
  });
}

}  // namespace
}  // namespace scaffe::mpi
