#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/distributed_solver.h"
#include "core/perf_model.h"
#include "data/dataset.h"
#include "models/zoo.h"
#include "mpi/comm.h"

namespace scaffe::core {
namespace {

// ---------------------------------------------------------------------------
// Functional distributed training
// ---------------------------------------------------------------------------

struct TrainOutcome {
  std::vector<float> root_params;
  std::vector<float> losses;  // root's local loss per iteration
};

/// Trains `iterations` of the MLP on a deterministic dataset with P ranks
/// under `config`, returning the root's final parameters.
TrainOutcome run_distributed(int nranks, int global_batch, int iterations,
                             ScaffeConfig config) {
  const int in_dim = 6;
  const int classes = 3;
  const int shard = global_batch / nranks;
  data::SyntheticImageDataset dataset(512, 1, 1, in_dim, classes);

  TrainOutcome outcome;
  std::mutex mutex;

  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    dl::SolverConfig solver_config;
    solver_config.base_lr = 0.05f;
    solver_config.seed = 5;
    DistributedSolver solver(comm, models::mlp_netspec(shard, in_dim, 8, classes),
                             solver_config, config);

    std::vector<float> data(static_cast<std::size_t>(shard * in_dim));
    std::vector<float> labels(static_cast<std::size_t>(shard));
    for (int iteration = 0; iteration < iterations; ++iteration) {
      // Rank r takes the r-th contiguous block of the global batch.
      for (int i = 0; i < shard; ++i) {
        const auto index = static_cast<std::uint64_t>(iteration * global_batch +
                                                      comm.rank() * shard + i);
        const data::Sample sample = dataset.make_sample(index);
        std::copy(sample.image.begin(), sample.image.end(),
                  data.begin() + static_cast<std::ptrdiff_t>(i * in_dim));
        labels[static_cast<std::size_t>(i)] = static_cast<float>(sample.label);
      }
      const IterationResult result = solver.train_iteration(data, labels);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        outcome.losses.push_back(result.local_loss);
      }
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      outcome.root_params.resize(solver.solver().net().param_count());
      solver.solver().net().flatten_params(outcome.root_params);
    }
  });
  return outcome;
}

/// Reference: one solver over the whole global batch.
TrainOutcome run_single(int global_batch, int iterations) {
  const int in_dim = 6;
  const int classes = 3;
  data::SyntheticImageDataset dataset(512, 1, 1, in_dim, classes);

  dl::SolverConfig solver_config;
  solver_config.base_lr = 0.05f;
  solver_config.seed = 5;
  dl::SgdSolver solver(models::mlp_netspec(global_batch, in_dim, 8, classes), solver_config);

  TrainOutcome outcome;
  std::vector<float> data(static_cast<std::size_t>(global_batch * in_dim));
  std::vector<float> labels(static_cast<std::size_t>(global_batch));
  for (int iteration = 0; iteration < iterations; ++iteration) {
    for (int i = 0; i < global_batch; ++i) {
      const data::Sample sample =
          dataset.make_sample(static_cast<std::uint64_t>(iteration * global_batch + i));
      std::copy(sample.image.begin(), sample.image.end(),
                data.begin() + static_cast<std::ptrdiff_t>(i * in_dim));
      labels[static_cast<std::size_t>(i)] = static_cast<float>(sample.label);
    }
    outcome.losses.push_back(solver.step(data, labels));
    solver.apply_update();
  }
  outcome.root_params.resize(solver.net().param_count());
  solver.net().flatten_params(outcome.root_params);
  return outcome;
}

void expect_params_close(const std::vector<float>& a, const std::vector<float>& b,
                         float tolerance) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tolerance) << "param " << i;
  }
}

class VariantSweep : public ::testing::TestWithParam<Variant> {};

TEST_P(VariantSweep, MatchesSingleProcessLargeBatchTraining) {
  // The core S-Caffe property: P synchronous solvers over shards of the
  // global batch follow the same trajectory as one solver over the batch.
  ScaffeConfig config;
  config.variant = GetParam();
  config.reduce = ReduceAlgo::binomial();
  const TrainOutcome distributed = run_distributed(4, 16, 8, config);
  const TrainOutcome single = run_single(16, 8);
  expect_params_close(distributed.root_params, single.root_params, 2e-4f);
}

TEST_P(VariantSweep, LossDecreasesOverTraining) {
  ScaffeConfig config;
  config.variant = GetParam();
  const TrainOutcome outcome = run_distributed(4, 32, 20, config);
  ASSERT_GE(outcome.losses.size(), 20u);
  EXPECT_LT(outcome.losses.back(), outcome.losses.front());
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantSweep,
                         ::testing::Values(Variant::SCB, Variant::SCOB, Variant::SCOBR),
                         [](const auto& info) {
                           return std::string(variant_name(info.param)) == "SC-B"    ? "SCB"
                                  : std::string(variant_name(info.param)) == "SC-OB" ? "SCOB"
                                                                                     : "SCOBR";
                         });

TEST(DistributedSolver, VariantsProduceIdenticalTrajectories) {
  // With the same reduce schedule, per-element addition order is identical
  // across variants, so parameters must match bit-for-bit.
  ScaffeConfig scb;
  scb.variant = Variant::SCB;
  scb.reduce = ReduceAlgo::cb(2);
  ScaffeConfig scob = scb;
  scob.variant = Variant::SCOB;
  ScaffeConfig scobr = scb;
  scobr.variant = Variant::SCOBR;

  const TrainOutcome a = run_distributed(4, 16, 6, scb);
  const TrainOutcome b = run_distributed(4, 16, 6, scob);
  const TrainOutcome c = run_distributed(4, 16, 6, scobr);
  EXPECT_EQ(a.root_params, b.root_params);
  EXPECT_EQ(a.root_params, c.root_params);
}

TEST(DistributedSolver, HierarchicalReduceGivesSameResult) {
  ScaffeConfig binomial;
  binomial.variant = Variant::SCOBR;
  binomial.reduce = ReduceAlgo::binomial();
  ScaffeConfig hr;
  hr.variant = Variant::SCOBR;
  hr.reduce = ReduceAlgo::cb(2);

  const TrainOutcome a = run_distributed(8, 16, 5, binomial);
  const TrainOutcome b = run_distributed(8, 16, 5, hr);
  // Different reduction orders: equal within float accumulation noise.
  expect_params_close(a.root_params, b.root_params, 1e-4f);
}

TEST(DistributedSolver, SingleRankDegeneratesToLocalSolver) {
  ScaffeConfig config;
  config.variant = Variant::SCOBR;
  const TrainOutcome distributed = run_distributed(1, 16, 6, config);
  const TrainOutcome single = run_single(16, 6);
  EXPECT_EQ(distributed.root_params, single.root_params);
}

// ---------------------------------------------------------------------------
// Performance model
// ---------------------------------------------------------------------------

TrainPerfConfig googlenet_config(int gpus, int batch = 1024) {
  TrainPerfConfig config;
  config.model = models::ModelDesc::googlenet();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = gpus;
  config.global_batch = batch;
  return config;
}

TEST(PerfModel, Deterministic) {
  const auto a = simulate_training_iteration(googlenet_config(64));
  const auto b = simulate_training_iteration(googlenet_config(64));
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.propagation_exposed, b.propagation_exposed);
}

TEST(PerfModel, StrongScalingSpeedsUpGoogleNet) {
  // Figure 8's headline: 160 GPUs beat 32 GPUs by ~2.5x.
  const auto at32 = simulate_training_iteration(googlenet_config(32));
  const auto at160 = simulate_training_iteration(googlenet_config(160));
  ASSERT_FALSE(at32.oom);
  ASSERT_FALSE(at160.oom);
  const double speedup = util::to_sec(at32.total) / util::to_sec(at160.total);
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 5.0);
}

TEST(PerfModel, OverlapLadderScbToScobToScobr) {
  TrainPerfConfig config = googlenet_config(64);
  config.variant = Variant::SCB;
  const auto scb = simulate_training_iteration(config);
  config.variant = Variant::SCOB;
  const auto scob = simulate_training_iteration(config);
  config.variant = Variant::SCOBR;
  const auto scobr = simulate_training_iteration(config);

  EXPECT_LT(scob.propagation_exposed, scb.propagation_exposed);
  EXPECT_EQ(scob.aggregation_exposed, scb.aggregation_exposed);
  EXPECT_LT(scobr.aggregation_exposed, scob.aggregation_exposed);
  EXPECT_LT(scobr.total, scb.total);
}

TEST(PerfModel, NaiveNbcWorseThanMultiStage) {
  // Figure 4 vs Figure 5.
  TrainPerfConfig config = googlenet_config(64);
  config.variant = Variant::SCOB;
  const auto multi_stage = simulate_training_iteration(config);
  config.naive_nbc = true;
  const auto naive = simulate_training_iteration(config);
  EXPECT_GE(naive.propagation_exposed, multi_stage.propagation_exposed);
}

TEST(PerfModel, HierarchicalReduceBeatsBinomialAtScale) {
  TrainPerfConfig config = googlenet_config(160);
  config.variant = Variant::SCB;
  config.reduce = ReduceAlgo::binomial();
  const auto binomial = simulate_training_iteration(config);
  config.reduce = ReduceAlgo::cb(16);
  const auto hr = simulate_training_iteration(config);
  EXPECT_LT(hr.aggregation_exposed, binomial.aggregation_exposed);
}

TEST(PerfModel, OomWhenBatchTooLargeForDevice) {
  // Figure 8's missing points: a large batch over few solvers.
  TrainPerfConfig config;
  config.model = models::ModelDesc::alexnet();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = 2;
  config.global_batch = 8192;  // 4096/GPU of AlexNet activations >> 12 GB
  const auto result = simulate_training_iteration(config);
  EXPECT_TRUE(result.oom);

  config.gpus = 160;
  const auto spread = simulate_training_iteration(config);
  EXPECT_FALSE(spread.oom);
}

TEST(PerfModel, LmdbReaderFailsPast64) {
  TrainPerfConfig config = googlenet_config(128);
  config.reader = ReaderBackendKind::LmdbSim;
  const auto result = simulate_training_iteration(config);
  EXPECT_TRUE(result.reader_failed);

  config.reader = ReaderBackendKind::LustreImageData;
  const auto lustre = simulate_training_iteration(config);
  EXPECT_FALSE(lustre.reader_failed);
}

TEST(PerfModel, WeakScalingKeepsPerGpuBatch) {
  TrainPerfConfig config = googlenet_config(8, 64);
  config.scaling = Scaling::Weak;
  const auto weak = simulate_training_iteration(config);
  EXPECT_EQ(weak.batch_per_gpu, 64);
  config.scaling = Scaling::Strong;
  const auto strong = simulate_training_iteration(config);
  EXPECT_EQ(strong.batch_per_gpu, 8);
}

TEST(PerfModel, AggregationLatencyMatchesTable2Quantity) {
  TrainPerfConfig config;
  config.model = models::ModelDesc::caffenet();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = 8;
  config.reduce = ReduceAlgo::binomial();
  const TimeNs stock = aggregation_latency(config);
  config.reduce = ReduceAlgo::cb(8);
  config.comm_policy = coll::ExecPolicy::hr_gdr();
  const TimeNs hr = aggregation_latency(config);
  EXPECT_LT(hr, stock);
}

}  // namespace
}  // namespace scaffe::core
