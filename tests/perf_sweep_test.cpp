// Parameterized property sweeps over the training performance model: the
// invariants every figure implicitly relies on, checked across models,
// clusters, variants, and scales.
#include <gtest/gtest.h>

#include "baselines/comparators.h"
#include "baselines/param_server.h"
#include "core/perf_model.h"
#include "models/descriptors.h"

namespace scaffe::core {
namespace {

models::ModelDesc model_by_name(const std::string& name) {
  if (name == "alexnet") return models::ModelDesc::alexnet();
  if (name == "googlenet") return models::ModelDesc::googlenet();
  if (name == "vgg16") return models::ModelDesc::vgg16();
  return models::ModelDesc::cifar10_quick();
}

struct SweepCase {
  const char* model;
  int gpus;
  int batch;
};

class ModelScaleSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  TrainPerfConfig config() const {
    TrainPerfConfig c;
    c.model = model_by_name(GetParam().model);
    c.cluster = net::ClusterSpec::cluster_a();
    c.gpus = GetParam().gpus;
    c.global_batch = GetParam().batch;
    return c;
  }
};

TEST_P(ModelScaleSweep, BreakdownSumsToTotal) {
  const auto r = simulate_training_iteration(config());
  if (r.oom || r.reader_failed) GTEST_SKIP();
  EXPECT_EQ(r.propagation_exposed + r.forward + r.backward + r.aggregation_exposed +
                r.update + r.reader_stall,
            r.total);
  EXPECT_GT(r.samples_per_sec, 0.0);
}

TEST_P(ModelScaleSweep, OverlapVariantsNeverSlower) {
  TrainPerfConfig c = config();
  c.variant = Variant::SCB;
  const auto scb = simulate_training_iteration(c);
  if (scb.oom || scb.reader_failed) GTEST_SKIP();
  c.variant = Variant::SCOB;
  const auto scob = simulate_training_iteration(c);
  c.variant = Variant::SCOBR;
  const auto scobr = simulate_training_iteration(c);
  EXPECT_LE(scob.total, scb.total);
  EXPECT_LE(scobr.total, scob.total);
}

TEST_P(ModelScaleSweep, ComputePhasesIndependentOfVariant) {
  TrainPerfConfig c = config();
  c.variant = Variant::SCB;
  const auto scb = simulate_training_iteration(c);
  if (scb.oom || scb.reader_failed) GTEST_SKIP();
  c.variant = Variant::SCOBR;
  const auto scobr = simulate_training_iteration(c);
  EXPECT_EQ(scb.forward, scobr.forward);
  EXPECT_EQ(scb.backward, scobr.backward);
  EXPECT_EQ(scb.update, scobr.update);
}

TEST_P(ModelScaleSweep, HierarchicalReduceNeverWorseBeyondOneChain) {
  TrainPerfConfig c = config();
  if (c.gpus <= 16) GTEST_SKIP();  // single chain degenerates to the same tree
  c.variant = Variant::SCB;
  c.reduce = ReduceAlgo::binomial();
  const auto flat = simulate_training_iteration(c);
  if (flat.oom || flat.reader_failed) GTEST_SKIP();
  c.reduce = ReduceAlgo::cb(16);
  const auto hier = simulate_training_iteration(c);
  EXPECT_LE(hier.aggregation_exposed, flat.aggregation_exposed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelScaleSweep,
    ::testing::Values(SweepCase{"alexnet", 8, 512}, SweepCase{"alexnet", 32, 1024},
                      SweepCase{"googlenet", 16, 512}, SweepCase{"googlenet", 64, 1024},
                      SweepCase{"googlenet", 160, 1024}, SweepCase{"cifar10", 8, 2048},
                      SweepCase{"cifar10", 64, 8192}, SweepCase{"vgg16", 64, 512},
                      SweepCase{"vgg16", 160, 640}),
    [](const auto& info) {
      return std::string(info.param.model) + "_" + std::to_string(info.param.gpus) + "gpu";
    });

TEST(PerfSweep, MoreGpusNeverIncreasesComputeTime) {
  // Strong scaling: per-GPU compute shrinks monotonically with P.
  TrainPerfConfig c;
  c.model = models::ModelDesc::googlenet();
  c.cluster = net::ClusterSpec::cluster_a();
  c.global_batch = 1920;  // divisible by every P below
  util::TimeNs prev = std::numeric_limits<util::TimeNs>::max();
  // Start at 8 GPUs: fewer cannot hold 1920 GoogLeNet samples (true OOM).
  for (int gpus : {8, 16, 32, 64, 96, 160}) {
    c.gpus = gpus;
    const auto r = simulate_training_iteration(c);
    ASSERT_FALSE(r.oom);
    EXPECT_LE(r.forward + r.backward, prev) << gpus;
    prev = r.forward + r.backward;
  }
}

TEST(PerfSweep, ClusterBHasFasterInterconnectSlowerScaleCeiling) {
  // EDR beats FDR per-link, but Cluster-B tops out at 40 GPUs.
  TrainPerfConfig c;
  c.model = models::ModelDesc::alexnet();
  c.gpus = 16;
  c.global_batch = 512;
  c.variant = Variant::SCB;
  c.cluster = net::ClusterSpec::cluster_a();
  const auto on_a = simulate_training_iteration(c);
  c.cluster = net::ClusterSpec::cluster_b();
  c.reduce = ReduceAlgo::cb(2);
  const auto on_b = simulate_training_iteration(c);
  EXPECT_GT(on_a.total, 0);
  EXPECT_GT(on_b.total, 0);
  c.gpus = 64;
  EXPECT_THROW(simulate_training_iteration(c), std::runtime_error);  // only 40 GPUs
}

TEST(PerfSweep, VggGradientsNeedHierarchicalReduceMost) {
  // VGG16's 552MB gradients: the HR speedup on aggregation should exceed
  // GoogLeNet's (26MB) — bigger buffers pipeline better.
  auto agg_ratio = [](models::ModelDesc model) {
    TrainPerfConfig c;
    c.model = std::move(model);
    c.cluster = net::ClusterSpec::cluster_a();
    c.gpus = 160;
    c.reduce = ReduceAlgo::binomial();
    const auto flat = aggregation_latency(c);
    c.reduce = ReduceAlgo::cc(16);
    const auto hier = aggregation_latency(c);
    return static_cast<double>(flat) / static_cast<double>(hier);
  };
  EXPECT_GT(agg_ratio(models::ModelDesc::vgg16()), agg_ratio(models::ModelDesc::googlenet()));
}

TEST(PerfSweep, ParamServerAlwaysTrailsReductionTree) {
  for (int gpus : {2, 4, 8, 12, 16}) {
    TrainPerfConfig c;
    c.model = models::ModelDesc::alexnet();
    c.cluster = net::ClusterSpec::cluster_b();
    c.gpus = gpus;
    c.global_batch = 32 * gpus;
    c.scaling = Scaling::Weak;
    c.global_batch = 32;
    const auto scaffe = simulate_training_iteration(c);
    const auto ps = baselines::simulate_param_server_iteration(c);
    ASSERT_TRUE(ps.has_value()) << gpus;
    EXPECT_LT(ps->samples_per_sec, scaffe.samples_per_sec) << gpus;
  }
}

TEST(PerfSweep, AllreduceModeHasNoPropagationPhase) {
  TrainPerfConfig c;
  c.model = models::ModelDesc::googlenet();
  c.cluster = net::ClusterSpec::cluster_a();
  c.gpus = 64;
  c.global_batch = 1024;
  c.aggregation = Aggregation::AllreduceSgd;
  const auto tree_mode = simulate_training_iteration(c);
  EXPECT_EQ(tree_mode.propagation_exposed, 0);
  EXPECT_GT(tree_mode.aggregation_exposed, 0);
  EXPECT_GT(tree_mode.samples_per_sec, 0.0);

  c.ring_allreduce = true;
  const auto ring_mode = simulate_training_iteration(c);
  EXPECT_EQ(ring_mode.propagation_exposed, 0);
  EXPECT_GT(ring_mode.aggregation_exposed, 0);
}

TEST(PerfSweep, AllreduceModeCompetitiveWithRootUpdate) {
  // The successor design should land in the same performance class as the
  // paper's root-update SC-B (both blocking): within 2x either way.
  TrainPerfConfig c;
  c.model = models::ModelDesc::googlenet();
  c.cluster = net::ClusterSpec::cluster_a();
  c.gpus = 64;
  c.global_batch = 1024;
  c.variant = Variant::SCB;
  const auto tree = simulate_training_iteration(c);
  c.aggregation = Aggregation::AllreduceSgd;
  c.ring_allreduce = true;
  const auto ring = simulate_training_iteration(c);
  const double ratio = ring.samples_per_sec / tree.samples_per_sec;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

}  // namespace
}  // namespace scaffe::core
