#include <gtest/gtest.h>

#include "models/descriptors.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace scaffe::models {
namespace {

TEST(Descriptors, AlexnetMatchesPublishedParameterCount) {
  const ModelDesc m = ModelDesc::alexnet();
  // ~61 M parameters, ~244 MB of float gradients — the paper's "256 MB".
  EXPECT_NEAR(static_cast<double>(m.param_count()), 60.97e6, 0.2e6);
  EXPECT_GT(m.param_bytes(), 230 * util::kMiB);
  EXPECT_LT(m.param_bytes(), 256 * util::kMiB);
}

TEST(Descriptors, GooglenetMatchesPublishedParameterCount) {
  const ModelDesc m = ModelDesc::googlenet();
  EXPECT_NEAR(static_cast<double>(m.param_count()), 6.9e6, 0.3e6);
  // ~1.57 G MACs = ~3.1 GFLOPs forward per sample.
  EXPECT_NEAR(m.fwd_flops_per_sample(), 3.1e9, 0.5e9);
}

TEST(Descriptors, Cifar10QuickMatchesReferenceSolver) {
  EXPECT_EQ(ModelDesc::cifar10_quick().param_count(), 145578u);
}

TEST(Descriptors, Vgg16IsTheBigModel) {
  const ModelDesc m = ModelDesc::vgg16();
  EXPECT_NEAR(static_cast<double>(m.param_count()), 138.3e6, 1e6);
  EXPECT_GT(m.param_bytes(), 500 * util::kMiB);
}

TEST(Descriptors, BackwardCostsTwiceForward) {
  for (const ModelDesc& m : {ModelDesc::alexnet(), ModelDesc::googlenet()}) {
    EXPECT_NEAR(m.bwd_flops_per_sample() / m.fwd_flops_per_sample(), 2.0, 1e-9) << m.name;
  }
}

TEST(Descriptors, GooglenetMoreCommIntensiveThanCifarQuick) {
  // Section 6.3: GoogLeNet is communication-intensive; CIFAR10-quick is
  // compute-intensive with small-scale communication... per unit of compute
  // CIFAR10-quick actually moves MORE bytes (tiny model), so the relevant
  // comparison is absolute message size: GoogLeNet's gradients are ~48x
  // larger while per-sample compute is only ~8x larger.
  const ModelDesc g = ModelDesc::googlenet();
  const ModelDesc c = ModelDesc::cifar10_quick();
  EXPECT_GT(g.param_bytes(), 40 * c.param_bytes());
  EXPECT_LT(g.fwd_flops_per_sample(), 200 * c.fwd_flops_per_sample());
}

TEST(Descriptors, AlexnetDominatedByFcLayers) {
  // The fc6/fc7/fc8 tail holds ~96% of AlexNet's parameters — why per-layer
  // multi-stage aggregation (SC-OBR) has most of its bytes late in the
  // backward pass, right where overlap helps.
  const ModelDesc m = ModelDesc::alexnet();
  std::size_t fc = 0;
  for (const auto& layer : m.layers) {
    if (layer.name.rfind("fc", 0) == 0) fc += layer.param_count;
  }
  EXPECT_GT(static_cast<double>(fc) / static_cast<double>(m.param_count()), 0.9);
}

TEST(Zoo, SpecsBuildWithoutThrowing) {
  EXPECT_NO_THROW(dl::Net(cifar10_quick_netspec(1)));
  EXPECT_NO_THROW(dl::Net(cifar10_quick_netspec(2, /*with_accuracy=*/true)));
  EXPECT_NO_THROW(dl::Net(mlp_netspec(2, 4, 8, 3)));
  EXPECT_NO_THROW(dl::Net(lenet_netspec(1)));
  EXPECT_NO_THROW(dl::Net(mini_alexnet_netspec(1)));
  EXPECT_NO_THROW(dl::Net(tiny_inception_netspec(1)));
}

TEST(Zoo, AccuracyVariantReportsAccuracyBlob) {
  dl::Net net(cifar10_quick_netspec(4, /*with_accuracy=*/true));
  net.forward();
  const float acc = net.blob("accuracy").data()[0];
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 1.0f);
}

TEST(Zoo, TinyInceptionConcatShapes) {
  dl::Net net(tiny_inception_netspec(2));
  EXPECT_EQ(net.blob("inception_out").shape(), (std::vector<int>{2, 24, 16, 16}));
}

TEST(Zoo, LenetParamCount) {
  dl::Net net(lenet_netspec(1));
  EXPECT_EQ(net.param_count(), 431080u);
}

}  // namespace
}  // namespace scaffe::models
