#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "baselines/comparators.h"
#include "baselines/param_server.h"
#include "core/distributed_solver.h"
#include "data/dataset.h"
#include "models/zoo.h"

namespace scaffe::baselines {
namespace {

using core::ReduceAlgo;
using core::ScaffeConfig;
using core::TrainPerfConfig;
using core::Variant;

// ---------------------------------------------------------------------------
// Functional parameter server
// ---------------------------------------------------------------------------

std::vector<float> run_param_server(int nranks, int global_batch, int iterations) {
  const int in_dim = 6;
  const int classes = 3;
  const int shard = global_batch / nranks;
  data::SyntheticImageDataset dataset(512, 1, 1, in_dim, classes);

  std::vector<float> root_params;
  std::mutex mutex;
  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    dl::SolverConfig solver_config;
    solver_config.base_lr = 0.05f;
    solver_config.seed = 5;
    ParamServerSolver server(comm, models::mlp_netspec(shard, in_dim, 8, classes),
                             solver_config);
    std::vector<float> data(static_cast<std::size_t>(shard * in_dim));
    std::vector<float> labels(static_cast<std::size_t>(shard));
    for (int iteration = 0; iteration < iterations; ++iteration) {
      for (int i = 0; i < shard; ++i) {
        const auto index = static_cast<std::uint64_t>(iteration * global_batch +
                                                      comm.rank() * shard + i);
        const data::Sample sample = dataset.make_sample(index);
        std::copy(sample.image.begin(), sample.image.end(),
                  data.begin() + static_cast<std::ptrdiff_t>(i * in_dim));
        labels[static_cast<std::size_t>(i)] = static_cast<float>(sample.label);
      }
      server.train_iteration(data, labels);
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      root_params.resize(server.solver().net().param_count());
      server.solver().net().flatten_params(root_params);
    }
  });
  return root_params;
}

TEST(ParamServer, TrainsAndMatchesReductionTreeMath) {
  // Synchronous PS computes the same averaged gradient as the reduction
  // tree; with identical seeds the trajectories agree to float noise.
  const std::vector<float> ps = run_param_server(4, 16, 6);

  // Reference via the S-Caffe solver (binomial tree).
  std::vector<float> tree;
  std::mutex mutex;
  data::SyntheticImageDataset dataset(512, 1, 1, 6, 3);
  mpi::Runtime runtime(4);
  runtime.run([&](mpi::Comm& comm) {
    dl::SolverConfig solver_config;
    solver_config.base_lr = 0.05f;
    solver_config.seed = 5;
    ScaffeConfig config;
    config.variant = Variant::SCB;
    config.reduce = ReduceAlgo::binomial();
    core::DistributedSolver solver(comm, models::mlp_netspec(4, 6, 8, 3), solver_config,
                                   config);
    std::vector<float> data(24);
    std::vector<float> labels(4);
    for (int iteration = 0; iteration < 6; ++iteration) {
      for (int i = 0; i < 4; ++i) {
        const auto index =
            static_cast<std::uint64_t>(iteration * 16 + comm.rank() * 4 + i);
        const data::Sample sample = dataset.make_sample(index);
        std::copy(sample.image.begin(), sample.image.end(), data.begin() + i * 6);
        labels[static_cast<std::size_t>(i)] = static_cast<float>(sample.label);
      }
      solver.train_iteration(data, labels);
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      tree.resize(solver.solver().net().param_count());
      solver.solver().net().flatten_params(tree);
    }
  });

  ASSERT_EQ(ps.size(), tree.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_NEAR(ps[i], tree[i], 1e-4f) << "param " << i;
  }
}

TEST(ParamServer, RejectsUnsupportedScale) {
  // Inspur-Caffe "didn't run for less than 2 GPUs and more than 16".
  mpi::Runtime runtime(1);
  EXPECT_THROW(runtime.run([&](mpi::Comm& comm) {
    dl::SolverConfig solver_config;
    ParamServerSolver server(comm, models::mlp_netspec(2, 4, 4, 2), solver_config);
  }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Modelled comparators
// ---------------------------------------------------------------------------

TrainPerfConfig alexnet_b(int gpus) {
  TrainPerfConfig config;
  config.model = models::ModelDesc::alexnet();
  config.cluster = net::ClusterSpec::cluster_b();
  config.gpus = gpus;
  config.global_batch = 256;
  return config;
}

TEST(Comparators, ParamServerModelSlowerThanScaffeAt16) {
  const TrainPerfConfig config = alexnet_b(16);
  const auto scaffe = core::simulate_training_iteration(config);
  const auto ps = simulate_param_server_iteration(config);
  ASSERT_TRUE(ps.has_value());
  EXPECT_LT(ps->samples_per_sec, scaffe.samples_per_sec);
}

TEST(Comparators, ParamServerModelOutsideItsEnvelope) {
  EXPECT_FALSE(simulate_param_server_iteration(alexnet_b(32)).has_value());
  EXPECT_FALSE(simulate_param_server_iteration(alexnet_b(1)).has_value());
}

TEST(Comparators, ParamServerDegradesWithScale) {
  const auto at4 = simulate_param_server_iteration(alexnet_b(4));
  const auto at16 = simulate_param_server_iteration(alexnet_b(16));
  ASSERT_TRUE(at4 && at16);
  // Server serialization: per-GPU efficiency collapses as workers grow.
  EXPECT_LT(at16->samples_per_sec / 16.0, at4->samples_per_sec / 4.0);
}

TEST(Comparators, CaffeIsSingleNodeOnly) {
  TrainPerfConfig config = alexnet_b(2);
  EXPECT_TRUE(simulate_caffe_iteration(config).has_value());
  config.gpus = 4;  // Cluster-B has 2 CUDA devices per node
  EXPECT_FALSE(simulate_caffe_iteration(config).has_value());
}

TEST(Comparators, NvCaffeFasterThanStockCaffe) {
  TrainPerfConfig config;
  config.model = models::ModelDesc::alexnet();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = 8;
  config.global_batch = 256;
  const auto stock = simulate_caffe_iteration(config);
  const auto nv = simulate_nvcaffe_iteration(config);
  ASSERT_TRUE(stock && nv);
  EXPECT_GT(nv->samples_per_sec, stock->samples_per_sec);
}

TEST(Comparators, ScaffeBeatsNvCaffeSingleNodeViaOverlap) {
  // The abstract's 14%/9% single-node claim: same hardware, same tree costs,
  // S-Caffe wins through SC-OBR overlap + parallel readers.
  TrainPerfConfig config;
  config.model = models::ModelDesc::alexnet();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = 8;
  config.global_batch = 1024;
  config.variant = Variant::SCOBR;
  config.reduce = ReduceAlgo::cb(8);
  const auto scaffe = core::simulate_training_iteration(config);
  const auto nv = simulate_nvcaffe_iteration(config);
  ASSERT_TRUE(nv.has_value());
  const double gain = scaffe.samples_per_sec / nv->samples_per_sec;
  EXPECT_GT(gain, 1.02);
  EXPECT_LT(gain, 1.6);
}

TEST(Comparators, CntkComparableToScaffeAtSmallScale) {
  // Figure 10: "CNTK and S-Caffe achieve comparable performance".
  TrainPerfConfig config = alexnet_b(8);
  config.global_batch = 512;
  const auto scaffe = core::simulate_training_iteration(config);
  const auto cntk = simulate_cntk_iteration(config);
  const double ratio = scaffe.samples_per_sec / cntk.samples_per_sec;
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 2.0);
}

}  // namespace
}  // namespace scaffe::baselines
