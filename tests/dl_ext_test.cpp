#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dl/netspec_text.h"
#include "dl/solver.h"
#include "dl/snapshot.h"
#include "models/zoo.h"

namespace scaffe::dl {
namespace {

constexpr const char* kCifarText = R"(
# the reference cifar10_quick network
name: cifar10_quick
input data 2 3 32 32
input label 2
conv conv1 data conv1 32 5 1 2
pool pool1 conv1 pool1 max 3 2 0
relu relu1 pool1 relu1
conv conv2 relu1 conv2 32 5 1 2
relu relu2 conv2 relu2
pool pool2 relu2 pool2 ave 3 2 0
conv conv3 pool2 conv3 64 5 1 2
relu relu3 conv3 relu3
pool pool3 relu3 pool3 ave 3 2 0
ip ip1 pool3 ip1 64
ip ip2 ip1 ip2 10
softmax_loss loss ip2 label loss
)";

TEST(NetSpecText, ParsesCifarQuick) {
  const NetSpec spec = parse_netspec(kCifarText);
  EXPECT_EQ(spec.name, "cifar10_quick");
  ASSERT_EQ(spec.inputs.size(), 2u);
  EXPECT_EQ(spec.inputs[0].shape, (std::vector<int>{2, 3, 32, 32}));
  EXPECT_EQ(spec.layers.size(), 12u);

  // The parsed net matches the programmatic builder's parameter count.
  Net parsed(spec);
  Net built(models::cifar10_quick_netspec(2));
  EXPECT_EQ(parsed.param_count(), built.param_count());
}

TEST(NetSpecText, ParsedNetTrainsIdenticallyToBuilt) {
  Net parsed(parse_netspec(kCifarText), 7);
  Net built(models::cifar10_quick_netspec(2), 7);
  std::vector<float> a(parsed.param_count());
  std::vector<float> b(built.param_count());
  parsed.flatten_params(a);
  built.flatten_params(b);
  EXPECT_EQ(a, b);  // same layer order + same seed => identical init
}

TEST(NetSpecText, RoundTripsEverySpecInTheZoo) {
  for (const NetSpec& spec :
       {models::cifar10_quick_netspec(4), models::cifar10_quick_netspec(4, true),
        models::mlp_netspec(2, 8, 16, 4), models::lenet_netspec(2),
        models::mini_alexnet_netspec(2), models::tiny_inception_netspec(2)}) {
    const std::string text = netspec_to_text(spec);
    const NetSpec reparsed = parse_netspec(text);
    EXPECT_EQ(netspec_to_text(reparsed), text) << spec.name;
    EXPECT_NO_THROW(Net net(reparsed)) << spec.name;
  }
}

TEST(NetSpecText, ConcatAndSplitSyntax) {
  const NetSpec spec = parse_netspec(R"(
name: dag
input data 2 8
input label 2
split sp data a b
ip f1 a f1 4
ip f2 b f2 4
concat cc f1 f2 -> merged
ip out merged out 3
softmax_loss loss out label loss
)");
  Net net(spec);
  EXPECT_EQ(net.blob("merged").shape(), (std::vector<int>{2, 8}));
}

TEST(NetSpecText, ErrorsCarryLineNumbers) {
  try {
    parse_netspec("name: x\nbogus_directive a b c\n");
    FAIL() << "expected NetSpecParseError";
  } catch (const NetSpecParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(NetSpecText, RejectsBadArity) {
  EXPECT_THROW(parse_netspec("conv c1 data out 32\n"), NetSpecParseError);
  EXPECT_THROW(parse_netspec("pool p1 a b sideways 3 2 0\n"), NetSpecParseError);
  EXPECT_THROW(parse_netspec("input\n"), NetSpecParseError);
  EXPECT_THROW(parse_netspec("ip f a b notanumber\n"), NetSpecParseError);
  EXPECT_THROW(parse_netspec("concat c a b c\n"), NetSpecParseError);
}

TEST(NetSpecText, CommentsAndBlankLinesIgnored) {
  const NetSpec spec = parse_netspec("\n# full-line comment\nname: x  # trailing\n\n");
  EXPECT_EQ(spec.name, "x");
  EXPECT_TRUE(spec.layers.empty());
}

class SnapshotTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_ = std::filesystem::temp_directory_path() / "scaffe_snapshot_test.bin";
};

TEST_F(SnapshotTest, SaveLoadRoundTrip) {
  Net source(models::mlp_netspec(2, 8, 16, 4), 3);
  save_params(source, path_);

  Net target(models::mlp_netspec(2, 8, 16, 4), 999);  // different init
  load_params(target, path_);

  std::vector<float> a(source.param_count());
  std::vector<float> b(target.param_count());
  source.flatten_params(a);
  target.flatten_params(b);
  EXPECT_EQ(a, b);
}

TEST_F(SnapshotTest, RejectsParamCountMismatch) {
  Net small(models::mlp_netspec(2, 8, 16, 4), 3);
  save_params(small, path_);
  Net big(models::mlp_netspec(2, 8, 32, 4), 3);
  EXPECT_THROW(load_params(big, path_), std::runtime_error);
}

TEST_F(SnapshotTest, RejectsGarbageFile) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a snapshot", f);
  std::fclose(f);
  Net net(models::mlp_netspec(2, 8, 16, 4));
  EXPECT_THROW(load_params(net, path_), std::runtime_error);
}

TEST_F(SnapshotTest, MissingFileThrows) {
  Net net(models::mlp_netspec(2, 8, 16, 4));
  EXPECT_THROW(load_params(net, "/nonexistent/dir/snapshot.bin"), std::runtime_error);
}

TEST_F(SnapshotTest, ResumedTrainingContinuesFromSavedPoint) {
  SolverConfig config;
  config.base_lr = 0.05f;
  SgdSolver solver(models::mlp_netspec(4, 6, 8, 3), config);
  std::vector<float> data(24, 0.5f);
  std::vector<float> labels(4, 1.0f);
  for (int i = 0; i < 5; ++i) {
    solver.step(data, labels);
    solver.apply_update();
  }
  save_params(solver.net(), path_);
  const float loss_at_save = solver.step(data, labels);

  SgdSolver resumed(models::mlp_netspec(4, 6, 8, 3), config);
  load_params(resumed.net(), path_);
  const float resumed_loss = resumed.step(data, labels);
  EXPECT_FLOAT_EQ(resumed_loss, loss_at_save);
}

}  // namespace
}  // namespace scaffe::dl
