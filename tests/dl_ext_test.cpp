#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dl/netspec_text.h"
#include "dl/solver.h"
#include "dl/snapshot.h"
#include "models/zoo.h"

namespace scaffe::dl {
namespace {

constexpr const char* kCifarText = R"(
# the reference cifar10_quick network
name: cifar10_quick
input data 2 3 32 32
input label 2
conv conv1 data conv1 32 5 1 2
pool pool1 conv1 pool1 max 3 2 0
relu relu1 pool1 relu1
conv conv2 relu1 conv2 32 5 1 2
relu relu2 conv2 relu2
pool pool2 relu2 pool2 ave 3 2 0
conv conv3 pool2 conv3 64 5 1 2
relu relu3 conv3 relu3
pool pool3 relu3 pool3 ave 3 2 0
ip ip1 pool3 ip1 64
ip ip2 ip1 ip2 10
softmax_loss loss ip2 label loss
)";

TEST(NetSpecText, ParsesCifarQuick) {
  const NetSpec spec = parse_netspec(kCifarText);
  EXPECT_EQ(spec.name, "cifar10_quick");
  ASSERT_EQ(spec.inputs.size(), 2u);
  EXPECT_EQ(spec.inputs[0].shape, (std::vector<int>{2, 3, 32, 32}));
  EXPECT_EQ(spec.layers.size(), 12u);

  // The parsed net matches the programmatic builder's parameter count.
  Net parsed(spec);
  Net built(models::cifar10_quick_netspec(2));
  EXPECT_EQ(parsed.param_count(), built.param_count());
}

TEST(NetSpecText, ParsedNetTrainsIdenticallyToBuilt) {
  Net parsed(parse_netspec(kCifarText), 7);
  Net built(models::cifar10_quick_netspec(2), 7);
  std::vector<float> a(parsed.param_count());
  std::vector<float> b(built.param_count());
  parsed.flatten_params(a);
  built.flatten_params(b);
  EXPECT_EQ(a, b);  // same layer order + same seed => identical init
}

TEST(NetSpecText, RoundTripsEverySpecInTheZoo) {
  for (const NetSpec& spec :
       {models::cifar10_quick_netspec(4), models::cifar10_quick_netspec(4, true),
        models::mlp_netspec(2, 8, 16, 4), models::lenet_netspec(2),
        models::mini_alexnet_netspec(2), models::tiny_inception_netspec(2)}) {
    const std::string text = netspec_to_text(spec);
    const NetSpec reparsed = parse_netspec(text);
    EXPECT_EQ(netspec_to_text(reparsed), text) << spec.name;
    EXPECT_NO_THROW(Net net(reparsed)) << spec.name;
  }
}

TEST(NetSpecText, ConcatAndSplitSyntax) {
  const NetSpec spec = parse_netspec(R"(
name: dag
input data 2 8
input label 2
split sp data a b
ip f1 a f1 4
ip f2 b f2 4
concat cc f1 f2 -> merged
ip out merged out 3
softmax_loss loss out label loss
)");
  Net net(spec);
  EXPECT_EQ(net.blob("merged").shape(), (std::vector<int>{2, 8}));
}

TEST(NetSpecText, ErrorsCarryLineNumbers) {
  try {
    parse_netspec("name: x\nbogus_directive a b c\n");
    FAIL() << "expected NetSpecParseError";
  } catch (const NetSpecParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(NetSpecText, RejectsBadArity) {
  EXPECT_THROW(parse_netspec("conv c1 data out 32\n"), NetSpecParseError);
  EXPECT_THROW(parse_netspec("pool p1 a b sideways 3 2 0\n"), NetSpecParseError);
  EXPECT_THROW(parse_netspec("input\n"), NetSpecParseError);
  EXPECT_THROW(parse_netspec("ip f a b notanumber\n"), NetSpecParseError);
  EXPECT_THROW(parse_netspec("concat c a b c\n"), NetSpecParseError);
}

TEST(NetSpecText, CommentsAndBlankLinesIgnored) {
  const NetSpec spec = parse_netspec("\n# full-line comment\nname: x  # trailing\n\n");
  EXPECT_EQ(spec.name, "x");
  EXPECT_TRUE(spec.layers.empty());
}

class SnapshotTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_ = std::filesystem::temp_directory_path() / "scaffe_snapshot_test.bin";
};

TEST_F(SnapshotTest, SaveLoadRoundTrip) {
  Net source(models::mlp_netspec(2, 8, 16, 4), 3);
  save_params(source, path_);

  Net target(models::mlp_netspec(2, 8, 16, 4), 999);  // different init
  load_params(target, path_);

  std::vector<float> a(source.param_count());
  std::vector<float> b(target.param_count());
  source.flatten_params(a);
  target.flatten_params(b);
  EXPECT_EQ(a, b);
}

TEST_F(SnapshotTest, RejectsParamCountMismatch) {
  Net small(models::mlp_netspec(2, 8, 16, 4), 3);
  save_params(small, path_);
  Net big(models::mlp_netspec(2, 8, 32, 4), 3);
  EXPECT_THROW(load_params(big, path_), std::runtime_error);
}

TEST_F(SnapshotTest, RejectsGarbageFile) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a snapshot", f);
  std::fclose(f);
  Net net(models::mlp_netspec(2, 8, 16, 4));
  EXPECT_THROW(load_params(net, path_), std::runtime_error);
}

TEST_F(SnapshotTest, MissingFileThrows) {
  Net net(models::mlp_netspec(2, 8, 16, 4));
  EXPECT_THROW(load_params(net, "/nonexistent/dir/snapshot.bin"), std::runtime_error);
}

// --- v2 robustness: corruption, truncation, trailing bytes, legacy v1 ---------

namespace {

std::vector<char> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in);
  std::vector<char> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_file_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST_F(SnapshotTest, DetectsSingleFlippedByteViaCrc) {
  Net net(models::mlp_netspec(2, 8, 16, 4), 3);
  save_params(net, path_);
  std::vector<char> bytes = read_file_bytes(path_);
  bytes[bytes.size() / 2] ^= 0x01;  // one bit in the payload
  write_file_bytes(path_, bytes);
  try {
    load_params(net, path_);
    FAIL() << "corrupted snapshot loaded";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("CRC"), std::string::npos);
  }
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  Net net(models::mlp_netspec(2, 8, 16, 4), 3);
  save_params(net, path_);
  std::vector<char> bytes = read_file_bytes(path_);
  // Every possible truncation point must be rejected, not silently loaded.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{20}, std::size_t{6}}) {
    std::vector<char> cut(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    write_file_bytes(path_, cut);
    EXPECT_THROW(load_params(net, path_), std::runtime_error) << "kept " << keep;
  }
}

TEST_F(SnapshotTest, RejectsTrailingBytes) {
  Net net(models::mlp_netspec(2, 8, 16, 4), 3);
  save_params(net, path_);
  std::vector<char> bytes = read_file_bytes(path_);
  bytes.push_back(0x00);
  write_file_bytes(path_, bytes);
  try {
    load_params(net, path_);
    FAIL() << "snapshot with trailing bytes loaded";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("trailing"), std::string::npos);
  }
}

TEST_F(SnapshotTest, RejectsEmptyFile) {
  write_file_bytes(path_, {});
  Net net(models::mlp_netspec(2, 8, 16, 4));
  EXPECT_THROW(load_params(net, path_), std::runtime_error);
}

TEST_F(SnapshotTest, LoadsLegacyV1Files) {
  Net source(models::mlp_netspec(2, 8, 16, 4), 3);
  std::vector<float> params(source.param_count());
  source.flatten_params(params);

  // Hand-roll the v1 layout: magic | u32 version=1 | u64 count | floats.
  std::vector<char> bytes;
  const char magic[4] = {'S', 'C', 'A', 'F'};
  bytes.insert(bytes.end(), magic, magic + 4);
  const std::uint32_t version = 1;
  bytes.insert(bytes.end(), reinterpret_cast<const char*>(&version),
               reinterpret_cast<const char*>(&version) + sizeof(version));
  const std::uint64_t count = params.size();
  bytes.insert(bytes.end(), reinterpret_cast<const char*>(&count),
               reinterpret_cast<const char*>(&count) + sizeof(count));
  bytes.insert(bytes.end(), reinterpret_cast<const char*>(params.data()),
               reinterpret_cast<const char*>(params.data()) + params.size() * sizeof(float));
  write_file_bytes(path_, bytes);

  const auto info = probe_snapshot(path_);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->version, 1u);
  EXPECT_EQ(info->state_count, 0u);

  Net target(models::mlp_netspec(2, 8, 16, 4), 999);
  load_params(target, path_);
  std::vector<float> loaded(target.param_count());
  target.flatten_params(loaded);
  EXPECT_EQ(loaded, params);
}

TEST_F(SnapshotTest, RejectsUnknownVersion) {
  Net net(models::mlp_netspec(2, 8, 16, 4), 3);
  save_params(net, path_);
  std::vector<char> bytes = read_file_bytes(path_);
  bytes[4] = 9;  // version field
  write_file_bytes(path_, bytes);
  EXPECT_THROW(load_params(net, path_), std::runtime_error);
}

TEST_F(SnapshotTest, SolverCheckpointRoundTripsMomentumAndIteration) {
  SolverConfig config;
  config.base_lr = 0.05f;
  config.momentum = 0.9f;
  SgdSolver solver(models::mlp_netspec(4, 6, 8, 3), config);
  std::vector<float> data(24, 0.5f);
  std::vector<float> labels(4, 1.0f);
  for (int i = 0; i < 5; ++i) {
    solver.step(data, labels);
    solver.apply_update();
  }
  save_solver(solver, path_);

  const auto info = probe_snapshot(path_);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->version, 2u);
  EXPECT_EQ(info->iteration, 5);
  EXPECT_EQ(info->state_count, solver.state_count());

  SgdSolver resumed(models::mlp_netspec(4, 6, 8, 3), config);  // fresh state
  load_solver(resumed, path_);
  EXPECT_EQ(resumed.iteration(), 5);

  // With momentum restored, the next update is bitwise the original's.
  const float loss_a = solver.step(data, labels);
  solver.apply_update();
  const float loss_b = resumed.step(data, labels);
  resumed.apply_update();
  EXPECT_EQ(loss_a, loss_b);
  std::vector<float> a(solver.net().param_count());
  std::vector<float> b(resumed.net().param_count());
  solver.net().flatten_params(a);
  resumed.net().flatten_params(b);
  EXPECT_EQ(a, b);
}

TEST_F(SnapshotTest, ParamOnlySnapshotLoadsIntoSolverWithFreshState) {
  SolverConfig config;
  SgdSolver solver(models::mlp_netspec(4, 6, 8, 3), config);
  std::vector<float> data(24, 0.5f);
  std::vector<float> labels(4, 1.0f);
  solver.step(data, labels);
  solver.apply_update();
  save_params(solver.net(), path_);  // no solver state in the file

  SgdSolver resumed(models::mlp_netspec(4, 6, 8, 3), config);
  load_solver(resumed, path_);
  EXPECT_EQ(resumed.iteration(), 0);
  std::vector<float> state(resumed.state_count());
  resumed.flatten_state(state);
  for (float v : state) ASSERT_EQ(v, 0.0f);
}

TEST_F(SnapshotTest, ProbeReturnsNulloptForMissingOrCorruptFiles) {
  EXPECT_FALSE(probe_snapshot("/nonexistent/dir/snapshot.bin").has_value());
  write_file_bytes(path_, {'j', 'u', 'n', 'k'});
  EXPECT_FALSE(probe_snapshot(path_).has_value());
}

TEST_F(SnapshotTest, ResumedTrainingContinuesFromSavedPoint) {
  SolverConfig config;
  config.base_lr = 0.05f;
  SgdSolver solver(models::mlp_netspec(4, 6, 8, 3), config);
  std::vector<float> data(24, 0.5f);
  std::vector<float> labels(4, 1.0f);
  for (int i = 0; i < 5; ++i) {
    solver.step(data, labels);
    solver.apply_update();
  }
  save_params(solver.net(), path_);
  const float loss_at_save = solver.step(data, labels);

  SgdSolver resumed(models::mlp_netspec(4, 6, 8, 3), config);
  load_params(resumed.net(), path_);
  const float resumed_loss = resumed.step(data, labels);
  EXPECT_FLOAT_EQ(resumed_loss, loss_at_save);
}

}  // namespace
}  // namespace scaffe::dl
