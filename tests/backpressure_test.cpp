// Credit-based flow control: bounded mailbox occupancy under incast
// overload, RTS/CTS rendezvous admission, typed backpressure errors, and
// the SCAFFE_MAILBOX_BYTES / backoff knob parsers. The core invariant under
// test: however hard senders push, per-link queued+reserved bytes never
// exceed max(budget, largest single message) — and values never change.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mpi/comm.h"
#include "mpi/knobs.h"
#include "util/fault.h"

namespace scaffe {
namespace {

using namespace std::chrono_literals;
using mpi::TransportConfig;

/// Scoped env override (tests run serially within a binary).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// --- knob parsing ------------------------------------------------------------

TEST(MailboxBytesEnv, UnsetUsesOneGiBDefault) {
  EnvGuard guard("SCAFFE_MAILBOX_BYTES", nullptr);
  EXPECT_EQ(TransportConfig::default_mailbox_bytes(),
            TransportConfig::kDefaultMailboxBytes);
  EXPECT_EQ(TransportConfig::kDefaultMailboxBytes, std::size_t{1} << 30);
}

TEST(MailboxBytesEnv, OffSpellingsDisableFlowControl) {
  for (const char* off : {"0", "off", "unlimited"}) {
    EnvGuard guard("SCAFFE_MAILBOX_BYTES", off);
    EXPECT_EQ(TransportConfig::default_mailbox_bytes(), 0u) << off;
  }
}

TEST(MailboxBytesEnv, ParsesByteSizes) {
  EnvGuard guard("SCAFFE_MAILBOX_BYTES", "64M");
  EXPECT_EQ(TransportConfig::default_mailbox_bytes(), std::size_t{64} << 20);
}

TEST(MailboxBytesEnv, MalformedValuesThrowConfigError) {
  for (const char* bad : {"lots", "-4M", "12Q", ""}) {
    EnvGuard guard("SCAFFE_MAILBOX_BYTES", bad);
    try {
      (void)TransportConfig::default_mailbox_bytes();
      FAIL() << "expected ConfigError for \"" << bad << "\"";
    } catch (const mpi::ConfigError& error) {
      EXPECT_EQ(error.knob(), "SCAFFE_MAILBOX_BYTES");
      EXPECT_EQ(error.value(), bad);
    }
  }
}

TEST(BackoffKnobs, DefaultsAndParsing) {
  {
    EnvGuard base("SCAFFE_CREDIT_BACKOFF_US", nullptr);
    EnvGuard cap("SCAFFE_CREDIT_BACKOFF_MAX_US", nullptr);
    EXPECT_EQ(TransportConfig::default_credit_backoff_us(), 50u);
    EXPECT_EQ(TransportConfig::default_credit_backoff_max_us(), 2000u);
  }
  {
    EnvGuard base("SCAFFE_CREDIT_BACKOFF_US", "250");
    EXPECT_EQ(TransportConfig::default_credit_backoff_us(), 250u);
  }
  {
    EnvGuard base("SCAFFE_CREDIT_BACKOFF_US", "0");  // clamped: 0 would spin
    EXPECT_EQ(TransportConfig::default_credit_backoff_us(), 1u);
  }
  {
    EnvGuard base("SCAFFE_CREDIT_BACKOFF_US", "5ms");
    EXPECT_THROW((void)TransportConfig::default_credit_backoff_us(), mpi::ConfigError);
  }
  {
    EnvGuard cap("SCAFFE_CREDIT_BACKOFF_MAX_US", "-1");
    EXPECT_THROW((void)TransportConfig::default_credit_backoff_max_us(),
                 mpi::ConfigError);
  }
}

TEST(KnobHelpers, SharedParserNamesTheKnob) {
  EXPECT_EQ(mpi::parse_bytes_knob("SCAFFE_TEST_KNOB", "3M", "(bytes)"),
            std::size_t{3} << 20);
  try {
    mpi::parse_bytes_knob("SCAFFE_TEST_KNOB", "banana", "(bytes)");
    FAIL() << "expected ConfigError";
  } catch (const mpi::ConfigError& error) {
    EXPECT_EQ(error.knob(), "SCAFFE_TEST_KNOB");
    EXPECT_NE(std::string(error.what()).find("banana"), std::string::npos);
  }
  EXPECT_EQ(mpi::parse_count_knob("SCAFFE_TEST_KNOB", "4096"), 4096u);
  EXPECT_THROW(mpi::parse_count_knob("SCAFFE_TEST_KNOB", "12x"), mpi::ConfigError);
}

// --- bounded occupancy under any-source incast --------------------------------

/// N senders blast messages at rank 0, which consumes them any-source with a
/// deliberately slow cadence. Total traffic is many times the budget, so
/// without flow control the queue would balloon; with it, per-link peak
/// occupancy must stay within the budget and every byte must still arrive
/// intact (stamps summed and checked).
void run_fan_in(int senders, std::size_t msg_bytes, std::size_t budget,
                int msgs_per_sender, bool expect_credit_waits) {
  mpi::Runtime runtime(senders + 1);
  runtime.set_recv_timeout(60000ms);
  runtime.set_mailbox_bytes(budget);
  const int total = senders * msgs_per_sender;
  std::atomic<std::uint64_t> received_sum{0};
  runtime.run([&](mpi::Comm& comm) {
    constexpr int kTag = 7;
    if (comm.rank() == 0) {
      std::vector<std::byte> buffer(msg_bytes);
      std::uint64_t sum = 0;
      for (int m = 0; m < total; ++m) {
        comm.recv_any<std::byte>(buffer, kTag);
        sum += std::to_integer<std::uint64_t>(buffer.front()) +
               std::to_integer<std::uint64_t>(buffer.back());
        if (m % 8 == 0) std::this_thread::sleep_for(300us);  // slow consumer
      }
      received_sum.store(sum);
    } else {
      std::vector<std::byte> payload(msg_bytes);
      for (int m = 0; m < msgs_per_sender; ++m) {
        const auto stamp = static_cast<std::byte>((comm.rank() * 31 + m) & 0xff);
        payload.front() = stamp;
        payload.back() = stamp;
        comm.send<std::byte>(payload, 0, kTag);
      }
    }
  });
  std::uint64_t expected = 0;
  for (int r = 1; r <= senders; ++r) {
    for (int m = 0; m < msgs_per_sender; ++m) {
      expected += 2 * static_cast<std::uint64_t>((r * 31 + m) & 0xff);
    }
  }
  EXPECT_EQ(received_sum.load(), expected);

  const mpi::Mailbox::FlowStats stats = runtime.flow_stats();
  EXPECT_LE(stats.peak_occupancy_bytes, budget);  // the bounded-memory contract
  EXPECT_EQ(stats.queued_bytes, 0u);              // fully drained
  EXPECT_EQ(stats.reserved_bytes, 0u);            // no leaked reservations
  EXPECT_EQ(stats.enqueued_messages, static_cast<std::uint64_t>(total));
  if (expect_credit_waits) EXPECT_GT(stats.credit_waits, 0u);
}

TEST(Backpressure, EagerIncastStaysUnderBudgetEightSenders) {
  // 8 senders x 24 x 16 KiB = 3 MiB of eager traffic through a 128 KiB
  // window: senders must block on credit, and peak occupancy stays bounded.
  run_fan_in(/*senders=*/8, /*msg_bytes=*/16 << 10, /*budget=*/128 << 10,
             /*msgs_per_sender=*/24, /*expect_credit_waits=*/true);
}

TEST(Backpressure, EagerSingleSenderStaysUnderBudget) {
  run_fan_in(/*senders=*/1, /*msg_bytes=*/16 << 10, /*budget=*/128 << 10,
             /*msgs_per_sender=*/24, /*expect_credit_waits=*/false);
}

TEST(Backpressure, RendezvousIncastStaysUnderBudgetEightSenders) {
  // 192 KiB messages ride the rendezvous path (> 64 KiB eager limit); the
  // any-source receiver is never claimable, so every byte flows through the
  // bounded queue.
  run_fan_in(/*senders=*/8, /*msg_bytes=*/192 << 10, /*budget=*/384 << 10,
             /*msgs_per_sender=*/6, /*expect_credit_waits=*/true);
}

TEST(Backpressure, RendezvousSingleSenderStaysUnderBudget) {
  run_fan_in(/*senders=*/1, /*msg_bytes=*/192 << 10, /*budget=*/384 << 10,
             /*msgs_per_sender=*/6, /*expect_credit_waits=*/false);
}

TEST(Backpressure, OversizedMessageUsesTheProgressOverdraft) {
  // A message larger than the whole budget must still land (empty-mailbox
  // overdraft) — flow control bounds memory, it never wedges a link.
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(10000ms);
  runtime.set_mailbox_bytes(64 << 10);
  constexpr std::size_t kBig = 256 << 10;
  runtime.run([&](mpi::Comm& comm) {
    if (comm.rank() == 1) {
      std::vector<std::byte> payload(kBig, std::byte{0x5a});
      comm.send<std::byte>(payload, 0, 3);
    } else {
      const std::vector<std::byte> got = comm.recv_bytes(1, 3);
      ASSERT_EQ(got.size(), kBig);
      EXPECT_EQ(got.front(), std::byte{0x5a});
      EXPECT_EQ(got.back(), std::byte{0x5a});
    }
  });
  const mpi::Mailbox::FlowStats stats = runtime.flow_stats();
  EXPECT_GE(stats.peak_occupancy_bytes, kBig);  // overdraft exceeded the budget
  EXPECT_EQ(stats.queued_bytes, 0u);
}

TEST(Backpressure, PostedReceiveClaimBypassesTheQueue) {
  // True RTS/CTS: with the receive pre-posted, a rendezvous send claims it
  // and fills zero-copy — no queue memory, no credit consumed.
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(10000ms);
  runtime.set_mailbox_bytes(1 << 20);
  constexpr std::size_t kBig = 256 << 10;
  runtime.run([&](mpi::Comm& comm) {
    std::vector<std::byte> buffer(kBig, std::byte{0});
    if (comm.rank() == 0) {
      mpi::Request req = comm.irecv<std::byte>(buffer, 1, 4);  // CTS posted now
      comm.barrier();
      req.wait();
      EXPECT_EQ(buffer.front(), std::byte{0x7e});
      EXPECT_EQ(buffer.back(), std::byte{0x7e});
    } else {
      std::vector<std::byte> payload(kBig, std::byte{0x7e});
      comm.barrier();  // receiver has posted before the RTS arrives
      comm.send<std::byte>(payload, 0, 4);
    }
  });
  const mpi::Mailbox::FlowStats stats = runtime.flow_stats();
  EXPECT_GE(stats.claimed_messages, 1u);
  EXPECT_GE(stats.rts_handshakes, 1u);
  // Only the tiny barrier messages touched the queues.
  EXPECT_LT(stats.peak_occupancy_bytes, std::size_t{16} << 10);
}

// --- typed errors with flow diagnostics ---------------------------------------

TEST(Backpressure, ExhaustedCreditRaisesBackpressureError) {
  // 32 KiB queued of a 64 KiB budget, then a 48 KiB send that can never be
  // admitted (no receiver drains): the send must fail with a typed
  // BackpressureError carrying the mailbox's flow snapshot.
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(150ms);
  runtime.set_mailbox_bytes(64 << 10);
  std::atomic<bool> raised{false};
  const auto start = std::chrono::steady_clock::now();
  runtime.run([&](mpi::Comm& comm) {
    if (comm.rank() != 1) return;  // rank 0 never receives: the dead consumer
    std::vector<std::byte> first(32 << 10);
    comm.send<std::byte>(first, 0, 9);
    std::vector<std::byte> second(48 << 10);
    try {
      comm.send<std::byte>(second, 0, 9);
      ADD_FAILURE() << "over-budget send was admitted";
    } catch (const mpi::BackpressureError& error) {
      raised.store(true);
      EXPECT_EQ(error.src(), 1);
      EXPECT_EQ(error.dst(), 0);
      EXPECT_EQ(error.tag(), 9);
      EXPECT_EQ(error.message_bytes(), std::size_t{48} << 10);
      EXPECT_EQ(error.deadline(), 150ms);
      EXPECT_EQ(error.flow().queued_bytes, std::size_t{32} << 10);
      EXPECT_EQ(error.flow().budget_bytes, std::size_t{64} << 10);
      EXPECT_EQ(error.flow().key_queued_bytes, std::size_t{32} << 10);
      EXPECT_GE(error.flow().credit_waiters, 1);
      EXPECT_NE(std::string(error.what()).find("credit"), std::string::npos);
    }
  });
  EXPECT_TRUE(raised.load());
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
  EXPECT_GE(runtime.flow_stats().backpressure_timeouts, 1u);
}

TEST(Backpressure, TimeoutErrorCarriesFlowDiagnostics) {
  // A receive that times out while unrelated mail sits queued reports the
  // mailbox state: overload-induced timeouts are distinguishable from a
  // dead peer.
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(300ms);
  runtime.set_mailbox_bytes(64 << 10);
  std::atomic<bool> timed_out{false};
  runtime.run([&](mpi::Comm& comm) {
    if (comm.rank() == 1) {
      std::vector<std::byte> noise(8 << 10);
      comm.send<std::byte>(noise, 0, 8);  // wrong tag: never matches
      return;
    }
    std::vector<std::byte> buffer(16);
    try {
      comm.recv<std::byte>(buffer, 1, 9);
      ADD_FAILURE() << "unmatched recv returned";
    } catch (const mpi::TimeoutError& error) {
      timed_out.store(true);
      EXPECT_EQ(error.tag(), 9);
      EXPECT_GE(error.flow().queued_bytes, std::size_t{8} << 10);
      EXPECT_EQ(error.flow().key_queued_bytes, 0u);  // nothing for tag 9
      EXPECT_EQ(error.flow().budget_bytes, std::size_t{64} << 10);
      EXPECT_NE(std::string(error.what()).find("mailbox"), std::string::npos);
    }
  });
  EXPECT_TRUE(timed_out.load());
}

// --- injected flow faults -----------------------------------------------------

TEST(Backpressure, InjectedCreditStarvationForcesBackoffRounds) {
  // Each starvation token denies exactly one credit check against rank 0's
  // mailbox, forcing the sender through the backoff path with credit free.
  util::ScopedFaultPlan scope(util::FaultPlan(5).starve_credits(0, 3));
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(10000ms);
  std::atomic<std::uint64_t> sum{0};
  runtime.run([&](mpi::Comm& comm) {
    constexpr int kMsgs = 5;
    if (comm.rank() == 1) {
      std::vector<std::byte> payload(1 << 10);
      for (int m = 0; m < kMsgs; ++m) {
        payload.front() = static_cast<std::byte>(m + 1);
        comm.send<std::byte>(payload, 0, 6);
      }
    } else {
      std::uint64_t got = 0;
      for (int m = 0; m < kMsgs; ++m) {
        const std::vector<std::byte> msg = comm.recv_bytes(1, 6);
        got += std::to_integer<std::uint64_t>(msg.front());
      }
      sum.store(got);
    }
  });
  EXPECT_EQ(sum.load(), 15u);  // 1+2+3+4+5: values unchanged by starvation
  EXPECT_EQ(util::FaultInjector::instance().stats().credit_denials, 3u);
  const mpi::Mailbox::FlowStats stats = runtime.flow_stats();
  EXPECT_GE(stats.credit_waits, 1u);
  EXPECT_GT(stats.credit_wait_us, 0u);
}

TEST(Backpressure, DelayedCtsPreservesValues) {
  // Rank 0 pre-posts both receives — each post consumes one delayed-CTS
  // token, holding the sender notification back 2 ms — and the sends only
  // start after the barrier, so both delays fire deterministically.
  // Rendezvous senders see the CTS late (or find the posted slot on a
  // backoff re-check, i.e. reordered) — matched values must be identical
  // anyway.
  util::ScopedFaultPlan scope(
      util::FaultPlan(6).delay_cts(0, std::chrono::microseconds(2000), 2));
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(10000ms);
  constexpr std::size_t kBig = 128 << 10;
  runtime.run([&](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> a(kBig);
      std::vector<std::byte> b(kBig);
      mpi::Request ra = comm.irecv<std::byte>(a, 1, 11);  // CTS token 1
      mpi::Request rb = comm.irecv<std::byte>(b, 1, 12);  // CTS token 2
      comm.barrier();
      ra.wait();
      rb.wait();
      EXPECT_EQ(a.front(), std::byte{0x21});
      EXPECT_EQ(a.back(), std::byte{0x21});
      EXPECT_EQ(b.front(), std::byte{0x22});
      EXPECT_EQ(b.back(), std::byte{0x22});
    } else {
      comm.barrier();  // both receives are posted (and delayed) before any send
      std::vector<std::byte> payload(kBig);
      for (int m = 0; m < 2; ++m) {
        payload.front() = static_cast<std::byte>(0x21 + m);
        payload.back() = static_cast<std::byte>(0x21 + m);
        comm.send<std::byte>(payload, 0, 11 + m);
      }
    }
  });
  EXPECT_EQ(util::FaultInjector::instance().stats().cts_delays, 2u);
}

// --- credit return through generations ----------------------------------------

TEST(Backpressure, GenerationPurgeReturnsCredits) {
  // Mail stranded by a dead epoch holds credit until begin_generation purges
  // it; the next epoch must start with a clean window.
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(10000ms);
  runtime.run([](mpi::Comm& comm) {
    if (comm.rank() == 1) {
      std::vector<std::byte> payload(64 << 10);
      comm.send<std::byte>(payload, 0, 2);  // never received
    }
  });
  EXPECT_EQ(runtime.flow_stats().queued_bytes, std::size_t{64} << 10);

  runtime.run([](mpi::Comm&) {});  // new generation: purge returns the credit
  const mpi::Mailbox::FlowStats stats = runtime.flow_stats();
  EXPECT_EQ(stats.queued_bytes, 0u);
  EXPECT_EQ(stats.reserved_bytes, 0u);
}

TEST(Backpressure, DisabledBudgetRestoresLegacyUnboundedQueueing) {
  // SCAFFE_MAILBOX_BYTES=0 (the legacy A/B arm): occupancy grows past any
  // bound and no sender ever waits for credit.
  mpi::Runtime runtime(2);
  runtime.set_recv_timeout(10000ms);
  runtime.set_mailbox_bytes(0);
  runtime.run([](mpi::Comm& comm) {
    constexpr int kMsgs = 24;
    if (comm.rank() == 1) {
      std::vector<std::byte> payload(16 << 10);
      for (int m = 0; m < kMsgs; ++m) comm.send<std::byte>(payload, 0, 13);
    } else {
      std::this_thread::sleep_for(100ms);  // let the queue balloon
      std::vector<std::byte> buffer(16 << 10);
      for (int m = 0; m < kMsgs; ++m) comm.recv<std::byte>(buffer, 1, 13);
    }
  });
  const mpi::Mailbox::FlowStats stats = runtime.flow_stats();
  EXPECT_GT(stats.peak_occupancy_bytes, std::size_t{128} << 10);
  EXPECT_EQ(stats.credit_waits, 0u);
  EXPECT_EQ(stats.queued_bytes, 0u);
}

}  // namespace
}  // namespace scaffe
