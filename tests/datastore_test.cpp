// Distributed sample store (data/sample_store.h): the LBANN-data_store-style
// epoch-ahead exchange that feeds readers from peer memory over scmpi.
//
// The contract under test is the one the trainer relies on: the store changes
// where sample bytes come from, never what they are — store-fed training is
// bitwise identical to backend-fed training at any world size, including
// through a Shrink recovery, while backend pressure stays capped at the
// loader count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/backend.h"
#include "data/dataset.h"
#include "data/shuffle.h"
#include "data/sample_store.h"
#include "models/zoo.h"
#include "util/fault.h"

namespace scaffe::core {
namespace {

data::SyntheticImageDataset tiny_dataset() {
  return data::SyntheticImageDataset(256, 1, 1, 6, 3);
}

NetSpecFactory mlp_factory() {
  return [](int batch) { return models::mlp_netspec(batch, 6, 8, 3); };
}

class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~EnvVarGuard() {
    if (!saved_.empty()) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
};

/// Runs one training job and returns the root's report.
TrainerReport train_root(int nranks, data::ReadBackend& backend, std::size_t sample_floats,
                         TrainerConfig config) {
  std::mutex mutex;
  TrainerReport root_report;
  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    Trainer trainer(comm, backend, sample_floats, mlp_factory(), config);
    const TrainerReport report = trainer.run();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      root_report = report;
    }
  });
  return root_report;
}

TEST(Shuffle, EpochPermuteIsWindowStableBijection) {
  const std::uint64_t n = 96;
  for (std::uint64_t seed : {2017ull, 7ull}) {
    for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
      std::set<std::uint64_t> seen;
      for (std::uint64_t i = epoch * n; i < (epoch + 1) * n; ++i) {
        const std::uint64_t p = data::epoch_permute(i, n, seed);
        EXPECT_GE(p, epoch * n);
        EXPECT_LT(p, (epoch + 1) * n);
        seen.insert(p);
      }
      EXPECT_EQ(seen.size(), n) << "epoch " << epoch << " seed " << seed;
    }
  }
  // Disabled shuffling is the identity.
  EXPECT_EQ(data::epoch_permute(42, 0, 2017), 42u);
}

TEST(SampleStore, ContextIsDisjointFromTrainingContext) {
  const mpi::ContextId base = 12345;
  EXPECT_NE(data::SampleStore::store_context_for(base), base);
  // Deterministic (every rank derives the same exchange context)...
  EXPECT_EQ(data::SampleStore::store_context_for(base),
            data::SampleStore::store_context_for(base));
  // ...and distinct per communicator context.
  EXPECT_NE(data::SampleStore::store_context_for(base),
            data::SampleStore::store_context_for(base + 1));
}

TEST(SampleStore, ServesBitwiseSamplesFromPeerMemory) {
  auto dataset = tiny_dataset();
  data::ImageDataBackend backend(dataset);
  const int nranks = 4;
  const std::uint64_t window = 32;
  const std::uint64_t windows = 3;

  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    data::SampleStoreConfig config;
    config.window = window;
    config.sample_floats = dataset.sample_floats();
    data::SampleStore store(comm, backend, config);

    // Consume this rank's strided slots in reader order and compare bitwise
    // against the backend's own answer.
    std::uint64_t served = 0;
    for (std::uint64_t g = static_cast<std::uint64_t>(comm.rank()); g < windows * window;
         g += nranks) {
      const data::Sample got = store.read(g);
      const data::Sample want = dataset.make_sample(g);
      ASSERT_EQ(got.index, want.index);
      ASSERT_EQ(got.label, want.label);
      ASSERT_EQ(got.image, want.image);
      ++served;
    }

    const data::SampleStoreStats stats = store.stats();
    EXPECT_EQ(stats.hits, served);
    EXPECT_EQ(stats.fallbacks, 0u);
    EXPECT_GE(stats.windows_ready, windows);
  });
}

TEST(SampleStore, CapsBackendAttachmentsAtLoaderCount) {
  // An LMDB backend that refuses a third reader: four direct readers would
  // throw, but four store-fed ranks attach only max_loaders = 2 of them.
  auto dataset = tiny_dataset();
  net::StorageSpec storage;
  storage.lmdb_max_readers = 2;
  data::LmdbBackend backend(dataset, storage);

  backend.attach_reader();
  backend.attach_reader();
  EXPECT_THROW(backend.attach_reader(), data::ReaderLimitError);
  backend.detach_reader();
  backend.detach_reader();

  const int nranks = 4;
  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    data::SampleStoreConfig config;
    config.window = 16;
    config.sample_floats = dataset.sample_floats();
    config.max_loaders = 2;
    data::SampleStore store(comm, backend, config);
    EXPECT_EQ(store.loaders(), 2);
    EXPECT_LE(backend.attached(), 2);

    for (std::uint64_t g = static_cast<std::uint64_t>(comm.rank()); g < 32; g += nranks) {
      const data::Sample got = store.read(g);
      EXPECT_EQ(got.index, g);
    }
    EXPECT_EQ(store.stats().fallbacks, 0u);

    // The modelled aggregate never sees more than the loader cap either.
    const std::size_t bytes = dataset.sample_floats() * sizeof(float);
    EXPECT_DOUBLE_EQ(store.aggregate_samples_per_sec(160, bytes),
                     backend.aggregate_samples_per_sec(2, bytes));
  });
  EXPECT_EQ(backend.attached(), 0);
}

TEST(Trainer, StoreFedMatchesBackendFedBitwise) {
  // The acceptance bar: identical final parameters AND momentum whether
  // batches come from the store or straight from the backend — at one rank
  // (self-exchange) and at eight (full alltoallv shape), shuffled.
  for (int nranks : {1, 8}) {
    auto dataset = tiny_dataset();
    data::ImageDataBackend backend(dataset);

    TrainerConfig config;
    config.iterations = 8;
    config.global_batch = 16;
    config.shuffle_epoch_size = 64;
    config.solver.base_lr = 0.05f;
    config.solver.momentum = 0.9f;

    config.sample_store = false;
    const TrainerReport direct = train_root(nranks, backend, dataset.sample_floats(), config);
    ASSERT_FALSE(direct.final_params.empty());
    EXPECT_EQ(direct.store.hits, 0u);
    EXPECT_EQ(direct.store.windows_ready, 0u);

    config.sample_store = true;
    const TrainerReport stored = train_root(nranks, backend, dataset.sample_floats(), config);

    EXPECT_EQ(stored.final_params, direct.final_params) << nranks << " ranks";
    EXPECT_EQ(stored.final_state, direct.final_state) << nranks << " ranks";
    EXPECT_EQ(stored.root_losses, direct.root_losses) << nranks << " ranks";

    // Steady state serves from peer memory: every root-rank sample was a hit.
    EXPECT_GT(stored.store.hits, 0u);
    EXPECT_EQ(stored.store.fallbacks, 0u);
    EXPECT_GT(stored.store.windows_ready, 0u);
    // The exchange recycles registry blocks instead of allocating fresh ones.
    EXPECT_GT(stored.memory.local_hits + stored.memory.global_hits, 0u);
  }
}

TEST(Trainer, SampleStoreEnvKnobOverridesConfig) {
  auto dataset = tiny_dataset();
  data::ImageDataBackend backend(dataset);

  TrainerConfig config;
  config.iterations = 2;
  config.global_batch = 8;
  config.sample_store = true;

  {
    // off beats the config default: no exchange runs at all.
    EnvVarGuard guard("SCAFFE_SAMPLE_STORE", "off");
    const TrainerReport report = train_root(1, backend, dataset.sample_floats(), config);
    EXPECT_EQ(report.store.hits, 0u);
    EXPECT_EQ(report.store.windows_ready, 0u);
  }
  {
    config.sample_store = false;
    EnvVarGuard guard("SCAFFE_SAMPLE_STORE", "1");
    const TrainerReport report = train_root(1, backend, dataset.sample_floats(), config);
    EXPECT_GT(report.store.hits, 0u);
  }
  {
    EnvVarGuard guard("SCAFFE_SAMPLE_STORE", "maybe");
    EXPECT_THROW(train_root(1, backend, dataset.sample_floats(), config), mpi::ConfigError);
  }
}

TEST(Trainer, PrefetchDepthKnobParsesAndValidates) {
  auto dataset = tiny_dataset();
  data::ImageDataBackend backend(dataset);

  TrainerConfig config;
  config.iterations = 2;
  config.global_batch = 8;

  {
    // A deeper queue changes pipelining, never results.
    TrainerConfig reference = config;
    const TrainerReport base = train_root(1, backend, dataset.sample_floats(), reference);
    EnvVarGuard guard("SCAFFE_PREFETCH_DEPTH", "2");
    const TrainerReport shallow = train_root(1, backend, dataset.sample_floats(), config);
    EXPECT_EQ(shallow.final_params, base.final_params);
  }
  {
    EnvVarGuard guard("SCAFFE_PREFETCH_DEPTH", "0");
    EXPECT_THROW(train_root(1, backend, dataset.sample_floats(), config), mpi::ConfigError);
  }
  {
    EnvVarGuard guard("SCAFFE_PREFETCH_DEPTH", "not-a-depth");
    EXPECT_THROW(train_root(1, backend, dataset.sample_floats(), config), mpi::ConfigError);
  }
}

class StoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("scaffe_datastore_ckpt_" +
              std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()) +
              ".bin"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }

  std::string path_;
};

TEST_F(StoreRecoveryTest, StoreFedShrinkMatchesBackendFedBitwise) {
  // A rank dies mid-run and the world shrinks 4 -> 3. The store is rebuilt
  // per attempt, so its exchange plan follows the survivor membership — and
  // the final parameters must still match the backend-fed run under the
  // exact same fault schedule.
  auto dataset = tiny_dataset();
  data::ImageDataBackend backend(dataset);

  TrainerConfig config;
  config.iterations = 10;
  config.global_batch = 12;
  config.snapshot_every = 2;
  config.snapshot_path = path_;
  config.recovery = RecoveryPolicy::Shrink;
  config.recv_timeout_ms = 30000;
  config.shuffle_epoch_size = 48;
  config.solver.base_lr = 0.05f;
  config.solver.momentum = 0.9f;

  config.sample_store = false;
  TrainerReport direct;
  {
    util::ScopedFaultPlan scope(util::FaultPlan(61).crash_rank(2, 5));
    direct = train_with_recovery(4, backend, dataset.sample_floats(), mlp_factory(), config);
  }
  ASSERT_FALSE(direct.final_params.empty());
  EXPECT_EQ(direct.recovery.restarts, 1);
  EXPECT_EQ(direct.recovery.shrinks, 1);
  std::filesystem::remove(path_);

  config.sample_store = true;
  TrainerReport stored;
  {
    util::ScopedFaultPlan scope(util::FaultPlan(61).crash_rank(2, 5));
    stored = train_with_recovery(4, backend, dataset.sample_floats(), mlp_factory(), config);
  }
  EXPECT_EQ(stored.recovery.restarts, 1);
  EXPECT_EQ(stored.recovery.shrinks, 1);

  EXPECT_EQ(stored.final_params, direct.final_params);
  EXPECT_EQ(stored.final_state, direct.final_state);
  EXPECT_GT(stored.store.hits, 0u);
}

}  // namespace
}  // namespace scaffe::core
