# Empty dependencies file for fig09_cifar10_scaling.
# This may be replaced when dependencies are built.
