file(REMOVE_RECURSE
  "CMakeFiles/fig11_hr_microbench.dir/fig11_hr_microbench.cpp.o"
  "CMakeFiles/fig11_hr_microbench.dir/fig11_hr_microbench.cpp.o.d"
  "fig11_hr_microbench"
  "fig11_hr_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hr_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
