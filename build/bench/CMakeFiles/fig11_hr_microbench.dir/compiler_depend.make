# Empty compiler generated dependencies file for fig11_hr_microbench.
# This may be replaced when dependencies are built.
