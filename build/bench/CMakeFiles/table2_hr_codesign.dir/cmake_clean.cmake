file(REMOVE_RECURSE
  "CMakeFiles/table2_hr_codesign.dir/table2_hr_codesign.cpp.o"
  "CMakeFiles/table2_hr_codesign.dir/table2_hr_codesign.cpp.o.d"
  "table2_hr_codesign"
  "table2_hr_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hr_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
