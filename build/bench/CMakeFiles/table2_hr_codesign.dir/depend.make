# Empty dependencies file for table2_hr_codesign.
# This may be replaced when dependencies are built.
