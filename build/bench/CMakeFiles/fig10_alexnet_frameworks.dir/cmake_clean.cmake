file(REMOVE_RECURSE
  "CMakeFiles/fig10_alexnet_frameworks.dir/fig10_alexnet_frameworks.cpp.o"
  "CMakeFiles/fig10_alexnet_frameworks.dir/fig10_alexnet_frameworks.cpp.o.d"
  "fig10_alexnet_frameworks"
  "fig10_alexnet_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_alexnet_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
