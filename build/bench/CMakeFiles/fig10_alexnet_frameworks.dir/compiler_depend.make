# Empty compiler generated dependencies file for fig10_alexnet_frameworks.
# This may be replaced when dependencies are built.
