# Empty compiler generated dependencies file for fig05_06_overlap_timeline.
# This may be replaced when dependencies are built.
