file(REMOVE_RECURSE
  "CMakeFiles/fig05_06_overlap_timeline.dir/fig05_06_overlap_timeline.cpp.o"
  "CMakeFiles/fig05_06_overlap_timeline.dir/fig05_06_overlap_timeline.cpp.o.d"
  "fig05_06_overlap_timeline"
  "fig05_06_overlap_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_06_overlap_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
