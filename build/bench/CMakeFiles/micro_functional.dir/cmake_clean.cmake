file(REMOVE_RECURSE
  "CMakeFiles/micro_functional.dir/micro_functional.cpp.o"
  "CMakeFiles/micro_functional.dir/micro_functional.cpp.o.d"
  "micro_functional"
  "micro_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
