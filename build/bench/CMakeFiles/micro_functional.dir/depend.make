# Empty dependencies file for micro_functional.
# This may be replaced when dependencies are built.
