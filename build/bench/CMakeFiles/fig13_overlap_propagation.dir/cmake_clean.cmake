file(REMOVE_RECURSE
  "CMakeFiles/fig13_overlap_propagation.dir/fig13_overlap_propagation.cpp.o"
  "CMakeFiles/fig13_overlap_propagation.dir/fig13_overlap_propagation.cpp.o.d"
  "fig13_overlap_propagation"
  "fig13_overlap_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overlap_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
