# Empty dependencies file for fig13_overlap_propagation.
# This may be replaced when dependencies are built.
