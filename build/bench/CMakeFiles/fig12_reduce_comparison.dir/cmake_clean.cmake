file(REMOVE_RECURSE
  "CMakeFiles/fig12_reduce_comparison.dir/fig12_reduce_comparison.cpp.o"
  "CMakeFiles/fig12_reduce_comparison.dir/fig12_reduce_comparison.cpp.o.d"
  "fig12_reduce_comparison"
  "fig12_reduce_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_reduce_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
