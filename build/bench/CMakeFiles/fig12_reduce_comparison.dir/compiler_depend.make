# Empty compiler generated dependencies file for fig12_reduce_comparison.
# This may be replaced when dependencies are built.
