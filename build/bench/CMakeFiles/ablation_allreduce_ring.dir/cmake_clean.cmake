file(REMOVE_RECURSE
  "CMakeFiles/ablation_allreduce_ring.dir/ablation_allreduce_ring.cpp.o"
  "CMakeFiles/ablation_allreduce_ring.dir/ablation_allreduce_ring.cpp.o.d"
  "ablation_allreduce_ring"
  "ablation_allreduce_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allreduce_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
