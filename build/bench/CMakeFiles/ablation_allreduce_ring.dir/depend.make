# Empty dependencies file for ablation_allreduce_ring.
# This may be replaced when dependencies are built.
