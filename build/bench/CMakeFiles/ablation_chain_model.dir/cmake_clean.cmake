file(REMOVE_RECURSE
  "CMakeFiles/ablation_chain_model.dir/ablation_chain_model.cpp.o"
  "CMakeFiles/ablation_chain_model.dir/ablation_chain_model.cpp.o.d"
  "ablation_chain_model"
  "ablation_chain_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chain_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
