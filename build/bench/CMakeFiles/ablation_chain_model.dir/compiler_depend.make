# Empty compiler generated dependencies file for ablation_chain_model.
# This may be replaced when dependencies are built.
