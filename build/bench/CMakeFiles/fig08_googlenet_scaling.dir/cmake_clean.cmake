file(REMOVE_RECURSE
  "CMakeFiles/fig08_googlenet_scaling.dir/fig08_googlenet_scaling.cpp.o"
  "CMakeFiles/fig08_googlenet_scaling.dir/fig08_googlenet_scaling.cpp.o.d"
  "fig08_googlenet_scaling"
  "fig08_googlenet_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_googlenet_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
