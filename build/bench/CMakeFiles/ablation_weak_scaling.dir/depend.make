# Empty dependencies file for ablation_weak_scaling.
# This may be replaced when dependencies are built.
