file(REMOVE_RECURSE
  "CMakeFiles/ablation_weak_scaling.dir/ablation_weak_scaling.cpp.o"
  "CMakeFiles/ablation_weak_scaling.dir/ablation_weak_scaling.cpp.o.d"
  "ablation_weak_scaling"
  "ablation_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
