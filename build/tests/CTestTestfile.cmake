# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/coll_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/dl_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/coll_ext_test[1]_include.cmake")
include("/root/repo/build/tests/dl_ext_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_ext_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/perf_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/agg_conv_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
