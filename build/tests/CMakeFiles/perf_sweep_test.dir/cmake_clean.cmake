file(REMOVE_RECURSE
  "CMakeFiles/perf_sweep_test.dir/perf_sweep_test.cpp.o"
  "CMakeFiles/perf_sweep_test.dir/perf_sweep_test.cpp.o.d"
  "perf_sweep_test"
  "perf_sweep_test.pdb"
  "perf_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
