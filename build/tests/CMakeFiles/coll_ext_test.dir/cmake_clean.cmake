file(REMOVE_RECURSE
  "CMakeFiles/coll_ext_test.dir/coll_ext_test.cpp.o"
  "CMakeFiles/coll_ext_test.dir/coll_ext_test.cpp.o.d"
  "coll_ext_test"
  "coll_ext_test.pdb"
  "coll_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
