# Empty compiler generated dependencies file for dl_ext_test.
# This may be replaced when dependencies are built.
