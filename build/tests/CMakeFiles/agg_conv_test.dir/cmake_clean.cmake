file(REMOVE_RECURSE
  "CMakeFiles/agg_conv_test.dir/agg_conv_test.cpp.o"
  "CMakeFiles/agg_conv_test.dir/agg_conv_test.cpp.o.d"
  "agg_conv_test"
  "agg_conv_test.pdb"
  "agg_conv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
