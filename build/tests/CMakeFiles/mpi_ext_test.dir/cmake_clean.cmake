file(REMOVE_RECURSE
  "CMakeFiles/mpi_ext_test.dir/mpi_ext_test.cpp.o"
  "CMakeFiles/mpi_ext_test.dir/mpi_ext_test.cpp.o.d"
  "mpi_ext_test"
  "mpi_ext_test.pdb"
  "mpi_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
