file(REMOVE_RECURSE
  "CMakeFiles/scaffe_baselines.dir/comparators.cpp.o"
  "CMakeFiles/scaffe_baselines.dir/comparators.cpp.o.d"
  "CMakeFiles/scaffe_baselines.dir/param_server.cpp.o"
  "CMakeFiles/scaffe_baselines.dir/param_server.cpp.o.d"
  "libscaffe_baselines.a"
  "libscaffe_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
