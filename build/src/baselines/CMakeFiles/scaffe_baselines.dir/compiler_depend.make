# Empty compiler generated dependencies file for scaffe_baselines.
# This may be replaced when dependencies are built.
