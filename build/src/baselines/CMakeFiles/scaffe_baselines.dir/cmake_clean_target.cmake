file(REMOVE_RECURSE
  "libscaffe_baselines.a"
)
