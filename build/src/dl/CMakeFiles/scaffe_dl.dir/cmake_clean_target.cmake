file(REMOVE_RECURSE
  "libscaffe_dl.a"
)
