# Empty compiler generated dependencies file for scaffe_dl.
# This may be replaced when dependencies are built.
