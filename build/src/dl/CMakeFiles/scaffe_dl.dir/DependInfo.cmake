
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/gradient_check.cpp" "src/dl/CMakeFiles/scaffe_dl.dir/gradient_check.cpp.o" "gcc" "src/dl/CMakeFiles/scaffe_dl.dir/gradient_check.cpp.o.d"
  "/root/repo/src/dl/layer_common.cpp" "src/dl/CMakeFiles/scaffe_dl.dir/layer_common.cpp.o" "gcc" "src/dl/CMakeFiles/scaffe_dl.dir/layer_common.cpp.o.d"
  "/root/repo/src/dl/layers_simple.cpp" "src/dl/CMakeFiles/scaffe_dl.dir/layers_simple.cpp.o" "gcc" "src/dl/CMakeFiles/scaffe_dl.dir/layers_simple.cpp.o.d"
  "/root/repo/src/dl/layers_spatial.cpp" "src/dl/CMakeFiles/scaffe_dl.dir/layers_spatial.cpp.o" "gcc" "src/dl/CMakeFiles/scaffe_dl.dir/layers_spatial.cpp.o.d"
  "/root/repo/src/dl/net.cpp" "src/dl/CMakeFiles/scaffe_dl.dir/net.cpp.o" "gcc" "src/dl/CMakeFiles/scaffe_dl.dir/net.cpp.o.d"
  "/root/repo/src/dl/netspec_text.cpp" "src/dl/CMakeFiles/scaffe_dl.dir/netspec_text.cpp.o" "gcc" "src/dl/CMakeFiles/scaffe_dl.dir/netspec_text.cpp.o.d"
  "/root/repo/src/dl/snapshot.cpp" "src/dl/CMakeFiles/scaffe_dl.dir/snapshot.cpp.o" "gcc" "src/dl/CMakeFiles/scaffe_dl.dir/snapshot.cpp.o.d"
  "/root/repo/src/dl/solver.cpp" "src/dl/CMakeFiles/scaffe_dl.dir/solver.cpp.o" "gcc" "src/dl/CMakeFiles/scaffe_dl.dir/solver.cpp.o.d"
  "/root/repo/src/dl/solver_text.cpp" "src/dl/CMakeFiles/scaffe_dl.dir/solver_text.cpp.o" "gcc" "src/dl/CMakeFiles/scaffe_dl.dir/solver_text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scaffe_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/scaffe_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
