file(REMOVE_RECURSE
  "CMakeFiles/scaffe_dl.dir/gradient_check.cpp.o"
  "CMakeFiles/scaffe_dl.dir/gradient_check.cpp.o.d"
  "CMakeFiles/scaffe_dl.dir/layer_common.cpp.o"
  "CMakeFiles/scaffe_dl.dir/layer_common.cpp.o.d"
  "CMakeFiles/scaffe_dl.dir/layers_simple.cpp.o"
  "CMakeFiles/scaffe_dl.dir/layers_simple.cpp.o.d"
  "CMakeFiles/scaffe_dl.dir/layers_spatial.cpp.o"
  "CMakeFiles/scaffe_dl.dir/layers_spatial.cpp.o.d"
  "CMakeFiles/scaffe_dl.dir/net.cpp.o"
  "CMakeFiles/scaffe_dl.dir/net.cpp.o.d"
  "CMakeFiles/scaffe_dl.dir/netspec_text.cpp.o"
  "CMakeFiles/scaffe_dl.dir/netspec_text.cpp.o.d"
  "CMakeFiles/scaffe_dl.dir/snapshot.cpp.o"
  "CMakeFiles/scaffe_dl.dir/snapshot.cpp.o.d"
  "CMakeFiles/scaffe_dl.dir/solver.cpp.o"
  "CMakeFiles/scaffe_dl.dir/solver.cpp.o.d"
  "CMakeFiles/scaffe_dl.dir/solver_text.cpp.o"
  "CMakeFiles/scaffe_dl.dir/solver_text.cpp.o.d"
  "libscaffe_dl.a"
  "libscaffe_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
