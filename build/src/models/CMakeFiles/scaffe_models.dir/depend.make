# Empty dependencies file for scaffe_models.
# This may be replaced when dependencies are built.
