file(REMOVE_RECURSE
  "libscaffe_models.a"
)
