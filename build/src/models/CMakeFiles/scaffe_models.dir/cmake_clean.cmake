file(REMOVE_RECURSE
  "CMakeFiles/scaffe_models.dir/descriptors.cpp.o"
  "CMakeFiles/scaffe_models.dir/descriptors.cpp.o.d"
  "CMakeFiles/scaffe_models.dir/zoo.cpp.o"
  "CMakeFiles/scaffe_models.dir/zoo.cpp.o.d"
  "libscaffe_models.a"
  "libscaffe_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
