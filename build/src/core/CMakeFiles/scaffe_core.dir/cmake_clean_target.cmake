file(REMOVE_RECURSE
  "libscaffe_core.a"
)
