file(REMOVE_RECURSE
  "CMakeFiles/scaffe_core.dir/distributed_solver.cpp.o"
  "CMakeFiles/scaffe_core.dir/distributed_solver.cpp.o.d"
  "CMakeFiles/scaffe_core.dir/eval.cpp.o"
  "CMakeFiles/scaffe_core.dir/eval.cpp.o.d"
  "CMakeFiles/scaffe_core.dir/perf_model.cpp.o"
  "CMakeFiles/scaffe_core.dir/perf_model.cpp.o.d"
  "CMakeFiles/scaffe_core.dir/trainer.cpp.o"
  "CMakeFiles/scaffe_core.dir/trainer.cpp.o.d"
  "libscaffe_core.a"
  "libscaffe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
