# Empty compiler generated dependencies file for scaffe_core.
# This may be replaced when dependencies are built.
