file(REMOVE_RECURSE
  "CMakeFiles/scaffe_mpi.dir/comm.cpp.o"
  "CMakeFiles/scaffe_mpi.dir/comm.cpp.o.d"
  "libscaffe_mpi.a"
  "libscaffe_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
