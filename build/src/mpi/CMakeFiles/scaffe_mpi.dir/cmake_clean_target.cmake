file(REMOVE_RECURSE
  "libscaffe_mpi.a"
)
