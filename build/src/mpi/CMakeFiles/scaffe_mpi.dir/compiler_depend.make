# Empty compiler generated dependencies file for scaffe_mpi.
# This may be replaced when dependencies are built.
