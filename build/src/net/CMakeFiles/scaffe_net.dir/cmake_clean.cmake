file(REMOVE_RECURSE
  "CMakeFiles/scaffe_net.dir/cluster.cpp.o"
  "CMakeFiles/scaffe_net.dir/cluster.cpp.o.d"
  "CMakeFiles/scaffe_net.dir/cost_model.cpp.o"
  "CMakeFiles/scaffe_net.dir/cost_model.cpp.o.d"
  "libscaffe_net.a"
  "libscaffe_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
