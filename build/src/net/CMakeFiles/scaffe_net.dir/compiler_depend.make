# Empty compiler generated dependencies file for scaffe_net.
# This may be replaced when dependencies are built.
