file(REMOVE_RECURSE
  "libscaffe_net.a"
)
