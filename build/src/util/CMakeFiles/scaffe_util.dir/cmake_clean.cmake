file(REMOVE_RECURSE
  "CMakeFiles/scaffe_util.dir/bytes.cpp.o"
  "CMakeFiles/scaffe_util.dir/bytes.cpp.o.d"
  "CMakeFiles/scaffe_util.dir/duration.cpp.o"
  "CMakeFiles/scaffe_util.dir/duration.cpp.o.d"
  "CMakeFiles/scaffe_util.dir/logging.cpp.o"
  "CMakeFiles/scaffe_util.dir/logging.cpp.o.d"
  "CMakeFiles/scaffe_util.dir/stats.cpp.o"
  "CMakeFiles/scaffe_util.dir/stats.cpp.o.d"
  "CMakeFiles/scaffe_util.dir/table.cpp.o"
  "CMakeFiles/scaffe_util.dir/table.cpp.o.d"
  "libscaffe_util.a"
  "libscaffe_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
