# Empty compiler generated dependencies file for scaffe_util.
# This may be replaced when dependencies are built.
