file(REMOVE_RECURSE
  "libscaffe_util.a"
)
