file(REMOVE_RECURSE
  "libscaffe_gpu.a"
)
