# Empty dependencies file for scaffe_gpu.
# This may be replaced when dependencies are built.
