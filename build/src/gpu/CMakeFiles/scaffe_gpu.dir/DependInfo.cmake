
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/kernels.cpp" "src/gpu/CMakeFiles/scaffe_gpu.dir/kernels.cpp.o" "gcc" "src/gpu/CMakeFiles/scaffe_gpu.dir/kernels.cpp.o.d"
  "/root/repo/src/gpu/memcpy.cpp" "src/gpu/CMakeFiles/scaffe_gpu.dir/memcpy.cpp.o" "gcc" "src/gpu/CMakeFiles/scaffe_gpu.dir/memcpy.cpp.o.d"
  "/root/repo/src/gpu/pool_allocator.cpp" "src/gpu/CMakeFiles/scaffe_gpu.dir/pool_allocator.cpp.o" "gcc" "src/gpu/CMakeFiles/scaffe_gpu.dir/pool_allocator.cpp.o.d"
  "/root/repo/src/gpu/stream.cpp" "src/gpu/CMakeFiles/scaffe_gpu.dir/stream.cpp.o" "gcc" "src/gpu/CMakeFiles/scaffe_gpu.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scaffe_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
