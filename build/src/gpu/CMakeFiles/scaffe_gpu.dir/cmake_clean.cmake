file(REMOVE_RECURSE
  "CMakeFiles/scaffe_gpu.dir/kernels.cpp.o"
  "CMakeFiles/scaffe_gpu.dir/kernels.cpp.o.d"
  "CMakeFiles/scaffe_gpu.dir/memcpy.cpp.o"
  "CMakeFiles/scaffe_gpu.dir/memcpy.cpp.o.d"
  "CMakeFiles/scaffe_gpu.dir/pool_allocator.cpp.o"
  "CMakeFiles/scaffe_gpu.dir/pool_allocator.cpp.o.d"
  "CMakeFiles/scaffe_gpu.dir/stream.cpp.o"
  "CMakeFiles/scaffe_gpu.dir/stream.cpp.o.d"
  "libscaffe_gpu.a"
  "libscaffe_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
