# Empty compiler generated dependencies file for scaffe_sim.
# This may be replaced when dependencies are built.
