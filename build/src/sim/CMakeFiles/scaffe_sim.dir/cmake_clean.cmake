file(REMOVE_RECURSE
  "CMakeFiles/scaffe_sim.dir/engine.cpp.o"
  "CMakeFiles/scaffe_sim.dir/engine.cpp.o.d"
  "libscaffe_sim.a"
  "libscaffe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
