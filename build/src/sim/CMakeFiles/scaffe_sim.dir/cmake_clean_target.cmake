file(REMOVE_RECURSE
  "libscaffe_sim.a"
)
