file(REMOVE_RECURSE
  "CMakeFiles/scaffe_coll.dir/algorithms.cpp.o"
  "CMakeFiles/scaffe_coll.dir/algorithms.cpp.o.d"
  "CMakeFiles/scaffe_coll.dir/extensions.cpp.o"
  "CMakeFiles/scaffe_coll.dir/extensions.cpp.o.d"
  "CMakeFiles/scaffe_coll.dir/logical_executor.cpp.o"
  "CMakeFiles/scaffe_coll.dir/logical_executor.cpp.o.d"
  "CMakeFiles/scaffe_coll.dir/program.cpp.o"
  "CMakeFiles/scaffe_coll.dir/program.cpp.o.d"
  "CMakeFiles/scaffe_coll.dir/sim_executor.cpp.o"
  "CMakeFiles/scaffe_coll.dir/sim_executor.cpp.o.d"
  "CMakeFiles/scaffe_coll.dir/thread_executor.cpp.o"
  "CMakeFiles/scaffe_coll.dir/thread_executor.cpp.o.d"
  "CMakeFiles/scaffe_coll.dir/tuner.cpp.o"
  "CMakeFiles/scaffe_coll.dir/tuner.cpp.o.d"
  "libscaffe_coll.a"
  "libscaffe_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
