
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/algorithms.cpp" "src/coll/CMakeFiles/scaffe_coll.dir/algorithms.cpp.o" "gcc" "src/coll/CMakeFiles/scaffe_coll.dir/algorithms.cpp.o.d"
  "/root/repo/src/coll/extensions.cpp" "src/coll/CMakeFiles/scaffe_coll.dir/extensions.cpp.o" "gcc" "src/coll/CMakeFiles/scaffe_coll.dir/extensions.cpp.o.d"
  "/root/repo/src/coll/logical_executor.cpp" "src/coll/CMakeFiles/scaffe_coll.dir/logical_executor.cpp.o" "gcc" "src/coll/CMakeFiles/scaffe_coll.dir/logical_executor.cpp.o.d"
  "/root/repo/src/coll/program.cpp" "src/coll/CMakeFiles/scaffe_coll.dir/program.cpp.o" "gcc" "src/coll/CMakeFiles/scaffe_coll.dir/program.cpp.o.d"
  "/root/repo/src/coll/sim_executor.cpp" "src/coll/CMakeFiles/scaffe_coll.dir/sim_executor.cpp.o" "gcc" "src/coll/CMakeFiles/scaffe_coll.dir/sim_executor.cpp.o.d"
  "/root/repo/src/coll/thread_executor.cpp" "src/coll/CMakeFiles/scaffe_coll.dir/thread_executor.cpp.o" "gcc" "src/coll/CMakeFiles/scaffe_coll.dir/thread_executor.cpp.o.d"
  "/root/repo/src/coll/tuner.cpp" "src/coll/CMakeFiles/scaffe_coll.dir/tuner.cpp.o" "gcc" "src/coll/CMakeFiles/scaffe_coll.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scaffe_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scaffe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scaffe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/scaffe_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
