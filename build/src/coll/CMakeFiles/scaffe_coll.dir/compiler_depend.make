# Empty compiler generated dependencies file for scaffe_coll.
# This may be replaced when dependencies are built.
