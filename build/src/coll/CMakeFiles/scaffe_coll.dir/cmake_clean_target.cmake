file(REMOVE_RECURSE
  "libscaffe_coll.a"
)
