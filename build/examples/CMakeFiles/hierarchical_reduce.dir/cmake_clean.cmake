file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_reduce.dir/hierarchical_reduce.cpp.o"
  "CMakeFiles/hierarchical_reduce.dir/hierarchical_reduce.cpp.o.d"
  "hierarchical_reduce"
  "hierarchical_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
