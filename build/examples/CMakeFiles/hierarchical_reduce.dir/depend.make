# Empty dependencies file for hierarchical_reduce.
# This may be replaced when dependencies are built.
