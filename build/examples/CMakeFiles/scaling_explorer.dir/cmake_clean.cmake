file(REMOVE_RECURSE
  "CMakeFiles/scaling_explorer.dir/scaling_explorer.cpp.o"
  "CMakeFiles/scaling_explorer.dir/scaling_explorer.cpp.o.d"
  "scaling_explorer"
  "scaling_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
