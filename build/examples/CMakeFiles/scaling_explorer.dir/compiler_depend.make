# Empty compiler generated dependencies file for scaling_explorer.
# This may be replaced when dependencies are built.
