file(REMOVE_RECURSE
  "CMakeFiles/train_from_spec.dir/train_from_spec.cpp.o"
  "CMakeFiles/train_from_spec.dir/train_from_spec.cpp.o.d"
  "train_from_spec"
  "train_from_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_from_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
