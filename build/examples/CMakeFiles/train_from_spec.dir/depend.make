# Empty dependencies file for train_from_spec.
# This may be replaced when dependencies are built.
