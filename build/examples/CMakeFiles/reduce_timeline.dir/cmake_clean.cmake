file(REMOVE_RECURSE
  "CMakeFiles/reduce_timeline.dir/reduce_timeline.cpp.o"
  "CMakeFiles/reduce_timeline.dir/reduce_timeline.cpp.o.d"
  "reduce_timeline"
  "reduce_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduce_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
