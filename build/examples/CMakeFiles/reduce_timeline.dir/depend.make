# Empty dependencies file for reduce_timeline.
# This may be replaced when dependencies are built.
