file(REMOVE_RECURSE
  "CMakeFiles/scaffe_cli.dir/scaffe_cli.cpp.o"
  "CMakeFiles/scaffe_cli.dir/scaffe_cli.cpp.o.d"
  "scaffe_cli"
  "scaffe_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
