# Empty compiler generated dependencies file for scaffe_cli.
# This may be replaced when dependencies are built.
