file(REMOVE_RECURSE
  "CMakeFiles/distributed_cifar10.dir/distributed_cifar10.cpp.o"
  "CMakeFiles/distributed_cifar10.dir/distributed_cifar10.cpp.o.d"
  "distributed_cifar10"
  "distributed_cifar10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_cifar10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
