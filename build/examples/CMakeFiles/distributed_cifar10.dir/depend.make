# Empty dependencies file for distributed_cifar10.
# This may be replaced when dependencies are built.
