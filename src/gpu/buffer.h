// RAII device buffer: host-backed storage charged against a simulated Device.
#pragma once

#include <cassert>
#include <cstring>
#include <memory>
#include <span>
#include <utility>

#include "gpu/device.h"

namespace scaffe::gpu {

/// A typed allocation living "on" a simulated device. Move-only; releasing
/// refunds the device's capacity accounting.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& device, std::size_t count) : device_(&device), count_(count) {
    device.charge(bytes());
    data_ = std::make_unique<T[]>(count);
  }

  DeviceBuffer(DeviceBuffer&& other) noexcept
      : device_(std::exchange(other.device_, nullptr)),
        count_(std::exchange(other.count_, 0)),
        data_(std::move(other.data_)) {}

  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      device_ = std::exchange(other.device_, nullptr);
      count_ = std::exchange(other.count_, 0);
      data_ = std::move(other.data_);
    }
    return *this;
  }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { release(); }

  bool valid() const noexcept { return data_ != nullptr; }
  std::size_t size() const noexcept { return count_; }
  std::size_t bytes() const noexcept { return count_ * sizeof(T); }
  Device* device() const noexcept { return device_; }

  T* data() noexcept { return data_.get(); }
  const T* data() const noexcept { return data_.get(); }

  std::span<T> span() noexcept { return {data_.get(), count_}; }
  std::span<const T> span() const noexcept { return {data_.get(), count_}; }

  std::span<T> subspan(std::size_t offset, std::size_t count) noexcept {
    assert(offset + count <= count_);
    return {data_.get() + offset, count};
  }

  T& operator[](std::size_t i) noexcept {
    assert(i < count_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < count_);
    return data_[i];
  }

  void zero() noexcept {
    if (data_) std::memset(data_.get(), 0, bytes());
  }

 private:
  void release() noexcept {
    if (device_ && data_) device_->refund(bytes());
    device_ = nullptr;
    data_.reset();
    count_ = 0;
  }

  Device* device_ = nullptr;
  std::size_t count_ = 0;
  std::unique_ptr<T[]> data_;
};

}  // namespace scaffe::gpu
