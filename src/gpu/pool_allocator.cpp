#include "gpu/pool_allocator.h"

namespace scaffe::gpu {

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    if (pool_ && data_) pool_->give_back(std::move(data_), capacity_);
    pool_ = std::exchange(other.pool_, nullptr);
    data_ = std::move(other.data_);
    capacity_ = other.capacity_;
    count_ = other.count_;
  }
  return *this;
}

PooledBuffer::~PooledBuffer() {
  if (pool_ && data_) pool_->give_back(std::move(data_), capacity_);
}

PooledBuffer PoolAllocator::acquire(std::size_t count) {
  const std::size_t capacity = size_class(count);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = free_lists_.find(capacity);
    if (it != free_lists_.end() && !it->second.empty()) {
      std::unique_ptr<float[]> block = std::move(it->second.back());
      it->second.pop_back();
      cached_bytes_ -= capacity * sizeof(float);
      ++hits_;
      return PooledBuffer(this, std::move(block), capacity, count);
    }
    ++misses_;
  }
  // Fresh block: charge the device (may throw OutOfMemoryError) outside the
  // pool lock.
  device_.charge(capacity * sizeof(float));
  return PooledBuffer(this, std::make_unique<float[]>(capacity), capacity, count);
}

void PoolAllocator::give_back(std::unique_ptr<float[]> data, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_lists_[capacity].push_back(std::move(data));
  cached_bytes_ += capacity * sizeof(float);
  // Still charged against the device: the pool owns the memory (CNMeM-style).
}

void PoolAllocator::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [capacity, blocks] : free_lists_) {
    device_.refund(capacity * sizeof(float) * blocks.size());
    blocks.clear();
  }
  free_lists_.clear();
  cached_bytes_ = 0;
}

}  // namespace scaffe::gpu
