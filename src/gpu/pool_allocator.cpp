#include "gpu/pool_allocator.h"

#include <algorithm>

namespace scaffe::gpu {

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    if (pool_ && block_.valid()) pool_->device_.refund(block_.capacity());
    pool_ = std::exchange(other.pool_, nullptr);
    block_ = std::move(other.block_);
    count_ = std::exchange(other.count_, 0);
  }
  return *this;
}

PooledBuffer::~PooledBuffer() {
  // Refund the device here; the MemBlock member recycles into the registry.
  if (pool_ && block_.valid()) pool_->device_.refund(block_.capacity());
}

PooledBuffer PoolAllocator::acquire(std::size_t count) {
  const std::size_t bytes =
      util::MemoryRegistry::size_class(std::max<std::size_t>(count, 16) * sizeof(float));
  // Charge first: OutOfMemoryError propagates before any block changes hands.
  device_.charge(bytes);
  util::MemBlock block;
  try {
    block = registry_.acquire(bytes);
  } catch (...) {
    device_.refund(bytes);
    throw;
  }
  if (block.recycled()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return PooledBuffer(this, std::move(block), count);
}

}  // namespace scaffe::gpu
