// Simulated GPU device: memory-capacity accounting with real out-of-memory
// faults, plus per-device bookkeeping used by the functional substrate.
//
// Buffers allocated through a Device are ordinary host memory (there is no
// real GPU here), but every allocation is charged against the device's
// capacity — Figure 8's missing data points (batches too large for 12 GB)
// come out of these faults, not special cases.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "util/bytes.h"

namespace scaffe::gpu {

/// Thrown when a device allocation exceeds remaining capacity.
class OutOfMemoryError : public std::runtime_error {
 public:
  OutOfMemoryError(int device, std::size_t requested, std::size_t available)
      : std::runtime_error("gpu " + std::to_string(device) + ": out of memory (requested " +
                           util::fmt_bytes(requested) + ", available " +
                           util::fmt_bytes(available) + ")"),
        device_(device),
        requested_(requested),
        available_(available) {}

  int device() const noexcept { return device_; }
  std::size_t requested() const noexcept { return requested_; }
  std::size_t available() const noexcept { return available_; }

 private:
  int device_;
  std::size_t requested_;
  std::size_t available_;
};

class Device {
 public:
  explicit Device(int id, std::size_t capacity_bytes = std::size_t{12} * util::kGiB) noexcept
      : id_(id), capacity_(capacity_bytes) {}
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const noexcept { return id_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t allocated() const noexcept { return allocated_.load(); }
  std::size_t available() const noexcept {
    const std::size_t used = allocated_.load();
    return used >= capacity_ ? 0 : capacity_ - used;
  }
  std::size_t peak_allocated() const noexcept { return peak_.load(); }
  std::uint64_t allocation_count() const noexcept { return allocations_.load(); }

  /// Charges `bytes` against capacity; throws OutOfMemoryError if it can't.
  void charge(std::size_t bytes) {
    std::size_t used = allocated_.load();
    for (;;) {
      if (used + bytes > capacity_) throw OutOfMemoryError(id_, bytes, capacity_ - used);
      if (allocated_.compare_exchange_weak(used, used + bytes)) break;
    }
    allocations_.fetch_add(1);
    std::size_t peak = peak_.load();
    while (used + bytes > peak && !peak_.compare_exchange_weak(peak, used + bytes)) {
    }
  }

  /// Returns `bytes` to the device pool.
  void refund(std::size_t bytes) noexcept { allocated_.fetch_sub(bytes); }

 private:
  int id_;
  std::size_t capacity_;
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> allocations_{0};
};

}  // namespace scaffe::gpu
