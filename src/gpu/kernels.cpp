#include "gpu/kernels.h"

#include <cassert>
#include <cstring>

#include "util/thread_pool.h"

namespace scaffe::gpu {

namespace {

// Spans at or above the threshold go through the shared pool in fixed-size
// chunks; below it the serial loop wins. The element-wise kernels partition
// disjoint index ranges, so parallel results are bitwise identical to the
// serial ones at any thread count.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 16;
constexpr std::size_t kParallelGrain = std::size_t{1} << 15;

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  if (x.size() < kParallelThreshold) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
    return;
  }
  util::parallel_for(0, x.size(), kParallelGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) y[i] += alpha * x[i];
  });
}

void accumulate(std::span<const float> src, std::span<float> acc) noexcept {
  assert(src.size() == acc.size());
  if (src.size() < kParallelThreshold) {
    for (std::size_t i = 0; i < src.size(); ++i) acc[i] += src[i];
    return;
  }
  util::parallel_for(0, src.size(), kParallelGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) acc[i] += src[i];
  });
}

void copy(std::span<const float> src, std::span<float> dst) noexcept {
  assert(src.size() == dst.size());
  if (src.empty()) return;
  if (src.size() < kParallelThreshold) {
    std::memcpy(dst.data(), src.data(), src.size_bytes());
    return;
  }
  util::parallel_for(0, src.size(), kParallelGrain, [&](std::size_t begin, std::size_t end) {
    std::memcpy(dst.data() + begin, src.data() + begin, (end - begin) * sizeof(float));
  });
}

void scale(float alpha, std::span<float> x) noexcept {
  if (x.size() < kParallelThreshold) {
    for (float& v : x) v *= alpha;
    return;
  }
  util::parallel_for(0, x.size(), kParallelGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) x[i] *= alpha;
  });
}

void fill(float value, std::span<float> x) noexcept {
  if (x.size() < kParallelThreshold) {
    for (float& v : x) v = value;
    return;
  }
  util::parallel_for(0, x.size(), kParallelGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) x[i] = value;
  });
}

double sum(std::span<const float> x) noexcept {
  double total = 0.0;
  for (float v : x) total += v;
  return total;
}

double dot(std::span<const float> x, std::span<const float> y) noexcept {
  assert(x.size() == y.size());
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) total += static_cast<double>(x[i]) * y[i];
  return total;
}

void sgd_update(std::span<float> param, std::span<const float> grad, std::span<float> momentum_buf,
                float lr, float momentum, float weight_decay) noexcept {
  assert(param.size() == grad.size() && param.size() == momentum_buf.size());
  auto update_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const float g = grad[i] + weight_decay * param[i];
      momentum_buf[i] = momentum * momentum_buf[i] - lr * g;
      param[i] += momentum_buf[i];
    }
  };
  if (param.size() < kParallelThreshold) {
    update_range(0, param.size());
    return;
  }
  util::parallel_for(0, param.size(), kParallelGrain, update_range);
}

void launch_accumulate(Stream& stream, std::span<const float> src, std::span<float> acc) {
  stream.enqueue([src, acc] { accumulate(src, acc); });
}

void launch_copy(Stream& stream, std::span<const float> src, std::span<float> dst) {
  stream.enqueue([src, dst] { copy(src, dst); });
}

void launch_fill(Stream& stream, float value, std::span<float> x) {
  stream.enqueue([value, x] { fill(value, x); });
}

}  // namespace scaffe::gpu
