#include "gpu/kernels.h"

#include <cassert>
#include <cstring>

namespace scaffe::gpu {

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void accumulate(std::span<const float> src, std::span<float> acc) noexcept {
  assert(src.size() == acc.size());
  for (std::size_t i = 0; i < src.size(); ++i) acc[i] += src[i];
}

void copy(std::span<const float> src, std::span<float> dst) noexcept {
  assert(src.size() == dst.size());
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size_bytes());
}

void scale(float alpha, std::span<float> x) noexcept {
  for (float& v : x) v *= alpha;
}

void fill(float value, std::span<float> x) noexcept {
  for (float& v : x) v = value;
}

double sum(std::span<const float> x) noexcept {
  double total = 0.0;
  for (float v : x) total += v;
  return total;
}

double dot(std::span<const float> x, std::span<const float> y) noexcept {
  assert(x.size() == y.size());
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) total += static_cast<double>(x[i]) * y[i];
  return total;
}

void sgd_update(std::span<float> param, std::span<const float> grad, std::span<float> momentum_buf,
                float lr, float momentum, float weight_decay) noexcept {
  assert(param.size() == grad.size() && param.size() == momentum_buf.size());
  for (std::size_t i = 0; i < param.size(); ++i) {
    const float g = grad[i] + weight_decay * param[i];
    momentum_buf[i] = momentum * momentum_buf[i] - lr * g;
    param[i] += momentum_buf[i];
  }
}

void launch_accumulate(Stream& stream, std::span<const float> src, std::span<float> acc) {
  stream.enqueue([src, acc] { accumulate(src, acc); });
}

void launch_copy(Stream& stream, std::span<const float> src, std::span<float> dst) {
  stream.enqueue([src, dst] { copy(src, dst); });
}

void launch_fill(Stream& stream, float value, std::span<float> x) {
  stream.enqueue([value, x] { fill(value, x); });
}

}  // namespace scaffe::gpu
