// Caching device allocator, CNMeM-style (the memory manager Caffe-era
// frameworks used to avoid cudaMalloc/cudaFree in the training loop).
//
// Freed blocks return to per-size-class free lists and stay charged against
// the device (exactly CNMeM's behaviour — the pool owns the memory);
// trim() releases the cache back to the device.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "gpu/device.h"

namespace scaffe::gpu {

class PoolAllocator;

/// RAII handle to a pooled float block; returns to the pool on destruction.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        data_(std::move(other.data_)),
        capacity_(other.capacity_),
        count_(other.count_) {}
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer();

  bool valid() const noexcept { return data_ != nullptr; }
  std::size_t size() const noexcept { return count_; }          // requested
  std::size_t capacity() const noexcept { return capacity_; }   // size class
  std::span<float> span() noexcept { return {data_.get(), count_}; }
  float* data() noexcept { return data_.get(); }

 private:
  friend class PoolAllocator;
  PooledBuffer(PoolAllocator* pool, std::unique_ptr<float[]> data, std::size_t capacity,
               std::size_t count)
      : pool_(pool), data_(std::move(data)), capacity_(capacity), count_(count) {}

  PoolAllocator* pool_ = nullptr;
  std::unique_ptr<float[]> data_;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
};

class PoolAllocator {
 public:
  explicit PoolAllocator(Device& device) : device_(device) {}
  ~PoolAllocator() { trim(); }
  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;

  /// Returns a block of at least `count` floats. Sizes round up to the next
  /// power of two (size classes). Throws OutOfMemoryError when the device
  /// cannot back a fresh block.
  PooledBuffer acquire(std::size_t count);

  /// Releases every cached block back to the device.
  void trim();

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::size_t cached_bytes() const noexcept { return cached_bytes_; }

 private:
  friend class PooledBuffer;
  void give_back(std::unique_ptr<float[]> data, std::size_t capacity);

  static std::size_t size_class(std::size_t count) noexcept {
    std::size_t capacity = 16;
    while (capacity < count) capacity <<= 1;
    return capacity;
  }

  Device& device_;
  std::mutex mutex_;
  std::map<std::size_t, std::vector<std::unique_ptr<float[]>>> free_lists_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::size_t cached_bytes_ = 0;
};

}  // namespace scaffe::gpu
