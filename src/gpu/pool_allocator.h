// Caching device allocator in the CNMeM lineage (the memory manager
// Caffe-era frameworks used to avoid cudaMalloc/cudaFree in the training
// loop), now a thin device-accounting veneer over util::MemoryRegistry.
//
// The registry owns the recycling: freed blocks land in its per-thread
// shards and are reusable by ANY client (transport staging, solver scratch,
// sample-store windows), not just this allocator. What remains here is the
// device budget: every acquire charges the device for the block's size class
// (throwing OutOfMemoryError before any memory is taken) and every release
// refunds it, so Device::allocated() tracks blocks handed out rather than
// blocks hoarded by a private cache.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "gpu/device.h"
#include "util/memory_registry.h"

namespace scaffe::gpu {

class PoolAllocator;

/// RAII handle to a pooled float block; refunds the device and returns the
/// block to the registry on destruction.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        block_(std::move(other.block_)),
        count_(std::exchange(other.count_, 0)) {}
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer();

  bool valid() const noexcept { return block_.valid(); }
  std::size_t size() const noexcept { return count_; }  // requested
  std::size_t capacity() const noexcept { return block_.capacity() / sizeof(float); }
  std::span<float> span() noexcept { return {block_.floats(), count_}; }
  float* data() noexcept { return block_.floats(); }

 private:
  friend class PoolAllocator;
  PooledBuffer(PoolAllocator* pool, util::MemBlock block, std::size_t count)
      : pool_(pool), block_(std::move(block)), count_(count) {}

  PoolAllocator* pool_ = nullptr;
  util::MemBlock block_;
  std::size_t count_ = 0;
};

class PoolAllocator {
 public:
  explicit PoolAllocator(Device& device,
                         util::MemoryRegistry& registry = util::MemoryRegistry::instance())
      : device_(device), registry_(registry) {}
  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;

  /// Returns a block of at least `count` floats. Sizes round up to the next
  /// power-of-two byte class (16-float minimum). Throws OutOfMemoryError
  /// when the device cannot back the block — charged before the registry is
  /// touched, so a failed acquire leaves no state behind.
  PooledBuffer acquire(std::size_t count);

  /// Releases the backing registry's cached blocks (shared with every other
  /// registry client; the device holds no charge for cached blocks).
  void trim() { registry_.trim(); }

  /// Blocks served from the registry cache / fresh heap allocations, for
  /// this allocator's acquires only.
  std::uint64_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }

 private:
  friend class PooledBuffer;

  Device& device_;
  util::MemoryRegistry& registry_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace scaffe::gpu
