#include "gpu/memcpy.h"

#include <cassert>
#include <cstring>

namespace scaffe::gpu {

namespace {
std::atomic<std::size_t> g_bytes[4] = {};

void copy_payload(std::span<float> dst, std::span<const float> src, CopyKind kind) {
  assert(dst.size() == src.size());
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size_bytes());
  g_bytes[static_cast<int>(kind)].fetch_add(src.size_bytes(), std::memory_order_relaxed);
}
}  // namespace

const char* copy_kind_name(CopyKind kind) noexcept {
  switch (kind) {
    case CopyKind::HostToDevice: return "H2D";
    case CopyKind::DeviceToHost: return "D2H";
    case CopyKind::DeviceToDevice: return "D2D";
    case CopyKind::PeerToPeer: return "P2P";
  }
  return "?";
}

std::size_t CopyStats::bytes(CopyKind kind) noexcept {
  return g_bytes[static_cast<int>(kind)].load(std::memory_order_relaxed);
}

void CopyStats::reset() noexcept {
  for (auto& counter : g_bytes) counter.store(0, std::memory_order_relaxed);
}

void memcpy_sync(std::span<float> dst, std::span<const float> src, CopyKind kind) {
  copy_payload(dst, src, kind);
}

void memcpy_async(Stream& stream, std::span<float> dst, std::span<const float> src,
                  CopyKind kind) {
  stream.enqueue([dst, src, kind] { copy_payload(dst, src, kind); });
}

}  // namespace scaffe::gpu
