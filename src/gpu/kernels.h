// Float "kernels" used by solvers and reductions. Synchronous forms operate
// on spans; `launch_*` forms enqueue onto a Stream (async, in-order).
//
// Element-wise kernels (axpy/accumulate/copy/scale/fill/sgd_update) run over
// the shared util::ThreadPool above a size threshold; disjoint index ranges
// keep parallel results bitwise identical to serial at any SCAFFE_THREADS.
// Reductions (sum/dot) stay serial for a fixed accumulation order.
#pragma once

#include <cstddef>
#include <span>

#include "gpu/stream.h"

namespace scaffe::gpu {

/// y[i] += alpha * x[i]
void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept;

/// acc[i] += src[i] — the reduction combiner.
void accumulate(std::span<const float> src, std::span<float> acc) noexcept;

/// dst[i] = src[i]
void copy(std::span<const float> src, std::span<float> dst) noexcept;

/// x[i] *= alpha
void scale(float alpha, std::span<float> x) noexcept;

/// x[i] = value
void fill(float value, std::span<float> x) noexcept;

/// sum(x)
double sum(std::span<const float> x) noexcept;

/// dot(x, y)
double dot(std::span<const float> x, std::span<const float> y) noexcept;

/// Momentum-SGD update, Caffe semantics:
///   v = momentum * v - lr * (grad + weight_decay * param); param += v
void sgd_update(std::span<float> param, std::span<const float> grad, std::span<float> momentum_buf,
                float lr, float momentum, float weight_decay) noexcept;

/// Asynchronous variants: enqueue onto `stream`. Spans must outlive execution.
void launch_accumulate(Stream& stream, std::span<const float> src, std::span<float> acc);
void launch_copy(Stream& stream, std::span<const float> src, std::span<float> dst);
void launch_fill(Stream& stream, float value, std::span<float> x);

}  // namespace scaffe::gpu
