// In-order asynchronous execution stream and events, CUDA-style.
//
// Work submitted to a Stream runs on a dedicated worker thread in submission
// order; `synchronize()` blocks until everything submitted so far completes.
// Events capture a point in the stream and can be waited on independently —
// the functional analogue of cudaEventRecord / cudaEventSynchronize that the
// SC-OBR helper-thread design relies on.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace scaffe::gpu {

/// A point in a stream's execution; complete once the stream passes it.
class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  bool complete() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->complete;
  }

  /// Blocks the calling thread until the event completes.
  void wait() const {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->complete; });
  }

 private:
  friend class Stream;
  struct State {
    mutable std::mutex mutex;
    std::condition_variable cv;
    bool complete = false;
  };
  void fire() const {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      state_->complete = true;
    }
    state_->cv.notify_all();
  }
  std::shared_ptr<State> state_;
};

class Stream {
 public:
  Stream();
  ~Stream();
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues arbitrary work (a "kernel launch" or async memcpy body).
  void enqueue(std::function<void()> work);

  /// Records an event at the current tail of the stream.
  Event record();

  /// Blocks until all previously-enqueued work completes.
  void synchronize();

  /// Number of operations executed (diagnostics).
  std::uint64_t completed() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_submit_;
  std::condition_variable cv_drain_;
  std::deque<std::function<void()>> queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  bool shutdown_ = false;
  std::thread worker_;
};

}  // namespace scaffe::gpu
