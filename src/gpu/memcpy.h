// Explicit memory-copy API, CUDA-style: the operations CUDA-aware MPI made
// unnecessary for application code (Section 2.3) but which the runtime and
// solvers still perform internally. Synchronous forms plus stream-ordered
// async forms; every copy is tallied per direction for tests and
// diagnostics.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>

#include "gpu/stream.h"

namespace scaffe::gpu {

enum class CopyKind {
  HostToDevice,
  DeviceToHost,
  DeviceToDevice,  // same device
  PeerToPeer,      // across devices (CUDA IPC / P2P)
};

const char* copy_kind_name(CopyKind kind) noexcept;

/// Global per-direction byte counters (process-wide, thread-safe).
struct CopyStats {
  static std::size_t bytes(CopyKind kind) noexcept;
  static void reset() noexcept;
};

/// Synchronous copy ("cudaMemcpy").
void memcpy_sync(std::span<float> dst, std::span<const float> src, CopyKind kind);

/// Stream-ordered copy ("cudaMemcpyAsync"): completes when the stream
/// reaches it; the spans must stay valid until then.
void memcpy_async(Stream& stream, std::span<float> dst, std::span<const float> src,
                  CopyKind kind);

}  // namespace scaffe::gpu
