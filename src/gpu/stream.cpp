#include "gpu/stream.h"

namespace scaffe::gpu {

Stream::Stream() : worker_([this] { worker_loop(); }) {}

Stream::~Stream() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_submit_.notify_all();
  worker_.join();
}

void Stream::enqueue(std::function<void()> work) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(work));
    ++submitted_;
  }
  cv_submit_.notify_one();
}

Event Stream::record() {
  Event event;
  enqueue([event] { event.fire(); });
  return event;
}

void Stream::synchronize() {
  std::uint64_t target;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    target = submitted_;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_drain_.wait(lock, [&] { return completed_ >= target; });
}

std::uint64_t Stream::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void Stream::worker_loop() {
  for (;;) {
    std::function<void()> work;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_submit_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    work();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
    cv_drain_.notify_all();
  }
}

}  // namespace scaffe::gpu
