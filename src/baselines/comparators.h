// Modelled comparators for Figures 8-10: BVLC Caffe, NVIDIA Caffe, and a
// CNTK-like MPI allreduce trainer. Each is a thin configuration of the core
// performance model reflecting the comparator's communication structure:
//
//  - Caffe (BVLC): single-process multi-threaded reduction tree, intra-node
//    only (<= GPUs per node), one LMDB data-reader thread for all solvers,
//    no computation/communication overlap.
//  - NVIDIA Caffe: same structure with the optimized P2P tree (GPU-kernel
//    reductions over CUDA IPC) — the "Nvidia's optimized Caffe" of the
//    single-node comparison (14%/9% claims).
//  - CNTK-like: MPI data-parallel with a flat allreduce (reduce+bcast) per
//    iteration over host-staged transport and CPU reductions, no overlap —
//    "comparable performance" to S-Caffe at small scale (Figure 10).
#pragma once

#include <optional>

#include "core/perf_model.h"

namespace scaffe::baselines {

/// BVLC Caffe: nullopt beyond one node (it cannot scale out).
std::optional<core::IterationBreakdown> simulate_caffe_iteration(
    const core::TrainPerfConfig& config);

/// NVIDIA's fork: intra-node only, optimized tree.
std::optional<core::IterationBreakdown> simulate_nvcaffe_iteration(
    const core::TrainPerfConfig& config);

/// CNTK-like MPI trainer (32-bit SGD: full-precision gradients).
core::IterationBreakdown simulate_cntk_iteration(const core::TrainPerfConfig& config);

}  // namespace scaffe::baselines
