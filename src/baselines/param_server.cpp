#include "baselines/param_server.h"

#include <stdexcept>

#include "gpu/kernels.h"
#include "net/cost_model.h"

namespace scaffe::baselines {

namespace {
constexpr int kGradTag = 101;
constexpr int kParamTag = 102;
}  // namespace

ParamServerSolver::ParamServerSolver(mpi::Comm& comm, dl::NetSpec net_spec,
                                     dl::SolverConfig solver_config, int max_workers)
    : comm_(comm), solver_(std::move(net_spec), solver_config) {
  if (comm.size() < 2 || comm.size() > max_workers) {
    throw std::runtime_error("ParamServerSolver: supported only for 2.." +
                             std::to_string(max_workers) + " ranks");
  }
  packed_.resize(solver_.net().param_count());
  scratch_.resize(solver_.net().param_count());
}

float ParamServerSolver::train_iteration(std::span<const float> data,
                                         std::span<const float> labels) {
  dl::Net& net = solver_.net();

  // Parameter distribution: the server pushes current weights to each worker
  // individually (master-worker, not a collective).
  if (comm_.rank() == 0) {
    net.flatten_params(packed_);
    for (int worker = 1; worker < comm_.size(); ++worker) {
      comm_.send<float>(packed_, worker, kParamTag);
    }
  } else {
    comm_.recv<float>(std::span<float>(packed_), 0, kParamTag);
    net.unflatten_params(packed_);
  }

  const float loss = solver_.step(data, labels);

  // Gradient collection: every worker ships its full gradient to the server,
  // which folds them in ARRIVAL order (MPI_ANY_SOURCE) — the real
  // parameter-server pattern, and why PS aggregation is not deterministic
  // across runs the way the reduction tree is.
  if (comm_.rank() == 0) {
    net.flatten_diffs(packed_);
    for (int worker = 1; worker < comm_.size(); ++worker) {
      comm_.recv_any<float>(std::span<float>(scratch_), kGradTag);
      gpu::accumulate(scratch_, packed_);
    }
    gpu::scale(1.0f / static_cast<float>(comm_.size()), packed_);
    net.unflatten_diffs(packed_);
    solver_.apply_update();
  } else {
    net.flatten_diffs(packed_);
    comm_.send<float>(packed_, 0, kGradTag);
    solver_.advance_iteration();
  }
  return loss;
}

std::optional<core::IterationBreakdown> simulate_param_server_iteration(
    const core::TrainPerfConfig& config, int max_gpus) {
  if (config.gpus < 2 || config.gpus > max_gpus) return std::nullopt;

  const net::CostModel cost(config.cluster);
  const net::Topology topo(config.cluster, config.gpus);
  const models::ModelDesc& model = config.model;

  core::IterationBreakdown out;
  out.batch_per_gpu = config.scaling == core::Scaling::Strong
                          ? config.global_batch / config.gpus
                          : config.global_batch;
  if (out.batch_per_gpu < 1) {
    out.oom = true;
    return out;
  }
  const int global_batch = out.batch_per_gpu * config.gpus;

  for (const auto& layer : model.layers) {
    out.forward += cost.gpu_compute(layer.fwd_flops * out.batch_per_gpu, out.batch_per_gpu);
    out.backward += cost.gpu_compute(layer.bwd_flops * out.batch_per_gpu, out.batch_per_gpu);
  }

  // Server serialization: (P-1) full-gradient receives + CPU accumulations
  // inbound, then (P-1) full-parameter sends outbound. Host-staged transfers
  // (the PS implementations of the era were not CUDA-collective-aware).
  const std::size_t bytes = model.param_bytes();
  util::TimeNs inbound = 0;
  util::TimeNs outbound = 0;
  for (int worker = 1; worker < config.gpus; ++worker) {
    const net::Path path = topo.path(worker, 0);
    inbound += cost.msg_time(bytes, path, net::Staging::HostPipelined) +
               cost.reduce(bytes, net::ExecSpace::Host);
    outbound += cost.msg_time(bytes, path, net::Staging::HostPipelined);
  }
  out.aggregation_exposed = inbound;
  out.propagation_exposed = outbound;
  out.update = cost.kernel_launch() +
               static_cast<util::TimeNs>(static_cast<double>(bytes) * 4.0 /
                                   (config.cluster.gpu.mem_bw_gbs * 1e9) * 1e9);

  out.total = out.propagation_exposed + out.forward + out.backward + out.aggregation_exposed +
              out.update;
  out.samples_per_sec = static_cast<double>(global_batch) / util::to_sec(out.total);
  out.training_time_sec = util::to_sec(out.total) * config.iterations;
  return out;
}

}  // namespace scaffe::baselines
