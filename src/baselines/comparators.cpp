#include "baselines/comparators.h"

namespace scaffe::baselines {

namespace {

/// Shared shape: SC-B-like blocking workflow with the given reduce config,
/// transport policy, and reader setup.
core::TrainPerfConfig blocking_variant(const core::TrainPerfConfig& base,
                                       core::ReduceAlgo reduce, coll::ExecPolicy policy,
                                       core::ReaderBackendKind reader, int readers) {
  core::TrainPerfConfig config = base;
  config.variant = core::Variant::SCB;
  config.reduce = reduce;
  config.comm_policy = std::move(policy);
  config.reader = reader;
  config.readers = readers;
  return config;
}

}  // namespace

std::optional<core::IterationBreakdown> simulate_caffe_iteration(
    const core::TrainPerfConfig& base) {
  if (base.gpus > base.cluster.gpus_per_node) return std::nullopt;  // single node only
  // Stock tree: host-pipelined staging with CPU reductions, one data reader.
  coll::ExecPolicy policy = coll::ExecPolicy::mvapich2();
  policy.name = "Caffe-tree";
  return core::simulate_training_iteration(blocking_variant(
      base, core::ReduceAlgo::binomial(), policy, core::ReaderBackendKind::LmdbSim,
      /*readers=*/1));
}

std::optional<core::IterationBreakdown> simulate_nvcaffe_iteration(
    const core::TrainPerfConfig& base) {
  if (base.gpus > base.cluster.gpus_per_node) return std::nullopt;
  // Optimized P2P tree: CUDA IPC + GPU-kernel reductions, and the fork
  // already pipelines the parameter distribution behind the forward pass —
  // what S-Caffe still beats through SC-OBR's aggregation overlap.
  core::TrainPerfConfig config = blocking_variant(
      base, core::ReduceAlgo::binomial(), coll::ExecPolicy::hr_gdr(),
      core::ReaderBackendKind::LmdbSim, /*readers=*/1);
  config.variant = core::Variant::SCOB;
  return core::simulate_training_iteration(config);
}

core::IterationBreakdown simulate_cntk_iteration(const core::TrainPerfConfig& base) {
  // Flat binomial reduce + bcast per iteration, blocking, but over an
  // efficient transport (CNTK's MPI path was well engineered; Figure 10
  // shows it comparable to S-Caffe at this scale).
  coll::ExecPolicy policy = coll::ExecPolicy::hr_gdr();
  policy.name = "CNTK";
  core::TrainPerfConfig config = blocking_variant(base, core::ReduceAlgo::binomial(), policy,
                                                  core::ReaderBackendKind::LustreImageData,
                                                  /*readers=*/base.gpus);
  core::IterationBreakdown out = core::simulate_training_iteration(config);
  // CNTK broadcasts updated parameters as part of its allreduce-style sync:
  // already captured by SC-B's bcast + reduce structure.
  return out;
}

}  // namespace scaffe::baselines
