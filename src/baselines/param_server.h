// Parameter-server baseline (the Inspur-Caffe / CNTK-PS design of Table 1).
//
// Rank 0 is the server: workers send their packed gradients point-to-point,
// the server sums them, applies the update, and sends fresh parameters back.
// This is the design Section 3.1 argues against — the server's NIC and
// reduction loop serialize over all workers — and its scaling ceiling shows
// up in both the functional runs and the Figure 10 model.
#pragma once

#include <optional>
#include <span>

#include "core/perf_model.h"
#include "dl/solver.h"
#include "mpi/comm.h"

namespace scaffe::baselines {

/// Functional parameter-server trainer over scmpi (server = rank 0; the
/// server also trains a shard, matching Inspur-Caffe's deployment).
class ParamServerSolver {
 public:
  /// `max_workers`: the implementation artifact the paper observed —
  /// Inspur-Caffe "didn't run for less than 2 GPUs and more than 16"; we
  /// enforce the same envelope so the comparison is honest.
  ParamServerSolver(mpi::Comm& comm, dl::NetSpec net_spec, dl::SolverConfig solver_config,
                    int max_workers = 16);

  float train_iteration(std::span<const float> data, std::span<const float> labels);

  dl::SgdSolver& solver() noexcept { return solver_; }

 private:
  mpi::Comm& comm_;
  dl::SgdSolver solver_;
  std::vector<float> packed_;
  std::vector<float> scratch_;
};

/// Modelled per-iteration time of the parameter-server design. Returns
/// nullopt outside its supported range (Figure 10 shows Inspur-Caffe points
/// only for 2-16 GPUs).
std::optional<core::IterationBreakdown> simulate_param_server_iteration(
    const core::TrainPerfConfig& config, int max_gpus = 16);

}  // namespace scaffe::baselines
