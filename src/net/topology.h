// Rank placement: maps MPI ranks onto (node, local GPU) and classifies the
// communication path between any two ranks.
#pragma once

#include <cassert>

#include "net/cluster.h"

namespace scaffe::net {

/// How two ranks reach each other.
enum class Path {
  SameGpu,    // degenerate self-communication
  IntraNode,  // PCIe peer-to-peer / CUDA IPC
  InterNode,  // InfiniBand
};

/// Block placement: ranks fill node 0's GPUs first, then node 1, ... — the
/// same ordering mpirun_rsh produces with a hostfile listing each node once
/// per GPU, and what the paper's chain-size = GPUs-per-lower-communicator
/// tuning assumes.
class Topology {
 public:
  Topology(const ClusterSpec& spec, int nranks)
      : gpus_per_node_(spec.gpus_per_node), nranks_(nranks) {
    assert(nranks >= 1);
    assert(nranks <= spec.total_gpus());
  }

  int nranks() const noexcept { return nranks_; }
  int gpus_per_node() const noexcept { return gpus_per_node_; }

  int node_of(int rank) const noexcept {
    assert(rank >= 0 && rank < nranks_);
    return rank / gpus_per_node_;
  }
  int local_gpu_of(int rank) const noexcept { return rank % gpus_per_node_; }

  int nodes_used() const noexcept {
    return (nranks_ + gpus_per_node_ - 1) / gpus_per_node_;
  }

  Path path(int from, int to) const noexcept {
    if (from == to) return Path::SameGpu;
    return node_of(from) == node_of(to) ? Path::IntraNode : Path::InterNode;
  }

 private:
  int gpus_per_node_;
  int nranks_;
};

}  // namespace scaffe::net
