// Cluster hardware descriptions for the performance substrate.
//
// The paper evaluates on two systems:
//  - Cluster-A: 12-node Cray CS-Storm, 8x K80 per node (16 CUDA devices),
//    dual-port InfiniBand Connect-IB (FDR), Lustre storage.
//  - Cluster-B: 20 nodes, 1x K80 per node (2 CUDA devices), InfiniBand EDR.
//
// ClusterSpec captures the bandwidth/latency/capacity parameters that decide
// the *shape* of every figure: PCIe vs IB bandwidth ratios, GPUDirect-RDMA
// limits on Kepler, CPU vs GPU reduction throughput, and GPU memory capacity
// (which produces Figure 8's out-of-memory gaps). Values are calibrated from
// public K80 / PCIe gen3 / FDR / EDR datasheets; see DESIGN.md.
#pragma once

#include <cstddef>
#include <string>

#include "util/bytes.h"
#include "util/duration.h"

namespace scaffe::net {

using util::TimeNs;

/// One CUDA device (a GK210 die of a K80 card).
struct GpuSpec {
  double peak_tflops = 2.8;          // FP32 peak per GK210
  double dl_efficiency = 0.55;       // sustained fraction on conv workloads
  double mem_bw_gbs = 240.0;         // device memory bandwidth
  double reduce_payload_gbs = 80.0;  // achievable a+=b throughput (3 touches)
  std::size_t mem_bytes = std::size_t{12} * util::kGiB;
  TimeNs kernel_launch = 8 * util::kUs;  // launch + sync overhead

  /// Mini-batch at which the device reaches half of its sustained rate:
  /// strong scaling shrinks per-GPU batches until kernels underutilize the
  /// SMs — the effect that bends Figure 8 away from linear speedup.
  double batch_half_saturation = 8.0;

  double sustained_flops() const noexcept { return peak_tflops * 1e12 * dl_efficiency; }

  /// Sustained rate at a given per-GPU mini-batch.
  double sustained_flops(int batch) const noexcept {
    const double b = static_cast<double>(batch);
    return sustained_flops() * b / (b + batch_half_saturation);
  }
};

/// A point-to-point transport (PCIe hop, IB wire, host memcpy...).
struct LinkSpec {
  double bw_gbs = 0.0;  // payload bandwidth, GB/s
  TimeNs latency = 0;   // per-message latency

  /// Store-and-forward duration for `bytes` over this link.
  TimeNs xfer(std::size_t bytes) const noexcept {
    return latency + static_cast<TimeNs>(static_cast<double>(bytes) / (bw_gbs * 1e9) * 1e9);
  }
};

/// Storage subsystem feeding the data readers (Section 3.2 / Figure 8).
struct StorageSpec {
  // Lustre-like parallel file system read through ImageDataLayer.
  double pfs_stripe_gbs = 1.2;  // per-OST streaming read bandwidth
  int pfs_num_ost = 48;         // object storage targets (parallelism cap)
  // LMDB single-file database: parallel reads serialize on page locks.
  double lmdb_single_reader_gbs = 1.6;
  int lmdb_contention_knee = 16;   // readers beyond which lock contention grows
  int lmdb_max_readers = 64;       // paper: "does not scale for more than 64"
};

/// Whole-cluster description.
struct ClusterSpec {
  std::string name;
  int nodes = 1;
  int gpus_per_node = 1;

  GpuSpec gpu;
  LinkSpec pcie{10.0, 10 * util::kUs};       // GPU <-> host staging copy
  LinkSpec pcie_p2p{8.0, 12 * util::kUs};    // GPU <-> GPU via PCIe switch (IPC)
  LinkSpec ib{6.5, 2 * util::kUs};           // inter-node, per HCA direction
  LinkSpec host_mem{24.0, 1 * util::kUs};    // host <-> host staging memcpy

  // GPUDirect RDMA: NIC reads/writes GPU memory directly. On Kepler the
  // *read* direction through the PCIe root complex is the bottleneck.
  double gdr_read_gbs = 3.0;
  double gdr_write_gbs = 6.0;
  bool gdr_enabled = true;
  bool ipc_enabled = true;

  double cpu_reduce_gbs = 12.0;  // host-side summation payload throughput
  TimeNs mpi_overhead = 1 * util::kUs;  // per-message software overhead
  // Framework-level per-collective setup (request creation, launch storm,
  // synchronization), charged as coll_setup * log2(P) per collective call.
  TimeNs coll_setup = 50 * util::kUs;
  int pcie_concurrency = 2;  // concurrent intra-node transfers at full speed
  int ib_rails = 1;  // independent HCA rails per node: concurrent inter-node
                     // sends a node sustains at full `ib` bandwidth

  StorageSpec storage;

  int total_gpus() const noexcept { return nodes * gpus_per_node; }

  /// 12-node Cray CS-Storm (KESCH-like): 16 CUDA devices/node, FDR.
  static ClusterSpec cluster_a();
  /// 20-node conventional cluster: 2 CUDA devices/node, EDR.
  static ClusterSpec cluster_b();
  /// 64 nodes x 16 GPUs (1024 total), dual-rail EDR fat-tree — the dense
  /// many-GPU-per-node scale-out target for the 512-1024-rank sweeps.
  static ClusterSpec multi_rail_fat_tree();
  /// 128 nodes x 8 GPUs (1024 total), NVLink-class intra-node links behind a
  /// single EDR rail — fast inside the node, lean across nodes.
  static ClusterSpec nvlink_dense_node();
};

}  // namespace scaffe::net
