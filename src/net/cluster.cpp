#include "net/cluster.h"

namespace scaffe::net {

ClusterSpec ClusterSpec::cluster_a() {
  ClusterSpec spec;
  spec.name = "Cluster-A (CS-Storm, 12 nodes x 16 CUDA devices, FDR)";
  spec.nodes = 12;
  spec.gpus_per_node = 16;
  // Dense node: 8 K80 cards hang off PCIe switches; staging bandwidth is
  // shared, so the effective per-GPU PCIe throughput is lower than Cluster-B.
  spec.pcie = LinkSpec{9.0, 10 * util::kUs};
  spec.pcie_p2p = LinkSpec{8.0, 12 * util::kUs};
  // Connect-IB dual-port FDR: ~6.5 GB/s effective per direction.
  spec.ib = LinkSpec{6.5, 2 * util::kUs};
  spec.pcie_concurrency = 4;  // four PCIe switch domains per CS-Storm node
  return spec;
}

ClusterSpec ClusterSpec::cluster_b() {
  ClusterSpec spec;
  spec.name = "Cluster-B (20 nodes x 2 CUDA devices, EDR)";
  spec.nodes = 20;
  spec.gpus_per_node = 2;
  spec.pcie = LinkSpec{11.0, 9 * util::kUs};
  spec.pcie_p2p = LinkSpec{9.5, 11 * util::kUs};
  // EDR: ~12 GB/s effective.
  spec.ib = LinkSpec{12.0, 1 * util::kUs};
  return spec;
}

}  // namespace scaffe::net
