#include "net/cluster.h"

namespace scaffe::net {

ClusterSpec ClusterSpec::cluster_a() {
  ClusterSpec spec;
  spec.name = "Cluster-A (CS-Storm, 12 nodes x 16 CUDA devices, FDR)";
  spec.nodes = 12;
  spec.gpus_per_node = 16;
  // Dense node: 8 K80 cards hang off PCIe switches; staging bandwidth is
  // shared, so the effective per-GPU PCIe throughput is lower than Cluster-B.
  spec.pcie = LinkSpec{9.0, 10 * util::kUs};
  spec.pcie_p2p = LinkSpec{8.0, 12 * util::kUs};
  // Connect-IB dual-port FDR: ~6.5 GB/s effective per direction.
  spec.ib = LinkSpec{6.5, 2 * util::kUs};
  spec.pcie_concurrency = 4;  // four PCIe switch domains per CS-Storm node
  return spec;
}

ClusterSpec ClusterSpec::cluster_b() {
  ClusterSpec spec;
  spec.name = "Cluster-B (20 nodes x 2 CUDA devices, EDR)";
  spec.nodes = 20;
  spec.gpus_per_node = 2;
  spec.pcie = LinkSpec{11.0, 9 * util::kUs};
  spec.pcie_p2p = LinkSpec{9.5, 11 * util::kUs};
  // EDR: ~12 GB/s effective.
  spec.ib = LinkSpec{12.0, 1 * util::kUs};
  return spec;
}

ClusterSpec ClusterSpec::multi_rail_fat_tree() {
  ClusterSpec spec;
  spec.name = "Fat-Tree (64 nodes x 16 GPUs, dual-rail EDR)";
  spec.nodes = 64;
  spec.gpus_per_node = 16;
  spec.pcie = LinkSpec{12.0, 8 * util::kUs};
  spec.pcie_p2p = LinkSpec{10.0, 10 * util::kUs};
  // Two EDR rails per node, each ~12 GB/s effective; the fat-tree keeps
  // inter-node paths non-blocking so the rails, not the fabric, are the cap.
  spec.ib = LinkSpec{12.0, 1500};
  spec.ib_rails = 2;
  spec.gdr_read_gbs = 8.0;
  spec.gdr_write_gbs = 10.0;
  spec.pcie_concurrency = 4;
  return spec;
}

ClusterSpec ClusterSpec::nvlink_dense_node() {
  ClusterSpec spec;
  spec.name = "NVLink-dense (128 nodes x 8 GPUs, NVLink + EDR)";
  spec.nodes = 128;
  spec.gpus_per_node = 8;
  spec.pcie = LinkSpec{12.0, 6 * util::kUs};
  // NVLink-class peer links: an order of magnitude over PCIe P2P, and cheap
  // enough per message that intra-node hops are nearly free next to IB.
  spec.pcie_p2p = LinkSpec{40.0, 3 * util::kUs};
  spec.ib = LinkSpec{12.0, 1500};
  spec.gdr_read_gbs = 10.0;
  spec.gdr_write_gbs = 10.0;
  spec.pcie_concurrency = 8;
  return spec;
}

}  // namespace scaffe::net
