#include "net/cost_model.h"

#include <algorithm>

namespace scaffe::net {

namespace {
constexpr double kPipelineEfficiency = 0.85;

TimeNs bytes_over_bw(std::size_t bytes, double gbs) noexcept {
  return static_cast<TimeNs>(static_cast<double>(bytes) / (gbs * 1e9) * 1e9);
}
}  // namespace

const char* staging_name(Staging staging) noexcept {
  switch (staging) {
    case Staging::Gdr: return "GDR";
    case Staging::HostPipelined: return "HostPipelined";
    case Staging::HostSync: return "HostSync";
  }
  return "?";
}

double CostModel::effective_bw_gbs(Path path, Staging staging) const noexcept {
  switch (path) {
    case Path::SameGpu:
      return spec_.gpu.mem_bw_gbs;  // device-local copy
    case Path::IntraNode:
      switch (staging) {
        case Staging::Gdr:
          if (spec_.ipc_enabled) return spec_.pcie_p2p.bw_gbs;
          [[fallthrough]];
        case Staging::HostPipelined:
          // D2H then H2D over the same-class link, chunk-pipelined.
          return spec_.pcie.bw_gbs * kPipelineEfficiency;
        case Staging::HostSync:
          // Two sequential full-buffer copies.
          return spec_.pcie.bw_gbs / 2.0;
      }
      break;
    case Path::InterNode:
      switch (staging) {
        case Staging::Gdr: {
          if (!spec_.gdr_enabled) return effective_bw_gbs(path, Staging::HostPipelined);
          // Sender-side GDR read is the Kepler bottleneck.
          const double gdr = std::min(spec_.gdr_read_gbs, spec_.gdr_write_gbs);
          return std::min(gdr, spec_.ib.bw_gbs);
        }
        case Staging::HostPipelined:
          return std::min(spec_.pcie.bw_gbs, spec_.ib.bw_gbs) * kPipelineEfficiency;
        case Staging::HostSync: {
          // Store-and-forward D2H + wire + H2D: harmonic combination.
          const double inv = 1.0 / spec_.pcie.bw_gbs + 1.0 / spec_.ib.bw_gbs +
                             1.0 / spec_.pcie.bw_gbs;
          return 1.0 / inv;
        }
      }
      break;
  }
  return 1.0;
}

TimeNs CostModel::sender_busy(std::size_t bytes, Path path, Staging staging) const noexcept {
  return spec_.mpi_overhead + bytes_over_bw(bytes, effective_bw_gbs(path, staging));
}

TimeNs CostModel::delivery_latency(Path path, Staging staging) const noexcept {
  switch (path) {
    case Path::SameGpu:
      return 0;
    case Path::IntraNode:
      switch (staging) {
        case Staging::Gdr: return spec_.ipc_enabled ? spec_.pcie_p2p.latency
                                                    : 2 * spec_.pcie.latency;
        case Staging::HostPipelined: return 2 * spec_.pcie.latency;
        case Staging::HostSync: return 2 * spec_.pcie.latency;
      }
      break;
    case Path::InterNode:
      switch (staging) {
        case Staging::Gdr: return spec_.ib.latency;
        case Staging::HostPipelined: return spec_.ib.latency + 2 * spec_.pcie.latency;
        case Staging::HostSync: return spec_.ib.latency + 2 * spec_.pcie.latency;
      }
      break;
  }
  return 0;
}

TimeNs CostModel::reduce(std::size_t bytes, ExecSpace space) const noexcept {
  switch (space) {
    case ExecSpace::Gpu:
      return spec_.gpu.kernel_launch + bytes_over_bw(bytes, spec_.gpu.reduce_payload_gbs);
    case ExecSpace::Host:
      return bytes_over_bw(bytes, spec_.cpu_reduce_gbs);
  }
  return 0;
}

TimeNs CostModel::gpu_compute(double flops) const noexcept {
  return spec_.gpu.kernel_launch +
         static_cast<TimeNs>(flops / spec_.gpu.sustained_flops() * 1e9);
}

TimeNs CostModel::gpu_compute(double flops, int batch) const noexcept {
  return spec_.gpu.kernel_launch +
         static_cast<TimeNs>(flops / spec_.gpu.sustained_flops(batch) * 1e9);
}

TimeNs CostModel::collective_setup(int nranks) const noexcept {
  int levels = 0;
  for (int p = 1; p < nranks; p <<= 1) ++levels;
  return spec_.coll_setup * levels;
}

}  // namespace scaffe::net
