// Analytic link/kernel cost model shared by the DES executors.
//
// The model is LogGP-flavoured: a message occupies its sender for
// `sender_busy = o + bytes/BW_eff` and arrives at the receiver
// `delivery_latency` after injection completes. BW_eff depends on the path
// (intra-node PCIe P2P vs inter-node InfiniBand) and on the *staging policy*:
//
//  - Gdr:           NIC reads/writes GPU memory directly (GPUDirect RDMA) or
//                   CUDA IPC inside a node. Low latency; on Kepler the GDR
//                   read direction caps inter-node bandwidth (~3 GB/s).
//  - HostPipelined: chunked D2H | wire | H2D pipeline (the MVAPICH2-GDR large
//                   message path); effective bandwidth = min(hop) * eff.
//  - HostSync:      full-buffer synchronous staging at every hop (the
//                   OpenMPI 1.10 GPU path); times add up store-and-forward.
#pragma once

#include <cstddef>
#include <utility>

#include "net/cluster.h"
#include "net/topology.h"

namespace scaffe::net {

enum class Staging { Gdr, HostPipelined, HostSync };

enum class ExecSpace { Gpu, Host };

const char* staging_name(Staging staging) noexcept;

class CostModel {
 public:
  explicit CostModel(ClusterSpec spec) : spec_(std::move(spec)) {}

  const ClusterSpec& spec() const noexcept { return spec_; }

  /// Effective payload bandwidth (GB/s) for a path under a staging policy.
  double effective_bw_gbs(Path path, Staging staging) const noexcept;

  /// Time the sender is occupied injecting `bytes` (overhead + serialization).
  TimeNs sender_busy(std::size_t bytes, Path path, Staging staging) const noexcept;

  /// Additional time after injection until the message is visible remotely.
  TimeNs delivery_latency(Path path, Staging staging) const noexcept;

  /// Full point-to-point time for one message.
  TimeNs msg_time(std::size_t bytes, Path path, Staging staging) const noexcept {
    return sender_busy(bytes, path, staging) + delivery_latency(path, staging);
  }

  /// Local `a += b` over `bytes` of float payload (includes kernel launch for
  /// the GPU space).
  TimeNs reduce(std::size_t bytes, ExecSpace space) const noexcept;

  /// Explicit staging copies.
  TimeNs d2h(std::size_t bytes) const noexcept { return spec_.pcie.xfer(bytes); }
  TimeNs h2d(std::size_t bytes) const noexcept { return spec_.pcie.xfer(bytes); }

  TimeNs kernel_launch() const noexcept { return spec_.gpu.kernel_launch; }

  /// Compute time for `flops` of dense math on one GPU.
  TimeNs gpu_compute(double flops) const noexcept;

  /// Same, at a per-GPU mini-batch (applies the batch-saturation curve).
  TimeNs gpu_compute(double flops, int batch) const noexcept;

  /// Framework-level setup overhead for one collective over `nranks`.
  TimeNs collective_setup(int nranks) const noexcept;

 private:
  ClusterSpec spec_;
};

}  // namespace scaffe::net
