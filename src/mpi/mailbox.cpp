// Mailbox: indexed matching, posted-receive rendezvous, pooled eager path.
// See the invariants in world.h and DESIGN.md "Transport protocol".
#include <algorithm>
#include <cstdint>
#include <utility>

#include "gpu/kernels.h"
#include "mpi/world.h"
#include "util/bytes.h"

namespace scaffe::mpi {

namespace {

// Fallback tuning for a Mailbox constructed outside a World (unit tests).
const TransportConfig& default_transport() {
  static TransportConfig config;
  return config;
}

std::span<const float> float_view(std::span<const std::byte> data) {
  return {reinterpret_cast<const float*>(data.data()), data.size() / sizeof(float)};
}

bool float_aligned(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(float) == 0;
}

}  // namespace

std::size_t TransportConfig::default_eager_limit() {
  const char* env = std::getenv("SCAFFE_EAGER_LIMIT");
  if (env == nullptr) return 64 * util::kKiB;
  const std::string text(env);
  // "auto" resolves after calibration (see mpi::resolve_auto_eager_limit);
  // until then the conventional default keeps early messages sane.
  if (text == "auto") return 64 * util::kKiB;
  if (text == "0") return 0;  // pin everything to the rendezvous path
  const std::size_t parsed = util::parse_bytes(text);
  if (parsed == 0) {
    throw ConfigError("SCAFFE_EAGER_LIMIT", text,
                      "is not a byte size (expected e.g. 64K, 1M, 0, or auto)");
  }
  return std::min(parsed, kMaxEagerLimit);
}

bool TransportConfig::default_eager_auto() {
  const char* env = std::getenv("SCAFFE_EAGER_LIMIT");
  return env != nullptr && std::string(env) == "auto";
}

bool TransportConfig::default_zero_copy() {
  const char* env = std::getenv("SCAFFE_TRANSPORT");
  return env == nullptr || std::string(env) != "legacy";
}

const TransportConfig& Mailbox::transport() const noexcept {
  return transport_ != nullptr ? *transport_ : default_transport();
}

// --- send side ---------------------------------------------------------------

bool Mailbox::apply_fault(int src, int tag) {
  auto& injector = util::FaultInjector::instance();
  if (!injector.active()) return false;
  const util::MessageFault fault = injector.on_message(src, owner_rank_, tag);
  if (fault.delay.count() > 0) std::this_thread::sleep_for(fault.delay);
  return fault.drop;
}

bool Mailbox::claim_posted(const ExactKey& key, std::span<const std::byte> data,
                           std::chrono::microseconds max_wait) {
  Waiter* target = nullptr;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() + max_wait;
    for (;;) {
      if (aborted_now()) return false;
      // Non-overtaking: never claim past queued mail of the same key (e.g. a
      // size-mismatched envelope still waiting to be diagnosed). Queued mail
      // for this key can only have come from this sender, so it cannot
      // appear while we linger below.
      auto qit = queues_.find(key);
      if (qit != queues_.end() && !qit->second.empty()) return false;
      auto wit = waiters_.find(key);
      if (wit != waiters_.end() && !wit->second.empty()) {
        for (Waiter* waiter : wit->second) {
          if (waiter->taken || waiter->kind == Waiter::Kind::Probe) continue;
          if (waiter->bytes != data.size()) continue;
          if (waiter->kind == Waiter::Kind::Reduce &&
              (data.size() % sizeof(float) != 0 || !float_aligned(data.data()))) {
            continue;  // fall back to the materialized path
          }
          target = waiter;
          break;
        }
        // A receiver is already here but not claimable (Probe wanting a
        // payload, or a size mismatch to diagnose): enqueue for it now.
        if (target == nullptr) return false;
        break;
      }
      // Any-source receivers consume from the queue, never from claims.
      auto awit = any_waiters_.find(AnyKey{key.context, key.generation, key.tag});
      if (awit != any_waiters_.end() && !awit->second.empty()) return false;
      // Rendezvous linger: block (bounded) until a matching receive is
      // posted. Blocking here also yields the core to the receiver on
      // oversubscribed machines, which is what converts a near-miss into a
      // single-copy claim.
      if (max_wait.count() == 0 || std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
      posted_cv_.wait_until(lock, deadline);
    }
    target->taken = true;
  }
  // Fill outside the mailbox lock: this is the single sender→destination
  // copy (or fused reduce) of the rendezvous path, potentially hundreds of
  // megabytes. The receiver cannot abandon a taken waiter, so the
  // destination stays valid until `done` is published below.
  if (target->kind == Waiter::Kind::Copy) {
    if (!data.empty()) std::memcpy(target->dst, data.data(), data.size());
  } else {
    gpu::accumulate(float_view(data), {target->acc, data.size() / sizeof(float)});
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    target->done = true;
    target->cv.notify_one();
  }
  return true;
}

Payload Mailbox::materialize(std::span<const std::byte> data) const {
  const TransportConfig& config = transport();
  if (!config.pooled_eager.load(std::memory_order_relaxed)) {
    return Payload::copy_heap(data);  // legacy: fresh allocation per message
  }
  if (data.size() <= config.eager_limit.load(std::memory_order_relaxed)) {
    return Payload::copy_pooled(util::BufferPool::instance(), data);
  }
  return Payload::view(Payload::make_shared_copy(data), data.size());
}

void Mailbox::enqueue_payload(const ExactKey& key, Payload payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  Envelope envelope;
  envelope.context = key.context;
  envelope.generation = key.generation;
  envelope.src = key.src;
  envelope.tag = key.tag;
  envelope.payload = std::move(payload);
  envelope.seq = next_seq_++;
  const AnyKey akey{key.context, key.generation, key.tag};
  if (any_interest_.contains(akey)) any_order_[akey].emplace_back(envelope.seq, key.src);
  queues_[key].push_back(std::move(envelope));
  // Targeted wakeups: only receivers whose predicate matches this message.
  auto wit = waiters_.find(key);
  if (wit != waiters_.end()) {
    for (Waiter* waiter : wit->second) waiter->cv.notify_one();
  }
  auto awit = any_waiters_.find(akey);
  if (awit != any_waiters_.end()) {
    for (Waiter* waiter : awit->second) waiter->cv.notify_one();
  }
}

bool Mailbox::deliver_direct(ContextId context, Generation generation, int src, int tag,
                             std::span<const std::byte> data) {
  if (apply_fault(src, tag)) return true;
  const TransportConfig& config = transport();
  if (!config.zero_copy.load(std::memory_order_relaxed)) return false;
  const ExactKey key{context, generation, src, tag};
  // Above the eager limit, linger for the receiver to post — bounded by a
  // few times what the fallback staging copy itself would cost (~2.5 GB/s
  // pessimistic), so a miss never doubles the message's wall time and a
  // symmetric exchange (both sides sending) cannot deadlock.
  std::chrono::microseconds wait{0};
  if (data.size() > config.eager_limit.load(std::memory_order_relaxed)) {
    wait = std::chrono::microseconds(data.size() / 2500);
  }
  return claim_posted(key, data, wait);
}

void Mailbox::deliver(ContextId context, Generation generation, int src, int tag,
                      std::span<const std::byte> data) {
  if (deliver_direct(context, generation, src, tag, data)) return;
  enqueue_payload(ExactKey{context, generation, src, tag}, materialize(data));
}

void Mailbox::enqueue_shared(ContextId context, Generation generation, int src, int tag,
                             std::shared_ptr<const std::byte[]> data, std::size_t size) {
  enqueue_payload(ExactKey{context, generation, src, tag},
                  Payload::view(std::move(data), size));
}

void Mailbox::push(Envelope envelope) {
  if (apply_fault(envelope.src, envelope.tag)) return;
  const ExactKey key{envelope.context, envelope.generation, envelope.src, envelope.tag};
  if (transport().zero_copy.load(std::memory_order_relaxed) &&
      claim_posted(key, envelope.payload.bytes(), std::chrono::microseconds{0})) {
    return;  // payload dies here; pooled storage recycles
  }
  enqueue_payload(key, std::move(envelope.payload));
}

// --- queue bookkeeping -------------------------------------------------------

bool Mailbox::pop_exact_locked(const ExactKey& key, Envelope& out) {
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return true;
}

void Mailbox::ensure_any_index_locked(const AnyKey& key) {
  if (!any_interest_.insert(key).second) return;
  // First any-source interest in this key: rebuild arrival order from the
  // envelopes already queued (seq stamps give the global arrival order).
  std::vector<std::pair<std::uint64_t, int>> entries;
  for (const auto& [qkey, queue] : queues_) {
    if (qkey.context != key.context || qkey.generation != key.generation ||
        qkey.tag != key.tag) {
      continue;
    }
    for (const Envelope& envelope : queue) entries.emplace_back(envelope.seq, qkey.src);
  }
  std::sort(entries.begin(), entries.end());
  auto& order = any_order_[key];
  order.assign(entries.begin(), entries.end());
}

bool Mailbox::pop_any_locked(const AnyKey& key, Envelope& out) {
  auto oit = any_order_.find(key);
  if (oit == any_order_.end()) return false;
  auto& order = oit->second;
  while (!order.empty()) {
    const auto [seq, src] = order.front();
    order.pop_front();
    auto qit = queues_.find(ExactKey{key.context, key.generation, src, key.tag});
    if (qit == queues_.end() || qit->second.empty() ||
        qit->second.front().seq != seq) {
      continue;  // consumed by an exact receive: stale index entry
    }
    out = std::move(qit->second.front());
    qit->second.pop_front();
    if (qit->second.empty()) queues_.erase(qit);
    return true;
  }
  return false;
}

void Mailbox::unregister_waiter(std::vector<Waiter*>& list, Waiter* waiter) {
  list.erase(std::remove(list.begin(), list.end(), waiter), list.end());
}

// --- receive side ------------------------------------------------------------

Payload Mailbox::recv(ContextId context, Generation generation, int src, int tag,
                      int* out_src) {
  const std::chrono::milliseconds timeout = current_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const bool any = src == kAnySource;
  const ExactKey key{context, generation, src, tag};
  const AnyKey akey{context, generation, tag};

  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_now()) throw AbortError();
  if (any) ensure_any_index_locked(akey);
  Envelope envelope;
  auto try_pop = [&] {
    return any ? pop_any_locked(akey, envelope) : pop_exact_locked(key, envelope);
  };
  if (try_pop()) {
    if (out_src != nullptr) *out_src = envelope.src;
    return std::move(envelope.payload);
  }
  Waiter waiter(Waiter::Kind::Probe);
  std::vector<Waiter*>& list = any ? any_waiters_[akey] : waiters_[key];
  register_waiter_locked(list, &waiter);
  for (;;) {
    bool timed_out = false;
    if (timeout.count() > 0) {
      timed_out = waiter.cv.wait_until(lock, deadline) == std::cv_status::timeout;
    } else {
      waiter.cv.wait(lock);
    }
    if (aborted_now()) {
      unregister_waiter(list, &waiter);
      throw AbortError();
    }
    if (try_pop()) {
      unregister_waiter(list, &waiter);
      if (out_src != nullptr) *out_src = envelope.src;
      return std::move(envelope.payload);
    }
    if (timed_out) {
      unregister_waiter(list, &waiter);
      throw TimeoutError(context, src, tag, timeout);
    }
  }
}

void Mailbox::recv_into(ContextId context, Generation generation, int src, int tag,
                        std::span<std::byte> dst) {
  const std::chrono::milliseconds timeout = current_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const ExactKey key{context, generation, src, tag};

  const auto finish_from_queue = [&](Envelope&& envelope) {
    // Copy-out happens outside the mailbox lock; the envelope owns its
    // payload exclusively (or shares immutable storage).
    if (envelope.payload.size() != dst.size()) {
      throw TransportError(context, src, tag, dst.size(), envelope.payload.size());
    }
    envelope.payload.copy_to(dst);
  };

  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_now()) throw AbortError();
  Envelope envelope;
  if (pop_exact_locked(key, envelope)) {
    lock.unlock();
    finish_from_queue(std::move(envelope));
    return;
  }
  Waiter waiter(Waiter::Kind::Copy);
  waiter.dst = dst.data();
  waiter.bytes = dst.size();
  std::vector<Waiter*>& list = waiters_[key];
  register_waiter_locked(list, &waiter);
  posted_cv_.notify_all();  // wake senders lingering for a posted receive
  for (;;) {
    bool timed_out = false;
    if (timeout.count() > 0) {
      timed_out = waiter.cv.wait_until(lock, deadline) == std::cv_status::timeout;
    } else {
      waiter.cv.wait(lock);
    }
    if (waiter.done) {
      unregister_waiter(list, &waiter);
      return;
    }
    if (waiter.taken) continue;  // fill in flight; completion is imminent
    if (aborted_now()) {
      unregister_waiter(list, &waiter);
      throw AbortError();
    }
    if (pop_exact_locked(key, envelope)) {
      unregister_waiter(list, &waiter);
      lock.unlock();
      finish_from_queue(std::move(envelope));
      return;
    }
    if (timed_out) {
      unregister_waiter(list, &waiter);
      throw TimeoutError(context, src, tag, timeout);
    }
  }
}

void Mailbox::recv_reduce(ContextId context, Generation generation, int src, int tag,
                          std::span<float> acc) {
  const std::chrono::milliseconds timeout = current_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const ExactKey key{context, generation, src, tag};

  const auto reduce_from_queue = [&](Envelope&& envelope) {
    if (envelope.payload.size() != acc.size_bytes()) {
      throw TransportError(context, src, tag, acc.size_bytes(), envelope.payload.size());
    }
    // Fused reduce straight out of the matched payload — no staging buffer.
    gpu::accumulate(float_view(envelope.payload.bytes()), acc);
  };

  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_now()) throw AbortError();
  Envelope envelope;
  if (pop_exact_locked(key, envelope)) {
    lock.unlock();
    reduce_from_queue(std::move(envelope));
    return;
  }
  Waiter waiter(Waiter::Kind::Reduce);
  waiter.acc = acc.data();
  waiter.bytes = acc.size_bytes();
  std::vector<Waiter*>& list = waiters_[key];
  register_waiter_locked(list, &waiter);
  posted_cv_.notify_all();  // wake senders lingering for a posted receive
  for (;;) {
    bool timed_out = false;
    if (timeout.count() > 0) {
      timed_out = waiter.cv.wait_until(lock, deadline) == std::cv_status::timeout;
    } else {
      waiter.cv.wait(lock);
    }
    if (waiter.done) {
      unregister_waiter(list, &waiter);
      return;
    }
    if (waiter.taken) continue;
    if (aborted_now()) {
      unregister_waiter(list, &waiter);
      throw AbortError();
    }
    if (pop_exact_locked(key, envelope)) {
      unregister_waiter(list, &waiter);
      lock.unlock();
      reduce_from_queue(std::move(envelope));
      return;
    }
    if (timed_out) {
      unregister_waiter(list, &waiter);
      throw TimeoutError(context, src, tag, timeout);
    }
  }
}

// --- pre-posted receives (Comm::irecv) ---------------------------------------

std::unique_ptr<Mailbox::PostedRecv> Mailbox::post_recv(ContextId context,
                                                        Generation generation, int src,
                                                        int tag, std::span<std::byte> dst) {
  std::unique_ptr<PostedRecv> posted(
      new PostedRecv(*this, context, generation, src, tag, dst));
  std::lock_guard<std::mutex> lock(mutex_);
  // Registered even while queued mail exists: claim_posted refuses to claim
  // past queued mail (non-overtaking), and posted_test/posted_wait drain the
  // queue before relying on a claim.
  register_waiter_locked(waiters_[posted->key_], &posted->waiter_);
  posted_cv_.notify_all();  // wake senders lingering for a posted receive
  return posted;
}

void Mailbox::abandon_posted(PostedRecv& posted) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!posted.registered_) return;
  // A claimed waiter cannot be abandoned: the sender is filling dst_ right
  // now. Wait for `done`, then deregister.
  while (posted.waiter_.taken && !posted.waiter_.done) posted.waiter_.cv.wait(lock);
  auto it = waiters_.find(posted.key_);
  if (it != waiters_.end()) unregister_waiter(it->second, &posted.waiter_);
  posted.registered_ = false;
}

bool Mailbox::posted_test(PostedRecv& posted) {
  Envelope envelope;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (posted.finished_) return true;
    auto deregister = [&] {
      auto it = waiters_.find(posted.key_);
      if (it != waiters_.end()) unregister_waiter(it->second, &posted.waiter_);
      posted.registered_ = false;
    };
    if (posted.waiter_.done) {
      deregister();
      posted.finished_ = true;
      return true;
    }
    if (posted.waiter_.taken) return false;  // fill in flight; imminent
    if (aborted_now()) {
      deregister();
      posted.finished_ = true;
      throw AbortError();
    }
    if (!pop_exact_locked(posted.key_, envelope)) return false;
    deregister();
    posted.finished_ = true;
  }
  // Copy-out (and the mismatch diagnosis) outside the mailbox lock.
  if (envelope.payload.size() != posted.dst_.size()) {
    throw TransportError(posted.key_.context, posted.key_.src, posted.key_.tag,
                         posted.dst_.size(), envelope.payload.size());
  }
  envelope.payload.copy_to(posted.dst_);
  return true;
}

void Mailbox::posted_wait(PostedRecv& posted) {
  const std::chrono::milliseconds timeout = current_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Envelope envelope;
  bool from_queue = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (posted.finished_) return;
    auto deregister = [&] {
      auto it = waiters_.find(posted.key_);
      if (it != waiters_.end()) unregister_waiter(it->second, &posted.waiter_);
      posted.registered_ = false;
    };
    for (;;) {
      if (posted.waiter_.done) {
        deregister();
        posted.finished_ = true;
        return;
      }
      if (!posted.waiter_.taken) {
        if (aborted_now()) {
          deregister();
          posted.finished_ = true;
          throw AbortError();
        }
        if (pop_exact_locked(posted.key_, envelope)) {
          deregister();
          posted.finished_ = true;
          from_queue = true;
          break;
        }
      }
      bool timed_out = false;
      if (timeout.count() > 0) {
        timed_out = posted.waiter_.cv.wait_until(lock, deadline) == std::cv_status::timeout;
      } else {
        posted.waiter_.cv.wait(lock);
      }
      if (timed_out && !posted.waiter_.taken && !posted.waiter_.done) {
        deregister();
        posted.finished_ = true;
        throw TimeoutError(posted.key_.context, posted.key_.src, posted.key_.tag, timeout);
      }
    }
  }
  if (from_queue) {
    if (envelope.payload.size() != posted.dst_.size()) {
      throw TransportError(posted.key_.context, posted.key_.src, posted.key_.tag,
                           posted.dst_.size(), envelope.payload.size());
    }
    envelope.payload.copy_to(posted.dst_);
  }
}

bool Mailbox::try_recv(ContextId context, Generation generation, int src, int tag,
                       Payload& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (aborted_now()) throw AbortError();
  Envelope envelope;
  if (!pop_exact_locked(ExactKey{context, generation, src, tag}, envelope)) return false;
  payload = std::move(envelope.payload);
  return true;
}

void Mailbox::interrupt() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, list] : waiters_) {
    for (Waiter* waiter : list) waiter->cv.notify_all();
  }
  for (auto& [key, list] : any_waiters_) {
    for (Waiter* waiter : list) waiter->cv.notify_all();
  }
  posted_cv_.notify_all();  // lingering senders re-check the abort flag
}

std::size_t Mailbox::purge_stale(Generation current) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (it->first.generation != current) {
      dropped += it->second.size();
      it = queues_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = any_order_.begin(); it != any_order_.end();) {
    it = it->first.generation != current ? any_order_.erase(it) : std::next(it);
  }
  for (auto it = any_interest_.begin(); it != any_interest_.end();) {
    it = it->generation != current ? any_interest_.erase(it) : std::next(it);
  }
  return dropped;
}

}  // namespace scaffe::mpi
