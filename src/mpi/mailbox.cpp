// Mailbox: indexed matching, posted-receive rendezvous, pooled eager path,
// and credit-based flow control (bounded queue occupancy, RTS/CTS admission).
// See the invariants in world.h and DESIGN.md "Transport protocol".
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <thread>
#include <utility>

#include "gpu/kernels.h"
#include "mpi/knobs.h"
#include "mpi/world.h"
#include "util/bytes.h"
#include "util/memory_registry.h"

namespace scaffe::mpi {

namespace {

// Fallback tuning for a Mailbox constructed outside a World (unit tests).
const TransportConfig& default_transport() {
  static TransportConfig config;
  return config;
}

std::span<const float> float_view(std::span<const std::byte> data) {
  return {reinterpret_cast<const float*>(data.data()), data.size() / sizeof(float)};
}

bool float_aligned(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(float) == 0;
}

// Slow-receiver fault: a budget-counted stall before this rank's blocking
// receive touches the mailbox. Builds queue pressure without ever changing
// matched values.
void apply_recv_stall(int rank) {
  auto& injector = util::FaultInjector::instance();
  if (!injector.active()) return;
  const std::chrono::microseconds stall = injector.on_recv_enter(rank);
  if (stall.count() > 0) std::this_thread::sleep_for(stall);
}

// Delayed-CTS fault: how long this rank's posted-receive notification is
// held back (zero when none scheduled).
std::chrono::microseconds cts_post_delay(int rank) {
  auto& injector = util::FaultInjector::instance();
  if (!injector.active()) return std::chrono::microseconds{0};
  return injector.on_cts_post(rank);
}

// Integrity check for a queued envelope (SCAFFE_MSG_CRC): every path that
// consumes a queued payload calls this before handing bytes to the
// application. Claims never materialize an envelope; their verification
// happens inside fill_claimed instead (the Waiter carries the verdict).
void verify_payload_crc(const Envelope& envelope) {
  if (!envelope.has_crc) return;
  const std::uint32_t actual = util::crc32(envelope.payload.bytes());
  if (actual != envelope.crc) {
    throw IntegrityError(envelope.context, envelope.src, envelope.tag,
                         envelope.generation, envelope.crc, actual,
                         envelope.payload.size());
  }
}

}  // namespace

std::size_t TransportConfig::default_eager_limit() {
  const char* env = std::getenv("SCAFFE_EAGER_LIMIT");
  if (env == nullptr) return 64 * util::kKiB;
  const std::string text(env);
  // "auto" resolves after calibration (see mpi::resolve_auto_eager_limit);
  // until then the conventional default keeps early messages sane.
  if (text == "auto") return 64 * util::kKiB;
  if (text == "0") return 0;  // pin everything to the rendezvous path
  return std::min(
      parse_bytes_knob("SCAFFE_EAGER_LIMIT", text, "(expected e.g. 64K, 1M, 0, or auto)"),
      kMaxEagerLimit);
}

bool TransportConfig::default_eager_auto() {
  const char* env = std::getenv("SCAFFE_EAGER_LIMIT");
  return env != nullptr && std::string(env) == "auto";
}

bool TransportConfig::default_zero_copy() {
  const char* env = std::getenv("SCAFFE_TRANSPORT");
  return env == nullptr || std::string(env) != "legacy";
}

std::size_t TransportConfig::default_mailbox_bytes() {
  const char* env = std::getenv("SCAFFE_MAILBOX_BYTES");
  if (env == nullptr) return kDefaultMailboxBytes;
  const std::string text(env);
  if (text == "0" || text == "off" || text == "unlimited") return 0;
  return parse_bytes_knob("SCAFFE_MAILBOX_BYTES", text,
                          "(expected e.g. 64M, 1G, 0, off, or unlimited)");
}

std::uint32_t TransportConfig::default_credit_backoff_us() {
  const char* env = std::getenv("SCAFFE_CREDIT_BACKOFF_US");
  if (env == nullptr) return 50;
  return std::max<std::uint32_t>(1, parse_count_knob("SCAFFE_CREDIT_BACKOFF_US", env));
}

std::uint32_t TransportConfig::default_credit_backoff_max_us() {
  const char* env = std::getenv("SCAFFE_CREDIT_BACKOFF_MAX_US");
  if (env == nullptr) return 2000;
  return std::max<std::uint32_t>(1, parse_count_knob("SCAFFE_CREDIT_BACKOFF_MAX_US", env));
}

bool TransportConfig::default_msg_crc() {
  const char* env = std::getenv("SCAFFE_MSG_CRC");
  if (env == nullptr) return false;
  const std::string text(env);
  if (text == "0" || text == "off") return false;
  if (text == "1" || text == "on") return true;
  throw ConfigError("SCAFFE_MSG_CRC", text, "(expected 0, 1, on, or off)");
}

const TransportConfig& Mailbox::transport() const noexcept {
  return transport_ != nullptr ? *transport_ : default_transport();
}

// --- credit accounting -------------------------------------------------------

std::size_t Mailbox::budget_bytes() const noexcept {
  return transport().mailbox_bytes.load(std::memory_order_relaxed);
}

bool Mailbox::credit_available_locked(std::size_t size) const noexcept {
  const std::size_t budget = budget_bytes();
  if (budget == 0) return true;  // flow control off
  const std::size_t occupancy = occupancy_.current();
  // Progress overdraft: an empty mailbox admits one message of any size, so
  // a message larger than the budget can never wedge the link. The hard
  // occupancy bound is therefore max(budget, largest single message).
  if (occupancy == 0) return true;
  return occupancy + size <= budget;
}

void Mailbox::release_queued_locked(std::size_t size) {
  if (size == 0) return;
  queued_bytes_ -= std::min(size, queued_bytes_);
  const std::size_t prev = occupancy_.current();
  occupancy_.sub(size);
  if (credit_waiters_ == 0) return;
  const std::size_t budget = budget_bytes();
  // Watermark-batched credit return: waking blocked senders on every pop
  // would chatter (notify, admit one message, block again). Instead credit
  // returns in batches — when the mailbox drains empty or occupancy crosses
  // the low watermark (budget/2). The senders' timed backoff re-checks are
  // the lost-wakeup backstop, bounding the extra latency by one backoff
  // slice.
  const std::size_t low = budget / 2;
  if (budget == 0 || occupancy_.current() == 0 ||
      (prev > low && occupancy_.current() <= low)) {
    sender_cv_.notify_all();
  }
}

FlowDiagnostics Mailbox::flow_snapshot_locked(ContextId context, Generation generation,
                                              int src, int tag) const {
  FlowDiagnostics diag;
  diag.queued_bytes = occupancy_.current();
  diag.budget_bytes = budget_bytes();
  diag.credit_bytes =
      diag.budget_bytes > diag.queued_bytes ? diag.budget_bytes - diag.queued_bytes : 0;
  diag.credit_waiters = credit_waiters_;
  for (const auto& [key, queue] : queues_) {
    if (key.context != context || key.generation != generation || key.tag != tag) continue;
    if (src != kAnySource && key.src != src) continue;
    for (const Envelope& envelope : queue) diag.key_queued_bytes += envelope.payload.size();
  }
  return diag;
}

std::chrono::microseconds Mailbox::backoff_slice(int src, unsigned attempt) const {
  const TransportConfig& config = transport();
  const std::uint64_t base =
      std::max<std::uint64_t>(1, config.credit_backoff_us.load(std::memory_order_relaxed));
  const std::uint64_t cap = std::max<std::uint64_t>(
      base, config.credit_backoff_max_us.load(std::memory_order_relaxed));
  std::uint64_t slice = std::min(base << std::min(attempt, 10u), cap);
  // Deterministic ±25% jitter per (link, attempt): decorrelates the retry
  // storm when many senders block on one hot mailbox at once.
  const std::uint64_t h = hash_mix(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(owner_rank_)) << 40) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 8) ^ attempt);
  slice = slice - slice / 4 + h % (slice / 2 + 1);
  return std::chrono::microseconds(static_cast<std::int64_t>(slice));
}

Mailbox::FlowStats Mailbox::flow_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FlowStats out = counters_;
  out.queued_bytes = queued_bytes_;
  out.reserved_bytes = reserved_bytes_;
  out.peak_occupancy_bytes = occupancy_.peak();
  return out;
}

void Mailbox::reset_flow_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_ = FlowStats{};
  occupancy_.reset_peak();
}

// --- send side ---------------------------------------------------------------

bool Mailbox::apply_fault(int src, int tag) {
  auto& injector = util::FaultInjector::instance();
  if (!injector.active()) return false;
  const util::MessageFault fault = injector.on_message(src, owner_rank_, tag);
  if (fault.delay.count() > 0) std::this_thread::sleep_for(fault.delay);
  return fault.drop;
}

Mailbox::Waiter* Mailbox::admit_send(const ExactKey& key, std::span<const std::byte> data,
                                     bool allow_claim,
                                     std::chrono::microseconds cts_linger) {
  using clock = std::chrono::steady_clock;
  const std::chrono::milliseconds timeout = current_timeout();
  const clock::time_point start = clock::now();
  const clock::time_point deadline = start + timeout;  // meaningful when timeout > 0
  const clock::time_point linger_deadline = start + cts_linger;
  auto& injector = util::FaultInjector::instance();

  std::unique_lock<std::mutex> lock(mutex_);
  // A nonzero linger means this is a rendezvous send: entering the admission
  // loop is the RTS — the descriptor (key + size) is this blocked frame.
  if (cts_linger.count() > 0) ++counters_.rts_handshakes;
  bool counted_wait = false;
  clock::time_point wait_start{};
  unsigned attempt = 0;
  const auto finish_wait = [&] {
    if (!counted_wait) return;
    --credit_waiters_;
    counters_.credit_wait_us += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() - wait_start)
            .count());
  };
  for (;;) {
    const bool aborted = aborted_now();
    bool cts_possible = false;
    if (allow_claim && !aborted) {
      // Non-overtaking: never claim past queued mail of the same key (e.g. a
      // size-mismatched envelope still waiting to be diagnosed). Queued mail
      // for this key can only have come from this sender, so it cannot
      // appear while we wait below. Any-source receivers consume from the
      // queue, never from claims.
      auto qit = queues_.find(key);
      const bool queued_same_key = qit != queues_.end() && !qit->second.empty();
      const auto awit = any_waiters_.find(AnyKey{key.context, key.generation, key.tag});
      const bool any_source_interest = awit != any_waiters_.end() && !awit->second.empty();
      if (!queued_same_key && !any_source_interest) {
        auto wit = waiters_.find(key);
        if (wit == waiters_.end() || wit->second.empty()) {
          cts_possible = true;  // no receiver here yet: a CTS may still arrive
        } else {
          for (Waiter* waiter : wit->second) {
            if (waiter->taken || waiter->kind == Waiter::Kind::Probe) continue;
            if (waiter->bytes != data.size()) continue;
            if (waiter->kind == Waiter::Kind::Reduce &&
                (data.size() % sizeof(float) != 0 || !float_aligned(data.data()))) {
              continue;  // fall back to the materialized path
            }
            waiter->taken = true;
            ++counters_.claimed_messages;
            finish_wait();
            return waiter;  // CTS satisfied: caller fills zero-copy
          }
          // Receivers are here but none claimable (a Probe wanting a
          // payload, or a size mismatch to diagnose): the queue is the only
          // path for this message.
        }
      }
    }
    // Credit check. Aborted worlds admit unconditionally: the mail is dead
    // anyway (purged at the next generation) and blocking would hang the
    // sender's unwind.
    bool have_credit = aborted || credit_available_locked(data.size());
    if (have_credit && !aborted && budget_bytes() > 0 && injector.active() &&
        injector.on_credit_check(owner_rank_)) {
      have_credit = false;  // injected credit starvation: one forced backoff round
    }
    if (have_credit) {
      const bool linger_more =
          cts_possible && cts_linger.count() > 0 && clock::now() < linger_deadline;
      if (!linger_more) {
        reserved_bytes_ += data.size();
        occupancy_.add(data.size());
        finish_wait();
        return nullptr;  // credit reserved: the caller must enqueue
      }
      // RTS linger: credit is free, but a receive may still be posted inside
      // the linger window — a zero-copy claim beats enqueue + copy-out.
      // Blocking here also yields the core to the receiver on oversubscribed
      // machines, which is what converts a near-miss into a claim.
      clock::time_point until = linger_deadline;
      if (timeout.count() > 0 && deadline < until) until = deadline;
      sender_cv_.wait_until(lock, until);
      continue;
    }
    // Credit exhausted: jittered exponential backoff bounded by the receive
    // deadline. The timed waits double as the lost-wakeup backstop for the
    // watermark-batched credit return.
    if (!counted_wait) {
      counted_wait = true;
      wait_start = clock::now();
      ++credit_waiters_;
      ++counters_.credit_waits;
    }
    if (timeout.count() > 0 && clock::now() >= deadline) {
      ++counters_.backpressure_timeouts;
      const FlowDiagnostics flow =
          flow_snapshot_locked(key.context, key.generation, key.src, key.tag);
      finish_wait();
      throw BackpressureError(key.context, key.src, owner_rank_, key.tag, data.size(),
                              timeout, flow, key.generation);
    }
    clock::time_point until = clock::now() + backoff_slice(key.src, attempt);
    if (timeout.count() > 0 && deadline < until) until = deadline;
    attempt = std::min(attempt + 1, 16u);
    sender_cv_.wait_until(lock, until);
  }
}

void Mailbox::fill_claimed(Waiter* target, int src, std::span<const std::byte> data) {
  // Fill outside the mailbox lock: this is the single sender→destination
  // copy (or fused reduce) of the rendezvous path, potentially hundreds of
  // megabytes. The receiver cannot abandon a taken waiter, so the
  // destination stays valid until `done` is published below.
  //
  // SCAFFE_MSG_CRC covers this path end to end: the stamp is taken from the
  // sender's buffer, and for a Copy the destination bytes are re-checksummed
  // after the fill, so a bit flipped during the transfer (modelled by the
  // corrupt_payload fault) is detected on the receiver side. The verdict
  // rides on the Waiter — the receiver's wait loop raises IntegrityError,
  // keeping the throw on the rank that owns the damaged destination.
  const bool check = transport().msg_crc.load(std::memory_order_relaxed);
  const std::uint32_t expected = check ? util::crc32(data) : 0;
  auto& injector = util::FaultInjector::instance();
  const bool corrupt =
      injector.active() && !data.empty() && injector.on_payload(src, owner_rank_);
  bool failed = false;
  std::uint32_t actual = expected;
  if (target->kind == Waiter::Kind::Copy) {
    if (!data.empty()) std::memcpy(target->dst, data.data(), data.size());
    if (corrupt) target->dst[data.size() / 2] ^= std::byte{0x5a};
    if (check && !data.empty()) {
      actual = util::crc32({target->dst, data.size()});
      failed = actual != expected;
    }
  } else if (corrupt) {
    // A reduce folds the payload into live state, so the (injected) bit flip
    // lands on a staged copy that is verified BEFORE accumulating — the
    // accumulator survives a rejected payload, exactly like the queue path.
    util::MemBlock staged = util::MemoryRegistry::instance().acquire(data.size());
    std::memcpy(staged.data(), data.data(), data.size());
    staged.data()[data.size() / 2] ^= std::byte{0x5a};
    if (check) {
      actual = util::crc32(staged.span());
      failed = actual != expected;
    }
    if (!failed) {
      gpu::accumulate(float_view(staged.span()), {target->acc, data.size() / sizeof(float)});
    }
  } else {
    // Fault-free reduce: the fused accumulate reads the sender's own buffer —
    // the very bytes the stamp was computed from, with no intermediate hop to
    // corrupt — so there is nothing further to verify.
    gpu::accumulate(float_view(data), {target->acc, data.size() / sizeof(float)});
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    target->integrity_failed = failed;
    target->expected_crc = expected;
    target->actual_crc = actual;
    target->done = true;
    target->cv.notify_one();
  }
}

Payload Mailbox::materialize(std::span<const std::byte> data) const {
  const TransportConfig& config = transport();
  if (!config.pooled_eager.load(std::memory_order_relaxed)) {
    return Payload::copy_heap(data);  // legacy: fresh allocation per message
  }
  if (data.size() <= config.eager_limit.load(std::memory_order_relaxed)) {
    return Payload::copy_pooled(util::MemoryRegistry::instance(), data);
  }
  return Payload::view(Payload::make_shared_copy(data), data.size());
}

bool Mailbox::stamp_crc(std::span<const std::byte> data, std::uint32_t& crc) const {
  // Every queued payload gets a stamp, eager and rendezvous alike; the
  // receive side verifies at each consumption point.
  const TransportConfig& config = transport();
  if (!config.msg_crc.load(std::memory_order_relaxed)) return false;
  crc = util::crc32(data);
  return true;
}

void Mailbox::apply_corruption(int src, Payload& payload) const {
  auto& injector = util::FaultInjector::instance();
  if (!injector.active()) return;
  // Only an exclusively owned materialized payload can be flipped in place;
  // shared rendezvous views (and the sender's own buffer) are never touched,
  // so a corrupted bcast cannot leak into sibling destinations.
  std::byte* raw = payload.data();
  if (raw == nullptr || payload.size() == 0) return;
  if (!injector.on_payload(src, owner_rank_)) return;
  raw[payload.size() / 2] ^= std::byte{0x5a};
}

void Mailbox::enqueue_payload(const ExactKey& key, Payload payload, std::uint32_t crc,
                              bool has_crc) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t size = payload.size();
  // Every enqueue arrives with `size` bytes reserved by admit_send; convert
  // the reservation into queued occupancy (the gauge total is unchanged).
  reserved_bytes_ -= std::min(size, reserved_bytes_);
  queued_bytes_ += size;
  ++counters_.enqueued_messages;
  Envelope envelope;
  envelope.context = key.context;
  envelope.generation = key.generation;
  envelope.src = key.src;
  envelope.tag = key.tag;
  envelope.payload = std::move(payload);
  envelope.crc = crc;
  envelope.has_crc = has_crc;
  envelope.seq = next_seq_++;
  const AnyKey akey{key.context, key.generation, key.tag};
  if (any_interest_.contains(akey)) any_order_[akey].emplace_back(envelope.seq, key.src);
  queues_[key].push_back(std::move(envelope));
  // Targeted wakeups: only receivers whose predicate matches this message.
  auto wit = waiters_.find(key);
  if (wit != waiters_.end()) {
    for (Waiter* waiter : wit->second) waiter->cv.notify_one();
  }
  auto awit = any_waiters_.find(akey);
  if (awit != any_waiters_.end()) {
    for (Waiter* waiter : awit->second) waiter->cv.notify_one();
  }
}

bool Mailbox::deliver_direct(ContextId context, Generation generation, int src, int tag,
                             std::span<const std::byte> data) {
  if (apply_fault(src, tag)) return true;
  const TransportConfig& config = transport();
  const bool zero_copy = config.zero_copy.load(std::memory_order_relaxed);
  const ExactKey key{context, generation, src, tag};
  // RTS linger: above the eager limit, prefer the zero-copy CTS — bounded by
  // a few times what the fallback staging copy itself would cost (~2.5 GB/s
  // pessimistic), so a miss never doubles the message's wall time and a
  // symmetric exchange (both sides sending) cannot deadlock on the linger.
  std::chrono::microseconds linger{0};
  if (zero_copy && data.size() > config.eager_limit.load(std::memory_order_relaxed)) {
    linger = std::chrono::microseconds(data.size() / 2500);
  }
  Waiter* claimed = admit_send(key, data, zero_copy, linger);
  if (claimed == nullptr) return false;  // credit reserved: the caller must enqueue
  fill_claimed(claimed, src, data);
  return true;
}

void Mailbox::deliver(ContextId context, Generation generation, int src, int tag,
                      std::span<const std::byte> data) {
  if (deliver_direct(context, generation, src, tag, data)) return;
  // The CRC is computed from the sender's buffer BEFORE the corruption fault
  // gets a chance to flip a byte of the materialized copy — so an injected
  // corruption is exactly what the stamp detects at receive time.
  std::uint32_t crc = 0;
  const bool has_crc = stamp_crc(data, crc);
  Payload payload = materialize(data);
  apply_corruption(src, payload);
  enqueue_payload(ExactKey{context, generation, src, tag}, std::move(payload), crc,
                  has_crc);
}

void Mailbox::deliver_oob(ContextId context, Generation generation, int src, int tag,
                          std::span<const std::byte> data) {
  const ExactKey key{context, generation, src, tag};
  // No apply_fault (heartbeats must not consume per-link fault ordinals), no
  // claim (a posted data receive on a colliding key must not be stolen), no
  // corruption fault (the health plane's own faults live in the monitor).
  Waiter* claimed = admit_send(key, data, /*allow_claim=*/false,
                               std::chrono::microseconds{0});
  (void)claimed;  // allow_claim=false: always nullptr, credit is reserved
  std::uint32_t crc = 0;
  const bool has_crc = stamp_crc(data, crc);
  enqueue_payload(key, materialize(data), crc, has_crc);
}

void Mailbox::enqueue_shared(ContextId context, Generation generation, int src, int tag,
                             std::shared_ptr<const std::byte[]> data, std::size_t size) {
  // Rendezvous broadcast fan-out: the shared buffer is immutable from here
  // on, so one stamp covers every destination it is enqueued to.
  std::uint32_t crc = 0;
  const bool has_crc = stamp_crc({data.get(), size}, crc);
  enqueue_payload(ExactKey{context, generation, src, tag},
                  Payload::view(std::move(data), size), crc, has_crc);
}

void Mailbox::push(Envelope envelope) {
  if (apply_fault(envelope.src, envelope.tag)) return;
  const ExactKey key{envelope.context, envelope.generation, envelope.src, envelope.tag};
  const bool zero_copy = transport().zero_copy.load(std::memory_order_relaxed);
  Waiter* claimed =
      admit_send(key, envelope.payload.bytes(), zero_copy, std::chrono::microseconds{0});
  if (claimed != nullptr) {
    fill_claimed(claimed, envelope.src, envelope.payload.bytes());
    return;  // payload dies here; pooled storage recycles
  }
  if (!envelope.has_crc) {
    envelope.has_crc = stamp_crc(envelope.payload.bytes(), envelope.crc);
  }
  apply_corruption(envelope.src, envelope.payload);
  enqueue_payload(key, std::move(envelope.payload), envelope.crc, envelope.has_crc);
}

// --- queue bookkeeping -------------------------------------------------------

bool Mailbox::pop_exact_locked(const ExactKey& key, Envelope& out) {
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  release_queued_locked(out.payload.size());
  return true;
}

void Mailbox::ensure_any_index_locked(const AnyKey& key) {
  if (!any_interest_.insert(key).second) return;
  // First any-source interest in this key: rebuild arrival order from the
  // envelopes already queued (seq stamps give the global arrival order).
  std::vector<std::pair<std::uint64_t, int>> entries;
  for (const auto& [qkey, queue] : queues_) {
    if (qkey.context != key.context || qkey.generation != key.generation ||
        qkey.tag != key.tag) {
      continue;
    }
    for (const Envelope& envelope : queue) entries.emplace_back(envelope.seq, qkey.src);
  }
  std::sort(entries.begin(), entries.end());
  auto& order = any_order_[key];
  order.assign(entries.begin(), entries.end());
}

bool Mailbox::pop_any_locked(const AnyKey& key, Envelope& out) {
  auto oit = any_order_.find(key);
  if (oit == any_order_.end()) return false;
  auto& order = oit->second;
  while (!order.empty()) {
    const auto [seq, src] = order.front();
    order.pop_front();
    auto qit = queues_.find(ExactKey{key.context, key.generation, src, key.tag});
    if (qit == queues_.end() || qit->second.empty() ||
        qit->second.front().seq != seq) {
      continue;  // consumed by an exact receive: stale index entry
    }
    out = std::move(qit->second.front());
    qit->second.pop_front();
    if (qit->second.empty()) queues_.erase(qit);
    release_queued_locked(out.payload.size());
    return true;
  }
  return false;
}

void Mailbox::unregister_waiter(std::vector<Waiter*>& list, Waiter* waiter) {
  list.erase(std::remove(list.begin(), list.end(), waiter), list.end());
}

void Mailbox::raise_claim_integrity(const Waiter& waiter, const ExactKey& key) const {
  // A claim completed but fill_claimed's post-fill checksum disagreed with
  // the sender-side stamp: surface it on the receiving rank, same error type
  // as a corrupt queued envelope.
  if (!waiter.integrity_failed) return;
  throw IntegrityError(key.context, key.src, key.tag, key.generation, waiter.expected_crc,
                       waiter.actual_crc, waiter.bytes);
}

// --- receive side ------------------------------------------------------------

Payload Mailbox::recv(ContextId context, Generation generation, int src, int tag,
                      int* out_src) {
  apply_recv_stall(owner_rank_);
  const std::chrono::milliseconds timeout = current_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const bool any = src == kAnySource;
  const ExactKey key{context, generation, src, tag};
  const AnyKey akey{context, generation, tag};

  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_now()) throw AbortError();
  if (any) ensure_any_index_locked(akey);
  Envelope envelope;
  auto try_pop = [&] {
    return any ? pop_any_locked(akey, envelope) : pop_exact_locked(key, envelope);
  };
  if (try_pop()) {
    lock.unlock();
    verify_payload_crc(envelope);
    if (out_src != nullptr) *out_src = envelope.src;
    return std::move(envelope.payload);
  }
  Waiter waiter(Waiter::Kind::Probe);
  std::vector<Waiter*>& list = any ? any_waiters_[akey] : waiters_[key];
  register_waiter_locked(list, &waiter);
  for (;;) {
    bool timed_out = false;
    if (timeout.count() > 0) {
      timed_out = waiter.cv.wait_until(lock, deadline) == std::cv_status::timeout;
    } else {
      waiter.cv.wait(lock);
    }
    if (aborted_now()) {
      unregister_waiter(list, &waiter);
      throw AbortError();
    }
    if (try_pop()) {
      unregister_waiter(list, &waiter);
      lock.unlock();
      verify_payload_crc(envelope);
      if (out_src != nullptr) *out_src = envelope.src;
      return std::move(envelope.payload);
    }
    if (timed_out) {
      unregister_waiter(list, &waiter);
      throw TimeoutError(context, src, tag, timeout,
                         flow_snapshot_locked(context, generation, src, tag), generation);
    }
  }
}

void Mailbox::recv_into(ContextId context, Generation generation, int src, int tag,
                        std::span<std::byte> dst) {
  apply_recv_stall(owner_rank_);
  const std::chrono::milliseconds timeout = current_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const ExactKey key{context, generation, src, tag};

  const auto finish_from_queue = [&](Envelope&& envelope) {
    // Copy-out happens outside the mailbox lock; the envelope owns its
    // payload exclusively (or shares immutable storage).
    if (envelope.payload.size() != dst.size()) {
      throw TransportError(context, src, tag, dst.size(), envelope.payload.size(),
                           generation);
    }
    verify_payload_crc(envelope);
    envelope.payload.copy_to(dst);
  };

  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_now()) throw AbortError();
  Envelope envelope;
  if (pop_exact_locked(key, envelope)) {
    lock.unlock();
    finish_from_queue(std::move(envelope));
    return;
  }
  Waiter waiter(Waiter::Kind::Copy);
  waiter.dst = dst.data();
  waiter.bytes = dst.size();
  std::vector<Waiter*>& list = waiters_[key];
  register_waiter_locked(list, &waiter);
  // Posting the destination is the CTS: wake senders blocked in admit_send.
  // An injected CTS delay releases the lock first, so the notification (and
  // only the notification) arrives late; backoff re-checks may still find
  // the waiter meanwhile, which is exactly a reordered CTS.
  const std::chrono::microseconds cts_delay = cts_post_delay(owner_rank_);
  if (cts_delay.count() > 0) {
    lock.unlock();
    std::this_thread::sleep_for(cts_delay);
    lock.lock();
  }
  sender_cv_.notify_all();
  for (;;) {
    // Check-then-wait: the CTS delay above may have let a sender complete
    // the fill before we ever sleep.
    if (waiter.done) {
      unregister_waiter(list, &waiter);
      raise_claim_integrity(waiter, key);
      return;
    }
    if (!waiter.taken) {
      if (aborted_now()) {
        unregister_waiter(list, &waiter);
        throw AbortError();
      }
      if (pop_exact_locked(key, envelope)) {
        unregister_waiter(list, &waiter);
        lock.unlock();
        finish_from_queue(std::move(envelope));
        return;
      }
    }
    bool timed_out = false;
    if (timeout.count() > 0) {
      timed_out = waiter.cv.wait_until(lock, deadline) == std::cv_status::timeout;
    } else {
      waiter.cv.wait(lock);
    }
    if (timed_out && !waiter.taken && !waiter.done) {
      unregister_waiter(list, &waiter);
      throw TimeoutError(context, src, tag, timeout,
                         flow_snapshot_locked(context, generation, src, tag), generation);
    }
  }
}

void Mailbox::recv_reduce(ContextId context, Generation generation, int src, int tag,
                          std::span<float> acc) {
  apply_recv_stall(owner_rank_);
  const std::chrono::milliseconds timeout = current_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const ExactKey key{context, generation, src, tag};

  const auto reduce_from_queue = [&](Envelope&& envelope) {
    if (envelope.payload.size() != acc.size_bytes()) {
      throw TransportError(context, src, tag, acc.size_bytes(), envelope.payload.size(),
                           generation);
    }
    // Verify BEFORE accumulating: a reduce folds the payload into live state,
    // so a corrupt message must be rejected while the accumulator is intact.
    verify_payload_crc(envelope);
    // Fused reduce straight out of the matched payload — no staging buffer.
    gpu::accumulate(float_view(envelope.payload.bytes()), acc);
  };

  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_now()) throw AbortError();
  Envelope envelope;
  if (pop_exact_locked(key, envelope)) {
    lock.unlock();
    reduce_from_queue(std::move(envelope));
    return;
  }
  Waiter waiter(Waiter::Kind::Reduce);
  waiter.acc = acc.data();
  waiter.bytes = acc.size_bytes();
  std::vector<Waiter*>& list = waiters_[key];
  register_waiter_locked(list, &waiter);
  // CTS (with optional injected delay) — see recv_into.
  const std::chrono::microseconds cts_delay = cts_post_delay(owner_rank_);
  if (cts_delay.count() > 0) {
    lock.unlock();
    std::this_thread::sleep_for(cts_delay);
    lock.lock();
  }
  sender_cv_.notify_all();
  for (;;) {
    if (waiter.done) {
      unregister_waiter(list, &waiter);
      raise_claim_integrity(waiter, key);
      return;
    }
    if (!waiter.taken) {
      if (aborted_now()) {
        unregister_waiter(list, &waiter);
        throw AbortError();
      }
      if (pop_exact_locked(key, envelope)) {
        unregister_waiter(list, &waiter);
        lock.unlock();
        reduce_from_queue(std::move(envelope));
        return;
      }
    }
    bool timed_out = false;
    if (timeout.count() > 0) {
      timed_out = waiter.cv.wait_until(lock, deadline) == std::cv_status::timeout;
    } else {
      waiter.cv.wait(lock);
    }
    if (timed_out && !waiter.taken && !waiter.done) {
      unregister_waiter(list, &waiter);
      throw TimeoutError(context, src, tag, timeout,
                         flow_snapshot_locked(context, generation, src, tag), generation);
    }
  }
}

// --- pre-posted receives (Comm::irecv) ---------------------------------------

std::unique_ptr<Mailbox::PostedRecv> Mailbox::post_recv(ContextId context,
                                                        Generation generation, int src,
                                                        int tag, std::span<std::byte> dst) {
  std::unique_ptr<PostedRecv> posted(
      new PostedRecv(*this, context, generation, src, tag, dst));
  std::unique_lock<std::mutex> lock(mutex_);
  // Registered even while queued mail exists: admit_send refuses to claim
  // past queued mail (non-overtaking), and posted_test/posted_wait drain the
  // queue before relying on a claim.
  register_waiter_locked(waiters_[posted->key_], &posted->waiter_);
  // CTS (with optional injected delay) — see recv_into. posted_test/
  // posted_wait use check-then-wait, so a fill completing during the delay
  // is observed, never missed.
  const std::chrono::microseconds cts_delay = cts_post_delay(owner_rank_);
  if (cts_delay.count() > 0) {
    lock.unlock();
    std::this_thread::sleep_for(cts_delay);
    lock.lock();
  }
  sender_cv_.notify_all();
  return posted;
}

void Mailbox::abandon_posted(PostedRecv& posted) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!posted.registered_) return;
  // A claimed waiter cannot be abandoned: the sender is filling dst_ right
  // now. Wait for `done`, then deregister.
  while (posted.waiter_.taken && !posted.waiter_.done) posted.waiter_.cv.wait(lock);
  auto it = waiters_.find(posted.key_);
  if (it != waiters_.end()) unregister_waiter(it->second, &posted.waiter_);
  posted.registered_ = false;
}

bool Mailbox::posted_test(PostedRecv& posted) {
  Envelope envelope;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (posted.finished_) return true;
    auto deregister = [&] {
      auto it = waiters_.find(posted.key_);
      if (it != waiters_.end()) unregister_waiter(it->second, &posted.waiter_);
      posted.registered_ = false;
    };
    if (posted.waiter_.done) {
      deregister();
      posted.finished_ = true;
      raise_claim_integrity(posted.waiter_, posted.key_);
      return true;
    }
    if (posted.waiter_.taken) return false;  // fill in flight; imminent
    if (aborted_now()) {
      deregister();
      posted.finished_ = true;
      throw AbortError();
    }
    if (!pop_exact_locked(posted.key_, envelope)) return false;
    deregister();
    posted.finished_ = true;
  }
  // Copy-out (and the mismatch diagnosis) outside the mailbox lock.
  if (envelope.payload.size() != posted.dst_.size()) {
    throw TransportError(posted.key_.context, posted.key_.src, posted.key_.tag,
                         posted.dst_.size(), envelope.payload.size(),
                         posted.key_.generation);
  }
  verify_payload_crc(envelope);
  envelope.payload.copy_to(posted.dst_);
  return true;
}

void Mailbox::posted_wait(PostedRecv& posted) {
  const std::chrono::milliseconds timeout = current_timeout();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Envelope envelope;
  bool from_queue = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (posted.finished_) return;
    auto deregister = [&] {
      auto it = waiters_.find(posted.key_);
      if (it != waiters_.end()) unregister_waiter(it->second, &posted.waiter_);
      posted.registered_ = false;
    };
    for (;;) {
      if (posted.waiter_.done) {
        deregister();
        posted.finished_ = true;
        raise_claim_integrity(posted.waiter_, posted.key_);
        return;
      }
      if (!posted.waiter_.taken) {
        if (aborted_now()) {
          deregister();
          posted.finished_ = true;
          throw AbortError();
        }
        if (pop_exact_locked(posted.key_, envelope)) {
          deregister();
          posted.finished_ = true;
          from_queue = true;
          break;
        }
      }
      bool timed_out = false;
      if (timeout.count() > 0) {
        timed_out = posted.waiter_.cv.wait_until(lock, deadline) == std::cv_status::timeout;
      } else {
        posted.waiter_.cv.wait(lock);
      }
      if (timed_out && !posted.waiter_.taken && !posted.waiter_.done) {
        deregister();
        posted.finished_ = true;
        throw TimeoutError(posted.key_.context, posted.key_.src, posted.key_.tag, timeout,
                           flow_snapshot_locked(posted.key_.context, posted.key_.generation,
                                                posted.key_.src, posted.key_.tag),
                           posted.key_.generation);
      }
    }
  }
  if (from_queue) {
    if (envelope.payload.size() != posted.dst_.size()) {
      throw TransportError(posted.key_.context, posted.key_.src, posted.key_.tag,
                           posted.dst_.size(), envelope.payload.size(),
                           posted.key_.generation);
    }
    verify_payload_crc(envelope);
    envelope.payload.copy_to(posted.dst_);
  }
}

bool Mailbox::try_recv(ContextId context, Generation generation, int src, int tag,
                       Payload& payload) {
  Envelope envelope;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (aborted_now()) throw AbortError();
    if (!pop_exact_locked(ExactKey{context, generation, src, tag}, envelope)) return false;
  }
  verify_payload_crc(envelope);
  payload = std::move(envelope.payload);
  return true;
}

void Mailbox::interrupt() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, list] : waiters_) {
    for (Waiter* waiter : list) waiter->cv.notify_all();
  }
  for (auto& [key, list] : any_waiters_) {
    for (Waiter* waiter : list) waiter->cv.notify_all();
  }
  // Senders blocked in admit_send (RTS linger or credit wait) re-check the
  // abort flag and drain without credit.
  sender_cv_.notify_all();
}

std::size_t Mailbox::purge_stale(Generation current) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  std::size_t stale_bytes = 0;
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (it->first.generation != current) {
      dropped += it->second.size();
      for (const Envelope& envelope : it->second) stale_bytes += envelope.payload.size();
      it = queues_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = any_order_.begin(); it != any_order_.end();) {
    it = it->first.generation != current ? any_order_.erase(it) : std::next(it);
  }
  for (auto it = any_interest_.begin(); it != any_interest_.end();) {
    it = it->generation != current ? any_interest_.erase(it) : std::next(it);
  }
  if (stale_bytes > 0) {
    // Dead-epoch mail returns its credit: the next generation starts with a
    // full window, and any sender still blocked on stale occupancy wakes.
    queued_bytes_ -= std::min(stale_bytes, queued_bytes_);
    occupancy_.sub(stale_bytes);
    sender_cv_.notify_all();
  }
  return dropped;
}

}  // namespace scaffe::mpi
