// Heartbeat health plane for scmpi: proactive failure detection on a
// reserved out-of-band context.
//
// Every rank owns a HealthMonitor wrapping its Comm. A monitor thread ticks
// every `interval`: it sends one heartbeat to every peer (sequence number +
// this rank's step-latency EWMA) and drains the heartbeats peers sent to it.
// Heartbeats travel through Mailbox::deliver_oob on a context derived from —
// but disjoint from — the communicator's own context, so they can never
// match data traffic, and they skip the fault injector's per-link message
// ordinals, so a chaos schedule's drop/delay decisions for data traffic are
// identical with and without the health plane.
//
// Suspicion: a peer silent for longer than interval × miss_limit is
// suspected. The monitor thread records a SuspectError and aborts the world
// — tearing down blocked collectives in O(heartbeat interval) instead of
// waiting out the full receive deadline. Rank bodies surface the typed error
// by calling poll() periodically (it throws the recorded SuspectError, or
// AbortError when the world died for another rank's reason), typically via
// the Trainer's per-iteration hook.
//
// Straggler flagging: each heartbeat carries the sender's recent
// step-latency EWMA (record_step). A peer whose reported latency exceeds
// straggler_factor × the world median is flagged in report() — an advisory
// signal (TrainerReport.health), never an abort.
//
// Generation fencing: heartbeats are stamped with the communicator's
// generation and received with generation-matched try_recv, so a heartbeat
// from a dead epoch is invisible to a rebuilt world — a zombie rank's
// heartbeats cannot mask its absence from the new membership.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "mpi/comm.h"
#include "mpi/world.h"

namespace scaffe::mpi {

/// Health-plane tuning. Defaults give ~100 ms time-to-suspect — far below
/// any sane receive deadline — at ~40 tiny messages/s/peer of overhead.
struct HealthConfig {
  /// Heartbeat period (SCAFFE_HEARTBEAT_MS, default 25).
  std::chrono::milliseconds interval{25};
  /// Consecutive missed intervals before suspicion
  /// (SCAFFE_HEARTBEAT_MISS_LIMIT, default 4).
  int miss_limit = 4;
  /// A peer reporting more than this multiple of the world-median step
  /// latency is flagged a straggler (SCAFFE_STRAGGLER_FACTOR, default 4).
  int straggler_factor = 4;

  /// Threshold of silence that confirms suspicion.
  std::chrono::milliseconds suspicion_threshold() const {
    return interval * std::max(1, miss_limit);
  }

  /// Reads the three knobs from the environment through the shared knob
  /// parsers (typed ConfigError on malformed values).
  static HealthConfig from_env();
};

/// Last-known health of one peer, as seen by one rank's monitor.
struct PeerHealth {
  int rank = -1;        ///< communicator rank
  int world_rank = -1;  ///< stable world identity
  bool heard = false;   ///< at least one heartbeat received this generation
  std::uint64_t last_seq = 0;          ///< highest heartbeat sequence heard
  double step_latency_ms = -1.0;       ///< peer-reported EWMA (< 0 = unknown)
  std::chrono::milliseconds silent_for{0};  ///< silence at report time
  bool straggler = false;  ///< flagged slow relative to the world median
};

/// Snapshot of one monitor's view of the world (report()).
struct HealthReport {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  double median_step_latency_ms = -1.0;  ///< median over known latencies
  std::vector<PeerHealth> peers;         ///< indexed by comm rank (incl. self)
  std::vector<int> straggler_world_ranks;  ///< sticky: ever flagged this run
  int suspected_world_rank = -1;           ///< first confirmed suspect, or -1
};

/// Per-rank heartbeater + failure detector. Construct after the communicator
/// is live (all ranks roughly aligned — a barrier upstream keeps startup
/// silence from counting against peers), destroy before the Comm.
class HealthMonitor {
 public:
  explicit HealthMonitor(Comm& comm, HealthConfig config = HealthConfig{});
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Feeds this rank's latest step latency into the EWMA carried by its
  /// outgoing heartbeats. Thread-safe.
  void record_step(double latency_ms);

  /// Surfaces failure on the calling (rank body) thread: throws the recorded
  /// SuspectError once the monitor confirmed a silent peer, or AbortError
  /// when the world aborted for any other reason. Returns normally while the
  /// world is healthy. Call once per iteration / polling loop.
  void poll() const;

  /// True once this monitor confirmed a suspect (poll() would throw it).
  bool suspected() const;

  HealthReport report() const;

  const HealthConfig& config() const noexcept { return config_; }

  /// The reserved out-of-band context heartbeats travel on, derived from the
  /// communicator's context (disjoint from all data/collective traffic).
  ContextId health_context() const noexcept { return health_context_; }
  static ContextId health_context_for(ContextId comm_context);

  /// Tag used by every heartbeat (sender identity lives in the src match).
  static constexpr int kHeartbeatTag = 0;

 private:
  /// Wire format of one heartbeat. Trivially copyable; sent as raw bytes
  /// between threads of one process (no endianness concern).
  struct Heartbeat {
    std::uint64_t seq = 0;
    double step_latency_ms = -1.0;
  };

  /// Mutable per-peer state behind mutex_.
  struct PeerState {
    std::uint64_t last_seq = 0;
    double step_latency_ms = -1.0;
    bool heard = false;
    std::chrono::steady_clock::time_point last_heard;
    bool straggler = false;
  };

  void pump();  // monitor thread body
  void tick(std::chrono::steady_clock::time_point now);
  void send_heartbeats();
  void drain_heartbeats();
  void scan(std::chrono::steady_clock::time_point now);

  Comm& comm_;
  HealthConfig config_;
  ContextId health_context_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::vector<PeerState> peers_;  // indexed by comm rank
  std::optional<SuspectError> suspicion_;
  double own_latency_ms_ = -1.0;  // EWMA of record_step samples
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace scaffe::mpi
