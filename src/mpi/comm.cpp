#include "mpi/comm.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "coll/algorithms.h"
#include "gpu/kernels.h"
#include "mpi/knobs.h"
#include "mpi/transport_tuner.h"
#include "util/bytes.h"
#include "util/logging.h"

namespace scaffe::mpi {

namespace {

// User tags live below kCollTagBase; each collective occupies one stride.
// The slot ring bounds concurrently-outstanding collectives per communicator:
// two live collectives 256 allocations apart would alias tags. Unfused
// SC-OBR keeps one ireduce in flight per parameter layer, so the ring must
// exceed the deepest supported net (GoogLeNet-class profiles exceed 100).
constexpr int kCollTagBase = 1 << 24;
constexpr int kCollTagStride = 1 << 20;
constexpr int kCollSlots = 256;  // max concurrently-outstanding collectives

// The schedule compiler promises every compiled schedule stays inside one
// stride; keep the two layers' idea of the budget in lockstep.
static_assert(kCollTagStride == coll::kMaxScheduleTags,
              "per-collective tag stride must match the schedule tag budget");

std::int64_t mix_context(std::int64_t a, std::int64_t b, std::int64_t c) {
  std::uint64_t x = static_cast<std::uint64_t>(a) * 0x9e3779b97f4a7c15ULL;
  x ^= static_cast<std::uint64_t>(b) + 0xbf58476d1ce4e5b9ULL + (x << 6) + (x >> 2);
  x ^= static_cast<std::uint64_t>(c) + 0x94d049bb133111ebULL + (x << 6) + (x >> 2);
  return static_cast<std::int64_t>(x >> 1);
}

}  // namespace

// --- Request ----------------------------------------------------------------

void Request::wait() {
  if (!state_ || state_->done) return;
  if (state_->progress) state_->progress(true);
  state_->done = true;
}

bool Request::test() {
  if (!state_ || state_->done) return true;
  if (!state_->progress || state_->progress(false)) {
    state_->done = true;
    return true;
  }
  return false;
}

// --- point-to-point -----------------------------------------------------------

void Comm::send_bytes(std::span<const std::byte> data, int dst, int tag) {
  if (dst < 0 || dst >= size()) throw std::runtime_error("scmpi send: bad rank");
  peer_mailbox(dst).deliver(context_, generation_, rank_, tag, data);
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  if (src < 0 || src >= size()) throw std::runtime_error("scmpi recv: bad rank");
  const Payload payload = mailbox().recv(context_, generation_, src, tag);
  const std::span<const std::byte> bytes = payload.bytes();
  return std::vector<std::byte>(bytes.begin(), bytes.end());
}

// --- schedule execution ---------------------------------------------------------

int Comm::next_coll_tag_base() {
  const int slot = static_cast<int>(coll_seq_ % kCollSlots);
  ++coll_seq_;
  return kCollTagBase + slot * kCollTagStride;
}

void Comm::send_region_run(std::span<const float> region, std::span<const coll::Op> run,
                           int tag_base) {
  const std::span<const std::byte> data = std::as_bytes(region);
  // One immutable buffer shared by every destination that is not already
  // posted (broadcast fan-out: 1 materialization instead of run.size()).
  std::shared_ptr<const std::byte[]> shared;
  for (const coll::Op& op : run) {
    Mailbox& box = peer_mailbox(op.peer);
    const int tag = tag_base + op.tag;
    if (box.deliver_direct(context_, generation_, rank_, tag, data)) continue;
    if (!shared) shared = Payload::make_shared_copy(data);
    box.enqueue_shared(context_, generation_, rank_, tag, shared, data.size());
  }
}

void Comm::execute_schedule(const coll::Schedule& schedule, std::span<float> data,
                            int tag_base) {
  if (schedule.count != data.size()) {
    throw std::runtime_error("scmpi collective: buffer size != schedule count");
  }
  const std::vector<coll::Op>& ops = schedule.programs[static_cast<std::size_t>(rank_)].ops;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const coll::Op& op = ops[i];
    if (op.tag < 0 || op.tag >= kCollTagStride) {
      // A tag past the stride would bleed into the next collective's window
      // of the 256-slot ring and alias a concurrent schedule's messages.
      throw std::runtime_error("scmpi collective: schedule '" + schedule.name +
                               "' tag overflows the per-collective stride");
    }
    std::span<float> region = data.subspan(op.offset, op.count);
    switch (op.kind) {
      case coll::OpKind::Send: {
        const std::size_t run = coll::send_run_length(ops, i);
        if (run > 1) {
          send_region_run(region, std::span<const coll::Op>(&ops[i], run), tag_base);
          i += run - 1;
        } else {
          send<float>(region, op.peer, tag_base + op.tag);
        }
        break;
      }
      case coll::OpKind::Recv:
        recv<float>(region, op.peer, tag_base + op.tag);
        break;
      case coll::OpKind::RecvReduce:
        // Fused: accumulate straight out of the matched payload (or, when
        // this receive was posted first, straight out of the sender's
        // buffer) — intermediate ranks never materialize a staging buffer.
        recv_reduce(region, op.peer, tag_base + op.tag);
        break;
    }
  }
}

// --- blocking collectives --------------------------------------------------------

void Comm::barrier() {
  const int tag_base = next_coll_tag_base();
  const int p = size();
  float token = 0.0f;
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int to = (rank_ + k) % p;
    const int from = (rank_ - k + p) % p;
    send<float>(std::span<const float>(&token, 1), to, tag_base + round);
    recv<float>(std::span<float>(&token, 1), from, tag_base + round);
  }
}

void Comm::bcast(std::span<float> data, int root) {
  const int tag_base = next_coll_tag_base();
  if (size() == 1 || data.empty()) return;
  const coll::Schedule schedule =
      bcast_factory_ ? bcast_factory_(size(), root, data.size())
                     : coll::binomial_bcast(size(), root, data.size());
  execute_schedule(schedule, data, tag_base);
}

void Comm::reduce(std::span<float> data, int root) {
  const int tag_base = next_coll_tag_base();
  if (size() == 1 || data.empty()) return;
  const coll::Schedule schedule =
      reduce_factory_ ? reduce_factory_(size(), root, data.size())
                      : coll::binomial_reduce(size(), root, data.size());
  execute_schedule(schedule, data, tag_base);
}

void Comm::allreduce(std::span<float> data) {
  if (allreduce_factory_ && size() > 1 && !data.empty()) {
    const int tag_base = next_coll_tag_base();
    execute_schedule(allreduce_factory_(size(), 0, data.size()), data, tag_base);
    return;
  }
  reduce(data, 0);
  bcast(data, 0);
}

std::vector<float> Comm::gather(std::span<const float> data, int root) {
  const int tag_base = next_coll_tag_base();
  std::vector<float> result;
  if (rank_ == root) {
    result.resize(data.size() * static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      std::span<float> slot(result.data() + static_cast<std::size_t>(r) * data.size(),
                            data.size());
      if (r == rank_) {
        std::copy(data.begin(), data.end(), slot.begin());
      } else {
        recv<float>(slot, r, tag_base);
      }
    }
  } else {
    send<float>(data, root, tag_base);
  }
  return result;
}

std::vector<float> Comm::allgather(std::span<const float> data) {
  std::vector<float> result = gather(data, 0);
  result.resize(data.size() * static_cast<std::size_t>(size()));
  bcast(result, 0);
  return result;
}

std::vector<float> Comm::scatter(std::span<const float> data, int root) {
  const int tag_base = next_coll_tag_base();
  std::size_t block = 0;
  if (rank_ == root) {
    block = data.size() / static_cast<std::size_t>(size());
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      send<float>(data.subspan(static_cast<std::size_t>(r) * block, block), r, tag_base);
    }
    return {data.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(rank_) * block),
            data.begin() +
                static_cast<std::ptrdiff_t>((static_cast<std::size_t>(rank_) + 1) * block)};
  }
  // Non-roots learn the block size from the payload itself.
  const Payload payload = mailbox().recv(context_, generation_, root, tag_base);
  std::vector<float> result(payload.size() / sizeof(float));
  if (!payload.empty()) std::memcpy(result.data(), payload.data(), payload.size());
  return result;
}

// --- non-blocking collectives -------------------------------------------------------

Request Comm::make_async(std::function<void()> body) {
  auto future =
      std::make_shared<std::future<void>>(std::async(std::launch::async, std::move(body)));
  auto state = std::make_shared<Request::State>();
  state->progress = [future](bool blocking) {
    if (!blocking &&
        future->wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      return false;
    }
    future->get();
    return true;
  };
  return Request(std::move(state));
}

Request Comm::make_done() {
  auto state = std::make_shared<Request::State>();
  state->done = true;
  return Request(std::move(state));
}

Request Comm::ibcast(std::span<float> data, int root) {
  const int tag_base = next_coll_tag_base();
  if (size() == 1 || data.empty()) return make_done();
  coll::Schedule schedule = bcast_factory_
                                ? bcast_factory_(size(), root, data.size())
                                : coll::binomial_bcast(size(), root, data.size());
  return make_async([this, schedule = std::move(schedule), data, tag_base] {
    execute_schedule(schedule, data, tag_base);
  });
}

Request Comm::iallreduce(std::span<float> data) {
  if (allreduce_factory_ && size() > 1 && !data.empty()) {
    const int tag_base = next_coll_tag_base();
    coll::Schedule schedule = allreduce_factory_(size(), 0, data.size());
    return make_async([this, schedule = std::move(schedule), data, tag_base] {
      execute_schedule(schedule, data, tag_base);
    });
  }
  // reduce + bcast on one progression thread; both tag bases reserved NOW so
  // every rank agrees on the ordering even with other collectives in flight.
  const int reduce_tags = next_coll_tag_base();
  const int bcast_tags = next_coll_tag_base();
  if (size() == 1 || data.empty()) return make_done();
  coll::Schedule reduce_schedule = reduce_factory_
                                       ? reduce_factory_(size(), 0, data.size())
                                       : coll::binomial_reduce(size(), 0, data.size());
  coll::Schedule bcast_schedule = bcast_factory_
                                      ? bcast_factory_(size(), 0, data.size())
                                      : coll::binomial_bcast(size(), 0, data.size());
  return make_async([this, reduce_schedule = std::move(reduce_schedule),
                     bcast_schedule = std::move(bcast_schedule), data, reduce_tags,
                     bcast_tags] {
    execute_schedule(reduce_schedule, data, reduce_tags);
    execute_schedule(bcast_schedule, data, bcast_tags);
  });
}

Request Comm::ireduce(std::span<float> data, int root) {
  return ireduce_at(data, root, next_coll_tag_base());
}

void Comm::reduce_at(std::span<float> data, int root, int tag_base) {
  if (size() == 1 || data.empty()) return;
  const coll::Schedule schedule =
      reduce_factory_ ? reduce_factory_(size(), root, data.size())
                      : coll::binomial_reduce(size(), root, data.size());
  execute_schedule(schedule, data, tag_base);
}

Request Comm::ireduce_at(std::span<float> data, int root, int tag_base) {
  if (size() == 1 || data.empty()) return make_done();
  coll::Schedule schedule = reduce_factory_
                                ? reduce_factory_(size(), root, data.size())
                                : coll::binomial_reduce(size(), root, data.size());
  return make_async([this, schedule = std::move(schedule), data, tag_base] {
    execute_schedule(schedule, data, tag_base);
  });
}

// --- communicator management ---------------------------------------------------------

Comm Comm::split(int color, int key) {
  const int tag_base = next_coll_tag_base();
  const std::int64_t seq_used = coll_seq_ - 1;

  // Gather (color, key) pairs at comm rank 0.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> entries;
  if (rank_ == 0) {
    entries.resize(static_cast<std::size_t>(size()));
    entries[0] = mine;
    for (int r = 1; r < size(); ++r) {
      Entry entry{};
      recv<Entry>(std::span<Entry>(&entry, 1), r, tag_base);
      entries[static_cast<std::size_t>(r)] = entry;
    }
  } else {
    send<Entry>(std::span<const Entry>(&mine, 1), 0, tag_base);
  }

  // Rank 0 computes each rank's (group world-ranks, new rank, color index)
  // and sends it back.
  std::vector<int> my_group;   // new comm rank -> world rank
  int my_new_rank = -1;
  int my_color_index = -1;
  if (rank_ == 0) {
    std::vector<Entry> sorted = entries;
    std::stable_sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
      return std::tie(a.color, a.key, a.rank) < std::tie(b.color, b.key, b.rank);
    });
    std::vector<int> colors;
    for (const Entry& e : sorted) {
      if (colors.empty() || colors.back() != e.color) colors.push_back(e.color);
    }
    for (std::size_t ci = 0; ci < colors.size(); ++ci) {
      std::vector<int> group_world;  // ordered members as world ranks
      std::vector<int> group_comm;   // same members as parent-comm ranks
      for (const Entry& e : sorted) {
        if (e.color != colors[ci]) continue;
        group_world.push_back(group_[static_cast<std::size_t>(e.rank)]);
        group_comm.push_back(e.rank);
      }
      for (std::size_t pos = 0; pos < group_comm.size(); ++pos) {
        const int member = group_comm[pos];
        std::vector<int> message;
        message.push_back(static_cast<int>(pos));  // new rank
        message.push_back(static_cast<int>(ci));   // color index
        message.insert(message.end(), group_world.begin(), group_world.end());
        if (member == 0) {
          my_new_rank = static_cast<int>(pos);
          my_color_index = static_cast<int>(ci);
          my_group = group_world;
        } else {
          send<int>(message, member, tag_base + 1);
        }
      }
    }
  } else {
    const Payload payload = mailbox().recv(context_, generation_, 0, tag_base + 1);
    std::vector<int> message(payload.size() / sizeof(int));
    std::memcpy(message.data(), payload.data(), payload.size());
    my_new_rank = message[0];
    my_color_index = message[1];
    my_group.assign(message.begin() + 2, message.end());
  }

  // Child context: parent context (already woven with the membership
  // generation at the epoch's base) mixed with the split ordinal and color.
  // Identical split sequences in different generations therefore land in
  // disjoint context space; the envelope generation stamp is the hard fence
  // behind that (see world.h).
  const ContextId child_context = mix_context(context_, seq_used, my_color_index);
  return Comm(world_, my_new_rank, std::move(my_group), child_context, generation_);
}

Comm Comm::dup() { return split(0, rank_); }

// --- Runtime ------------------------------------------------------------------------

Runtime::Runtime(int nranks) : nranks_(nranks) {
  if (nranks < 1) throw std::runtime_error("Runtime: nranks must be >= 1");
  // The world persists across runs and failures: each run only opens a new
  // membership generation over the same mailboxes (elastic worlds).
  world_ = std::make_shared<World>(nranks_, recv_timeout_);
  // SCAFFE_EAGER_LIMIT=auto: replace the built-in default with the measured
  // eager/rendezvous crossover. The guard keeps the 2-rank calibration
  // runtime itself (and its Worlds) on the fixed default — calibrating
  // inside the calibration would recurse forever.
  if (TransportConfig::default_eager_auto() && !calibration_in_progress()) {
    world_->transport.eager_limit.store(resolve_auto_eager_limit());
  }
  // Registry cache budget. util cannot depend on mpi, so the env knob is
  // parsed here (typed ConfigError on malformed input) and applied to the
  // process-wide registry; every Runtime re-applies it, which is idempotent.
  if (const char* env = std::getenv("SCAFFE_MEM_BUDGET")) {
    util::MemoryRegistry::instance().set_budget_bytes(
        parse_bytes_knob("SCAFFE_MEM_BUDGET", env, "(expected e.g. 64M, 1G)"));
  }
  if (!calibration_in_progress()) {
    // One line per process, not per Runtime: the effective protocol limit
    // and where it came from, so mis-set knobs show up in any log.
    static std::once_flag logged;
    std::call_once(logged, [this] {
      const char* source = TransportConfig::default_eager_auto() ? "auto-calibrated"
                           : std::getenv("SCAFFE_EAGER_LIMIT")   ? "SCAFFE_EAGER_LIMIT"
                                                                 : "default";
      SCAFFE_LOG(Info) << "transport eager limit "
                       << util::fmt_bytes(world_->transport.eager_limit.load()) << " ("
                       << source << ")";
    });
  }
}

void Runtime::run(const std::function<void(Comm&)>& body) {
  std::vector<int> identity(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) identity[static_cast<std::size_t>(r)] = r;
  run_members(identity, body);
}

void Runtime::run_members(const std::vector<int>& members,
                          const std::function<void(Comm&)>& body) {
  if (members.empty()) throw std::runtime_error("Runtime: empty member set");
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] < 0 || members[i] >= nranks_) {
      throw std::runtime_error("Runtime: member " + std::to_string(members[i]) +
                               " outside world [0, " + std::to_string(nranks_) + ")");
    }
    if (i > 0 && members[i] <= members[i - 1]) {
      throw std::runtime_error("Runtime: members must be strictly ascending");
    }
  }

  // Open the next membership epoch: clears the abort flag, purges dead-epoch
  // mail, and yields the generation every envelope of this run is stamped
  // with. The base context is woven from the generation so sub-communicator
  // context chains of different epochs never collide either.
  world_->recv_timeout_ms.store(recv_timeout_.count());
  const Generation generation = world_->begin_generation();
  const ContextId base_context =
      mix_context(0x5caffe, static_cast<std::int64_t>(generation), 0);

  const int nmembers = static_cast<int>(members.size());
  std::vector<std::exception_ptr> errors(members.size());
  std::vector<std::thread> threads;
  threads.reserve(members.size());
  for (int r = 0; r < nmembers; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world_, r, members, base_context, generation);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // MPI_Abort semantics: a failing rank tears down the whole job so
        // peers blocked in receives unwind instead of deadlocking.
        world_->abort();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Prefer the original failure over secondary AbortError unwinds.
  std::exception_ptr first_abort;
  for (const auto& error : errors) {
    if (!error) continue;
    try {
      std::rethrow_exception(error);
    } catch (const AbortError&) {
      if (!first_abort) first_abort = error;
    } catch (...) {
      std::rethrow_exception(error);
    }
  }
  if (first_abort) std::rethrow_exception(first_abort);
}

}  // namespace scaffe::mpi
