// Measured eager/rendezvous auto-tuning (SCAFFE_EAGER_LIMIT=auto).
//
// The 64 KiB crossover the transport shipped with is a guess; the right
// value depends on the host (memcpy bandwidth vs wakeup latency, core count,
// load). A short in-process 2-rank ping-pong sweep — the same measurement
// bench_transport reports — pins the protocol all-eager then all-rendezvous
// over a band of message sizes and picks the first size where the rendezvous
// path wins. The result is persisted as JSON (the BENCH_transport.json
// "pingpong" layout, so an existing bench run is reusable as a calibration
// source) and reloaded on later startups instead of re-measuring.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace scaffe::mpi {

/// One measured point of the eager-vs-rendezvous ping-pong sweep.
struct CalibrationPoint {
  std::size_t bytes = 0;
  double eager_gbps = 0.0;       // protocol pinned all-eager
  double rendezvous_gbps = 0.0;  // protocol pinned all-rendezvous
};

/// Crossover clamp band: eager wins below 64 KiB and rendezvous wins above
/// 256 KiB on every host this runtime targets; the clamp absorbs measurement
/// noise on loaded CI machines without letting it flip the protocol into a
/// regime that is never right.
inline constexpr std::size_t kCrossoverLo = std::size_t{64} << 10;
inline constexpr std::size_t kCrossoverHi = std::size_t{256} << 10;

struct TransportCalibration {
  std::vector<CalibrationPoint> points;  // ascending bytes

  bool empty() const noexcept { return points.empty(); }

  /// Smallest measured size at which the rendezvous path beats the eager
  /// path (rendezvous never winning picks `hi`), clamped into [lo, hi].
  std::size_t pick_crossover(std::size_t lo = kCrossoverLo,
                             std::size_t hi = kCrossoverHi) const;
};

/// Runs the in-process 2-rank ping-pong sweep over 4 KiB .. 1 MiB (the band
/// around any plausible crossover). `iters` bounds the per-size repetition;
/// small values keep a cold startup under a few tens of milliseconds.
TransportCalibration measure_transport_calibration(int iters = 24);

/// True while measure_transport_calibration is running its internal Runtime:
/// the recursion guard that keeps the calibration runtime from trying to
/// auto-calibrate itself.
bool calibration_in_progress() noexcept;

/// Writes `calibration` to `path` as JSON with a "pingpong" array. Returns
/// false (without throwing) when the file cannot be written.
bool save_calibration(const TransportCalibration& calibration, const std::string& path);

/// Reads calibration points from the "pingpong" array of `path` — accepts
/// both save_calibration output and BENCH_transport.json written by
/// bench_transport. Returns an empty calibration when the file is missing
/// or holds no usable rows.
TransportCalibration load_calibration(const std::string& path);

/// Resolves SCAFFE_EAGER_LIMIT=auto: reuses the calibration persisted at
/// `path` when present, otherwise measures and persists it there (best
/// effort). Returns the picked crossover in bytes.
std::size_t resolve_auto_eager_limit(const std::string& path = "BENCH_transport.json");

}  // namespace scaffe::mpi
