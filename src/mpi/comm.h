// scmpi: an MPI-like message-passing runtime over in-process rank threads.
//
// The API mirrors the MPI subset S-Caffe needs — tagged point-to-point,
// communicator split/dup, blocking collectives, and MPI-3-style non-blocking
// collectives (ibcast / ireduce) returning Request objects whose progression
// happens asynchronously — plus "CUDA-aware" overloads taking device buffers
// directly (no explicit staging, exactly the convenience CUDA-aware MPI
// brought to GPU clusters).
//
// Collective algorithms are pluggable: a schedule factory maps
// (nranks, root, count) to a coll::Schedule, so the DL-aware hierarchical
// reduce (Section 5) installs with set_reduce_factory.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "coll/program.h"
#include "gpu/buffer.h"
#include "mpi/world.h"
#include "util/memory_registry.h"

namespace scaffe::mpi {

class HealthMonitor;  // mpi/health.h

/// Handle for a non-blocking operation. Copyable (shared state); wait() is
/// idempotent and rethrows any exception raised during progression.
class Request {
 public:
  Request() = default;

  void wait();
  bool test();
  bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class Comm;
  struct State {
    // progress(blocking): attempt completion; returns true when complete.
    std::function<bool(bool)> progress;
    bool done = false;
  };
  explicit Request(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Factory producing the schedule a collective uses.
using ScheduleFactory =
    std::function<coll::Schedule(int nranks, int root, std::size_t count)>;

class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return static_cast<int>(group_.size()); }

  /// This rank's identity in the maximal world (stable across shrinks; comm
  /// ranks are re-densified every membership generation, world ranks never).
  int world_rank() const noexcept { return group_[static_cast<std::size_t>(rank_)]; }

  /// Membership epoch this communicator belongs to. Messages cannot cross
  /// generations (see World); useful for diagnostics and fencing tests.
  Generation generation() const noexcept { return generation_; }

  /// The communicator's context id (isolated tag space). Exposed so tests
  /// can audit the allocation for collisions across splits and rebuilds.
  ContextId context() const noexcept { return context_; }

  /// The world's eager/rendezvous crossover in bytes (fixed, env-pinned, or
  /// auto-calibrated — see Runtime). Fusion bucket sizing derives from it.
  std::size_t eager_limit() const noexcept {
    return world_->transport.eager_limit.load();
  }

  // --- point-to-point -----------------------------------------------------

  /// Blocking send. Never waits for a MATCHING receive below the eager
  /// limit: the payload stages in a pooled buffer. Above it the rendezvous
  /// path fills an already-posted receive with a single copy, or — after a
  /// bounded RTS linger — publishes a shared immutable view. A send does
  /// block when the destination mailbox is over its credit budget
  /// (SCAFFE_MAILBOX_BYTES): backpressure instead of unbounded queueing,
  /// bounded by the receive deadline (see DESIGN.md "Transport protocol"
  /// and "Credit flow control").
  void send_bytes(std::span<const std::byte> data, int dst, int tag);
  std::vector<std::byte> recv_bytes(int src, int tag);

  /// MPI_ANY_SOURCE receive: matches the earliest-arrived message with `tag`
  /// from any rank; returns the sender's rank.
  template <typename T>
  int recv_any(std::span<T> data, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    int src = -1;
    const Payload payload = mailbox().recv(context_, generation_, kAnySource, tag, &src);
    if (payload.size() != data.size_bytes()) {
      throw TransportError(context_, kAnySource, tag, data.size_bytes(), payload.size());
    }
    payload.copy_to(std::as_writable_bytes(data));
    return src;
  }

  template <typename T>
  void send(std::span<const T> data, int dst, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(std::as_bytes(data), dst, tag);
  }

  /// Blocking receive into `data`. Posts the destination so a matching
  /// rendezvous sender copies once, sender buffer → `data`, with no
  /// intermediate payload. Throws TransportError on size mismatch.
  template <typename T>
  void recv(std::span<T> data, int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (src < 0 || src >= size()) throw std::runtime_error("scmpi recv: bad rank");
    mailbox().recv_into(context_, generation_, src, tag, std::as_writable_bytes(data));
  }

  /// Fused receive-reduce: element-wise adds the matched message into `acc`
  /// without materializing a staging buffer. With a rendezvous sender the
  /// accumulation runs straight out of the sender's buffer (zero-copy).
  void recv_reduce(std::span<float> acc, int src, int tag) {
    if (src < 0 || src >= size()) throw std::runtime_error("scmpi recv: bad rank");
    mailbox().recv_reduce(context_, generation_, src, tag, acc);
  }

  /// Eager non-blocking send (payload copied out immediately).
  template <typename T>
  Request isend(std::span<const T> data, int dst, int tag) {
    send(data, dst, tag);
    return make_done();
  }

  /// Non-blocking receive; completes on wait()/test(). The destination is
  /// PRE-POSTED at call time: a rendezvous sender arriving before the wait
  /// claims it and fills `data` with a single copy, instead of staging a
  /// payload for the wait to copy out later.
  template <typename T>
  Request irecv(std::span<T> data, int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (src < 0 || src >= size()) throw std::runtime_error("scmpi recv: bad rank");
    std::shared_ptr<Mailbox::PostedRecv> posted =
        mailbox().post_recv(context_, generation_, src, tag, std::as_writable_bytes(data));
    auto state = std::make_shared<Request::State>();
    state->progress = [this, posted = std::move(posted)](bool blocking) {
      if (blocking) {
        mailbox().posted_wait(*posted);
        return true;
      }
      return mailbox().posted_test(*posted);
    };
    return Request(std::move(state));
  }

  // --- out-of-band delivery -------------------------------------------------

  /// Delivers `data` to `dst` on a reserved out-of-band context (one derived
  /// from — but disjoint from — this communicator's context). OOB messages
  /// bypass the fault injector's per-link ordinals and the credit budget, so
  /// side planes (heartbeats, the sample store's epoch exchange) leave the
  /// data traffic's chaos schedule and flow control untouched. Sending to
  /// self is allowed (the message lands in this rank's own mailbox).
  void oob_send(ContextId context, int dst, int tag, std::span<const std::byte> data) {
    if (dst < 0 || dst >= size()) throw std::runtime_error("scmpi oob_send: bad rank");
    peer_mailbox(dst).deliver_oob(context, generation_, rank_, tag, data);
  }

  /// Non-blocking generation-matched receive on an out-of-band context.
  /// Returns false when no matching message is queued. Throws AbortError
  /// once the world is dead.
  bool oob_try_recv(ContextId context, int src, int tag, Payload& payload) {
    if (src < 0 || src >= size()) throw std::runtime_error("scmpi oob_try_recv: bad rank");
    return mailbox().try_recv(context, generation_, src, tag, payload);
  }

  // --- collectives (blocking) ----------------------------------------------

  /// Dissemination barrier.
  void barrier();

  /// Broadcast `data` from `root` (in place on all ranks).
  void bcast(std::span<float> data, int root);

  /// In-place sum-reduce to `root`. Non-root buffers are scratch afterwards.
  void reduce(std::span<float> data, int root);

  /// In-place allreduce (sum everywhere). Uses the allreduce factory when
  /// one is installed (e.g. a ring schedule); otherwise reduce + bcast.
  void allreduce(std::span<float> data);

  /// Combined send+receive. Safe for symmetric exchanges at any message
  /// size: sends never wait for a matching receive (the rendezvous path
  /// publishes a shared payload view after a bounded linger), so two ranks
  /// sendrecv'ing each other cannot deadlock — as long as both mailboxes
  /// have credit. Under genuine overload (occupancy at budget on both
  /// sides) the exchange blocks until credit returns; the receive deadline
  /// converts a persistent cycle into a BackpressureError.
  template <typename T>
  void sendrecv(std::span<const T> send_data, int dst, std::span<T> recv_data, int src,
                int tag) {
    send(send_data, dst, tag);
    recv(recv_data, src, tag);
  }

  /// Gathers each rank's block to root (returned vector valid on root only).
  std::vector<float> gather(std::span<const float> data, int root);

  /// Every rank contributes `data`; returns the concatenation everywhere.
  std::vector<float> allgather(std::span<const float> data);

  /// Root scatters equal `data.size()/size()` blocks; returns this rank's.
  std::vector<float> scatter(std::span<const float> data, int root);

  // --- collectives (non-blocking, MPI-3 NBC) --------------------------------

  /// Starts an asynchronous broadcast; a helper progression thread advances
  /// the communication while the caller computes (Section 4.2's Ibcast).
  Request ibcast(std::span<float> data, int root);

  /// Asynchronous reduce (Section 4.3's helper-thread aggregation path).
  Request ireduce(std::span<float> data, int root);

  /// Asynchronous allreduce.
  Request iallreduce(std::span<float> data);

  // --- reserved-tag collectives (priority scheduling) ------------------------

  /// Reserves the tag base of the NEXT collective on this communicator
  /// without issuing anything. Collective tag bases are allocated
  /// sequentially, so normally every rank must ISSUE its collectives in the
  /// same order; reserving bases up front (all ranks reserving in the same
  /// deterministic order) decouples issue order from tag agreement — each
  /// rank may then start the reserved collectives in any local order, e.g.
  /// the priority order of the gradient bucket scheduler. Sends never wait
  /// for a matching receive, so out-of-order issue cannot deadlock while
  /// mailboxes hold credit; the credit budget must cover the working set of
  /// concurrently reordered collectives (the 1 GiB default dwarfs any
  /// realistic bucket window).
  int reserve_coll_tags() { return next_coll_tag_base(); }

  /// Blocking reduce on a tag base from reserve_coll_tags().
  void reduce_at(std::span<float> data, int root, int tag_base);

  /// Non-blocking reduce on a tag base from reserve_coll_tags().
  Request ireduce_at(std::span<float> data, int root, int tag_base);

  /// Completes every request (idempotent per request).
  static void waitall(std::span<Request> requests) {
    for (Request& request : requests) request.wait();
  }

  /// True once every request has completed (non-blocking).
  static bool testall(std::span<Request> requests) {
    bool all = true;
    for (Request& request : requests) all = request.test() && all;
    return all;
  }

  // --- CUDA-aware overloads --------------------------------------------------

  void bcast(gpu::DeviceBuffer<float>& buffer, int root) { bcast(buffer.span(), root); }
  void reduce(gpu::DeviceBuffer<float>& buffer, int root) { reduce(buffer.span(), root); }
  void allreduce(gpu::DeviceBuffer<float>& buffer) { allreduce(buffer.span()); }
  Request ibcast(gpu::DeviceBuffer<float>& buffer, int root) {
    return ibcast(buffer.span(), root);
  }
  Request ireduce(gpu::DeviceBuffer<float>& buffer, int root) {
    return ireduce(buffer.span(), root);
  }

  // --- communicator management ----------------------------------------------

  /// Collective: partitions ranks by `color`, ordering each group by
  /// (key, rank). Returns this rank's sub-communicator.
  Comm split(int color, int key);

  /// Collective: duplicate with a fresh context (isolated tag space).
  Comm dup();

  // --- algorithm selection ----------------------------------------------------

  /// Installs the reduce schedule factory (default: binomial tree).
  void set_reduce_factory(ScheduleFactory factory) { reduce_factory_ = std::move(factory); }

  /// Installs the bcast schedule factory (default: binomial tree).
  void set_bcast_factory(ScheduleFactory factory) { bcast_factory_ = std::move(factory); }

  /// Installs an allreduce schedule factory (e.g. coll::ring_allreduce);
  /// by default allreduce is reduce-to-0 followed by bcast-from-0. The
  /// factory's `root` argument is always 0 and its schedule must have
  /// CollectiveKind::Allreduce semantics.
  void set_allreduce_factory(ScheduleFactory factory) {
    allreduce_factory_ = std::move(factory);
  }

 private:
  friend class Runtime;
  friend class HealthMonitor;  // out-of-band heartbeats on the peer mailboxes

  Comm(std::shared_ptr<World> world, int rank, std::vector<int> group, ContextId context,
       Generation generation)
      : world_(std::move(world)),
        rank_(rank),
        group_(std::move(group)),
        context_(context),
        generation_(generation) {}

  Mailbox& mailbox() { return *world_->mailboxes[static_cast<std::size_t>(world_rank())]; }
  Mailbox& peer_mailbox(int dst) {
    return *world_->mailboxes[static_cast<std::size_t>(
        group_[static_cast<std::size_t>(dst)])];
  }

  /// Executes this rank's program of a schedule against `data`. RecvReduce
  /// ops use the fused recv_reduce path; runs of consecutive Sends of one
  /// region (broadcast fan-out) share a single materialized payload.
  void execute_schedule(const coll::Schedule& schedule, std::span<float> data, int tag_base);

  /// Sends one region to every destination of a send run, materializing at
  /// most one shared payload for all receivers that are not already posted.
  void send_region_run(std::span<const float> region, std::span<const coll::Op> run,
                       int tag_base);

  /// Runs `body` on an asynchronous progression thread; the returned Request
  /// completes when the body does.
  static Request make_async(std::function<void()> body);

  static Request make_done();

  /// Allocates the tag base for the next collective on this communicator.
  int next_coll_tag_base();

  std::shared_ptr<World> world_;
  int rank_;
  std::vector<int> group_;  // comm rank -> world rank
  ContextId context_;
  Generation generation_ = 0;  // membership epoch, stamped on every envelope
  std::int64_t coll_seq_ = 0;
  ScheduleFactory reduce_factory_;
  ScheduleFactory bcast_factory_;
  ScheduleFactory allreduce_factory_;
};

/// Spawns rank threads running `body(comm)` over a persistent world.
/// run() blocks until every rank returns and rethrows the first exception.
///
/// Elastic worlds: the World (mailboxes, fault config) outlives failures.
/// Every run()/run_members() call opens a fresh membership generation, so a
/// crashed epoch's leftover mail is fenced out of the next one (see World).
/// run_members() launches only a survivor subset — the shrink path of
/// elastic recovery: comm ranks are re-densified to 0..k-1 while
/// Comm::world_rank() keeps each survivor's stable identity.
/// Transport tuning presets: Tuned is the co-designed zero-copy/pooled
/// protocol, Legacy reproduces the pre-pool transport (fresh allocation and
/// full staging copy per message) for A/B benchmarking.
enum class TransportMode { Tuned, Legacy };

class Runtime {
 public:
  explicit Runtime(int nranks);

  int nranks() const noexcept { return nranks_; }

  /// Receive/collective deadline applied to every blocked receive of the
  /// next run(): a hang becomes a TimeoutError instead of blocking forever.
  /// Zero disables. Defaults to SCAFFE_RECV_TIMEOUT_MS (see World).
  void set_recv_timeout(std::chrono::milliseconds timeout) { recv_timeout_ = timeout; }
  std::chrono::milliseconds recv_timeout() const noexcept { return recv_timeout_; }

  /// Eager/rendezvous crossover in bytes (messages <= limit take the pooled
  /// eager path). Defaults to SCAFFE_EAGER_LIMIT (see TransportConfig).
  void set_eager_limit(std::size_t bytes) { world_->transport.eager_limit.store(bytes); }
  std::size_t eager_limit() const noexcept { return world_->transport.eager_limit.load(); }

  /// Selects the transport protocol preset; default from SCAFFE_TRANSPORT.
  /// Does not touch the mailbox budget: flow control is orthogonal to the
  /// eager/rendezvous protocol choice (A/B it via set_mailbox_bytes(0)).
  void set_transport_mode(TransportMode mode) {
    const bool tuned = mode == TransportMode::Tuned;
    world_->transport.zero_copy.store(tuned);
    world_->transport.pooled_eager.store(tuned);
  }

  /// Per-destination mailbox credit budget in bytes; 0 disables flow
  /// control (unbounded queues, the legacy behavior). Defaults to
  /// SCAFFE_MAILBOX_BYTES (see TransportConfig).
  void set_mailbox_bytes(std::size_t bytes) {
    world_->transport.mailbox_bytes.store(bytes);
  }
  std::size_t mailbox_bytes() const noexcept {
    return world_->transport.mailbox_bytes.load();
  }

  /// Aggregated flow-control stats over every mailbox (peak is the worst
  /// single link). reset_flow_stats() restarts counters and peak tracking —
  /// call at bench/test phase boundaries.
  Mailbox::FlowStats flow_stats() const { return world_->flow_stats(); }
  void reset_flow_stats() { world_->reset_flow_stats(); }

  /// Snapshot of the process-wide MemoryRegistry (transport staging, solver
  /// scratch, sample-store windows all share it). The first Runtime in the
  /// process applies SCAFFE_MEM_BUDGET to its cache budget.
  /// reset_memory_stats() restarts counters and folds peak to live — call at
  /// bench/test phase boundaries (e.g. after warmup, to assert the hot path
  /// allocates nothing).
  util::RegistryStats memory_stats() const { return util::MemoryRegistry::instance().stats(); }
  void reset_memory_stats() { util::MemoryRegistry::instance().reset_stats(); }

  /// Launches every world rank (a full-membership generation).
  void run(const std::function<void(Comm&)>& body);

  /// Launches only `members` (strictly ascending world ranks, non-empty
  /// subset of [0, nranks)): the survivor world after a shrink. Member i of
  /// k gets comm rank i; world_rank() maps back. A fresh generation fences
  /// out every message of earlier epochs.
  void run_members(const std::vector<int>& members, const std::function<void(Comm&)>& body);

  /// Current membership epoch (0 until the first run).
  Generation generation() const noexcept { return world_->generation.load(); }

  /// Diagnostic/test access to the shared world (mailboxes, abort flag).
  World& world() noexcept { return *world_; }

 private:
  int nranks_;
  std::chrono::milliseconds recv_timeout_ = World::default_recv_timeout();
  std::shared_ptr<World> world_;
};

}  // namespace scaffe::mpi
