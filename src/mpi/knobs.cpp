#include "mpi/knobs.h"

#include <cstdlib>
#include <limits>

#include "mpi/world.h"
#include "util/bytes.h"

namespace scaffe::mpi {

std::size_t parse_bytes_knob(const std::string& knob, const std::string& text,
                             const std::string& expected) {
  const std::size_t parsed = util::parse_bytes(text);
  if (parsed == 0) {
    throw ConfigError(knob, text, "is not a byte size " + expected);
  }
  return parsed;
}

std::uint32_t parse_count_knob(const std::string& knob, const std::string& text) {
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' ||
      parsed > std::numeric_limits<std::uint32_t>::max()) {
    throw ConfigError(knob, text, "is not a non-negative count");
  }
  return static_cast<std::uint32_t>(parsed);
}

}  // namespace scaffe::mpi
