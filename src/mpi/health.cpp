// HealthMonitor: heartbeat sending/draining, miss-count suspicion, and
// straggler flagging. See the protocol comment in health.h.
#include "mpi/health.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "mpi/knobs.h"
#include "util/fault.h"

namespace scaffe::mpi {

HealthConfig HealthConfig::from_env() {
  HealthConfig config;
  if (const char* env = std::getenv("SCAFFE_HEARTBEAT_MS")) {
    config.interval = std::chrono::milliseconds(
        std::max<std::size_t>(1, parse_count_knob("SCAFFE_HEARTBEAT_MS", env)));
  }
  if (const char* env = std::getenv("SCAFFE_HEARTBEAT_MISS_LIMIT")) {
    config.miss_limit = static_cast<int>(
        std::max<std::size_t>(1, parse_count_knob("SCAFFE_HEARTBEAT_MISS_LIMIT", env)));
  }
  if (const char* env = std::getenv("SCAFFE_STRAGGLER_FACTOR")) {
    config.straggler_factor = static_cast<int>(
        std::max<std::size_t>(1, parse_count_knob("SCAFFE_STRAGGLER_FACTOR", env)));
  }
  return config;
}

ContextId HealthMonitor::health_context_for(ContextId comm_context) {
  // Same avalanche the mailbox uses for key hashing, salted so the health
  // context can never equal a context produced by the split/dup/generation
  // chain for any realistic input (63-bit collision odds, same assumption
  // context allocation itself makes).
  std::uint64_t x = static_cast<std::uint64_t>(comm_context) ^ 0x48454152544231ULL;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<ContextId>(x >> 1);  // keep it positive
}

HealthMonitor::HealthMonitor(Comm& comm, HealthConfig config)
    : comm_(comm),
      config_(config),
      health_context_(health_context_for(comm.context())),
      start_(std::chrono::steady_clock::now()) {
  peers_.resize(static_cast<std::size_t>(comm_.size()));
  for (int r = 0; r < comm_.size(); ++r) {
    peers_[static_cast<std::size_t>(r)].last_heard = start_;
  }
  thread_ = std::thread([this] { pump(); });
}

HealthMonitor::~HealthMonitor() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthMonitor::record_step(double latency_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  own_latency_ms_ =
      own_latency_ms_ < 0.0 ? latency_ms : 0.2 * latency_ms + 0.8 * own_latency_ms_;
}

void HealthMonitor::poll() const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (suspicion_.has_value()) throw *suspicion_;
  }
  // The world may have aborted for a reason another rank owns (its monitor's
  // suspicion, a crash, ...). Raising AbortError here mirrors what any
  // blocked receive would do, so polling loops unwind instead of spinning.
  if (comm_.world_->aborted.load()) throw AbortError();
}

bool HealthMonitor::suspected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suspicion_.has_value();
}

HealthReport HealthMonitor::report() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  HealthReport out;
  out.heartbeats_sent = sent_;
  out.heartbeats_received = received_;
  if (suspicion_.has_value()) out.suspected_world_rank = suspicion_->world_rank();
  std::vector<double> known;
  for (int r = 0; r < comm_.size(); ++r) {
    const PeerState& state = peers_[static_cast<std::size_t>(r)];
    PeerHealth peer;
    peer.rank = r;
    peer.world_rank = comm_.group_[static_cast<std::size_t>(r)];
    if (r == comm_.rank()) {
      peer.heard = true;
      peer.step_latency_ms = own_latency_ms_;
    } else {
      peer.heard = state.heard;
      peer.last_seq = state.last_seq;
      peer.step_latency_ms = state.step_latency_ms;
      peer.silent_for = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - state.last_heard);
      peer.straggler = state.straggler;
      if (state.straggler) out.straggler_world_ranks.push_back(peer.world_rank);
    }
    if (peer.step_latency_ms >= 0.0) known.push_back(peer.step_latency_ms);
    out.peers.push_back(peer);
  }
  if (!known.empty()) {
    std::sort(known.begin(), known.end());
    out.median_step_latency_ms = known[known.size() / 2];
  }
  return out;
}

void HealthMonitor::pump() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      stop_cv_.wait_for(lock, config_.interval, [this] { return stop_; });
      if (stop_) return;
    }
    tick(std::chrono::steady_clock::now());
  }
}

void HealthMonitor::tick(std::chrono::steady_clock::time_point now) {
  // A dead world needs no heartbeats, and try_recv would throw AbortError
  // anyway: keep the thread parked until destruction.
  if (comm_.world_->aborted.load()) return;
  try {
    send_heartbeats();
    drain_heartbeats();
  } catch (const AbortError&) {
    return;  // world died mid-tick; the rank body surfaces it via poll()
  }
  scan(now);
}

void HealthMonitor::send_heartbeats() {
  auto& injector = util::FaultInjector::instance();
  // Heartbeat faults are consulted HERE, per tick, not per peer: a censored
  // rank goes dark to everyone at once (a wedged NIC, not a lossy link).
  if (injector.active()) {
    const util::MessageFault fault = injector.on_heartbeat(comm_.world_rank());
    if (fault.delay.count() > 0) std::this_thread::sleep_for(fault.delay);
    if (fault.drop) return;
  }
  Heartbeat beat;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    beat.seq = ++sent_;
    beat.step_latency_ms = own_latency_ms_;
  }
  const auto bytes = std::as_bytes(std::span<const Heartbeat>(&beat, 1));
  for (int peer = 0; peer < comm_.size(); ++peer) {
    if (peer == comm_.rank()) continue;
    comm_.peer_mailbox(peer).deliver_oob(health_context_, comm_.generation(),
                                         comm_.rank(), kHeartbeatTag, bytes);
  }
}

void HealthMonitor::drain_heartbeats() {
  const auto now = std::chrono::steady_clock::now();
  Payload payload;
  for (int peer = 0; peer < comm_.size(); ++peer) {
    if (peer == comm_.rank()) continue;
    // Generation-matched drain: a heartbeat stamped with a dead epoch's
    // generation can never pop here — the zombie stays silent to this world.
    while (comm_.mailbox().try_recv(health_context_, comm_.generation(), peer,
                                    kHeartbeatTag, payload)) {
      if (payload.size() != sizeof(Heartbeat)) continue;  // never sent by us
      Heartbeat beat;
      std::memcpy(&beat, payload.bytes().data(), sizeof(Heartbeat));
      std::lock_guard<std::mutex> lock(mutex_);
      PeerState& state = peers_[static_cast<std::size_t>(peer)];
      state.heard = true;
      state.last_seq = std::max(state.last_seq, beat.seq);
      state.step_latency_ms = beat.step_latency_ms;
      state.last_heard = now;
      ++received_;
    }
  }
}

void HealthMonitor::scan(std::chrono::steady_clock::time_point now) {
  const std::chrono::milliseconds threshold = config_.suspicion_threshold();
  bool confirm = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!suspicion_.has_value()) {
      for (int peer = 0; peer < comm_.size(); ++peer) {
        if (peer == comm_.rank()) continue;
        const PeerState& state = peers_[static_cast<std::size_t>(peer)];
        const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
            now - state.last_heard);
        if (silent <= threshold) continue;
        suspicion_.emplace(health_context_, peer,
                           comm_.group_[static_cast<std::size_t>(peer)],
                           state.last_seq, silent, comm_.generation());
        confirm = true;
        break;
      }
    }
    // Straggler flags are sticky and advisory: computed against the median
    // of the latencies known right now (own + peer-reported EWMAs).
    std::vector<double> known;
    if (own_latency_ms_ >= 0.0) known.push_back(own_latency_ms_);
    for (int peer = 0; peer < comm_.size(); ++peer) {
      if (peer == comm_.rank()) continue;
      const double latency = peers_[static_cast<std::size_t>(peer)].step_latency_ms;
      if (latency >= 0.0) known.push_back(latency);
    }
    if (known.size() >= 2) {
      std::sort(known.begin(), known.end());
      const double median = known[known.size() / 2];
      if (median > 0.0) {
        for (int peer = 0; peer < comm_.size(); ++peer) {
          if (peer == comm_.rank()) continue;
          PeerState& state = peers_[static_cast<std::size_t>(peer)];
          if (state.step_latency_ms > config_.straggler_factor * median) {
            state.straggler = true;
          }
        }
      }
    }
  }
  // Confirmed suspicion tears the world down NOW: ranks blocked deep inside
  // a collective receive unwind with AbortError in O(heartbeat interval)
  // instead of waiting out the receive deadline; their poll() (and this
  // rank's) converts the abort into the typed SuspectError.
  if (confirm) comm_.world_->abort();
}

}  // namespace scaffe::mpi
