// scmpi internals: the in-process "cluster" shared by all rank threads.
//
// Every rank is a std::thread; a Mailbox per destination rank holds tagged
// messages with MPI-style (source, tag, context) matching in arrival order.
//
// Matching/wakeup invariants (Mailbox):
//  - Messages match on exact (context, src, tag) — or kAnySource for src —
//    in arrival order; arrival order per (src, context) pair is the sender's
//    program order (MPI non-overtaking), because delivery appends under the
//    mailbox mutex and each sender delivers from one thread at a time per
//    ordered stream.
//  - Matching is INDEXED: envelopes live in per-(context, generation, src,
//    tag) FIFO queues in a hash map, so an exact-match receive is O(1)
//    regardless of how much unrelated mail is pending (the old single-list
//    scan was O(n) under one mutex). kAnySource receives consult a lazily
//    built per-(context, generation, tag) arrival-order index; stale entries
//    (consumed by exact receives) are skipped lazily via the per-envelope
//    arrival stamp.
//  - Wakeups are TARGETED: every blocked receiver registers a Waiter keyed by
//    its match predicate and sleeps on the waiter's own condition variable.
//    Delivery notifies exactly the waiters whose predicate the new message
//    matches — no broadcast wakeups, no lost-wakeup races between receivers
//    filtering on different predicates. interrupt() (abort, shutdown) is the
//    control-path exception: it wakes every registered waiter so each
//    blocked thread re-checks the abort flag.
//  - Zero-copy rendezvous: a receiver that blocks first POSTS its
//    destination (recv_into) or accumulator (recv_reduce) in the waiter.
//    A matching sender claims the posted waiter and copies (or
//    reduce-accumulates) ONCE, straight from its source buffer into the
//    receiver's memory — no intermediate payload is ever materialized. The
//    claim is forbidden while queued mail for the same key exists
//    (non-overtaking), and a claimed waiter cannot be abandoned: on timeout
//    or abort the receiver waits for the in-flight fill to finish first.
//  - Credit-based flow control: every mailbox carries a byte budget
//    (SCAFFE_MAILBOX_BYTES) covering queued payload bytes plus credit
//    reserved by senders that are about to enqueue. A sender without credit
//    blocks with jittered exponential backoff — bounded by the receive
//    deadline, raising BackpressureError at expiry — until receivers drain
//    the queue past the low watermark (credit returns in batches, not per
//    pop) or a posted receive lets it complete zero-copy instead. Above the
//    eager limit this is a true RTS/CTS rendezvous: the sender's admission
//    loop is the RTS, a posted receive (recv_into / recv_reduce /
//    post_recv) is the CTS, and the transfer is the single claim copy. An
//    empty mailbox always admits one message regardless of size (the
//    progress overdraft), so the hard occupancy bound is
//    max(budget, largest single message). Budget 0 = flow control off.
//
// Membership generations (elastic worlds):
//  - A World persists across failures. Each (re)launch of rank bodies is a
//    new membership generation: World::begin_generation() bumps the epoch,
//    clears the abort flag, and purges stale mail. Every Envelope is stamped
//    with the sender's generation and a receive only matches envelopes of
//    its own generation, so a message sent in a dead epoch can NEVER be
//    delivered into a rebuilt world — even if it raced past the purge or a
//    context id collided. The generation is additionally woven into the base
//    ContextId of each epoch (see Runtime), so the context space of two
//    epochs is disjoint as well; the explicit generation match is the hard
//    fence, the context weave keeps tag-space bookkeeping collision-free.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mpi/payload.h"
#include "util/bytes.h"
#include "util/fault.h"
#include "util/stats.h"

namespace scaffe::mpi {

/// Context ids isolate communicators; tags isolate operations inside one.
using ContextId = std::int64_t;

/// Membership epoch of an elastic world. Bumped on every (re)launch of rank
/// bodies; messages from generation g are invisible to receives of any other
/// generation (the stale-epoch fence).
using Generation = std::uint64_t;

/// MPI_ANY_SOURCE analogue for matched receives.
inline constexpr int kAnySource = -1;

/// Thrown out of blocked receives when the world aborts (MPI_Abort
/// semantics): one rank's failure unblocks every other rank instead of
/// deadlocking the job.
class AbortError : public std::runtime_error {
 public:
  AbortError() : std::runtime_error("scmpi: world aborted by a failing rank") {}
};

/// Common base of every typed scmpi failure. Carries the origin of the
/// failing exchange — {context, src, tag, generation} — plus two policy
/// hooks so supervisors (core::train_with_recovery) stop special-casing
/// concrete error types:
///  - restartable(): whether relaunching the surviving ranks from the last
///    checkpoint can plausibly cure the failure (timeouts, backpressure,
///    suspicion, payload corruption — yes; protocol bugs and malformed
///    config — no, they would just fail again).
///  - suspect(): the communicator rank most likely responsible (the peer a
///    receive was blocked on, the silent rank a heartbeat monitor flagged),
///    or -1 when no single rank can be named. Victim selection indexes the
///    live-rank table with this.
class Error : public std::runtime_error {
 public:
  ContextId context() const noexcept { return context_; }
  int src() const noexcept { return src_; }
  int tag() const noexcept { return tag_; }
  Generation generation() const noexcept { return generation_; }

  /// True when a restart/shrink from the last checkpoint may cure this.
  virtual bool restartable() const noexcept { return false; }
  /// Communicator rank of the prime suspect, or -1 when unknown.
  virtual int suspect() const noexcept { return -1; }

 protected:
  Error(const std::string& what, ContextId context, int src, int tag,
        Generation generation)
      : std::runtime_error(what),
        context_(context),
        src_(src),
        tag_(tag),
        generation_(generation) {}

 private:
  ContextId context_;
  int src_;
  int tag_;
  Generation generation_;
};

/// Thrown when a tuning knob (environment variable) holds a value that
/// cannot mean anything: a typo'd SCAFFE_EAGER_LIMIT must fail loudly, not
/// silently fall back to the default and invalidate a benchmark run.
/// Never restartable: the environment would poison the relaunch too.
class ConfigError : public Error {
 public:
  ConfigError(const std::string& knob, const std::string& value, const std::string& why)
      : Error("scmpi config: " + knob + "=\"" + value + "\" " + why,
              /*context=*/-1, /*src=*/-1, /*tag=*/-1, /*generation=*/0),
        knob_(knob),
        value_(value) {}

  const std::string& knob() const noexcept { return knob_; }
  const std::string& value() const noexcept { return value_; }

 private:
  std::string knob_;
  std::string value_;
};

/// Snapshot of a mailbox's flow-control state at the moment a receive or a
/// credit wait failed, attached to TimeoutError and BackpressureError so a
/// chaos-run failure explains itself: was the link idle (dead peer) or
/// backed up (overload)?
struct FlowDiagnostics {
  std::size_t queued_bytes = 0;      ///< queued + reserved payload bytes in the mailbox
  std::size_t key_queued_bytes = 0;  ///< bytes queued for the failing (context,src,tag)
  std::size_t budget_bytes = 0;      ///< configured mailbox budget (0 = unbounded)
  std::size_t credit_bytes = 0;      ///< remaining credit (budget - occupancy)
  int credit_waiters = 0;            ///< senders blocked waiting for credit

  std::string describe() const {
    return " [mailbox: " + util::fmt_bytes(queued_bytes) + " queued (" +
           util::fmt_bytes(key_queued_bytes) + " for this key), budget " +
           (budget_bytes == 0 ? std::string("unbounded") : util::fmt_bytes(budget_bytes)) +
           ", credit " + util::fmt_bytes(credit_bytes) + ", " +
           std::to_string(credit_waiters) + " sender(s) credit-blocked]";
  }
};

/// Thrown when a matched receive exceeds the world's receive deadline: a
/// silent hang (dead peer, dropped message, deadlocked exchange) becomes a
/// typed error naming exactly what the receiver was blocked on — including
/// the mailbox's queued-bytes/credit state, so an overload-induced timeout
/// is distinguishable from a dead peer. Collectives inherit the deadline
/// because they are built from matched receives.
class TimeoutError : public Error {
 public:
  TimeoutError(ContextId context, int src, int tag, std::chrono::milliseconds deadline,
               Generation generation = 0)
      : TimeoutError(context, src, tag, deadline, FlowDiagnostics{}, /*with_flow=*/false,
                     generation) {}

  TimeoutError(ContextId context, int src, int tag, std::chrono::milliseconds deadline,
               const FlowDiagnostics& flow, Generation generation = 0)
      : TimeoutError(context, src, tag, deadline, flow, /*with_flow=*/true, generation) {}

  std::chrono::milliseconds deadline() const noexcept { return deadline_; }
  const FlowDiagnostics& flow() const noexcept { return flow_; }

  bool restartable() const noexcept override { return true; }
  /// The peer the receive was blocked on — the likely-dead rank.
  int suspect() const noexcept override { return src() == kAnySource ? -1 : src(); }

 private:
  TimeoutError(ContextId context, int src, int tag, std::chrono::milliseconds deadline,
               const FlowDiagnostics& flow, bool with_flow, Generation generation)
      : Error("scmpi: receive timed out after " +
                  std::to_string(deadline.count()) + "ms (src=" +
                  (src == kAnySource ? std::string("any") : std::to_string(src)) +
                  ", tag=" + std::to_string(tag) +
                  ", context=" + std::to_string(context) + ")" +
                  (with_flow ? flow.describe() : std::string()),
              context, src, tag, generation),
        deadline_(deadline),
        flow_(flow) {}

  std::chrono::milliseconds deadline_;
  FlowDiagnostics flow_;
};

/// Thrown when a sender exhausts the receive deadline while blocked for
/// mailbox credit: the destination stayed over budget for the whole wait (a
/// receiver too slow — or dead — under incast overload). Carries the same
/// flow snapshot as TimeoutError plus the message that could not be
/// admitted. With no deadline configured the sender waits forever, exactly
/// like a blocked receive.
class BackpressureError : public Error {
 public:
  BackpressureError(ContextId context, int src, int dst, int tag,
                    std::size_t message_bytes, std::chrono::milliseconds deadline,
                    const FlowDiagnostics& flow, Generation generation = 0)
      : Error("scmpi: send blocked on exhausted mailbox credit for " +
                  std::to_string(deadline.count()) + "ms (" +
                  util::fmt_bytes(message_bytes) + " " + std::to_string(src) +
                  "->" + std::to_string(dst) + ", tag=" + std::to_string(tag) +
                  ", context=" + std::to_string(context) + ")" + flow.describe(),
              context, src, tag, generation),
        dst_(dst),
        message_bytes_(message_bytes),
        deadline_(deadline),
        flow_(flow) {}

  int dst() const noexcept { return dst_; }
  std::size_t message_bytes() const noexcept { return message_bytes_; }
  std::chrono::milliseconds deadline() const noexcept { return deadline_; }
  const FlowDiagnostics& flow() const noexcept { return flow_; }

  bool restartable() const noexcept override { return true; }
  // No suspect(): dst_ is a world rank (the overloaded mailbox owner), not a
  // communicator rank, so the base's -1 ("no single nameable rank") stands.

 private:
  int dst_;
  std::size_t message_bytes_;
  std::chrono::milliseconds deadline_;
  FlowDiagnostics flow_;
};

/// Thrown when a matched message's payload size disagrees with the
/// receiver's buffer: a protocol error naming exactly which exchange broke
/// and by how much (the TimeoutError of size mismatches).
class TransportError : public Error {
 public:
  TransportError(ContextId context, int src, int tag, std::size_t expected_bytes,
                 std::size_t actual_bytes, Generation generation = 0)
      : Error("scmpi recv: size mismatch (expected " +
                  std::to_string(expected_bytes) + " bytes, got " +
                  std::to_string(actual_bytes) + "; src=" +
                  (src == kAnySource ? std::string("any") : std::to_string(src)) +
                  ", tag=" + std::to_string(tag) +
                  ", context=" + std::to_string(context) + ")",
              context, src, tag, generation),
        expected_bytes_(expected_bytes),
        actual_bytes_(actual_bytes) {}

  std::size_t expected_bytes() const noexcept { return expected_bytes_; }
  std::size_t actual_bytes() const noexcept { return actual_bytes_; }

  // Not restartable: a size mismatch is a protocol bug in the exchange
  // itself; relaunching the same code would hit it again.

 private:
  std::size_t expected_bytes_;
  std::size_t actual_bytes_;
};

/// Raised by the HealthMonitor when a peer's heartbeats have been silent for
/// more than miss_limit × interval: the proactive (O(heartbeat interval))
/// form of the failure a blocked receive would only surface at the full
/// recv deadline. `rank` is the communicator rank (indexes the supervisor's
/// live table), `world_rank` the stable world identity, `last_seq` the
/// highest heartbeat sequence heard (0 = never heard).
class SuspectError : public Error {
 public:
  SuspectError(ContextId context, int rank, int world_rank, std::uint64_t last_seq,
               std::chrono::milliseconds silent_for, Generation generation)
      : Error("scmpi health: rank " + std::to_string(rank) + " (world rank " +
                  std::to_string(world_rank) + ") silent for " +
                  std::to_string(silent_for.count()) + "ms (last heartbeat seq " +
                  std::to_string(last_seq) + ", generation " +
                  std::to_string(generation) + ")",
              context, rank, /*tag=*/0, generation),
        world_rank_(world_rank),
        last_seq_(last_seq),
        silent_for_(silent_for) {}

  int rank() const noexcept { return src(); }
  int world_rank() const noexcept { return world_rank_; }
  std::uint64_t last_seq() const noexcept { return last_seq_; }
  std::chrono::milliseconds silent_for() const noexcept { return silent_for_; }

  bool restartable() const noexcept override { return true; }
  int suspect() const noexcept override { return rank(); }

 private:
  int world_rank_;
  std::uint64_t last_seq_;
  std::chrono::milliseconds silent_for_;
};

/// Raised when a payload's CRC-32 stamp (SCAFFE_MSG_CRC=1) does not match
/// its bytes at receive time — a queued envelope whose stamp disagrees, or a
/// zero-copy claim whose destination re-checksum disagrees after the fill.
/// The message was corrupted between materialization (or the claim copy) and
/// delivery, and is rejected instead of handed to the application.
/// Restartable — the checkpointed state is upstream of the corrupt exchange.
class IntegrityError : public Error {
 public:
  IntegrityError(ContextId context, int src, int tag, Generation generation,
                 std::uint32_t expected_crc, std::uint32_t actual_crc, std::size_t bytes)
      : Error("scmpi recv: payload CRC mismatch (stamped " +
                  std::to_string(expected_crc) + ", computed " +
                  std::to_string(actual_crc) + " over " + std::to_string(bytes) +
                  " bytes; src=" + std::to_string(src) + ", tag=" + std::to_string(tag) +
                  ", context=" + std::to_string(context) + ")",
              context, src, tag, generation),
        expected_crc_(expected_crc),
        actual_crc_(actual_crc),
        bytes_(bytes) {}

  std::uint32_t expected_crc() const noexcept { return expected_crc_; }
  std::uint32_t actual_crc() const noexcept { return actual_crc_; }
  std::size_t bytes() const noexcept { return bytes_; }

  bool restartable() const noexcept override { return true; }
  int suspect() const noexcept override { return src(); }

 private:
  std::uint32_t expected_crc_;
  std::uint32_t actual_crc_;
  std::size_t bytes_;
};

struct Envelope {
  ContextId context;
  Generation generation = 0;  // sender's membership epoch
  int src;
  int tag;
  Payload payload;
  std::uint64_t seq = 0;  // mailbox arrival stamp (assigned by the mailbox)
  std::uint32_t crc = 0;  // CRC-32 of the payload at send time (SCAFFE_MSG_CRC)
  bool has_crc = false;   // crc is valid; receives verify before delivering
};

/// Transport tuning shared by every mailbox of a World. Atomics so tests and
/// benches can flip paths between runs of a persistent world.
struct TransportConfig {
  /// Messages of at most this many bytes take the eager path (pooled staging
  /// copy); larger ones take the rendezvous path (shared view / posted
  /// single copy). SCAFFE_EAGER_LIMIT: a byte size ("64K", "1M", "0"), or
  /// "auto" to calibrate the crossover at Runtime startup. Default 64 KiB.
  std::atomic<std::size_t> eager_limit{default_eager_limit()};

  /// Posted-receive claims (single sender→destination copy / fused reduce).
  std::atomic<bool> zero_copy{default_zero_copy()};

  /// Recycle eager payload buffers through util::MemoryRegistry. When false
  /// every message allocates fresh (the pre-pool "legacy" transport).
  std::atomic<bool> pooled_eager{default_zero_copy()};

  /// Per-destination mailbox byte budget (queued + reserved payload bytes):
  /// the credit window receivers grant senders. Senders without credit block
  /// with jittered exponential backoff until the queue drains (bounded by
  /// the receive deadline → BackpressureError). SCAFFE_MAILBOX_BYTES: a byte
  /// size, or "0"/"off"/"unlimited" to disable flow control (the unbounded
  /// legacy behavior). Default 1 GiB — far above any healthy working set,
  /// so only genuine overload ever blocks a sender.
  std::atomic<std::size_t> mailbox_bytes{default_mailbox_bytes()};

  /// Initial credit-backoff slice in µs (SCAFFE_CREDIT_BACKOFF_US, default
  /// 50). Doubles per denied round up to credit_backoff_max_us, with ±25%
  /// deterministic per-link jitter so retry storms decorrelate.
  std::atomic<std::uint32_t> credit_backoff_us{default_credit_backoff_us()};

  /// Backoff slice ceiling in µs (SCAFFE_CREDIT_BACKOFF_MAX_US, default
  /// 2000). Also the worst-case extra latency of watermark-batched credit
  /// returns: a blocked sender re-checks at least this often.
  std::atomic<std::uint32_t> credit_backoff_max_us{default_credit_backoff_max_us()};

  /// End-to-end integrity stamping (SCAFFE_MSG_CRC=1), covering every
  /// delivery path: queued payloads — eager and rendezvous alike — carry a
  /// sender-side CRC-32 stamp that each queue-consuming receive verifies,
  /// and zero-copy posted claims re-checksum the receiver's destination
  /// after the fill against a stamp of the sender's buffer. Mismatch raises
  /// IntegrityError on the receiving rank. Default off.
  std::atomic<bool> msg_crc{default_msg_crc()};

  /// Largest accepted SCAFFE_EAGER_LIMIT; bigger values are clamped (an
  /// eager copy beyond this is certainly slower than rendezvous).
  static constexpr std::size_t kMaxEagerLimit = std::size_t{1} << 30;

  /// Default mailbox budget when SCAFFE_MAILBOX_BYTES is unset.
  static constexpr std::size_t kDefaultMailboxBytes = std::size_t{1} << 30;

  /// Parses SCAFFE_EAGER_LIMIT. Throws ConfigError on non-numeric or
  /// negative values instead of silently falling back; "auto" and unset
  /// yield the 64 KiB default (Runtime replaces it after calibration).
  static std::size_t default_eager_limit();
  /// True when SCAFFE_EAGER_LIMIT=auto: Runtime calibrates the crossover.
  static bool default_eager_auto();
  static bool default_zero_copy();  // false when SCAFFE_TRANSPORT=legacy
  /// Parses SCAFFE_MAILBOX_BYTES (ConfigError on malformed text).
  static std::size_t default_mailbox_bytes();
  static std::uint32_t default_credit_backoff_us();
  static std::uint32_t default_credit_backoff_max_us();
  /// Parses SCAFFE_MSG_CRC ("1"/"on" = stamp+verify, unset/"0"/"off" = off;
  /// anything else is a ConfigError).
  static bool default_msg_crc();
};

/// One per destination rank. Messages match on (context, generation, src,
/// tag) in arrival order (MPI non-overtaking within a (src, context) pair).
/// See the matching/wakeup invariants in the header comment.
class Mailbox {
 public:
  explicit Mailbox(int owner_rank = 0) : owner_rank_(owner_rank) {}

  /// Delivers one pre-materialized envelope. Consults the process-wide
  /// FaultInjector first: an injected delay sleeps the sender (modelling a
  /// slow link / straggler sender), an injected drop discards the envelope
  /// without delivery. A matching posted receive is filled directly;
  /// otherwise the envelope is queued.
  void push(Envelope envelope);

  /// Delivers `data` from the sender's buffer: fault injection, then the
  /// posted-receive single-copy path, else materializes a payload (pooled
  /// below the eager limit, shared view above) and queues it. This is the
  /// Comm::send_bytes entry point.
  void deliver(ContextId context, Generation generation, int src, int tag,
               std::span<const std::byte> data);

  /// First half of deliver(): fault injection plus the posted-receive claim.
  /// Returns true when the message is fully handled (claimed or dropped);
  /// on false the caller MUST queue a payload itself (enqueue_shared) —
  /// the per-link fault decision has already been consumed.
  bool deliver_direct(ContextId context, Generation generation, int src, int tag,
                      std::span<const std::byte> data);

  /// Queues a rendezvous payload sharing `data` (no copy, no fault check —
  /// pair with deliver_direct). Broadcast-style fan-out stamps one shared
  /// buffer into every destination's envelope.
  void enqueue_shared(ContextId context, Generation generation, int src, int tag,
                      std::shared_ptr<const std::byte[]> data, std::size_t size);

  /// Out-of-band delivery for the health plane: NO fault-injection consult
  /// and NO posted-claim attempt — the message goes through credit admission
  /// straight into the queue. Heartbeats must not consume the per-link fault
  /// ordinals that make chaos message schedules deterministic, and must not
  /// steal posted receives belonging to data traffic on a colliding key.
  void deliver_oob(ContextId context, Generation generation, int src, int tag,
                   std::span<const std::byte> data);

  /// Blocking matched receive returning the payload. `src` may be
  /// kAnySource; the actual sender is written to *out_src when non-null
  /// (arrival order wins ties). Only envelopes of the receiver's
  /// `generation` are eligible — stale-epoch mail is invisible, never
  /// consumed. Throws AbortError if the world aborts while waiting, and
  /// TimeoutError if a configured receive deadline expires first.
  Payload recv(ContextId context, Generation generation, int src, int tag,
               int* out_src = nullptr);

  /// Blocking matched receive straight into `dst` (exact source only).
  /// Posts the destination so a matching sender can fill it with a single
  /// copy. Throws TransportError on payload size mismatch.
  void recv_into(ContextId context, Generation generation, int src, int tag,
                 std::span<std::byte> dst);

  /// Blocking fused receive-reduce: element-wise adds the matched payload
  /// into `acc` (exact source only) without materializing a staging buffer.
  /// Posts the accumulator so a matching sender can reduce directly from its
  /// source buffer. Throws TransportError on payload size mismatch.
  void recv_reduce(ContextId context, Generation generation, int src, int tag,
                   std::span<float> acc);

  /// Handle for an asynchronously posted receive (see post_recv). Destroying
  /// an incomplete handle deregisters it, waiting out an in-flight fill
  /// first; `dst` must stay valid until then.
  class PostedRecv;

  /// Registers `dst` as a receive destination NOW, without blocking: a
  /// matching rendezvous sender claims it and fills with a single copy even
  /// though the receiver is off computing. This is the pre-posted half of
  /// Comm::irecv — the zero-copy claim path extended to non-blocking
  /// receives. Complete with posted_test()/posted_wait().
  std::unique_ptr<PostedRecv> post_recv(ContextId context, Generation generation, int src,
                                        int tag, std::span<std::byte> dst);

  /// Non-blocking completion attempt for a posted receive: true once `dst`
  /// holds the message (filled by a sender claim, or copied from a queued
  /// envelope here). Throws AbortError after a world abort and
  /// TransportError on payload size mismatch.
  bool posted_test(PostedRecv& posted);

  /// Blocks until the posted receive completes. Timeout/abort semantics
  /// match recv_into.
  void posted_wait(PostedRecv& posted);

  /// Non-blocking probe-and-receive; false if no matching message yet.
  /// Throws AbortError once the world has aborted, so request polling loops
  /// (Request::test) raise instead of spinning forever.
  bool try_recv(ContextId context, Generation generation, int src, int tag,
                Payload& payload);

  /// Wakes every blocked receiver so it can observe the abort flag.
  void interrupt();

  void bind_abort_flag(const std::atomic<bool>* flag) noexcept { aborted_ = flag; }
  void bind_recv_timeout(const std::atomic<std::int64_t>* timeout_ms) noexcept {
    timeout_ms_ = timeout_ms;
  }
  void bind_transport(const TransportConfig* transport) noexcept {
    transport_ = transport;
  }

  /// Discards every message not belonging to `current` — dead-epoch mail is
  /// unmatchable anyway (the generation fence), this just reclaims it — and
  /// RETURNS the purged bytes as credit: senders blocked on a dead epoch's
  /// occupancy are woken so the next generation starts with a full window.
  /// Returns the number of stale envelopes dropped.
  std::size_t purge_stale(Generation current);

  /// Per-link flow-control occupancy and counters (see DESIGN.md "Credit
  /// flow control"). Gauges are instantaneous; counters are cumulative since
  /// the last reset_flow_stats().
  struct FlowStats {
    std::size_t queued_bytes = 0;          ///< payload bytes sitting in queues
    std::size_t reserved_bytes = 0;        ///< credit reserved, enqueue in flight
    std::size_t peak_occupancy_bytes = 0;  ///< high-water mark of queued+reserved
    std::uint64_t enqueued_messages = 0;   ///< envelopes that went through the queue
    std::uint64_t claimed_messages = 0;    ///< zero-copy CTS fills (no queue memory)
    std::uint64_t rts_handshakes = 0;      ///< rendezvous sends that posted an RTS
    std::uint64_t credit_waits = 0;        ///< sends that blocked on exhausted credit
    std::uint64_t credit_wait_us = 0;      ///< total µs senders spent credit-blocked
    std::uint64_t backpressure_timeouts = 0;  ///< BackpressureErrors raised

    void merge(const FlowStats& other) noexcept {
      queued_bytes += other.queued_bytes;
      reserved_bytes += other.reserved_bytes;
      peak_occupancy_bytes = std::max(peak_occupancy_bytes, other.peak_occupancy_bytes);
      enqueued_messages += other.enqueued_messages;
      claimed_messages += other.claimed_messages;
      rts_handshakes += other.rts_handshakes;
      credit_waits += other.credit_waits;
      credit_wait_us += other.credit_wait_us;
      backpressure_timeouts += other.backpressure_timeouts;
    }
  };
  FlowStats flow_stats() const;
  /// Clears the counters and restarts peak tracking from the current
  /// occupancy (bench/test phase boundaries).
  void reset_flow_stats();

 private:
  struct ExactKey {
    ContextId context;
    Generation generation;
    int src;
    int tag;
    bool operator==(const ExactKey&) const = default;
  };
  struct AnyKey {
    ContextId context;
    Generation generation;
    int tag;
    bool operator==(const AnyKey&) const = default;
  };
  static std::uint64_t hash_mix(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    return x ^ (x >> 33);
  }
  struct ExactKeyHash {
    std::size_t operator()(const ExactKey& k) const noexcept {
      std::uint64_t h = hash_mix(static_cast<std::uint64_t>(k.context));
      h = hash_mix(h ^ k.generation);
      h = hash_mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.src)) << 32 |
                        static_cast<std::uint32_t>(k.tag)));
      return static_cast<std::size_t>(h);
    }
  };
  struct AnyKeyHash {
    std::size_t operator()(const AnyKey& k) const noexcept {
      std::uint64_t h = hash_mix(static_cast<std::uint64_t>(k.context));
      h = hash_mix(h ^ k.generation);
      h = hash_mix(h ^ static_cast<std::uint32_t>(k.tag));
      return static_cast<std::size_t>(h);
    }
  };

  /// One blocked receiver. Probe waiters pull from the queue themselves;
  /// Copy/Reduce waiters additionally post a destination that a matching
  /// sender may claim and fill directly (the zero-copy rendezvous path).
  struct Waiter {
    enum class Kind { Probe, Copy, Reduce };
    explicit Waiter(Kind k) : kind(k) {}
    Kind kind;
    std::byte* dst = nullptr;     // Copy: destination bytes
    float* acc = nullptr;         // Reduce: accumulator floats
    std::size_t bytes = 0;        // expected payload size (Copy/Reduce)
    bool taken = false;           // a sender claimed this waiter, fill in flight
    bool done = false;            // fill complete; receiver may return
    bool integrity_failed = false;   // claim CRC mismatch; receiver raises
    std::uint32_t expected_crc = 0;  // stamp of the sender's buffer
    std::uint32_t actual_crc = 0;    // re-checksum after the fill
    std::condition_variable cv;   // targeted wakeup: only the owner sleeps here
  };

  /// Deregisters a posted receive that was never completed (handle
  /// destruction). A claimed waiter cannot be abandoned: waits for the
  /// in-flight fill to publish `done` first.
  void abandon_posted(PostedRecv& posted);

  bool aborted_now() const noexcept { return aborted_ != nullptr && aborted_->load(); }
  std::chrono::milliseconds current_timeout() const noexcept {
    return timeout_ms_ == nullptr ? std::chrono::milliseconds(0)
                                  : std::chrono::milliseconds(timeout_ms_->load());
  }
  const TransportConfig& transport() const noexcept;

  /// Fault injection for one message. Returns true when the message is
  /// dropped (delay sleeps inline first).
  bool apply_fault(int src, int tag);

  /// Sender admission — the credit/RTS gate every delivery passes through.
  /// Either claims a matching posted (Copy/Reduce) waiter — returning it,
  /// already marked taken, for the caller to fill via fill_claimed outside
  /// the lock — or reserves data.size() bytes of mailbox credit and returns
  /// nullptr, after which the caller MUST enqueue exactly one payload of
  /// that size. While credit is exhausted the sender blocks with jittered
  /// exponential backoff, re-checking for a posted receive each round; the
  /// receive deadline bounds the wait (BackpressureError at expiry, wait
  /// forever when no deadline is set). `allow_claim` enables the zero-copy
  /// CTS path; `cts_linger` bounds how long a rendezvous sender waits for a
  /// receive to be posted while credit is already free (the RTS linger).
  /// Claims refuse past queued mail of the same key (non-overtaking), past
  /// any-source interest, and on size/alignment mismatch — those messages
  /// must go through the queue.
  Waiter* admit_send(const ExactKey& key, std::span<const std::byte> data,
                     bool allow_claim, std::chrono::microseconds cts_linger);

  /// Fills a waiter claimed by admit_send (single copy or fused reduce,
  /// outside the mailbox lock) and publishes `done`. With SCAFFE_MSG_CRC on,
  /// stamps the sender's buffer and re-checksums the destination after the
  /// fill (Copy), or verifies a corruption-faulted staging copy before
  /// accumulating (Reduce); a mismatch sets the waiter's integrity fields
  /// for the receiver to raise.
  void fill_claimed(Waiter* target, int src, std::span<const std::byte> data);
  /// Raises IntegrityError when a completed claim recorded a CRC mismatch.
  void raise_claim_integrity(const Waiter& waiter, const ExactKey& key) const;

  // Credit accounting (all require mutex_). Occupancy = queued + reserved.
  std::size_t budget_bytes() const noexcept;
  bool credit_available_locked(std::size_t size) const noexcept;
  /// Removes `size` queued bytes and wakes credit waiters when occupancy
  /// falls to zero or crosses the low watermark (batched credit return).
  void release_queued_locked(std::size_t size);
  FlowDiagnostics flow_snapshot_locked(ContextId context, Generation generation, int src,
                                       int tag) const;
  std::chrono::microseconds backoff_slice(int src, unsigned attempt) const;

  Payload materialize(std::span<const std::byte> data) const;
  void enqueue_payload(const ExactKey& key, Payload payload, std::uint32_t crc = 0,
                       bool has_crc = false);
  /// CRC stamp decision for a payload about to be queued: returns true and
  /// fills `crc` when SCAFFE_MSG_CRC is on (eager and rendezvous alike).
  bool stamp_crc(std::span<const std::byte> data, std::uint32_t& crc) const;
  /// Consults the corrupt_payload fault and, when armed for this link, flips
  /// one byte of the (exclusively owned, eager) materialized payload.
  void apply_corruption(int src, Payload& payload) const;

  // The _locked helpers require mutex_ to be held.
  bool pop_exact_locked(const ExactKey& key, Envelope& out);
  bool pop_any_locked(const AnyKey& key, Envelope& out);
  void ensure_any_index_locked(const AnyKey& key);
  void register_waiter_locked(std::vector<Waiter*>& list, Waiter* waiter) {
    list.push_back(waiter);
  }
  static void unregister_waiter(std::vector<Waiter*>& list, Waiter* waiter);

  int owner_rank_;
  mutable std::mutex mutex_;
  /// Signalled when a Copy/Reduce waiter posts (the CTS) and when batched
  /// credit returns free budget — the two events a blocked sender waits on.
  std::condition_variable sender_cv_;
  std::uint64_t next_seq_ = 1;
  util::PeakGauge occupancy_;      // queued + reserved bytes vs the budget
  std::size_t queued_bytes_ = 0;   // bytes inside queues_
  std::size_t reserved_bytes_ = 0; // credit reserved by senders not yet enqueued
  int credit_waiters_ = 0;         // senders blocked in admit_send
  FlowStats counters_;             // cumulative flow counters (gauges filled on read)
  std::unordered_map<ExactKey, std::deque<Envelope>, ExactKeyHash> queues_;
  std::unordered_map<ExactKey, std::vector<Waiter*>, ExactKeyHash> waiters_;
  std::unordered_map<AnyKey, std::vector<Waiter*>, AnyKeyHash> any_waiters_;
  // Arrival-order index for kAnySource matching, built lazily per key the
  // first time an any-source receive shows interest; entries consumed by
  // exact receives are skipped lazily via the seq stamp.
  std::unordered_set<AnyKey, AnyKeyHash> any_interest_;
  std::unordered_map<AnyKey, std::deque<std::pair<std::uint64_t, int>>, AnyKeyHash>
      any_order_;
  const std::atomic<bool>* aborted_ = nullptr;
  const std::atomic<std::int64_t>* timeout_ms_ = nullptr;
  const TransportConfig* transport_ = nullptr;
};

/// The registered-but-not-yet-completed state of one pre-posted receive.
/// Owns the Waiter senders claim; all mutable state is guarded by the
/// mailbox mutex. Not movable: the mailbox holds a pointer to waiter_.
class Mailbox::PostedRecv {
 public:
  PostedRecv(const PostedRecv&) = delete;
  PostedRecv& operator=(const PostedRecv&) = delete;
  ~PostedRecv() { box_.abandon_posted(*this); }

 private:
  friend class Mailbox;
  PostedRecv(Mailbox& box, ContextId context, Generation generation, int src, int tag,
             std::span<std::byte> dst)
      : box_(box), key_{context, generation, src, tag}, dst_(dst),
        waiter_(Waiter::Kind::Copy) {
    waiter_.dst = dst.data();
    waiter_.bytes = dst.size();
  }

  Mailbox& box_;
  ExactKey key_;
  std::span<std::byte> dst_;
  Waiter waiter_;
  bool registered_ = true;  // waiter_ is in box_.waiters_ (guarded by its mutex)
  bool finished_ = false;   // completed (claim or queue); the handle is inert
};

/// Shared state for one Runtime: the mailboxes of all world ranks plus the
/// fault-tolerance and transport configuration every mailbox observes.
/// Persistent across membership generations: a failure does not destroy the
/// world, it ends the current generation; survivors relaunch under the next
/// one.
struct World {
  explicit World(int nranks, std::chrono::milliseconds recv_timeout = default_recv_timeout())
      : size(nranks), recv_timeout_ms(recv_timeout.count()) {
    mailboxes.reserve(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
      mailboxes.push_back(std::make_unique<Mailbox>(i));
      mailboxes.back()->bind_abort_flag(&aborted);
      mailboxes.back()->bind_recv_timeout(&recv_timeout_ms);
      mailboxes.back()->bind_transport(&transport);
    }
  }

  /// MPI_Abort: marks the world dead and unblocks every pending receive.
  void abort() {
    aborted.store(true);
    for (auto& mailbox : mailboxes) mailbox->interrupt();
  }

  /// Opens the next membership epoch: bumps the generation, clears the abort
  /// flag, and purges mail left over from dead epochs. Must only be called
  /// while no rank threads of the previous generation are alive (the Runtime
  /// joins them first).
  Generation begin_generation() {
    const Generation next = generation.fetch_add(1) + 1;
    aborted.store(false);
    for (auto& mailbox : mailboxes) mailbox->purge_stale(next);
    return next;
  }

  /// Aggregated flow stats over all mailboxes: byte gauges and counters sum;
  /// the peak is the worst single link (the budget is per link, so the
  /// per-link peak is what the budget bounds).
  Mailbox::FlowStats flow_stats() const {
    Mailbox::FlowStats total;
    for (const auto& mailbox : mailboxes) total.merge(mailbox->flow_stats());
    return total;
  }

  /// Restarts flow-stat counters and peak tracking on every mailbox.
  void reset_flow_stats() {
    for (auto& mailbox : mailboxes) mailbox->reset_flow_stats();
  }

  /// Default receive deadline: SCAFFE_RECV_TIMEOUT_MS, or 0 (wait forever).
  static std::chrono::milliseconds default_recv_timeout() {
    const char* env = std::getenv("SCAFFE_RECV_TIMEOUT_MS");
    if (env == nullptr) return std::chrono::milliseconds(0);
    const long ms = std::strtol(env, nullptr, 10);
    return std::chrono::milliseconds(ms > 0 ? ms : 0);
  }

  int size;  // maximal world size (mailbox count); generations may use fewer
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::atomic<bool> aborted{false};
  std::atomic<std::int64_t> recv_timeout_ms{0};  // 0 = no deadline
  std::atomic<Generation> generation{0};         // current membership epoch
  TransportConfig transport;                     // eager/rendezvous tuning
};

}  // namespace scaffe::mpi
