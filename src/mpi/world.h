// scmpi internals: the in-process "cluster" shared by all rank threads.
//
// Every rank is a std::thread; a Mailbox per destination rank holds tagged
// messages with MPI-style (source, tag, context) matching in arrival order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace scaffe::mpi {

/// Context ids isolate communicators; tags isolate operations inside one.
using ContextId = std::int64_t;

/// MPI_ANY_SOURCE analogue for matched receives.
inline constexpr int kAnySource = -1;

/// Thrown out of blocked receives when the world aborts (MPI_Abort
/// semantics): one rank's failure unblocks every other rank instead of
/// deadlocking the job.
class AbortError : public std::runtime_error {
 public:
  AbortError() : std::runtime_error("scmpi: world aborted by a failing rank") {}
};

struct Envelope {
  ContextId context;
  int src;
  int tag;
  std::vector<std::byte> payload;
};

/// One per destination rank. Messages match on (context, src, tag) in
/// arrival order (MPI non-overtaking within a (src, context) pair).
class Mailbox {
 public:
  void push(Envelope envelope) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      messages_.push_back(std::move(envelope));
    }
    cv_.notify_all();
  }

  /// Blocking matched receive. `src` may be kAnySource; the actual sender
  /// is written to *out_src when non-null (arrival order wins ties).
  /// Throws AbortError if the world aborts while waiting.
  std::vector<std::byte> recv(ContextId context, int src, int tag, int* out_src = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (aborted_ != nullptr && aborted_->load()) throw AbortError();
      for (auto it = messages_.begin(); it != messages_.end(); ++it) {
        if (it->context == context && (src == kAnySource || it->src == src) &&
            it->tag == tag) {
          std::vector<std::byte> payload = std::move(it->payload);
          if (out_src != nullptr) *out_src = it->src;
          messages_.erase(it);
          return payload;
        }
      }
      cv_.wait(lock);
    }
  }

  /// Wakes any blocked receiver so it can observe the abort flag.
  void interrupt() { cv_.notify_all(); }

  void bind_abort_flag(const std::atomic<bool>* flag) noexcept { aborted_ = flag; }

  /// Non-blocking probe-and-receive; false if no matching message yet.
  bool try_recv(ContextId context, int src, int tag, std::vector<std::byte>& payload) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = messages_.begin(); it != messages_.end(); ++it) {
      if (it->context == context && it->src == src && it->tag == tag) {
        payload = std::move(it->payload);
        messages_.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::list<Envelope> messages_;
  const std::atomic<bool>* aborted_ = nullptr;
};

/// Shared state for one Runtime: the mailboxes of all world ranks.
struct World {
  explicit World(int nranks) : size(nranks) {
    mailboxes.reserve(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
      mailboxes.push_back(std::make_unique<Mailbox>());
      mailboxes.back()->bind_abort_flag(&aborted);
    }
  }

  /// MPI_Abort: marks the world dead and unblocks every pending receive.
  void abort() {
    aborted.store(true);
    for (auto& mailbox : mailboxes) mailbox->interrupt();
  }

  int size;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::atomic<bool> aborted{false};
};

}  // namespace scaffe::mpi
