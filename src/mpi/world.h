// scmpi internals: the in-process "cluster" shared by all rank threads.
//
// Every rank is a std::thread; a Mailbox per destination rank holds tagged
// messages with MPI-style (source, tag, context) matching in arrival order.
//
// Matching/wakeup invariants (Mailbox):
//  - Messages match on exact (context, src, tag) — or kAnySource for src —
//    in arrival order; arrival order per (src, context) pair is the sender's
//    program order (MPI non-overtaking), because push() appends under the
//    mailbox mutex and each sender pushes from one thread at a time per
//    ordered stream.
//  - A rank may have SEVERAL threads blocked in recv() on the same mailbox
//    at once (the main thread plus NBC progression threads), each filtering
//    on a different (context, src, tag) predicate. A newly pushed message
//    can satisfy at most ONE receiver (the first matcher consumes it), but
//    push() cannot tell WHICH waiter matches: with more than one waiter it
//    must notify_all, else the one matching waiter might stay asleep while a
//    non-matching waiter absorbs the single notify and goes back to waiting.
//    With at most one waiter, notify_one is equivalent and cheaper — that is
//    the only condition under which push() may use it, and it is detected
//    via the exact waiter count maintained under the mailbox mutex.
//  - interrupt() is a control-path wakeup (abort, shutdown): it always
//    notifies all waiters so every blocked thread re-checks the abort flag.
//
// Membership generations (elastic worlds):
//  - A World persists across failures. Each (re)launch of rank bodies is a
//    new membership generation: World::begin_generation() bumps the epoch,
//    clears the abort flag, and purges stale mail. Every Envelope is stamped
//    with the sender's generation and a receive only matches envelopes of
//    its own generation, so a message sent in a dead epoch can NEVER be
//    delivered into a rebuilt world — even if it raced past the purge or a
//    context id collided. The generation is additionally woven into the base
//    ContextId of each epoch (see Runtime), so the context space of two
//    epochs is disjoint as well; the explicit generation match is the hard
//    fence, the context weave keeps tag-space bookkeeping collision-free.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/fault.h"

namespace scaffe::mpi {

/// Context ids isolate communicators; tags isolate operations inside one.
using ContextId = std::int64_t;

/// Membership epoch of an elastic world. Bumped on every (re)launch of rank
/// bodies; messages from generation g are invisible to receives of any other
/// generation (the stale-epoch fence).
using Generation = std::uint64_t;

/// MPI_ANY_SOURCE analogue for matched receives.
inline constexpr int kAnySource = -1;

/// Thrown out of blocked receives when the world aborts (MPI_Abort
/// semantics): one rank's failure unblocks every other rank instead of
/// deadlocking the job.
class AbortError : public std::runtime_error {
 public:
  AbortError() : std::runtime_error("scmpi: world aborted by a failing rank") {}
};

/// Thrown when a matched receive exceeds the world's receive deadline: a
/// silent hang (dead peer, dropped message, deadlocked exchange) becomes a
/// typed error naming exactly what the receiver was blocked on. Collectives
/// inherit the deadline because they are built from matched receives.
class TimeoutError : public std::runtime_error {
 public:
  TimeoutError(ContextId context, int src, int tag, std::chrono::milliseconds deadline)
      : std::runtime_error("scmpi: receive timed out after " +
                           std::to_string(deadline.count()) + "ms (src=" +
                           (src == kAnySource ? std::string("any") : std::to_string(src)) +
                           ", tag=" + std::to_string(tag) +
                           ", context=" + std::to_string(context) + ")"),
        context_(context),
        src_(src),
        tag_(tag),
        deadline_(deadline) {}

  ContextId context() const noexcept { return context_; }
  int src() const noexcept { return src_; }
  int tag() const noexcept { return tag_; }
  std::chrono::milliseconds deadline() const noexcept { return deadline_; }

 private:
  ContextId context_;
  int src_;
  int tag_;
  std::chrono::milliseconds deadline_;
};

struct Envelope {
  ContextId context;
  Generation generation = 0;  // sender's membership epoch
  int src;
  int tag;
  std::vector<std::byte> payload;
};

/// One per destination rank. Messages match on (context, src, tag) in
/// arrival order (MPI non-overtaking within a (src, context) pair).
class Mailbox {
 public:
  explicit Mailbox(int owner_rank = 0) : owner_rank_(owner_rank) {}

  /// Delivers one envelope. Consults the process-wide FaultInjector first:
  /// an injected delay sleeps the sender (modelling a slow link / straggler
  /// sender), an injected drop discards the envelope without delivery.
  void push(Envelope envelope) {
    auto& injector = util::FaultInjector::instance();
    if (injector.active()) {
      const util::MessageFault fault =
          injector.on_message(envelope.src, owner_rank_, envelope.tag);
      if (fault.delay.count() > 0) std::this_thread::sleep_for(fault.delay);
      if (fault.drop) return;
    }
    int waiters = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      messages_.push_back(std::move(envelope));
      waiters = waiters_;
    }
    // See the wakeup invariant in the header comment: one waiter is the only
    // case where a single notify provably reaches the matching receiver.
    if (waiters <= 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  /// Blocking matched receive. `src` may be kAnySource; the actual sender
  /// is written to *out_src when non-null (arrival order wins ties). Only
  /// envelopes of the receiver's `generation` are eligible — stale-epoch
  /// mail is invisible, never consumed.
  /// Throws AbortError if the world aborts while waiting, and TimeoutError
  /// if a configured receive deadline expires first.
  std::vector<std::byte> recv(ContextId context, Generation generation, int src, int tag,
                              int* out_src = nullptr) {
    const std::chrono::milliseconds timeout = timeout_ms_ == nullptr
                                                  ? std::chrono::milliseconds(0)
                                                  : std::chrono::milliseconds(timeout_ms_->load());
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    const auto matches = [&](const Envelope& envelope) {
      return envelope.context == context && envelope.generation == generation &&
             (src == kAnySource || envelope.src == src) && envelope.tag == tag;
    };
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (aborted_ != nullptr && aborted_->load()) throw AbortError();
      for (auto it = messages_.begin(); it != messages_.end(); ++it) {
        if (matches(*it)) {
          std::vector<std::byte> payload = std::move(it->payload);
          if (out_src != nullptr) *out_src = it->src;
          messages_.erase(it);
          return payload;
        }
      }
      ++waiters_;
      if (timeout.count() > 0) {
        const auto status = cv_.wait_until(lock, deadline);
        --waiters_;
        if (status == std::cv_status::timeout &&
            !(aborted_ != nullptr && aborted_->load())) {
          // Re-scan once: the message may have arrived in the wakeup race.
          for (auto it = messages_.begin(); it != messages_.end(); ++it) {
            if (matches(*it)) {
              std::vector<std::byte> payload = std::move(it->payload);
              if (out_src != nullptr) *out_src = it->src;
              messages_.erase(it);
              return payload;
            }
          }
          throw TimeoutError(context, src, tag, timeout);
        }
      } else {
        cv_.wait(lock);
        --waiters_;
      }
    }
  }

  /// Wakes any blocked receiver so it can observe the abort flag.
  void interrupt() { cv_.notify_all(); }

  void bind_abort_flag(const std::atomic<bool>* flag) noexcept { aborted_ = flag; }
  void bind_recv_timeout(const std::atomic<std::int64_t>* timeout_ms) noexcept {
    timeout_ms_ = timeout_ms;
  }

  /// Non-blocking probe-and-receive; false if no matching message yet.
  /// Throws AbortError once the world has aborted, so request polling loops
  /// (Request::test) raise instead of spinning forever.
  bool try_recv(ContextId context, Generation generation, int src, int tag,
                std::vector<std::byte>& payload) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (aborted_ != nullptr && aborted_->load()) throw AbortError();
    for (auto it = messages_.begin(); it != messages_.end(); ++it) {
      if (it->context == context && it->generation == generation && it->src == src &&
          it->tag == tag) {
        payload = std::move(it->payload);
        messages_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Discards every message not belonging to `current` — dead-epoch mail is
  /// unmatchable anyway (the generation fence), this just reclaims it.
  /// Returns the number of stale envelopes dropped.
  std::size_t purge_stale(Generation current) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t dropped = 0;
    for (auto it = messages_.begin(); it != messages_.end();) {
      if (it->generation != current) {
        it = messages_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

 private:
  int owner_rank_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::list<Envelope> messages_;
  int waiters_ = 0;  // threads blocked in recv(); guarded by mutex_
  const std::atomic<bool>* aborted_ = nullptr;
  const std::atomic<std::int64_t>* timeout_ms_ = nullptr;
};

/// Shared state for one Runtime: the mailboxes of all world ranks plus the
/// fault-tolerance configuration every mailbox observes. Persistent across
/// membership generations: a failure does not destroy the world, it ends the
/// current generation; survivors relaunch under the next one.
struct World {
  explicit World(int nranks, std::chrono::milliseconds recv_timeout = default_recv_timeout())
      : size(nranks), recv_timeout_ms(recv_timeout.count()) {
    mailboxes.reserve(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) {
      mailboxes.push_back(std::make_unique<Mailbox>(i));
      mailboxes.back()->bind_abort_flag(&aborted);
      mailboxes.back()->bind_recv_timeout(&recv_timeout_ms);
    }
  }

  /// MPI_Abort: marks the world dead and unblocks every pending receive.
  void abort() {
    aborted.store(true);
    for (auto& mailbox : mailboxes) mailbox->interrupt();
  }

  /// Opens the next membership epoch: bumps the generation, clears the abort
  /// flag, and purges mail left over from dead epochs. Must only be called
  /// while no rank threads of the previous generation are alive (the Runtime
  /// joins them first).
  Generation begin_generation() {
    const Generation next = generation.fetch_add(1) + 1;
    aborted.store(false);
    for (auto& mailbox : mailboxes) mailbox->purge_stale(next);
    return next;
  }

  /// Default receive deadline: SCAFFE_RECV_TIMEOUT_MS, or 0 (wait forever).
  static std::chrono::milliseconds default_recv_timeout() {
    const char* env = std::getenv("SCAFFE_RECV_TIMEOUT_MS");
    if (env == nullptr) return std::chrono::milliseconds(0);
    const long ms = std::strtol(env, nullptr, 10);
    return std::chrono::milliseconds(ms > 0 ? ms : 0);
  }

  int size;  // maximal world size (mailbox count); generations may use fewer
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::atomic<bool> aborted{false};
  std::atomic<std::int64_t> recv_timeout_ms{0};  // 0 = no deadline
  std::atomic<Generation> generation{0};         // current membership epoch
};

}  // namespace scaffe::mpi
