// Message payload storage for the scmpi transport.
//
// A Payload owns message bytes in one of two forms, matching the transport's
// two protocol paths (see DESIGN.md "Transport protocol"):
//
//  - *pooled* (eager path): an exclusively-owned util::MemBlock that recycles
//    into the process-wide MemoryRegistry when the payload dies — no
//    allocation per message once the registry shards are warm;
//  - *shared* (rendezvous path): an immutable, reference-counted byte view.
//    Broadcast-style multi-destination sends stamp the SAME view into every
//    envelope, so N receivers share one materialized buffer instead of N
//    sender-side copies.
//
// Either way the receive side reads straight out of the payload (copy-out or
// fused reduce); there is never a second staging hop.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <utility>

#include "util/memory_registry.h"

namespace scaffe::mpi {

class Payload {
 public:
  Payload() = default;

  /// Eager path: copy `data` into a block checked out of `registry`.
  /// Transfer-routed: the block is filled on the sending thread and released
  /// on the receiving one, so it must recycle through the global shard.
  static Payload copy_pooled(util::MemoryRegistry& registry, std::span<const std::byte> data) {
    Payload payload;
    payload.size_ = data.size();
    if (!data.empty()) {
      payload.pooled_ = registry.acquire(data.size(), util::BlockRoute::kTransfer);
      std::memcpy(payload.pooled_.data(), data.data(), data.size());
    }
    return payload;
  }

  /// Legacy path: copy `data` into a fresh heap block (never pooled).
  static Payload copy_heap(std::span<const std::byte> data) {
    Payload payload;
    payload.size_ = data.size();
    if (!data.empty()) {
      payload.pooled_ = util::MemBlock::heap(data.size());
      std::memcpy(payload.pooled_.data(), data.data(), data.size());
    }
    return payload;
  }

  /// Rendezvous path: adopt an immutable shared buffer (no copy).
  static Payload view(std::shared_ptr<const std::byte[]> data, std::size_t size) {
    Payload payload;
    payload.shared_ = std::move(data);
    payload.size_ = size;
    return payload;
  }

  /// Materializes `data` into a new shared buffer usable by view().
  static std::shared_ptr<const std::byte[]> make_shared_copy(
      std::span<const std::byte> data) {
    std::shared_ptr<std::byte[]> block(new std::byte[data.size()]);
    if (!data.empty()) std::memcpy(block.get(), data.data(), data.size());
    return block;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const std::byte* data() const noexcept {
    return shared_ ? shared_.get() : pooled_.data();
  }

  /// Mutable access — exclusively-owned (pooled/heap/resized) payloads only.
  std::byte* data() noexcept { return pooled_.data(); }

  std::span<const std::byte> bytes() const noexcept { return {data(), size_}; }

  /// (Re)allocates an exclusive heap block of `n` bytes (test/forgery helper
  /// keeping the old std::vector payload ergonomics: resize + data + memcpy).
  void resize(std::size_t n) {
    shared_.reset();
    pooled_ = util::MemBlock::heap(n);
    size_ = n;
  }

  void copy_to(std::span<std::byte> dst) const {
    if (size_ != 0) std::memcpy(dst.data(), data(), size_);
  }

 private:
  util::MemBlock pooled_;                      // exclusive storage (eager/legacy)
  std::shared_ptr<const std::byte[]> shared_;  // shared storage (rendezvous)
  std::size_t size_ = 0;
};

}  // namespace scaffe::mpi
