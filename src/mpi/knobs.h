// Shared validation for environment tuning knobs.
//
// Every byte-valued knob (SCAFFE_EAGER_LIMIT, SCAFFE_BUCKET_BYTES,
// SCAFFE_MAILBOX_BYTES) and count-valued knob (credit backoff slices) goes
// through these helpers so a typo'd value raises one consistently-shaped
// mpi::ConfigError naming the knob and the offending text — never a silent
// fallback that would invalidate a benchmark run. Callers keep their own
// keyword handling ("auto", "off", ...) and pass only the numeric remainder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace scaffe::mpi {

/// Parses `text` as a byte size via util::parse_bytes ("64K", "1M", "2G").
/// Throws ConfigError("<knob>", text, "is not a byte size <expected>") when
/// the text does not parse; `expected` lists the accepted spellings, e.g.
/// "(expected e.g. 64K, 1M, 0, or auto)".
std::size_t parse_bytes_knob(const std::string& knob, const std::string& text,
                             const std::string& expected);

/// Parses `text` as a non-negative decimal count (microsecond slices etc.).
/// Throws ConfigError on non-numeric or trailing garbage.
std::uint32_t parse_count_knob(const std::string& knob, const std::string& text);

}  // namespace scaffe::mpi
