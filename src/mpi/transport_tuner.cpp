#include "mpi/transport_tuner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "mpi/comm.h"

namespace scaffe::mpi {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_calibrating{false};

/// One-way effective bandwidth of a 2-rank ping-pong at `bytes` per message
/// under whatever eager limit `runtime` is currently pinned to.
double pingpong_gbps(Runtime& runtime, std::size_t bytes, int iters) {
  const std::size_t count = std::max<std::size_t>(bytes / sizeof(float), 1);
  double elapsed = 0;
  runtime.run([&](Comm& comm) {
    std::vector<float> ping(count, 1.0f);
    std::vector<float> pong(count);
    // Iteration -1 is warmup: primes the buffer pool and page tables.
    for (int i = -1; i < iters; ++i) {
      const auto start = Clock::now();
      if (comm.rank() == 0) {
        comm.send<float>(ping, 1, 1);
        comm.recv<float>(std::span<float>(pong), 1, 2);
      } else {
        comm.recv<float>(std::span<float>(pong), 0, 1);
        comm.send<float>(ping, 0, 2);
      }
      if (i >= 0 && comm.rank() == 0) {
        elapsed += std::chrono::duration<double>(Clock::now() - start).count();
      }
    }
  });
  const double one_way = elapsed / (2.0 * iters);
  return one_way > 0 ? static_cast<double>(count * sizeof(float)) / one_way / 1e9 : 0;
}

}  // namespace

bool calibration_in_progress() noexcept { return g_calibrating.load(); }

std::size_t TransportCalibration::pick_crossover(std::size_t lo, std::size_t hi) const {
  std::size_t crossover = hi;  // rendezvous never measured ahead: stay high
  for (const CalibrationPoint& point : points) {
    if (point.eager_gbps > 0 && point.rendezvous_gbps > point.eager_gbps) {
      crossover = point.bytes;
      break;
    }
  }
  return std::clamp(crossover, lo, hi);
}

TransportCalibration measure_transport_calibration(int iters) {
  struct Guard {
    Guard() { g_calibrating.store(true); }
    ~Guard() { g_calibrating.store(false); }
  } guard;

  TransportCalibration calibration;
  Runtime runtime(2);
  runtime.set_transport_mode(TransportMode::Tuned);
  runtime.set_recv_timeout(std::chrono::milliseconds(60000));
  constexpr std::size_t kSweepLo = std::size_t{4} << 10;
  constexpr std::size_t kSweepHi = std::size_t{1} << 20;
  for (std::size_t bytes = kSweepLo; bytes <= kSweepHi; bytes <<= 1) {
    // Fewer repetitions at larger sizes: equal total bytes per point.
    const int reps = static_cast<int>(std::clamp<std::size_t>(
        (static_cast<std::size_t>(iters) * kSweepLo * 4) / bytes, 2,
        static_cast<std::size_t>(iters)));
    CalibrationPoint point;
    point.bytes = bytes;
    runtime.set_eager_limit(kSweepHi * 2);  // every message eager
    point.eager_gbps = pingpong_gbps(runtime, bytes, reps);
    runtime.set_eager_limit(0);  // every message rendezvous
    point.rendezvous_gbps = pingpong_gbps(runtime, bytes, reps);
    calibration.points.push_back(point);
  }
  return calibration;
}

bool save_calibration(const TransportCalibration& calibration, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\n  \"calibrated\": true,\n  \"pingpong\": [\n");
  for (std::size_t i = 0; i < calibration.points.size(); ++i) {
    const CalibrationPoint& point = calibration.points[i];
    std::fprintf(out,
                 "    {\"bytes\": %zu, \"eager_gbps\": %.4f, \"rendezvous_gbps\": %.4f}%s\n",
                 point.bytes, point.eager_gbps, point.rendezvous_gbps,
                 i + 1 < calibration.points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

TransportCalibration load_calibration(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  TransportCalibration calibration;
  const std::size_t array_start = text.find("\"pingpong\"");
  if (array_start == std::string::npos) return {};
  const std::size_t open = text.find('[', array_start);
  const std::size_t close = text.find(']', array_start);
  if (open == std::string::npos || close == std::string::npos || close < open) return {};

  std::size_t pos = open;
  while (true) {
    const std::size_t row = text.find('{', pos);
    if (row == std::string::npos || row > close) break;
    const std::size_t row_end = text.find('}', row);
    if (row_end == std::string::npos || row_end > close) break;
    const std::string chunk = text.substr(row, row_end - row + 1);
    CalibrationPoint point;
    const auto field = [&chunk](const char* name, double& out_value) {
      const std::size_t at = chunk.find(name);
      if (at == std::string::npos) return false;
      const std::size_t colon = chunk.find(':', at);
      if (colon == std::string::npos) return false;
      out_value = std::strtod(chunk.c_str() + colon + 1, nullptr);
      return true;
    };
    double bytes = 0;
    if (field("\"bytes\"", bytes) && field("\"eager_gbps\"", point.eager_gbps) &&
        field("\"rendezvous_gbps\"", point.rendezvous_gbps) && bytes > 0) {
      point.bytes = static_cast<std::size_t>(bytes);
      calibration.points.push_back(point);
    }
    pos = row_end + 1;
  }
  std::sort(calibration.points.begin(), calibration.points.end(),
            [](const CalibrationPoint& a, const CalibrationPoint& b) {
              return a.bytes < b.bytes;
            });
  return calibration;
}

std::size_t resolve_auto_eager_limit(const std::string& path) {
  TransportCalibration calibration = load_calibration(path);
  if (calibration.empty()) {
    calibration = measure_transport_calibration();
    save_calibration(calibration, path);  // best effort; re-measure next time
  }
  return calibration.pick_crossover();
}

}  // namespace scaffe::mpi
