#include "coll/tuner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "coll/dbt.h"
#include "coll/sim_executor.h"

namespace scaffe::coll {

namespace {

int adaptive_chunks(std::size_t count) {
  const std::size_t bytes = count * sizeof(float);
  const std::size_t per_half_mib = bytes / (512 * util::kKiB);
  return static_cast<int>(std::clamp<std::size_t>(per_half_mib, 8, 64));
}

}  // namespace

Schedule Candidate::make_reduce(int nranks, std::size_t count) const {
  const int n = chunks > 0 ? chunks : adaptive_chunks(count);
  if (flat_binomial) return binomial_reduce(nranks, 0, count);
  if (flat_chain) return chain_reduce(nranks, 0, count, n);
  if (dbt) return dbt_reduce(nranks, 0, count, chunks);
  return hierarchical_reduce(nranks, count, chain_size, lower, upper, n);
}

Candidate Candidate::binomial() {
  Candidate c;
  c.name = "Bin";
  c.flat_binomial = true;
  return c;
}

Candidate Candidate::flat_chain_cand() {
  Candidate c;
  c.name = "Chain";
  c.flat_chain = true;
  return c;
}

Candidate Candidate::hier(LevelAlgo lower, LevelAlgo upper, int chain_size) {
  Candidate c;
  c.name = combo_name(lower, upper, chain_size);
  c.lower = lower;
  c.upper = upper;
  c.chain_size = chain_size;
  return c;
}

Candidate Candidate::dbt_cand() {
  Candidate c;
  c.name = "DBT";
  c.dbt = true;
  return c;
}

std::vector<Candidate> default_candidates() {
  std::vector<Candidate> candidates;
  candidates.push_back(Candidate::binomial());
  candidates.push_back(Candidate::flat_chain_cand());
  for (int k : {4, 8, 16}) {
    candidates.push_back(Candidate::hier(LevelAlgo::Chain, LevelAlgo::Binomial, k));
    candidates.push_back(Candidate::hier(LevelAlgo::Chain, LevelAlgo::Chain, k));
  }
  return candidates;
}

std::vector<Candidate> extended_candidates() {
  std::vector<Candidate> candidates = default_candidates();
  candidates.push_back(Candidate::dbt_cand());
  return candidates;
}

std::vector<std::size_t> default_size_grid() {
  std::vector<std::size_t> grid;
  for (std::size_t bytes = 4; bytes <= 256 * util::kMiB; bytes *= 4) grid.push_back(bytes);
  return grid;
}

std::size_t TuningTable::recommended_bucket_bytes() const {
  constexpr std::size_t kLo = 256 * util::kKiB;
  constexpr std::size_t kHi = 4 * util::kMiB;
  if (bucket_bytes_override_ > 0) return bucket_bytes_override_;
  if (entries_.size() < 2) return util::kMiB;
  return std::clamp(entries_[entries_.size() - 2].max_bytes, kLo, kHi);
}

std::size_t TuningTable::recommended_segment_bytes(std::size_t fallback) const {
  constexpr std::size_t kLo = 4 * util::kKiB;
  constexpr std::size_t kHi = 256 * util::kKiB;
  if (entries_.size() < 2) return fallback;
  return std::clamp(entries_.front().max_bytes, kLo, kHi);
}

const Candidate& TuningTable::choose(std::size_t bytes) const {
  assert(!entries_.empty());
  for (const auto& entry : entries_) {
    if (bytes <= entry.max_bytes) return entry.choice;
  }
  return entries_.back().choice;
}

TuningTable hr_tune(const net::ClusterSpec& cluster, int nranks, const ExecPolicy& policy,
                    std::vector<Candidate> candidates, std::vector<std::size_t> grid_bytes) {
  assert(!candidates.empty());
  assert(!grid_bytes.empty());
  std::sort(grid_bytes.begin(), grid_bytes.end());

  TuningTable table;
  for (std::size_t gi = 0; gi < grid_bytes.size(); ++gi) {
    const std::size_t bytes = grid_bytes[gi];
    const std::size_t count = std::max<std::size_t>(bytes / sizeof(float), 1);

    util::TimeNs best = std::numeric_limits<util::TimeNs>::max();
    const Candidate* winner = nullptr;
    for (const Candidate& candidate : candidates) {
      if (!candidate.flat_binomial && !candidate.flat_chain && !candidate.dbt &&
          candidate.chain_size >= nranks) {
        continue;  // degenerate hierarchy: a single group
      }
      const Schedule schedule = candidate.make_reduce(nranks, count);
      const SimResult result = simulate_schedule(schedule, cluster, policy);
      if (result.root_finish < best) {
        best = result.root_finish;
        winner = &candidate;
      }
    }
    assert(winner != nullptr);

    // Range boundary: geometric midpoint to the next grid size (open-ended
    // for the last entry).
    std::size_t max_bytes = std::numeric_limits<std::size_t>::max();
    if (gi + 1 < grid_bytes.size()) {
      const double mid = std::sqrt(static_cast<double>(bytes) *
                                   static_cast<double>(grid_bytes[gi + 1]));
      max_bytes = static_cast<std::size_t>(mid);
    }

    // Merge adjacent ranges won by the same candidate.
    if (!table.entries().empty() && table.entries().back().choice.name == winner->name) {
      TuningTable merged;
      for (std::size_t i = 0; i + 1 < table.entries().size(); ++i)
        merged.add(table.entries()[i]);
      TuningEntry last = table.entries().back();
      last.max_bytes = max_bytes;
      last.measured = best;
      merged.add(last);
      table = std::move(merged);
    } else {
      table.add(TuningEntry{max_bytes, *winner, best});
    }
  }
  return table;
}

Schedule hr_tuned_reduce(const TuningTable& table, int nranks, std::size_t count) {
  const Candidate& choice = table.choose(count * sizeof(float));
  Schedule schedule = choice.make_reduce(nranks, count);
  schedule.name = "HR(Tuned:" + choice.name + ")";
  return schedule;
}

}  // namespace scaffe::coll
