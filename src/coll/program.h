// Collective communication schedules.
//
// Every collective algorithm in this repository (binomial tree, chunked
// chain, hierarchical CB-k / CC-k, ring allreduce, ...) is expressed as a
// *schedule*: one sequential program of Send / Recv / RecvReduce operations
// per rank. A schedule is pure data, so the same algorithm is
//
//   - checked logically (deadlock-freedom, correct reduction) by
//     LogicalExecutor,
//   - executed for real over threads and float buffers by ThreadExecutor
//     (this is what the scmpi runtime runs), and
//   - priced on a modelled cluster by SimExecutor (this regenerates the
//     paper's Figures 11/12 at 160 ranks).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace scaffe::coll {

/// Tag budget for one schedule. The scmpi runtime gives every collective call
/// a private tag window of exactly this size (one stride of its 256-slot tag
/// ring, kCollTagStride in mpi/comm.cpp), so a schedule whose tags reach this
/// value would alias the next collective's window. The schedule compiler
/// numbers tags per (src, dst) pair precisely to stay far below this bound
/// even for 1024-rank rings and trees; validate_structure() enforces it.
inline constexpr int kMaxScheduleTags = 1 << 20;

enum class OpKind {
  Send,        // send my working buffer [offset, offset+count) to peer
  Recv,        // receive into [offset, offset+count), overwriting
  RecvReduce,  // receive and elementwise-add into [offset, offset+count)
};

/// One step of one rank's program. `count` is in float elements.
struct Op {
  OpKind kind;
  int peer = -1;
  int tag = 0;
  std::size_t offset = 0;
  std::size_t count = 0;
};

/// The full sequential program a rank executes.
struct Program {
  std::vector<Op> ops;

  void send(int peer, int tag, std::size_t offset, std::size_t count) {
    ops.push_back({OpKind::Send, peer, tag, offset, count});
  }
  void recv(int peer, int tag, std::size_t offset, std::size_t count) {
    ops.push_back({OpKind::Recv, peer, tag, offset, count});
  }
  void recv_reduce(int peer, int tag, std::size_t offset, std::size_t count) {
    ops.push_back({OpKind::RecvReduce, peer, tag, offset, count});
  }
};

/// What the schedule computes; determines which ranks the validator checks.
enum class CollectiveKind { Reduce, Bcast, Allreduce };

struct Schedule {
  std::string name;
  CollectiveKind kind = CollectiveKind::Reduce;
  int nranks = 0;
  int root = 0;
  std::size_t count = 0;  // total elements in the user buffer

  std::vector<Program> programs;  // size == nranks

  std::size_t total_ops() const noexcept {
    std::size_t n = 0;
    for (const auto& p : programs) n += p.ops.size();
    return n;
  }
  std::size_t total_bytes_sent() const noexcept {
    std::size_t n = 0;
    for (const auto& p : programs)
      for (const auto& op : p.ops)
        if (op.kind == OpKind::Send) n += op.count * sizeof(float);
    return n;
  }
};

/// Structural checks: peers in range, offsets within buffer, tags inside the
/// per-collective budget, every Send has exactly one matching
/// Recv/RecvReduce with identical (tag, count), and no self-sends. Returns
/// an empty string when valid, else a diagnostic.
std::string validate_structure(const Schedule& schedule);

/// Length of the run of consecutive Send ops starting at `start` that all
/// ship the same (offset, count) region to distinct peers — a broadcast-style
/// fan-out the transport can serve from one shared immutable buffer. Returns
/// 0 if ops[start] is not a Send, else >= 1.
std::size_t send_run_length(const std::vector<Op>& ops, std::size_t start);

}  // namespace scaffe::coll
