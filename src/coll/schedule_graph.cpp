#include "coll/schedule_graph.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace scaffe::coll {

ScheduleGraph::ScheduleGraph(std::string name, CollectiveKind kind, int nranks, int root,
                             std::size_t count)
    : name_(std::move(name)), kind_(kind), nranks_(nranks), root_(root), count_(count) {}

void ScheduleGraph::copy(int src, int dst, int step, std::size_t offset, std::size_t count) {
  edges_.push_back(GraphEdge{src, dst, /*reduce=*/false, offset, count, step});
}

void ScheduleGraph::reduce(int src, int dst, int step, std::size_t offset, std::size_t count) {
  edges_.push_back(GraphEdge{src, dst, /*reduce=*/true, offset, count, step});
}

Schedule ScheduleGraph::compile() const {
  Schedule schedule;
  schedule.name = name_;
  schedule.kind = kind_;
  schedule.nranks = nranks_;
  schedule.root = root_;
  schedule.count = count_;
  schedule.programs.resize(static_cast<std::size_t>(nranks_));

  for (const GraphEdge& edge : edges_) {
    if (edge.src < 0 || edge.src >= nranks_ || edge.dst < 0 || edge.dst >= nranks_) {
      std::ostringstream err;
      err << "schedule graph '" << name_ << "': edge " << edge.src << "->" << edge.dst
          << " out of range for " << nranks_ << " ranks";
      throw std::invalid_argument(err.str());
    }
    if (edge.src == edge.dst) {
      std::ostringstream err;
      err << "schedule graph '" << name_ << "': self-edge at rank " << edge.src;
      throw std::invalid_argument(err.str());
    }
    if (edge.count == 0 || edge.offset + edge.count > count_) {
      std::ostringstream err;
      err << "schedule graph '" << name_ << "': edge region [" << edge.offset << ", "
          << edge.offset + edge.count << ") outside buffer of " << count_;
      throw std::invalid_argument(err.str());
    }
  }

  // Canonical edge order: (step, emission). Tags and both sides' program
  // positions derive from this one order, so for any (src, dst) pair the
  // sender issues and the receiver consumes edges in the same sequence —
  // per-pair tag numbering then matches the transport's per-edge FIFO.
  std::vector<std::size_t> order(edges_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return edges_[a].step < edges_[b].step;
  });

  std::map<std::pair<int, int>, int> pair_tags;
  struct Slot {
    int step;
    int phase;  // 0 = send, 1 = receive: step-s sends precede step-s receives
    std::size_t seq;
    Op op;
  };
  std::vector<std::vector<Slot>> slots(static_cast<std::size_t>(nranks_));

  for (std::size_t seq = 0; seq < order.size(); ++seq) {
    const GraphEdge& edge = edges_[order[seq]];
    int& next_tag = pair_tags[{edge.src, edge.dst}];
    const int tag = next_tag++;
    if (tag >= kMaxScheduleTags) {
      std::ostringstream err;
      err << "schedule graph '" << name_ << "': pair " << edge.src << "->" << edge.dst
          << " needs more than " << kMaxScheduleTags
          << " tags; one collective owns one tag stride";
      throw std::invalid_argument(err.str());
    }
    slots[static_cast<std::size_t>(edge.src)].push_back(
        Slot{edge.step, 0, seq, Op{OpKind::Send, edge.dst, tag, edge.offset, edge.count}});
    slots[static_cast<std::size_t>(edge.dst)].push_back(
        Slot{edge.step, 1, seq,
             Op{edge.reduce ? OpKind::RecvReduce : OpKind::Recv, edge.src, tag, edge.offset,
                edge.count}});
  }

  for (int rank = 0; rank < nranks_; ++rank) {
    auto& rank_slots = slots[static_cast<std::size_t>(rank)];
    std::sort(rank_slots.begin(), rank_slots.end(), [](const Slot& a, const Slot& b) {
      if (a.step != b.step) return a.step < b.step;
      if (a.phase != b.phase) return a.phase < b.phase;
      return a.seq < b.seq;
    });
    Program& program = schedule.programs[static_cast<std::size_t>(rank)];
    program.ops.reserve(rank_slots.size());
    for (const Slot& slot : rank_slots) program.ops.push_back(slot.op);
  }
  return schedule;
}

}  // namespace scaffe::coll
