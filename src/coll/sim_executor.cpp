#include "coll/sim_executor.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "net/topology.h"
#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace scaffe::coll {

namespace {

using net::CostModel;
using net::Path;
using net::Staging;
using sim::Engine;
using sim::Task;
using util::TimeNs;

struct Msg {
  int tag;
  std::size_t count;
  TimeNs arrival;
};

struct SimContext {
  const Schedule& schedule;
  const CostModel& cost;
  const ExecPolicy& policy;
  net::Topology topo;
  Engine& engine;
  std::vector<std::unique_ptr<sim::Channel<Msg>>> channels;  // dense (src,dst)
  std::vector<std::unique_ptr<sim::Resource>> node_nic;      // per node, cap ib_rails
  std::vector<std::unique_ptr<sim::Resource>> node_pcie;     // per node, cap K
  std::vector<TimeNs> rank_finish;
  bool capture_trace = false;
  std::vector<TraceEvent> trace;

  sim::Channel<Msg>& channel(int src, int dst) {
    return *channels[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(schedule.nranks) +
                     static_cast<std::size_t>(dst)];
  }
};

Task rank_process(SimContext& ctx, int rank) {
  Engine& engine = ctx.engine;
  const CostModel& cost = ctx.cost;
  for (const Op& op : ctx.schedule.programs[static_cast<std::size_t>(rank)].ops) {
    const std::size_t bytes = op.count * sizeof(float);
    const TimeNs op_start = engine.now();
    (void)op_start;
    switch (op.kind) {
      case OpKind::Send: {
        const Path path = ctx.topo.path(rank, op.peer);
        const Staging staging = resolve_staging(ctx.policy, cost, path, bytes);
        const int node = ctx.topo.node_of(rank);
        sim::Resource& shared =
            path == Path::InterNode ? *ctx.node_nic[static_cast<std::size_t>(node)]
                                    : *ctx.node_pcie[static_cast<std::size_t>(node)];
        co_await shared.acquire();
        const TimeNs busy_start = engine.now();  // link actually acquired
        const TimeNs busy = policy_sender_busy(ctx.policy, cost, path, staging, bytes);
        co_await engine.delay(busy);
        shared.release();
        ctx.channel(rank, op.peer)
            .send(Msg{op.tag, op.count, engine.now() + cost.delivery_latency(path, staging)});
        if (ctx.capture_trace) {
          // Send events record the link-busy window, not the queueing wait.
          ctx.trace.push_back(
              TraceEvent{rank, op.kind, op.peer, bytes, busy_start, engine.now()});
        }
        break;
      }
      case OpKind::Recv:
      case OpKind::RecvReduce: {
        Msg msg = co_await ctx.channel(op.peer, rank).recv();
        if (msg.tag != op.tag || msg.count != op.count) {
          std::ostringstream err;
          err << "simulate_schedule: rank " << rank << " expected tag " << op.tag
              << " count " << op.count << " from " << op.peer << ", got tag " << msg.tag
              << " count " << msg.count;
          throw std::runtime_error(err.str());
        }
        if (msg.arrival > engine.now()) co_await engine.delay(msg.arrival - engine.now());
        if (op.kind == OpKind::RecvReduce) {
          co_await engine.delay(
              cost.reduce(bytes, resolve_reduce_space(ctx.policy, cost, bytes)));
        }
        if (ctx.capture_trace) {
          ctx.trace.push_back(
              TraceEvent{rank, op.kind, op.peer, bytes, op_start, engine.now()});
        }
        break;
      }
    }
  }
  ctx.rank_finish[static_cast<std::size_t>(rank)] = engine.now();
}

}  // namespace

Staging resolve_staging(const ExecPolicy& policy, const CostModel& cost, Path path,
                        std::size_t bytes) {
  if (!policy.auto_staging) {
    return path == Path::InterNode ? policy.inter : policy.intra;
  }
  const TimeNs gdr = cost.msg_time(bytes, path, Staging::Gdr);
  const TimeNs piped = cost.msg_time(bytes, path, Staging::HostPipelined);
  return gdr <= piped ? Staging::Gdr : Staging::HostPipelined;
}

net::ExecSpace resolve_reduce_space(const ExecPolicy& policy, const CostModel& cost,
                                    std::size_t bytes) {
  if (!policy.auto_reduce_space) return policy.reduce_space;
  return cost.reduce(bytes, net::ExecSpace::Gpu) <= cost.reduce(bytes, net::ExecSpace::Host)
             ? net::ExecSpace::Gpu
             : net::ExecSpace::Host;
}

TimeNs policy_sender_busy(const ExecPolicy& policy, const CostModel& cost, Path path,
                          Staging staging, std::size_t bytes) {
  TimeNs busy = cost.sender_busy(bytes, path, staging);
  if (policy.segment_bytes > 0 && bytes > 0) {
    const std::size_t segments =
        (bytes + policy.segment_bytes - 1) / policy.segment_bytes;
    busy += static_cast<TimeNs>(segments) * policy.per_segment_overhead;
  }
  return busy;
}

SimResult simulate_schedule(const Schedule& schedule, const net::ClusterSpec& cluster,
                            const ExecPolicy& policy, bool capture_trace) {
  Engine engine;
  CostModel cost(cluster);
  SimContext ctx{schedule, cost, policy, net::Topology(cluster, schedule.nranks), engine,
                 {},       {},   {},     {},  capture_trace, {}};

  const auto nranks = static_cast<std::size_t>(schedule.nranks);
  ctx.channels.resize(nranks * nranks);
  for (auto& channel : ctx.channels) channel = std::make_unique<sim::Channel<Msg>>(engine);

  const auto nodes = static_cast<std::size_t>(ctx.topo.nodes_used());
  for (std::size_t n = 0; n < nodes; ++n) {
    ctx.node_nic.push_back(
        std::make_unique<sim::Resource>(engine, std::max(cluster.ib_rails, 1)));
    ctx.node_pcie.push_back(
        std::make_unique<sim::Resource>(engine, cluster.pcie_concurrency));
  }
  ctx.rank_finish.assign(nranks, 0);

  for (int rank = 0; rank < schedule.nranks; ++rank) engine.spawn(rank_process(ctx, rank));
  engine.run();

  SimResult result;
  result.rank_finish = std::move(ctx.rank_finish);
  result.root_finish = result.rank_finish[static_cast<std::size_t>(schedule.root)];
  for (TimeNs t : result.rank_finish) result.total = std::max(result.total, t);
  result.events = engine.events_processed();
  result.trace = std::move(ctx.trace);
  return result;
}

}  // namespace scaffe::coll
