#include "coll/algorithms.h"

#include <algorithm>
#include <cassert>

namespace scaffe::coll {

namespace detail {

/// Largest tag used anywhere in a schedule (for tag-space composition).
int max_tag(const Schedule& schedule) {
  int tag = -1;
  for (const auto& program : schedule.programs)
    for (const auto& op : program.ops) tag = std::max(tag, op.tag);
  return tag;
}

/// Appends `sub`'s programs into `dst`, mapping sub-rank i to rank_map[i] and
/// offsetting tags by tag_base. Returns the next free tag.
int append_subschedule(Schedule& dst, const Schedule& sub, const std::vector<int>& rank_map,
                       int tag_base) {
  assert(rank_map.size() == sub.programs.size());
  for (std::size_t i = 0; i < sub.programs.size(); ++i) {
    Program& out = dst.programs[static_cast<std::size_t>(rank_map[i])];
    for (Op op : sub.programs[i].ops) {
      op.peer = rank_map[static_cast<std::size_t>(op.peer)];
      op.tag += tag_base;
      out.ops.push_back(op);
    }
  }
  return tag_base + max_tag(sub) + 1;
}

}  // namespace detail

namespace {

using detail::append_subschedule;
using detail::max_tag;

int lowest_set_bit(int v) noexcept { return v & -v; }

}  // namespace

const char* level_algo_name(LevelAlgo algo) noexcept {
  switch (algo) {
    case LevelAlgo::Chain: return "C";
    case LevelAlgo::Binomial: return "B";
  }
  return "?";
}

std::string combo_name(LevelAlgo lower, LevelAlgo upper, int chain_size) {
  return std::string(level_algo_name(lower)) + level_algo_name(upper) + "-" +
         std::to_string(chain_size);
}

std::vector<std::pair<std::size_t, std::size_t>> partition_chunks(std::size_t count, int parts) {
  assert(count > 0);
  const std::size_t n = std::min<std::size_t>(std::max(parts, 1), count);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  chunks.reserve(n);
  const std::size_t base = count / n;
  const std::size_t rem = count % n;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t size = base + (i < rem ? 1 : 0);
    chunks.emplace_back(offset, size);
    offset += size;
  }
  return chunks;
}

Schedule binomial_reduce(int nranks, int root, std::size_t count) {
  Schedule schedule;
  schedule.name = "binomial_reduce";
  schedule.kind = CollectiveKind::Reduce;
  schedule.nranks = nranks;
  schedule.root = root;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));

  auto actual = [&](int relative) { return (relative + root) % nranks; };

  // Recursive-halving tree on relative ranks: at level `mask`, every active
  // rank with the `mask` bit set sends its whole working buffer to
  // (relative - mask) and retires; the receiver folds it in.
  for (int mask = 1; mask < nranks; mask <<= 1) {
    for (int relative = mask; relative < nranks; relative += 2 * mask) {
      if ((relative & (mask - 1)) != 0) continue;  // retired earlier
      const int src = actual(relative);
      const int dst = actual(relative - mask);
      const int tag = relative;  // each relative rank sends at most once
      schedule.programs[static_cast<std::size_t>(src)].send(dst, tag, 0, count);
      schedule.programs[static_cast<std::size_t>(dst)].recv_reduce(src, tag, 0, count);
    }
  }
  return schedule;
}

Schedule chain_reduce(int nranks, int root, std::size_t count, int chunks) {
  Schedule schedule;
  schedule.name = "chain_reduce";
  schedule.kind = CollectiveKind::Reduce;
  schedule.nranks = nranks;
  schedule.root = root;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));
  if (nranks == 1) return schedule;

  auto actual = [&](int position) { return (position + root) % nranks; };
  const auto parts = partition_chunks(count, chunks);

  // Chunk c flows from the chain's tail (position P-1) towards the root at
  // position 0; each hop receives, reduces, and forwards. Emitting hops from
  // the tail inward puts each middle rank's RecvReduce before its Send.
  for (std::size_t c = 0; c < parts.size(); ++c) {
    const auto [offset, size] = parts[c];
    for (int position = nranks - 1; position >= 1; --position) {
      const int src = actual(position);
      const int dst = actual(position - 1);
      const int tag = static_cast<int>(c) * nranks + position;
      schedule.programs[static_cast<std::size_t>(src)].send(dst, tag, offset, size);
      schedule.programs[static_cast<std::size_t>(dst)].recv_reduce(src, tag, offset, size);
    }
  }
  return schedule;
}

Schedule binomial_bcast(int nranks, int root, std::size_t count) {
  Schedule schedule;
  schedule.name = "binomial_bcast";
  schedule.kind = CollectiveKind::Bcast;
  schedule.nranks = nranks;
  schedule.root = root;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));

  auto actual = [&](int relative) { return (relative + root) % nranks; };

  // Mirror of the reduce tree: relative rank r receives once from
  // r - lowbit(r), then feeds children r + m for m descending below lowbit(r).
  int top = 1;
  while (top < nranks) top <<= 1;

  for (int relative = 0; relative < nranks; ++relative) {
    Program& program = schedule.programs[static_cast<std::size_t>(actual(relative))];
    const int lowbit = relative == 0 ? top : lowest_set_bit(relative);
    if (relative != 0) {
      const int parent = relative - lowbit;
      program.recv(actual(parent), relative, 0, count);
    }
    for (int m = lowbit >> 1; m >= 1; m >>= 1) {
      const int child = relative + m;
      if (child < nranks) program.send(actual(child), child, 0, count);
    }
  }
  return schedule;
}

Schedule chain_bcast(int nranks, int root, std::size_t count, int chunks) {
  Schedule schedule;
  schedule.name = "chain_bcast";
  schedule.kind = CollectiveKind::Bcast;
  schedule.nranks = nranks;
  schedule.root = root;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));
  if (nranks == 1) return schedule;

  auto actual = [&](int position) { return (position + root) % nranks; };
  const auto parts = partition_chunks(count, chunks);

  for (std::size_t c = 0; c < parts.size(); ++c) {
    const auto [offset, size] = parts[c];
    for (int position = 0; position + 1 < nranks; ++position) {
      const int src = actual(position);
      const int dst = actual(position + 1);
      const int tag = static_cast<int>(c) * nranks + position;
      schedule.programs[static_cast<std::size_t>(src)].send(dst, tag, offset, size);
      schedule.programs[static_cast<std::size_t>(dst)].recv(src, tag, offset, size);
    }
  }
  return schedule;
}

namespace {

/// Shared two-level composition for reduce (leaders gather) and bcast
/// (leaders scatter). Lower-level groups are blocks of `chain_size`
/// consecutive ranks; the group leader is the block's first rank.
Schedule hierarchical(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                      LevelAlgo upper, int chunks, bool is_reduce) {
  assert(nranks >= 1);
  assert(chain_size >= 1);
  Schedule schedule;
  schedule.name = std::string(is_reduce ? "hier_reduce_" : "hier_bcast_") +
                  combo_name(lower, upper, chain_size);
  schedule.kind = is_reduce ? CollectiveKind::Reduce : CollectiveKind::Bcast;
  schedule.nranks = nranks;
  schedule.root = 0;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));
  if (nranks == 1) return schedule;

  auto make_flat = [&](LevelAlgo algo, int size) {
    if (is_reduce) {
      return algo == LevelAlgo::Chain ? chain_reduce(size, 0, count, chunks)
                                      : binomial_reduce(size, 0, count);
    }
    return algo == LevelAlgo::Chain ? chain_bcast(size, 0, count, chunks)
                                    : binomial_bcast(size, 0, count);
  };

  std::vector<int> leaders;
  std::vector<std::vector<int>> groups;
  for (int start = 0; start < nranks; start += chain_size) {
    std::vector<int> group;
    for (int r = start; r < std::min(start + chain_size, nranks); ++r) group.push_back(r);
    leaders.push_back(start);
    groups.push_back(std::move(group));
  }

  int tag_base = 0;
  auto append_lower = [&] {
    for (const auto& group : groups) {
      if (group.size() < 2) continue;
      tag_base = append_subschedule(schedule, make_flat(lower, static_cast<int>(group.size())),
                                    group, tag_base);
    }
  };
  auto append_upper = [&] {
    if (leaders.size() >= 2) {
      tag_base = append_subschedule(schedule, make_flat(upper, static_cast<int>(leaders.size())),
                                    leaders, tag_base);
    }
  };

  if (is_reduce) {
    append_lower();  // groups reduce to leaders...
    append_upper();  // ...then leaders reduce to rank 0
  } else {
    append_upper();  // rank 0 feeds the leaders...
    append_lower();  // ...then leaders feed their groups
  }
  return schedule;
}

}  // namespace

Schedule hierarchical_reduce(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                             LevelAlgo upper, int chunks) {
  return hierarchical(nranks, count, chain_size, lower, upper, chunks, /*is_reduce=*/true);
}

Schedule hierarchical_bcast(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                            LevelAlgo upper, int chunks) {
  return hierarchical(nranks, count, chain_size, lower, upper, chunks, /*is_reduce=*/false);
}

Schedule ring_allreduce(int nranks, std::size_t count) {
  Schedule schedule;
  schedule.name = "ring_allreduce";
  schedule.kind = CollectiveKind::Allreduce;
  schedule.nranks = nranks;
  schedule.root = 0;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));
  if (nranks == 1) return schedule;
  // One chunk per rank is intrinsic to the ring; for tiny buffers callers
  // should fall back to reduce+bcast (as real runtimes do).
  assert(count >= static_cast<std::size_t>(nranks));

  const auto parts = partition_chunks(count, nranks);
  const int steps = nranks - 1;
  auto chunk_of = [&](int rank, int step) {
    // Chunk index rank r works on at reduce-scatter step s.
    int c = (rank - step) % nranks;
    if (c < 0) c += nranks;
    return static_cast<std::size_t>(c) % parts.size();
  };

  // Phase 1: reduce-scatter. At step s, rank r sends chunk (r - s) to its
  // right neighbour, which folds it into its copy.
  for (int step = 0; step < steps; ++step) {
    for (int rank = 0; rank < nranks; ++rank) {
      const int right = (rank + 1) % nranks;
      const auto [offset, size] = parts[chunk_of(rank, step)];
      schedule.programs[static_cast<std::size_t>(rank)].send(right, step, offset, size);
    }
    for (int rank = 0; rank < nranks; ++rank) {
      const int left = (rank - 1 + nranks) % nranks;
      const auto [offset, size] = parts[chunk_of(left, step)];
      schedule.programs[static_cast<std::size_t>(rank)].recv_reduce(left, step, offset, size);
    }
  }

  // Phase 2: allgather. Fully-reduced chunk (r + 1) starts at rank r and
  // circulates; receives overwrite.
  for (int step = 0; step < steps; ++step) {
    for (int rank = 0; rank < nranks; ++rank) {
      const int right = (rank + 1) % nranks;
      const auto [offset, size] = parts[chunk_of(rank, step - 1)];
      schedule.programs[static_cast<std::size_t>(rank)].send(right, steps + step, offset, size);
    }
    for (int rank = 0; rank < nranks; ++rank) {
      const int left = (rank - 1 + nranks) % nranks;
      const auto [offset, size] = parts[chunk_of(left, step - 1)];
      schedule.programs[static_cast<std::size_t>(rank)].recv(left, steps + step, offset, size);
    }
  }
  return schedule;
}

Schedule reduce_bcast_allreduce(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                                LevelAlgo upper, int chunks) {
  Schedule schedule = hierarchical_reduce(nranks, count, chain_size, lower, upper, chunks);
  schedule.name = "reduce_bcast_allreduce_" + combo_name(lower, upper, chain_size);
  schedule.kind = CollectiveKind::Allreduce;

  Schedule bcast = hierarchical_bcast(nranks, count, chain_size, lower, upper, chunks);
  std::vector<int> identity(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) identity[static_cast<std::size_t>(r)] = r;
  int tag_base = max_tag(schedule) + 1;
  append_subschedule(schedule, bcast, identity, tag_base);
  return schedule;
}

}  // namespace scaffe::coll
