#include "coll/algorithms.h"

#include <algorithm>
#include <cassert>

#include "coll/schedule_graph.h"

namespace scaffe::coll {

namespace detail {

/// Largest tag used anywhere in a schedule (for tag-space composition).
int max_tag(const Schedule& schedule) {
  int tag = -1;
  for (const auto& program : schedule.programs)
    for (const auto& op : program.ops) tag = std::max(tag, op.tag);
  return tag;
}

/// Appends `sub`'s programs into `dst`, mapping sub-rank i to rank_map[i] and
/// offsetting tags by tag_base. Returns the next free tag.
int append_subschedule(Schedule& dst, const Schedule& sub, const std::vector<int>& rank_map,
                       int tag_base) {
  assert(rank_map.size() == sub.programs.size());
  for (std::size_t i = 0; i < sub.programs.size(); ++i) {
    Program& out = dst.programs[static_cast<std::size_t>(rank_map[i])];
    for (Op op : sub.programs[i].ops) {
      op.peer = rank_map[static_cast<std::size_t>(op.peer)];
      op.tag += tag_base;
      out.ops.push_back(op);
    }
  }
  return tag_base + max_tag(sub) + 1;
}

}  // namespace detail

namespace {

using detail::append_subschedule;
using detail::max_tag;

int lowest_set_bit(int v) noexcept { return v & -v; }

}  // namespace

const char* level_algo_name(LevelAlgo algo) noexcept {
  switch (algo) {
    case LevelAlgo::Chain: return "C";
    case LevelAlgo::Binomial: return "B";
  }
  return "?";
}

std::string combo_name(LevelAlgo lower, LevelAlgo upper, int chain_size) {
  return std::string(level_algo_name(lower)) + level_algo_name(upper) + "-" +
         std::to_string(chain_size);
}

std::vector<std::pair<std::size_t, std::size_t>> partition_chunks(std::size_t count, int parts) {
  assert(count > 0);
  const std::size_t n = std::min<std::size_t>(std::max(parts, 1), count);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  chunks.reserve(n);
  const std::size_t base = count / n;
  const std::size_t rem = count % n;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t size = base + (i < rem ? 1 : 0);
    chunks.emplace_back(offset, size);
    offset += size;
  }
  return chunks;
}

Schedule binomial_reduce(int nranks, int root, std::size_t count) {
  ScheduleGraph graph("binomial_reduce", CollectiveKind::Reduce, nranks, root, count);
  auto actual = [&](int relative) { return (relative + root) % nranks; };

  // Recursive-halving tree on relative ranks: at level `mask`, every active
  // rank with the `mask` bit set sends its whole working buffer to
  // (relative - mask) and retires; the receiver folds it in. The step is the
  // level index, so each receiver accumulates levels in ascending order.
  int level = 0;
  for (int mask = 1; mask < nranks; mask <<= 1, ++level) {
    for (int relative = mask; relative < nranks; relative += 2 * mask) {
      if ((relative & (mask - 1)) != 0) continue;  // retired earlier
      graph.reduce(actual(relative), actual(relative - mask), level, 0, count);
    }
  }
  return graph.compile();
}

Schedule chain_reduce(int nranks, int root, std::size_t count, int chunks) {
  ScheduleGraph graph("chain_reduce", CollectiveKind::Reduce, nranks, root, count);
  if (nranks == 1) return graph.compile();

  auto actual = [&](int position) { return (position + root) % nranks; };
  const auto parts = partition_chunks(count, chunks);

  // Chunk c flows from the chain's tail (position P-1) towards the root at
  // position 0; each hop receives, reduces, and forwards. Step = chunk index
  // + hops travelled, the software-pipeline wavefront.
  for (std::size_t c = 0; c < parts.size(); ++c) {
    const auto [offset, size] = parts[c];
    for (int position = nranks - 1; position >= 1; --position) {
      const int step = static_cast<int>(c) + (nranks - 1 - position);
      graph.reduce(actual(position), actual(position - 1), step, offset, size);
    }
  }
  return graph.compile();
}

Schedule binomial_bcast(int nranks, int root, std::size_t count) {
  ScheduleGraph graph("binomial_bcast", CollectiveKind::Bcast, nranks, root, count);
  auto actual = [&](int relative) { return (relative + root) % nranks; };

  // Mirror of the reduce tree: relative rank r receives once from
  // r - lowbit(r), then feeds children r + m for m descending below lowbit(r).
  // Step = tree depth of the receiving child, so every rank's fan-out sends
  // stay consecutive (the transport's shared-payload bcast optimization).
  int top = 1;
  int levels = 0;
  while (top < nranks) {
    top <<= 1;
    ++levels;
  }
  auto depth_of = [&](int m) {  // level at which the child with lowbit m hears
    int d = levels;
    while (m > 1) {
      m >>= 1;
      --d;
    }
    return d;
  };

  for (int relative = 1; relative < nranks; ++relative) {
    const int lowbit = lowest_set_bit(relative);
    const int parent = relative - lowbit;
    graph.copy(actual(parent), actual(relative), depth_of(lowbit), 0, count);
  }
  return graph.compile();
}

Schedule chain_bcast(int nranks, int root, std::size_t count, int chunks) {
  ScheduleGraph graph("chain_bcast", CollectiveKind::Bcast, nranks, root, count);
  if (nranks == 1) return graph.compile();

  auto actual = [&](int position) { return (position + root) % nranks; };
  const auto parts = partition_chunks(count, chunks);

  for (std::size_t c = 0; c < parts.size(); ++c) {
    const auto [offset, size] = parts[c];
    for (int position = 0; position + 1 < nranks; ++position) {
      graph.copy(actual(position), actual(position + 1), static_cast<int>(c) + position, offset,
                 size);
    }
  }
  return graph.compile();
}

namespace {

/// Shared two-level composition for reduce (leaders gather) and bcast
/// (leaders scatter). Lower-level groups are blocks of `chain_size`
/// consecutive ranks; the group leader is the block's first rank.
Schedule hierarchical(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                      LevelAlgo upper, int chunks, bool is_reduce) {
  assert(nranks >= 1);
  assert(chain_size >= 1);
  Schedule schedule;
  schedule.name = std::string(is_reduce ? "hier_reduce_" : "hier_bcast_") +
                  combo_name(lower, upper, chain_size);
  schedule.kind = is_reduce ? CollectiveKind::Reduce : CollectiveKind::Bcast;
  schedule.nranks = nranks;
  schedule.root = 0;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));
  if (nranks == 1) return schedule;

  auto make_flat = [&](LevelAlgo algo, int size) {
    if (is_reduce) {
      return algo == LevelAlgo::Chain ? chain_reduce(size, 0, count, chunks)
                                      : binomial_reduce(size, 0, count);
    }
    return algo == LevelAlgo::Chain ? chain_bcast(size, 0, count, chunks)
                                    : binomial_bcast(size, 0, count);
  };

  std::vector<int> leaders;
  std::vector<std::vector<int>> groups;
  for (int start = 0; start < nranks; start += chain_size) {
    std::vector<int> group;
    for (int r = start; r < std::min(start + chain_size, nranks); ++r) group.push_back(r);
    leaders.push_back(start);
    groups.push_back(std::move(group));
  }

  int tag_base = 0;
  auto append_lower = [&] {
    for (const auto& group : groups) {
      if (group.size() < 2) continue;
      tag_base = append_subschedule(schedule, make_flat(lower, static_cast<int>(group.size())),
                                    group, tag_base);
    }
  };
  auto append_upper = [&] {
    if (leaders.size() >= 2) {
      tag_base = append_subschedule(schedule, make_flat(upper, static_cast<int>(leaders.size())),
                                    leaders, tag_base);
    }
  };

  if (is_reduce) {
    append_lower();  // groups reduce to leaders...
    append_upper();  // ...then leaders reduce to rank 0
  } else {
    append_upper();  // rank 0 feeds the leaders...
    append_lower();  // ...then leaders feed their groups
  }
  return schedule;
}

}  // namespace

Schedule hierarchical_reduce(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                             LevelAlgo upper, int chunks) {
  return hierarchical(nranks, count, chain_size, lower, upper, chunks, /*is_reduce=*/true);
}

Schedule hierarchical_bcast(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                            LevelAlgo upper, int chunks) {
  return hierarchical(nranks, count, chain_size, lower, upper, chunks, /*is_reduce=*/false);
}

namespace detail {

/// The window is split into one chunk per ring position; chunk math runs on
/// positions, not rank ids, so any ring ordering and any window size >=
/// nranks works.
void emit_ring_allreduce(ScheduleGraph& graph, const std::vector<int>& order, std::size_t base,
                         std::size_t window, int step_base) {
  const int nranks = static_cast<int>(order.size());
  const auto parts = partition_chunks(window, nranks);
  assert(parts.size() == static_cast<std::size_t>(nranks));
  const int steps = nranks - 1;
  auto chunk_of = [&](int position, int step) {
    // Chunk index ring position p works on at reduce-scatter step s.
    int c = (position - step) % nranks;
    if (c < 0) c += nranks;
    return static_cast<std::size_t>(c);
  };

  // Phase 1: reduce-scatter. At step s, position p sends chunk (p - s) to
  // its right neighbour, which folds it into its copy. Phase 2: allgather —
  // fully-reduced chunk (p + 1) starts at position p and circulates;
  // receives overwrite.
  for (int step = 0; step < 2 * steps; ++step) {
    const int scatter_step = step < steps ? step : step - steps - 1;
    const bool reduce = step < steps;
    for (int position = 0; position < nranks; ++position) {
      const int src = order[static_cast<std::size_t>(position)];
      const int dst = order[static_cast<std::size_t>((position + 1) % nranks)];
      const auto [offset, size] = parts[chunk_of(position, scatter_step)];
      if (reduce) {
        graph.reduce(src, dst, step_base + step, base + offset, size);
      } else {
        graph.copy(src, dst, step_base + step, base + offset, size);
      }
    }
  }
}

Schedule reduce_bcast_fallback(const char* name, int nranks, std::size_t count) {
  Schedule schedule = binomial_reduce(nranks, 0, count);
  schedule.name = name;
  schedule.kind = CollectiveKind::Allreduce;
  std::vector<int> identity(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) identity[static_cast<std::size_t>(r)] = r;
  append_subschedule(schedule, binomial_bcast(nranks, 0, count), identity,
                     max_tag(schedule) + 1);
  return schedule;
}

}  // namespace detail

Schedule ring_allreduce(int nranks, std::size_t count) {
  // One chunk per rank is intrinsic to the ring; when the buffer is too
  // small to give every rank a chunk, fall back to reduce+bcast instead of
  // silently aliasing chunks (as real runtimes do for tiny messages).
  if (nranks > 1 && count < static_cast<std::size_t>(nranks)) {
    return detail::reduce_bcast_fallback("ring_allreduce_fallback", nranks, count);
  }
  ScheduleGraph graph("ring_allreduce", CollectiveKind::Allreduce, nranks, 0, count);
  if (nranks > 1) {
    std::vector<int> order(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) order[static_cast<std::size_t>(r)] = r;
    detail::emit_ring_allreduce(graph, order, 0, count, 0);
  }
  return graph.compile();
}

Schedule reduce_bcast_allreduce(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                                LevelAlgo upper, int chunks) {
  Schedule schedule = hierarchical_reduce(nranks, count, chain_size, lower, upper, chunks);
  schedule.name = "reduce_bcast_allreduce_" + combo_name(lower, upper, chain_size);
  schedule.kind = CollectiveKind::Allreduce;

  Schedule bcast = hierarchical_bcast(nranks, count, chain_size, lower, upper, chunks);
  std::vector<int> identity(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) identity[static_cast<std::size_t>(r)] = r;
  int tag_base = max_tag(schedule) + 1;
  append_subschedule(schedule, bcast, identity, tag_base);
  return schedule;
}

}  // namespace scaffe::coll
