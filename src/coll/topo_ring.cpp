#include "coll/topo_ring.h"

#include <algorithm>
#include <cassert>

#include "coll/algorithms.h"
#include "coll/schedule_graph.h"

namespace scaffe::coll {

std::vector<int> topology_ring_order(const net::Topology& topo, int first) {
  const int nranks = topo.nranks();
  std::vector<int> order(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) order[static_cast<std::size_t>(r)] = r;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (topo.node_of(a) != topo.node_of(b)) return topo.node_of(a) < topo.node_of(b);
    return topo.local_gpu_of(a) < topo.local_gpu_of(b);
  });
  const auto at = std::find(order.begin(), order.end(), first);
  assert(at != order.end());
  std::rotate(order.begin(), at, order.end());
  return order;
}

Schedule topo_ring_reduce(const net::Topology& topo, int root, std::size_t count, int chunks) {
  const int nranks = topo.nranks();
  ScheduleGraph graph("topo_ring_reduce", CollectiveKind::Reduce, nranks, root, count);
  if (nranks > 1) {
    // The ring opened at the root is the chain: chunks stream from the ring's
    // far end through every rank back to the root, one locality-ordered hop
    // at a time.
    const auto order = topology_ring_order(topo, root);
    const auto parts = partition_chunks(count, chunks);
    for (std::size_t c = 0; c < parts.size(); ++c) {
      const auto [offset, size] = parts[c];
      for (int position = nranks - 1; position >= 1; --position) {
        const int step = static_cast<int>(c) + (nranks - 1 - position);
        graph.reduce(order[static_cast<std::size_t>(position)],
                     order[static_cast<std::size_t>(position - 1)], step, offset, size);
      }
    }
  }
  return graph.compile();
}

Schedule topo_ring_bcast(const net::Topology& topo, int root, std::size_t count, int chunks) {
  const int nranks = topo.nranks();
  ScheduleGraph graph("topo_ring_bcast", CollectiveKind::Bcast, nranks, root, count);
  if (nranks > 1) {
    const auto order = topology_ring_order(topo, root);
    const auto parts = partition_chunks(count, chunks);
    for (std::size_t c = 0; c < parts.size(); ++c) {
      const auto [offset, size] = parts[c];
      for (int position = 0; position + 1 < nranks; ++position) {
        graph.copy(order[static_cast<std::size_t>(position)],
                   order[static_cast<std::size_t>(position + 1)],
                   static_cast<int>(c) + position, offset, size);
      }
    }
  }
  return graph.compile();
}

Schedule topo_ring_allreduce(const net::Topology& topo, std::size_t count,
                             std::size_t segment_bytes) {
  const int nranks = topo.nranks();
  if (nranks > 1 && count < static_cast<std::size_t>(nranks)) {
    return detail::reduce_bcast_fallback("topo_ring_allreduce_fallback", nranks, count);
  }
  ScheduleGraph graph("topo_ring_allreduce", CollectiveKind::Allreduce, nranks, 0, count);
  if (nranks > 1) {
    const auto order = topology_ring_order(topo, 0);

    // Segment count: target `segment_bytes` per segment, capped at 8 and by
    // an op budget (~6M edges) so 1024-rank simulated rings stay tractable,
    // and floored so every segment still spans the whole ring.
    std::size_t segments = 1;
    if (segment_bytes > 0) {
      segments = (count * sizeof(float) + segment_bytes - 1) / segment_bytes;
    }
    const std::size_t ring_edges =
        2 * static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks - 1);
    const std::size_t budget_cap = std::max<std::size_t>(6'000'000 / std::max<std::size_t>(ring_edges, 1), 1);
    segments = std::clamp<std::size_t>(segments, 1,
                                       std::min({std::size_t{8}, budget_cap,
                                                 count / static_cast<std::size_t>(nranks)}));

    const auto windows = partition_chunks(count, static_cast<int>(segments));
    for (std::size_t s = 0; s < windows.size(); ++s) {
      // step_base = s: segment s+1's reduce-scatter rides one step behind
      // segment s, so the ring pipeline never drains between segments.
      detail::emit_ring_allreduce(graph, order, windows[s].first, windows[s].second,
                                  static_cast<int>(s));
    }
  }
  return graph.compile();
}

}  // namespace scaffe::coll
