// HR tuning infrastructure (Section 5, "HR (Tuned)").
//
// The paper: "we experimentally determine the ideal P and b for each of the
// cases and then apply the aforementioned two-level communicator design".
// hr_tune() sweeps a candidate set (flat binomial, CB-k, CC-k for several
// chain sizes) over a message-size grid on the modelled cluster, and records
// the fastest candidate per size range. hr_tuned_reduce() then instantiates
// the winning schedule for any message size — that is the "HR (Tuned)" line
// in Figure 11.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coll/algorithms.h"
#include "coll/exec_policy.h"
#include "net/cluster.h"
#include "util/duration.h"

namespace scaffe::coll {

/// One tunable algorithm configuration.
struct Candidate {
  std::string name;
  bool flat_binomial = false;
  bool flat_chain = false;
  bool dbt = false;  // double binary tree (two complementary half-payload trees)
  int chain_size = 8;
  LevelAlgo lower = LevelAlgo::Chain;
  LevelAlgo upper = LevelAlgo::Binomial;
  int chunks = 0;  // 0 = adaptive: ~1 chunk per 512 KiB, clamped to [8, 64]

  Schedule make_reduce(int nranks, std::size_t count) const;

  static Candidate binomial();
  static Candidate flat_chain_cand();
  static Candidate hier(LevelAlgo lower, LevelAlgo upper, int chain_size);
  static Candidate dbt_cand();
};

/// The default sweep set: Bin, C, CB-{4,8,16}, CC-{4,8,16}.
std::vector<Candidate> default_candidates();

/// default_candidates() plus the post-paper schedules (DBT) — the sweep set
/// behind SCAFFE_COLL_ALGO=tuned and the scale-out crossover figures.
std::vector<Candidate> extended_candidates();

/// Size-ranged winner table (ascending max_bytes; last entry is open-ended).
struct TuningEntry {
  std::size_t max_bytes;
  Candidate choice;
  util::TimeNs measured;  // simulated latency at the grid point that chose it
};

class TuningTable {
 public:
  void add(TuningEntry entry) { entries_.push_back(std::move(entry)); }
  const Candidate& choose(std::size_t bytes) const;
  const std::vector<TuningEntry>& entries() const noexcept { return entries_; }
  bool empty() const noexcept { return entries_.empty(); }

  /// Gradient fusion bucket target derived from this table: the boundary
  /// where the table switches into its open-ended large-message regime (the
  /// second-to-last entry's max_bytes) — buckets any larger stop changing
  /// which algorithm wins, buckets smaller pay per-collective setup more
  /// often. Clamped to [256 KiB, 4 MiB]; 1 MiB when the table is too small
  /// to expose a boundary. An explicit set_bucket_bytes() override wins.
  std::size_t recommended_bucket_bytes() const;
  void set_bucket_bytes(std::size_t bytes) { bucket_bytes_override_ = bytes; }

  /// Ring pipelining grain derived from this table: the FIRST crossover
  /// boundary (where the small-message winner stops winning) marks where
  /// per-message overhead stops dominating — the smallest segment worth
  /// sending on its own, which is exactly the grain a segmented ring wants.
  /// Clamped to [4 KiB, 256 KiB]; returns `fallback` when the table exposes
  /// no boundary (fewer than two entries, e.g. no calibration ran).
  std::size_t recommended_segment_bytes(std::size_t fallback) const;

 private:
  std::vector<TuningEntry> entries_;
  std::size_t bucket_bytes_override_ = 0;  // 0 = derive from entries
};

/// Default geometric message-size grid, 4 B .. 256 MiB.
std::vector<std::size_t> default_size_grid();

/// Sweeps candidates over the grid on `cluster` with `nranks` under `policy`
/// and returns the per-size-range winners.
TuningTable hr_tune(const net::ClusterSpec& cluster, int nranks, const ExecPolicy& policy,
                    std::vector<Candidate> candidates = default_candidates(),
                    std::vector<std::size_t> grid_bytes = default_size_grid());

/// Instantiates the tuned reduce schedule for a message of `count` floats.
Schedule hr_tuned_reduce(const TuningTable& table, int nranks, std::size_t count);

}  // namespace scaffe::coll
