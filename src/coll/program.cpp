#include "coll/program.h"

#include <map>
#include <sstream>
#include <tuple>

namespace scaffe::coll {

std::string validate_structure(const Schedule& schedule) {
  std::ostringstream err;
  if (schedule.nranks <= 0) return "nranks must be positive";
  if (static_cast<int>(schedule.programs.size()) != schedule.nranks)
    return "programs.size() != nranks";
  if (schedule.root < 0 || schedule.root >= schedule.nranks) return "root out of range";

  // key: (src, dst, tag) -> count; sends add, receives consume.
  std::map<std::tuple<int, int, int>, std::vector<std::size_t>> sends;
  std::map<std::tuple<int, int, int>, std::vector<std::size_t>> recvs;

  for (int rank = 0; rank < schedule.nranks; ++rank) {
    for (const Op& op : schedule.programs[rank].ops) {
      if (op.peer < 0 || op.peer >= schedule.nranks) {
        err << "rank " << rank << ": peer " << op.peer << " out of range";
        return err.str();
      }
      if (op.peer == rank) {
        err << "rank " << rank << ": self-communication";
        return err.str();
      }
      if (op.count == 0 || op.offset + op.count > schedule.count) {
        err << "rank " << rank << ": op range [" << op.offset << ", " << op.offset + op.count
            << ") outside buffer of " << schedule.count;
        return err.str();
      }
      if (op.tag < 0 || op.tag >= kMaxScheduleTags) {
        err << "rank " << rank << ": tag " << op.tag << " outside the per-collective budget [0, "
            << kMaxScheduleTags << ")";
        return err.str();
      }
      if (op.kind == OpKind::Send) {
        sends[{rank, op.peer, op.tag}].push_back(op.count);
      } else {
        recvs[{op.peer, rank, op.tag}].push_back(op.count);
      }
    }
  }

  if (sends.size() != recvs.size() || sends != recvs) {
    // Find one mismatch for the diagnostic.
    for (const auto& [key, counts] : sends) {
      auto it = recvs.find(key);
      if (it == recvs.end() || it->second != counts) {
        err << "unmatched send " << std::get<0>(key) << "->" << std::get<1>(key) << " tag "
            << std::get<2>(key);
        return err.str();
      }
    }
    for (const auto& [key, counts] : recvs) {
      if (sends.find(key) == sends.end()) {
        err << "unmatched recv " << std::get<0>(key) << "->" << std::get<1>(key) << " tag "
            << std::get<2>(key);
        return err.str();
      }
    }
    return "send/recv multiset mismatch";
  }
  return {};
}

std::size_t send_run_length(const std::vector<Op>& ops, std::size_t start) {
  if (start >= ops.size() || ops[start].kind != OpKind::Send) return 0;
  const Op& head = ops[start];
  std::size_t n = 1;
  while (start + n < ops.size()) {
    const Op& op = ops[start + n];
    if (op.kind != OpKind::Send || op.offset != head.offset || op.count != head.count) {
      break;
    }
    ++n;
  }
  return n;
}

}  // namespace scaffe::coll
