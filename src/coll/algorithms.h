// Schedule generators for every collective algorithm in the paper.
//
// Section 5 terminology:
//  - Binomial tree reduce:   T(Bin) = log(P) * t(b)
//  - Chunked chain reduce:   T(CC)  = (n + P - 2) * t(c),  c = b/n
//  - Hierarchical reduce:    lower-level communicators of `chain_size` ranks
//    (possibly spanning nodes) reduce to their leader; leaders run an upper
//    level algorithm to the global root. "CB-8" = lower Chain of 8, upper
//    Binomial; "CC-4" = chain of chains of 4.
//
// All hierarchical schedules assume root == 0 (the S-Caffe root solver) so
// that lower-level groups are blocks of consecutive ranks, matching the
// topology's block placement of ranks onto nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "coll/program.h"

namespace scaffe::coll {

/// Algorithm used at one level of the hierarchy.
enum class LevelAlgo { Chain, Binomial };

const char* level_algo_name(LevelAlgo algo) noexcept;

/// Splits `count` elements into `parts` contiguous chunks whose sizes differ
/// by at most one. Returns (offset, count) pairs; parts is clamped to count.
std::vector<std::pair<std::size_t, std::size_t>> partition_chunks(std::size_t count, int parts);

/// Flat binomial-tree reduce to `root`. log2(P) rounds; whole-buffer messages.
Schedule binomial_reduce(int nranks, int root, std::size_t count);

/// Flat chunked-chain (pipelined) reduce to `root`: the last rank streams
/// `chunks` pieces leftward; every intermediate rank receives, reduces, and
/// forwards. T = (chunks + P - 2) * t(chunk).
Schedule chain_reduce(int nranks, int root, std::size_t count, int chunks);

/// Flat binomial-tree broadcast from `root`.
Schedule binomial_bcast(int nranks, int root, std::size_t count);

/// Pipelined chain broadcast from `root` (chunks stream down the chain).
Schedule chain_bcast(int nranks, int root, std::size_t count, int chunks);

/// Two-level hierarchical reduce to rank 0 (Section 5 / Figure 7): blocks of
/// `chain_size` consecutive ranks reduce to their leader with `lower`; the
/// leaders reduce to rank 0 with `upper`. `chunks` is the chain pipelining
/// depth at either level.
Schedule hierarchical_reduce(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                             LevelAlgo upper, int chunks);

/// Two-level hierarchical broadcast from rank 0 (mirror of the reduce).
Schedule hierarchical_bcast(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                            LevelAlgo upper, int chunks);

/// Ring allreduce (reduce-scatter + allgather) — the NCCL-era design the
/// paper's approach preceded; included as an extension/ablation.
Schedule ring_allreduce(int nranks, std::size_t count);

/// Reduce-to-root followed by bcast-from-root composed into one schedule —
/// what S-Caffe's aggregation+propagation amounts to across an iteration.
Schedule reduce_bcast_allreduce(int nranks, std::size_t count, int chain_size, LevelAlgo lower,
                                LevelAlgo upper, int chunks);

/// Human-readable name like "CB-8" / "CC-4" used in Figure 11's legend.
std::string combo_name(LevelAlgo lower, LevelAlgo upper, int chain_size);

class ScheduleGraph;

namespace detail {
/// Largest tag used anywhere in a schedule (for tag-space composition).
int max_tag(const Schedule& schedule);
/// Appends `sub`'s programs into `dst`, mapping sub-rank i to rank_map[i]
/// and offsetting tags by tag_base. Returns the next free tag.
int append_subschedule(Schedule& dst, const Schedule& sub, const std::vector<int>& rank_map,
                       int tag_base);
/// Emits one ring allreduce (reduce-scatter + allgather) over `order` into
/// `graph`, restricted to the buffer window [base, base+window); the window
/// must span at least order.size() elements. `step_base` offsets the
/// pipeline wavefront so segmented callers can overlap windows.
void emit_ring_allreduce(ScheduleGraph& graph, const std::vector<int>& order, std::size_t base,
                         std::size_t window, int step_base);
/// Binomial reduce-to-0 + bcast-from-0 composed as one Allreduce schedule —
/// the graceful fallback when a ring cannot segment the buffer.
Schedule reduce_bcast_fallback(const char* name, int nranks, std::size_t count);
}  // namespace detail

}  // namespace scaffe::coll
