// Declarative schedule compiler.
//
// A ScheduleGraph describes a collective as a set of *chunked edges*: "rank
// src transfers buffer region [offset, offset+count) to rank dst at logical
// step s, overwriting (copy) or accumulating (reduce)". Generators emit edges
// over whatever structure they like — logical rings, k-ary / binomial /
// in-order binary trees, pipelines — and compile() lowers the edge set to the
// per-rank sequential `Schedule` representation that all three executors
// (logical, threaded, DES) consume. One description, every backend.
//
// The compiler owns the two error-prone parts of schedule generation:
//
//  - Tag assignment. Each directed (src, dst) pair gets a private tag
//    sequence 0, 1, 2, ... in step order, so tags stay dense no matter how
//    large the schedule is. A 1024-rank segmented ring has ~2M edges but a
//    per-pair maximum of a few thousand, comfortably inside the scmpi
//    per-collective tag stride (kMaxScheduleTags); globally-unique tags
//    would overflow it.
//  - Program ordering. Each rank's ops are sorted by (step, sends before
//    receives within a step, emission order). Sends of step s may therefore
//    be issued before any receive of step s completes.
//
// Generator contract: an edge leaving `src` at step s may depend only on
// edges *into* `src` at steps strictly less than s. Under that contract the
// emitted programs are deadlock-free under in-order eager delivery (which
// `run_logical` verifies by construction for every schedule in the tests),
// and the per-rank accumulation order — hence the bitwise result — is fully
// determined by the step numbering.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coll/program.h"

namespace scaffe::coll {

/// One chunked transfer. `reduce` selects RecvReduce (accumulate) over Recv
/// (overwrite) on the destination side.
struct GraphEdge {
  int src = -1;
  int dst = -1;
  bool reduce = false;
  std::size_t offset = 0;
  std::size_t count = 0;
  int step = 0;
};

class ScheduleGraph {
 public:
  ScheduleGraph(std::string name, CollectiveKind kind, int nranks, int root, std::size_t count);

  /// Emits a copy edge: dst overwrites [offset, offset+count) with src's data.
  void copy(int src, int dst, int step, std::size_t offset, std::size_t count);

  /// Emits a reduce edge: dst accumulates src's [offset, offset+count).
  void reduce(int src, int dst, int step, std::size_t offset, std::size_t count);

  int nranks() const noexcept { return nranks_; }
  std::size_t count() const noexcept { return count_; }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Lowers the edge set to per-rank programs: assigns per-(src, dst) tag
  /// sequences and orders each rank's ops by (step, sends-first, emission).
  /// Throws std::invalid_argument on malformed edges (peer out of range,
  /// self-edge, region outside the buffer) or a tag-budget overflow.
  Schedule compile() const;

 private:
  std::string name_;
  CollectiveKind kind_;
  int nranks_;
  int root_;
  std::size_t count_;
  std::vector<GraphEdge> edges_;
};

}  // namespace scaffe::coll
