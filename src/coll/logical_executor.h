// Single-threaded logical interpreter for schedules: the correctness oracle.
//
// Executes a schedule deterministically against real float buffers without
// any concurrency, detecting deadlock (no rank can make progress) and
// producing every rank's final buffer for comparison against the serial
// reference. Used by tests and by the schedule fuzzer.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "coll/program.h"

namespace scaffe::coll {

struct LogicalResult {
  bool ok = false;
  std::string error;                             // non-empty on deadlock/corruption
  std::vector<std::vector<float>> final_buffers;  // per-rank working buffers
};

/// Runs `schedule` with `inputs[rank]` as each rank's initial working buffer.
/// Sends are eager (buffered); receives block. Ranks are polled round-robin,
/// so any schedule this executor completes is deadlock-free under in-order
/// eager message delivery.
LogicalResult run_logical(const Schedule& schedule,
                          const std::vector<std::vector<float>>& inputs);

/// Convenience: builds rank inputs where element e of rank r is
/// `base(r) + slope * e`, runs the schedule, and checks the collective's
/// postcondition (root holds the elementwise sum for Reduce, everyone holds
/// root's data for Bcast, everyone holds the sum for Allreduce).
/// Returns an empty string on success, else a diagnostic.
std::string check_semantics(const Schedule& schedule);

}  // namespace scaffe::coll
