// Extensions beyond the paper's evaluated design:
//
//  - k-nomial trees (radix-k generalization of binomial; MVAPICH2's tuned
//    trees use these),
//  - the THREE-level hierarchical reduce the paper names as future work:
//    "chain-of-chain combined with a top level binomial for very large
//    scale reductions" (Section 5), and
//  - Rabenseifner-style reduce-scatter + gather reduce, the
//    bandwidth-optimal tree alternative.
#pragma once

#include <cstddef>

#include "coll/program.h"

namespace scaffe::coll {

/// Radix-k tree reduce to `root`. radix=2 is the binomial tree; larger
/// radices trade more parallel receives per round for fewer rounds.
Schedule knomial_reduce(int nranks, int root, std::size_t count, int radix);

/// Radix-k tree broadcast from `root`.
Schedule knomial_bcast(int nranks, int root, std::size_t count, int radix);

/// Three-level reduce to rank 0: chains of `chain_size` ranks reduce to
/// group leaders; chains of `mid_size` leaders reduce to super-leaders; the
/// super-leaders run a binomial tree to rank 0. The paper's "chain-of-chain
/// combined with a top level binomial".
Schedule three_level_reduce(int nranks, std::size_t count, int chain_size, int mid_size,
                            int chunks);

/// Rabenseifner reduce: recursive-halving reduce-scatter followed by a
/// binomial gather of the scattered pieces to the root. Bandwidth ~2b
/// regardless of P (vs b*log P for the plain tree). Requires nranks to be a
/// power of two and count >= nranks.
Schedule rabenseifner_reduce(int nranks, std::size_t count);

}  // namespace scaffe::coll
