// Extensions beyond the paper's evaluated design:
//
//  - k-nomial trees (radix-k generalization of binomial; MVAPICH2's tuned
//    trees use these),
//  - the THREE-level hierarchical reduce the paper names as future work:
//    "chain-of-chain combined with a top level binomial for very large
//    scale reductions" (Section 5), and
//  - Rabenseifner-style reduce-scatter + gather reduce, the
//    bandwidth-optimal tree alternative.
#pragma once

#include <cstddef>
#include <vector>

#include "coll/program.h"

namespace scaffe::coll {

/// Element layout of a gradient fusion bucket: member tensors flattened back
/// to back into one contiguous reduction buffer.
struct FusedLayout {
  std::vector<std::size_t> offsets;  // element offset of each member tensor
  std::vector<std::size_t> counts;   // element count of each member tensor
  std::size_t total = 0;             // sum of counts

  /// Packs tensors of the given element counts contiguously in order.
  static FusedLayout pack(const std::vector<std::size_t>& counts);
};

/// Chain reduce over a fused bucket with chunk boundaries aligned to the
/// packed tensor boundaries: the bucket's tensors are grouped into at most
/// `max_chunks` contiguous pipeline chunks, and no chunk ever splits a
/// tensor. Chunk completion therefore always covers whole tensors, so a
/// copy-out stage can unflatten members as chunks land instead of waiting
/// for the full bucket. Element-wise accumulation order matches
/// chain_reduce over the same span regardless of the grouping, so the fused
/// result is bitwise identical to per-tensor chain reduces.
Schedule fused_chain_reduce(int nranks, int root, const FusedLayout& layout,
                            int max_chunks);

/// Radix-k tree reduce to `root`. radix=2 is the binomial tree; larger
/// radices trade more parallel receives per round for fewer rounds.
Schedule knomial_reduce(int nranks, int root, std::size_t count, int radix);

/// Radix-k tree broadcast from `root`.
Schedule knomial_bcast(int nranks, int root, std::size_t count, int radix);

/// Three-level reduce to rank 0: chains of `chain_size` ranks reduce to
/// group leaders; chains of `mid_size` leaders reduce to super-leaders; the
/// super-leaders run a binomial tree to rank 0. The paper's "chain-of-chain
/// combined with a top level binomial".
Schedule three_level_reduce(int nranks, std::size_t count, int chain_size, int mid_size,
                            int chunks);

/// Rabenseifner reduce: recursive-halving reduce-scatter followed by a
/// binomial gather of the scattered pieces to the root. Bandwidth ~2b
/// regardless of P (vs b*log P for the plain tree). Requires nranks to be a
/// power of two and count >= nranks.
Schedule rabenseifner_reduce(int nranks, std::size_t count);

}  // namespace scaffe::coll
