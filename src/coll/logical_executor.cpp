#include "coll/logical_executor.h"

#include <cmath>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>

namespace scaffe::coll {

LogicalResult run_logical(const Schedule& schedule,
                          const std::vector<std::vector<float>>& inputs) {
  LogicalResult result;
  if (static_cast<int>(inputs.size()) != schedule.nranks) {
    result.error = "inputs.size() != nranks";
    return result;
  }
  for (const auto& input : inputs) {
    if (input.size() != schedule.count) {
      result.error = "input buffer size mismatch";
      return result;
    }
  }

  result.final_buffers = inputs;
  std::vector<std::size_t> pc(static_cast<std::size_t>(schedule.nranks), 0);
  // In-flight messages per (src, dst, tag), FIFO.
  std::map<std::tuple<int, int, int>, std::deque<std::vector<float>>> in_flight;

  auto done = [&](int rank) {
    return pc[static_cast<std::size_t>(rank)] >=
           schedule.programs[static_cast<std::size_t>(rank)].ops.size();
  };

  bool all_done = false;
  while (!all_done) {
    bool progressed = false;
    all_done = true;
    for (int rank = 0; rank < schedule.nranks; ++rank) {
      if (done(rank)) continue;
      all_done = false;
      auto& buffer = result.final_buffers[static_cast<std::size_t>(rank)];
      const Op& op = schedule.programs[static_cast<std::size_t>(rank)]
                         .ops[pc[static_cast<std::size_t>(rank)]];
      switch (op.kind) {
        case OpKind::Send: {
          std::vector<float> payload(buffer.begin() + static_cast<std::ptrdiff_t>(op.offset),
                                     buffer.begin() +
                                         static_cast<std::ptrdiff_t>(op.offset + op.count));
          in_flight[{rank, op.peer, op.tag}].push_back(std::move(payload));
          ++pc[static_cast<std::size_t>(rank)];
          progressed = true;
          break;
        }
        case OpKind::Recv:
        case OpKind::RecvReduce: {
          auto it = in_flight.find({op.peer, rank, op.tag});
          if (it == in_flight.end() || it->second.empty()) break;  // not yet available
          std::vector<float> payload = std::move(it->second.front());
          it->second.pop_front();
          if (payload.size() != op.count) {
            std::ostringstream err;
            err << "rank " << rank << ": payload size " << payload.size() << " != op count "
                << op.count;
            result.error = err.str();
            return result;
          }
          for (std::size_t i = 0; i < op.count; ++i) {
            if (op.kind == OpKind::Recv) {
              buffer[op.offset + i] = payload[i];
            } else {
              buffer[op.offset + i] += payload[i];
            }
          }
          ++pc[static_cast<std::size_t>(rank)];
          progressed = true;
          break;
        }
      }
    }
    if (!all_done && !progressed) {
      std::ostringstream err;
      err << "deadlock: no rank can progress (";
      for (int rank = 0; rank < schedule.nranks; ++rank) {
        if (!done(rank)) err << " r" << rank << "@op" << pc[static_cast<std::size_t>(rank)];
      }
      err << " )";
      result.error = err.str();
      return result;
    }
  }

  // Every sent message must have been consumed.
  for (const auto& [key, queue] : in_flight) {
    if (!queue.empty()) {
      std::ostringstream err;
      err << "unconsumed message " << std::get<0>(key) << "->" << std::get<1>(key) << " tag "
          << std::get<2>(key);
      result.error = err.str();
      return result;
    }
  }
  result.ok = true;
  return result;
}

std::string check_semantics(const Schedule& schedule) {
  if (std::string structural = validate_structure(schedule); !structural.empty()) {
    return "structural: " + structural;
  }

  // Rank r's contribution to element e: distinct per rank, exactly summable
  // in float for the sizes tests use.
  std::vector<std::vector<float>> inputs(static_cast<std::size_t>(schedule.nranks));
  for (int rank = 0; rank < schedule.nranks; ++rank) {
    auto& input = inputs[static_cast<std::size_t>(rank)];
    input.resize(schedule.count);
    for (std::size_t e = 0; e < schedule.count; ++e) {
      input[e] = static_cast<float>(rank + 1) + static_cast<float>(e % 13) * 0.5f;
    }
  }

  LogicalResult result = run_logical(schedule, inputs);
  if (!result.ok) return result.error;

  auto expect_sum = [&](int rank) -> std::string {
    const auto& buffer = result.final_buffers[static_cast<std::size_t>(rank)];
    for (std::size_t e = 0; e < schedule.count; ++e) {
      double expected = 0.0;
      for (int r = 0; r < schedule.nranks; ++r)
        expected += inputs[static_cast<std::size_t>(r)][e];
      if (std::fabs(buffer[e] - expected) > 1e-3 * std::fabs(expected) + 1e-4) {
        std::ostringstream err;
        err << "rank " << rank << " element " << e << ": got " << buffer[e] << ", expected sum "
            << expected;
        return err.str();
      }
    }
    return {};
  };
  auto expect_root_copy = [&](int rank) -> std::string {
    const auto& buffer = result.final_buffers[static_cast<std::size_t>(rank)];
    const auto& root = inputs[static_cast<std::size_t>(schedule.root)];
    for (std::size_t e = 0; e < schedule.count; ++e) {
      if (buffer[e] != root[e]) {
        std::ostringstream err;
        err << "rank " << rank << " element " << e << ": got " << buffer[e]
            << ", expected root value " << root[e];
        return err.str();
      }
    }
    return {};
  };

  switch (schedule.kind) {
    case CollectiveKind::Reduce:
      return expect_sum(schedule.root);
    case CollectiveKind::Bcast:
      for (int rank = 0; rank < schedule.nranks; ++rank) {
        if (std::string e = expect_root_copy(rank); !e.empty()) return e;
      }
      return {};
    case CollectiveKind::Allreduce:
      for (int rank = 0; rank < schedule.nranks; ++rank) {
        if (std::string e = expect_sum(rank); !e.empty()) return e;
      }
      return {};
  }
  return "unknown collective kind";
}

}  // namespace scaffe::coll
