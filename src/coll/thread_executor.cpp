#include "coll/thread_executor.h"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gpu/kernels.h"
#include "util/memory_registry.h"

namespace scaffe::coll {

namespace {

// Receiver-first transfer protocol (mirrors the scmpi rendezvous single-claim
// path): each rank pre-posts the destination regions of the receives it is
// about to execute, and a sender that finds a posted slot copies (or
// accumulates) straight from its own buffer into the receiver's region — no
// intermediate payload allocation. Only when the sender arrives first does the
// message fall back to a staged copy in the edge queue.
//
// Pre-posting is restricted to a *window*: a maximal run of consecutive
// receive ops whose destination regions are pairwise disjoint and whose peers
// are distinct. Disjoint regions make the fills commute (each element is
// written exactly once per window, so sender-side accumulation preserves the
// program-order arithmetic bitwise); distinct peers keep at most one posted
// slot per (src, dst) edge, which together with per-edge FIFO staging
// preserves the non-overtaking guarantee.

// Staged copies recycle through the shared MemoryRegistry so sender-first
// fallbacks don't heap-allocate in steady state.
struct Message {
  int tag = 0;
  util::MemBlock storage;
  std::size_t count = 0;

  std::span<const float> payload() noexcept { return {storage.floats(), count}; }
};

/// A receive the receiver has posted on an edge. Lives on the receiver's
/// stack; the owning edge's mutex guards every field after posting.
struct PostedSlot {
  int tag = 0;
  std::size_t count = 0;
  std::span<float> region;
  bool reduce = false;  // RecvReduce vs Recv
  bool filled = false;
  std::string error;  // sender-detected tag/size mismatch
};

/// State for one directed (src, dst) pair: one posted slot at a time plus a
/// FIFO staging queue for messages that arrive before their receive is posted.
class Edge {
 public:
  /// Sender side. Fills the posted slot directly from `payload` when one is
  /// up, otherwise stages a copy.
  void send(int tag, std::span<const float> payload) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (slot_ != nullptr) {
        PostedSlot* slot = slot_;
        slot_ = nullptr;
        if (tag != slot->tag || payload.size() != slot->count) {
          std::ostringstream err;
          err << "expected tag " << slot->tag << "/" << slot->count << ", got tag "
              << tag << "/" << payload.size();
          slot->error = err.str();
        } else if (slot->reduce) {
          gpu::accumulate(payload, slot->region);
        } else {
          gpu::copy(payload, slot->region);
        }
        slot->filled = true;
      } else {
        Message message;
        message.tag = tag;
        // Transfer-routed: staged by the sending thread, released by the
        // receiver that consumes the message.
        message.storage = util::MemoryRegistry::instance().acquire(
            payload.size_bytes(), util::BlockRoute::kTransfer);
        message.count = payload.size();
        gpu::copy(payload, {message.storage.floats(), message.count});
        staged_.push_back(std::move(message));
      }
    }
    cv_.notify_all();
  }

  /// Receiver side. Consumes an already-staged message immediately (returning
  /// true) or posts `slot` for the next sender (returning false).
  bool post_or_consume(PostedSlot& slot) {
    Message message;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (staged_.empty()) {
        slot_ = &slot;
        return false;
      }
      message = std::move(staged_.front());
      staged_.pop_front();
    }
    // The staged copy is exclusively ours and the region belongs to the
    // receiver: apply outside the lock.
    if (message.tag != slot.tag || message.count != slot.count) {
      std::ostringstream err;
      err << "expected tag " << slot.tag << "/" << slot.count << ", got tag "
          << message.tag << "/" << message.count;
      slot.error = err.str();
    } else if (slot.reduce) {
      gpu::accumulate(message.payload(), slot.region);
    } else {
      gpu::copy(message.payload(), slot.region);
    }
    slot.filled = true;
    return true;
  }

  /// Receiver side: block until a sender fills `slot`.
  void wait(PostedSlot& slot) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return slot.filled; });
  }

  /// Receiver side: withdraw `slot` before it goes out of scope on an error
  /// path. The sender fill happens entirely under the edge mutex, so after
  /// this returns no sender can still hold a pointer to the slot.
  void unpost(PostedSlot& slot) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (slot_ == &slot) slot_ = nullptr;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  PostedSlot* slot_ = nullptr;
  std::deque<Message> staged_;
};

bool regions_overlap(const Op& a, const Op& b) {
  return a.offset < b.offset + b.count && b.offset < a.offset + a.count;
}

}  // namespace

void run_threaded(const Schedule& schedule, std::vector<std::span<float>> buffers) {
  const int nranks = schedule.nranks;
  if (static_cast<int>(buffers.size()) != nranks) {
    throw std::runtime_error("run_threaded: buffers.size() != nranks");
  }
  for (const auto& buffer : buffers) {
    if (buffer.size() != schedule.count) {
      throw std::runtime_error("run_threaded: buffer size mismatch");
    }
  }

  // Dense (src, dst) edge matrix. P is small in functional runs.
  std::vector<std::unique_ptr<Edge>> edges(static_cast<std::size_t>(nranks) *
                                           static_cast<std::size_t>(nranks));
  for (auto& edge : edges) edge = std::make_unique<Edge>();
  auto edge = [&](int src, int dst) -> Edge& {
    return *edges[static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks) +
                  static_cast<std::size_t>(dst)];
  };

  std::mutex error_mutex;
  std::string first_error;
  auto record_error = [&](const std::string& error) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error.empty()) first_error = error;
  };

  auto rank_body = [&](int rank) {
    std::span<float> buffer = buffers[static_cast<std::size_t>(rank)];
    const auto& ops = schedule.programs[static_cast<std::size_t>(rank)].ops;
    std::size_t i = 0;
    while (i < ops.size()) {
      if (ops[i].kind == OpKind::Send) {
        const Op& op = ops[i];
        edge(rank, op.peer).send(op.tag, buffer.subspan(op.offset, op.count));
        ++i;
        continue;
      }

      // Receive window: extend while the next op is a receive from a peer not
      // yet in the window whose region is disjoint from every window member.
      std::size_t window_end = i + 1;
      while (window_end < ops.size() && ops[window_end].kind != OpKind::Send) {
        bool eligible = true;
        for (std::size_t k = i; k < window_end; ++k) {
          if (ops[k].peer == ops[window_end].peer ||
              regions_overlap(ops[k], ops[window_end])) {
            eligible = false;
            break;
          }
        }
        if (!eligible) break;
        ++window_end;
      }

      // Post every receive in the window up-front, then drain in program
      // order. `pending[k]` is set when slot k is posted and a sender may
      // still fill it.
      std::vector<PostedSlot> slots(window_end - i);
      std::vector<bool> pending(window_end - i, false);
      auto unpost_window = [&] {
        for (std::size_t k = 0; k < slots.size(); ++k) {
          if (pending[k]) edge(ops[i + k].peer, rank).unpost(slots[k]);
        }
      };
      for (std::size_t k = 0; k < slots.size(); ++k) {
        const Op& op = ops[i + k];
        PostedSlot& slot = slots[k];
        slot.tag = op.tag;
        slot.count = op.count;
        slot.region = buffer.subspan(op.offset, op.count);
        slot.reduce = op.kind == OpKind::RecvReduce;
        pending[k] = !edge(op.peer, rank).post_or_consume(slot);
      }
      for (std::size_t k = 0; k < slots.size(); ++k) {
        if (pending[k]) {
          edge(ops[i + k].peer, rank).wait(slots[k]);
          pending[k] = false;
        }
        if (!slots[k].error.empty()) {
          unpost_window();
          std::ostringstream err;
          err << "rank " << rank << ": " << slots[k].error << " from "
              << ops[i + k].peer;
          record_error(err.str());
          return;
        }
      }
      i = window_end;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int rank = 0; rank < nranks; ++rank) threads.emplace_back(rank_body, rank);
  for (auto& thread : threads) thread.join();

  if (!first_error.empty()) throw std::runtime_error("run_threaded: " + first_error);
}

}  // namespace scaffe::coll
