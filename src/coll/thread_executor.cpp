#include "coll/thread_executor.h"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "gpu/kernels.h"

namespace scaffe::coll {

namespace {

struct Message {
  int tag;
  std::vector<float> payload;
};

/// FIFO mailbox for one (src, dst) pair.
class Mailbox {
 public:
  void push(Message message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
  }

  Message pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty(); });
    Message message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace

void run_threaded(const Schedule& schedule, std::vector<std::span<float>> buffers) {
  const int nranks = schedule.nranks;
  if (static_cast<int>(buffers.size()) != nranks) {
    throw std::runtime_error("run_threaded: buffers.size() != nranks");
  }
  for (const auto& buffer : buffers) {
    if (buffer.size() != schedule.count) {
      throw std::runtime_error("run_threaded: buffer size mismatch");
    }
  }

  // Dense (src, dst) mailbox matrix. P is small in functional runs.
  std::vector<std::unique_ptr<Mailbox>> mailboxes(
      static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks));
  for (auto& box : mailboxes) box = std::make_unique<Mailbox>();
  auto box = [&](int src, int dst) -> Mailbox& {
    return *mailboxes[static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks) +
                      static_cast<std::size_t>(dst)];
  };

  std::mutex error_mutex;
  std::string first_error;
  auto record_error = [&](const std::string& error) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error.empty()) first_error = error;
  };

  auto rank_body = [&](int rank) {
    std::span<float> buffer = buffers[static_cast<std::size_t>(rank)];
    for (const Op& op : schedule.programs[static_cast<std::size_t>(rank)].ops) {
      switch (op.kind) {
        case OpKind::Send: {
          Message message;
          message.tag = op.tag;
          message.payload.assign(buffer.begin() + static_cast<std::ptrdiff_t>(op.offset),
                                 buffer.begin() +
                                     static_cast<std::ptrdiff_t>(op.offset + op.count));
          box(rank, op.peer).push(std::move(message));
          break;
        }
        case OpKind::Recv:
        case OpKind::RecvReduce: {
          Message message = box(op.peer, rank).pop();
          if (message.tag != op.tag || message.payload.size() != op.count) {
            std::ostringstream err;
            err << "rank " << rank << ": expected tag " << op.tag << "/" << op.count
                << " from " << op.peer << ", got tag " << message.tag << "/"
                << message.payload.size();
            record_error(err.str());
            return;
          }
          std::span<float> region = buffer.subspan(op.offset, op.count);
          if (op.kind == OpKind::Recv) {
            gpu::copy(message.payload, region);
          } else {
            gpu::accumulate(message.payload, region);
          }
          break;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int rank = 0; rank < nranks; ++rank) threads.emplace_back(rank_body, rank);
  for (auto& thread : threads) thread.join();

  if (!first_error.empty()) throw std::runtime_error("run_threaded: " + first_error);
}

}  // namespace scaffe::coll
