// Discrete-event executor: prices a schedule on a modelled cluster.
//
// Every rank becomes a coroutine over sim::Engine; messages occupy shared
// per-node resources (PCIe switch domains for intra-node transfers, the HCA
// for inter-node sends), so flat algorithms at 160 ranks experience the NIC
// contention that motivates the hierarchical design, while one-leader-per-
// node upper levels do not.
#pragma once

#include <cstdint>
#include <vector>

#include "coll/exec_policy.h"
#include "coll/program.h"
#include "net/cluster.h"
#include "util/duration.h"

namespace scaffe::coll {

/// One executed op, for timeline analysis (captured on request).
struct TraceEvent {
  int rank = 0;
  OpKind kind = OpKind::Send;
  int peer = 0;
  std::size_t bytes = 0;
  util::TimeNs start = 0;  // op issue time (for receives: wait start)
  util::TimeNs end = 0;    // completion (reduce done / send injected)
};

struct SimResult {
  util::TimeNs total = 0;                  // completion time of the last rank
  util::TimeNs root_finish = 0;            // completion time of the root rank
  std::vector<util::TimeNs> rank_finish;   // per-rank completion times
  std::uint64_t events = 0;                // DES events processed
  std::vector<TraceEvent> trace;           // per-op timeline (when requested)
};

/// Simulates `schedule` on `cluster` under `policy`. Deterministic.
/// `capture_trace` additionally records every op's (start, end) interval.
SimResult simulate_schedule(const Schedule& schedule, const net::ClusterSpec& cluster,
                            const ExecPolicy& policy, bool capture_trace = false);

/// Resolves the staging a policy uses for one message on one path.
net::Staging resolve_staging(const ExecPolicy& policy, const net::CostModel& cost,
                             net::Path path, std::size_t bytes);

/// Reduction space a policy uses for one payload size.
net::ExecSpace resolve_reduce_space(const ExecPolicy& policy, const net::CostModel& cost,
                                    std::size_t bytes);

/// Sender-occupancy time including policy segmentation overheads.
util::TimeNs policy_sender_busy(const ExecPolicy& policy, const net::CostModel& cost,
                                net::Path path, net::Staging staging, std::size_t bytes);

}  // namespace scaffe::coll
