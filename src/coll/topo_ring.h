// Topology-aware ring collectives.
//
// The ring is ordered by net::Topology locality — ranks sorted by (node,
// local GPU) — so consecutive hops stay on fast intra-node links (PCIe
// P2P / NVLink) and each node pays exactly one inter-node uplink per
// direction, instead of the rank-id ring's accidental node crossings. The
// allreduce additionally splits the buffer into segments (sized from the
// tuning table / measured eager limit) and pipelines them, so the first
// segment's allgather overlaps the next segment's reduce-scatter.
#pragma once

#include <cstddef>
#include <vector>

#include "coll/program.h"
#include "net/topology.h"

namespace scaffe::coll {

/// Ranks in ring order: sorted by (node, local GPU), rotated so `first`
/// leads. Block placement makes this the identity rotation, but deriving it
/// from the topology keeps the schedule correct under any placement.
std::vector<int> topology_ring_order(const net::Topology& topo, int first = 0);

/// Pipelined chain reduce over the topology ring, ending at `root`.
Schedule topo_ring_reduce(const net::Topology& topo, int root, std::size_t count, int chunks);

/// Pipelined chain broadcast over the topology ring, starting at `root`.
Schedule topo_ring_bcast(const net::Topology& topo, int root, std::size_t count, int chunks);

/// Segmented ring allreduce: reduce-scatter + allgather per segment over the
/// topology ring, segments pipelined. `segment_bytes` targets the per-segment
/// payload (0 = one segment); the segment count is additionally capped so
/// giant simulated rings keep a bounded op count. Buffers smaller than the
/// ring fall back to reduce+bcast.
Schedule topo_ring_allreduce(const net::Topology& topo, std::size_t count,
                             std::size_t segment_bytes = 0);

}  // namespace scaffe::coll
