#include "coll/extensions.h"

#include <cassert>
#include <numeric>
#include <vector>

#include "coll/algorithms.h"

namespace scaffe::coll {

namespace {

/// Weight (k^pos) and digit of `value`'s lowest nonzero base-k digit.
std::pair<int, int> lowest_digit(int value, int radix) {
  int weight = 1;
  while (value % (weight * radix) == 0) weight *= radix;
  return {weight, (value / weight) % radix};
}

}  // namespace

FusedLayout FusedLayout::pack(const std::vector<std::size_t>& counts) {
  FusedLayout layout;
  layout.offsets.reserve(counts.size());
  layout.counts = counts;
  for (std::size_t count : counts) {
    layout.offsets.push_back(layout.total);
    layout.total += count;
  }
  return layout;
}

Schedule fused_chain_reduce(int nranks, int root, const FusedLayout& layout,
                            int max_chunks) {
  assert(max_chunks >= 1);
  Schedule schedule;
  schedule.name = "fused_chain_reduce";
  schedule.kind = CollectiveKind::Reduce;
  schedule.nranks = nranks;
  schedule.root = root;
  schedule.count = layout.total;
  schedule.programs.resize(static_cast<std::size_t>(nranks));
  if (nranks == 1 || layout.total == 0) return schedule;

  // Tensor-aligned chunking: tensor i goes to the pipeline chunk its start
  // offset falls in when the element span is cut into max_chunks even
  // slices. Assignments are nondecreasing in i, so each chunk is a
  // contiguous run of whole tensors; empty slices simply vanish.
  const std::size_t n = static_cast<std::size_t>(max_chunks);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;  // (offset, size)
  for (std::size_t i = 0; i < layout.counts.size(); ++i) {
    if (layout.counts[i] == 0) continue;
    const std::size_t slice = layout.offsets[i] * n / layout.total;
    const std::size_t prev_slice =
        chunks.empty() ? n : (chunks.back().first * n / layout.total);
    if (!chunks.empty() && slice == prev_slice) {
      chunks.back().second += layout.counts[i];
    } else {
      chunks.emplace_back(layout.offsets[i], layout.counts[i]);
    }
  }

  auto actual = [&](int position) { return (position + root) % nranks; };
  // Same hop structure and tag scheme as chain_reduce: chunk c flows from
  // the tail (position P-1) to the root at position 0.
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const auto [offset, size] = chunks[c];
    for (int position = nranks - 1; position >= 1; --position) {
      const int src = actual(position);
      const int dst = actual(position - 1);
      const int tag = static_cast<int>(c) * nranks + position;
      schedule.programs[static_cast<std::size_t>(src)].send(dst, tag, offset, size);
      schedule.programs[static_cast<std::size_t>(dst)].recv_reduce(src, tag, offset, size);
    }
  }
  return schedule;
}

Schedule knomial_reduce(int nranks, int root, std::size_t count, int radix) {
  assert(radix >= 2);
  Schedule schedule;
  schedule.name = "knomial_reduce_r" + std::to_string(radix);
  schedule.kind = CollectiveKind::Reduce;
  schedule.nranks = nranks;
  schedule.root = root;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));

  auto actual = [&](int relative) { return (relative + root) % nranks; };

  // Round with weight w: survivors are multiples of w*k; each receives from
  // its up-to-(k-1) children at r + d*w, which then retire.
  for (int weight = 1; weight < nranks; weight *= radix) {
    for (int receiver = 0; receiver < nranks; receiver += weight * radix) {
      for (int digit = 1; digit < radix; ++digit) {
        const int sender = receiver + digit * weight;
        if (sender >= nranks) break;
        schedule.programs[static_cast<std::size_t>(actual(sender))].send(actual(receiver),
                                                                         sender, 0, count);
        schedule.programs[static_cast<std::size_t>(actual(receiver))].recv_reduce(
            actual(sender), sender, 0, count);
      }
    }
  }
  return schedule;
}

Schedule knomial_bcast(int nranks, int root, std::size_t count, int radix) {
  assert(radix >= 2);
  Schedule schedule;
  schedule.name = "knomial_bcast_r" + std::to_string(radix);
  schedule.kind = CollectiveKind::Bcast;
  schedule.nranks = nranks;
  schedule.root = root;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));

  auto actual = [&](int relative) { return (relative + root) % nranks; };

  int top = 1;
  while (top < nranks) top *= radix;

  // Mirror of the reduce: rank r hears from its parent at the round of its
  // lowest nonzero digit, then feeds children at all smaller rounds.
  for (int relative = 0; relative < nranks; ++relative) {
    Program& program = schedule.programs[static_cast<std::size_t>(actual(relative))];
    int weight = top;
    if (relative != 0) {
      const auto [w, digit] = lowest_digit(relative, radix);
      weight = w;
      program.recv(actual(relative - digit * w), relative, 0, count);
    }
    for (int w = weight / radix; w >= 1; w /= radix) {
      for (int digit = 1; digit < radix; ++digit) {
        const int child = relative + digit * w;
        if (child < nranks) program.send(actual(child), child, 0, count);
      }
    }
  }
  return schedule;
}

Schedule three_level_reduce(int nranks, std::size_t count, int chain_size, int mid_size,
                            int chunks) {
  assert(chain_size >= 1 && mid_size >= 1);
  Schedule schedule;
  schedule.name = "three_level_CCB-" + std::to_string(chain_size) + "x" +
                  std::to_string(mid_size);
  schedule.kind = CollectiveKind::Reduce;
  schedule.nranks = nranks;
  schedule.root = 0;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));
  if (nranks == 1) return schedule;

  // Level 1: chains of chain_size consecutive ranks -> leaders.
  std::vector<int> leaders;
  int tag_base = 0;
  for (int start = 0; start < nranks; start += chain_size) {
    std::vector<int> group;
    for (int r = start; r < std::min(start + chain_size, nranks); ++r) group.push_back(r);
    leaders.push_back(start);
    if (group.size() >= 2) {
      tag_base = detail::append_subschedule(
          schedule, chain_reduce(static_cast<int>(group.size()), 0, count, chunks), group,
          tag_base);
    }
  }

  // Level 2: chains of mid_size leaders -> super-leaders.
  std::vector<int> super_leaders;
  for (std::size_t start = 0; start < leaders.size();
       start += static_cast<std::size_t>(mid_size)) {
    std::vector<int> group(leaders.begin() + static_cast<std::ptrdiff_t>(start),
                           leaders.begin() +
                               static_cast<std::ptrdiff_t>(std::min(
                                   start + static_cast<std::size_t>(mid_size), leaders.size())));
    super_leaders.push_back(group.front());
    if (group.size() >= 2) {
      tag_base = detail::append_subschedule(
          schedule, chain_reduce(static_cast<int>(group.size()), 0, count, chunks), group,
          tag_base);
    }
  }

  // Level 3: binomial over the super-leaders to rank 0.
  if (super_leaders.size() >= 2) {
    detail::append_subschedule(
        schedule, binomial_reduce(static_cast<int>(super_leaders.size()), 0, count),
        super_leaders, tag_base);
  }
  return schedule;
}

Schedule rabenseifner_reduce(int nranks, std::size_t count) {
  assert(nranks >= 2);
  assert((nranks & (nranks - 1)) == 0 && "rabenseifner_reduce requires power-of-two ranks");
  assert(count >= static_cast<std::size_t>(nranks));

  Schedule schedule;
  schedule.name = "rabenseifner_reduce";
  schedule.kind = CollectiveKind::Reduce;
  schedule.nranks = nranks;
  schedule.root = 0;
  schedule.count = count;
  schedule.programs.resize(static_cast<std::size_t>(nranks));

  const auto blocks = partition_chunks(count, nranks);
  // Element range covered by blocks [lo, hi).
  auto range = [&](int lo, int hi) {
    const std::size_t offset = blocks[static_cast<std::size_t>(lo)].first;
    const std::size_t end = blocks[static_cast<std::size_t>(hi - 1)].first +
                            blocks[static_cast<std::size_t>(hi - 1)].second;
    return std::pair<std::size_t, std::size_t>(offset, end - offset);
  };

  int steps = 0;
  for (int p = 1; p < nranks; p <<= 1) ++steps;

  // Phase 1: recursive-halving reduce-scatter. Each rank's live block window
  // narrows by half per step; it ships the half it gives up and folds in the
  // half it keeps. After all steps rank r owns (fully reduced) block r.
  for (int rank = 0; rank < nranks; ++rank) {
    Program& program = schedule.programs[static_cast<std::size_t>(rank)];
    int lo = 0;
    int hi = nranks;
    for (int step = 0; step < steps; ++step) {
      const int distance = nranks >> (step + 1);
      const int partner = rank ^ distance;
      const int mid = (lo + hi) / 2;
      const bool keep_upper = (rank & distance) != 0;
      const auto [send_off, send_cnt] = keep_upper ? range(lo, mid) : range(mid, hi);
      const auto [keep_off, keep_cnt] = keep_upper ? range(mid, hi) : range(lo, mid);
      program.send(partner, step, send_off, send_cnt);
      program.recv_reduce(partner, step, keep_off, keep_cnt);
      if (keep_upper) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }

  // Phase 2: binomial gather of the scattered blocks to rank 0. At level
  // `mask`, rank r (with the mask bit set) owns blocks [r, r+mask) and ships
  // them to r - mask; receives overwrite (blocks are final).
  for (int mask = 1; mask < nranks; mask <<= 1) {
    for (int sender = mask; sender < nranks; sender += 2 * mask) {
      if ((sender & (mask - 1)) != 0) continue;
      const auto [offset, cnt] = range(sender, sender + mask);
      const int receiver = sender - mask;
      const int tag = steps + sender;
      schedule.programs[static_cast<std::size_t>(sender)].send(receiver, tag, offset, cnt);
      schedule.programs[static_cast<std::size_t>(receiver)].recv(sender, tag, offset, cnt);
    }
  }
  return schedule;
}

}  // namespace scaffe::coll
