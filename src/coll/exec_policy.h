// Execution policies: how a schedule's messages and reductions are priced.
//
// A policy captures the *runtime implementation* the schedule runs inside —
// the knobs that separate the proposed DL-aware design from MVAPICH2 and
// OpenMPI in Figures 11/12:
//   - staging of GPU buffers (GDR / pipelined host / synchronous host),
//   - where the reduction kernel runs (GPU vs CPU),
//   - internal segmentation with per-segment software overhead (the
//     OpenMPI 1.10 GPU path pays a synchronous cuMemcpy per segment).
#pragma once

#include <cstddef>
#include <string>

#include "net/cost_model.h"
#include "util/bytes.h"

namespace scaffe::coll {

struct ExecPolicy {
  std::string name = "default";

  net::Staging intra = net::Staging::Gdr;
  net::Staging inter = net::Staging::Gdr;

  /// When set, each message independently picks the cheaper of GDR and
  /// pipelined host staging for its path — the MVAPICH2-GDR protocol
  /// selection (GDR for small messages, host pipeline for large).
  bool auto_staging = false;

  net::ExecSpace reduce_space = net::ExecSpace::Gpu;

  /// When set, each reduction picks the cheaper of GPU-kernel and CPU
  /// summation for its size — GPU launch overhead makes tiny reductions
  /// cheaper on the CPU (Section 3.4), large DL buffers belong on the GPU.
  bool auto_reduce_space = false;

  /// Internal segmentation: 0 disables. Each segment pays
  /// `per_segment_overhead` on top of its serialization time.
  std::size_t segment_bytes = 0;
  util::TimeNs per_segment_overhead = 0;

  /// The proposed DL-aware runtime: GDR/pipelined auto staging, GPU-kernel
  /// reductions, no pathological segmentation.
  static ExecPolicy hr_gdr() {
    ExecPolicy p;
    p.name = "HR";
    p.auto_staging = true;
    p.reduce_space = net::ExecSpace::Gpu;
    p.auto_reduce_space = true;
    return p;
  }

  /// MVAPICH2 2.2RC1 model: CUDA-aware with GDR/GDRCOPY and pipelined host
  /// staging, but reductions run on the CPU ("MPI runtimes can use the CPU
  /// to perform such small reductions", Section 3.4).
  static ExecPolicy mvapich2() {
    ExecPolicy p;
    p.name = "MV2";
    p.auto_staging = true;
    p.reduce_space = net::ExecSpace::Host;
    return p;
  }

  /// OpenMPI v1.10.2 model: synchronous host staging with small internal
  /// segments, each paying a blocking cuMemcpy round trip; CPU reductions.
  static ExecPolicy openmpi() {
    ExecPolicy p;
    p.name = "OpenMPI";
    p.intra = net::Staging::HostSync;
    p.inter = net::Staging::HostSync;
    p.reduce_space = net::ExecSpace::Host;
    p.segment_bytes = 4 * util::kKiB;
    p.per_segment_overhead = 44 * util::kUs;
    return p;
  }
};

}  // namespace scaffe::coll
