#include "coll/dbt.h"

#include <algorithm>
#include <cassert>

#include "coll/algorithms.h"
#include "coll/schedule_graph.h"

namespace scaffe::coll {

namespace detail {

namespace {

/// In-order binary tree over [lo, hi]: the subtree root sits at lo + 2^k - 1
/// for the largest 2^k <= size, giving a perfect left subtree. Interior
/// nodes land on odd offsets, leaves on even ones.
void build_inorder(int lo, int hi, int parent, std::vector<int>& par) {
  if (lo > hi) return;
  const int size = hi - lo + 1;
  int power = 1;
  while (power * 2 <= size) power *= 2;
  const int root = lo + power - 1;
  par[static_cast<std::size_t>(root)] = parent;
  build_inorder(lo, root - 1, root, par);
  build_inorder(root + 1, hi, root, par);
}

}  // namespace

DoubleTree build_double_tree(int nranks) {
  assert(nranks >= 1);
  DoubleTree tree;
  tree.parent0.assign(static_cast<std::size_t>(nranks), -1);
  tree.parent1.assign(static_cast<std::size_t>(nranks), -1);
  build_inorder(0, nranks - 1, -1, tree.parent0);

  // Tree 1 must make tree 0's leaves (even ranks) interior. Mirroring
  // achieves that when nranks is even (parity flips); for odd counts the
  // mirror preserves parity, so shift the whole tree by one instead.
  const bool mirror = nranks % 2 == 0;
  for (int r = 0; r < nranks; ++r) {
    const int parent = tree.parent0[static_cast<std::size_t>(r)];
    if (mirror) {
      tree.parent1[static_cast<std::size_t>(nranks - 1 - r)] =
          parent < 0 ? -1 : nranks - 1 - parent;
    } else {
      tree.parent1[static_cast<std::size_t>((r + 1) % nranks)] =
          parent < 0 ? -1 : (parent + 1) % nranks;
    }
  }
  for (int r = 0; r < nranks; ++r) {
    if (tree.parent0[static_cast<std::size_t>(r)] < 0) tree.root0 = r;
    if (tree.parent1[static_cast<std::size_t>(r)] < 0) tree.root1 = r;
  }
  return tree;
}

}  // namespace detail

namespace {

/// Height above the deepest leaf: 0 for leaves, 1 + max(children) otherwise.
std::vector<int> tree_heights(const std::vector<int>& parent) {
  const int n = static_cast<int>(parent.size());
  std::vector<int> height(static_cast<std::size_t>(n), 0);
  // Repeated relaxation is fine at log-depth trees: order ranks by depth.
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    int d = 0;
    for (int cur = r; parent[static_cast<std::size_t>(cur)] >= 0;
         cur = parent[static_cast<std::size_t>(cur)])
      ++d;
    depth[static_cast<std::size_t>(r)] = d;
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) order[static_cast<std::size_t>(r)] = r;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return depth[static_cast<std::size_t>(a)] > depth[b]; });
  for (int r : order) {
    const int p = parent[static_cast<std::size_t>(r)];
    if (p >= 0) {
      height[static_cast<std::size_t>(p)] =
          std::max(height[static_cast<std::size_t>(p)], height[static_cast<std::size_t>(r)] + 1);
    }
  }
  return height;
}

std::vector<int> tree_depths(const std::vector<int>& parent) {
  const int n = static_cast<int>(parent.size());
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    int d = 0;
    for (int cur = r; parent[static_cast<std::size_t>(cur)] >= 0;
         cur = parent[static_cast<std::size_t>(cur)])
      ++d;
    depth[static_cast<std::size_t>(r)] = d;
  }
  return depth;
}

int pick_chunks(std::size_t half_count, int chunks) {
  if (chunks > 0) return chunks;
  // ~1 chunk per 512 KiB of the half-buffer, clamped — the same adaptive
  // policy the tuner applies to chain pipelining.
  const std::size_t bytes = half_count * sizeof(float);
  return static_cast<int>(std::clamp<std::size_t>(bytes / (512 * 1024), 8, 64));
}

struct DbtPlan {
  detail::DoubleTree tree;
  std::vector<std::pair<std::size_t, std::size_t>> halves;  // (offset, count) per tree
  int max_height = 0;
  int stride = 0;  // per-chunk step stride covering both phases' depth
};

DbtPlan make_plan(int nranks, std::size_t count) {
  DbtPlan plan;
  plan.tree = detail::build_double_tree(nranks);
  const std::size_t half = count / 2;
  plan.halves = {{0, half}, {half, count - half}};
  const auto h0 = tree_heights(plan.tree.parent0);
  const auto h1 = tree_heights(plan.tree.parent1);
  plan.max_height = std::max(*std::max_element(h0.begin(), h0.end()),
                             *std::max_element(h1.begin(), h1.end()));
  plan.stride = plan.max_height + 3;  // heights, plus a root hop, plus slack
  return plan;
}

/// Reduce one tree's half up to its tree root; when `to_relative0` is set,
/// the tree root forwards each reduced chunk to relative rank 0.
void emit_tree_reduce(ScheduleGraph& graph, const std::vector<int>& parent, int tree_root,
                      const std::vector<int>& actual, std::size_t offset, std::size_t count,
                      int chunks, int stride, int step_base, bool to_relative0) {
  if (count == 0) return;
  const int nranks = static_cast<int>(parent.size());
  const auto heights = tree_heights(parent);
  const auto parts = partition_chunks(count, chunks);
  for (std::size_t c = 0; c < parts.size(); ++c) {
    const int chunk_base = step_base + static_cast<int>(c) * stride;
    const auto [part_offset, part_count] = parts[c];
    for (int r = 0; r < nranks; ++r) {
      const int p = parent[static_cast<std::size_t>(r)];
      if (p < 0) continue;
      // A rank folds in all children of chunk c at step h(rank), then sends
      // the chunk upward at step h(parent) > h(rank).
      graph.reduce(actual[static_cast<std::size_t>(r)], actual[static_cast<std::size_t>(p)],
                   chunk_base + heights[static_cast<std::size_t>(p)], offset + part_offset,
                   part_count);
    }
    if (to_relative0 && tree_root != 0) {
      // Overwrite, not accumulate: the tree sum already contains relative
      // rank 0's own contribution (it fed its chunk in as a tree node).
      graph.copy(actual[static_cast<std::size_t>(tree_root)], actual[0],
                 chunk_base + heights[static_cast<std::size_t>(tree_root)] + 1,
                 offset + part_offset, part_count);
    }
  }
}

/// Broadcast one tree's half down from its tree root; when `from_relative0`
/// is set, relative rank 0 first feeds each chunk to the tree root.
void emit_tree_bcast(ScheduleGraph& graph, const std::vector<int>& parent, int tree_root,
                     const std::vector<int>& actual, std::size_t offset, std::size_t count,
                     int chunks, int stride, int step_base, bool from_relative0) {
  if (count == 0) return;
  const int nranks = static_cast<int>(parent.size());
  const auto depths = tree_depths(parent);
  const auto parts = partition_chunks(count, chunks);
  for (std::size_t c = 0; c < parts.size(); ++c) {
    const int chunk_base = step_base + static_cast<int>(c) * stride;
    const auto [part_offset, part_count] = parts[c];
    if (from_relative0 && tree_root != 0) {
      graph.copy(actual[0], actual[static_cast<std::size_t>(tree_root)], chunk_base,
                 offset + part_offset, part_count);
    }
    for (int r = 0; r < nranks; ++r) {
      const int p = parent[static_cast<std::size_t>(r)];
      if (p < 0) continue;
      graph.copy(actual[static_cast<std::size_t>(p)], actual[static_cast<std::size_t>(r)],
                 chunk_base + 1 + depths[static_cast<std::size_t>(r)], offset + part_offset,
                 part_count);
    }
  }
}

std::vector<int> relative_to_actual(int nranks, int root) {
  std::vector<int> actual(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) actual[static_cast<std::size_t>(r)] = (r + root) % nranks;
  return actual;
}

}  // namespace

Schedule dbt_reduce(int nranks, int root, std::size_t count, int chunks) {
  if (nranks > 1 && count < 2) return binomial_reduce(nranks, root, count);
  ScheduleGraph graph("dbt_reduce", CollectiveKind::Reduce, nranks, root, count);
  if (nranks > 1) {
    const DbtPlan plan = make_plan(nranks, count);
    const auto actual = relative_to_actual(nranks, root);
    const int n = pick_chunks(plan.halves[0].second, chunks);
    emit_tree_reduce(graph, plan.tree.parent0, plan.tree.root0, actual, plan.halves[0].first,
                     plan.halves[0].second, n, plan.stride, 0, /*to_relative0=*/true);
    emit_tree_reduce(graph, plan.tree.parent1, plan.tree.root1, actual, plan.halves[1].first,
                     plan.halves[1].second, n, plan.stride, 0, /*to_relative0=*/true);
  }
  return graph.compile();
}

Schedule dbt_bcast(int nranks, int root, std::size_t count, int chunks) {
  if (nranks > 1 && count < 2) return binomial_bcast(nranks, root, count);
  ScheduleGraph graph("dbt_bcast", CollectiveKind::Bcast, nranks, root, count);
  if (nranks > 1) {
    const DbtPlan plan = make_plan(nranks, count);
    const auto actual = relative_to_actual(nranks, root);
    const int n = pick_chunks(plan.halves[0].second, chunks);
    emit_tree_bcast(graph, plan.tree.parent0, plan.tree.root0, actual, plan.halves[0].first,
                    plan.halves[0].second, n, plan.stride, 0, /*from_relative0=*/true);
    emit_tree_bcast(graph, plan.tree.parent1, plan.tree.root1, actual, plan.halves[1].first,
                    plan.halves[1].second, n, plan.stride, 0, /*from_relative0=*/true);
  }
  return graph.compile();
}

Schedule dbt_allreduce(int nranks, std::size_t count, int chunks) {
  if (nranks > 1 && count < 2) {
    Schedule schedule = binomial_reduce(nranks, 0, count);
    schedule.name = "dbt_allreduce_fallback";
    schedule.kind = CollectiveKind::Allreduce;
    std::vector<int> identity(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) identity[static_cast<std::size_t>(r)] = r;
    detail::append_subschedule(schedule, binomial_bcast(nranks, 0, count), identity,
                               detail::max_tag(schedule) + 1);
    return schedule;
  }
  ScheduleGraph graph("dbt_allreduce", CollectiveKind::Allreduce, nranks, 0, count);
  if (nranks > 1) {
    const DbtPlan plan = make_plan(nranks, count);
    const auto actual = relative_to_actual(nranks, 0);
    const int n = pick_chunks(plan.halves[0].second, chunks);
    // Reduce up to the tree roots (no extra hop), then broadcast each chunk
    // back down the same trees. The bcast of chunk c starts right after its
    // own reduce reaches the tree root (step offset max_height + 1), so the
    // down-phase pipelines behind the up-phase instead of waiting for every
    // chunk to finish reducing.
    const int bcast_base = plan.max_height + 1;
    emit_tree_reduce(graph, plan.tree.parent0, plan.tree.root0, actual, plan.halves[0].first,
                     plan.halves[0].second, n, plan.stride, 0, /*to_relative0=*/false);
    emit_tree_reduce(graph, plan.tree.parent1, plan.tree.root1, actual, plan.halves[1].first,
                     plan.halves[1].second, n, plan.stride, 0, /*to_relative0=*/false);
    emit_tree_bcast(graph, plan.tree.parent0, plan.tree.root0, actual, plan.halves[0].first,
                    plan.halves[0].second, n, plan.stride, bcast_base, /*from_relative0=*/false);
    emit_tree_bcast(graph, plan.tree.parent1, plan.tree.root1, actual, plan.halves[1].first,
                    plan.halves[1].second, n, plan.stride, bcast_base, /*from_relative0=*/false);
  }
  return graph.compile();
}

}  // namespace scaffe::coll
