// Concurrent schedule executor: one thread per rank, real float buffers.
//
// This is the engine the scmpi runtime uses for its collectives. Message
// passing goes through per-(src,dst) FIFO mailboxes with tag checking;
// RecvReduce folds payloads with the gpu::accumulate kernel.
#pragma once

#include <span>
#include <vector>

#include "coll/program.h"

namespace scaffe::coll {

/// Executes `schedule` with each rank working in-place on `buffers[rank]`
/// (span of schedule.count floats). Blocks until all ranks finish.
/// Throws std::runtime_error on tag mismatch or size corruption.
void run_threaded(const Schedule& schedule, std::vector<std::span<float>> buffers);

}  // namespace scaffe::coll
