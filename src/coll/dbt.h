// Double-binary-tree collectives (the NCCL-era tree schedule).
//
// Two complementary in-order binary trees are built over the relative ranks;
// each tree carries half of the payload, pipelined in chunks. Every rank is
// interior in at most one tree (tree 1 is the mirror image of tree 0 for
// even rank counts, its cyclic shift for odd), so at steady state each rank
// receives one half while sending the other — full bidirectional link
// utilization, where a single tree would leave every leaf's uplink idle.
// Depth is log2(P) as with the binomial tree, but the chunk pipeline means
// total time approaches bytes/bandwidth instead of log2(P) * bytes/bandwidth:
// the schedule that overtakes CB-k/CC-k hierarchies at 512+ ranks.
#pragma once

#include <cstddef>
#include <vector>

#include "coll/program.h"

namespace scaffe::coll {

/// Reduce to `root`, both halves pipelined in `chunks` pieces per tree
/// (chunks <= 0 picks an adaptive count). Buffers with fewer than 2 elements
/// fall back to a binomial tree.
Schedule dbt_reduce(int nranks, int root, std::size_t count, int chunks = 0);

/// Broadcast from `root` — the mirror of the reduce.
Schedule dbt_bcast(int nranks, int root, std::size_t count, int chunks = 0);

/// Allreduce: reduce up each tree to its tree root, then broadcast back down
/// the same trees; no extra hop through a global root.
Schedule dbt_allreduce(int nranks, std::size_t count, int chunks = 0);

namespace detail {

/// The two complementary in-order trees over ranks 0..nranks-1; parent of
/// the tree root is -1. Rank 0 is never interior in tree 0.
struct DoubleTree {
  std::vector<int> parent0;
  std::vector<int> parent1;
  int root0 = 0;
  int root1 = 0;
};

DoubleTree build_double_tree(int nranks);

}  // namespace detail

}  // namespace scaffe::coll
