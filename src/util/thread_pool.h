// Shared worker pool behind every parallel loop in the functional substrate.
//
// parallel_for splits [begin, end) into fixed `grain`-sized chunks whose
// boundaries depend only on the range and the grain — never on the thread
// count — so any computation whose per-chunk work is self-contained (or that
// reduces chunk partials in chunk order afterwards) produces bitwise-identical
// results under SCAFFE_THREADS=1 and SCAFFE_THREADS=64.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scaffe::util {

class ThreadPool {
 public:
  /// A pool that runs jobs on up to `threads` threads including the caller
  /// (clamped to >= 1). Worker threads start lazily on the first job that
  /// actually goes parallel; a 1-thread pool never spawns anything.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const noexcept { return threads_; }

  /// Runs fn(chunk_begin, chunk_end) over every grain-sized chunk of
  /// [begin, end). Falls back to inline execution (with identical chunk
  /// boundaries) when the range is a single chunk, the pool has one thread,
  /// the call is nested inside a running chunk, or another caller currently
  /// owns the pool — so concurrent callers (scmpi rank threads, streams)
  /// never block on each other. The first exception thrown by fn is
  /// rethrown on the calling thread after the job drains.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// True on a thread currently executing a parallel_for chunk.
  static bool in_parallel_region() noexcept;

  /// Process-wide pool. Thread count comes from the SCAFFE_THREADS
  /// environment variable, else hardware_concurrency(), clamped to >= 1.
  static ThreadPool& global();

  /// Replaces the global pool (bench/test hook). Only safe while no
  /// parallel_for is in flight; references from global() are invalidated.
  static void set_global_threads(int threads);

 private:
  void start_workers_locked();
  void worker_loop();
  void run_chunks(std::uint64_t generation);
  bool claim_chunk(std::uint64_t generation, std::size_t& chunk_begin, std::size_t& chunk_end);
  void complete_chunk(std::uint64_t generation, std::exception_ptr error);

  const int threads_;

  std::mutex submit_mutex_;  // held by the thread that owns the current job

  std::mutex mutex_;  // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stop_ = false;

  // Current job; chunk claims are mutex-protected (chunks are coarse by
  // construction, so the lock is off the hot path).
  std::uint64_t generation_ = 0;
  bool job_active_ = false;
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  std::size_t job_grain_ = 1;
  std::size_t job_chunks_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t done_chunks_ = 0;
  std::exception_ptr job_error_;
};

/// Convenience wrapper over the global pool.
inline void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, grain, fn);
}

}  // namespace scaffe::util
