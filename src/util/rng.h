// Deterministic, seedable pseudo-random number generation.
//
// All randomness in the repository flows through Rng so that runs are exactly
// reproducible from a seed. The generator is splitmix64-seeded xoshiro256**.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace scaffe::util {

/// xoshiro256** generator with splitmix64 seeding. Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5ca7fe2017ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded sampling (biased tail negligible
    // for simulation purposes; we keep the simple multiply-shift form).
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace scaffe::util
