// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage:
//   SCAFFE_LOG(Info) << "starting run with P=" << p;
//   util::set_log_level(util::LogLevel::Warn);
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace scaffe::util {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level) noexcept;

/// Returns the current global minimum level.
LogLevel log_level() noexcept;

/// Returns a short name ("INFO", "WARN", ...) for a level.
const char* level_name(LogLevel level) noexcept;

namespace detail {

/// Accumulates one log line and flushes it (atomically) on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

bool level_enabled(LogLevel level) noexcept;

}  // namespace detail

}  // namespace scaffe::util

#define SCAFFE_LOG(severity)                                                          \
  if (!::scaffe::util::detail::level_enabled(::scaffe::util::LogLevel::severity)) {  \
  } else                                                                              \
    ::scaffe::util::detail::LogLine(::scaffe::util::LogLevel::severity, __FILE__, __LINE__)
