#include "util/memory_registry.h"

#include <algorithm>
#include <unordered_map>

namespace scaffe::util {

namespace {

// Live-registry table: maps registry id -> registry for exiting threads that
// need to drain their shards back. Leaked on purpose so thread_local
// destructors running during process teardown can still consult it.
struct RegistryTable {
  std::mutex mutex;
  std::unordered_map<std::uint64_t, MemoryRegistry*> live;
  std::uint64_t next_id = 1;
};

RegistryTable& registry_table() {
  static RegistryTable* table = new RegistryTable;
  return *table;
}

std::uint64_t register_registry(MemoryRegistry* registry) {
  RegistryTable& table = registry_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  const std::uint64_t id = table.next_id++;
  table.live.emplace(id, registry);
  return id;
}

// Trivially-destructible flag readable even after the ThreadShards object
// below is destroyed (late give_backs during thread teardown fall back to
// the registry's global shard).
thread_local bool g_tls_alive = false;

}  // namespace

// One thread's private shards, one entry per registry it has touched
// (normally just the process-wide instance; tests add short-lived ones).
// Entries are keyed by registry id — ids are never reused, so a shard for a
// dead registry is inert until the thread exits.
struct ThreadShards {
  struct Shard {
    std::uint64_t registry_id = 0;
    MemoryRegistry::FreeLists lists;
  };

  ThreadShards() { g_tls_alive = true; }

  // Drain every shard back into its registry's global shard so rank threads
  // recycled across elastic runs return their cache instead of leaking it
  // (the blocks stay counted in cached_bytes either way). Shards of dead
  // registries just free; their accounting died with them.
  ~ThreadShards() {
    g_tls_alive = false;
    RegistryTable& table = registry_table();
    std::lock_guard<std::mutex> lock(table.mutex);
    for (Shard& shard : shards) {
      auto it = table.live.find(shard.registry_id);
      if (it == table.live.end()) continue;
      MemoryRegistry* registry = it->second;
      std::lock_guard<std::mutex> global(registry->global_mutex_);
      for (std::size_t ci = 0; ci < MemoryRegistry::kNumClasses; ++ci) {
        auto& list = shard.lists[ci];
        for (auto& block : list) {
          registry->global_lists_[ci].push_back(std::move(block));
        }
        list.clear();
      }
    }
  }

  Shard& shard_for(std::uint64_t registry_id) {
    for (Shard& shard : shards) {
      if (shard.registry_id == registry_id) return shard;
    }
    shards.emplace_back();
    shards.back().registry_id = registry_id;
    return shards.back();
  }

  std::vector<Shard> shards;
};

namespace {

ThreadShards* thread_shards() {
  thread_local ThreadShards shards;
  return g_tls_alive ? &shards : nullptr;
}

}  // namespace

// --- MemBlock ---------------------------------------------------------------

MemBlock& MemBlock::operator=(MemBlock&& other) noexcept {
  if (this != &other) {
    if (registry_ && data_) registry_->give_back(std::move(data_), capacity_, route_);
    registry_ = std::exchange(other.registry_, nullptr);
    data_ = std::move(other.data_);
    capacity_ = std::exchange(other.capacity_, 0);
    size_ = std::exchange(other.size_, 0);
    recycled_ = std::exchange(other.recycled_, false);
    route_ = other.route_;
  }
  return *this;
}

MemBlock::~MemBlock() {
  if (registry_ && data_) registry_->give_back(std::move(data_), capacity_, route_);
}

MemBlock MemBlock::heap(std::size_t size) {
  const std::size_t capacity = MemoryRegistry::size_class(size);
  return MemBlock(nullptr, std::make_unique<std::byte[]>(capacity), capacity, size,
                  /*recycled=*/false, BlockRoute::kScratch);
}

// --- MemoryRegistry ---------------------------------------------------------

MemoryRegistry::MemoryRegistry(std::size_t budget_bytes)
    : id_(register_registry(this)), budget_bytes_(budget_bytes) {}

MemoryRegistry::~MemoryRegistry() {
  {
    // Deregister first: an exiting thread holding the table lock cannot be
    // mid-drain into this registry once the id is gone.
    RegistryTable& table = registry_table();
    std::lock_guard<std::mutex> lock(table.mutex);
    table.live.erase(id_);
  }
  std::lock_guard<std::mutex> lock(global_mutex_);
  for (auto& list : global_lists_) list.clear();
}

void MemoryRegistry::note_live(std::size_t capacity) noexcept {
  const std::size_t live =
      live_bytes_.fetch_add(capacity, std::memory_order_relaxed) + capacity;
  std::size_t peak = peak_live_bytes_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_live_bytes_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

MemBlock MemoryRegistry::acquire(std::size_t size, BlockRoute route) {
  const std::size_t capacity = size_class(size);
  const std::size_t ci = class_index(capacity);
  const bool local_class = route == BlockRoute::kScratch && capacity <= kLocalClassMax;
  // Fast path: this thread's shard, no locks. Transfer blocks and large
  // classes never land in a local shard (give_back routes them global), so
  // skip the lookup for them.
  if (ThreadShards* tls = local_class ? thread_shards() : nullptr) {
    auto& list = tls->shard_for(id_).lists[ci];
    if (!list.empty()) {
      std::unique_ptr<std::byte[]> block = std::move(list.back());
      list.pop_back();
      cached_bytes_.fetch_sub(capacity, std::memory_order_relaxed);
      local_hits_.fetch_add(1, std::memory_order_relaxed);
      note_live(capacity);
      return MemBlock(this, std::move(block), capacity, size, /*recycled=*/true, route);
    }
  }
  // Local miss: the global shard, one mutex.
  {
    std::lock_guard<std::mutex> lock(global_mutex_);
    auto& list = global_lists_[ci];
    if (!list.empty()) {
      std::unique_ptr<std::byte[]> block = std::move(list.back());
      list.pop_back();
      cached_bytes_.fetch_sub(capacity, std::memory_order_relaxed);
      global_hits_.fetch_add(1, std::memory_order_relaxed);
      note_live(capacity);
      return MemBlock(this, std::move(block), capacity, size, /*recycled=*/true, route);
    }
  }
  // Fresh block, allocated outside any lock. Transfer misses over-allocate
  // spares into the global shard: transfer demand is set by message timing,
  // so each miss marks a new in-flight high-water mark that jitter will
  // reach again — the spares give the pool headroom past it, and the miss
  // counter goes flat once the pool has outgrown the steady-state peak.
  // Scratch misses stay 1:1 (device blocks and solver buckets are too big
  // to double).
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (route == BlockRoute::kTransfer) {
    const int spares = std::max<int>(
        kTransferSpares, static_cast<int>(kTransferSpareBytes / capacity));
    for (int spare = 0; spare < spares; ++spare) {
      if (cached_bytes_.load(std::memory_order_relaxed) + capacity >=
          budget_bytes_.load(std::memory_order_relaxed)) {
        break;
      }
      std::unique_ptr<std::byte[]> block = std::make_unique<std::byte[]>(capacity);
      std::lock_guard<std::mutex> lock(global_mutex_);
      global_lists_[ci].push_back(std::move(block));
      cached_bytes_.fetch_add(capacity, std::memory_order_relaxed);
    }
  }
  note_live(capacity);
  return MemBlock(this, std::make_unique<std::byte[]>(capacity), capacity, size,
                  /*recycled=*/false, route);
}

void MemoryRegistry::give_back(std::unique_ptr<std::byte[]> data, std::size_t capacity,
                               BlockRoute route) noexcept {
  live_bytes_.fetch_sub(capacity, std::memory_order_relaxed);
  // Budget check is relaxed/approximate: racing releases can each overshoot
  // by at most their own block before the counter settles.
  if (cached_bytes_.load(std::memory_order_relaxed) + capacity >
      budget_bytes_.load(std::memory_order_relaxed)) {
    return;  // free to the heap
  }
  const std::size_t ci = class_index(capacity);
  // Transfer blocks were acquired on a different thread than this one and
  // will be next acquired there again; large classes would strand too much
  // of the budget per thread. Both recycle global-only (header invariants).
  const bool local_class = route == BlockRoute::kScratch && capacity <= kLocalClassMax;
  if (ThreadShards* tls = local_class ? thread_shards() : nullptr) {
    auto& list = tls->shard_for(id_).lists[ci];
    if (list.size() < kLocalDepth) {
      list.push_back(std::move(data));
      cached_bytes_.fetch_add(capacity, std::memory_order_relaxed);
      return;
    }
  }
  // Local shard full, transfer route, large class, or thread exiting: the
  // global shard.
  std::lock_guard<std::mutex> lock(global_mutex_);
  global_lists_[ci].push_back(std::move(data));
  cached_bytes_.fetch_add(capacity, std::memory_order_relaxed);
}

void MemoryRegistry::reserve(std::size_t size, std::size_t count) {
  const std::size_t capacity = size_class(size);
  const std::size_t ci = class_index(capacity);
  for (std::size_t i = 0; i < count; ++i) {
    if (cached_bytes_.load(std::memory_order_relaxed) + capacity >=
        budget_bytes_.load(std::memory_order_relaxed)) {
      return;
    }
    std::unique_ptr<std::byte[]> block = std::make_unique<std::byte[]>(capacity);
    std::lock_guard<std::mutex> lock(global_mutex_);
    global_lists_[ci].push_back(std::move(block));
    cached_bytes_.fetch_add(capacity, std::memory_order_relaxed);
  }
}

void MemoryRegistry::flush_local_shard() {
  ThreadShards* tls = thread_shards();
  if (!tls) return;
  auto& lists = tls->shard_for(id_).lists;
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
    const std::size_t capacity = kMinClass << ci;
    cached_bytes_.fetch_sub(lists[ci].size() * capacity, std::memory_order_relaxed);
    lists[ci].clear();
  }
}

void MemoryRegistry::trim() {
  flush_local_shard();
  std::lock_guard<std::mutex> lock(global_mutex_);
  for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
    const std::size_t capacity = kMinClass << ci;
    cached_bytes_.fetch_sub(global_lists_[ci].size() * capacity, std::memory_order_relaxed);
    global_lists_[ci].clear();
  }
}

RegistryStats MemoryRegistry::stats() const noexcept {
  RegistryStats stats;
  stats.local_hits = local_hits_.load(std::memory_order_relaxed);
  stats.global_hits = global_hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.cached_bytes = cached_bytes_.load(std::memory_order_relaxed);
  stats.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  stats.peak_live_bytes = peak_live_bytes_.load(std::memory_order_relaxed);
  return stats;
}

void MemoryRegistry::reset_stats() noexcept {
  local_hits_.store(0, std::memory_order_relaxed);
  global_hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  peak_live_bytes_.store(live_bytes_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
}

MemoryRegistry& MemoryRegistry::instance() {
  // Leaked on purpose: payloads and pools owned by static objects may give
  // blocks back during process teardown, after a non-leaked singleton would
  // already be gone. Still reachable, so LeakSanitizer stays quiet.
  static MemoryRegistry* registry = new MemoryRegistry;
  return *registry;
}

}  // namespace scaffe::util
