// Seeded, deterministic fault injection.
//
// One process-wide FaultInjector is consulted from the layers that can fail
// in a real cluster: the scmpi Mailbox delivery path (message delay/drop),
// the Trainer's per-iteration crash hook (rank-crash-at-iteration), and the
// snapshot writer (I/O failure). A FaultPlan describes *which* faults fire;
// the injector decides each message fault from a hash of
// (seed, src, dst, per-(src,dst) message ordinal), so decisions depend only
// on the deterministic per-sender message order — never on thread timing.
//
// Determinism guarantee: injected delays and drops cannot change computed
// training values. Message matching is by (context, src, tag), not arrival
// time, so a delayed message is matched identically; a dropped message turns
// into a hang that the receive deadline converts into a TimeoutError. Only
// kAnySource receives (used by the parameter-server baseline, not by the
// S-Caffe training path) observe arrival order and may see delays reorder
// their matches.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace scaffe::util {

/// Thrown by FaultInjector::check_crash when a scheduled rank crash fires —
/// the in-process stand-in for a rank process dying mid-run. Propagates out
/// of Runtime::run like any rank failure (peers unwind with AbortError).
class InjectedCrash : public std::runtime_error {
 public:
  InjectedCrash(int rank, long iteration, bool during_recovery = false)
      : std::runtime_error("fault: injected crash of rank " + std::to_string(rank) +
                           (during_recovery
                                ? " during recovery #" + std::to_string(iteration)
                                : " at iteration " + std::to_string(iteration))),
        rank_(rank),
        iteration_(iteration),
        during_recovery_(during_recovery) {}

  int rank() const noexcept { return rank_; }
  long iteration() const noexcept { return iteration_; }

  /// True when the crash fired inside a recovery window (the rank died while
  /// the survivors were rebuilding), not during a training iteration; then
  /// iteration() is the 1-based recovery ordinal.
  bool during_recovery() const noexcept { return during_recovery_; }

 private:
  int rank_;
  long iteration_;
  bool during_recovery_;
};

/// Outcome of the message-fault query for one envelope.
struct MessageFault {
  bool drop = false;
  std::chrono::microseconds delay{0};
};

/// Counts of faults that actually fired (not merely scheduled).
struct FaultStats {
  std::uint64_t delays = 0;
  std::uint64_t drops = 0;
  std::uint64_t crashes = 0;
  std::uint64_t io_failures = 0;
  std::uint64_t recv_stalls = 0;      // slow-receiver stalls served
  std::uint64_t credit_denials = 0;   // injected credit-starvation denials
  std::uint64_t cts_delays = 0;       // delayed clear-to-send notifications
  std::uint64_t heartbeat_drops = 0;  // heartbeats censored before sending
  std::uint64_t heartbeat_delays = 0; // heartbeat sends held back
  std::uint64_t slow_steps = 0;       // injected per-step compute stalls
  std::uint64_t corruptions = 0;      // payload bytes flipped in flight

  std::uint64_t total() const noexcept {
    return delays + drops + crashes + io_failures + recv_stalls + credit_denials +
           cts_delays + heartbeat_drops + heartbeat_delays + slow_steps + corruptions;
  }
};

/// A declarative fault schedule. Build one fluently and install it with
/// ScopedFaultPlan (tests) or FaultInjector::install.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 2017) : seed_(seed) {}

  /// Each delivered message is delayed with `probability`, for a
  /// deterministic duration in (0, max_delay] drawn from the same hash.
  FaultPlan& delay_messages(double probability, std::chrono::microseconds max_delay) {
    delay_probability_ = probability;
    max_delay_ = max_delay;
    return *this;
  }

  /// Each message is silently dropped with `probability` (models a lossy or
  /// partitioned network; receivers rely on deadlines to notice).
  FaultPlan& drop_messages(double probability) {
    drop_probability_ = probability;
    return *this;
  }

  /// Rank `rank` throws InjectedCrash when its per-iteration hook reaches
  /// `iteration`. One-shot: the crash does not re-fire after recovery.
  /// Ranks are WORLD ranks, so multi-crash schedules stay well-defined even
  /// after an elastic shrink re-densifies comm ranks. Call repeatedly for
  /// multi-crash schedules (distinct ranks, distinct iterations).
  FaultPlan& crash_rank(int rank, long iteration) {
    crashes_.emplace_back(rank, iteration);
    return *this;
  }

  /// World rank `rank` also dies while the supervisor is inside recovery
  /// window number `recovery_ordinal` (1-based: the first teardown+rebuild
  /// is window 1). Models a second failure hitting mid-recovery; one-shot.
  FaultPlan& crash_in_recovery(int rank, int recovery_ordinal) {
    recovery_crashes_.emplace_back(rank, recovery_ordinal);
    return *this;
  }

  /// The next `count` snapshot write attempts fail (the writer retries with
  /// backoff, so a bounded budget exercises the retry path).
  FaultPlan& fail_snapshot_writes(int count) {
    snapshot_failures_ = count;
    return *this;
  }

  /// The first `count` blocking receives executed by world rank `rank` stall
  /// for `stall` before touching the mailbox: a slow receiver, the overload
  /// half of the backpressure chaos tests. Deterministic: a fixed budget of
  /// stalls, not a probability. A stall can never change matched values
  /// (matching is by key, not arrival time) — it only builds queue pressure.
  FaultPlan& stall_receiver(int rank, std::chrono::microseconds stall, int count) {
    recv_stalls_.emplace_back(rank, stall, count);
    return *this;
  }

  /// The next `count` credit-availability checks against world rank `rank`'s
  /// mailbox report exhaustion even when credit is free, forcing senders
  /// through the backoff path (credit starvation). Each denial consumes one
  /// budget unit, so the number of forced backoff rounds is exact.
  FaultPlan& starve_credits(int rank, int count) {
    credit_starvation_.emplace_back(rank, count);
    return *this;
  }

  /// The first `count` receives posted by world rank `rank` delay their
  /// clear-to-send notification by `delay`: rendezvous senders observe the
  /// posted receive late — and out of order relative to other links — which
  /// models a delayed/reordered CTS packet. The receive itself still matches
  /// identically, so values are unchanged.
  FaultPlan& delay_cts(int rank, std::chrono::microseconds delay, int count) {
    cts_delays_.emplace_back(rank, delay, count);
    return *this;
  }

  /// World rank `rank`'s next `count` heartbeat sends are censored: the rank
  /// stays alive and keeps training, but its health plane goes dark — peers
  /// accumulate misses and raise SuspectError. Models a partitioned or wedged
  /// node whose data path died while the process survives. Data traffic and
  /// its per-link fault ordinals are untouched.
  FaultPlan& heartbeat_drop(int rank, int count) {
    heartbeat_drops_.emplace_back(rank, std::chrono::microseconds{0}, count);
    return *this;
  }

  /// World rank `rank`'s next `count` heartbeat sends are held back by
  /// `delay` before delivery (a congested health plane): late but not lost,
  /// so a tolerant miss limit must ride through it without suspicion.
  FaultPlan& heartbeat_delay(int rank, std::chrono::microseconds delay, int count) {
    heartbeat_delays_.emplace_back(rank, delay, count);
    return *this;
  }

  /// World rank `rank`'s next `count` training steps stall for `stall`: an
  /// injected compute straggler. The stall sits inside the step-latency
  /// measurement, so the rank's heartbeat-reported EWMA reflects it and the
  /// monitor's median comparison flags the rank. Values are unchanged.
  FaultPlan& slow_rank(int rank, std::chrono::microseconds stall, int count) {
    slow_ranks_.emplace_back(rank, stall, count);
    return *this;
  }

  /// The next `count` payloads delivered on the link src -> dst have one
  /// byte flipped after the sender's CRC stamp: in-flight corruption that
  /// SCAFFE_MSG_CRC=1 must reject (IntegrityError), never deliver. Ranks
  /// are world ranks. Covers queued (materialized) eager payloads and
  /// posted-receive claim fills — copy claims flip a byte of the filled
  /// span, reduce claims flip a verified staging copy so the accumulator
  /// survives a rejected payload; immutable shared bcast views are the one
  /// path outside the fault's reach.
  FaultPlan& corrupt_payload(int src, int dst, int count) {
    corruptions_.emplace_back(src, dst, count);
    return *this;
  }

 private:
  friend class FaultInjector;

  /// One budget-counted per-rank stall/delay schedule entry.
  struct TimedBudget {
    TimedBudget(int r, std::chrono::microseconds d, int c)
        : rank(r), duration(d), remaining(c) {}
    int rank;
    std::chrono::microseconds duration;
    int remaining;
  };
  std::uint64_t seed_;
  double delay_probability_ = 0.0;
  std::chrono::microseconds max_delay_{0};
  double drop_probability_ = 0.0;
  std::vector<std::pair<int, long>> crashes_;          // (rank, iteration), one-shot
  std::vector<std::pair<int, int>> recovery_crashes_;  // (rank, recovery ordinal)
  int snapshot_failures_ = 0;
  std::vector<TimedBudget> recv_stalls_;               // slow-receiver schedules
  std::vector<std::pair<int, int>> credit_starvation_;  // (rank, remaining denials)
  std::vector<TimedBudget> cts_delays_;                // delayed-CTS schedules
  std::vector<TimedBudget> heartbeat_drops_;           // censored heartbeat budgets
  std::vector<TimedBudget> heartbeat_delays_;          // late-heartbeat budgets
  std::vector<TimedBudget> slow_ranks_;                // per-step compute stalls
  /// (src, dst, remaining) corruption budgets per link.
  struct CorruptionBudget {
    CorruptionBudget(int s, int d, int c) : src(s), dst(d), remaining(c) {}
    int src;
    int dst;
    int remaining;
  };
  std::vector<CorruptionBudget> corruptions_;
};

/// Process-wide fault oracle. Thread-safe; inactive (all queries benign)
/// until a plan is installed. Ranks are threads of one process, so a single
/// shared injector models the whole "cluster's" fault schedule.
class FaultInjector {
 public:
  static FaultInjector& instance();

  void install(FaultPlan plan);
  void clear();

  /// Cheap pre-check so fault-free runs pay one relaxed atomic load.
  bool active() const noexcept { return active_.load(std::memory_order_relaxed); }

  /// Decides the fate of one message about to be delivered to `dst`'s
  /// mailbox. Deterministic in the sender's per-destination message order.
  MessageFault on_message(int src, int dst, int tag);

  /// Per-iteration crash hook; throws InjectedCrash if this (rank,
  /// iteration) is scheduled and has not fired yet.
  void check_crash(int rank, long iteration);

  /// Recovery-window crash hook, called by the elastic supervisor while it
  /// rebuilds the world. Throws InjectedCrash(rank, ordinal,
  /// during_recovery=true) for one unfired schedule entry matching
  /// `recovery_ordinal`; call in a loop to drain multiple deaths in the same
  /// window (each entry is one-shot).
  void check_recovery_crash(int recovery_ordinal);

  /// True if this snapshot write attempt should fail (consumes one unit of
  /// the failure budget).
  bool next_snapshot_write_fails();

  /// Slow-receiver hook: stall duration for a blocking receive executed by
  /// `rank` (zero when none scheduled). Consumes one unit of the rank's
  /// stall budget.
  std::chrono::microseconds on_recv_enter(int rank);

  /// Credit-starvation hook: true when rank `dst`'s next credit-availability
  /// check must report exhaustion. Consumes one denial.
  bool on_credit_check(int dst);

  /// Delayed-CTS hook: notification delay for a receive posted by `rank`
  /// (zero when none scheduled). Consumes one unit of the delay budget.
  std::chrono::microseconds on_cts_post(int rank);

  /// Heartbeat hook, consulted by the HealthMonitor (not the mailbox) for
  /// each heartbeat world rank `rank` is about to send: drop censors it,
  /// delay holds the send back. Never touches the data path's per-link
  /// ordinals.
  MessageFault on_heartbeat(int rank);

  /// Straggler hook: compute stall for one training step of world rank
  /// `rank` (zero when none scheduled). Consumes one unit of the budget.
  std::chrono::microseconds on_step(int rank);

  /// Corruption hook: true when the payload being materialized on the link
  /// src -> dst must have a byte flipped. Consumes one unit of the budget.
  bool on_payload(int src, int dst);

  FaultStats stats() const;

 private:
  FaultInjector() = default;

  mutable std::mutex mutex_;
  std::atomic<bool> active_{false};
  FaultPlan plan_{0};
  std::vector<bool> crash_fired_;                      // parallel to plan_.crashes_
  std::vector<bool> recovery_crash_fired_;             // parallel to plan_.recovery_crashes_
  std::map<std::pair<int, int>, std::uint64_t> sent_;  // (src, dst) -> ordinal
  FaultStats stats_;
};

/// RAII plan installation for tests: installs on construction, clears on
/// destruction so no fault schedule leaks into later tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) { FaultInjector::instance().install(std::move(plan)); }
  ~ScopedFaultPlan() { FaultInjector::instance().clear(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace scaffe::util
