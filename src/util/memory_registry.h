// Unified memory registry: one recycling allocator behind every subsystem
// pool (eager transport staging, device float blocks, executor/solver
// scratch, sample-store windows).
//
// Replaces the per-subsystem pools (util::BufferPool, the private side of
// gpu::PoolAllocator, ad-hoc executor vectors) with a single size-class
// allocator whose fast path is lock-free: each thread keeps a private shard
// of per-class free lists, so a warm steady-state training step recycles
// blocks without touching a mutex or the heap. A local miss falls back to a
// global shard (one mutex) before allocating fresh; blocks released by a
// thread land in that thread's shard first, so producer/consumer pairs
// converge on their own working sets.
//
// Invariants:
//  - Size classes are powers of two with a 64-byte floor, shared by every
//    client — a block released by the transport is reusable by the solver.
//  - `budget_bytes` bounds the total *cached* (free, retained) bytes across
//    all shards; releases past the budget free to the heap instead. The
//    check uses relaxed counters, so the bound is approximate under races —
//    never off by more than one block per racing thread. SCAFFE_MEM_BUDGET
//    (parsed by the mpi layer via parse_bytes_knob) overrides the default.
//  - Local shards cap their per-class depth; overflow spills to the global
//    shard so one thread cannot strand the whole budget.
//  - Blocks acquired with Route::kTransfer (message payloads, store
//    windows — anything produced on one thread and consumed on another)
//    always recycle through the global shard. Caching a transfer block in
//    the *releasing* thread's shard parks it where the producing thread can
//    never see it, starving the global shard and turning a warm steady
//    state back into heap allocations. Route::kScratch (the default) keeps
//    the lock-free thread-local path for same-thread reuse.
//  - Independently of the route, classes above kLocalClassMax never cache
//    thread-locally — the same split as tcmalloc/jemalloc thread caches,
//    which cap what a thread cache may hold so big buffers cannot strand
//    the pool.
//  - At thread exit a thread's shards drain back into the owning registries'
//    global shards (or the heap when the registry died first), so rank
//    threads recycled across elastic runs do not leak the cache.
//  - Handles (MemBlock) must not outlive their registry — same convention
//    as the pools this replaces. MemBlock::heap() blocks have no registry
//    and are freed, not recycled.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace scaffe::util {

class MemoryRegistry;

/// How a block recycles when released (see the transfer-buffer invariant in
/// the header comment).
enum class BlockRoute : std::uint8_t {
  kScratch,   ///< same-thread reuse: thread-local shard first (lock-free)
  kTransfer,  ///< produced on one thread, consumed on another: global shard
};

/// Aggregate registry counters. Hits split by which shard served them:
/// `local_hits` never took a lock, `global_hits` took the single global
/// mutex, `misses` allocated fresh from the heap.
struct RegistryStats {
  std::uint64_t local_hits = 0;
  std::uint64_t global_hits = 0;
  std::uint64_t misses = 0;
  std::size_t cached_bytes = 0;     // free bytes retained across all shards
  std::size_t live_bytes = 0;       // bytes currently handed out
  std::size_t peak_live_bytes = 0;  // high-water mark of live_bytes

  std::uint64_t recycled() const noexcept { return local_hits + global_hits; }
  double hit_rate() const noexcept {
    const std::uint64_t total = recycled() + misses;
    return total == 0 ? 0.0 : static_cast<double>(recycled()) / static_cast<double>(total);
  }
};

/// RAII handle to a registry block; returns to the registry on destruction.
/// A handle created by MemBlock::heap() owns a plain heap block instead
/// (freed, not recycled) — the pool-disabled "legacy" transport path.
class MemBlock {
 public:
  MemBlock() = default;
  MemBlock(MemBlock&& other) noexcept
      : registry_(std::exchange(other.registry_, nullptr)),
        data_(std::move(other.data_)),
        capacity_(std::exchange(other.capacity_, 0)),
        size_(std::exchange(other.size_, 0)),
        recycled_(std::exchange(other.recycled_, false)),
        route_(other.route_) {}
  MemBlock& operator=(MemBlock&& other) noexcept;
  MemBlock(const MemBlock&) = delete;
  MemBlock& operator=(const MemBlock&) = delete;
  ~MemBlock();

  /// Fresh non-registry block (freed on destruction, never cached).
  static MemBlock heap(std::size_t size);

  bool valid() const noexcept { return data_ != nullptr; }
  std::size_t size() const noexcept { return size_; }          // requested
  std::size_t capacity() const noexcept { return capacity_; }  // size class
  bool recycled() const noexcept { return recycled_; }  // served from a shard
  std::byte* data() noexcept { return data_.get(); }
  const std::byte* data() const noexcept { return data_.get(); }
  std::span<std::byte> span() noexcept { return {data_.get(), size_}; }
  std::span<const std::byte> span() const noexcept { return {data_.get(), size_}; }

  /// The block viewed as a float array (blocks are max_align_t-aligned).
  float* floats() noexcept { return reinterpret_cast<float*>(data_.get()); }
  const float* floats() const noexcept { return reinterpret_cast<const float*>(data_.get()); }

 private:
  friend class MemoryRegistry;
  MemBlock(MemoryRegistry* registry, std::unique_ptr<std::byte[]> data, std::size_t capacity,
           std::size_t size, bool recycled, BlockRoute route)
      : registry_(registry),
        data_(std::move(data)),
        capacity_(capacity),
        size_(size),
        recycled_(recycled),
        route_(route) {}

  MemoryRegistry* registry_ = nullptr;  // nullptr: heap block, freed not recycled
  std::unique_ptr<std::byte[]> data_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  bool recycled_ = false;
  BlockRoute route_ = BlockRoute::kScratch;
};

class MemoryRegistry {
 public:
  explicit MemoryRegistry(std::size_t budget_bytes = kDefaultBudget);
  ~MemoryRegistry();
  MemoryRegistry(const MemoryRegistry&) = delete;
  MemoryRegistry& operator=(const MemoryRegistry&) = delete;

  /// Returns a block of at least `size` bytes (size == 0 yields the minimum
  /// class). Fast path: pop from the calling thread's shard, no locks.
  /// Route::kTransfer blocks skip the thread-local shard on BOTH sides —
  /// they are filled here but released by a consumer thread, so only the
  /// global shard ever sees them again.
  MemBlock acquire(std::size_t size, BlockRoute route = BlockRoute::kScratch);

  /// Pre-stocks the global shard with `count` blocks of `size`'s class
  /// (clamped by the budget), so a subsystem with a derivable worst-case
  /// working set — e.g. a sample store's in-flight exchange windows — never
  /// misses on its hot path, independent of warmup length. Counts toward
  /// cached_bytes but not hits or misses.
  void reserve(std::size_t size, std::size_t count);

  /// Releases the global shard's and the calling thread's cached blocks to
  /// the heap. Other threads' shards drain when those threads exit.
  void trim();

  /// Releases only the calling thread's shard (deterministic tests).
  void flush_local_shard();

  /// Bounds total cached (free) bytes; applies to future releases.
  void set_budget_bytes(std::size_t budget) noexcept {
    budget_bytes_.store(budget, std::memory_order_relaxed);
  }
  std::size_t budget_bytes() const noexcept {
    return budget_bytes_.load(std::memory_order_relaxed);
  }

  RegistryStats stats() const noexcept;

  /// Zeroes hit/miss counters and folds peak back to the current live bytes
  /// (warmup boundary for benches and the steady-state CI gate).
  void reset_stats() noexcept;

  /// Process-wide registry shared by transport, device pools, and stores.
  static MemoryRegistry& instance();

  static constexpr std::size_t kMinClass = 64;
  static constexpr std::size_t kDefaultBudget = std::size_t{256} << 20;  // 256 MiB
  static constexpr std::size_t kNumClasses = 34;  // 64 B .. 512 GiB
  static constexpr std::size_t kLocalDepth = 16;  // blocks per class per thread
  /// Largest size class cached in thread-local shards; bigger classes
  /// recycle through the global shard only (see the transfer-buffer
  /// invariant above).
  static constexpr std::size_t kLocalClassMax = 4096;
  /// Headroom cached per transfer-route miss (a miss marks a new in-flight
  /// high-water mark that timing jitter will reach again, so the pool grows
  /// past it, not just to it). At least kTransferSpares blocks; small
  /// classes get kTransferSpareBytes' worth, because their worst-case burst
  /// (every in-flight message queued at once, none claim-filled) is many
  /// blocks yet costs almost nothing to cover.
  static constexpr int kTransferSpares = 2;
  static constexpr std::size_t kTransferSpareBytes = 4096;

  static std::size_t size_class(std::size_t size) noexcept {
    std::size_t capacity = kMinClass;
    while (capacity < size) capacity <<= 1;
    return capacity;
  }
  static std::size_t class_index(std::size_t capacity) noexcept {
    return static_cast<std::size_t>(std::countr_zero(capacity)) - 6;
  }

 private:
  friend class MemBlock;
  friend struct ThreadShards;
  using FreeLists = std::array<std::vector<std::unique_ptr<std::byte[]>>, kNumClasses>;

  void give_back(std::unique_ptr<std::byte[]> data, std::size_t capacity,
                 BlockRoute route) noexcept;
  void note_live(std::size_t capacity) noexcept;

  const std::uint64_t id_;  // never reused; keys thread-local shards
  std::atomic<std::size_t> budget_bytes_;
  std::atomic<std::uint64_t> local_hits_{0};
  std::atomic<std::uint64_t> global_hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::size_t> cached_bytes_{0};
  std::atomic<std::size_t> live_bytes_{0};
  std::atomic<std::size_t> peak_live_bytes_{0};
  mutable std::mutex global_mutex_;
  FreeLists global_lists_;
};

}  // namespace scaffe::util
