#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace scaffe::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mutex;
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

namespace detail {

bool level_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << level_name(level) << " " << (base ? base + 1 : file) << ":" << line << "] ";
}

LogLine::~LogLine() {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace detail

}  // namespace scaffe::util
