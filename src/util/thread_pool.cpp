#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace scaffe::util {

namespace {

thread_local bool t_in_chunk = false;

int clamp_threads(int threads) { return std::max(threads, 1); }

int default_threads() {
  if (const char* env = std::getenv("SCAFFE_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? static_cast<int>(hw) : 1;
}

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;  // NOLINT: joined via unique_ptr reset/exit

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(clamp_threads(threads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::in_parallel_region() noexcept { return t_in_chunk; }

void ThreadPool::start_workers_locked() {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  started_ = true;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t generation;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || (job_active_ && generation_ != seen); });
      if (stop_) return;
      generation = generation_;
    }
    seen = generation;
    run_chunks(generation);
  }
}

bool ThreadPool::claim_chunk(std::uint64_t generation, std::size_t& chunk_begin,
                             std::size_t& chunk_end) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (generation != generation_ || !job_active_ || next_chunk_ >= job_chunks_) return false;
  const std::size_t chunk = next_chunk_++;
  chunk_begin = job_begin_ + chunk * job_grain_;
  chunk_end = std::min(chunk_begin + job_grain_, job_end_);
  return true;
}

void ThreadPool::complete_chunk(std::uint64_t generation, std::exception_ptr error) {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (generation != generation_) return;
    if (error && !job_error_) job_error_ = error;
    last = ++done_chunks_ == job_chunks_;
    if (last) job_active_ = false;
  }
  if (last) done_cv_.notify_all();
}

void ThreadPool::run_chunks(std::uint64_t generation) {
  const bool was_in_chunk = t_in_chunk;
  t_in_chunk = true;
  std::size_t chunk_begin = 0;
  std::size_t chunk_end = 0;
  while (claim_chunk(generation, chunk_begin, chunk_end)) {
    std::exception_ptr error;
    try {
      (*job_fn_)(chunk_begin, chunk_end);
    } catch (...) {
      error = std::current_exception();
    }
    complete_chunk(generation, error);
  }
  t_in_chunk = was_in_chunk;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;

  auto run_inline = [&] {
    for (std::size_t b = begin; b < end; b += grain) fn(b, std::min(b + grain, end));
  };

  if (threads_ <= 1 || chunks <= 1 || t_in_chunk) {
    run_inline();
    return;
  }
  std::unique_lock<std::mutex> submit(submit_mutex_, std::try_to_lock);
  if (!submit.owns_lock()) {
    // Another thread owns the pool; degrade to inline rather than queue, so
    // concurrent rank/stream threads never serialize behind each other.
    run_inline();
    return;
  }

  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) start_workers_locked();
    generation = ++generation_;
    job_fn_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    job_chunks_ = chunks;
    next_chunk_ = 0;
    done_chunks_ = 0;
    job_error_ = nullptr;
    job_active_ = true;
  }
  work_cv_.notify_all();

  run_chunks(generation);  // the submitting thread participates

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return done_chunks_ == job_chunks_; });
    error = job_error_;
    job_error_ = nullptr;
    job_fn_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_global_pool;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(clamp_threads(threads));
}

}  // namespace scaffe::util
