#include "util/stats.h"

#include <cmath>

namespace scaffe::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = (p / 100.0) * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace scaffe::util
