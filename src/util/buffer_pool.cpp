#include "util/buffer_pool.h"

namespace scaffe::util {

PooledBytes& PooledBytes::operator=(PooledBytes&& other) noexcept {
  if (this != &other) {
    if (pool_ && data_) pool_->give_back(std::move(data_), capacity_);
    pool_ = std::exchange(other.pool_, nullptr);
    data_ = std::move(other.data_);
    capacity_ = std::exchange(other.capacity_, 0);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

PooledBytes::~PooledBytes() {
  if (pool_ && data_) pool_->give_back(std::move(data_), capacity_);
}

PooledBytes PooledBytes::heap(std::size_t size) {
  const std::size_t capacity = BufferPool::size_class(size);
  return PooledBytes(nullptr, std::make_unique<std::byte[]>(capacity), capacity, size);
}

PooledBytes BufferPool::acquire(std::size_t size) {
  const std::size_t capacity = size_class(size);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = free_lists_.find(capacity);
    if (it != free_lists_.end() && !it->second.empty()) {
      std::unique_ptr<std::byte[]> block = std::move(it->second.back());
      it->second.pop_back();
      cached_bytes_ -= capacity;
      ++hits_;
      return PooledBytes(this, std::move(block), capacity, size);
    }
    ++misses_;
  }
  // Fresh block, allocated outside the pool lock.
  return PooledBytes(this, std::make_unique<std::byte[]>(capacity), capacity, size);
}

void BufferPool::give_back(std::unique_ptr<std::byte[]> data, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cached_bytes_ + capacity > max_cached_bytes_) return;  // free to the heap
  free_lists_[capacity].push_back(std::move(data));
  cached_bytes_ += capacity;
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  free_lists_.clear();
  cached_bytes_ = 0;
}

std::uint64_t BufferPool::hits() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t BufferPool::misses() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t BufferPool::cached_bytes() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return cached_bytes_;
}

BufferPool& BufferPool::instance() {
  static BufferPool pool;
  return pool;
}

}  // namespace scaffe::util
