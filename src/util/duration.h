// Simulated-time type shared by sim/net/core: integer nanoseconds.
#pragma once

#include <cstdint>
#include <string>

namespace scaffe::util {

/// Simulated time / duration in nanoseconds. Signed so durations subtract safely.
using TimeNs = std::int64_t;

inline constexpr TimeNs kUs = 1000;
inline constexpr TimeNs kMs = 1000 * kUs;
inline constexpr TimeNs kSec = 1000 * kMs;

constexpr double to_us(TimeNs t) noexcept { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(TimeNs t) noexcept { return static_cast<double>(t) / 1e6; }
constexpr double to_sec(TimeNs t) noexcept { return static_cast<double>(t) / 1e9; }

constexpr TimeNs from_us(double us) noexcept { return static_cast<TimeNs>(us * 1e3); }
constexpr TimeNs from_ms(double ms) noexcept { return static_cast<TimeNs>(ms * 1e6); }
constexpr TimeNs from_sec(double s) noexcept { return static_cast<TimeNs>(s * 1e9); }

/// Formats with an adaptive unit: "950ns", "12.4us", "3.2ms", "1.75s".
std::string fmt_time(TimeNs t);

}  // namespace scaffe::util
