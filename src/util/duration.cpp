#include "util/duration.h"

#include <cstdio>

namespace scaffe::util {

std::string fmt_time(TimeNs t) {
  char buf[48];
  const double v = static_cast<double>(t);
  if (t < 0) {
    return "-" + fmt_time(-t);
  }
  if (t < kUs) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(t));
  } else if (t < kMs) {
    std::snprintf(buf, sizeof(buf), "%.2fus", v / 1e3);
  } else if (t < kSec) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / 1e9);
  }
  return buf;
}

}  // namespace scaffe::util
