// Running statistics and labelled numeric series used by benches and tests.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace scaffe::util {

/// Welford running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void clear() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Occupancy gauge: a current level plus its high-water mark. Used for the
/// scmpi mailbox credit accounting (queued + reserved payload bytes per
/// link). Not thread-safe on its own: guard updates with the owning
/// structure's lock (the Mailbox updates it under its mutex).
class PeakGauge {
 public:
  void add(std::size_t n) noexcept {
    current_ += n;
    if (current_ > peak_) peak_ = current_;
  }
  void sub(std::size_t n) noexcept { current_ = n > current_ ? 0 : current_ - n; }
  /// Restarts peak tracking from the current level (bench phase boundaries).
  void reset_peak() noexcept { peak_ = current_; }

  std::size_t current() const noexcept { return current_; }
  std::size_t peak() const noexcept { return peak_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// A named series of (x, y) points — one line on a paper figure.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  std::size_t size() const noexcept { return x.size(); }
};

/// Percentile of a sample (copies and sorts; p in [0,100]).
double percentile(std::vector<double> sample, double p);

/// Geometric mean of strictly positive values; returns 0 if any value <= 0.
double geomean(const std::vector<double>& values);

}  // namespace scaffe::util
