// Running statistics and labelled numeric series used by benches and tests.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace scaffe::util {

/// Welford running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void clear() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// A named series of (x, y) points — one line on a paper figure.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  std::size_t size() const noexcept { return x.size(); }
};

/// Percentile of a sample (copies and sorts; p in [0,100]).
double percentile(std::vector<double> sample, double p);

/// Geometric mean of strictly positive values; returns 0 if any value <= 0.
double geomean(const std::vector<double>& values);

}  // namespace scaffe::util
