#include "util/bytes.h"

#include <cctype>
#include <cstdio>

namespace scaffe::util {

std::string fmt_bytes(std::size_t bytes) {
  const char* unit = "B";
  double v = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    v /= static_cast<double>(kGiB);
    unit = "GB";
  } else if (bytes >= kMiB) {
    v /= static_cast<double>(kMiB);
    unit = "MB";
  } else if (bytes >= kKiB) {
    v /= static_cast<double>(kKiB);
    unit = "KB";
  }
  char buf[32];
  if (v == static_cast<double>(static_cast<std::size_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%zu%s", static_cast<std::size_t>(v), unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, unit);
  }
  return buf;
}

std::size_t parse_bytes(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  bool any_digit = false;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
    any_digit = true;
  }
  if (!any_digit) return 0;
  std::size_t mul = 1;
  if (i < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[i]))) {
      case 'K': mul = kKiB; ++i; break;
      case 'M': mul = kMiB; ++i; break;
      case 'G': mul = kGiB; ++i; break;
      default: break;
    }
    if (i < text.size() && std::toupper(static_cast<unsigned char>(text[i])) == 'B') ++i;
  }
  if (i != text.size()) return 0;
  return value * mul;
}

}  // namespace scaffe::util
