#include "util/bytes.h"

#include <cctype>
#include <cstdio>

namespace scaffe::util {

std::string fmt_bytes(std::size_t bytes) {
  const char* unit = "B";
  double v = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    v /= static_cast<double>(kGiB);
    unit = "GB";
  } else if (bytes >= kMiB) {
    v /= static_cast<double>(kMiB);
    unit = "MB";
  } else if (bytes >= kKiB) {
    v /= static_cast<double>(kKiB);
    unit = "KB";
  }
  char buf[32];
  if (v == static_cast<double>(static_cast<std::size_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%zu%s", static_cast<std::size_t>(v), unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, unit);
  }
  return buf;
}

std::size_t parse_bytes(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  bool any_digit = false;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
    any_digit = true;
  }
  if (!any_digit) return 0;
  std::size_t mul = 1;
  if (i < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[i]))) {
      case 'K': mul = kKiB; ++i; break;
      case 'M': mul = kMiB; ++i; break;
      case 'G': mul = kGiB; ++i; break;
      default: break;
    }
    if (i < text.size() && std::toupper(static_cast<unsigned char>(text[i])) == 'B') ++i;
  }
  if (i != text.size()) return 0;
  return value * mul;
}

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entries[n] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t crc) {
  static const Crc32Table table;
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = table.entries[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace scaffe::util
