// ASCII table and CSV rendering for bench output.
//
// The bench binaries print each paper table/figure as rows; Table keeps the
// formatting (column alignment, units) in one place.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace scaffe::util {

/// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; missing cells render empty, extra cells widen the table.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule, padded columns.
  std::string to_string() const;

  /// Renders as CSV (no quoting of commas; bench values never contain them).
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming trailing zeros.
std::string fmt_double(double v, int precision = 3);

/// "1.25x"-style speedup formatting.
std::string fmt_speedup(double v);

}  // namespace scaffe::util
