#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace scaffe::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::to_string() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());

  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(width[c] - cell.size(), ' ');
      if (c + 1 < cols) out << "  ";
    }
    out << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < cols; ++c) rule += width[c] + (c + 1 < cols ? 2 : 0);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string fmt_speedup(double v) { return fmt_double(v, 2) + "x"; }

}  // namespace scaffe::util
