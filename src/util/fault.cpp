#include "util/fault.h"

namespace scaffe::util {

namespace {

// splitmix64-style avalanche over the decision inputs; the result is the
// only entropy source, so decisions are a pure function of
// (seed, src, dst, ordinal) and survive any thread interleaving.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t decision_hash(std::uint64_t seed, int src, int dst, std::uint64_t ordinal) {
  std::uint64_t h = mix(seed);
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32));
  return mix(h ^ ordinal);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::install(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
  crash_fired_.assign(plan_.crashes_.size(), false);
  recovery_crash_fired_.assign(plan_.recovery_crashes_.size(), false);
  sent_.clear();
  stats_ = FaultStats{};
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  active_.store(false, std::memory_order_relaxed);
  plan_ = FaultPlan{0};
  crash_fired_.clear();
  recovery_crash_fired_.clear();
  sent_.clear();
}

MessageFault FaultInjector::on_message(int src, int dst, int /*tag*/) {
  MessageFault fault;
  if (!active()) return fault;
  std::lock_guard<std::mutex> lock(mutex_);
  if (plan_.delay_probability_ <= 0.0 && plan_.drop_probability_ <= 0.0) return fault;
  const std::uint64_t ordinal = sent_[{src, dst}]++;
  const std::uint64_t h = decision_hash(plan_.seed_, src, dst, ordinal);
  // Independent sub-draws from one hash: low half decides drop, high half
  // decides delay, a re-mix sizes the delay.
  if (to_unit(mix(h)) < plan_.drop_probability_) {
    fault.drop = true;
    ++stats_.drops;
    return fault;
  }
  if (to_unit(mix(h ^ 0xd1b54a32d192ed03ULL)) < plan_.delay_probability_) {
    const auto max_us = static_cast<std::uint64_t>(plan_.max_delay_.count());
    if (max_us > 0) {
      fault.delay = std::chrono::microseconds(
          1 + static_cast<std::int64_t>(mix(h ^ 0x8cb92ba72f3d8dd7ULL) % max_us));
      ++stats_.delays;
    }
  }
  return fault;
}

void FaultInjector::check_crash(int rank, long iteration) {
  if (!active()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < plan_.crashes_.size(); ++i) {
    const auto [crash_rank, crash_iteration] = plan_.crashes_[i];
    if (crash_fired_[i] || crash_rank != rank || crash_iteration != iteration) continue;
    crash_fired_[i] = true;
    ++stats_.crashes;
    lock.unlock();
    throw InjectedCrash(rank, iteration);
  }
}

void FaultInjector::check_recovery_crash(int recovery_ordinal) {
  if (!active()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < plan_.recovery_crashes_.size(); ++i) {
    const auto [crash_rank, crash_ordinal] = plan_.recovery_crashes_[i];
    if (recovery_crash_fired_[i] || crash_ordinal != recovery_ordinal) continue;
    recovery_crash_fired_[i] = true;
    ++stats_.crashes;
    lock.unlock();
    throw InjectedCrash(crash_rank, crash_ordinal, /*during_recovery=*/true);
  }
}

std::chrono::microseconds FaultInjector::on_recv_enter(int rank) {
  if (!active()) return std::chrono::microseconds{0};
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& stall : plan_.recv_stalls_) {
    if (stall.rank != rank || stall.remaining <= 0) continue;
    --stall.remaining;
    ++stats_.recv_stalls;
    return stall.duration;
  }
  return std::chrono::microseconds{0};
}

bool FaultInjector::on_credit_check(int dst) {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [rank, remaining] : plan_.credit_starvation_) {
    if (rank != dst || remaining <= 0) continue;
    --remaining;
    ++stats_.credit_denials;
    return true;
  }
  return false;
}

std::chrono::microseconds FaultInjector::on_cts_post(int rank) {
  if (!active()) return std::chrono::microseconds{0};
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& delay : plan_.cts_delays_) {
    if (delay.rank != rank || delay.remaining <= 0) continue;
    --delay.remaining;
    ++stats_.cts_delays;
    return delay.duration;
  }
  return std::chrono::microseconds{0};
}

MessageFault FaultInjector::on_heartbeat(int rank) {
  MessageFault fault;
  if (!active()) return fault;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& drop : plan_.heartbeat_drops_) {
    if (drop.rank != rank || drop.remaining <= 0) continue;
    --drop.remaining;
    ++stats_.heartbeat_drops;
    fault.drop = true;
    return fault;
  }
  for (auto& delay : plan_.heartbeat_delays_) {
    if (delay.rank != rank || delay.remaining <= 0) continue;
    --delay.remaining;
    ++stats_.heartbeat_delays;
    fault.delay = delay.duration;
    return fault;
  }
  return fault;
}

std::chrono::microseconds FaultInjector::on_step(int rank) {
  if (!active()) return std::chrono::microseconds{0};
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& stall : plan_.slow_ranks_) {
    if (stall.rank != rank || stall.remaining <= 0) continue;
    --stall.remaining;
    ++stats_.slow_steps;
    return stall.duration;
  }
  return std::chrono::microseconds{0};
}

bool FaultInjector::on_payload(int src, int dst) {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& budget : plan_.corruptions_) {
    if (budget.src != src || budget.dst != dst || budget.remaining <= 0) continue;
    --budget.remaining;
    ++stats_.corruptions;
    return true;
  }
  return false;
}

bool FaultInjector::next_snapshot_write_fails() {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (plan_.snapshot_failures_ <= 0) return false;
  --plan_.snapshot_failures_;
  ++stats_.io_failures;
  return true;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace scaffe::util
