// Recycling byte-buffer pool for the scmpi eager transport path.
//
// Generalizes gpu::PoolAllocator's size-class design (power-of-two classes,
// per-class free lists, hit/miss counters, trim) from device float blocks to
// raw host byte buffers: every eager message below SCAFFE_EAGER_LIMIT stages
// its payload in a pooled buffer instead of allocating a fresh vector, so a
// steady-state training loop performs zero transport allocations once the
// pool is warm.
//
// Unlike the device pool there is no backing Device to charge; instead the
// pool bounds its *cache* (free bytes held for reuse) by `max_cached_bytes`:
// releases beyond the cap free the block to the heap rather than growing the
// cache without limit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace scaffe::util {

class BufferPool;

/// RAII handle to a pooled byte block; returns to its pool on destruction.
/// A handle created by PooledBytes::heap() owns a plain heap block instead
/// (freed, not recycled) — the pool-disabled "legacy" transport path.
class PooledBytes {
 public:
  PooledBytes() = default;
  PooledBytes(PooledBytes&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        data_(std::move(other.data_)),
        capacity_(std::exchange(other.capacity_, 0)),
        size_(std::exchange(other.size_, 0)) {}
  PooledBytes& operator=(PooledBytes&& other) noexcept;
  PooledBytes(const PooledBytes&) = delete;
  PooledBytes& operator=(const PooledBytes&) = delete;
  ~PooledBytes();

  /// Fresh non-pooled block (freed on destruction, never cached).
  static PooledBytes heap(std::size_t size);

  bool valid() const noexcept { return data_ != nullptr; }
  std::size_t size() const noexcept { return size_; }          // requested
  std::size_t capacity() const noexcept { return capacity_; }  // size class
  std::byte* data() noexcept { return data_.get(); }
  const std::byte* data() const noexcept { return data_.get(); }
  std::span<std::byte> span() noexcept { return {data_.get(), size_}; }
  std::span<const std::byte> span() const noexcept { return {data_.get(), size_}; }

 private:
  friend class BufferPool;
  PooledBytes(BufferPool* pool, std::unique_ptr<std::byte[]> data, std::size_t capacity,
              std::size_t size)
      : pool_(pool), data_(std::move(data)), capacity_(capacity), size_(size) {}

  BufferPool* pool_ = nullptr;  // nullptr: heap block, freed not recycled
  std::unique_ptr<std::byte[]> data_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

class BufferPool {
 public:
  explicit BufferPool(std::size_t max_cached_bytes = kDefaultCacheCap)
      : max_cached_bytes_(max_cached_bytes) {}
  ~BufferPool() { trim(); }
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a block of at least `size` bytes (size == 0 yields the minimum
  /// class). Sizes round up to the next power of two, 64-byte minimum.
  PooledBytes acquire(std::size_t size);

  /// Releases every cached block to the heap.
  void trim();

  std::uint64_t hits() const noexcept;
  std::uint64_t misses() const noexcept;
  std::size_t cached_bytes() const noexcept;

  /// Process-wide pool shared by all scmpi mailboxes.
  static BufferPool& instance();

  static constexpr std::size_t kMinClass = 64;
  static constexpr std::size_t kDefaultCacheCap = std::size_t{256} << 20;  // 256 MiB

  static std::size_t size_class(std::size_t size) noexcept {
    std::size_t capacity = kMinClass;
    while (capacity < size) capacity <<= 1;
    return capacity;
  }

 private:
  friend class PooledBytes;
  void give_back(std::unique_ptr<std::byte[]> data, std::size_t capacity);

  std::size_t max_cached_bytes_;
  mutable std::mutex mutex_;
  std::map<std::size_t, std::vector<std::unique_ptr<std::byte[]>>> free_lists_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::size_t cached_bytes_ = 0;
};

}  // namespace scaffe::util
