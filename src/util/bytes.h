// Byte-size helpers: literals, formatting ("256 MB"), parsing; CRC32.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace scaffe::util {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

/// Formats a byte count as "4B", "16KB", "256MB", "1.5GB".
std::string fmt_bytes(std::size_t bytes);

/// Parses "4", "4K", "16M", "2G" (case-insensitive, optional trailing 'B').
/// Returns 0 on malformed input.
std::size_t parse_bytes(const std::string& text);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`, continuing from
/// `crc` so large payloads can be checksummed incrementally. Used by the
/// snapshot v2 format to detect torn or corrupted checkpoint files.
std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t crc = 0);

namespace literals {
constexpr std::size_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::size_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::size_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

}  // namespace scaffe::util
