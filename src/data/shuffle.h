// Deterministic per-epoch sample permutation, shared by DataReader and
// SampleStore: both sides of the epoch-ahead exchange must agree on exactly
// which dataset index a global slot maps to.
#pragma once

#include <cstdint>
#include <numeric>

namespace scaffe::data {

/// Bijective permutation of [0, epoch_size) keyed by (seed, epoch index);
/// identity when epoch_size == 0. The permuted index stays inside the same
/// epoch window [e*n, (e+1)*n). Assumes epoch_size < 2^32 (no overflow in
/// the modular multiply).
inline std::uint64_t epoch_permute(std::uint64_t index, std::uint64_t epoch_size,
                                   std::uint64_t seed) {
  if (epoch_size == 0) return index;
  const std::uint64_t n = epoch_size;
  const std::uint64_t epoch = index / n;
  std::uint64_t x = index % n;
  const std::uint64_t key = seed ^ (epoch * 0x9e3779b97f4a7c15ULL);
  // Affine bijection x -> m*x + b (mod n): bijective iff gcd(m, n) == 1,
  // so the multiplier is nudged until coprime with the epoch size.
  std::uint64_t m = (key | 1) % n;
  if (m == 0) m = 1;
  while (std::gcd(m, n) != 1) m = (m + 2) % n == 0 ? 1 : (m + 2) % n;
  x = (x % n) * m % n;
  x = (x + key) % n;
  return epoch * n + x;
}

}  // namespace scaffe::data
