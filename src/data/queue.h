// Bounded producer/consumer queue: the "distributed queue" each process owns
// in the parallel-reader design (Figure 3).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace scaffe::data {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    cv_items_.notify_one();
    return true;
  }

  /// Blocks while empty; returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_items_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    cv_space_.notify_one();
    return value;
  }

  /// Unblocks all producers and consumers; pops drain remaining items.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_items_.notify_all();
    cv_space_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_items_;
  std::condition_variable cv_space_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace scaffe::data
