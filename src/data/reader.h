// Parallel data reader (Figure 3): one reader thread per process, feeding a
// per-process bounded batch queue from a shard of the dataset.
//
// Sharding is strided: reader r of P reads global samples r, r+P, r+2P, ...
// so the union of P shards is exactly the sequential single-reader order —
// the property that makes distributed training equivalent to large-batch
// single-process training.
#pragma once

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "data/backend.h"
#include "data/queue.h"
#include "data/shuffle.h"

namespace scaffe::data {

/// One mini-batch of samples, packed for the solver's input blobs.
struct Batch {
  std::vector<float> data;    // batch x sample_floats
  std::vector<float> labels;  // batch
  std::uint64_t first_index = 0;
};

class DataReader {
 public:
  /// `shard` of `num_shards` strided sharding; `batch` samples per Batch.
  /// With `shuffle_epoch_size` > 0, sample indices pass through a
  /// deterministic per-epoch pseudo-random permutation (all shards use the
  /// same permutation, so the union of shards still covers each epoch
  /// exactly once — the property distributed training needs).
  /// `start_batch` skips the first batches of the (deterministic) stream, so
  /// a reader resumed after a crash produces exactly the batches an
  /// uninterrupted reader would have produced from that point.
  DataReader(ReadBackend& backend, int shard, int num_shards, int batch,
             std::size_t sample_floats, std::size_t queue_capacity = 4,
             std::uint64_t shuffle_epoch_size = 0, std::uint64_t shuffle_seed = 2017,
             std::uint64_t start_batch = 0)
      : backend_(backend),
        shard_(shard),
        num_shards_(num_shards),
        batch_(batch),
        sample_floats_(sample_floats),
        queue_(queue_capacity),
        shuffle_epoch_size_(shuffle_epoch_size),
        shuffle_seed_(shuffle_seed),
        start_batch_(start_batch) {
    backend_.attach_reader();  // may throw ReaderLimitError
    thread_ = std::thread([this] { run(); });
  }

  ~DataReader() {
    stop();
    backend_.detach_reader();
  }
  DataReader(const DataReader&) = delete;
  DataReader& operator=(const DataReader&) = delete;

  /// Blocking: next prefetched batch for this process.
  Batch next() {
    auto batch = queue_.pop();
    if (!batch) throw std::runtime_error("DataReader: queue closed");
    return std::move(*batch);
  }

  void stop() {
    queue_.close();
    if (thread_.joinable()) thread_.join();
  }

  std::uint64_t batches_produced() const noexcept { return produced_.load(); }

 private:
  void run() {
    std::uint64_t cursor = static_cast<std::uint64_t>(shard_) +
                           start_batch_ * static_cast<std::uint64_t>(batch_) *
                               static_cast<std::uint64_t>(num_shards_);
    for (;;) {
      Batch batch;
      batch.first_index = cursor;
      batch.data.reserve(static_cast<std::size_t>(batch_) * sample_floats_);
      batch.labels.reserve(static_cast<std::size_t>(batch_));
      for (int i = 0; i < batch_; ++i) {
        const Sample sample = backend_.read(permute(cursor));
        batch.data.insert(batch.data.end(), sample.image.begin(), sample.image.end());
        batch.labels.push_back(static_cast<float>(sample.label));
        cursor += static_cast<std::uint64_t>(num_shards_);
      }
      if (!queue_.push(std::move(batch))) return;  // closed
      ++produced_;
    }
  }

  /// Shared per-epoch permutation (see data/shuffle.h); identity when
  /// shuffling is off. SampleStore applies the same function, so a store-fed
  /// reader requests exactly the indices its peers preloaded.
  std::uint64_t permute(std::uint64_t index) const {
    return epoch_permute(index, shuffle_epoch_size_, shuffle_seed_);
  }

  ReadBackend& backend_;
  int shard_;
  int num_shards_;
  int batch_;
  std::size_t sample_floats_;
  BoundedQueue<Batch> queue_;
  std::uint64_t shuffle_epoch_size_ = 0;
  std::uint64_t shuffle_seed_ = 2017;
  std::uint64_t start_batch_ = 0;
  std::atomic<std::uint64_t> produced_{0};
  std::thread thread_;
};

}  // namespace scaffe::data
