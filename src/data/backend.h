// Read backends: where training samples come from (Section 3.2 / Figure 3).
//
//  - LmdbBackend models the single-file LMDB database: reads serialize on a
//    shared lock, reader registration is capped (the paper saw "severe
//    degradation or race conditions" beyond 64 parallel readers), and
//    aggregate throughput degrades past a contention knee.
//  - ImageDataBackend models Caffe's ImageDataLayer over a striped parallel
//    file system (Lustre): fully parallel reads that scale with stripes.
//
// Both are functional (they return real samples) and expose the throughput
// model the Figure 8 bench uses at 160-reader scale.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "data/dataset.h"
#include "net/cluster.h"

namespace scaffe::data {

/// Thrown when more readers attach to LMDB than it supports.
class ReaderLimitError : public std::runtime_error {
 public:
  explicit ReaderLimitError(const std::string& what) : std::runtime_error(what) {}
};

class ReadBackend {
 public:
  virtual ~ReadBackend() = default;

  /// Registers a reader; throws ReaderLimitError if unsupported.
  virtual void attach_reader() = 0;
  virtual void detach_reader() noexcept = 0;

  /// Reads one sample (blocking; thread-safe).
  virtual Sample read(std::uint64_t index) = 0;

  virtual const char* name() const noexcept = 0;

  /// Modelled aggregate throughput (samples/s) with `readers` parallel
  /// readers pulling samples of `sample_bytes` each.
  virtual double aggregate_samples_per_sec(int readers, std::size_t sample_bytes) const = 0;
};

/// LMDB-like single-file database.
class LmdbBackend final : public ReadBackend {
 public:
  LmdbBackend(SyntheticImageDataset dataset, net::StorageSpec storage = {})
      : dataset_(std::move(dataset)), storage_(storage) {}

  void attach_reader() override {
    const int readers = ++attached_;
    if (readers > storage_.lmdb_max_readers) {
      --attached_;
      throw ReaderLimitError("LMDB: " + std::to_string(readers) +
                             " readers exceeds the supported maximum of " +
                             std::to_string(storage_.lmdb_max_readers));
    }
  }
  void detach_reader() noexcept override { --attached_; }

  Sample read(std::uint64_t index) override {
    // Page-lock serialization: one reader in the critical section at a time.
    std::lock_guard<std::mutex> lock(page_lock_);
    ++reads_;
    return dataset_.make_sample(index);
  }

  const char* name() const noexcept override { return "LMDB"; }

  double aggregate_samples_per_sec(int readers, std::size_t sample_bytes) const override {
    if (readers <= 0 || readers > storage_.lmdb_max_readers) return 0.0;
    const double single = storage_.lmdb_single_reader_gbs * 1e9 /
                          static_cast<double>(sample_bytes);
    const int knee = storage_.lmdb_contention_knee;
    if (readers <= knee) return single * readers;
    // Past the knee, lock contention erodes the aggregate: each extra reader
    // costs a growing fraction of the shared budget.
    const double excess = static_cast<double>(readers - knee);
    return single * static_cast<double>(knee) / (1.0 + 0.15 * excess);
  }

  std::uint64_t reads() const noexcept { return reads_; }
  int attached() const noexcept { return attached_.load(); }

 private:
  SyntheticImageDataset dataset_;
  net::StorageSpec storage_;
  std::mutex page_lock_;
  std::atomic<int> attached_{0};
  std::atomic<std::uint64_t> reads_{0};
};

/// ImageDataLayer over a Lustre-like striped PFS.
class ImageDataBackend final : public ReadBackend {
 public:
  ImageDataBackend(SyntheticImageDataset dataset, net::StorageSpec storage = {})
      : dataset_(std::move(dataset)), storage_(storage) {}

  void attach_reader() override { ++attached_; }
  void detach_reader() noexcept override { --attached_; }

  Sample read(std::uint64_t index) override {
    ++reads_;
    return dataset_.make_sample(index);  // lock-free: files are independent
  }

  const char* name() const noexcept override { return "ImageData/Lustre"; }

  double aggregate_samples_per_sec(int readers, std::size_t sample_bytes) const override {
    if (readers <= 0) return 0.0;
    // Each reader streams from its own stripe until the OST pool saturates.
    const double per_stripe = storage_.pfs_stripe_gbs * 1e9 /
                              static_cast<double>(sample_bytes);
    return per_stripe * std::min(readers, storage_.pfs_num_ost);
  }

  std::uint64_t reads() const noexcept { return reads_; }

 private:
  SyntheticImageDataset dataset_;
  net::StorageSpec storage_;
  std::atomic<int> attached_{0};
  std::atomic<std::uint64_t> reads_{0};
};

}  // namespace scaffe::data
