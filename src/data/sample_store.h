// Distributed epoch-ahead sample store over scmpi (the LBANN data_store
// idea): each rank preloads a strided shard of the NEXT windows' samples
// from the backend and exchanges them with the ranks that will consume them,
// so steady-state training reads batches from peer memory instead of
// hammering the reader backend from every rank.
//
// Why: the paper's Figure 8 problem — LMDB-style single-file backends
// degrade (and eventually refuse readers) past a contention knee, long
// before the 160-GPU scale S-Caffe targets. The store caps backend pressure
// at `min(nranks, max_loaders)` attached loaders no matter how many ranks
// train.
//
// Protocol. Global sample slots g are the reader's strided cursor (consumer
// of slot g is rank g % P). Slots are grouped into windows of `window`
// consecutive slots — aligned with the per-epoch shuffle window, so the
// shared epoch_permute (data/shuffle.h) maps a slot to its dataset index
// without leaving the window. For window w:
//
//   loader of slot g    = (g / P) % L,  L = min(P, max_loaders)
//   loader l packs, per consumer c, every sample it owns for c into ONE
//   message (records of [raw_index, label, image]) read from the backend via
//   backing.read(epoch_permute(g)) — loaders ≥ L never touch the backend
//   the alltoallv-shaped exchange: L × P messages per window, delivered on a
//   reserved out-of-band context (Comm::oob_send) so the exchange bypasses
//   the fault injector's per-link ordinals and the credit budget
//   a consumer marks w ready once all L loader messages arrived (empty
//   messages are still sent, so the count is exact)
//
// Each rank's pump thread loads/receives `prefetch_windows` ahead of the
// window its reader is consuming (epoch-ahead: window w+1 is exchanged while
// w trains). Window payloads live in util::MemoryRegistry blocks, so the
// steady-state exchange recycles the same buffers instead of allocating.
//
// Fallback: if the world aborts, a peer store disappears, or a window stalls
// past `ready_timeout`, read() falls through to the backend. Samples are
// deterministic functions of their index, so fallback (and the store itself)
// is bitwise identical to backend-fed reading — the store changes where
// bytes come from, never what they are.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/backend.h"
#include "data/shuffle.h"
#include "mpi/comm.h"
#include "util/memory_registry.h"

namespace scaffe::data {

struct SampleStoreConfig {
  /// Samples per exchange window; align with the shuffle epoch size when
  /// shuffling so permuted indices stay within their window.
  std::uint64_t window = 0;
  std::size_t sample_floats = 0;
  bool shuffle = false;
  std::uint64_t shuffle_seed = 2017;
  /// First global slot the readers will consume (start_batch * batch * P for
  /// a resumed run) — the store begins exchanging at this slot's window.
  std::uint64_t start_index = 0;
  /// Windows exchanged ahead of consumption (>= 1).
  int prefetch_windows = 2;
  /// Backend-attachment cap: at most this many ranks load from the backend.
  int max_loaders = 32;
  /// How long read() waits for a window before falling back to the backend.
  std::chrono::milliseconds ready_timeout{5000};
};

/// Per-store serve counters (one rank's view).
struct SampleStoreStats {
  std::uint64_t hits = 0;        ///< samples served from peer-exchanged memory
  std::uint64_t fallbacks = 0;   ///< samples that fell through to the backend
  std::uint64_t windows_ready = 0;  ///< windows fully received this run
};

class SampleStore final : public ReadBackend {
 public:
  /// Collective: every rank of `comm` constructs the store together (loaders
  /// attach to `backing` here; ReaderLimitError propagates like a reader's).
  SampleStore(mpi::Comm& comm, ReadBackend& backing, SampleStoreConfig config)
      : comm_(comm),
        backing_(backing),
        config_(config),
        context_(store_context_for(comm.context())),
        loaders_(std::min(comm.size(), std::max(1, config.max_loaders))),
        is_loader_(comm.rank() < loaders_) {
    if (config_.window == 0) throw std::runtime_error("SampleStore: window must be > 0");
    if (config_.sample_floats == 0) {
      throw std::runtime_error("SampleStore: sample_floats must be > 0");
    }
    if (config_.prefetch_windows < 1) config_.prefetch_windows = 1;
    consumed_window_ = config_.start_index / config_.window;
    next_load_ = consumed_window_;
    next_recv_ = consumed_window_;
    // Pre-stock the registry with this rank's worst-case in-flight exchange
    // blocks so the hot path never allocates, regardless of warmup: at most
    // prefetch+2 windows of loader messages can sit undrained in the mailbox
    // (reader spread between ranks is bounded by the prefetch horizon) plus
    // prefetch+2 windows of absorbed copies in the cache, L messages each.
    const std::uint64_t slots_per_message =
        (config_.window + static_cast<std::uint64_t>(comm.size()) *
                              static_cast<std::uint64_t>(loaders_) -
         1) /
        (static_cast<std::uint64_t>(comm.size()) * static_cast<std::uint64_t>(loaders_));
    const std::size_t message_bytes = static_cast<std::size_t>(slots_per_message + 1) *
                                      record_bytes();
    const std::size_t inflight_messages =
        static_cast<std::size_t>(loaders_) *
        (2 * static_cast<std::size_t>(config_.prefetch_windows) + 5);
    util::MemoryRegistry::instance().reserve(message_bytes, inflight_messages);
    if (is_loader_) backing_.attach_reader();
    pump_ = std::thread([this] { pump(); });
  }

  ~SampleStore() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (pump_.joinable()) pump_.join();
    if (is_loader_) backing_.detach_reader();
  }
  SampleStore(const SampleStore&) = delete;
  SampleStore& operator=(const SampleStore&) = delete;

  // --- ReadBackend ----------------------------------------------------------

  /// Store consumers are in-memory readers: no cap, no backend attachment.
  void attach_reader() override { ++attached_; }
  void detach_reader() noexcept override { --attached_; }

  /// Serves the (already permuted) dataset index the reader asked for from
  /// the window cache, falling back to the backend when the store cannot
  /// (world dead, window stalled, or an index outside the exchange).
  Sample read(std::uint64_t index) override {
    const std::uint64_t w = index / config_.window;
    std::unique_lock<std::mutex> lock(mutex_);
    if (w > consumed_window_) {
      // The reader moved on: retire every older window (its blocks recycle
      // into the registry) and let the pump extend the load horizon.
      consumed_window_ = w;
      windows_.erase(windows_.begin(), windows_.lower_bound(w));
      cv_.notify_all();
    }
    cv_.wait_for(lock, config_.ready_timeout, [&] {
      return dead_ || stop_ || is_ready_locked(w);
    });
    auto it = windows_.find(w);
    if (it != windows_.end() && it->second.ready) {
      auto slot = it->second.index.find(index);
      if (slot != it->second.index.end()) {
        Sample sample = unpack(it->second.blocks[slot->second.first], slot->second.second);
        ++stats_.hits;
        return sample;
      }
    }
    ++stats_.fallbacks;
    lock.unlock();
    return backing_.read(index);
  }

  const char* name() const noexcept override { return "SampleStore"; }

  /// Sustained throughput is bounded by what the L attached loaders pull
  /// from the backend — additional consumers read peer memory, so the
  /// backend never sees more than `loaders` readers.
  double aggregate_samples_per_sec(int readers, std::size_t sample_bytes) const override {
    return backing_.aggregate_samples_per_sec(std::min(readers, loaders_), sample_bytes);
  }

  // --- introspection --------------------------------------------------------

  int loaders() const noexcept { return loaders_; }

  SampleStoreStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Reserved exchange context, derived from (and disjoint from) the
  /// communicator's context. Same avalanche the health plane uses, with a
  /// different salt.
  static mpi::ContextId store_context_for(mpi::ContextId comm_context) {
    std::uint64_t x = static_cast<std::uint64_t>(comm_context) ^ 0x5354524d53ULL;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<mpi::ContextId>(x >> 1);
  }

 private:
  // Wire record: [u64 raw dataset index][i32 label][f32 x sample_floats],
  // memcpy-packed (threads of one process: no endianness concern).
  std::size_t record_bytes() const noexcept {
    return sizeof(std::uint64_t) + sizeof(std::int32_t) +
           config_.sample_floats * sizeof(float);
  }

  struct CachedWindow {
    std::vector<util::MemBlock> blocks;  // one packed loader message each
    // raw index -> (block ordinal, byte offset of its record)
    std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>> index;
    int messages = 0;
    bool ready = false;
  };

  bool is_ready_locked(std::uint64_t w) const {
    auto it = windows_.find(w);
    return it != windows_.end() && it->second.ready;
  }

  Sample unpack(const util::MemBlock& block, std::size_t offset) const {
    const std::byte* p = block.data() + offset;
    Sample sample;
    std::memcpy(&sample.index, p, sizeof(std::uint64_t));
    std::int32_t label = 0;
    std::memcpy(&label, p + sizeof(std::uint64_t), sizeof(std::int32_t));
    sample.label = label;
    sample.image.resize(config_.sample_floats);
    std::memcpy(sample.image.data(), p + sizeof(std::uint64_t) + sizeof(std::int32_t),
                config_.sample_floats * sizeof(float));
    return sample;
  }

  static int window_tag(std::uint64_t w) noexcept {
    return static_cast<int>(w & 0x3fffffff);
  }

  /// Pump thread: load-and-send this rank's loader shard of each window
  /// inside the horizon, then drain loader messages into the cache. Exits on
  /// stop; a dead world flips `dead_` so read() falls back.
  void pump() {
    try {
      for (;;) {
        std::uint64_t load_w = 0;
        bool claimed = false;
        {
          std::unique_lock<std::mutex> lock(mutex_);
          if (stop_) return;
          const std::uint64_t horizon =
              consumed_window_ + static_cast<std::uint64_t>(config_.prefetch_windows);
          if (next_load_ <= horizon) {
            // Claim the next window of the horizon. Non-loader ranks advance
            // the cursor too — they receive the window without loading it.
            load_w = next_load_++;
            claimed = true;
          }
          if (!claimed && next_recv_ >= next_load_) {
            // Horizon exhausted and every claimed window fully received:
            // park until the reader advances or we are stopped.
            cv_.wait_for(lock, std::chrono::microseconds(200));
            continue;
          }
        }
        if (claimed && is_loader_) load_and_send(load_w);
        const bool progressed = drain();
        if (!claimed && !progressed) {
          // Waiting on slow peers: poll gently instead of spinning.
          std::unique_lock<std::mutex> lock(mutex_);
          if (stop_) return;
          cv_.wait_for(lock, std::chrono::microseconds(200));
        }
      }
    } catch (const mpi::AbortError&) {
      std::lock_guard<std::mutex> lock(mutex_);
      dead_ = true;
      cv_.notify_all();
    }
  }

  /// Reads this rank's loader shard of window `w` from the backend and sends
  /// one packed message per consumer (always, even when empty — consumers
  /// count messages to detect completion).
  void load_and_send(std::uint64_t w) {
    const int P = comm_.size();
    const int me = comm_.rank();
    const std::uint64_t base = w * config_.window;
    const std::size_t record = record_bytes();
    std::vector<std::vector<std::byte>> outgoing(static_cast<std::size_t>(P));
    for (std::uint64_t g = base; g < base + config_.window; ++g) {
      const int consumer = static_cast<int>(g % static_cast<std::uint64_t>(P));
      const int loader = static_cast<int>((g / static_cast<std::uint64_t>(P)) %
                                          static_cast<std::uint64_t>(loaders_));
      if (loader != me) continue;
      const std::uint64_t raw =
          config_.shuffle ? epoch_permute(g, config_.window, config_.shuffle_seed) : g;
      const Sample sample = backing_.read(raw);
      auto& buffer = outgoing[static_cast<std::size_t>(consumer)];
      const std::size_t at = buffer.size();
      buffer.resize(at + record);
      std::byte* p = buffer.data() + at;
      std::memcpy(p, &raw, sizeof(std::uint64_t));
      const std::int32_t label = sample.label;
      std::memcpy(p + sizeof(std::uint64_t), &label, sizeof(std::int32_t));
      std::memcpy(p + sizeof(std::uint64_t) + sizeof(std::int32_t), sample.image.data(),
                  config_.sample_floats * sizeof(float));
    }
    for (int consumer = 0; consumer < P; ++consumer) {
      comm_.oob_send(context_, consumer, window_tag(w),
                     outgoing[static_cast<std::size_t>(consumer)]);
    }
  }

  /// Polls for loader messages of every window in [next_recv_, next_load_),
  /// advancing next_recv_ past windows that are complete. Returns whether
  /// any message arrived.
  bool drain() {
    std::uint64_t first, last;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      first = next_recv_;
      last = next_load_;
    }
    bool progressed = false;
    for (std::uint64_t w = first; w < last; ++w) {
      for (int loader = 0; loader < loaders_; ++loader) {
        mpi::Payload payload;
        while (comm_.oob_try_recv(context_, loader, window_tag(w), payload)) {
          absorb(w, payload.bytes());
          progressed = true;
        }
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    // Complete windows retire; so do windows the reader already moved past
    // (their remaining messages are fenced out at the next generation).
    while (next_recv_ < last &&
           (next_recv_ < consumed_window_ || is_ready_locked(next_recv_))) {
      ++next_recv_;
    }
    return progressed;
  }

  /// Copies one loader message into the window cache (registry-backed) and
  /// indexes its records.
  void absorb(std::uint64_t w, std::span<const std::byte> data) {
    const std::size_t record = record_bytes();
    util::MemBlock block;
    if (!data.empty()) {
      // Transfer-routed: absorbed on the pump thread, released by the reader
      // thread when the window retires.
      block = util::MemoryRegistry::instance().acquire(data.size(),
                                                       util::BlockRoute::kTransfer);
      std::memcpy(block.data(), data.data(), data.size());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (w < consumed_window_) return;  // reader already moved past: drop
    CachedWindow& window = windows_[w];
    if (!data.empty()) {
      const std::size_t ordinal = window.blocks.size();
      for (std::size_t offset = 0; offset + record <= data.size(); offset += record) {
        std::uint64_t raw = 0;
        std::memcpy(&raw, data.data() + offset, sizeof(std::uint64_t));
        window.index.emplace(raw, std::make_pair(ordinal, offset));
      }
      window.blocks.push_back(std::move(block));
    }
    if (++window.messages == loaders_) {
      window.ready = true;
      ++stats_.windows_ready;
      cv_.notify_all();
    }
  }

  mpi::Comm& comm_;
  ReadBackend& backing_;
  SampleStoreConfig config_;
  mpi::ContextId context_;
  int loaders_;
  bool is_loader_;
  std::atomic<int> attached_{0};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, CachedWindow> windows_;  // ordered: eviction by bound
  std::uint64_t consumed_window_ = 0;  // highest window the reader touched
  std::uint64_t next_load_ = 0;        // next window this rank loads/sends
  std::uint64_t next_recv_ = 0;        // lowest window not yet fully received
  SampleStoreStats stats_;
  bool stop_ = false;
  bool dead_ = false;

  std::thread pump_;
};

}  // namespace scaffe::data
