// Synthetic datasets standing in for ImageNet / CIFAR.
//
// Image content never affects the paper's systems results — only sample
// sizes, counts, and where the bytes come from. SyntheticImageDataset
// produces deterministic pseudo-random images keyed by index, so every
// reader (and every rank) sees the same dataset without storing it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace scaffe::data {

struct Sample {
  std::vector<float> image;
  int label = 0;
  std::uint64_t index = 0;
};

class SyntheticImageDataset {
 public:
  SyntheticImageDataset(std::uint64_t size, int channels, int height, int width, int classes,
                        std::uint64_t seed = 2017)
      : size_(size),
        channels_(channels),
        height_(height),
        width_(width),
        classes_(classes),
        seed_(seed) {}

  std::uint64_t size() const noexcept { return size_; }
  int classes() const noexcept { return classes_; }
  std::size_t sample_floats() const noexcept {
    return static_cast<std::size_t>(channels_) * static_cast<std::size_t>(height_) *
           static_cast<std::size_t>(width_);
  }
  std::size_t sample_bytes() const noexcept { return sample_floats() * sizeof(float); }

  /// Deterministic sample generation: same index -> same pixels and label.
  Sample make_sample(std::uint64_t index) const {
    Sample sample;
    sample.index = index % size_;
    util::Rng rng(seed_ ^ (sample.index * 0x9e3779b97f4a7c15ULL));
    sample.label = static_cast<int>(rng.below(static_cast<std::uint64_t>(classes_)));
    sample.image.resize(sample_floats());
    // Label-correlated signal plus noise, so training on this data is a
    // learnable problem (tests overfit it).
    const float bias = static_cast<float>(sample.label) / static_cast<float>(classes_) - 0.5f;
    for (float& v : sample.image) {
      v = bias + 0.5f * static_cast<float>(rng.normal());
    }
    return sample;
  }

  /// CIFAR10-shaped instance (32x32x3, 10 classes, 50k train samples).
  static SyntheticImageDataset cifar10() { return {50'000, 3, 32, 32, 10}; }

  /// ImageNet-shaped instance (downscaled spatially for functional runs;
  /// 1000 classes, 1.28M samples).
  static SyntheticImageDataset imagenet_like(int side = 32) {
    return {1'281'167, 3, side, side, 1000};
  }

 private:
  std::uint64_t size_;
  int channels_;
  int height_;
  int width_;
  int classes_;
  std::uint64_t seed_;
};

}  // namespace scaffe::data
