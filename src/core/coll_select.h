// Collective schedule selection: the SCAFFE_COLL_ALGO environment knob and
// the offline tuning-table cache behind CollAlgo::Tuned.
//
// The selection story has three layers, strongest first:
//   1. SCAFFE_COLL_ALGO (this file) — a process-wide override, so a run can
//      be switched between schedule families without recompiling.
//   2. ScaffeConfig::coll_algo — the programmatic choice.
//   3. ScaffeConfig::reduce / ring_allreduce — the paper's fine-grained
//      surface, used when both of the above say Config.
// install_collectives() (hr_factory.h) resolves the three and installs the
// matching schedule factories into the communicator; because factories are
// pure functions of (nranks, root, count), the choice re-derives correctly
// after an elastic shrink.
#pragma once

#include <cstddef>

#include "coll/tuner.h"
#include "core/config.h"
#include "net/cluster.h"

namespace scaffe::core {

/// The parsed SCAFFE_COLL_ALGO value. CB/CC accept an optional "-<k>" chain
/// size suffix ("cb-16"); other algorithms take none.
struct CollAlgoChoice {
  CollAlgo algo = CollAlgo::Config;
  int chain_size = 8;  // CB/CC only
};

/// Parses SCAFFE_COLL_ALGO. Accepted values (case-insensitive): "config",
/// "tuned", "binomial"/"bin", "chain", "cb"/"cb-<k>", "cc"/"cc-<k>", "dbt",
/// "ring", "topo-ring". Unset or empty means Config (no override). Throws
/// mpi::ConfigError on anything else — a typo silently falling back to the
/// default algorithm would be an invisible perf bug.
CollAlgoChoice coll_algo_from_env();

/// The effective algorithm once the environment override is applied on top
/// of the programmatic config. The returned chain_size comes from the env
/// suffix when the env picked CB/CC, else from `config.reduce`.
CollAlgoChoice resolve_coll_algo(const ScaffeConfig& config);

/// Modelled cluster used for offline tuning and topology-ring ordering at a
/// given world size: the smallest built-in ClusterSpec that fits `nranks`
/// GPUs (Cluster-B, Cluster-A, then the 1024-GPU fat-tree preset). Throws if
/// nranks exceeds every preset.
net::ClusterSpec tuning_cluster_for(int nranks);

/// Process-wide cache of extended hr_tune() tables keyed by (cluster name,
/// nranks). Tuning sweeps hundreds of DES runs, so solvers rebuilt over the
/// same world size — including elastic-recovery rebuilds — must not pay it
/// twice. Thread-safe; the returned reference lives for the process.
const coll::TuningTable& tuned_table_for(const net::ClusterSpec& cluster, int nranks);

/// Convenience: tuned table on the preset matched by `nranks`.
const coll::TuningTable& tuned_table_for(int nranks);

}  // namespace scaffe::core
