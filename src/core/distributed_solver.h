// The functional S-Caffe distributed solver (Section 4).
//
// One DistributedSolver runs on each scmpi rank (one per "GPU"), owning a
// solver replica. Each train_iteration executes the paper's workflow under
// the configured co-design variant:
//
//   SC-B   (4.1): blocking CUDA-aware MPI_Bcast of the packed parameters,
//                 forward/backward, blocking MPI_Reduce of packed gradients.
//   SC-OB  (4.2): all per-layer Ibcasts posted up front; the Wait for layer
//                 i's parameters is placed immediately before layer i's
//                 forward pass (Figure 5's multi-stage on-demand design).
//   SC-OBR (4.3): SC-OB plus a helper thread that runs the backward passes
//                 and signals the main thread (C++ condition flag) to issue
//                 layer i's reduction while layer i-1 still computes.
//
// Only the root solver applies the SGD update; replicas receive the new
// parameters through the next iteration's propagation (Figure 1).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/bucket_planner.h"
#include "core/config.h"
#include "dl/solver.h"
#include "mpi/comm.h"

namespace scaffe::core {

struct IterationResult {
  float local_loss = 0.0f;
  long iteration = 0;  // iteration just completed
  /// Time to produce this rank's local gradients, measured up to (not
  /// including) the gradient aggregation. In synchronized data-parallel
  /// training the WALL step time equalizes across ranks (everyone waits for
  /// the slowest inside the collective), so this pre-aggregation latency is
  /// what the health plane's straggler detection feeds on: a genuinely slow
  /// rank shows up here while its peers stay fast. Under SC-OBR the backward
  /// pass overlaps aggregation, so the measurement covers through the
  /// forward pass only.
  double compute_ms = 0.0;
};

class DistributedSolver {
 public:
  DistributedSolver(mpi::Comm& comm, dl::NetSpec net_spec, dl::SolverConfig solver_config,
                    ScaffeConfig config, gpu::Device* device = nullptr);

  /// Runs one data-parallel training iteration on this rank's shard.
  IterationResult train_iteration(std::span<const float> data, std::span<const float> labels);

  dl::SgdSolver& solver() noexcept { return solver_; }
  const ScaffeConfig& config() const noexcept { return config_; }
  bool is_root() const noexcept { return comm_.rank() == 0; }

  /// The fusion bucket plan, when config().fusion.enabled (SC-OB / SC-OBR
  /// RootUpdate paths; other paths ignore fusion).
  const BucketPlanner* planner() const noexcept {
    return planner_ ? &*planner_ : nullptr;
  }

 private:
  void propagate_blocking();
  float forward_backward_blocking();
  float forward_with_overlapped_propagation(std::vector<mpi::Request>& requests);
  void aggregate_blocking();
  void aggregate_overlapped();
  void aggregate_fused();
  void aggregate_fused_overlapped();
  void root_update();
  void load_batch(std::span<const float> data, std::span<const float> labels);

  mpi::Comm& comm_;
  ScaffeConfig config_;
  dl::SgdSolver solver_;
  std::vector<float> packed_;  // param_count floats: comm/reduction buffer
  std::optional<BucketPlanner> planner_;  // set when config_.fusion.enabled
};

}  // namespace scaffe::core
