// Installs the DL-aware hierarchical reduction into an scmpi communicator.
#pragma once

#include "coll/algorithms.h"
#include "core/config.h"
#include "mpi/comm.h"

namespace scaffe::core {

/// Schedule factory implementing `algo`. Hierarchical schedules require
/// root 0 (the S-Caffe root solver); other roots and tiny communicators fall
/// back to a binomial tree, as the tuned runtime does.
inline mpi::ScheduleFactory make_reduce_factory(ReduceAlgo algo) {
  return [algo](int nranks, int root, std::size_t count) {
    if (algo.hierarchical && root == 0 && nranks > algo.chain_size) {
      return coll::hierarchical_reduce(nranks, count, algo.chain_size, algo.lower, algo.upper,
                                       algo.chunks);
    }
    if (algo.hierarchical && root == 0 && nranks > 2) {
      // Single lower-level group: a flat pipelined chain.
      return coll::chain_reduce(nranks, root, count, algo.chunks);
    }
    return coll::binomial_reduce(nranks, root, count);
  };
}

/// Propagation uses a binomial bcast (the paper optimizes propagation via
/// NBC overlap, not via the bcast algorithm itself).
inline mpi::ScheduleFactory make_bcast_factory() {
  return [](int nranks, int root, std::size_t count) {
    return coll::binomial_bcast(nranks, root, count);
  };
}

/// Installs every collective schedule factory `config` asks for into `comm`.
/// This is the single (re)derivation point for elastic recovery: factories
/// are pure functions of (nranks, root, count), so installing them on a
/// communicator rebuilt over the survivor world re-derives the hierarchical
/// reduction tree, chain pipelining, and ring partitioning for the new size
/// with no stale per-size state left behind.
inline void install_collectives(mpi::Comm& comm, const ScaffeConfig& config) {
  comm.set_reduce_factory(make_reduce_factory(config.reduce));
  comm.set_bcast_factory(make_bcast_factory());
  if (config.aggregation == Aggregation::AllreduceSgd && config.ring_allreduce) {
    comm.set_allreduce_factory([](int nranks, int /*root*/, std::size_t count) {
      // Tiny buffers fall back to reduce+bcast inside coll; the ring needs
      // at least one element per rank.
      return coll::ring_allreduce(nranks, count);
    });
  }
}

}  // namespace scaffe::core
