// Installs the DL-aware hierarchical reduction into an scmpi communicator.
#pragma once

#include <algorithm>

#include "coll/algorithms.h"
#include "coll/dbt.h"
#include "coll/topo_ring.h"
#include "coll/tuner.h"
#include "core/coll_select.h"
#include "core/config.h"
#include "mpi/comm.h"
#include "net/topology.h"

namespace scaffe::core {

/// Schedule factory implementing `algo`. Hierarchical schedules require
/// root 0 (the S-Caffe root solver); other roots and tiny communicators fall
/// back to a binomial tree, as the tuned runtime does.
inline mpi::ScheduleFactory make_reduce_factory(ReduceAlgo algo) {
  return [algo](int nranks, int root, std::size_t count) {
    if (algo.hierarchical && root == 0 && nranks > algo.chain_size) {
      return coll::hierarchical_reduce(nranks, count, algo.chain_size, algo.lower, algo.upper,
                                       algo.chunks);
    }
    if (algo.hierarchical && root == 0 && nranks > 2) {
      // Single lower-level group: a flat pipelined chain.
      return coll::chain_reduce(nranks, root, count, algo.chunks);
    }
    return coll::binomial_reduce(nranks, root, count);
  };
}

/// Propagation uses a binomial bcast (the paper optimizes propagation via
/// NBC overlap, not via the bcast algorithm itself).
inline mpi::ScheduleFactory make_bcast_factory() {
  return [](int nranks, int root, std::size_t count) {
    return coll::binomial_bcast(nranks, root, count);
  };
}

/// Installs every collective schedule factory `config` asks for into `comm`,
/// after resolving the SCAFFE_COLL_ALGO override (coll_select.h).
/// This is the single (re)derivation point for elastic recovery: factories
/// are pure functions of (nranks, root, count), so installing them on a
/// communicator rebuilt over the survivor world re-derives the hierarchical
/// reduction tree, chain pipelining, and ring partitioning for the new size
/// with no stale per-size state left behind.
inline void install_collectives(mpi::Comm& comm, const ScaffeConfig& config) {
  const CollAlgoChoice choice = resolve_coll_algo(config);
  const int chunks = config.reduce.chunks;
  // Reinstalls must not leak a previous choice's allreduce factory: an empty
  // factory restores the default reduce-to-0 + bcast composition.
  comm.set_allreduce_factory({});
  switch (choice.algo) {
    case CollAlgo::Config: {
      comm.set_reduce_factory(make_reduce_factory(config.reduce));
      comm.set_bcast_factory(make_bcast_factory());
      if (config.aggregation == Aggregation::AllreduceSgd && config.ring_allreduce) {
        comm.set_allreduce_factory([](int nranks, int /*root*/, std::size_t count) {
          // Tiny buffers fall back to reduce+bcast inside coll; the ring
          // needs at least one element per rank.
          return coll::ring_allreduce(nranks, count);
        });
      }
      break;
    }
    case CollAlgo::Tuned: {
      // Per-size winner from the extended offline sweep; non-zero roots fall
      // back to a binomial tree like the hierarchical factory does.
      comm.set_reduce_factory([](int nranks, int root, std::size_t count) {
        if (root != 0 || nranks < 2) return coll::binomial_reduce(nranks, root, count);
        return coll::hr_tuned_reduce(tuned_table_for(nranks), nranks, count);
      });
      comm.set_bcast_factory(make_bcast_factory());
      break;
    }
    case CollAlgo::Binomial: {
      comm.set_reduce_factory(make_reduce_factory(ReduceAlgo::binomial()));
      comm.set_bcast_factory(make_bcast_factory());
      break;
    }
    case CollAlgo::Chain: {
      comm.set_reduce_factory([chunks](int nranks, int root, std::size_t count) {
        return coll::chain_reduce(nranks, root, count, chunks);
      });
      comm.set_bcast_factory([chunks](int nranks, int root, std::size_t count) {
        return coll::chain_bcast(nranks, root, count, chunks);
      });
      break;
    }
    case CollAlgo::CB:
    case CollAlgo::CC: {
      const coll::LevelAlgo upper = choice.algo == CollAlgo::CB ? coll::LevelAlgo::Binomial
                                                                : coll::LevelAlgo::Chain;
      comm.set_reduce_factory(make_reduce_factory(
          ReduceAlgo::hr(coll::LevelAlgo::Chain, upper, choice.chain_size, chunks)));
      comm.set_bcast_factory(make_bcast_factory());
      break;
    }
    case CollAlgo::Dbt: {
      comm.set_reduce_factory([](int nranks, int root, std::size_t count) {
        return coll::dbt_reduce(nranks, root, count);
      });
      comm.set_bcast_factory([](int nranks, int root, std::size_t count) {
        return coll::dbt_bcast(nranks, root, count);
      });
      comm.set_allreduce_factory([](int nranks, int /*root*/, std::size_t count) {
        return coll::dbt_allreduce(nranks, count);
      });
      break;
    }
    case CollAlgo::Ring: {
      // Ring is an allreduce shape; rooted collectives keep the configured
      // reduce/bcast so RootUpdate training still works under the override.
      comm.set_reduce_factory(make_reduce_factory(config.reduce));
      comm.set_bcast_factory(make_bcast_factory());
      comm.set_allreduce_factory([](int nranks, int /*root*/, std::size_t count) {
        return coll::ring_allreduce(nranks, count);
      });
      break;
    }
    case CollAlgo::TopoRing: {
      // Segment size follows the tuner's measured crossover for this world
      // size (the boundary where per-message overhead stops dominating).
      // Without a usable table the measured eager limit stands in: segments
      // at or below it skip the rendezvous round-trip, a sane default grain.
      const std::size_t segment_bytes = tuned_table_for(comm.size()).recommended_segment_bytes(
          std::max<std::size_t>(comm.eager_limit(), 1));
      comm.set_reduce_factory([chunks](int nranks, int root, std::size_t count) {
        const net::Topology topo(tuning_cluster_for(nranks), nranks);
        return coll::topo_ring_reduce(topo, root, count, chunks);
      });
      comm.set_bcast_factory([chunks](int nranks, int root, std::size_t count) {
        const net::Topology topo(tuning_cluster_for(nranks), nranks);
        return coll::topo_ring_bcast(topo, root, count, chunks);
      });
      comm.set_allreduce_factory([segment_bytes](int nranks, int /*root*/,
                                                 std::size_t count) {
        const net::Topology topo(tuning_cluster_for(nranks), nranks);
        return coll::topo_ring_allreduce(topo, count, segment_bytes);
      });
      break;
    }
  }
}

}  // namespace scaffe::core
