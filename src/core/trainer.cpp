#include "core/trainer.h"

#include <mutex>
#include <stdexcept>

#include "data/reader.h"
#include "dl/snapshot.h"
#include "util/fault.h"

namespace scaffe::core {

Trainer::Trainer(mpi::Comm& comm, data::ReadBackend& backend, std::size_t sample_floats,
                 NetSpecFactory net_factory, TrainerConfig config)
    : comm_(comm),
      backend_(backend),
      sample_floats_(sample_floats),
      net_factory_(std::move(net_factory)),
      config_(std::move(config)) {
  if (config_.scaling == Scaling::Strong) {
    shard_batch_ = config_.global_batch / comm_.size();
    if (shard_batch_ < 1 || shard_batch_ * comm_.size() != config_.global_batch) {
      throw std::runtime_error("Trainer: global batch " +
                               std::to_string(config_.global_batch) +
                               " not divisible across " + std::to_string(comm_.size()) +
                               " ranks");
    }
  } else {
    shard_batch_ = config_.global_batch;  // weak scaling: constant per GPU
  }
  if (config_.start_iteration < 0 || config_.start_iteration > config_.iterations) {
    throw std::runtime_error("Trainer: start_iteration out of range");
  }
  if (config_.start_iteration > 0 && config_.snapshot_path.empty()) {
    throw std::runtime_error("Trainer: resume requires a snapshot_path");
  }
}

TrainerReport Trainer::run() {
  TrainerReport report;
  auto& faults = util::FaultInjector::instance();

  data::DataReader reader(backend_, comm_.rank(), comm_.size(), shard_batch_,
                          sample_floats_, /*queue_capacity=*/4, config_.shuffle_epoch_size,
                          /*shuffle_seed=*/2017,
                          static_cast<std::uint64_t>(config_.start_iteration));
  DistributedSolver solver(comm_, net_factory_(shard_batch_), config_.solver,
                           config_.scaffe);

  if (config_.start_iteration > 0) {
    // Recovery path: every rank restores the full solver checkpoint (params
    // + momentum + iteration), so the resumed trajectory is bitwise the one
    // the uninterrupted run would have followed.
    dl::load_solver(solver.solver(), config_.snapshot_path);
    if (solver.solver().iteration() != config_.start_iteration) {
      throw std::runtime_error("Trainer: snapshot iteration " +
                               std::to_string(solver.solver().iteration()) +
                               " does not match resume point " +
                               std::to_string(config_.start_iteration));
    }
    report.recovery.resumed_iteration = config_.start_iteration;
  }

  for (int iteration = config_.start_iteration; iteration < config_.iterations;
       ++iteration) {
    // Rank-crash-at-iteration hook: in a real cluster this is the process
    // dying; here it throws, the world aborts, and recovery takes over.
    faults.check_crash(comm_.rank(), iteration);

    const data::Batch batch = reader.next();
    const IterationResult result = solver.train_iteration(batch.data, batch.labels);
    if (solver.is_root()) report.root_losses.push_back(result.local_loss);

    if (config_.snapshot_every > 0 && (iteration + 1) % config_.snapshot_every == 0) {
      if (solver.is_root() && !config_.snapshot_path.empty()) {
        const int attempts = dl::save_solver(solver.solver(), config_.snapshot_path);
        report.recovery.snapshot_write_retries += attempts - 1;
        ++report.snapshots_written;
      }
      // Snapshots are a synchronization point in Caffe's workflow.
      comm_.barrier();
    }
  }

  report.iterations = solver.solver().iteration();
  report.samples_trained =
      static_cast<std::uint64_t>(config_.iterations - config_.start_iteration) *
      static_cast<std::uint64_t>(shard_batch_) * static_cast<std::uint64_t>(comm_.size());
  report.batches_read = reader.batches_produced();
  if (solver.is_root()) {
    report.final_params.resize(solver.solver().net().param_count());
    solver.solver().net().flatten_params(report.final_params);
  }
  return report;
}

TrainerReport train_with_recovery(int nranks, data::ReadBackend& backend,
                                  std::size_t sample_floats, NetSpecFactory net_factory,
                                  TrainerConfig config, int max_restarts) {
  RecoveryEvents recovery;
  int start_iteration = config.start_iteration;

  mpi::Runtime runtime(nranks);
  if (config.recv_timeout_ms > 0) {
    runtime.set_recv_timeout(std::chrono::milliseconds(config.recv_timeout_ms));
  }

  for (;;) {
    std::mutex mutex;
    TrainerReport root_report;
    bool have_root_report = false;

    bool restartable_failure = false;
    try {
      runtime.run([&](mpi::Comm& comm) {
        TrainerConfig attempt_config = config;
        attempt_config.start_iteration = start_iteration;
        Trainer trainer(comm, backend, sample_floats, net_factory, attempt_config);
        TrainerReport report = trainer.run();
        if (comm.rank() == 0) {
          std::lock_guard<std::mutex> lock(mutex);
          root_report = std::move(report);
          have_root_report = true;
        }
      });
    } catch (const mpi::TimeoutError&) {
      ++recovery.timeouts;
      restartable_failure = true;
    } catch (const util::InjectedCrash&) {
      restartable_failure = true;
    } catch (const mpi::AbortError&) {
      restartable_failure = true;
    }
    // Anything else (config errors, corrupt-beyond-recovery checkpoints,
    // logic bugs) propagates: restarting would not help.

    if (!restartable_failure) {
      if (!have_root_report) {
        throw std::runtime_error("train_with_recovery: no report from rank 0");
      }
      root_report.recovery.restarts = recovery.restarts;
      root_report.recovery.timeouts = recovery.timeouts;
      root_report.recovery.snapshot_write_retries += recovery.snapshot_write_retries;
      if (recovery.restarts > 0) {
        root_report.recovery.resumed_iteration = recovery.resumed_iteration;
      }
      root_report.recovery.faults_fired = util::FaultInjector::instance().stats().total();
      return root_report;
    }

    ++recovery.restarts;
    if (recovery.restarts > max_restarts) {
      throw std::runtime_error("train_with_recovery: restart budget (" +
                               std::to_string(max_restarts) + ") exhausted");
    }

    // Resume from the last good checkpoint, or from scratch when none (or a
    // corrupted one) exists — probe_snapshot validates CRC and structure.
    const auto info = dl::probe_snapshot(config.snapshot_path);
    start_iteration =
        (info && info->iteration > 0) ? static_cast<int>(info->iteration) : 0;
    recovery.resumed_iteration = start_iteration;
  }
}

}  // namespace scaffe::core
