#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <numeric>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>

#include "data/reader.h"
#include "dl/snapshot.h"
#include "mpi/knobs.h"
#include "util/fault.h"

namespace scaffe::core {

namespace {

// Reader prefetch queue depth (batches buffered ahead of the solver).
// SCAFFE_PREFETCH_DEPTH, default 4; typed ConfigError on malformed or zero.
std::size_t prefetch_depth() {
  const char* env = std::getenv("SCAFFE_PREFETCH_DEPTH");
  if (env == nullptr) return 4;
  const std::uint32_t depth = mpi::parse_count_knob("SCAFFE_PREFETCH_DEPTH", env);
  if (depth == 0) {
    throw mpi::ConfigError("SCAFFE_PREFETCH_DEPTH", env,
                           "is not a prefetch depth (expected a count >= 1)");
  }
  return depth;
}

// SCAFFE_SAMPLE_STORE=on/1/off/0 overrides TrainerConfig::sample_store.
bool sample_store_enabled(bool config_default) {
  const char* env = std::getenv("SCAFFE_SAMPLE_STORE");
  if (env == nullptr) return config_default;
  const std::string text(env);
  if (text == "on" || text == "1") return true;
  if (text == "off" || text == "0") return false;
  throw mpi::ConfigError("SCAFFE_SAMPLE_STORE", text,
                         "is not a sample-store mode (expected on, 1, off, or 0)");
}

}  // namespace

const char* recovery_policy_name(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::Restart: return "Restart";
    case RecoveryPolicy::Shrink: return "Shrink";
    case RecoveryPolicy::Rejoin: return "Rejoin";
  }
  return "?";
}

Trainer::Trainer(mpi::Comm& comm, data::ReadBackend& backend, std::size_t sample_floats,
                 NetSpecFactory net_factory, TrainerConfig config)
    : comm_(comm),
      backend_(backend),
      sample_floats_(sample_floats),
      net_factory_(std::move(net_factory)),
      config_(std::move(config)) {
  if (config_.scaling == Scaling::Strong) {
    shard_batch_ = config_.global_batch / comm_.size();
    if (shard_batch_ < 1 || shard_batch_ * comm_.size() != config_.global_batch) {
      throw std::runtime_error("Trainer: global batch " +
                               std::to_string(config_.global_batch) +
                               " not divisible across " + std::to_string(comm_.size()) +
                               " ranks");
    }
  } else {
    shard_batch_ = config_.global_batch;  // weak scaling: constant per GPU
  }
  if (config_.start_iteration < 0 || config_.start_iteration > config_.iterations) {
    throw std::runtime_error("Trainer: start_iteration out of range");
  }
  if (config_.start_iteration > 0 && config_.snapshot_path.empty()) {
    throw std::runtime_error("Trainer: resume requires a snapshot_path");
  }
}

TrainerReport Trainer::run() {
  TrainerReport report;
  auto& faults = util::FaultInjector::instance();

  // Sample source: the raw backend, or — when the store is on — a
  // distributed in-memory cache over it, constructed per attempt so its
  // exchange plan follows the current membership through Shrink/Rejoin. The
  // store implements ReadBackend, so the reader is oblivious to the switch,
  // and samples are deterministic functions of their index, so the batch
  // stream is bitwise identical either way.
  const std::uint64_t start_slot = static_cast<std::uint64_t>(config_.start_iteration) *
                                   static_cast<std::uint64_t>(shard_batch_) *
                                   static_cast<std::uint64_t>(comm_.size());
  std::optional<data::SampleStore> store;
  data::ReadBackend* source = &backend_;
  if (sample_store_enabled(config_.sample_store)) {
    data::SampleStoreConfig store_config;
    store_config.window = config_.shuffle_epoch_size > 0
                              ? config_.shuffle_epoch_size
                              : static_cast<std::uint64_t>(shard_batch_) *
                                    static_cast<std::uint64_t>(comm_.size()) * 4;
    store_config.sample_floats = sample_floats_;
    store_config.shuffle = config_.shuffle_epoch_size > 0;
    store_config.start_index = start_slot;
    store.emplace(comm_, backend_, store_config);
    source = &*store;
  }
  data::DataReader reader(*source, comm_.rank(), comm_.size(), shard_batch_,
                          sample_floats_, prefetch_depth(), config_.shuffle_epoch_size,
                          /*shuffle_seed=*/2017,
                          static_cast<std::uint64_t>(config_.start_iteration));
  DistributedSolver solver(comm_, net_factory_(shard_batch_), config_.solver,
                           config_.scaffe);

  if (config_.start_iteration > 0) {
    if (config_.bcast_restore) {
      // State-transfer resume: only rank 0 touches the checkpoint file; the
      // full solver state (iteration + params + momentum) travels to every
      // other rank over the wire. This is how a rank that (re)joins after a
      // Rejoin heal receives its state — it holds no local checkpoint.
      // Floats carry the iteration exactly (checkpoint iterations are far
      // below 2^24), so the restored state is bitwise the file's contents.
      dl::SgdSolver& sgd = solver.solver();
      const std::size_t params = sgd.net().param_count();
      const std::size_t state = sgd.state_count();
      std::vector<float> blob(1 + params + state);
      if (comm_.rank() == 0) {
        dl::load_solver(sgd, config_.snapshot_path);
        blob[0] = static_cast<float>(sgd.iteration());
        sgd.net().flatten_params(std::span<float>(blob).subspan(1, params));
        sgd.flatten_state(std::span<float>(blob).subspan(1 + params, state));
      }
      comm_.bcast(std::span<float>(blob), 0);
      if (comm_.rank() != 0) {
        sgd.net().unflatten_params(std::span<const float>(blob).subspan(1, params));
        sgd.unflatten_state(std::span<const float>(blob).subspan(1 + params, state));
        sgd.set_iteration(static_cast<long>(blob[0]));
      }
    } else {
      // Recovery path: every rank restores the full solver checkpoint (params
      // + momentum + iteration), so the resumed trajectory is bitwise the one
      // the uninterrupted run would have followed.
      dl::load_solver(solver.solver(), config_.snapshot_path);
    }
    if (solver.solver().iteration() != config_.start_iteration) {
      throw std::runtime_error("Trainer: snapshot iteration " +
                               std::to_string(solver.solver().iteration()) +
                               " does not match resume point " +
                               std::to_string(config_.start_iteration));
    }
    report.recovery.resumed_iteration = config_.start_iteration;
  }

  std::optional<mpi::HealthMonitor> monitor;
  if (config_.health_monitor) {
    // Align the ranks first: solver/reader construction time must not count
    // as heartbeat silence against a slow-starting peer.
    comm_.barrier();
    monitor.emplace(comm_, config_.health ? *config_.health
                                          : mpi::HealthConfig::from_env());
  }

  try {
    for (int iteration = config_.start_iteration; iteration < config_.iterations;
         ++iteration) {
      // Rank-crash-at-iteration hook: in a real cluster this is the process
      // dying; here it throws, the world aborts, and recovery takes over.
      // Keyed by WORLD rank so crash schedules stay stable after a shrink
      // re-densifies comm ranks (world rank == comm rank in a full world).
      faults.check_crash(comm_.world_rank(), iteration);
      double stall_ms = 0.0;
      if (faults.active()) {
        // Straggler hook: a stalled step, counted into this rank's
        // heartbeat-reported compute latency below.
        const auto stall = faults.on_step(comm_.world_rank());
        if (stall.count() > 0) {
          std::this_thread::sleep_for(stall);
          stall_ms = std::chrono::duration<double, std::milli>(stall).count();
        }
      }

      const data::Batch batch = reader.next();
      const IterationResult result = solver.train_iteration(batch.data, batch.labels);
      if (solver.is_root()) report.root_losses.push_back(result.local_loss);

      if (monitor) {
        // Pre-aggregation latency only (see IterationResult::compute_ms):
        // wall step time equalizes across a synchronized world, which would
        // blind the straggler median.
        monitor->record_step(stall_ms + result.compute_ms);
        monitor->poll();  // surface a confirmed suspect as the typed error
      }

      if (config_.snapshot_every > 0 && (iteration + 1) % config_.snapshot_every == 0) {
        if (solver.is_root() && !config_.snapshot_path.empty()) {
          const int attempts = dl::save_solver(solver.solver(), config_.snapshot_path);
          report.recovery.snapshot_write_retries += attempts - 1;
          ++report.snapshots_written;
        }
        // Snapshots are a synchronization point in Caffe's workflow.
        comm_.barrier();
      }
    }
  } catch (const mpi::AbortError&) {
    // A rank blocked inside a collective unwinds with AbortError when the
    // world dies — including when its OWN monitor confirmed the suspect and
    // aborted to unblock it. Prefer the typed SuspectError in that case.
    if (monitor && monitor->suspected()) monitor->poll();
    throw;
  }

  report.iterations = solver.solver().iteration();
  report.samples_trained =
      static_cast<std::uint64_t>(config_.iterations - config_.start_iteration) *
      static_cast<std::uint64_t>(shard_batch_) * static_cast<std::uint64_t>(comm_.size());
  report.batches_read = reader.batches_produced();
  // Stop the reader BEFORE sampling the store/registry counters: its thread
  // may otherwise still be pulling the next prefetched batch.
  reader.stop();
  if (store) report.store = store->stats();
  report.memory = util::MemoryRegistry::instance().stats();
  if (solver.is_root()) {
    report.final_params.resize(solver.solver().net().param_count());
    solver.solver().net().flatten_params(report.final_params);
    report.final_state.resize(solver.solver().state_count());
    solver.solver().flatten_state(report.final_state);
    if (monitor) report.health = monitor->report();
  }
  return report;
}

TrainerReport train_with_recovery(int nranks, data::ReadBackend& backend,
                                  std::size_t sample_floats, NetSpecFactory net_factory,
                                  TrainerConfig config, int max_restarts) {
  RecoveryEvents recovery;
  int start_iteration = config.start_iteration;
  auto& faults = util::FaultInjector::instance();

  // One persistent world for the whole job: every attempt is a membership
  // generation over it, so messages of a crashed epoch are fenced out of the
  // rebuilt world (see mpi::World) instead of relying on teardown timing.
  mpi::Runtime runtime(nranks);
  if (config.recv_timeout_ms > 0) {
    runtime.set_recv_timeout(std::chrono::milliseconds(config.recv_timeout_ms));
  }

  // The survivor set, as world ranks. Shrink removes the dead; comm ranks
  // inside each attempt are the dense 0..live.size()-1 renumbering. `full`
  // is the configured membership a Rejoin heal restores.
  std::vector<int> full(static_cast<std::size_t>(nranks));
  std::iota(full.begin(), full.end(), 0);
  std::vector<int> live = full;
  // Next attempt resumes by rank-0 bcast instead of per-rank file loads
  // (set only for the healed attempt after a Rejoin boundary).
  bool bcast_restore = false;

  for (;;) {
    // Under Rejoin a degraded world runs only to the next checkpoint
    // boundary: that is the generation boundary where the healed full world
    // takes over, with a checkpoint guaranteed to exist there.
    int segment_end = config.iterations;
    if (config.recovery == RecoveryPolicy::Rejoin && live.size() < full.size() &&
        config.snapshot_every > 0 && !config.snapshot_path.empty()) {
      const int boundary =
          (start_iteration / config.snapshot_every + 1) * config.snapshot_every;
      segment_end = std::min(config.iterations, boundary);
    }
    const bool heal_after = segment_end < config.iterations;

    std::mutex mutex;
    TrainerReport root_report;
    bool have_root_report = false;

    bool restartable_failure = false;
    int dead_world_rank = -1;  // identified victim of this attempt, or -1
    try {
      runtime.run_members(live, [&](mpi::Comm& comm) {
        TrainerConfig attempt_config = config;
        attempt_config.start_iteration = start_iteration;
        attempt_config.iterations = segment_end;
        attempt_config.bcast_restore = bcast_restore;
        Trainer trainer(comm, backend, sample_floats, net_factory, attempt_config);
        TrainerReport report = trainer.run();
        if (comm.rank() == 0) {
          std::lock_guard<std::mutex> lock(mutex);
          root_report = std::move(report);
          have_root_report = true;
        }
      });
    } catch (const util::InjectedCrash& crash) {
      restartable_failure = true;
      dead_world_rank = crash.rank();  // a world rank (see Trainer::run)
    } catch (const mpi::AbortError&) {
      restartable_failure = true;  // secondary unwind; victim unknown
    } catch (const mpi::Error& error) {
      // Unified victim selection: every typed transport/health error names
      // its suspect the same way (a comm rank indexing `live`, or -1), so
      // the supervisor no longer special-cases error types. Timeout,
      // backpressure, heartbeat suspicion, and eager CRC mismatch are
      // restartable; config/transport-contract errors are not.
      if (!error.restartable()) throw;
      restartable_failure = true;
      if (dynamic_cast<const mpi::SuspectError*>(&error) != nullptr) {
        ++recovery.suspicions;
      } else {
        ++recovery.timeouts;
      }
      const int suspect = error.suspect();
      if (suspect >= 0 && suspect < static_cast<int>(live.size())) {
        dead_world_rank = live[static_cast<std::size_t>(suspect)];
      }
    }
    // Anything else (config errors, corrupt-beyond-recovery checkpoints,
    // logic bugs) propagates: restarting would not help.

    if (!restartable_failure) {
      if (heal_after) {
        // Clean arrival at the Rejoin boundary: restore the configured
        // membership. The joining ranks hold no state — the next attempt
        // starts under a fresh generation (schedules re-derive for the
        // healed size via install_collectives) and rank 0 bcasts the
        // boundary checkpoint to everyone.
        ++recovery.rejoins;
        for (int rank : full) {
          if (std::find(live.begin(), live.end(), rank) == live.end()) {
            recovery.rejoined_world_ranks.push_back(rank);
          }
        }
        live = full;
        start_iteration = segment_end;
        recovery.resumed_iteration = segment_end;
        bcast_restore = true;
        continue;
      }
      if (!have_root_report) {
        throw std::runtime_error("train_with_recovery: no report from rank 0");
      }
      root_report.recovery.restarts = recovery.restarts;
      root_report.recovery.shrinks = recovery.shrinks;
      root_report.recovery.timeouts = recovery.timeouts;
      root_report.recovery.suspicions = recovery.suspicions;
      root_report.recovery.rejoins = recovery.rejoins;
      root_report.recovery.snapshot_write_retries += recovery.snapshot_write_retries;
      root_report.recovery.dead_world_ranks = recovery.dead_world_ranks;
      root_report.recovery.rejoined_world_ranks = recovery.rejoined_world_ranks;
      root_report.recovery.final_world_size = static_cast<int>(live.size());
      root_report.recovery.final_generation = runtime.generation();
      if (recovery.restarts > 0 || recovery.rejoins > 0) {
        root_report.recovery.resumed_iteration = recovery.resumed_iteration;
      }
      root_report.recovery.faults_fired = faults.stats().total();
      return root_report;
    }

    // Failed attempts resume from disk on every rank: the bcast handoff is
    // only valid for the clean heal it was armed for.
    bcast_restore = false;

    ++recovery.restarts;
    if (recovery.restarts > max_restarts) {
      throw std::runtime_error("train_with_recovery: restart budget (" +
                               std::to_string(max_restarts) + ") exhausted");
    }

    // This recovery window's deaths: the victim that ended the generation
    // plus any rank that dies while we are rebuilding (a second failure
    // hitting mid-recovery must be absorbed, not fatal).
    std::vector<int> dead;
    if (dead_world_rank >= 0) dead.push_back(dead_world_rank);
    for (;;) {
      try {
        faults.check_recovery_crash(recovery.restarts);
        break;
      } catch (const util::InjectedCrash& crash) {
        dead.push_back(crash.rank());
      }
    }

    if (config.recovery == RecoveryPolicy::Shrink ||
        config.recovery == RecoveryPolicy::Rejoin) {
      std::vector<int> survivors = live;
      for (int rank : dead) {
        survivors.erase(std::remove(survivors.begin(), survivors.end(), rank),
                        survivors.end());
      }
      // A shrunk world must still be able to run: at least one survivor and,
      // under strong scaling, a global batch the survivors divide evenly.
      // Otherwise fall back to a same-size restart for this cycle (modelling
      // a node replacement), recorded as a plain restart.
      const bool viable =
          !survivors.empty() &&
          (config.scaling != Scaling::Strong ||
           config.global_batch % static_cast<int>(survivors.size()) == 0);
      if (viable && survivors.size() < live.size()) {
        for (int rank : live) {
          if (std::find(survivors.begin(), survivors.end(), rank) == survivors.end()) {
            recovery.dead_world_ranks.push_back(rank);
          }
        }
        live = std::move(survivors);
        ++recovery.shrinks;
      }
    }

    // Resume from the last good checkpoint, or from scratch when none (or a
    // corrupted one) exists — probe_snapshot validates CRC and structure.
    const auto info = dl::probe_snapshot(config.snapshot_path);
    start_iteration =
        (info && info->iteration > 0) ? static_cast<int>(info->iteration) : 0;
    recovery.resumed_iteration = start_iteration;
  }
}

}  // namespace scaffe::core
