#include "core/trainer.h"

#include <stdexcept>

#include "data/reader.h"
#include "dl/snapshot.h"

namespace scaffe::core {

Trainer::Trainer(mpi::Comm& comm, data::ReadBackend& backend, std::size_t sample_floats,
                 NetSpecFactory net_factory, TrainerConfig config)
    : comm_(comm),
      backend_(backend),
      sample_floats_(sample_floats),
      net_factory_(std::move(net_factory)),
      config_(std::move(config)) {
  if (config_.scaling == Scaling::Strong) {
    shard_batch_ = config_.global_batch / comm_.size();
    if (shard_batch_ < 1 || shard_batch_ * comm_.size() != config_.global_batch) {
      throw std::runtime_error("Trainer: global batch " +
                               std::to_string(config_.global_batch) +
                               " not divisible across " + std::to_string(comm_.size()) +
                               " ranks");
    }
  } else {
    shard_batch_ = config_.global_batch;  // weak scaling: constant per GPU
  }
}

TrainerReport Trainer::run() {
  TrainerReport report;

  data::DataReader reader(backend_, comm_.rank(), comm_.size(), shard_batch_,
                          sample_floats_, /*queue_capacity=*/4,
                          config_.shuffle_epoch_size);
  DistributedSolver solver(comm_, net_factory_(shard_batch_), config_.solver,
                           config_.scaffe);

  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    const data::Batch batch = reader.next();
    const IterationResult result = solver.train_iteration(batch.data, batch.labels);
    if (solver.is_root()) report.root_losses.push_back(result.local_loss);

    if (config_.snapshot_every > 0 && (iteration + 1) % config_.snapshot_every == 0) {
      if (solver.is_root() && !config_.snapshot_path.empty()) {
        dl::save_params(solver.solver().net(), config_.snapshot_path);
        ++report.snapshots_written;
      }
      // Snapshots are a synchronization point in Caffe's workflow.
      comm_.barrier();
    }
  }

  report.iterations = solver.solver().iteration();
  report.samples_trained = static_cast<std::uint64_t>(config_.iterations) *
                           static_cast<std::uint64_t>(shard_batch_) *
                           static_cast<std::uint64_t>(comm_.size());
  report.batches_read = reader.batches_produced();
  return report;
}

}  // namespace scaffe::core
