// High-level training orchestration: wires the parallel data readers
// (Figure 3), the per-rank DistributedSolver, and periodic snapshots into
// the paper's end-to-end workflow — the code an S-Caffe user runs after
// `mpirun`.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/distributed_solver.h"
#include "data/backend.h"
#include "dl/solver.h"
#include "mpi/comm.h"

namespace scaffe::core {

struct TrainerConfig {
  int iterations = 100;
  int global_batch = 32;
  Scaling scaling = Scaling::Strong;  // the paper's -scal option
  ScaffeConfig scaffe;
  dl::SolverConfig solver;

  int snapshot_every = 0;      // iterations between snapshots; 0 disables
  std::string snapshot_path;   // written by the root solver

  /// When > 0, readers shuffle sample order with a deterministic per-epoch
  /// permutation over this many samples (typically the dataset size).
  std::uint64_t shuffle_epoch_size = 0;
};

struct TrainerReport {
  long iterations = 0;
  std::uint64_t samples_trained = 0;       // across all ranks
  std::vector<float> root_losses;          // root's local loss per iteration
  std::uint64_t batches_read = 0;          // this rank's reader
  int snapshots_written = 0;
};

/// Builds the NetSpec for a given per-rank batch size (so strong and weak
/// scaling can size the shards appropriately).
using NetSpecFactory = std::function<dl::NetSpec(int batch)>;

class Trainer {
 public:
  /// `backend` is the shared dataset store (one per process group);
  /// `sample_floats` must match what the NetSpec's data blob expects.
  Trainer(mpi::Comm& comm, data::ReadBackend& backend, std::size_t sample_floats,
          NetSpecFactory net_factory, TrainerConfig config);

  /// Runs the configured number of iterations. Collective: every rank of the
  /// communicator must call run() together.
  TrainerReport run();

  int shard_batch() const noexcept { return shard_batch_; }

 private:
  mpi::Comm& comm_;
  data::ReadBackend& backend_;
  std::size_t sample_floats_;
  NetSpecFactory net_factory_;
  TrainerConfig config_;
  int shard_batch_;
};

}  // namespace scaffe::core
