// High-level training orchestration: wires the parallel data readers
// (Figure 3), the per-rank DistributedSolver, and periodic snapshots into
// the paper's end-to-end workflow — the code an S-Caffe user runs after
// `mpirun` — plus checkpoint-based fault recovery (train_with_recovery).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/distributed_solver.h"
#include "data/backend.h"
#include "data/sample_store.h"
#include "dl/solver.h"
#include "mpi/comm.h"
#include "mpi/health.h"
#include "util/memory_registry.h"

namespace scaffe::core {

/// What the fault-tolerant supervisor does after a rank failure.
enum class RecoveryPolicy {
  Restart,  // relaunch the SAME-size world from the last good checkpoint
            // (models replacing the dead node before resuming)
  Shrink,   // drop the dead rank, rebuild an (n-1)-rank survivor world under
            // a new membership generation, reshard, rescale, and continue
  Rejoin,   // Shrink, then heal: the degraded world runs only to the next
            // checkpoint boundary, where the full membership relaunches under
            // a new generation and rank 0 bcasts the checkpoint state to the
            // (re)joining ranks — transient node loss no longer permanently
            // degrades the configured world size
};

const char* recovery_policy_name(RecoveryPolicy policy) noexcept;

struct TrainerConfig {
  int iterations = 100;
  int global_batch = 32;
  Scaling scaling = Scaling::Strong;  // the paper's -scal option
  ScaffeConfig scaffe;
  dl::SolverConfig solver;

  /// How train_with_recovery reacts to a rank failure. Shrink falls back to
  /// a same-size restart for one attempt when the survivor count cannot
  /// divide the strong-scaling global batch or the victim is unidentifiable.
  RecoveryPolicy recovery = RecoveryPolicy::Restart;

  int snapshot_every = 0;      // iterations between snapshots; 0 disables
  std::string snapshot_path;   // written by the root solver

  /// Resume point: skip to this iteration, restoring every rank's solver
  /// from `snapshot_path` when > 0. Set by train_with_recovery; the
  /// snapshot's recorded iteration must equal this value.
  int start_iteration = 0;

  /// Receive/collective deadline for runs driven by train_with_recovery
  /// (milliseconds; 0 keeps the SCAFFE_RECV_TIMEOUT_MS / infinite default).
  long recv_timeout_ms = 0;

  /// When > 0, readers shuffle sample order with a deterministic per-epoch
  /// permutation over this many samples (typically the dataset size).
  std::uint64_t shuffle_epoch_size = 0;

  /// Run a HealthMonitor per rank: heartbeat failure detection (typed
  /// SuspectError long before the receive deadline) plus straggler flagging
  /// in TrainerReport.health.
  bool health_monitor = false;

  /// Health-plane tuning; nullopt reads SCAFFE_HEARTBEAT_MS /
  /// SCAFFE_HEARTBEAT_MISS_LIMIT / SCAFFE_STRAGGLER_FACTOR at run time.
  std::optional<mpi::HealthConfig> health;

  /// Resume by state transfer instead of per-rank file reads: rank 0 loads
  /// `snapshot_path` and bcasts iteration + params + momentum to everyone.
  /// Set by train_with_recovery for the healed attempt after a Rejoin —
  /// (re)joining ranks need no local checkpoint file.
  bool bcast_restore = false;

  /// Feed readers from the distributed in-memory SampleStore (peers exchange
  /// next-window shards over scmpi; at most 32 ranks touch the backend)
  /// instead of every rank's reader hitting the backend directly.
  /// SCAFFE_SAMPLE_STORE=on/1/off/0 overrides this; the sample stream is
  /// bitwise identical either way. See data/sample_store.h.
  bool sample_store = false;
};

/// Fault-tolerance bookkeeping: what went wrong during a (possibly
/// restarted) training run and how the stack absorbed it.
struct RecoveryEvents {
  int restarts = 0;                // recovery cycles (same-size restarts AND shrinks)
  int shrinks = 0;                 // cycles that removed at least one dead rank
  int timeouts = 0;                // attempts lost to a deadline-class mpi::Error
  int suspicions = 0;              // attempts lost to a heartbeat SuspectError
  int rejoins = 0;                 // generation boundaries where the world healed
  int snapshot_write_retries = 0;  // extra snapshot write attempts (I/O faults absorbed)
  std::uint64_t faults_fired = 0;  // injected faults that actually triggered
  long resumed_iteration = -1;     // last resume point; -1 if never restarted
  std::vector<int> dead_world_ranks;      // world ranks removed by Shrink, in death order
  std::vector<int> rejoined_world_ranks;  // world ranks restored by Rejoin heals
  int final_world_size = 0;            // ranks in the segment that finished the run
  std::uint64_t final_generation = 0;  // membership epoch of that segment
};

struct TrainerReport {
  long iterations = 0;
  std::uint64_t samples_trained = 0;       // across all ranks
  std::vector<float> root_losses;          // root's local loss per iteration
  std::uint64_t batches_read = 0;          // this rank's reader
  int snapshots_written = 0;
  std::vector<float> final_params;         // root only: flattened params after the run
  std::vector<float> final_state;          // root only: flattened momentum after the run
  mpi::HealthReport health;                // root only, when config.health_monitor
  RecoveryEvents recovery;
  util::RegistryStats memory;              // process-wide MemoryRegistry snapshot at run end
  data::SampleStoreStats store;            // this rank's sample-store counters (zeros when off)
};

/// Builds the NetSpec for a given per-rank batch size (so strong and weak
/// scaling can size the shards appropriately).
using NetSpecFactory = std::function<dl::NetSpec(int batch)>;

class Trainer {
 public:
  /// `backend` is the shared dataset store (one per process group);
  /// `sample_floats` must match what the NetSpec's data blob expects.
  Trainer(mpi::Comm& comm, data::ReadBackend& backend, std::size_t sample_floats,
          NetSpecFactory net_factory, TrainerConfig config);

  /// Runs the configured number of iterations. Collective: every rank of the
  /// communicator must call run() together.
  TrainerReport run();

  int shard_batch() const noexcept { return shard_batch_; }

 private:
  mpi::Comm& comm_;
  data::ReadBackend& backend_;
  std::size_t sample_floats_;
  NetSpecFactory net_factory_;
  TrainerConfig config_;
  int shard_batch_;
};

/// Fault-tolerant driver around Trainer: spawns an scmpi world, trains, and
/// — when a rank fails mid-run (injected crash, timeout, abort) — ends the
/// membership generation, restores every rank from the last good snapshot in
/// `config.snapshot_path`, and resumes from its recorded iteration.
///
/// Under RecoveryPolicy::Restart the relaunch uses the same world size.
/// Under RecoveryPolicy::Shrink the dead rank — named by the InjectedCrash,
/// or by mpi::Error::suspect() for any restartable typed error (timeout,
/// backpressure, heartbeat suspicion, eager CRC mismatch) — is dropped and
/// the survivors continue as an (n-1)-rank world in a new membership
/// generation: comm ranks re-densify, DataReader shards re-stride over n-1
/// readers (each remaining sample still read exactly once per epoch),
/// gradient averaging rescales to 1/(n-1), and the hierarchical-reduce/tuner
/// schedules are re-derived for the new size. Crashes injected *inside* the
/// recovery window (FaultPlan::crash_in_recovery) shrink the survivor set
/// further before the relaunch. Under RecoveryPolicy::Rejoin the degraded
/// world additionally runs only to the next checkpoint boundary; there the
/// full membership relaunches under a fresh generation, rank 0 bcasts the
/// checkpoint (iteration + params + momentum) to every rank, and schedules
/// re-derive for the healed size — see the Rejoin enum comment.
///
/// Determinism contract: snapshots are full solver checkpoints (params +
/// momentum + iteration) and readers are deterministic functions of
/// (shard, num_shards, start_batch), so a run that shrinks n -> k at some
/// checkpoint is bitwise identical, from that checkpoint on, to a fresh
/// k-rank run resumed from the same checkpoint; a pure Restart run is
/// bitwise identical to an uninterrupted one; and a Rejoin heal (bcast
/// restore) is bitwise identical, from the heal boundary on, to a fresh
/// full-size run resumed from the boundary checkpoint. Throws once `max_restarts`
/// recovery cycles are exhausted (or immediately on non-restartable
/// errors). Returns the root's report of the final (successful) segment,
/// with `recovery` describing every absorbed failure.
TrainerReport train_with_recovery(int nranks, data::ReadBackend& backend,
                                  std::size_t sample_floats, NetSpecFactory net_factory,
                                  TrainerConfig config, int max_restarts = 3);

}  // namespace scaffe::core
