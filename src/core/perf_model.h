// Training-iteration performance model over the DES substrate.
//
// Reconstructs the per-iteration timeline of every S-Caffe variant (and of
// the comparators in bench/baselines) on a modelled cluster: per-layer
// compute from ModelDesc FLOPs, collective latencies from the SAME schedule
// generators + DES executor that pass the functional tests, reader
// throughput from the storage model, and GPU memory accounting for the
// out-of-memory gaps of Figure 8.
#pragma once

#include <optional>
#include <vector>

#include "coll/exec_policy.h"
#include "core/config.h"
#include "models/descriptors.h"
#include "net/cluster.h"
#include "util/duration.h"

namespace scaffe::core {

using util::TimeNs;

enum class ReaderBackendKind { LmdbSim, LustreImageData };

struct TrainPerfConfig {
  models::ModelDesc model;
  net::ClusterSpec cluster;
  int gpus = 1;
  int global_batch = 256;
  Scaling scaling = Scaling::Strong;
  Variant variant = Variant::SCOBR;
  CollAlgo coll_algo = CollAlgo::Config;  // schedule family; Config = `reduce` below
  ReduceAlgo reduce = ReduceAlgo::cb(8);
  Aggregation aggregation = Aggregation::RootUpdate;
  bool ring_allreduce = false;  // AllreduceSgd: ring instead of reduce+bcast
  coll::ExecPolicy comm_policy = coll::ExecPolicy::hr_gdr();
  ReaderBackendKind reader = ReaderBackendKind::LustreImageData;
  int readers = -1;        // parallel reader threads; -1 = one per GPU
  bool naive_nbc = false;  // Figure 4's naive design instead of Figure 5's
  int iterations = 100;    // for total-time reporting
  std::size_t fusion_bucket_bytes = 0;  // SC-OBR gradient bucket fusion target;
                                        // 0 = unfused (one reduce per layer)
  std::size_t sample_bytes = 0;  // stored size per training sample; 0 = ImageNet-like
  bool capture_timeline = false;  // record per-layer phase segments
};

/// One phase segment on the iteration timeline (Figures 5/6 reconstruction).
struct PhaseSegment {
  enum class Kind { Bcast, Forward, Backward, Reduce } kind;
  int layer = 0;  // model layer index
  TimeNs start = 0;
  TimeNs end = 0;
};

struct IterationBreakdown {
  bool oom = false;            // per-GPU batch does not fit in device memory
  bool reader_failed = false;  // backend cannot serve this many readers

  int batch_per_gpu = 0;
  TimeNs propagation_exposed = 0;  // bcast time NOT hidden behind forward
  TimeNs forward = 0;
  TimeNs backward = 0;
  TimeNs aggregation_exposed = 0;  // reduce time NOT hidden behind backward
  TimeNs update = 0;
  TimeNs reader_stall = 0;
  TimeNs total = 0;

  double samples_per_sec = 0.0;      // global batch / iteration time
  double training_time_sec = 0.0;    // iterations * iteration time

  std::vector<PhaseSegment> timeline;  // when capture_timeline was set

  TimeNs comm_exposed() const noexcept { return propagation_exposed + aggregation_exposed; }
};

/// Simulates one training iteration under `config`. Deterministic.
IterationBreakdown simulate_training_iteration(const TrainPerfConfig& config);

/// Latency of one gradient aggregation (the packed-buffer reduce) under the
/// config's reduce algorithm and policy — the quantity Table 2 reports.
TimeNs aggregation_latency(const TrainPerfConfig& config);

}  // namespace scaffe::core
