#include "core/bucket_planner.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "mpi/knobs.h"
#include "util/bytes.h"

namespace scaffe::core {

BucketPlanner::BucketPlanner(
    const std::vector<std::pair<std::size_t, std::size_t>>& layer_ranges,
    std::size_t target_bytes)
    : target_bytes_(std::max<std::size_t>(target_bytes, 1)) {
  const std::size_t num_layers = layer_ranges.size();
  layer_to_bucket_.resize(num_layers);
  if (num_layers == 0) return;

  // Reverse walk: close a bucket when it reaches the target, so the deepest
  // layers — the first gradients backward produces — pack to full size and
  // the partial leftover is the front (highest-priority) bucket.
  std::vector<FusionBucket> reversed;
  FusionBucket current;
  current.last_layer = num_layers - 1;
  std::size_t current_bytes = 0;
  for (std::size_t li = num_layers; li-- > 0;) {
    current.first_layer = li;
    current.elems += layer_ranges[li].second;
    current_bytes += layer_ranges[li].second * sizeof(float);
    if (current_bytes >= target_bytes_ && li > 0) {
      reversed.push_back(current);
      current = FusionBucket{};
      current.last_layer = li - 1;
      current_bytes = 0;
    }
  }
  reversed.push_back(current);

  buckets_.assign(reversed.rbegin(), reversed.rend());

  // A front bucket made entirely of zero-parameter layers would issue a
  // no-op collective and cost a tag block; fold it into its neighbour.
  if (buckets_.size() > 1 && buckets_.front().elems == 0) {
    buckets_[1].first_layer = buckets_.front().first_layer;
    buckets_.erase(buckets_.begin());
  }

  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (std::size_t li = buckets_[b].first_layer; li <= buckets_[b].last_layer; ++li) {
      layer_to_bucket_[li] = b;
    }
  }
}

std::size_t resolve_bucket_bytes(std::size_t configured_bytes, std::size_t eager_limit) {
  if (configured_bytes > 0) return configured_bytes;
  constexpr std::size_t kLo = 256 * util::kKiB;
  constexpr std::size_t kHi = 4 * util::kMiB;
  return std::clamp(8 * std::max<std::size_t>(eager_limit, 1), kLo, kHi);
}

FusionConfig fusion_config_from_env() {
  FusionConfig config;
  const char* env = std::getenv("SCAFFE_BUCKET_BYTES");
  if (env == nullptr) return config;
  const std::string text(env);
  if (text == "off" || text == "0") return config;
  if (text == "auto") {
    config.enabled = true;
    return config;
  }
  config.enabled = true;
  config.bucket_bytes = mpi::parse_bytes_knob(
      "SCAFFE_BUCKET_BYTES", text, "(expected e.g. 1M, 256K, 0, off, or auto)");
  return config;
}

}  // namespace scaffe::core
