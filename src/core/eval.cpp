#include "core/eval.h"

#include <algorithm>
#include <stdexcept>

namespace scaffe::core {

EvalResult evaluate(dl::Net& net, const data::SyntheticImageDataset& dataset,
                    std::uint64_t first_index, int samples) {
  dl::Blob& data_blob = net.blob("data");
  dl::Blob& label_blob = net.blob("label");
  const int batch = data_blob.num();
  if (batch < 1) throw std::runtime_error("evaluate: net has no batch dimension");
  const std::size_t floats = dataset.sample_floats();
  if (data_blob.count() != static_cast<std::size_t>(batch) * floats) {
    throw std::runtime_error("evaluate: dataset sample size does not match the net");
  }

  // Whole batches only: the accuracy blob averages over the full batch, so
  // padding a partial batch would bias the estimate.
  const int batches = std::max(samples / batch, 1);

  EvalResult result;
  double accuracy_sum = 0.0;
  double loss_sum = 0.0;
  std::uint64_t cursor = first_index;
  for (int b = 0; b < batches; ++b) {
    for (int i = 0; i < batch; ++i) {
      const data::Sample sample = dataset.make_sample(cursor++);
      std::copy(sample.image.begin(), sample.image.end(),
                data_blob.data().begin() + static_cast<std::ptrdiff_t>(
                                               static_cast<std::size_t>(i) * floats));
      label_blob.data()[static_cast<std::size_t>(i)] = static_cast<float>(sample.label);
    }
    net.forward();
    accuracy_sum += net.blob("accuracy").data()[0];
    loss_sum += net.blob("loss").data()[0];
    result.samples += batch;
  }
  result.accuracy = accuracy_sum / batches;
  result.avg_loss = loss_sum / batches;
  return result;
}

}  // namespace scaffe::core
