// Test-phase evaluation (Section 6.2: "Caffe reports accuracy during the
// Testing phase only... We observed no difference in accuracy between Caffe
// and S-Caffe").
#pragma once

#include "data/dataset.h"
#include "dl/net.h"

namespace scaffe::core {

struct EvalResult {
  double accuracy = 0.0;  // top-1 over the evaluated samples
  double avg_loss = 0.0;
  int samples = 0;
};

/// Runs forward passes over `samples` consecutive dataset items starting at
/// `first_index`, in batches of the net's input batch size. The net must
/// expose "data"/"label" inputs, a "loss" blob, and an "accuracy" blob
/// (build specs with with_accuracy=true).
EvalResult evaluate(dl::Net& net, const data::SyntheticImageDataset& dataset,
                    std::uint64_t first_index, int samples);

}  // namespace scaffe::core
