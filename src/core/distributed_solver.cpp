#include "core/distributed_solver.h"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/hr_factory.h"
#include "gpu/kernels.h"

namespace scaffe::core {

const char* variant_name(Variant variant) noexcept {
  switch (variant) {
    case Variant::SCB: return "SC-B";
    case Variant::SCOB: return "SC-OB";
    case Variant::SCOBR: return "SC-OBR";
  }
  return "?";
}

DistributedSolver::DistributedSolver(mpi::Comm& comm, dl::NetSpec net_spec,
                                     dl::SolverConfig solver_config, ScaffeConfig config,
                                     gpu::Device* device)
    : comm_(comm), config_(config), solver_(std::move(net_spec), solver_config, device) {
  packed_.resize(solver_.net().param_count());
  // Elastic contract: schedules are re-derived from comm.size() on every
  // construction, so a solver built over a shrunk survivor comm gets the
  // right hierarchical/ring schedules for n_new automatically.
  install_collectives(comm_, config_);
}

void DistributedSolver::load_batch(std::span<const float> data, std::span<const float> labels) {
  dl::Net& net = solver_.net();
  dl::Blob& data_blob = net.blob("data");
  dl::Blob& label_blob = net.blob("label");
  if (data.size() != data_blob.count() || labels.size() != label_blob.count()) {
    throw std::runtime_error("DistributedSolver: shard batch size mismatch");
  }
  std::copy(data.begin(), data.end(), data_blob.data().begin());
  std::copy(labels.begin(), labels.end(), label_blob.data().begin());
}

void DistributedSolver::propagate_blocking() {
  dl::Net& net = solver_.net();
  if (is_root()) net.flatten_params(packed_);
  comm_.bcast(std::span<float>(packed_), 0);
  if (!is_root()) net.unflatten_params(packed_);
}

float DistributedSolver::forward_backward_blocking() {
  const float loss = solver_.step_preloaded();
  return loss;
}

float DistributedSolver::forward_with_overlapped_propagation(
    std::vector<mpi::Request>& requests) {
  dl::Net& net = solver_.net();
  const auto& ranges = net.layer_param_ranges();
  net.set_iteration(solver_.iteration());
  net.zero_param_diffs();

  float loss = 0.0f;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    // Figure 5: the Wait for layer li's parameters sits immediately before
    // layer li's forward pass, so later layers' broadcasts keep progressing.
    if (requests[li].valid()) {
      requests[li].wait();
      const auto [offset, count] = ranges[li];
      if (!is_root()) {
        net.unflatten_layer_params(li, std::span<const float>(packed_).subspan(offset, count));
      }
    }
    loss += net.forward_layer(li);
  }
  return loss;
}

void DistributedSolver::aggregate_blocking() {
  dl::Net& net = solver_.net();
  net.flatten_diffs(packed_);
  comm_.reduce(std::span<float>(packed_), 0);
  if (is_root()) net.unflatten_diffs(packed_);
}

void DistributedSolver::aggregate_overlapped() {
  dl::Net& net = solver_.net();
  const auto& ranges = net.layer_param_ranges();
  const std::size_t num_layers = net.num_layers();

  // Helper control thread (Section 4.3): it owns the backward passes; the
  // main thread issues the per-layer reductions as layers complete, so the
  // reduction of layer n overlaps the computation of layer n-1.
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<bool> done(num_layers, false);

  // Joining guard: if a reduce below unwinds (world abort, timeout), the
  // helper — which only computes, so it always finishes — must still be
  // joined before destruction or the whole process would std::terminate.
  struct JoiningThread {
    std::thread thread;
    ~JoiningThread() {
      if (thread.joinable()) thread.join();
    }
  };
  JoiningThread helper{std::thread([&] {
    for (std::size_t li = num_layers; li-- > 0;) {
      net.backward_layer(li);
      {
        std::lock_guard<std::mutex> lock(mutex);
        done[li] = true;
      }
      cv.notify_all();
    }
  })};

  for (std::size_t li = num_layers; li-- > 0;) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return done[li]; });
    }
    const auto [offset, count] = ranges[li];
    if (count == 0) continue;
    std::span<float> segment = std::span<float>(packed_).subspan(offset, count);
    net.flatten_layer_diffs(li, segment);
    comm_.reduce(segment, 0);
    if (is_root()) net.unflatten_layer_diffs(li, segment);
  }
}

void DistributedSolver::root_update() {
  if (is_root()) {
    // Gradients were summed across P shards of the global batch; averaging
    // restores exactly the full-batch gradient. comm_.size() is the CURRENT
    // world size, so after an elastic shrink the averaging rescales to
    // 1/n_new without any extra bookkeeping.
    solver_.net().scale_diffs(1.0f / static_cast<float>(comm_.size()));
    solver_.apply_update();
  } else {
    solver_.advance_iteration();
  }
}

IterationResult DistributedSolver::train_iteration(std::span<const float> data,
                                                   std::span<const float> labels) {
  dl::Net& net = solver_.net();
  IterationResult result;
  result.iteration = solver_.iteration();

  if (config_.aggregation == Aggregation::AllreduceSgd) {
    // No propagation phase: every replica already holds the parameters and
    // applies the identical averaged update, so they never diverge.
    load_batch(data, labels);
    result.local_loss = solver_.step_preloaded();
    net.flatten_diffs(packed_);
    if (config_.ring_allreduce &&
        packed_.size() >= static_cast<std::size_t>(comm_.size())) {
      comm_.allreduce(std::span<float>(packed_));
    } else {
      comm_.reduce(std::span<float>(packed_), 0);
      comm_.bcast(std::span<float>(packed_), 0);
    }
    gpu::scale(1.0f / static_cast<float>(comm_.size()), packed_);
    net.unflatten_diffs(packed_);
    solver_.apply_update();
    return result;
  }

  switch (config_.variant) {
    case Variant::SCB: {
      propagate_blocking();
      load_batch(data, labels);
      result.local_loss = forward_backward_blocking();
      aggregate_blocking();
      break;
    }
    case Variant::SCOB:
    case Variant::SCOBR: {
      // Post every per-layer Ibcast before any compute (Figure 5).
      const auto& ranges = net.layer_param_ranges();
      if (is_root()) net.flatten_params(packed_);
      std::vector<mpi::Request> requests(net.num_layers());
      for (std::size_t li = 0; li < net.num_layers(); ++li) {
        const auto [offset, count] = ranges[li];
        if (count == 0) continue;
        requests[li] = comm_.ibcast(std::span<float>(packed_).subspan(offset, count), 0);
      }
      load_batch(data, labels);
      result.local_loss = forward_with_overlapped_propagation(requests);
      if (config_.variant == Variant::SCOB) {
        net.backward();
        aggregate_blocking();
      } else {
        aggregate_overlapped();
      }
      break;
    }
  }

  root_update();
  return result;
}

}  // namespace scaffe::core
