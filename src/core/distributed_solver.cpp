#include "core/distributed_solver.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/hr_factory.h"
#include "gpu/kernels.h"
#include "util/memory_registry.h"

namespace scaffe::core {

namespace {

/// Joining guard: if a reduce unwinds (world abort, timeout), the backward
/// helper — which only computes, so it always finishes — must still be
/// joined before destruction or the whole process would std::terminate.
struct JoiningThread {
  std::thread thread;
  ~JoiningThread() {
    if (thread.joinable()) thread.join();
  }
};

/// Registry-backed staging buffer holding one fusion bucket's gradients,
/// flattened member by member.
struct FusedStage {
  util::MemBlock storage;
  std::span<float> data;
};

FusedStage stage_bucket(dl::Net& net,
                        const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
                        const FusionBucket& bucket) {
  FusedStage stage;
  stage.storage = util::MemoryRegistry::instance().acquire(bucket.elems * sizeof(float));
  stage.data = {stage.storage.floats(), bucket.elems};
  std::size_t at = 0;
  for (std::size_t li = bucket.first_layer; li <= bucket.last_layer; ++li) {
    const auto [offset, count] = ranges[li];
    if (count == 0) continue;
    net.flatten_layer_diffs(li, stage.data.subspan(at, count));
    at += count;
  }
  return stage;
}

void unstage_bucket(dl::Net& net,
                    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
                    const FusionBucket& bucket, std::span<const float> data) {
  std::size_t at = 0;
  for (std::size_t li = bucket.first_layer; li <= bucket.last_layer; ++li) {
    const auto [offset, count] = ranges[li];
    if (count == 0) continue;
    net.unflatten_layer_diffs(li, data.subspan(at, count));
    at += count;
  }
}

}  // namespace

const char* variant_name(Variant variant) noexcept {
  switch (variant) {
    case Variant::SCB: return "SC-B";
    case Variant::SCOB: return "SC-OB";
    case Variant::SCOBR: return "SC-OBR";
  }
  return "?";
}

DistributedSolver::DistributedSolver(mpi::Comm& comm, dl::NetSpec net_spec,
                                     dl::SolverConfig solver_config, ScaffeConfig config,
                                     gpu::Device* device)
    : comm_(comm), config_(config), solver_(std::move(net_spec), solver_config, device) {
  packed_.resize(solver_.net().param_count());
  // Elastic contract: schedules are re-derived from comm.size() on every
  // construction, so a solver built over a shrunk survivor comm gets the
  // right hierarchical/ring schedules for n_new automatically.
  install_collectives(comm_, config_);
  if (!config_.fusion.enabled && config_.fusion.bucket_bytes == 0) {
    // Code that doesn't opt in (or out) programmatically defers to the
    // SCAFFE_BUCKET_BYTES environment knob.
    config_.fusion = fusion_config_from_env();
  }
  if (config_.fusion.enabled) {
    // The plan is a pure function of the net's layer ranges and the target
    // bytes; the target derives from the process-wide eager limit, so every
    // rank builds an identical plan without communicating.
    std::size_t target = config_.fusion.bucket_bytes;
    if (target == 0 && resolve_coll_algo(config_).algo == CollAlgo::Tuned) {
      // Under the tuned schedule family the table already knows where the
      // algorithm choice stops changing with message size — that boundary
      // is a better bucket target than the transport eager heuristic, and
      // it is the same pure function of comm size on every rank.
      target = tuned_table_for(comm_.size()).recommended_bucket_bytes();
    }
    planner_.emplace(solver_.net().layer_param_ranges(),
                     resolve_bucket_bytes(target, comm_.eager_limit()));
  }
}

void DistributedSolver::load_batch(std::span<const float> data, std::span<const float> labels) {
  dl::Net& net = solver_.net();
  dl::Blob& data_blob = net.blob("data");
  dl::Blob& label_blob = net.blob("label");
  if (data.size() != data_blob.count() || labels.size() != label_blob.count()) {
    throw std::runtime_error("DistributedSolver: shard batch size mismatch");
  }
  std::copy(data.begin(), data.end(), data_blob.data().begin());
  std::copy(labels.begin(), labels.end(), label_blob.data().begin());
}

void DistributedSolver::propagate_blocking() {
  dl::Net& net = solver_.net();
  if (is_root()) net.flatten_params(packed_);
  comm_.bcast(std::span<float>(packed_), 0);
  if (!is_root()) net.unflatten_params(packed_);
}

float DistributedSolver::forward_backward_blocking() {
  const float loss = solver_.step_preloaded();
  return loss;
}

float DistributedSolver::forward_with_overlapped_propagation(
    std::vector<mpi::Request>& requests) {
  dl::Net& net = solver_.net();
  const auto& ranges = net.layer_param_ranges();
  net.set_iteration(solver_.iteration());
  net.zero_param_diffs();

  float loss = 0.0f;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    // Figure 5: the Wait for layer li's parameters sits immediately before
    // layer li's forward pass, so later layers' broadcasts keep progressing.
    if (requests[li].valid()) {
      requests[li].wait();
      const auto [offset, count] = ranges[li];
      if (!is_root()) {
        net.unflatten_layer_params(li, std::span<const float>(packed_).subspan(offset, count));
      }
    }
    loss += net.forward_layer(li);
  }
  return loss;
}

void DistributedSolver::aggregate_blocking() {
  dl::Net& net = solver_.net();
  net.flatten_diffs(packed_);
  comm_.reduce(std::span<float>(packed_), 0);
  if (is_root()) net.unflatten_diffs(packed_);
}

void DistributedSolver::aggregate_overlapped() {
  dl::Net& net = solver_.net();
  const auto& ranges = net.layer_param_ranges();
  const std::size_t num_layers = net.num_layers();

  // Helper control thread (Section 4.3): it owns the backward passes; the
  // main thread issues the per-layer reductions as layers complete, so the
  // reduction of layer n overlaps the computation of layer n-1.
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<bool> done(num_layers, false);

  JoiningThread helper{std::thread([&] {
    for (std::size_t li = num_layers; li-- > 0;) {
      net.backward_layer(li);
      {
        std::lock_guard<std::mutex> lock(mutex);
        done[li] = true;
      }
      cv.notify_all();
    }
  })};

  for (std::size_t li = num_layers; li-- > 0;) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return done[li]; });
    }
    const auto [offset, count] = ranges[li];
    if (count == 0) continue;
    std::span<float> segment = std::span<float>(packed_).subspan(offset, count);
    net.flatten_layer_diffs(li, segment);
    comm_.reduce(segment, 0);
    if (is_root()) net.unflatten_layer_diffs(li, segment);
  }
}

void DistributedSolver::aggregate_fused() {
  dl::Net& net = solver_.net();
  const auto& ranges = net.layer_param_ranges();
  const auto& buckets = planner_->buckets();
  // Tag agreement is positional: every rank reserves one tag block per
  // bucket in ascending order before issuing anything, so issue order can
  // differ per rank without the collectives mismatching.
  std::vector<int> tags(buckets.size());
  for (int& tag : tags) tag = comm_.reserve_coll_tags();

  std::vector<FusedStage> stages(buckets.size());
  std::vector<mpi::Request> requests(buckets.size());
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b].elems == 0) continue;
    stages[b] = stage_bucket(net, ranges, buckets[b]);
    requests[b] = comm_.ireduce_at(stages[b].data, 0, tags[b]);
  }
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (!requests[b].valid()) continue;
    requests[b].wait();
    if (is_root()) unstage_bucket(net, ranges, buckets[b], stages[b].data);
  }
}

void DistributedSolver::aggregate_fused_overlapped() {
  dl::Net& net = solver_.net();
  const auto& ranges = net.layer_param_ranges();
  const auto& buckets = planner_->buckets();
  const std::size_t num_layers = net.num_layers();
  const std::size_t nb = buckets.size();

  std::vector<int> tags(nb);
  for (int& tag : tags) tag = comm_.reserve_coll_tags();

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<bool> done(num_layers, false);

  JoiningThread helper{std::thread([&] {
    for (std::size_t li = num_layers; li-- > 0;) {
      net.backward_layer(li);
      {
        std::lock_guard<std::mutex> lock(mutex);
        done[li] = true;
      }
      cv.notify_all();
    }
  })};

  // Ready-queue: a bucket is ready once backward finished its first (lowest)
  // member layer — backward is strictly descending, so every member is done
  // by then. Among ready buckets the LOWEST index issues first: bucket 0
  // covers the layers the next iteration's forward pass touches first.
  std::vector<FusedStage> stages(nb);
  std::vector<mpi::Request> requests(nb);
  std::vector<bool> issued(nb, false);
  std::size_t remaining = nb;
  while (remaining > 0) {
    std::size_t pick = nb;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] {
        for (std::size_t b = 0; b < nb; ++b) {
          if (!issued[b] && done[buckets[b].first_layer]) {
            pick = b;
            return true;
          }
        }
        return false;
      });
    }
    issued[pick] = true;
    --remaining;
    if (buckets[pick].elems == 0) continue;
    stages[pick] = stage_bucket(net, ranges, buckets[pick]);
    requests[pick] = comm_.ireduce_at(stages[pick].data, 0, tags[pick]);
  }

  // Priority drain: complete ascending so the reduction covering layers 0..k
  // finishes before any later bucket is finalized.
  for (std::size_t b = 0; b < nb; ++b) {
    if (!requests[b].valid()) continue;
    requests[b].wait();
    if (is_root()) unstage_bucket(net, ranges, buckets[b], stages[b].data);
  }
}

void DistributedSolver::root_update() {
  if (is_root()) {
    // Gradients were summed across P shards of the global batch; averaging
    // restores exactly the full-batch gradient. comm_.size() is the CURRENT
    // world size, so after an elastic shrink the averaging rescales to
    // 1/n_new without any extra bookkeeping.
    solver_.net().scale_diffs(1.0f / static_cast<float>(comm_.size()));
    solver_.apply_update();
  } else {
    solver_.advance_iteration();
  }
}

IterationResult DistributedSolver::train_iteration(std::span<const float> data,
                                                   std::span<const float> labels) {
  dl::Net& net = solver_.net();
  IterationResult result;
  result.iteration = solver_.iteration();
  const auto compute_start = std::chrono::steady_clock::now();
  const auto mark_compute_done = [&result, compute_start] {
    result.compute_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - compute_start)
                            .count();
  };

  if (config_.aggregation == Aggregation::AllreduceSgd) {
    // No propagation phase: every replica already holds the parameters and
    // applies the identical averaged update, so they never diverge.
    load_batch(data, labels);
    result.local_loss = solver_.step_preloaded();
    net.flatten_diffs(packed_);
    mark_compute_done();  // aggregation below waits on peers
    if (config_.ring_allreduce &&
        packed_.size() >= static_cast<std::size_t>(comm_.size())) {
      comm_.allreduce(std::span<float>(packed_));
    } else {
      comm_.reduce(std::span<float>(packed_), 0);
      comm_.bcast(std::span<float>(packed_), 0);
    }
    gpu::scale(1.0f / static_cast<float>(comm_.size()), packed_);
    net.unflatten_diffs(packed_);
    solver_.apply_update();
    return result;
  }

  switch (config_.variant) {
    case Variant::SCB: {
      propagate_blocking();
      load_batch(data, labels);
      result.local_loss = forward_backward_blocking();
      mark_compute_done();
      aggregate_blocking();
      break;
    }
    case Variant::SCOB:
    case Variant::SCOBR: {
      // Post every per-layer Ibcast before any compute (Figure 5).
      const auto& ranges = net.layer_param_ranges();
      if (is_root()) net.flatten_params(packed_);
      std::vector<mpi::Request> requests(net.num_layers());
      for (std::size_t li = 0; li < net.num_layers(); ++li) {
        const auto [offset, count] = ranges[li];
        if (count == 0) continue;
        requests[li] = comm_.ibcast(std::span<float>(packed_).subspan(offset, count), 0);
      }
      load_batch(data, labels);
      result.local_loss = forward_with_overlapped_propagation(requests);
      if (config_.variant == Variant::SCOB) {
        net.backward();
        mark_compute_done();
        if (planner_) {
          aggregate_fused();
        } else {
          aggregate_blocking();
        }
      } else if (planner_) {
        mark_compute_done();  // SC-OBR: backward overlaps aggregation
        aggregate_fused_overlapped();
      } else {
        mark_compute_done();
        aggregate_overlapped();
      }
      break;
    }
  }

  root_update();
  return result;
}

}  // namespace scaffe::core
