// S-Caffe runtime configuration: which co-design variant runs and how the
// DL-aware reduction is configured (Sections 4 and 5).
#pragma once

#include <cstddef>
#include <string>

#include "coll/algorithms.h"

namespace scaffe::core {

/// The co-design ladder evaluated in Section 6.6.
enum class Variant {
  SCB,    // SC-B:   blocking CUDA-aware bcast + reduce around the F/B passes
  SCOB,   // SC-OB:  multi-stage per-layer Ibcast overlapped with Forward
  SCOBR,  // SC-OBR: SC-OB + helper-thread per-layer overlapped aggregation
};

const char* variant_name(Variant variant) noexcept;

/// How gradient reductions are scheduled.
struct ReduceAlgo {
  bool hierarchical = false;  // false: flat binomial (the stock runtime)
  int chain_size = 8;         // lower-communicator size ("-8" in CB-8)
  coll::LevelAlgo lower = coll::LevelAlgo::Chain;
  coll::LevelAlgo upper = coll::LevelAlgo::Binomial;
  int chunks = 16;            // chain pipelining depth

  std::string label() const {
    if (!hierarchical) return "Bin";
    return coll::combo_name(lower, upper, chain_size);
  }

  static ReduceAlgo binomial() { return {}; }
  static ReduceAlgo hr(coll::LevelAlgo lower, coll::LevelAlgo upper, int chain_size,
                       int chunks = 16) {
    ReduceAlgo algo;
    algo.hierarchical = true;
    algo.lower = lower;
    algo.upper = upper;
    algo.chain_size = chain_size;
    algo.chunks = chunks;
    return algo;
  }
  static ReduceAlgo cb(int chain_size) {
    return hr(coll::LevelAlgo::Chain, coll::LevelAlgo::Binomial, chain_size);
  }
  static ReduceAlgo cc(int chain_size) {
    return hr(coll::LevelAlgo::Chain, coll::LevelAlgo::Chain, chain_size);
  }
};

/// Which collective schedule family serves gradient aggregation and
/// propagation. `Config` defers to the finer-grained `ReduceAlgo` /
/// `ring_allreduce` fields below (the paper's configuration surface); the
/// other values force one family everywhere, and `Tuned` consults the
/// offline DES tuning table per message size. The SCAFFE_COLL_ALGO
/// environment knob (see coll_select.h) overrides whatever is set here.
enum class CollAlgo {
  Config,    // follow ScaffeConfig::reduce / ring_allreduce
  Tuned,     // per-size winner from the extended hr_tune() sweep
  Binomial,  // flat binomial tree
  Chain,     // flat pipelined chain
  CB,        // hierarchical chain-of-binomials (chain_size from ReduceAlgo)
  CC,        // hierarchical chain-of-chains
  Dbt,       // double binary tree, half payload per tree
  Ring,      // rank-order ring allreduce (reduce/bcast stay on Config)
  TopoRing,  // topology-ordered segmented ring + chain reduce/bcast
};

const char* coll_algo_name(CollAlgo algo) noexcept;

/// How gradients reach the optimizer.
enum class Aggregation {
  RootUpdate,    // the paper's reduction tree: root reduces, updates, and
                 // re-broadcasts parameters at the next iteration
  AllreduceSgd,  // every rank allreduces gradients and applies the update
                 // locally (the NCCL/Horovod-era successor; an extension)
};

enum class Scaling { Strong, Weak };  // the -scal command line option

/// Gradient bucket fusion: pack per-layer gradient tensors into
/// size-targeted buckets and reduce each bucket as one collective instead of
/// one collective per layer (amortizes per-collective setup for the many
/// small layers of GoogLeNet-profile nets). Off by default; fused training
/// is bitwise identical to unfused at equal thread counts, so enabling it is
/// purely a performance decision. See BucketPlanner.
struct FusionConfig {
  bool enabled = false;
  std::size_t bucket_bytes = 0;  // target bucket size; 0 = derive from the
                                 // transport eager limit (resolve_bucket_bytes)
};

struct ScaffeConfig {
  Variant variant = Variant::SCOBR;
  CollAlgo coll_algo = CollAlgo::Config;
  ReduceAlgo reduce = ReduceAlgo::cb(8);
  Aggregation aggregation = Aggregation::RootUpdate;
  bool ring_allreduce = false;  // AllreduceSgd: use the ring schedule
  Scaling scaling = Scaling::Strong;
  FusionConfig fusion;  // SC-OB / SC-OBR RootUpdate paths only
};

}  // namespace scaffe::core
