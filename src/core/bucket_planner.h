// Gradient bucket fusion planning.
//
// S-Caffe's per-layer overlapped reduction (Section 4.3) issues one
// collective per layer. For nets in the GoogLeNet mould — many tens of
// layers, most holding a few tens of KiB of gradients — per-collective setup
// (tag agreement, schedule instantiation, thread wakeups) dominates the wire
// time of each small message. The BucketPlanner packs the per-layer gradient
// tensors into size-targeted *fusion buckets*, each reduced as a single
// collective over a pooled staging buffer.
//
// Buckets are built in reverse-layer order — the order backward produces
// gradients — so each bucket is a contiguous layer range that becomes ready
// the moment backward finishes its lowest member layer. Buckets are indexed
// ascending by first layer, and the index doubles as the scheduler priority:
// bucket 0 covers layers 0..k, which the NEXT iteration's forward pass needs
// first, so the fused SC-OBR scheduler issues the lowest-index ready bucket
// and drains completions in ascending order.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/config.h"

namespace scaffe::core {

/// One fusion bucket: a contiguous range of layers whose gradients are
/// reduced together. In SC-OBR the bucket is ready as soon as backward has
/// finished `first_layer` (backward is strictly descending, so every member
/// is done by then).
struct FusionBucket {
  std::size_t first_layer = 0;
  std::size_t last_layer = 0;  // inclusive
  std::size_t elems = 0;       // total gradient elements across members
};

class BucketPlanner {
 public:
  /// Partitions `layer_ranges` (per-layer (offset, count) element ranges, as
  /// returned by dl::Net::layer_param_ranges) into buckets of roughly
  /// `target_bytes` each. Walks layers from last to first so the reverse
  /// (backward) order fills buckets to target; the leftover partial bucket
  /// lands at the front, covering layers 0..k.
  BucketPlanner(const std::vector<std::pair<std::size_t, std::size_t>>& layer_ranges,
                std::size_t target_bytes);

  /// Buckets ascending by first_layer; index == scheduler priority. They
  /// partition [0, num_layers) exactly: bucket[i].last_layer + 1 ==
  /// bucket[i+1].first_layer.
  const std::vector<FusionBucket>& buckets() const noexcept { return buckets_; }

  std::size_t target_bytes() const noexcept { return target_bytes_; }

  /// Index of the bucket containing `layer`.
  std::size_t bucket_of_layer(std::size_t layer) const { return layer_to_bucket_.at(layer); }

 private:
  std::vector<FusionBucket> buckets_;
  std::vector<std::size_t> layer_to_bucket_;
  std::size_t target_bytes_ = 0;
};

/// Effective bucket target: `configured_bytes` when set, otherwise derived
/// from the transport eager limit — 8x the limit (big enough that the fused
/// message rides the rendezvous zero-copy path rather than eager staging,
/// small enough to keep several buckets in flight), clamped to
/// [256 KiB, 4 MiB].
std::size_t resolve_bucket_bytes(std::size_t configured_bytes, std::size_t eager_limit);

/// Reads SCAFFE_BUCKET_BYTES: unset/"off"/"0" leave fusion disabled, "auto"
/// enables it with the derived target, a byte size (e.g. "1M") enables it
/// with that target. Anything else throws mpi::ConfigError.
FusionConfig fusion_config_from_env();

}  // namespace scaffe::core
